// The biologist scenario (paper §1.1): generate the NREF2J exploratory
// workload, run it under the initial (P) and a recommended (R)
// configuration, and print the log-binned response-time histograms with
// cumulative frequencies — the paper's Figures 1 and 2.
//
//	go run ./examples/nref
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/recommender"
	"repro/internal/workload"
)

func main() {
	const scale = 0.0005
	e := engine.New(catalog.NREF(), scale, engine.SystemA())
	if err := datagen.GenerateNREF(e, datagen.NREFOptions{ScaleFactor: scale, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	e.CollectStats()
	if _, err := e.ApplyConfig(engine.PConfiguration(e)); err != nil {
		log.Fatal(err)
	}

	// The biologist's 100 exploratory queries, sampled from the NREF2J
	// family with the distribution of estimated costs preserved.
	fam := workload.NREF2J(e.Schema, e, workload.DefaultOptions())
	fmt.Printf("NREF2J family: %d queries (%d before restrictions); running a 100-query sample\n\n",
		len(fam.Queries), fam.UnrestrictedSize)
	fam = fam.Sample(100, func(s string) float64 {
		m, err := e.Estimate(s)
		if err != nil {
			return 0
		}
		return m.Seconds
	}, 42)

	// Figure 1: the primary-key-only configuration.
	msP, err := core.RunWorkload(e, fam.SQLs(), core.DefaultTimeout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.NewHistogram(msP, 1, core.DefaultTimeout, 2).
		Render("Figure 1 — query execution times on configuration P"))

	// Obtain a recommendation with the 1C-sized storage budget, build it,
	// and rerun: Figure 2.
	w := e.NewWhatIf()
	budget := w.EstimateSize(engine.OneColumnConfiguration(e))
	rec, err := recommender.New(e, recommender.SystemA()).Recommend(fam.SQLs(), budget)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := e.ApplyConfig(rec); err != nil {
		log.Fatal(err)
	}
	msR, err := core.RunWorkload(e, fam.SQLs(), core.DefaultTimeout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.NewHistogram(msR, 1, core.DefaultTimeout, 2).
		Render("Figure 2 — query execution times on the recommended configuration"))

	cP := core.NewCFC(msP, core.DefaultTimeout)
	cR := core.NewCFC(msR, core.DefaultTimeout)
	fmt.Printf("reading the curves at 100s: P completes %.0f%%, R completes %.0f%%\n",
		100*cP.At(100), 100*cR.At(100))
}
