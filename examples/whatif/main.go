// What-if estimation (paper §5 in miniature): compare, for one exploratory
// query, the actual cost A, the in-configuration estimate E, and the
// hypothetical estimate H taken from the initial configuration — and watch
// the hypothetical estimate understate what an index configuration would
// actually deliver.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/val"
)

// queryFor builds a selective exploratory lookup: a rare organism name
// (frequency 1-3, found by scanning) joined into taxonomy.
func queryFor(e *engine.Engine) string {
	counts := make(map[string]int)
	e.Heap("organism").Scan(nil, func(_ storage.RowID, r val.Row) bool {
		counts[r[3].Str]++
		return true
	})
	rare := ""
	for name, n := range counts {
		if n >= 1 && n <= 3 && (rare == "" || name < rare) {
			rare = name
		}
	}
	return fmt.Sprintf(`
SELECT s.taxon_id, COUNT(*)
FROM organism r, taxonomy s
WHERE r.taxon_id = s.taxon_id AND r.name = %s
GROUP BY s.taxon_id`, val.String(rare).String())
}

func main() {
	const scale = 0.0005
	e := engine.New(catalog.NREF(), scale, engine.SystemB())
	if err := datagen.GenerateNREF(e, datagen.NREFOptions{ScaleFactor: scale, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	e.CollectStats()
	if _, err := e.ApplyConfig(engine.PConfiguration(e)); err != nil {
		log.Fatal(err)
	}

	query := queryFor(e)
	oneC := engine.OneColumnConfiguration(e)
	q, err := e.AnalyzeSQL(query)
	if err != nil {
		log.Fatal(err)
	}

	// While in P: the hypothetical estimates for P and 1C.
	w := e.NewWhatIf()
	hP, err := w.Estimate(q, engine.PConfiguration(e))
	if err != nil {
		log.Fatal(err)
	}
	h1C, err := w.Estimate(q, oneC)
	if err != nil {
		log.Fatal(err)
	}

	// Actuals and in-configuration estimates for both configurations.
	eP, err := e.Estimate(query)
	if err != nil {
		log.Fatal(err)
	}
	_, aP, err := e.Run(query, 1800)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := e.ApplyConfig(oneC); err != nil {
		log.Fatal(err)
	}
	e1C, err := e.Estimate(query)
	if err != nil {
		log.Fatal(err)
	}
	_, a1C, err := e.Run(query, 1800)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("one NREF2J query, simulated seconds:")
	fmt.Printf("  %-34s %8s %8s %8s\n", "", "A", "E", "H(from P)")
	fmt.Printf("  %-34s %8.1f %8.1f %8.1f\n", "P  (primary keys only)", aP.Seconds, eP.Seconds, hP.Seconds)
	fmt.Printf("  %-34s %8.1f %8.1f %8.1f\n", "1C (all single-column indexes)", a1C.Seconds, e1C.Seconds, h1C.Seconds)

	fmt.Printf("\nactual improvement ratio      A(P)/A(1C) = %5.1f\n", aP.Seconds/a1C.Seconds)
	fmt.Printf("estimated improvement ratio   E(P)/E(1C) = %5.1f\n", eP.Seconds/e1C.Seconds)
	fmt.Printf("hypothetical improvement      H(P)/H(1C) = %5.1f\n", hP.Seconds/h1C.Seconds)
	fmt.Println("\nthe hypothetical ratio is the one a recommender steers by (paper §5):")
	fmt.Println("when it understates the actual gain, good indexes look unattractive")
	fmt.Println("and the recommender leaves them on the table.")
}
