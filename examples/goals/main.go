// Quality-of-service goals (paper §2.2, Example 2): express a performance
// goal as a step function over the cumulative frequency curve and test
// which configurations satisfy it.
//
//	go run ./examples/goals
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/workload"
)

func main() {
	const scale = 0.0005
	e := engine.New(catalog.NREF(), scale, engine.SystemA())
	if err := datagen.GenerateNREF(e, datagen.NREFOptions{ScaleFactor: scale, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	e.CollectStats()
	if _, err := e.ApplyConfig(engine.PConfiguration(e)); err != nil {
		log.Fatal(err)
	}
	fam := workload.NREF2J(e.Schema, e, workload.DefaultOptions()).
		Sample(100, func(s string) float64 {
			m, err := e.Estimate(s)
			if err != nil {
				log.Fatalf("estimating %q: %v", s, err)
			}
			return m.Seconds
		}, 42)

	// The paper's Example 2 goal, plus a stricter SLA.
	goals := []core.Goal{
		core.Example2Goal(),
		{Name: "strict", Steps: []core.GoalStep{
			{X: 10, Frac: 0.5}, {X: 120, Frac: 0.95},
		}},
	}

	var labels []string
	var curves []core.CFC
	for _, cfgName := range []string{"P", "1C"} {
		cfg := engine.PConfiguration(e)
		if cfgName == "1C" {
			cfg = engine.OneColumnConfiguration(e)
		}
		if _, err := e.ApplyConfig(cfg); err != nil {
			log.Fatal(err)
		}
		ms, err := core.RunWorkload(e, fam.SQLs(), core.DefaultTimeout)
		if err != nil {
			log.Fatal(err)
		}
		labels = append(labels, cfgName)
		curves = append(curves, core.NewCFC(ms, core.DefaultTimeout))
	}

	fmt.Println(core.RenderCurves("NREF2J on the two baseline configurations",
		labels, curves, 1, core.DefaultTimeout))
	for _, g := range goals {
		fmt.Printf("goal %q:\n", g.Name)
		for _, st := range g.Steps {
			fmt.Printf("  require %.0f%% of queries under %.0fs\n", st.Frac*100, st.X)
		}
		for i, l := range labels {
			verdict := "NOT satisfied"
			if g.Satisfied(curves[i]) {
				verdict = "satisfied"
			}
			fmt.Printf("  %-3s %s\n", l, verdict)
		}
		fmt.Println()
	}

	// First-order stochastic dominance, the curve-comparison relation the
	// paper reads off its figures.
	if curves[1].Dominates(curves[0]) {
		fmt.Println("1C's curve first-order stochastically dominates P's.")
	} else {
		fmt.Println("neither curve dominates the other (they cross).")
	}
}
