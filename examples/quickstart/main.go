// Quickstart: build a small NREF database, run the paper's Example 1
// query under the baseline configurations, and compare the simulated
// elapsed times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
)

// example1 is the paper's Example 1: protein sequences per taxon for a
// virus that infects apes.
const example1 = `
SELECT t.lineage, COUNT(DISTINCT t2.nref_id)
FROM source s, taxonomy t, taxonomy t2
WHERE t.nref_id = s.nref_id AND t.lineage = t2.lineage
  AND s.p_name = 'Simian Virus 40'
GROUP BY t.lineage`

func main() {
	// A 1/2000-scale synthetic NREF instance; the simulated clock bills
	// all work as if the database were at the paper's full size.
	const scale = 0.0005
	e := engine.New(catalog.NREF(), scale, engine.SystemA())
	if err := datagen.GenerateNREF(e, datagen.NREFOptions{ScaleFactor: scale, Seed: 42}); err != nil {
		log.Fatal(err)
	}
	e.CollectStats()

	// Configuration P: primary-key indexes only.
	if _, err := e.ApplyConfig(engine.PConfiguration(e)); err != nil {
		log.Fatal(err)
	}
	res, mP, err := e.Run(example1, 1800)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P  (PK indexes only):     %7.1fs simulated, %d result rows\n", mP.Seconds, len(res.Rows))

	// Configuration 1C: one single-column index per indexable column.
	rep, err := e.ApplyConfig(engine.OneColumnConfiguration(e))
	if err != nil {
		log.Fatal(err)
	}
	res, m1C, err := e.Run(example1, 1800)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1C (all 1-column indexes): %6.1fs simulated, %d result rows\n", m1C.Seconds, len(res.Rows))
	fmt.Printf("\n1C adds %.1f GB of indexes (built in %.0f simulated minutes)\n",
		float64(rep.IndexBytes)/(1<<30), rep.BuildSeconds/60)
	fmt.Printf("speedup of 1C over P on Example 1: %.1fx\n", mP.Seconds/m1C.Seconds)

	fmt.Println("\nfirst result rows:")
	for i, r := range res.Rows {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %v\n", r)
	}
}
