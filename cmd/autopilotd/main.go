// Command autopilotd serves a continuous stream of family queries while
// an autonomic controller keeps the configuration tuned — the online
// counterpart of the batch autobench. It exposes /metrics and /healthz
// over HTTP for the duration of the run.
//
// Usage:
//
//	autopilotd [-windows n] [-drift] [-compare] [-sync] [-static] ...
//
// With -windows 0 (default) it streams until interrupted; a positive
// -windows runs a bounded, CI-friendly session. -drift shifts the family
// mixture at -drift-at, which is the headline experiment: watch the goal
// verdict decay under the stale configuration and recover after the
// controller's retune. -compare repeats the identical stream against a
// static baseline that never retunes and prints both side by side.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/autopilot"
	"repro/internal/core"
)

func usageErr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// parseShares parses "NREF2J:0.9,NREF3J:0.1".
func parseShares(s string) ([]autopilot.FamilyShare, error) {
	var out []autopilot.FamilyShare
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wt, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("family share %q: want NAME:WEIGHT", part)
		}
		w, err := strconv.ParseFloat(wt, 64)
		if err != nil {
			return nil, fmt.Errorf("family share %q: %v", part, err)
		}
		out = append(out, autopilot.FamilyShare{Family: name, Weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no family shares in %q", s)
	}
	return out, nil
}

func main() {
	system := flag.String("system", "B", "engine profile (A, B or C)")
	rec := flag.String("recommender", "", "tuner profile: A, B, C or 1C (default: -system)")
	families := flag.String("families", "NREF2J:0.9,NREF3J:0.1", "initial mixture as NAME:WEIGHT,...")
	drift := flag.Bool("drift", false, "shift the family mixture mid-run")
	driftAt := flag.Int("drift-at", 2, "window at which the mixture shifts")
	driftTo := flag.String("drift-to", "NREF2J:0.1,NREF3J:0.9", "post-drift mixture as NAME:WEIGHT,...")
	scale := flag.Float64("scale", 0.0002, "data scale factor relative to the paper's databases")
	seed := flag.Int64("seed", 42, "generator seed")
	pool := flag.Int("pool", 30, "per-family query pool size")
	window := flag.Int("window", 24, "queries per observation window")
	windows := flag.Int("windows", 0, "number of windows to run (0 = stream until interrupted)")
	parallel := flag.Int("parallel", 0, "query parallelism within a window (0 = GOMAXPROCS)")
	goalSpec := flag.String("goal", "60:0.50,400:0.95", "QoS goal as SECONDS:FRACTION,... (empty = the paper's Example 2)")
	threshold := flag.Float64("mix-threshold", 0.25, "mixture shift detection threshold (moved probability mass)")
	timeout := flag.Float64("timeout", core.DefaultTimeout, "per-query simulated timeout in seconds")
	syncT := flag.Bool("sync", false, "apply transitions at window boundaries (deterministic) instead of overlapping traffic")
	whatifCache := flag.String("whatif-cache", "on", "what-if estimate cache: on, or off for the pre-cache estimation path (reports are identical; retunes get slower)")
	static := flag.Bool("static", false, "freeze the configuration after warmup (decaying baseline)")
	noWarmup := flag.Bool("no-warmup", false, "skip the initial warmup tune (start serving under P)")
	compare := flag.Bool("compare", false, "also run the static baseline on the identical stream and print both")
	addr := flag.String("addr", ":9090", "HTTP listen address for /metrics and /healthz (empty = disabled)")
	benchJSON := flag.String("bench-json", "", "write machine-readable run metrics to this file")
	outFile := flag.String("o", "", "also write the per-window table artifact to this file")
	flag.Parse()

	if *windows < 0 {
		usageErr("autopilotd: -windows must be >= 0, got %d", *windows)
	}
	if *window <= 0 {
		usageErr("autopilotd: -window must be positive, got %d", *window)
	}
	if *parallel < 0 {
		usageErr("autopilotd: -parallel must be >= 0, got %d", *parallel)
	}
	if *whatifCache != "on" && *whatifCache != "off" {
		usageErr("autopilotd: -whatif-cache must be on or off, got %q", *whatifCache)
	}

	// Nonsensical flag combinations are usage errors, not silent surprises.
	if *drift && *windows == 0 {
		usageErr("autopilotd: -drift needs a bounded run (-windows > 0) so the shift window exists")
	}
	if *drift && *driftAt >= *windows {
		usageErr("autopilotd: -drift-at %d never fires in a %d-window run (need -drift-at < -windows)", *driftAt, *windows)
	}
	if *drift && *driftAt < 0 {
		usageErr("autopilotd: -drift-at must be >= 0, got %d", *driftAt)
	}
	flag.Visit(func(fl *flag.Flag) {
		if !*drift && (fl.Name == "drift-at" || fl.Name == "drift-to") {
			usageErr("autopilotd: -%s has no effect without -drift", fl.Name)
		}
	})
	if *compare && !*syncT {
		usageErr("autopilotd: -compare needs -sync: with overlapped retunes the two streams are not window-aligned, so the comparison is meaningless")
	}
	if *compare && *static {
		usageErr("autopilotd: -compare with -static would compare the frozen baseline against itself")
	}

	shares, err := parseShares(*families)
	if err != nil {
		usageErr("autopilotd: %v", err)
	}
	if *rec == "" {
		*rec = *system
	}
	opts := autopilot.Options{
		System:            *system,
		Recommender:       *rec,
		Families:          shares,
		Scale:             *scale,
		Seed:              *seed,
		PoolSize:          *pool,
		WindowSize:        *window,
		Windows:           *windows,
		Parallelism:       *parallel,
		MixShiftThreshold: *threshold,
		Timeout:           *timeout,
		Sync:              *syncT,
		Static:            *static,
		Warmup:            !*noWarmup,
		NoWhatIfCache:     *whatifCache == "off",
	}
	if *goalSpec != "" {
		if opts.Goal, err = core.ParseGoal(*goalSpec); err != nil {
			usageErr("autopilotd: %v", err)
		}
	}
	if *drift {
		to, err := parseShares(*driftTo)
		if err != nil {
			usageErr("autopilotd: %v", err)
		}
		opts.Drift = &autopilot.Drift{AtWindow: *driftAt, Shares: to}
	}

	if err := run(opts, *addr, *compare, *outFile, *benchJSON); err != nil {
		fmt.Fprintln(os.Stderr, "autopilotd:", err)
		os.Exit(1)
	}
}

// run drives one daemon lifetime with the shutdown ordering contract:
// the control loop drains first (ap.Run joins any in-flight retune
// before returning, so no transition is abandoned mid-build), artifacts
// are written second, and the metrics listener closes last — deferred,
// so it happens on error paths too.
func run(opts autopilot.Options, addr string, compare bool, outFile, benchJSON string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("autopilotd: loading %s-profile engine at scale %g (seed %d)...\n", opts.System, opts.Scale, opts.Seed)
	start := time.Now()
	ap, err := autopilot.New(opts)
	if err != nil {
		return err
	}
	fmt.Printf("autopilotd: ready in %.1fs\n", time.Since(start).Seconds())

	if addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: ap.Metrics().Handler()}
		// conflint:worker lifecycle=external metrics server lives for the whole process; the deferred srv.Shutdown below stops it
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "autopilotd: metrics server:", err)
			}
		}()
		fmt.Printf("autopilotd: serving /metrics and /healthz on http://%s\n", ln.Addr())
		defer func() {
			shCtx, cancel := context.WithTimeout(context.Background(), time.Second)
			defer cancel()
			if err := srv.Shutdown(shCtx); err != nil {
				fmt.Fprintln(os.Stderr, "autopilotd: metrics shutdown:", err)
			}
		}()
	}

	runStart := time.Now()
	reports, retunes, err := ap.Run(ctx)
	wall := time.Since(runStart).Seconds()
	if err != nil {
		return err
	}

	table := autopilot.RenderTable(reports, retunes)
	fmt.Println()
	fmt.Println(table)

	if compare {
		fmt.Println("autopilotd: running static baseline on the identical stream...")
		sOpts := opts
		sOpts.Static = true
		sap, err := autopilot.New(sOpts)
		if err != nil {
			return err
		}
		sReports, _, err := sap.Run(ctx)
		if err != nil {
			return err
		}
		cmp := autopilot.RenderComparison(reports, sReports)
		fmt.Println()
		fmt.Println(cmp)
		table += "\n== autopilot vs static baseline ==\n\n" + cmp
	}

	snap := ap.Metrics().Snapshot()
	fmt.Printf("autopilotd: %d windows, %d queries, %d retunes (%d structures built, %d dropped) in %.1fs wall\n",
		snap.WindowsCompleted, snap.QueriesServed, snap.RetunesApplied,
		snap.StructuresBuilt, snap.StructuresDropped, wall)

	if outFile != "" {
		if err := os.WriteFile(outFile, []byte(table), 0o644); err != nil {
			return err
		}
	}
	if benchJSON != "" {
		if err := writeBenchJSON(benchJSON, opts, snap, reports, retunes, wall); err != nil {
			return err
		}
	}
	return nil
}

// writeBenchJSON emits the perf-trajectory record for this run.
func writeBenchJSON(path string, opts autopilot.Options, snap autopilot.Snapshot,
	reports []autopilot.WindowReport, retunes []autopilot.RetuneRecord, wall float64) error {
	qps := 0.0
	if wall > 0 {
		qps = float64(snap.QueriesServed) / wall
	}
	retuneMS := int64(0)
	nOK := int64(0)
	for _, r := range retunes {
		if r.Err == "" {
			retuneMS += r.WallMS
			nOK++
		}
	}
	meanRetuneMS := int64(0)
	if nOK > 0 {
		meanRetuneMS = retuneMS / nOK
	}
	rec := map[string]any{
		"bench":        "autopilot",
		"system":       opts.System,
		"recommender":  opts.Recommender,
		"scale":        opts.Scale,
		"seed":         opts.Seed,
		"window_size":  opts.WindowSize,
		"windows":      snap.WindowsCompleted,
		"parallelism":  opts.Parallelism,
		"wall_seconds": round3(wall),

		"queries_served":  snap.QueriesServed,
		"queries_per_sec": round3(qps),

		"retunes_applied":     snap.RetunesApplied,
		"retune_wall_ms_mean": meanRetuneMS,
		"structures_built":    snap.StructuresBuilt,
		"structures_dropped":  snap.StructuresDropped,
	}
	if n := len(reports); n > 0 {
		last := reports[n-1]
		rec["final_window_p95_seconds"] = jsonSec(last.P95)
		rec["final_window_goal_satisfaction"] = last.Satisfaction
		maxP95 := 0.0
		for _, r := range reports {
			if s := jsonSec(r.P95); s > maxP95 {
				maxP95 = s
			}
		}
		rec["max_window_p95_seconds"] = maxP95
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func round3(x float64) float64 { return float64(int64(x*1000+0.5)) / 1000 }

// jsonSec clamps a possibly-infinite quantile for JSON.
func jsonSec(x float64) float64 {
	if x > core.DefaultTimeout*10 {
		return -1
	}
	return round3(x)
}
