// Command autobench regenerates the paper's tables and figures.
//
// Usage:
//
//	autobench [-scale f] [-seed n] [-size n] [-parallel n] [-whatif-cache on|off] [-exp id[,id...]] [-list]
//
// With no -exp it runs every experiment in paper order. Experiment IDs
// are listed by -list (fig1..fig11, table1..table3, lowerbounds,
// insertions, families, goals, and the ablations).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 0.0005, "data scale factor relative to the paper's databases")
	seed := flag.Int64("seed", 42, "generator seed")
	size := flag.Int("size", 100, "queries per workload sample")
	parallel := flag.Int("parallel", 0, "workload query parallelism (0 = GOMAXPROCS, 1 = sequential)")
	whatifCache := flag.String("whatif-cache", "on", "what-if estimate cache: on, or off for the pre-cache estimation path (outputs are identical; recommenders get slower)")
	exp := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	outDir := flag.String("o", "", "also write each experiment's output to <dir>/<id>.txt")
	flag.Parse()

	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "autobench: -parallel must be >= 0, got %d (0 = GOMAXPROCS, 1 = sequential)\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}
	if *scale <= 0 {
		fmt.Fprintf(os.Stderr, "autobench: -scale must be positive, got %g\n", *scale)
		flag.Usage()
		os.Exit(2)
	}
	if *size <= 0 {
		fmt.Fprintf(os.Stderr, "autobench: -size must be positive, got %d\n", *size)
		flag.Usage()
		os.Exit(2)
	}
	if *whatifCache != "on" && *whatifCache != "off" {
		fmt.Fprintf(os.Stderr, "autobench: -whatif-cache must be on or off, got %q\n", *whatifCache)
		flag.Usage()
		os.Exit(2)
	}
	if *list && *exp != "" {
		fmt.Fprintln(os.Stderr, "autobench: -list and -exp are mutually exclusive (-list only prints the ids)")
		flag.Usage()
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return
	}

	lab := bench.NewLab(*scale, *seed)
	lab.WorkloadSize = *size
	lab.Parallelism = *parallel
	lab.DisableWhatIfCache = *whatifCache == "off"

	var selected []bench.Experiment
	if *exp == "" {
		selected = bench.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("==== %s: %s\n\n", e.ID, e.Title)
		out, err := e.Run(lab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("---- %s done in %.1fs (wall)\n\n", e.ID, time.Since(start).Seconds())
		if *outDir != "" {
			path := filepath.Join(*outDir, e.ID+".txt")
			content := "# " + e.Title + "\n\n" + out + "\n"
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}
