// Command gatewayd serves the multi-tenant query gateway: SQL over
// HTTP/JSON from many concurrent clients, with API-key authentication,
// per-tenant capability checks, bounded admission queues and per-tenant
// goal tuning over one engine (see internal/gateway).
//
// Usage:
//
//	gatewayd -config tenants.json [-addr :8080] [-audit audit.jsonl]
//
// On SIGINT/SIGTERM the daemon drains: admission closes (new queries get
// 503 draining), every accepted query completes and lands its audit
// record, the pumps and tuner stop, and only then does the listener
// close — no accepted query is ever dropped by a shutdown.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gateway"
)

func main() {
	configPath := flag.String("config", "", "tenant config JSON (required)")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	auditPath := flag.String("audit", "", "append audit records as JSON lines to this file")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight queries on shutdown")
	shards := flag.Int("shards", -1, "override the config's shard count (0/1 = unsharded)")
	shardMode := flag.String("shard-mode", "", "override the partitioning mode (hash or range)")
	autoscale := flag.Bool("autoscale", false, "enable the elastic autoscaler regardless of the config")
	dryRun := flag.Bool("autoscale-dry-run", false, "audit autoscale proposals without applying them")
	flag.Parse()

	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "gatewayd: -config is required")
		flag.Usage()
		os.Exit(2)
	}
	ov := overrides{shards: *shards, shardMode: *shardMode, autoscale: *autoscale, dryRun: *dryRun}
	if err := run(*configPath, *addr, *auditPath, *drainTimeout, ov); err != nil {
		fmt.Fprintln(os.Stderr, "gatewayd:", err)
		os.Exit(1)
	}
}

// overrides are command-line toggles layered over the config file.
type overrides struct {
	shards    int
	shardMode string
	autoscale bool
	dryRun    bool
}

func (ov overrides) apply(cfg *gateway.Config) error {
	if ov.shards >= 0 {
		cfg.Shards = ov.shards
	}
	if ov.shardMode != "" {
		cfg.ShardMode = ov.shardMode
	}
	if ov.autoscale {
		cfg.Autoscale = true
	}
	if ov.dryRun {
		cfg.AutoscaleDryRun = true
	}
	return cfg.Normalize()
}

func run(configPath, addr, auditPath string, drainTimeout time.Duration, ov overrides) error {
	cfg, err := gateway.LoadConfig(configPath)
	if err != nil {
		return err
	}
	if err := ov.apply(&cfg); err != nil {
		return err
	}
	opts := gateway.Options{Config: cfg}
	if auditPath != "" {
		f, err := os.OpenFile(auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		opts.AuditSink = f
	}

	g, err := gateway.New(opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: g}
	// conflint:worker lifecycle=external HTTP listener lives for the whole process; the shutdown sequence below stops it
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "gatewayd: serve:", err)
		}
	}()
	fmt.Printf("gatewayd: %d tenants on http://%s (system %s, scale %g); loading catalog...\n",
		len(cfg.Tenants), ln.Addr(), cfg.System, cfg.Scale)
	if cfg.Shards > 1 || cfg.Autoscale {
		fmt.Printf("gatewayd: sharding %d×%s, pool %d, autoscale=%v dry-run=%v\n",
			cfg.Shards, cfg.ShardMode, cfg.ShardPool, cfg.Autoscale, cfg.AutoscaleDryRun)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	start := time.Now()
	if err := g.WaitReady(ctx); err != nil {
		if ctx.Err() != nil {
			fmt.Println("gatewayd: interrupted during load")
			return shutdown(g, srv, drainTimeout)
		}
		return err
	}
	fmt.Printf("gatewayd: ready in %.1fs\n", time.Since(start).Seconds())

	<-ctx.Done()
	fmt.Println("gatewayd: draining...")
	return shutdown(g, srv, drainTimeout)
}

// shutdown runs the ordered drain: gateway first (admission closed,
// in-flight queries completed and audited, pumps and tuner joined),
// listener last.
func shutdown(g *gateway.Gateway, srv *http.Server, drainTimeout time.Duration) error {
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := g.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "gatewayd: drain:", err)
	}
	srvCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := srv.Shutdown(srvCtx); err != nil {
		return err
	}
	s := g.Stats()
	fmt.Printf("gatewayd: done — %d accepted, %d rejected, %d retunes\n", s.Accepted, s.Rejected, s.Retunes)
	if sh := s.Sharding; sh != nil {
		fmt.Printf("gatewayd: cluster — %d shards (%s), pool %d, %d reshards, %d fallbacks\n",
			sh.Shards, sh.Mode, sh.Pool, sh.Reshards, sh.Fallbacks)
	}
	return nil
}
