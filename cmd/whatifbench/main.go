// Command whatifbench measures the what-if fast path. It runs the
// recommender searches behind the paper's Table 2 / Figure 5 artifacts
// twice — estimate cache off, then on — and reports estimates/sec, the
// cache hit rate and the wall-clock speedup per search, verifying that
// both runs recommend byte-identical configurations.
//
// Usage:
//
//	whatifbench [-scale f] [-seed n] [-size n] [-parallel n] [-reps n] [-o file]
//
// Each search runs -reps times per mode and keeps the fastest wall
// (standard best-of-N to shed scheduler and GC noise); recommendation
// identity is checked on every rep. The JSON artifact (BENCH_whatif.json
// in CI) is the perf record the fast path is held to: speedup_total is
// the aggregate improvement across all searches, speedup_min the worst
// single search's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"time"

	"repro/internal/bench"
	"repro/internal/conf"
	"repro/internal/engine"
)

// searchCase is one recommender search: a system profile on a family
// workload. System A on NREF3J is excluded — it capitulates before
// estimating anything (paper §4.1.2).
type searchCase struct {
	System string `json:"system"`
	Family string `json:"family"`
}

var cases = []searchCase{
	{"A", "NREF2J"},
	{"B", "NREF2J"},
	{"B", "NREF3J"},
	{"C", "SkTH3J"},
	{"C", "UnTH3J"},
}

// phaseResult is one timed search run.
type phaseResult struct {
	WallMS    float64 `json:"wall_ms"`
	Estimates int64   `json:"estimates"`
	Hits      int64   `json:"hits"`
	HitRate   float64 `json:"hit_rate"`
	EstPerSec float64 `json:"est_per_sec"`
}

// caseResult pairs the two runs of one search.
type caseResult struct {
	searchCase
	Uncached  phaseResult `json:"uncached"`
	Cached    phaseResult `json:"cached"`
	Speedup   float64     `json:"speedup"`
	Identical bool        `json:"identical"`
	Err       string      `json:"err,omitempty"`
}

type report struct {
	Scale        float64      `json:"scale"`
	Seed         int64        `json:"seed"`
	Size         int          `json:"size"`
	Parallelism  int          `json:"parallelism"`
	Reps         int          `json:"reps"`
	Cases        []caseResult `json:"cases"`
	SpeedupMin   float64      `json:"speedup_min"`
	SpeedupMean  float64      `json:"speedup_mean"`
	SpeedupTotal float64      `json:"speedup_total"`
	HitRate      float64      `json:"hit_rate"`
	Identical    bool         `json:"identical"`
}

// runSearch times one recommender search on the lab, with the process
// what-if counters bracketing exactly the search. Engine load, stats,
// sampling and budget estimation happen before the clock starts. The
// search runs reps times (each from a fresh what-if session) and the
// fastest wall is kept; the recommendation must not vary across reps.
func runSearch(l *bench.Lab, sys, fam string, reps int) (conf.Configuration, phaseResult, error) {
	db, err := bench.DBOfFamily(fam)
	if err != nil {
		return conf.Configuration{}, phaseResult{}, err
	}
	l.Workload(sys, fam)
	l.Engine(sys, db)
	l.Budget(sys, db)

	var best phaseResult
	var cfg conf.Configuration
	var recErr error
	for i := 0; i < reps; i++ {
		l.DropRecommendation(sys, fam)
		engine.ResetWhatIfCounters()
		start := time.Now()
		c, e := l.Recommendation(sys, fam)
		wall := time.Since(start)
		calls, hits := engine.WhatIfCounters()

		if i == 0 {
			cfg, recErr = c, e
		} else if !reflect.DeepEqual(c, cfg) || fmt.Sprint(e) != fmt.Sprint(recErr) {
			return cfg, best, fmt.Errorf("%s/%s: rep %d recommendation differs from rep 0", sys, fam, i)
		}
		p := phaseResult{
			WallMS:    float64(wall.Microseconds()) / 1000,
			Estimates: calls,
			Hits:      hits,
		}
		if calls > 0 {
			p.HitRate = float64(hits) / float64(calls)
		}
		if secs := wall.Seconds(); secs > 0 {
			p.EstPerSec = float64(calls) / secs
		}
		if i == 0 || p.WallMS < best.WallMS {
			best = p
		}
	}
	return cfg, best, recErr
}

func main() {
	scale := flag.Float64("scale", 0.0005, "data scale factor relative to the paper's databases")
	seed := flag.Int64("seed", 42, "generator seed")
	size := flag.Int("size", 100, "queries per workload sample")
	parallel := flag.Int("parallel", 0, "candidate-evaluation parallelism (0 = GOMAXPROCS, 1 = sequential)")
	reps := flag.Int("reps", 3, "repetitions per search; the fastest wall is reported")
	outFile := flag.String("o", "BENCH_whatif.json", "write the JSON perf record to this file (empty = stdout only)")
	flag.Parse()

	if *scale <= 0 {
		fmt.Fprintf(os.Stderr, "whatifbench: -scale must be positive, got %g\n", *scale)
		flag.Usage()
		os.Exit(2)
	}
	if *size <= 0 {
		fmt.Fprintf(os.Stderr, "whatifbench: -size must be positive, got %d\n", *size)
		flag.Usage()
		os.Exit(2)
	}
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "whatifbench: -parallel must be >= 0, got %d\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}
	if *reps <= 0 {
		fmt.Fprintf(os.Stderr, "whatifbench: -reps must be positive, got %d\n", *reps)
		flag.Usage()
		os.Exit(2)
	}

	newLab := func(disableCache bool) *bench.Lab {
		l := bench.NewLab(*scale, *seed)
		l.WorkloadSize = *size
		l.Parallelism = *parallel
		l.DisableWhatIfCache = disableCache
		return l
	}
	// One lab per mode; engines load once per (system, database) cell and
	// are shared by that mode's searches.
	off := newLab(true)
	on := newLab(false)

	rep := report{Scale: *scale, Seed: *seed, Size: *size, Parallelism: *parallel, Reps: *reps, Identical: true}
	var speedupSum float64
	var wallOffSum, wallOnSum float64
	var totalCalls, totalHits int64
	fmt.Printf("%-3s %-8s %12s %12s %8s %9s %6s\n",
		"sys", "family", "uncached ms", "cached ms", "speedup", "hit rate", "same")
	for _, c := range cases {
		cfgOff, pOff, errOff := runSearch(off, c.System, c.Family, *reps)
		cfgOn, pOn, errOn := runSearch(on, c.System, c.Family, *reps)

		r := caseResult{searchCase: c, Uncached: pOff, Cached: pOn}
		switch {
		case errOff != nil || errOn != nil:
			// Both modes must fail identically (System A's capitulation is
			// part of the reproduced behavior, not a perf case).
			r.Identical = fmt.Sprint(errOff) == fmt.Sprint(errOn)
			r.Err = fmt.Sprint(errOff)
		default:
			r.Identical = reflect.DeepEqual(cfgOff, cfgOn)
			if pOn.WallMS > 0 {
				r.Speedup = pOff.WallMS / pOn.WallMS
			}
			if rep.SpeedupMin == 0 || r.Speedup < rep.SpeedupMin {
				rep.SpeedupMin = r.Speedup
			}
			speedupSum += r.Speedup
			wallOffSum += pOff.WallMS
			wallOnSum += pOn.WallMS
			totalCalls += pOn.Estimates
			totalHits += pOn.Hits
		}
		rep.Identical = rep.Identical && r.Identical
		rep.Cases = append(rep.Cases, r)
		fmt.Printf("%-3s %-8s %12.1f %12.1f %7.1fx %8.1f%% %6v\n",
			c.System, c.Family, pOff.WallMS, pOn.WallMS, r.Speedup, 100*pOn.HitRate, r.Identical)
	}
	n := 0
	for _, r := range rep.Cases {
		if r.Err == "" {
			n++
		}
	}
	if n > 0 {
		rep.SpeedupMean = speedupSum / float64(n)
	}
	if totalCalls > 0 {
		rep.HitRate = float64(totalHits) / float64(totalCalls)
	}
	if wallOnSum > 0 {
		rep.SpeedupTotal = wallOffSum / wallOnSum
	}
	fmt.Printf("\nspeedup total %.2fx (min %.2fx mean %.2fx), cached hit rate %.1f%%, recommendations identical: %v\n",
		rep.SpeedupTotal, rep.SpeedupMin, rep.SpeedupMean, 100*rep.HitRate, rep.Identical)

	if *outFile != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "whatifbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*outFile, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "whatifbench:", err)
			os.Exit(1)
		}
		fmt.Println("whatifbench: wrote", *outFile)
	}
	if !rep.Identical {
		fmt.Fprintln(os.Stderr, "whatifbench: cached and uncached recommendations differ")
		os.Exit(1)
	}
}
