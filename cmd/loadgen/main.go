// Command loadgen drives a seeded session fleet against a gateway —
// hundreds to thousands of sessions across tenants — and writes the
// BENCH_gateway.json artifact (throughput, p50/p99, rejection rate,
// per-tenant goal satisfaction).
//
// Usage:
//
//	loadgen -selfhost [-config tenants.json] [-sessions 500] ...
//	loadgen -url http://host:8080 -tenants name:key:FAM+FAM,... ...
//
// -selfhost boots a gateway in-process on an ephemeral port (the
// `make gateway-smoke` path: no daemon choreography needed), runs the
// fleet, asserts the gateway went ready and admitted queries, and drains
// it cleanly. -sync executes the seeded schedule as an indexed fan-out
// (tuning off), the mode whose per-tenant audit dumps and goal reports
// are byte-identical across runs and worker counts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/gateway"
)

func main() {
	url := flag.String("url", "", "target gateway base URL (remote mode)")
	tenantsFlag := flag.String("tenants", "", "remote-mode tenant identities as name:key:FAM+FAM,...")
	selfhost := flag.Bool("selfhost", false, "boot a gateway in-process and drive it")
	configPath := flag.String("config", "", "selfhost tenant config JSON (default: built-in 3-tenant config)")
	scale := flag.Float64("scale", 0.0002, "selfhost data scale factor (built-in config only)")
	tuning := flag.Bool("tuning", false, "selfhost: enable the per-tenant goal tuner (built-in config only)")
	shards := flag.Int("shards", 0, "selfhost: serve partition-parallel through a shard cluster of this size (0 = config's setting)")
	sessions := flag.Int("sessions", 500, "total sessions, assigned to tenants round-robin")
	queries := flag.Int("queries", 1, "queries per session")
	workers := flag.Int("workers", 16, "concurrent sessions")
	seed := flag.Int64("seed", 42, "schedule seed")
	syncMode := flag.Bool("sync", false, "deterministic indexed fan-out over the seeded schedule (disables tuning)")
	outFile := flag.String("o", "", "write BENCH_gateway.json-style metrics to this file")
	goalReport := flag.Bool("goal-report", false, "selfhost: print the deterministic per-tenant goal report")
	auditDir := flag.String("audit-dir", "", "selfhost: write per-tenant audit dumps (JSONL) into this directory")
	flag.Parse()

	if *selfhost == (*url != "") {
		fmt.Fprintln(os.Stderr, "loadgen: need exactly one of -selfhost or -url")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*url, *tenantsFlag, *selfhost, *configPath, *scale, *tuning, *shards,
		*sessions, *queries, *workers, *seed, *syncMode, *outFile, *goalReport, *auditDir); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// defaultConfig is the built-in 3-tenant selfhost topology: two
// single-family tenants plus one mixed tenant with a tight queue, so an
// overloaded run observes real backpressure.
func defaultConfig(scale float64, tuning bool) gateway.Config {
	return gateway.Config{
		System: "B",
		Scale:  scale,
		Seed:   42,
		Pool:   30,
		Tuning: tuning,
		Tenants: []gateway.TenantConfig{
			{Name: "alpha", APIKey: "alpha-key", Families: []string{"NREF2J"}, MaxQueue: 16, MaxConcurrency: 2, Window: 16},
			{Name: "beta", APIKey: "beta-key", Families: []string{"NREF3J"}, MaxQueue: 16, MaxConcurrency: 2, Window: 16},
			{Name: "gamma", APIKey: "gamma-key", Families: []string{"NREF2J", "NREF3J"}, MaxQueue: 4, MaxConcurrency: 1, Window: 16},
		},
	}
}

func parseTenants(s string) ([]gateway.FleetTenant, error) {
	var out []gateway.FleetTenant
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("tenant %q: want name:key:FAM+FAM", part)
		}
		out = append(out, gateway.FleetTenant{
			Name:     fields[0],
			APIKey:   fields[1],
			Families: strings.Split(fields[2], "+"),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tenants in %q", s)
	}
	return out, nil
}

func run(url, tenantsFlag string, selfhost bool, configPath string, scale float64, tuning bool, shards int,
	sessions, queries, workers int, seed int64, syncMode bool, outFile string, goalReport bool, auditDir string) error {
	var (
		g         *gateway.Gateway
		fleetTen  []gateway.FleetTenant
		readySecs float64
		err       error
	)

	if selfhost {
		var cfg gateway.Config
		if configPath != "" {
			cfg, err = gateway.LoadConfig(configPath)
			if err != nil {
				return err
			}
		} else {
			cfg = defaultConfig(scale, tuning)
		}
		if syncMode && cfg.Tuning {
			fmt.Println("loadgen: -sync disables tuning (the determinism contract fixes the configuration)")
			cfg.Tuning = false
		}
		if shards > 0 {
			cfg.Shards = shards
			if err := cfg.Normalize(); err != nil {
				return err
			}
		}
		for _, t := range cfg.Tenants {
			fleetTen = append(fleetTen, gateway.FleetTenant{Name: t.Name, APIKey: t.APIKey, Families: t.Families})
		}

		g, err = gateway.New(gateway.Options{Config: cfg})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: g}
		// conflint:worker lifecycle=external selfhost listener lives for the whole run; the deferred srv.Shutdown below closes it last, after the gateway drain
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "loadgen: serve:", err)
			}
		}()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: listener shutdown:", err)
			}
		}()
		url = "http://" + ln.Addr().String()

		fmt.Printf("loadgen: selfhost gateway on %s (system %s, scale %g); loading catalog...\n", url, cfg.System, cfg.Scale)
		start := time.Now()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
		err = g.WaitReady(ctx)
		cancel()
		if err != nil {
			return err
		}
		readySecs = time.Since(start).Seconds()
		if !probeReady(url) {
			return fmt.Errorf("/readyz did not report ok after load")
		}
		fmt.Printf("loadgen: ready in %.1fs\n", readySecs)
	} else {
		if fleetTen, err = parseTenants(tenantsFlag); err != nil {
			return err
		}
		if !probeReady(url) {
			return fmt.Errorf("%s/readyz is not ok", url)
		}
	}

	fleet, err := gateway.NewFleet(gateway.FleetOptions{
		BaseURL:           url,
		Tenants:           fleetTen,
		Sessions:          sessions,
		QueriesPerSession: queries,
		Workers:           workers,
		Seed:              seed,
		Sync:              syncMode,
	})
	if err != nil {
		return err
	}
	fmt.Printf("loadgen: %d sessions x %d queries over %d tenants, %d workers (sync=%v, seed %d)\n",
		sessions, queries, len(fleetTen), workers, syncMode, seed)
	rep, err := fleet.Run()
	if err != nil {
		return err
	}
	fmt.Printf("loadgen: %d/%d accepted, %d rejected (%.1f%%), %.1f req/s, p50 %.1fms p99 %.1fms in %.1fs\n",
		rep.Accepted, rep.Requests, rep.Rejected, rep.RejectionRate*100,
		rep.Throughput, rep.P50Millis, rep.P99Millis, rep.WallSeconds)
	if rep.Accepted == 0 {
		return fmt.Errorf("no queries admitted")
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d transport errors", rep.Errors)
	}

	if selfhost {
		if auditDir != "" {
			if err := os.MkdirAll(auditDir, 0o755); err != nil {
				return err
			}
			for _, t := range fleetTen {
				path := filepath.Join(auditDir, "audit_"+t.Name+".jsonl")
				if err := os.WriteFile(path, g.AuditDumpTenant(t.Name), 0o644); err != nil {
					return err
				}
			}
		}
		if goalReport {
			fmt.Println()
			fmt.Print(g.GoalReport())
		}
	}

	if outFile != "" {
		if err := writeBenchJSON(outFile, url, g, rep, seed, syncMode, readySecs); err != nil {
			return err
		}
	}

	if selfhost {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := g.Shutdown(ctx); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		s := g.Stats()
		if s.Inflight != 0 {
			return fmt.Errorf("shutdown left %d queries in flight", s.Inflight)
		}
		fmt.Printf("loadgen: gateway drained cleanly (%d accepted, %d rejected, %d retunes)\n",
			s.Accepted, s.Rejected, s.Retunes)
	}
	return nil
}

func probeReady(url string) bool {
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// writeBenchJSON emits the gateway bench artifact: the fleet's
// client-side view plus the gateway's per-tenant goal ledgers (selfhost)
// or the remote /v1/stats snapshot.
func writeBenchJSON(path, url string, g *gateway.Gateway, rep gateway.FleetReport, seed int64, syncMode bool, readySecs float64) error {
	rec := map[string]any{
		"bench":         "gateway",
		"seed":          seed,
		"sync":          syncMode,
		"ready_seconds": round3(readySecs),
		"fleet":         rep,
	}
	if g != nil {
		s := g.Stats()
		rec["tenants"] = s.Tenants
		rec["retunes"] = s.Retunes
	} else if url != "" {
		resp, err := http.Get(url + "/v1/stats")
		if err == nil {
			defer resp.Body.Close()
			var s gateway.Snapshot
			if json.NewDecoder(resp.Body).Decode(&s) == nil {
				rec["tenants"] = s.Tenants
				rec["retunes"] = s.Retunes
			}
		}
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func round3(x float64) float64 { return float64(int64(x*1000+0.5)) / 1000 }
