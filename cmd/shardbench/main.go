// Command shardbench measures the sharded engine's partition-parallel
// scaling curve and verifies its determinism contract, writing
// BENCH_shard.json.
//
// For each shard count it loads one NREF coordinator, builds a cluster,
// runs a fixed multi-join workload, and records:
//
//   - a hash of every result's rendered bytes (must be identical at
//     every shard count — the byte-identity contract),
//   - simulated seconds for one workload pass, the derived simulated
//     throughput (must scale monotonically with shard count:
//     max-of-shards replaces sum-of-shards in the cost model) and the
//     simulated speedup over the 1-shard baseline (always reported —
//     the machine-independent scaling number),
//   - best-of-N wall-clock milliseconds over the repetitions
//     (informational on one core; the ≥1.5× speedup at 4 shards is
//     computed and asserted only when GOMAXPROCS ≥ 4),
//   - the count of coordinator-serial fallbacks, which must be zero:
//     every workload query — self-joins and key-mismatched joins
//     included — runs partition-parallel via partition-wise joins or
//     cross-shard row exchange,
//   - the coordinator-side goal level and recommended configuration
//     (topology-invariant: E, H and recommendations always derive from
//     the full coordinator data).
//
// It then runs the elastic autoscaler in dry-run mode against the
// observed window metrics and records the audited proposals; dry-run
// must leave the topology untouched.
//
// Exit status is nonzero if any contract is violated, so `make
// shard-smoke` doubles as a regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/recommender"
	"repro/internal/shard"
)

// workload is the fixed benchmark mix: multi-join aggregates
// partition-wise on the native keys, a key-mismatched join that forces
// a cross-shard row exchange, IN-subqueries with global HAVING sets,
// single-table scans, and one self-join-only query that runs
// partition-wise on the shared key.
var workload = []string{
	`SELECT t.lineage, COUNT(DISTINCT t2.nref_id)
	 FROM source s, taxonomy t, taxonomy t2
	 WHERE t.nref_id = s.nref_id AND t.lineage = t2.lineage
	   AND s.p_name = 'Simian Virus 40'
	 GROUP BY t.lineage`,
	`SELECT t.taxon_id, COUNT(*)
	 FROM taxonomy t, organism o
	 WHERE t.nref_id = o.nref_id AND t.nref_id = 'NF0000041'
	 GROUP BY t.taxon_id`,
	`SELECT taxon_id, COUNT(*) FROM taxonomy GROUP BY taxon_id`,
	`SELECT lineage, COUNT(DISTINCT nref_id) FROM taxonomy GROUP BY lineage`,
	`SELECT o.name, COUNT(*) FROM organism o, taxonomy t
	 WHERE o.taxon_id = t.taxon_id AND o.ordinal = 7 GROUP BY o.name`,
	`SELECT r.taxon_id, COUNT(*) FROM taxonomy r, organism s
	 WHERE r.nref_id = s.nref_id
	   AND r.nref_id IN (SELECT nref_id FROM taxonomy GROUP BY nref_id HAVING COUNT(*) < 4)
	 GROUP BY r.taxon_id`,
	`SELECT t.taxon_id, COUNT(*) FROM taxonomy t, taxonomy t2
	 WHERE t.nref_id = t2.nref_id AND t.nref_id = 'NF0000041' GROUP BY t.taxon_id`,
}

// topologyResult is one shard count's record in BENCH_shard.json.
type topologyResult struct {
	Shards    int   `json:"shards"`
	Pool      int   `json:"pool"`
	Queries   int   `json:"queries"`
	Fallbacks int64 `json:"fallbacks"`
	// Exchanges counts queries that repartitioned at least one table.
	Exchanges  int64   `json:"exchanges"`
	ResultHash string  `json:"result_hash"`
	SimSeconds float64 `json:"sim_seconds"`
	SimQPS     float64 `json:"sim_qps"`
	// SimSpeedup is this topology's simulated speedup over the 1-shard
	// baseline — reported unconditionally (it does not depend on the
	// machine), unlike the wall-clock figure.
	SimSpeedup float64 `json:"sim_speedup"`
	// WallMillis is the best (minimum) single-repetition wall time.
	WallMillis float64 `json:"wall_ms"`
	GoalLevel  float64 `json:"goal_level"`
	RecHash    string  `json:"recommendation_hash"`
}

type benchReport struct {
	Scale     float64          `json:"scale"`
	Seed      int64            `json:"seed"`
	Mode      string           `json:"mode"`
	CPUs      int              `json:"cpus"`
	Reps      int              `json:"reps"`
	Topology  []topologyResult `json:"topology"`
	Rec       string           `json:"recommendation"`
	Autoscale struct {
		DryRun bool                `json:"dry_run"`
		Audit  []shard.AuditRecord `json:"audit"`
	} `json:"autoscale"`
	WallSpeedup4 float64  `json:"wall_speedup_4,omitempty"`
	Violations   []string `json:"violations,omitempty"`
}

func main() {
	scale := flag.Float64("scale", 0.001, "NREF data scale factor")
	seed := flag.Int64("seed", 42, "data generation seed")
	mode := flag.String("mode", "hash", "partitioning mode (hash or range)")
	pool := flag.Int("pool", 4, "worker-pool width per partition-parallel query")
	shardList := flag.String("shards", "1,2,4,8", "comma-separated shard counts")
	reps := flag.Int("reps", 3, "workload repetitions per topology (min 3: wall time is best-of-N)")
	smoke := flag.Bool("smoke", false, "CI preset: shards 1,4")
	out := flag.String("o", "BENCH_shard.json", "output file")
	flag.Parse()

	if *smoke {
		*shardList = "1,4"
	}
	// Wall time is best-of-N; fewer than 3 repetitions makes the minimum
	// a noise sample, so the floor holds even in smoke mode.
	if *reps < 3 {
		*reps = 3
	}
	counts, err := parseCounts(*shardList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shardbench:", err)
		os.Exit(2)
	}
	if err := run(*scale, *seed, *mode, *pool, counts, *reps, *out); err != nil {
		fmt.Fprintln(os.Stderr, "shardbench:", err)
		os.Exit(1)
	}
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad shard count %q", part)
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

func run(scale float64, seed int64, mode string, pool int, counts []int, reps int, out string) error {
	fmt.Printf("shardbench: NREF scale %g seed %d, mode %s, pool %d, %d queries × %d reps, GOMAXPROCS=%d\n",
		scale, seed, mode, pool, len(workload), reps, runtime.GOMAXPROCS(0))

	coord := engine.New(catalog.NREF(), scale, engine.SystemB())
	if err := datagen.GenerateNREF(coord, datagen.NREFOptions{ScaleFactor: scale, Seed: seed}); err != nil {
		return err
	}
	coord.CollectStats()
	if _, err := coord.ApplyConfig(engine.OneColumnConfiguration(coord)); err != nil {
		return err
	}

	// Topology-invariant coordinator surfaces: the goal level over the
	// estimates E and the recommended configuration.
	goal := core.Example2Goal()
	est := make([]core.Measure, len(workload))
	for i, q := range workload {
		m, err := coord.Estimate(q)
		if err != nil {
			return fmt.Errorf("estimate query %d: %w", i, err)
		}
		est[i] = core.Measure{Seconds: m.Seconds, TimedOut: m.TimedOut}
	}
	goalLevel := goal.Satisfaction(core.NewCFC(est, 0))
	budget := coord.NewWhatIf().EstimateSize(engine.OneColumnConfiguration(coord))
	recCfg, err := recommender.New(coord, recommender.SystemB()).Parallel(1).Recommend(workload, budget)
	if err != nil {
		return fmt.Errorf("recommend: %w", err)
	}
	recRender := renderConfig(recCfg)

	report := benchReport{Scale: scale, Seed: seed, Mode: mode, CPUs: runtime.GOMAXPROCS(0), Reps: reps, Rec: recRender}
	var wallByShards = map[int]float64{}
	for _, n := range counts {
		cl, err := shard.New(coord, shard.Spec{Shards: n, Mode: shard.Mode(mode)}, pool)
		if err != nil {
			return fmt.Errorf("build %d-shard cluster: %w", n, err)
		}
		h := fnv.New64a()
		var simSeconds float64 // one workload pass (identical every rep: the sim clock is deterministic)
		bestWall := time.Duration(0)
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			for i, q := range workload {
				res, m, err := cl.Run(q, 0)
				if err != nil {
					return fmt.Errorf("%d shards, query %d: %w", n, i, err)
				}
				if rep == 0 {
					h.Write([]byte(render(res)))
					simSeconds += m.Seconds
				}
			}
			if w := time.Since(start); rep == 0 || w < bestWall {
				bestWall = w
			}
		}

		// The recommendation and goal level must be reproducible with the
		// cluster live at this topology (they read the coordinator only).
		recAgain, err := recommender.New(coord, recommender.SystemB()).Parallel(1).Recommend(workload, budget)
		if err != nil {
			return fmt.Errorf("recommend at %d shards: %w", n, err)
		}

		st := cl.Stats()
		tr := topologyResult{
			Shards:     n,
			Pool:       pool,
			Queries:    len(workload) * reps,
			Fallbacks:  st.Fallbacks,
			Exchanges:  st.Exchanges,
			ResultHash: fmt.Sprintf("%016x", h.Sum64()),
			SimSeconds: simSeconds,
			SimQPS:     float64(len(workload)) / simSeconds,
			SimSpeedup: 1,
			WallMillis: float64(bestWall.Microseconds()) / 1000,
			GoalLevel:  goalLevel,
			RecHash:    hashString(renderConfig(recAgain)),
		}
		if base := report.Topology; len(base) > 0 && simSeconds > 0 {
			tr.SimSpeedup = base[0].SimSeconds / simSeconds
		}
		report.Topology = append(report.Topology, tr)
		wallByShards[n] = tr.WallMillis
		fmt.Printf("shardbench: %2d shards — sim %8.1fs (%6.4f q/s sim, %.2fx), wall %7.1fms best-of-%d, hash %s, %d fallbacks, %d exchanges\n",
			n, tr.SimSeconds, tr.SimQPS, tr.SimSpeedup, tr.WallMillis, reps, tr.ResultHash, tr.Fallbacks, tr.Exchanges)
	}

	// Dry-run autoscaler demo over the largest topology: the observed
	// metrics drive the default rules, every proposal is audited, nothing
	// mutates.
	last := counts[len(counts)-1]
	cl, err := shard.New(coord, shard.Spec{Shards: last, Mode: shard.Mode(mode)}, pool)
	if err != nil {
		return err
	}
	upd := shard.NewUpdater(cl, shard.Bounds{MinShards: 1, MaxShards: 16, MinPool: 1, MaxPool: 32}, true)
	rec := &shard.Recommender{Rules: shard.DefaultRules(60), Predict: cl.PredictSeconds}
	meanSim := report.Topology[len(report.Topology)-1].SimSeconds / float64(len(workload)*reps)
	for w := 1; w <= 3; w++ {
		upd.Apply(rec.Recommend(
			shard.State{Shards: cl.Shards(), Pool: cl.Pool()},
			shard.WindowMetrics{Window: w, Queries: len(workload) * reps, MeanSeconds: meanSim, GoalLevel: goalLevel},
		))
	}
	report.Autoscale.DryRun = true
	report.Autoscale.Audit = upd.Audit()

	report.Violations = check(&report, wallByShards, cl, last)
	for _, v := range report.Violations {
		fmt.Fprintln(os.Stderr, "shardbench: VIOLATION:", v)
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("shardbench: wrote %s\n", out)
	if len(report.Violations) > 0 {
		return fmt.Errorf("%d contract violation(s)", len(report.Violations))
	}
	return nil
}

// check enforces the determinism and scaling contracts.
func check(r *benchReport, wall map[int]float64, cl *shard.Cluster, lastShards int) []string {
	var out []string
	base := r.Topology[0]
	for _, tr := range r.Topology[1:] {
		if tr.ResultHash != base.ResultHash {
			out = append(out, fmt.Sprintf("results at %d shards differ from %d shards (%s vs %s)",
				tr.Shards, base.Shards, tr.ResultHash, base.ResultHash))
		}
		if tr.RecHash != base.RecHash {
			out = append(out, fmt.Sprintf("recommendation at %d shards differs from %d shards", tr.Shards, base.Shards))
		}
	}
	for i := 1; i < len(r.Topology); i++ {
		prev, cur := r.Topology[i-1], r.Topology[i]
		if cur.SimQPS < prev.SimQPS {
			out = append(out, fmt.Sprintf("simulated throughput regressed: %.4f q/s at %d shards < %.4f at %d",
				cur.SimQPS, cur.Shards, prev.SimQPS, prev.Shards))
		}
	}
	for _, tr := range r.Topology {
		if tr.Fallbacks != 0 {
			out = append(out, fmt.Sprintf("%d coordinator-serial fallbacks at %d shards, want 0 (partition-wise joins + row exchange cover the workload)",
				tr.Fallbacks, tr.Shards))
		}
	}
	// Wall clock is machine-dependent: both the JSON field and the
	// assertion exist only when enough cores back the fan-out. The
	// simulated speedup above is the portable scaling record.
	if runtime.GOMAXPROCS(0) >= 4 {
		if w1, ok1 := wall[1]; ok1 {
			if w4, ok4 := wall[4]; ok4 && w4 > 0 {
				r.WallSpeedup4 = w1 / w4
				if r.WallSpeedup4 < 1.5 {
					out = append(out, fmt.Sprintf("wall speedup at 4 shards is %.2fx, want >= 1.5x on %d cores",
						r.WallSpeedup4, runtime.GOMAXPROCS(0)))
				}
			}
		}
	}
	for _, a := range r.Autoscale.Audit {
		if a.Action == shard.ActionApply || a.Action == shard.ActionError {
			out = append(out, fmt.Sprintf("dry-run autoscaler performed action %q on window %d", a.Action, a.Window))
		}
	}
	if cl.Shards() != lastShards {
		out = append(out, fmt.Sprintf("dry-run autoscaler mutated topology to %d shards", cl.Shards()))
	}
	if st := cl.Stats(); st.Reshards != 0 {
		out = append(out, fmt.Sprintf("dry-run autoscaler performed %d reshards", st.Reshards))
	}
	return out
}

// render canonicalizes a result for hashing.
func render(res *exec.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Cols, ","))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		sb.WriteString(row.Key())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// renderConfig canonicalizes a configuration (sorted index and view
// definitions) for identity comparison.
func renderConfig(c conf.Configuration) string {
	lines := make([]string, 0, len(c.Indexes)+len(c.Views))
	for _, d := range c.Indexes {
		lines = append(lines, "index "+d.Table+"("+strings.Join(d.Columns, ",")+")")
	}
	for _, v := range c.Views {
		lines = append(lines, "view "+v.Name+" = "+v.SQL)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func hashString(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}
