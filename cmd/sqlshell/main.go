// Command sqlshell is an interactive SQL shell over the benchmark engine:
// generate a database, type queries, and see results alongside their
// simulated cost and chosen plan. Shell commands:
//
//	\config P|1C        switch configuration
//	\explain <query>    show the plan without executing
//	\insert ...         INSERT INTO t VALUES (...) statements also work
//	\tables             list tables and row counts
//	\quit
//
// Usage:
//
//	sqlshell [-db nref|tpch|tpch-skew] [-scale f] [-seed n]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/sql"
	"repro/internal/val"
)

func main() {
	db := flag.String("db", "nref", "database: nref, tpch, or tpch-skew")
	scale := flag.Float64("scale", 0.0005, "scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	flag.Parse()

	e, err := buildEngine(*db, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s at scale %g, configuration P; \\quit to exit\n", *db, *scale)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("sql> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, t := range e.Schema.Tables() {
				fmt.Printf("  %-24s %9d rows\n", t.Name, e.Heap(t.Name).NumRows())
			}
		case strings.HasPrefix(line, `\config `):
			name := strings.TrimSpace(strings.TrimPrefix(line, `\config `))
			var err error
			switch strings.ToUpper(name) {
			case "P":
				_, err = e.ApplyConfig(engine.PConfiguration(e))
			case "1C":
				_, err = e.ApplyConfig(engine.OneColumnConfiguration(e))
			default:
				err = fmt.Errorf("unknown configuration %q (P or 1C)", name)
			}
			report(err)
		case strings.HasPrefix(line, `\explain `):
			text := strings.TrimPrefix(line, `\explain `)
			p, err := e.Prepare(text)
			if err != nil {
				report(err)
				continue
			}
			fmt.Print(p.Explain())
		default:
			execute(e, line)
		}
	}
}

func buildEngine(db string, scale float64, seed int64) (*engine.Engine, error) {
	var e *engine.Engine
	var err error
	switch db {
	case "nref":
		e = engine.New(catalog.NREF(), scale, engine.SystemA())
		err = datagen.GenerateNREF(e, datagen.NREFOptions{ScaleFactor: scale, Seed: seed})
	case "tpch":
		e = engine.New(catalog.TPCH(), scale, engine.SystemA())
		err = datagen.GenerateTPCH(e, datagen.TPCHOptions{ScaleFactor: scale, Seed: seed})
	case "tpch-skew":
		e = engine.New(catalog.TPCH(), scale, engine.SystemA())
		err = datagen.GenerateTPCH(e, datagen.TPCHOptions{ScaleFactor: scale, Seed: seed, Skew: true, ZipfS: 1})
	default:
		return nil, fmt.Errorf("unknown database %q", db)
	}
	if err != nil {
		return nil, err
	}
	e.CollectStats()
	if _, err := e.ApplyConfig(engine.PConfiguration(e)); err != nil {
		return nil, err
	}
	return e, nil
}

func execute(e *engine.Engine, text string) {
	stmt, err := sql.Parse(text)
	if err != nil {
		report(err)
		return
	}
	if ins, ok := stmt.(*sql.InsertStmt); ok {
		rows := make([]val.Row, len(ins.Rows))
		for i, r := range ins.Rows {
			rows[i] = val.Row(r)
		}
		m, err := e.InsertRows(ins.Table, rows)
		if err != nil {
			report(err)
			return
		}
		fmt.Printf("inserted %d rows (%.3fs simulated)\n", len(ins.Rows), m.Seconds)
		return
	}
	res, m, err := e.Run(text, 1800)
	if err != nil {
		report(err)
		return
	}
	if m.TimedOut {
		fmt.Println("timed out after 1800 simulated seconds")
		return
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	for i, r := range res.Rows {
		if i == 40 {
			fmt.Printf("... (%d rows total)\n", len(res.Rows))
			break
		}
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.Raw()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("%d rows, %.2f simulated seconds\n", len(res.Rows), m.Seconds)
}

func report(err error) {
	if err != nil {
		fmt.Println("error:", err)
	} else {
		fmt.Println("ok")
	}
}
