// Command conflint runs the repository's invariant analyzers (internal/lint)
// over the module and reports findings. It is wired into `make verify` via
// `make lint` and must exit clean on this repo.
//
// Usage:
//
//	conflint [flags] [packages]
//
// Packages are directory patterns relative to the module root ("./...",
// "./internal/engine", "internal/autopilot/..."); the default is the whole
// module. Note the module is always parsed in full — cross-package rules
// like atomic-discipline need the whole tree — and the patterns only select
// which packages' findings are reported.
//
// A baseline file (-baseline) suppresses known findings so the tool can be
// adopted on a codebase that is not yet clean. Entries are keyed by
// rule+package+symbol — never line numbers — so unrelated edits in a file do
// not invalidate the baseline. This repository's end state is an empty
// baseline: every rule runs clean with no suppressions.
//
// Exit status: 0 no findings, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	start := time.Now()
	fs := flag.NewFlagSet("conflint", flag.ContinueOnError)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as a JSON array (lockorder findings carry their witness path)")
		hints     = fs.Bool("hints", false, "lint-fix-hints mode: print the offending line and a suggested edit under each finding")
		rules     = fs.String("rules", "", "comma-separated rule subset (default: all); names: lock, determinism, atomic, errcheck, lockorder, goleak, hotalloc")
		benchJSON = fs.String("bench-json", "", "write a BENCH-style JSON record (finding counts per rule, callgraph size) to this file")
		listRules = fs.Bool("list-rules", false, "print the analyzers and exit")
		baseline  = fs.String("baseline", "", "suppress findings matching this baseline file (entries keyed rule+package+symbol)")
		writeBase = fs.String("write-baseline", "", "write the current findings to this baseline file and exit 0")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: conflint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	if *listRules {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByNames(*rules)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
		return 2
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
		return 2
	}

	findings := lint.Run(m, analyzers)
	findings = filterFindings(root, findings, fs.Args())

	if *writeBase != "" {
		if err := writeBaseline(*writeBase, findings); err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "conflint: wrote %d baseline entries to %s\n",
			len(baselineEntries(findings)), *writeBase)
		return 0
	}

	baselined := 0
	if *baseline != "" {
		base, err := readBaseline(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
		kept := findings[:0]
		for _, f := range findings {
			if base[baselineKey(f.Rule, f.Package, f.Symbol)] {
				baselined++
				continue
			}
			kept = append(kept, f)
		}
		findings = kept
	}

	if *benchJSON != "" {
		if err := writeBench(*benchJSON, m, analyzers, findings); err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
	}

	if *jsonOut {
		out, err := lint.RenderJSON(m, findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
		fmt.Print(out)
	} else {
		fmt.Print(lint.RenderText(m, findings, *hints))
	}

	nodes, edges := m.Graph().Stats()
	fmt.Fprintf(os.Stderr, "conflint: %d rules, %d finding(s) (%d baselined), callgraph %d nodes / %d edges, %.2fs wall\n",
		len(analyzers), len(findings), baselined, nodes, edges, time.Since(start).Seconds())

	if len(findings) > 0 {
		return 1
	}
	return 0
}

// moduleRoot walks upward from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// filterFindings keeps findings inside the selected package patterns.
// Patterns are module-root-relative directories, with "..." matching any
// suffix; no patterns (or "./...") selects everything.
func filterFindings(root string, fs []lint.Finding, patterns []string) []lint.Finding {
	if len(patterns) == 0 {
		return fs
	}
	var out []lint.Finding
	for _, f := range fs {
		rel, err := filepath.Rel(root, filepath.Dir(f.File))
		if err != nil {
			rel = filepath.Dir(f.File)
		}
		rel = filepath.ToSlash(rel)
		for _, pat := range patterns {
			if matchPattern(rel, pat) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

func matchPattern(relDir, pat string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	if pat == "..." || pat == "." || pat == "" {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return relDir == prefix || strings.HasPrefix(relDir, prefix+"/")
	}
	return relDir == pat
}

// baselineEntry is one suppressed finding. Line numbers are deliberately
// absent: a baseline keyed on positions would rot on every unrelated edit.
type baselineEntry struct {
	Rule    string `json:"rule"`
	Package string `json:"package"`
	Symbol  string `json:"symbol"`
}

func baselineKey(rule, pkg, symbol string) string {
	return rule + "\x00" + pkg + "\x00" + symbol
}

// baselineEntries dedupes and sorts the findings into baseline form.
func baselineEntries(fs []lint.Finding) []baselineEntry {
	seen := make(map[string]bool, len(fs))
	out := make([]baselineEntry, 0, len(fs))
	for _, f := range fs {
		k := baselineKey(f.Rule, f.Package, f.Symbol)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, baselineEntry{Rule: f.Rule, Package: f.Package, Symbol: f.Symbol})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Symbol < b.Symbol
	})
	return out
}

func writeBaseline(path string, fs []lint.Finding) error {
	data, err := json.MarshalIndent(baselineEntries(fs), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func readBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	out := make(map[string]bool, len(entries))
	for _, e := range entries {
		out[baselineKey(e.Rule, e.Package, e.Symbol)] = true
	}
	return out, nil
}

// writeBench records the run in the same shape as the BENCH_*.json
// artifacts the other harnesses produce.
func writeBench(path string, m *lint.Module, analyzers []*lint.Analyzer, fs []lint.Finding) error {
	perRule := make(map[string]int)
	for _, a := range analyzers {
		perRule[a.Name] = 0
	}
	for _, f := range fs {
		perRule[f.Rule]++
	}
	nodes, edges := m.Graph().Stats()
	var b strings.Builder
	b.WriteString("{\n  \"bench\": \"conflint\",\n")
	fmt.Fprintf(&b, "  \"findings\": %d,\n", len(fs))
	fmt.Fprintf(&b, "  \"callgraph\": {\"nodes\": %d, \"edges\": %d},\n", nodes, edges)
	b.WriteString("  \"per_rule\": {")
	names := make([]string, 0, len(analyzers)+1)
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	if _, ok := perRule["ignore"]; ok && perRule["ignore"] > 0 {
		names = append(names, "ignore")
	}
	for i, n := range names {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    %q: %d", n, perRule[n])
	}
	b.WriteString("\n  }\n}\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
