// Command conflint runs the repository's invariant analyzers (internal/lint)
// over the module and reports findings. It is wired into `make verify` via
// `make lint` and must exit clean on this repo.
//
// Usage:
//
//	conflint [flags] [packages]
//
// Packages are directory patterns relative to the module root ("./...",
// "./internal/engine", "internal/autopilot/..."); the default is the whole
// module. Note the module is always parsed in full — cross-package rules
// like atomic-discipline need the whole tree — and the patterns only select
// which packages' findings are reported.
//
// A baseline file (-baseline) suppresses known findings so the tool can be
// adopted on a codebase that is not yet clean. Entries are keyed by
// rule+package+symbol — never line numbers — so unrelated edits in a file do
// not invalidate the baseline. Parsing is strict: a malformed baseline is a
// load error (exit 2), never an empty suppression set. This repository's end
// state is an empty baseline: every rule runs clean with no suppressions.
//
// With -bench-json, the run additionally executes the full analyzer set
// twice — once sequentially (timing each analyzer) and once parallel over a
// fresh parse — records both walls plus the interprocedural fixpoint
// iteration counts, and verifies the two runs' findings are byte-identical.
//
// Exit status: 0 no findings, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	start := time.Now()
	fs := flag.NewFlagSet("conflint", flag.ContinueOnError)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as a JSON array (shorthand for -format json)")
		format    = fs.String("format", "", "output format: text (default), json, or sarif (SARIF 2.1.0)")
		sarifOut  = fs.String("sarif", "", "additionally write a SARIF 2.1.0 log to this file (the CI code-scanning artifact)")
		hints     = fs.Bool("hints", false, "lint-fix-hints mode: print the offending line and a suggested edit under each finding")
		fix       = fs.Bool("fix", false, "apply suggested fixes (finding-atomic, non-overlapping), gofmt the touched files, then re-lint to prove the fixed findings are gone and no new ones appeared")
		rules     = fs.String("rules", "", "comma-separated rule subset (default: all); names: lock, determinism, atomic, errcheck, lockorder, goleak, hotalloc, epoch, dettaint, shutdownpath, pure, readpath")
		benchJSON = fs.String("bench-json", "", "write a BENCH-style JSON record (per-rule counts and wall, fixpoint iterations, fix-plan wall, sequential-vs-parallel wall) to this file")
		listRules = fs.Bool("list-rules", false, "print the analyzers and exit")
		baseline  = fs.String("baseline", "", "suppress findings matching this baseline file (entries keyed rule+package+symbol; malformed files are load errors)")
		writeBase = fs.String("write-baseline", "", "write the current findings to this baseline file and exit 0")
		parallel  = fs.Int("parallel", 0, "lint worker parallelism across packages (0 = GOMAXPROCS, 1 = sequential); findings are identical at any setting")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: conflint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	if *listRules {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	if *jsonOut && *format == "" {
		*format = "json"
	}
	switch *format {
	case "", "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "conflint: unknown -format %q (have: text, json, sarif)\n", *format)
		return 2
	}
	if *fix && (*benchJSON != "" || *writeBase != "") {
		fmt.Fprintf(os.Stderr, "conflint: -fix cannot be combined with -bench-json or -write-baseline\n")
		return 2
	}

	analyzers, err := lint.ByNames(*rules)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
		return 2
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
		return 2
	}

	var findings []lint.Finding
	var bench *benchStats
	if *benchJSON != "" {
		findings, bench, err = benchRun(root, m, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
	} else {
		findings = lint.RunParallel(m, analyzers, *parallel)
	}
	findings = filterFindings(root, findings, fs.Args())

	if *writeBase != "" {
		if err := lint.WriteBaseline(*writeBase, findings); err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "conflint: wrote %d baseline entries to %s\n",
			len(lint.BaselineEntries(findings)), *writeBase)
		return 0
	}

	findings, baselined, err := applyBaseline(findings, *baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
		return 2
	}

	if *fix {
		code, err := runFix(root, m, analyzers, findings, fs.Args(), *baseline, *parallel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
		return code
	}

	if *benchJSON != "" {
		if err := writeBench(*benchJSON, m, analyzers, findings, bench); err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
	}

	if *sarifOut != "" {
		s, err := lint.RenderSARIF(m, analyzers, findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
		if err := os.WriteFile(*sarifOut, []byte(s), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
	}

	switch *format {
	case "json":
		out, err := lint.RenderJSON(m, findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
		fmt.Print(out)
	case "sarif":
		out, err := lint.RenderSARIF(m, analyzers, findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
		fmt.Print(out)
	default:
		fmt.Print(lint.RenderText(m, findings, *hints))
	}

	nodes, edges := m.Graph().Stats()
	fmt.Fprintf(os.Stderr, "conflint: %d rules, %d finding(s) (%d baselined), callgraph %d nodes / %d edges, %.2fs wall\n",
		len(analyzers), len(findings), baselined, nodes, edges, time.Since(start).Seconds())

	if len(findings) > 0 {
		return 1
	}
	return 0
}

// applyBaseline drops findings matching the baseline file, returning
// the kept findings and the suppressed count. An empty path keeps all.
func applyBaseline(findings []lint.Finding, path string) ([]lint.Finding, int, error) {
	if path == "" {
		return findings, 0, nil
	}
	base, err := lint.ReadBaseline(path)
	if err != nil {
		return nil, 0, err
	}
	baselined := 0
	kept := findings[:0]
	for _, f := range findings {
		if base[lint.BaselineKey(f.Rule, f.Package, f.Symbol)] {
			baselined++
			continue
		}
		kept = append(kept, f)
	}
	return kept, baselined, nil
}

// runFix applies the findings' suggested fixes and proves the pass
// sound: the fixed tree is re-parsed and re-linted with the identical
// rule set, filter, and baseline, and the result must contain exactly
// the unfixed findings — every remaining (rule, message) pair existed
// before, and the count dropped by the number of applied fixes. That
// check is also what makes -fix idempotent: a second pass finds none of
// the fixed findings to fix again.
//
// Exit code: 0 when no findings remain, 1 when unfixable findings
// remain, 2 when verification fails (a fix changed analysis results in
// an unexpected way, e.g. labeling a sink armed its closure audit).
func runFix(root string, m *lint.Module, analyzers []*lint.Analyzer, findings []lint.Finding, patterns []string, baseline string, parallel int) (int, error) {
	plan, err := lint.PlanFixes(m, findings)
	if err != nil {
		return 2, err
	}
	if len(plan.Applied) == 0 {
		fmt.Fprintf(os.Stderr, "conflint: no fixable findings; %d finding(s) remain\n", len(findings))
		if len(findings) > 0 {
			return 1, nil
		}
		return 0, nil
	}
	if err := plan.Write(); err != nil {
		return 2, err
	}

	m2, err := lint.LoadModule(root)
	if err != nil {
		return 2, err
	}
	after := filterFindings(root, lint.RunParallel(m2, analyzers, parallel), patterns)
	after, _, err = applyBaseline(after, baseline)
	if err != nil {
		return 2, err
	}

	before := make(map[string]int, len(findings))
	for _, f := range findings {
		before[f.Rule+"\x00"+f.Message]++
	}
	fresh := 0
	for _, f := range after {
		k := f.Rule + "\x00" + f.Message
		if before[k] == 0 {
			fresh++
			fmt.Fprintf(os.Stderr, "conflint: fix introduced: %s\n", f)
		} else {
			before[k]--
		}
	}
	if fresh > 0 || len(after) != len(findings)-len(plan.Applied) {
		fmt.Fprintf(os.Stderr, "conflint: fix verification failed: %d finding(s) before, %d fixed, %d after (%d new)\n",
			len(findings), len(plan.Applied), len(after), fresh)
		return 2, nil
	}
	fmt.Fprintf(os.Stderr, "conflint: applied %d fix(es) across %d file(s); %d finding(s) remain (%d fix(es) dropped for overlap)\n",
		len(plan.Applied), len(plan.Files), len(after), len(plan.Dropped))
	if len(after) > 0 {
		return 1, nil
	}
	return 0, nil
}

// benchStats is the extra instrumentation a -bench-json run records.
type benchStats struct {
	seqWall   time.Duration
	parWall   time.Duration
	fixWall   time.Duration
	fixable   int
	perRule   map[string]time.Duration
	fixIters  map[string]int
	identical bool
}

// benchRun executes the analyzers twice — sequentially on m (timing each
// analyzer) and in parallel on a fresh parse — and checks the rendered
// findings are byte-identical. The sequential findings are returned as
// the run's result.
func benchRun(root string, m *lint.Module, analyzers []*lint.Analyzer) ([]lint.Finding, *benchStats, error) {
	t0 := time.Now()
	seqF, perRule := lint.RunTimed(m, analyzers)
	seqWall := time.Since(t0)

	m2, err := lint.LoadModule(root)
	if err != nil {
		return nil, nil, err
	}
	t1 := time.Now()
	parF := lint.RunParallel(m2, analyzers, 0)
	parWall := time.Since(t1)

	seqJSON, err := lint.RenderJSON(m, seqF)
	if err != nil {
		return nil, nil, err
	}
	parJSON, err := lint.RenderJSON(m2, parF)
	if err != nil {
		return nil, nil, err
	}

	// Time the fix planner (plan only — nothing is written): the edit
	// computation plus per-file splice-and-gofmt over every fixable
	// finding of the run.
	t2 := time.Now()
	plan, err := lint.PlanFixes(m, seqF)
	if err != nil {
		return nil, nil, err
	}
	fixWall := time.Since(t2)

	return seqF, &benchStats{
		seqWall:   seqWall,
		parWall:   parWall,
		fixWall:   fixWall,
		fixable:   len(plan.Applied),
		perRule:   perRule,
		fixIters:  m.FixpointIters(),
		identical: seqJSON == parJSON,
	}, nil
}

// scopeRuleKeys restricts a per-rule map to the selected analyzers (the
// shared "effects" fixpoint is attributed to its consumers, pure and
// readpath), so -bench-json never reports sections for unselected
// rules.
func scopeRuleKeys[V any](src map[string]V, analyzers []*lint.Analyzer) map[string]V {
	allowed := make(map[string]bool, len(analyzers)+1)
	for _, a := range analyzers {
		allowed[a.Name] = true
		if a.Name == "pure" || a.Name == "readpath" {
			allowed["effects"] = true
		}
	}
	out := make(map[string]V, len(src))
	for k, v := range src {
		if allowed[k] {
			out[k] = v
		}
	}
	return out
}

// moduleRoot walks upward from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// filterFindings keeps findings inside the selected package patterns.
// Patterns are module-root-relative directories, with "..." matching any
// suffix; no patterns (or "./...") selects everything.
func filterFindings(root string, fs []lint.Finding, patterns []string) []lint.Finding {
	if len(patterns) == 0 {
		return fs
	}
	var out []lint.Finding
	for _, f := range fs {
		rel, err := filepath.Rel(root, filepath.Dir(f.File))
		if err != nil {
			rel = filepath.Dir(f.File)
		}
		rel = filepath.ToSlash(rel)
		for _, pat := range patterns {
			if matchPattern(rel, pat) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

func matchPattern(relDir, pat string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	if pat == "..." || pat == "." || pat == "" {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return relDir == prefix || strings.HasPrefix(relDir, prefix+"/")
	}
	return relDir == pat
}

// writeBench records the run in the same shape as the BENCH_*.json
// artifacts the other harnesses produce.
func writeBench(path string, m *lint.Module, analyzers []*lint.Analyzer, fs []lint.Finding, bench *benchStats) error {
	perRule := make(map[string]int)
	for _, a := range analyzers {
		perRule[a.Name] = 0
	}
	for _, f := range fs {
		perRule[f.Rule]++
	}
	nodes, edges := m.Graph().Stats()
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }
	var b strings.Builder
	b.WriteString("{\n  \"bench\": \"conflint\",\n")
	fmt.Fprintf(&b, "  \"findings\": %d,\n", len(fs))
	fmt.Fprintf(&b, "  \"gomaxprocs\": %d,\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "  \"callgraph\": {\"nodes\": %d, \"edges\": %d},\n", nodes, edges)
	if bench != nil {
		speedup := 0.0
		if bench.parWall > 0 {
			speedup = float64(bench.seqWall) / float64(bench.parWall)
		}
		fmt.Fprintf(&b, "  \"wall_ms\": {\"sequential\": %.3f, \"parallel\": %.3f, \"speedup\": %.2f},\n",
			ms(bench.seqWall), ms(bench.parWall), speedup)
		fmt.Fprintf(&b, "  \"findings_identical\": %v,\n", bench.identical)
		fmt.Fprintf(&b, "  \"fix\": {\"fixable\": %d, \"plan_wall_ms\": %.3f},\n", bench.fixable, ms(bench.fixWall))
		writeSortedMap(&b, "fixpoint_iterations", scopeRuleKeys(bench.fixIters, analyzers), func(v int) string { return fmt.Sprintf("%d", v) })
		b.WriteString(",\n")
		writeSortedMap(&b, "per_rule_wall_ms", scopeRuleKeys(bench.perRule, analyzers), func(v time.Duration) string { return fmt.Sprintf("%.3f", ms(v)) })
		b.WriteString(",\n")
	}
	b.WriteString("  \"per_rule\": {")
	names := make([]string, 0, len(analyzers)+1)
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	if perRule["ignore"] > 0 {
		names = append(names, "ignore")
	}
	for i, n := range names {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    %q: %d", n, perRule[n])
	}
	b.WriteString("\n  }\n}\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// writeSortedMap renders a map as a JSON object with sorted keys, so the
// bench file is byte-stable run to run.
func writeSortedMap[V any](b *strings.Builder, name string, m map[string]V, render func(V) string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(b, "  %q: {", name)
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%q: %s", k, render(m[k]))
	}
	b.WriteString("}")
}
