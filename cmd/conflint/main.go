// Command conflint runs the repository's invariant analyzers (internal/lint)
// over the module and reports findings. It is wired into `make verify` via
// `make lint` and must exit clean on this repo.
//
// Usage:
//
//	conflint [flags] [packages]
//
// Packages are directory patterns relative to the module root ("./...",
// "./internal/engine", "internal/autopilot/..."); the default is the whole
// module. Note the module is always parsed in full — cross-package rules
// like atomic-discipline need the whole tree — and the patterns only select
// which packages' findings are reported.
//
// Exit status: 0 no findings, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("conflint", flag.ContinueOnError)
	var (
		jsonOut   = fs.Bool("json", false, "emit findings as a JSON array")
		hints     = fs.Bool("hints", false, "lint-fix-hints mode: print the offending line and a suggested edit under each finding")
		rules     = fs.String("rules", "", "comma-separated rule subset (default: all); names: lock, determinism, atomic, errcheck")
		benchJSON = fs.String("bench-json", "", "write a BENCH-style JSON record (finding counts per rule) to this file")
		listRules = fs.Bool("list-rules", false, "print the analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: conflint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}

	if *listRules {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lint.ByNames(*rules)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
		return 2
	}
	m, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
		return 2
	}

	findings := lint.Run(m, analyzers)
	findings = filterFindings(root, findings, fs.Args())

	if *benchJSON != "" {
		if err := writeBench(*benchJSON, analyzers, findings); err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
	}

	if *jsonOut {
		out, err := lint.RenderJSON(m, findings)
		if err != nil {
			fmt.Fprintf(os.Stderr, "conflint: %v\n", err)
			return 2
		}
		fmt.Print(out)
	} else {
		fmt.Print(lint.RenderText(m, findings, *hints))
	}

	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "conflint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// moduleRoot walks upward from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// filterFindings keeps findings inside the selected package patterns.
// Patterns are module-root-relative directories, with "..." matching any
// suffix; no patterns (or "./...") selects everything.
func filterFindings(root string, fs []lint.Finding, patterns []string) []lint.Finding {
	if len(patterns) == 0 {
		return fs
	}
	var out []lint.Finding
	for _, f := range fs {
		rel, err := filepath.Rel(root, filepath.Dir(f.File))
		if err != nil {
			rel = filepath.Dir(f.File)
		}
		rel = filepath.ToSlash(rel)
		for _, pat := range patterns {
			if matchPattern(rel, pat) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

func matchPattern(relDir, pat string) bool {
	pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
	if pat == "..." || pat == "." || pat == "" {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return relDir == prefix || strings.HasPrefix(relDir, prefix+"/")
	}
	return relDir == pat
}

// writeBench records the run in the same shape as the BENCH_*.json
// artifacts the other harnesses produce.
func writeBench(path string, analyzers []*lint.Analyzer, fs []lint.Finding) error {
	perRule := make(map[string]int)
	for _, a := range analyzers {
		perRule[a.Name] = 0
	}
	for _, f := range fs {
		perRule[f.Rule]++
	}
	var b strings.Builder
	b.WriteString("{\n  \"bench\": \"conflint\",\n")
	fmt.Fprintf(&b, "  \"findings\": %d,\n", len(fs))
	b.WriteString("  \"per_rule\": {")
	var names []string
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	if _, ok := perRule["ignore"]; ok && perRule["ignore"] > 0 {
		names = append(names, "ignore")
	}
	for i, n := range names {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "\n    %q: %d", n, perRule[n])
	}
	b.WriteString("\n  }\n}\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
