package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestBaselineRoundTrip writes a baseline from findings and reads it
// back: entries are deduped, sorted, and keyed rule+package+symbol —
// never line numbers, so a moved finding still matches.
func TestBaselineRoundTrip(t *testing.T) {
	fs := []lint.Finding{
		{Rule: "hotalloc", Package: "optimizer", Symbol: "search.indexJoinCands", Line: 444},
		{Rule: "goleak", Package: "main", Symbol: "main", Line: 207},
		{Rule: "hotalloc", Package: "optimizer", Symbol: "search.indexJoinCands", Line: 450}, // same symbol, other line
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := lint.WriteBaseline(path, fs); err != nil {
		t.Fatal(err)
	}
	entries := lint.BaselineEntries(fs)
	if len(entries) != 2 {
		t.Fatalf("want 2 deduped entries, got %d: %v", len(entries), entries)
	}
	if entries[0].Rule != "goleak" || entries[1].Rule != "hotalloc" {
		t.Errorf("entries not sorted by rule: %v", entries)
	}

	base, err := lint.ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// A finding at a new line with the same symbol still matches.
	if !base[lint.BaselineKey("hotalloc", "optimizer", "search.indexJoinCands")] {
		t.Error("baseline lost the hotalloc entry")
	}
	if !base[lint.BaselineKey("goleak", "main", "main")] {
		t.Error("baseline lost the goleak entry")
	}
	if base[lint.BaselineKey("hotalloc", "optimizer", "otherFunc")] {
		t.Error("baseline matches a symbol it does not contain")
	}
}

func TestReadBaselineRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.ReadBaseline(path); err == nil {
		t.Error("want an error for malformed baseline JSON")
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		rel, pat string
		want     bool
	}{
		{"internal/engine", "./...", true},
		{"internal/engine", "internal/...", true},
		{"internal/engine", "./internal/engine", true},
		{"internal/engine", "internal/eng", false},
		{"cmd/conflint", "internal/...", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.rel, c.pat); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.rel, c.pat, got, c.want)
		}
	}
}

// TestScopeRuleKeys pins the bench-section scoping contract: per-rule
// maps only carry keys for selected rules, and the shared "effects"
// fixpoint is attributed to its consumers (pure, readpath) — present
// exactly when one of them is selected.
func TestScopeRuleKeys(t *testing.T) {
	src := map[string]int{"epoch": 3, "dettaint": 2, "effects": 5, "shutdownpath": 1}

	pure, err := lint.ByNames("pure")
	if err != nil {
		t.Fatal(err)
	}
	got := scopeRuleKeys(src, pure)
	if len(got) != 1 || got["effects"] != 5 {
		t.Errorf("scope(pure) = %v; want only effects=5", got)
	}

	epoch, err := lint.ByNames("epoch")
	if err != nil {
		t.Fatal(err)
	}
	got = scopeRuleKeys(src, epoch)
	if len(got) != 1 || got["epoch"] != 3 {
		t.Errorf("scope(epoch) = %v; want only epoch=3", got)
	}

	all, err := lint.ByNames("")
	if err != nil {
		t.Fatal(err)
	}
	if got = scopeRuleKeys(src, all); len(got) != len(src) {
		t.Errorf("scope(all) = %v; want every key kept", got)
	}
}
