package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestBaselineRoundTrip writes a baseline from findings and reads it
// back: entries are deduped, sorted, and keyed rule+package+symbol —
// never line numbers, so a moved finding still matches.
func TestBaselineRoundTrip(t *testing.T) {
	fs := []lint.Finding{
		{Rule: "hotalloc", Package: "optimizer", Symbol: "search.indexJoinCands", Line: 444},
		{Rule: "goleak", Package: "main", Symbol: "main", Line: 207},
		{Rule: "hotalloc", Package: "optimizer", Symbol: "search.indexJoinCands", Line: 450}, // same symbol, other line
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := lint.WriteBaseline(path, fs); err != nil {
		t.Fatal(err)
	}
	entries := lint.BaselineEntries(fs)
	if len(entries) != 2 {
		t.Fatalf("want 2 deduped entries, got %d: %v", len(entries), entries)
	}
	if entries[0].Rule != "goleak" || entries[1].Rule != "hotalloc" {
		t.Errorf("entries not sorted by rule: %v", entries)
	}

	base, err := lint.ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// A finding at a new line with the same symbol still matches.
	if !base[lint.BaselineKey("hotalloc", "optimizer", "search.indexJoinCands")] {
		t.Error("baseline lost the hotalloc entry")
	}
	if !base[lint.BaselineKey("goleak", "main", "main")] {
		t.Error("baseline lost the goleak entry")
	}
	if base[lint.BaselineKey("hotalloc", "optimizer", "otherFunc")] {
		t.Error("baseline matches a symbol it does not contain")
	}
}

func TestReadBaselineRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := lint.ReadBaseline(path); err == nil {
		t.Error("want an error for malformed baseline JSON")
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		rel, pat string
		want     bool
	}{
		{"internal/engine", "./...", true},
		{"internal/engine", "internal/...", true},
		{"internal/engine", "./internal/engine", true},
		{"internal/engine", "internal/eng", false},
		{"cmd/conflint", "internal/...", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.rel, c.pat); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.rel, c.pat, got, c.want)
		}
	}
}
