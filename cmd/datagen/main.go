// Command datagen generates the benchmark databases as CSV files, one per
// table (the paper §3.2.1 works from the "raw" relational CSV form of
// NREF and TPC-H).
//
// Usage:
//
//	datagen -db nref|tpch|tpch-skew [-scale f] [-seed n] [-out dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/engine"
)

func main() {
	db := flag.String("db", "nref", "database: nref, tpch, or tpch-skew")
	scale := flag.Float64("scale", 0.001, "scale factor relative to the paper's databases")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	var schema *catalog.Schema
	switch *db {
	case "nref":
		schema = catalog.NREF()
	case "tpch", "tpch-skew":
		schema = catalog.TPCH()
	default:
		fmt.Fprintf(os.Stderr, "unknown database %q\n", *db)
		os.Exit(2)
	}

	// Generate into an engine (its heaps are the in-memory staging area).
	e := engine.New(schema, *scale, engine.SystemA())
	var err error
	switch *db {
	case "nref":
		err = datagen.GenerateNREF(e, datagen.NREFOptions{ScaleFactor: *scale, Seed: *seed})
	case "tpch":
		err = datagen.GenerateTPCH(e, datagen.TPCHOptions{ScaleFactor: *scale, Seed: *seed})
	case "tpch-skew":
		err = datagen.GenerateTPCH(e, datagen.TPCHOptions{ScaleFactor: *scale, Seed: *seed, Skew: true, ZipfS: 1})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, t := range schema.Tables() {
		path := filepath.Join(*out, t.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		h := e.Heap(t.Name)
		if err := datagen.WriteCSV(f, h); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-24s %9d rows -> %s\n", t.Name, h.NumRows(), path)
	}
}
