package catalog

// NREF returns the schema of the Non-redundant REFerence protein database
// (paper §1.1). Primary keys are as underlined in the paper; domains group
// the columns the query-family templates may join:
//
//	nref    — NREF sequence identifiers
//	taxon   — taxonomy identifiers
//	name    — scientific/common names of proteins, species and organisms
//	length  — sequence lengths
//	ordinal — per-sequence ordinals
//
// The long free-text columns (sequence, lineage is kept indexable because
// the paper's Example 1 joins on t.lineage) are marked non-indexable.
func NREF() *Schema {
	s := NewSchema("nref")

	s.MustAdd(MustTable("protein",
		[]Column{
			{Name: "nref_id", Type: TypeString, Domain: "nref", Indexable: true, AvgWidth: 11},
			{Name: "p_name", Type: TypeString, Domain: "name", Indexable: true, AvgWidth: 24},
			{Name: "last_updated", Type: TypeInt, Indexable: true},
			{Name: "sequence", Type: TypeString, Indexable: false, AvgWidth: 320},
			{Name: "length", Type: TypeInt, Domain: "length", Indexable: true},
		},
		[]string{"nref_id"},
	))

	s.MustAdd(MustTable("source",
		[]Column{
			{Name: "nref_id", Type: TypeString, Domain: "nref", Indexable: true, AvgWidth: 11},
			{Name: "p_id", Type: TypeInt, Indexable: true},
			{Name: "taxon_id", Type: TypeInt, Domain: "taxon", Indexable: true},
			{Name: "accession", Type: TypeString, Indexable: true, AvgWidth: 9},
			{Name: "p_name", Type: TypeString, Domain: "name", Indexable: true, AvgWidth: 24},
			{Name: "source", Type: TypeString, Indexable: true, AvgWidth: 9},
		},
		[]string{"nref_id", "p_id"},
		ForeignKey{Columns: []string{"nref_id"}, RefTable: "protein", RefColumns: []string{"nref_id"}},
	))

	s.MustAdd(MustTable("taxonomy",
		[]Column{
			{Name: "nref_id", Type: TypeString, Domain: "nref", Indexable: true, AvgWidth: 11},
			{Name: "taxon_id", Type: TypeInt, Domain: "taxon", Indexable: true},
			{Name: "lineage", Type: TypeString, Domain: "lineage", Indexable: true, AvgWidth: 48},
			{Name: "species_name", Type: TypeString, Domain: "name", Indexable: true, AvgWidth: 20},
			{Name: "common_name", Type: TypeString, Domain: "name", Indexable: true, AvgWidth: 14},
		},
		[]string{"nref_id", "taxon_id"},
		ForeignKey{Columns: []string{"nref_id"}, RefTable: "protein", RefColumns: []string{"nref_id"}},
	))

	s.MustAdd(MustTable("organism",
		[]Column{
			{Name: "nref_id", Type: TypeString, Domain: "nref", Indexable: true, AvgWidth: 11},
			{Name: "ordinal", Type: TypeInt, Domain: "ordinal", Indexable: true},
			{Name: "taxon_id", Type: TypeInt, Domain: "taxon", Indexable: true},
			{Name: "name", Type: TypeString, Domain: "name", Indexable: true, AvgWidth: 18},
		},
		[]string{"nref_id", "ordinal"},
		ForeignKey{Columns: []string{"nref_id"}, RefTable: "protein", RefColumns: []string{"nref_id"}},
	))

	s.MustAdd(MustTable("neighboring_seq",
		[]Column{
			{Name: "nref_id_1", Type: TypeString, Domain: "nref", Indexable: true, AvgWidth: 11},
			{Name: "ordinal", Type: TypeInt, Domain: "ordinal", Indexable: true},
			{Name: "nref_id_2", Type: TypeString, Domain: "nref", Indexable: true, AvgWidth: 11},
			{Name: "taxon_id_2", Type: TypeInt, Domain: "taxon", Indexable: true},
			{Name: "length_2", Type: TypeInt, Domain: "length", Indexable: true},
			{Name: "score", Type: TypeFloat, Indexable: true},
			{Name: "overlap_length", Type: TypeInt, Domain: "length", Indexable: true},
			{Name: "start_1", Type: TypeInt, Indexable: true},
			{Name: "start_2", Type: TypeInt, Indexable: true},
			{Name: "end_1", Type: TypeInt, Indexable: true},
			{Name: "end_2", Type: TypeInt, Indexable: true},
		},
		[]string{"nref_id_1", "ordinal"},
		ForeignKey{Columns: []string{"nref_id_1"}, RefTable: "protein", RefColumns: []string{"nref_id"}},
	))

	s.MustAdd(MustTable("identical_seq",
		[]Column{
			{Name: "nref_id_1", Type: TypeString, Domain: "nref", Indexable: true, AvgWidth: 11},
			{Name: "ordinal", Type: TypeInt, Domain: "ordinal", Indexable: true},
			{Name: "nref_id_2", Type: TypeString, Domain: "nref", Indexable: true, AvgWidth: 11},
			{Name: "taxon_id", Type: TypeInt, Domain: "taxon", Indexable: true},
		},
		[]string{"nref_id_1", "ordinal"},
		ForeignKey{Columns: []string{"nref_id_1"}, RefTable: "protein", RefColumns: []string{"nref_id"}},
	))

	return s
}

// NREFFullScaleRows returns the paper's row count for each NREF table
// (release 1.34, §1.1). Generators multiply these by a scale factor.
func NREFFullScaleRows() map[string]int64 {
	return map[string]int64{
		"protein":         1_100_000,
		"source":          3_000_000,
		"taxonomy":        15_100_000,
		"organism":        1_200_000,
		"neighboring_seq": 78_700_000,
		"identical_seq":   500_000,
	}
}
