package catalog

import (
	"strings"
	"testing"
)

func TestNREFSchemaShape(t *testing.T) {
	s := NREF()
	names := s.TableNames()
	want := []string{"protein", "source", "taxonomy", "organism", "neighboring_seq", "identical_seq"}
	if len(names) != len(want) {
		t.Fatalf("tables = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("table %d = %s, want %s", i, names[i], want[i])
		}
	}
	p := s.Table("protein")
	if p == nil || len(p.PrimaryKey) != 1 || p.PrimaryKey[0] != "nref_id" {
		t.Fatalf("protein PK = %v", p.PrimaryKey)
	}
	// The sequence column is excluded from indexing (paper restriction).
	if p.Column("sequence").Indexable {
		t.Error("sequence must not be indexable")
	}
	// Neighboring_seq is the widest relation.
	widest := ""
	maxW := 0
	for _, tab := range s.Tables() {
		if w := tab.RowWidth(); w > maxW {
			maxW, widest = w, tab.Name
		}
	}
	if widest != "neighboring_seq" && widest != "protein" {
		t.Errorf("unexpected widest table %s", widest)
	}
}

func TestNREFDomains(t *testing.T) {
	s := NREF()
	domains := s.DomainColumns()
	// The nref domain spans every table.
	tables := make(map[string]bool)
	for _, ref := range domains["nref"] {
		tables[strings.ToLower(ref.Table)] = true
	}
	if len(tables) != 6 {
		t.Errorf("nref domain covers %d tables, want 6", len(tables))
	}
	if len(domains["taxon"]) < 4 {
		t.Errorf("taxon domain too small: %v", domains["taxon"])
	}
}

func TestTPCHSchemaShape(t *testing.T) {
	s := TPCH()
	if len(s.Tables()) != 8 {
		t.Fatalf("tables = %d, want 8", len(s.Tables()))
	}
	li := s.Table("lineitem")
	if len(li.PrimaryKey) != 2 {
		t.Errorf("lineitem PK = %v", li.PrimaryKey)
	}
	if len(li.ForeignKeys) != 2 {
		t.Errorf("lineitem FKs = %d", len(li.ForeignKeys))
	}
	// The composite FK to partsupp has two columns.
	for _, fk := range li.ForeignKeys {
		if strings.EqualFold(fk.RefTable, "partsupp") && len(fk.Columns) != 2 {
			t.Errorf("partsupp FK columns = %v", fk.Columns)
		}
	}
}

func TestFullScaleRowCounts(t *testing.T) {
	nref := NREFFullScaleRows()
	if nref["neighboring_seq"] != 78_700_000 || nref["taxonomy"] != 15_100_000 {
		t.Errorf("NREF row counts wrong: %v", nref)
	}
	tpch := TPCHFullScaleRows()
	if tpch["lineitem"] != 60_000_000 || tpch["region"] != 5 {
		t.Errorf("TPC-H row counts wrong: %v", tpch)
	}
	for _, s := range []*Schema{NREF(), TPCH()} {
		counts := nref
		if s.Name == "tpch" {
			counts = tpch
		}
		for _, tab := range s.Tables() {
			if counts[tab.Name] <= 0 {
				t.Errorf("no full-scale count for %s.%s", s.Name, tab.Name)
			}
		}
	}
}

func TestColumnLookupCaseInsensitive(t *testing.T) {
	s := NREF()
	tab := s.Table("TAXONOMY")
	if tab == nil {
		t.Fatal("case-insensitive table lookup failed")
	}
	if tab.ColumnIndex("TAXON_ID") != 1 {
		t.Errorf("ColumnIndex = %d", tab.ColumnIndex("TAXON_ID"))
	}
	if tab.ColumnIndex("nope") != -1 {
		t.Error("missing column should be -1")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewTable("t", []Column{{Name: "a"}, {Name: "A"}}, nil); err == nil {
		t.Error("duplicate columns must be rejected")
	}
	if _, err := NewTable("t", []Column{{Name: "a"}}, []string{"b"}); err == nil {
		t.Error("unknown PK column must be rejected")
	}
	if _, err := NewTable("t", []Column{{Name: "a"}}, nil,
		ForeignKey{Columns: []string{"z"}, RefTable: "u", RefColumns: []string{"x"}}); err == nil {
		t.Error("unknown FK column must be rejected")
	}
	if _, err := NewTable("t", []Column{{Name: "a"}}, nil,
		ForeignKey{Columns: []string{"a"}, RefTable: "u", RefColumns: []string{"x", "y"}}); err == nil {
		t.Error("FK arity mismatch must be rejected")
	}
	s := NewSchema("s")
	s.MustAdd(MustTable("t", []Column{{Name: "a"}}, nil))
	if err := s.Add(MustTable("T", []Column{{Name: "a"}}, nil)); err == nil {
		t.Error("duplicate table must be rejected")
	}
}

func TestIndexableColumns(t *testing.T) {
	tab := MustTable("t", []Column{
		{Name: "a", Indexable: true},
		{Name: "b"},
		{Name: "c", Indexable: true},
	}, nil)
	cols := tab.IndexableColumns()
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "c" {
		t.Errorf("IndexableColumns = %v", cols)
	}
}
