// Package catalog defines relational schemas: tables, typed columns,
// primary/foreign keys, and value domains.
//
// Domains are the benchmark's device (paper §3.2.2) for generating
// meaningful queries: two columns may be joined by a query-family template
// only if they belong to the same domain (e.g., every taxon identifier
// column in NREF shares the "taxon" domain).
package catalog

import (
	"fmt"
	"strings"
)

// Type is the declared SQL type of a column.
type Type uint8

// The supported column types.
const (
	TypeInt Type = iota
	TypeFloat
	TypeString
)

func (t Type) String() string {
	switch t {
	case TypeInt:
		return "BIGINT"
	case TypeFloat:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Column describes one attribute of a table.
type Column struct {
	Name string
	Type Type
	// Domain groups columns that can be meaningfully joined. Empty means
	// the column joins with nothing outside its own key relationships.
	Domain string
	// Indexable reports whether the benchmark allows an index on this
	// column (the paper excludes long free-text columns such as protein
	// sequences from the 1C configuration and from query templates).
	Indexable bool
	// AvgWidth is the average stored width in bytes, used by the size
	// model for strings (ints and floats are always 8).
	AvgWidth int
}

// width returns the modeled byte width of the column.
func (c Column) width() int {
	if c.Type == TypeString {
		if c.AvgWidth > 0 {
			return c.AvgWidth
		}
		return 16
	}
	return 8
}

// ForeignKey declares that Columns of the owning table reference
// RefColumns of RefTable.
type ForeignKey struct {
	Columns    []string
	RefTable   string
	RefColumns []string
}

// Table describes a base relation.
type Table struct {
	Name        string
	Columns     []Column
	PrimaryKey  []string // column names; empty means no primary key
	ForeignKeys []ForeignKey

	byName map[string]int
}

// NewTable builds a table and validates its column references.
func NewTable(name string, cols []Column, pk []string, fks ...ForeignKey) (*Table, error) {
	t := &Table{Name: name, Columns: cols, PrimaryKey: pk, ForeignKeys: fks,
		byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		lc := strings.ToLower(c.Name)
		if _, dup := t.byName[lc]; dup {
			return nil, fmt.Errorf("table %s: duplicate column %s", name, c.Name)
		}
		t.byName[lc] = i
	}
	for _, p := range pk {
		if _, ok := t.byName[strings.ToLower(p)]; !ok {
			return nil, fmt.Errorf("table %s: primary key column %s not found", name, p)
		}
	}
	for _, fk := range fks {
		for _, c := range fk.Columns {
			if _, ok := t.byName[strings.ToLower(c)]; !ok {
				return nil, fmt.Errorf("table %s: foreign key column %s not found", name, c)
			}
		}
		if len(fk.Columns) != len(fk.RefColumns) {
			return nil, fmt.Errorf("table %s: foreign key arity mismatch referencing %s", name, fk.RefTable)
		}
	}
	return t, nil
}

// MustTable is NewTable that panics on error; for statically-known schemas.
func MustTable(name string, cols []Column, pk []string, fks ...ForeignKey) *Table {
	t, err := NewTable(name, cols, pk, fks...)
	if err != nil {
		panic(err)
	}
	return t
}

// ColumnIndex returns the offset of the named column, or -1.
// Lookup is case-insensitive.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	i := t.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return &t.Columns[i]
}

// PrimaryKeyOffsets returns the column offsets of the primary key.
func (t *Table) PrimaryKeyOffsets() []int {
	out := make([]int, len(t.PrimaryKey))
	for i, name := range t.PrimaryKey {
		out[i] = t.ColumnIndex(name)
	}
	return out
}

// RowWidth returns the modeled average stored row width in bytes.
func (t *Table) RowWidth() int {
	w := 4 // row header
	for _, c := range t.Columns {
		w += c.width()
	}
	return w
}

// IndexableColumns returns the names of all indexable columns in
// declaration order. This defines the 1C configuration for the table.
func (t *Table) IndexableColumns() []string {
	out := make([]string, 0, len(t.Columns))
	for _, c := range t.Columns {
		if c.Indexable {
			out = append(out, c.Name)
		}
	}
	return out
}

// Schema is a named collection of tables.
type Schema struct {
	Name   string
	tables map[string]*Table
	order  []string
}

// NewSchema creates an empty schema.
func NewSchema(name string) *Schema {
	return &Schema{Name: name, tables: make(map[string]*Table)}
}

// Add registers a table; it returns an error on duplicate names.
func (s *Schema) Add(t *Table) error {
	lc := strings.ToLower(t.Name)
	if _, dup := s.tables[lc]; dup {
		return fmt.Errorf("schema %s: duplicate table %s", s.Name, t.Name)
	}
	s.tables[lc] = t
	s.order = append(s.order, t.Name)
	return nil
}

// MustAdd is Add that panics on error.
func (s *Schema) MustAdd(t *Table) {
	if err := s.Add(t); err != nil {
		panic(err)
	}
}

// Table returns the named table (case-insensitive), or nil.
func (s *Schema) Table(name string) *Table {
	return s.tables[strings.ToLower(name)]
}

// Tables returns all tables in declaration order.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, len(s.order))
	for i, n := range s.order {
		out[i] = s.tables[strings.ToLower(n)]
	}
	return out
}

// TableNames returns the table names in declaration order.
func (s *Schema) TableNames() []string {
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

// DomainColumns returns, for every domain, the (table, column) pairs in it,
// in schema declaration order. Only indexable columns participate.
func (s *Schema) DomainColumns() map[string][]ColumnRef {
	out := make(map[string][]ColumnRef)
	for _, t := range s.Tables() {
		for _, c := range t.Columns {
			if c.Domain != "" && c.Indexable {
				out[c.Domain] = append(out[c.Domain], ColumnRef{Table: t.Name, Column: c.Name})
			}
		}
	}
	return out
}

// ColumnRef names a column of a table.
type ColumnRef struct {
	Table  string
	Column string
}

func (r ColumnRef) String() string { return r.Table + "." + r.Column }
