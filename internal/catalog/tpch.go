package catalog

// TPCH returns the TPC-H benchmark schema (revision 1.3.0), used by the
// SkTH3J, SkTH3Js and UnTH3J query families. Domains group the non-key
// columns that the templates may join (paper §3.2.2): part/supplier brands
// and names, dates, quantities and prices each form a domain, mirroring the
// "same broad domain" rule used for NREF.
//
// The l_comment/o_comment style free-text columns are modeled but not
// indexable, matching the paper's restriction to indexable columns.
func TPCH() *Schema {
	s := NewSchema("tpch")

	s.MustAdd(MustTable("region",
		[]Column{
			{Name: "r_regionkey", Type: TypeInt, Domain: "regionkey", Indexable: true},
			{Name: "r_name", Type: TypeString, Domain: "geo", Indexable: true, AvgWidth: 7},
			{Name: "r_comment", Type: TypeString, AvgWidth: 60},
		},
		[]string{"r_regionkey"},
	))

	s.MustAdd(MustTable("nation",
		[]Column{
			{Name: "n_nationkey", Type: TypeInt, Domain: "nationkey", Indexable: true},
			{Name: "n_name", Type: TypeString, Domain: "geo", Indexable: true, AvgWidth: 9},
			{Name: "n_regionkey", Type: TypeInt, Domain: "regionkey", Indexable: true},
			{Name: "n_comment", Type: TypeString, AvgWidth: 60},
		},
		[]string{"n_nationkey"},
		ForeignKey{Columns: []string{"n_regionkey"}, RefTable: "region", RefColumns: []string{"r_regionkey"}},
	))

	s.MustAdd(MustTable("supplier",
		[]Column{
			{Name: "s_suppkey", Type: TypeInt, Domain: "suppkey", Indexable: true},
			{Name: "s_name", Type: TypeString, Domain: "entname", Indexable: true, AvgWidth: 18},
			{Name: "s_address", Type: TypeString, AvgWidth: 25},
			{Name: "s_nationkey", Type: TypeInt, Domain: "nationkey", Indexable: true},
			{Name: "s_phone", Type: TypeString, Domain: "phone", Indexable: true, AvgWidth: 15},
			{Name: "s_acctbal", Type: TypeFloat, Domain: "money", Indexable: true},
			{Name: "s_comment", Type: TypeString, AvgWidth: 63},
		},
		[]string{"s_suppkey"},
		ForeignKey{Columns: []string{"s_nationkey"}, RefTable: "nation", RefColumns: []string{"n_nationkey"}},
	))

	s.MustAdd(MustTable("part",
		[]Column{
			{Name: "p_partkey", Type: TypeInt, Domain: "partkey", Indexable: true},
			{Name: "p_name", Type: TypeString, Domain: "entname", Indexable: true, AvgWidth: 33},
			{Name: "p_mfgr", Type: TypeString, Domain: "mfgr", Indexable: true, AvgWidth: 14},
			{Name: "p_brand", Type: TypeString, Domain: "brand", Indexable: true, AvgWidth: 10},
			{Name: "p_type", Type: TypeString, Domain: "ptype", Indexable: true, AvgWidth: 21},
			{Name: "p_size", Type: TypeInt, Domain: "size", Indexable: true},
			{Name: "p_container", Type: TypeString, Domain: "container", Indexable: true, AvgWidth: 8},
			{Name: "p_retailprice", Type: TypeFloat, Domain: "money", Indexable: true},
			{Name: "p_comment", Type: TypeString, AvgWidth: 14},
		},
		[]string{"p_partkey"},
	))

	s.MustAdd(MustTable("partsupp",
		[]Column{
			{Name: "ps_partkey", Type: TypeInt, Domain: "partkey", Indexable: true},
			{Name: "ps_suppkey", Type: TypeInt, Domain: "suppkey", Indexable: true},
			{Name: "ps_availqty", Type: TypeInt, Domain: "qty", Indexable: true},
			{Name: "ps_supplycost", Type: TypeFloat, Domain: "money", Indexable: true},
			{Name: "ps_comment", Type: TypeString, AvgWidth: 124},
		},
		[]string{"ps_partkey", "ps_suppkey"},
		ForeignKey{Columns: []string{"ps_partkey"}, RefTable: "part", RefColumns: []string{"p_partkey"}},
		ForeignKey{Columns: []string{"ps_suppkey"}, RefTable: "supplier", RefColumns: []string{"s_suppkey"}},
	))

	s.MustAdd(MustTable("customer",
		[]Column{
			{Name: "c_custkey", Type: TypeInt, Domain: "custkey", Indexable: true},
			{Name: "c_name", Type: TypeString, Domain: "entname", Indexable: true, AvgWidth: 18},
			{Name: "c_address", Type: TypeString, AvgWidth: 25},
			{Name: "c_nationkey", Type: TypeInt, Domain: "nationkey", Indexable: true},
			{Name: "c_phone", Type: TypeString, Domain: "phone", Indexable: true, AvgWidth: 15},
			{Name: "c_acctbal", Type: TypeFloat, Domain: "money", Indexable: true},
			{Name: "c_mktsegment", Type: TypeString, Domain: "segment", Indexable: true, AvgWidth: 9},
			{Name: "c_comment", Type: TypeString, AvgWidth: 73},
		},
		[]string{"c_custkey"},
		ForeignKey{Columns: []string{"c_nationkey"}, RefTable: "nation", RefColumns: []string{"n_nationkey"}},
	))

	s.MustAdd(MustTable("orders",
		[]Column{
			{Name: "o_orderkey", Type: TypeInt, Domain: "orderkey", Indexable: true},
			{Name: "o_custkey", Type: TypeInt, Domain: "custkey", Indexable: true},
			{Name: "o_orderstatus", Type: TypeString, Domain: "status", Indexable: true, AvgWidth: 1},
			{Name: "o_totalprice", Type: TypeFloat, Domain: "money", Indexable: true},
			{Name: "o_orderdate", Type: TypeInt, Domain: "date", Indexable: true},
			{Name: "o_orderpriority", Type: TypeString, Domain: "priority", Indexable: true, AvgWidth: 8},
			{Name: "o_clerk", Type: TypeString, Domain: "entname", Indexable: true, AvgWidth: 15},
			{Name: "o_shippriority", Type: TypeInt, Domain: "size", Indexable: true},
			{Name: "o_comment", Type: TypeString, AvgWidth: 49},
		},
		[]string{"o_orderkey"},
		ForeignKey{Columns: []string{"o_custkey"}, RefTable: "customer", RefColumns: []string{"c_custkey"}},
	))

	s.MustAdd(MustTable("lineitem",
		[]Column{
			{Name: "l_orderkey", Type: TypeInt, Domain: "orderkey", Indexable: true},
			{Name: "l_partkey", Type: TypeInt, Domain: "partkey", Indexable: true},
			{Name: "l_suppkey", Type: TypeInt, Domain: "suppkey", Indexable: true},
			{Name: "l_linenumber", Type: TypeInt, Indexable: true},
			{Name: "l_quantity", Type: TypeInt, Domain: "qty", Indexable: true},
			{Name: "l_extendedprice", Type: TypeFloat, Domain: "money", Indexable: true},
			{Name: "l_discount", Type: TypeFloat, Indexable: true},
			{Name: "l_tax", Type: TypeFloat, Indexable: true},
			{Name: "l_returnflag", Type: TypeString, Domain: "status", Indexable: true, AvgWidth: 1},
			{Name: "l_linestatus", Type: TypeString, Domain: "status", Indexable: true, AvgWidth: 1},
			{Name: "l_shipdate", Type: TypeInt, Domain: "date", Indexable: true},
			{Name: "l_commitdate", Type: TypeInt, Domain: "date", Indexable: true},
			{Name: "l_receiptdate", Type: TypeInt, Domain: "date", Indexable: true},
			{Name: "l_shipinstruct", Type: TypeString, Domain: "shipmode", Indexable: true, AvgWidth: 12},
			{Name: "l_shipmode", Type: TypeString, Domain: "shipmode", Indexable: true, AvgWidth: 4},
			{Name: "l_comment", Type: TypeString, AvgWidth: 27},
		},
		[]string{"l_orderkey", "l_linenumber"},
		ForeignKey{Columns: []string{"l_orderkey"}, RefTable: "orders", RefColumns: []string{"o_orderkey"}},
		ForeignKey{Columns: []string{"l_partkey", "l_suppkey"}, RefTable: "partsupp", RefColumns: []string{"ps_partkey", "ps_suppkey"}},
	))

	return s
}

// TPCHFullScaleRows returns the TPC-H row counts at scale factor 10
// (the paper's 10 GB databases). Generators multiply these by a scale
// factor. Region and nation are fixed-size in TPC-H and are kept at
// their spec sizes regardless of scale.
func TPCHFullScaleRows() map[string]int64 {
	return map[string]int64{
		"region":   5,
		"nation":   25,
		"supplier": 100_000,
		"part":     2_000_000,
		"partsupp": 8_000_000,
		"customer": 1_500_000,
		"orders":   15_000_000,
		"lineitem": 60_000_000,
	}
}
