// Package plan defines physical query plans and the physical-database
// description (tables, indexes, materialized views) shared by the
// optimizer, the executor and the engine.
//
// A plan operates over a flat row layout: the concatenation of the columns
// of every relation in the query's FROM list. Scans populate their
// relation's segment, joins merge segments, and aggregation/projection map
// global offsets to output columns. The layout makes column addressing
// uniform across arbitrary join orders.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/cost"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/val"
)

// TableInfo is a base table with its storage and statistics.
type TableInfo struct {
	Table *catalog.Table
	Heap  *storage.Heap
	Stats *stats.TableStats
}

// IndexInfo describes an index, actual or hypothetical, over a base table
// or a materialized view.
type IndexInfo struct {
	Def  conf.IndexDef
	Cols []int // key column offsets within the indexed relation's schema

	// Tree is the built index; nil when Hypothetical.
	Tree         *btree.Tree
	Hypothetical bool

	// KeyNDV[i] is the number of distinct values of the first i+1 key
	// columns. Measured exactly at build time for actual indexes;
	// derived from column statistics for hypothetical ones.
	KeyNDV []int64

	// Size model, actual (from the tree) or estimated (hypothetical).
	Bytes          int64
	Height         int
	LeafPages      int64
	EntriesPerLeaf int64
}

// ViewInfo is a materialized view: its definition, the analyzed defining
// query, its synthesized schema and its materialized heap.
type ViewInfo struct {
	Def   conf.ViewDef
	Query *sql.Query // defining query over base tables (plain projection)
	Table *catalog.Table
	Heap  *storage.Heap
	Stats *stats.TableStats
	// OutSrc[i] identifies view column i as (table ordinal, column offset)
	// in the defining query.
	OutSrc []sql.QCol
}

// Physical describes everything the optimizer may use: base tables,
// materialized views, the indexes of the current (or a hypothetical)
// configuration, the memory budget and the cost model.
type Physical struct {
	Schema *catalog.Schema
	Tables map[string]*TableInfo // keyed by lower-case table name
	Views  []*ViewInfo
	// Indexes is keyed by lower-case relation (table or view) name.
	Indexes map[string][]*IndexInfo

	// Mem is the memory budget in full-scale bytes: hash tables whose
	// full-scale size exceeds it spill to disk.
	Mem   int64
	Model cost.Model

	// TabTables and TabIndexes, when non-nil, override the name-keyed
	// maps per query table ordinal. A sharded execution plans one query
	// against a mix of placements — the same table name can be a
	// partition slice for one ordinal (a partition-wise join side) and
	// the coordinator's full data for another (a broadcast side) — which
	// a name-keyed map cannot express. A nil entry falls back to the
	// name lookup; a non-nil TabIndexes entry is authoritative even when
	// empty (an exchanged relation has data but no indexes).
	TabTables  []*TableInfo
	TabIndexes [][]*IndexInfo
}

// Table returns the TableInfo for a base table name.
func (p *Physical) Table(name string) *TableInfo {
	return p.Tables[strings.ToLower(name)]
}

// IndexesOn returns the indexes on the named relation.
func (p *Physical) IndexesOn(name string) []*IndexInfo {
	return p.Indexes[strings.ToLower(name)]
}

// TableAt returns the TableInfo for query table ordinal t, honoring the
// per-ordinal override before the name lookup.
func (p *Physical) TableAt(t int, name string) *TableInfo {
	if t >= 0 && t < len(p.TabTables) && p.TabTables[t] != nil {
		return p.TabTables[t]
	}
	return p.Table(name)
}

// IndexesAt returns the indexes usable for query table ordinal t,
// honoring the per-ordinal override (including an empty "no indexes
// here" override) before the name lookup.
func (p *Physical) IndexesAt(t int, name string) []*IndexInfo {
	if t >= 0 && t < len(p.TabIndexes) && p.TabIndexes[t] != nil {
		return p.TabIndexes[t]
	}
	return p.IndexesOn(name)
}

// SortIndexes orders an index list by definition name in place. Builders
// of Physical descriptions (the engine, the what-if assembler) call it
// once per relation list so that the optimizer's deterministic iteration
// order is established at construction instead of being re-sorted into a
// fresh copy on every access.
func SortIndexes(ixs []*IndexInfo) {
	sort.Slice(ixs, func(a, b int) bool {
		return strings.Compare(ixs[a].Def.Name(), ixs[b].Def.Name()) < 0
	})
}

// Layout maps (table ordinal, column offset) pairs of a query to offsets
// in the flat execution row.
type Layout struct {
	Base  []int // Base[t] is the starting offset of table t's segment
	Width int
}

// NewLayout computes the layout for the query's FROM list.
func NewLayout(q *sql.Query) Layout {
	l := Layout{Base: make([]int, len(q.Tables))}
	off := 0
	for i, t := range q.Tables {
		l.Base[i] = off
		off += len(t.Table.Columns)
	}
	l.Width = off
	return l
}

// Offset returns the flat offset of a query column.
func (l Layout) Offset(c sql.QCol) int { return l.Base[c.Tab] + c.Col }

// Est is the optimizer's estimate for a (sub)plan: output cardinality and
// estimated work, with the work also converted to simulated seconds.
type Est struct {
	Rows    float64
	Meter   cost.Meter
	Seconds float64
}

// Filter is a pushed-down comparison between a flat-row column and a
// constant.
type Filter struct {
	Offset int
	Op     string
	Value  val.Value
}

// Eval reports whether the row passes the filter.
func (f Filter) Eval(r val.Row) bool { return sql.CompareOp(f.Op, r[f.Offset], f.Value) }

// InFilter applies a precomputed IN-subquery set to a flat-row column.
type InFilter struct {
	Offset int
	SetID  int // index into Plan.InSets
}

// KeyBind binds one index key column either to a constant or to a column
// of the outer row (for index nested-loop joins).
type KeyBind struct {
	Const       *val.Value
	OuterOffset int // meaningful when Const is nil
}

// RangeBound is a trailing inequality on the index column after the bound
// equality prefix.
type RangeBound struct {
	Op    string // < <= > >=
	Value val.Value
}

// Node is a physical plan operator.
type Node interface {
	// Estimate returns the optimizer's estimate for the subtree.
	Estimate() Est
	// Describe renders a one-line description (EXPLAIN-style).
	Describe() string
}

// SeqScan reads all rows of a base relation.
type SeqScan struct {
	Tab     int // query table ordinal
	Info    *TableInfo
	Filters []Filter
	Ins     []InFilter
	Est     Est
}

// IndexScan reads rows matching an equality prefix (of constants) and an
// optional trailing range. If Covering, the heap is never touched and the
// flat row is populated from index key columns only.
//
// When DriveInSet >= 0 the scan is instead driven by the values of the
// referenced IN-subquery set: the index's first key column is probed once
// per set value (an IN-list index probe), which turns a highly selective
// IN predicate into point lookups instead of a full-table filter.
type IndexScan struct {
	Tab        int
	Info       *TableInfo
	Index      *IndexInfo
	EqVals     []val.Value
	Range      *RangeBound
	DriveInSet int // -1 when not set-driven
	Filters    []Filter
	Ins        []InFilter
	Covering   bool
	// RidSort selects list-prefetch heap access: matching rids are
	// gathered from the index, sorted, and the heap is read in page
	// order (sequential I/O) instead of one random page per row.
	RidSort bool
	Est     Est
}

// EqPair is a residual equality between two flat-row offsets (join
// predicates an index join could not consume as key bindings).
type EqPair struct {
	A, B int
}

// ViewScan reads a materialized view that covers a set of query tables,
// translating view columns into the flat layout. An optional view index
// with an equality prefix turns it into an index scan over the view.
type ViewScan struct {
	Tabs []int // query table ordinals covered by the view
	View *ViewInfo
	// ColOffsets[i] is the flat-row offset for view column i (-1 if the
	// query does not need that column).
	ColOffsets []int
	Index      *IndexInfo // optional
	EqVals     []val.Value
	Filters    []Filter
	Ins        []InFilter
	Est        Est
}

// HashJoin builds a hash table on Build and probes with Probe. Empty key
// lists denote a cross join. BuildWidth is the modeled per-row byte width
// of the build side (needed columns only), used for the spill decision.
type HashJoin struct {
	Build, Probe         Node
	BuildKeys, ProbeKeys []int // flat offsets
	BuildWidth           int
	Est                  Est
}

// IndexJoin is an index nested-loop join: for each outer row, the inner
// relation's index is probed with the bound key prefix.
type IndexJoin struct {
	Outer   Node
	Tab     int // inner query table ordinal
	Info    *TableInfo
	Index   *IndexInfo
	Binds   []KeyBind
	Filters []Filter
	Ins     []InFilter
	// PostEq are join predicates between outer and inner that the index
	// prefix could not consume; evaluated after the inner row is formed.
	PostEq   []EqPair
	Covering bool
	Est      Est
}

// AggSpec is one aggregate computed by HashAgg.
type AggSpec struct {
	Kind   sql.AggKind
	Offset int // flat offset of the argument (unused for COUNT(*))
}

// HashAgg groups rows by the given flat offsets and computes aggregates.
// GroupWidth is the modeled per-group byte width for the spill decision.
type HashAgg struct {
	Input      Node
	Groups     []int
	Aggs       []AggSpec
	GroupWidth int
	Est        Est
}

// Project maps flat-row offsets to output columns (plain SPJ queries).
type Project struct {
	Input   Node
	Offsets []int
	Est     Est
}

// Estimate implementations.
func (n *SeqScan) Estimate() Est   { return n.Est }
func (n *IndexScan) Estimate() Est { return n.Est }
func (n *ViewScan) Estimate() Est  { return n.Est }
func (n *HashJoin) Estimate() Est  { return n.Est }
func (n *IndexJoin) Estimate() Est { return n.Est }
func (n *HashAgg) Estimate() Est   { return n.Est }
func (n *Project) Estimate() Est   { return n.Est }

// Describe implementations.
func (n *SeqScan) Describe() string {
	return fmt.Sprintf("SeqScan(%s) filters=%d rows≈%.0f", n.Info.Table.Name, len(n.Filters)+len(n.Ins), n.Est.Rows)
}

func (n *IndexScan) Describe() string {
	kind := "IndexScan"
	if n.Covering {
		kind = "IndexOnlyScan"
	}
	return fmt.Sprintf("%s(%s eq=%d) rows≈%.0f", kind, n.Index.Def.Name(), len(n.EqVals), n.Est.Rows)
}

func (n *ViewScan) Describe() string {
	ix := ""
	if n.Index != nil {
		ix = " via " + n.Index.Def.Name()
	}
	return fmt.Sprintf("ViewScan(%s%s) rows≈%.0f", n.View.Def.Name, ix, n.Est.Rows)
}

func (n *HashJoin) Describe() string {
	return fmt.Sprintf("HashJoin keys=%d rows≈%.0f", len(n.BuildKeys), n.Est.Rows)
}

func (n *IndexJoin) Describe() string {
	return fmt.Sprintf("IndexJoin(%s) rows≈%.0f", n.Index.Def.Name(), n.Est.Rows)
}

func (n *HashAgg) Describe() string {
	return fmt.Sprintf("HashAgg groups=%d aggs=%d rows≈%.0f", len(n.Groups), len(n.Aggs), n.Est.Rows)
}

func (n *Project) Describe() string {
	return fmt.Sprintf("Project cols=%d", len(n.Offsets))
}

// InSetPlan is the plan for computing one IN-subquery's qualifying set.
// The set is computed once per query execution.
type InSetPlan struct {
	Pred sql.InPred
	// Index, when set, lets the set be computed with an index-only scan
	// over the subquery column (keys arrive sorted, so the HAVING
	// COUNT(*) filter streams); otherwise the subquery table is scanned
	// and aggregated.
	Index *IndexInfo
	Info  *TableInfo
	Est   Est
}

// Plan is a complete physical plan.
type Plan struct {
	Query  *sql.Query
	Layout Layout
	Root   Node
	InSets []InSetPlan
	// Mem is the full-scale memory budget the plan was costed under; the
	// executor uses it for its own (actual-size) spill decisions.
	Mem int64
	// Est is the total estimate: root plus IN-set computations.
	Est Est
}

// Explain renders the plan tree.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan: est %.2fs, %.0f rows\n", p.Est.Seconds, p.Root.Estimate().Rows)
	for i, s := range p.InSets {
		src := "seqscan+agg"
		if s.Index != nil {
			src = "index-only " + s.Index.Def.Name()
		}
		fmt.Fprintf(&sb, "  inset[%d]: %s on %s est %.2fs\n", i, src, s.Pred.SubTable.Name, s.Est.Seconds)
	}
	explainNode(&sb, p.Root, 1)
	return sb.String()
}

func explainNode(sb *strings.Builder, n Node, depth int) {
	fmt.Fprintf(sb, "%s%s\n", strings.Repeat("  ", depth), n.Describe())
	switch n := n.(type) {
	case *HashJoin:
		explainNode(sb, n.Build, depth+1)
		explainNode(sb, n.Probe, depth+1)
	case *IndexJoin:
		explainNode(sb, n.Outer, depth+1)
	case *HashAgg:
		explainNode(sb, n.Input, depth+1)
	case *Project:
		explainNode(sb, n.Input, depth+1)
	}
}

// KeyPred is a comparison applied to an index key value before any heap
// fetch (merge-join key filtering).
type KeyPred struct {
	Op    string
	Value val.Value
}

// KeyIn applies an IN-subquery set to an index key value before fetch.
type KeyIn struct {
	SetID int
}

// MergeSide is one input of a MergeJoin: a full ordered scan of an index
// whose first key column is the join column, with key-level predicates
// applied before fetching and post predicates after.
type MergeSide struct {
	Tab      int
	Info     *TableInfo
	Index    *IndexInfo
	KeyPreds []KeyPred
	KeyIns   []KeyIn
	// Post predicates reference flat-row offsets and run after the side's
	// row is materialized (from the key when Covering, else by fetch).
	PostFilters []Filter
	PostIns     []InFilter
	Covering    bool
}

// MergeJoin merges two index leaf streams ordered by the join column.
// Rows surviving the key-level predicates pair up by key; the heaps are
// touched only for surviving rows, rid-sorted. This is the plan shape
// that makes comprehensive single-column indexing (the 1C configuration)
// effective on co-occurrence joins: the join itself runs entirely inside
// the indexes.
type MergeJoin struct {
	L, R MergeSide
	Est  Est
}

// Estimate implements Node.
func (n *MergeJoin) Estimate() Est { return n.Est }

// Describe implements Node.
func (n *MergeJoin) Describe() string {
	return fmt.Sprintf("MergeJoin(%s, %s) rows≈%.0f",
		n.L.Index.Def.Name(), n.R.Index.Def.Name(), n.Est.Rows)
}
