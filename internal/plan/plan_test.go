package plan

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/sql"
	"repro/internal/val"
)

func analyzed(t *testing.T, text string) *sql.Query {
	t.Helper()
	stmt, err := sql.ParseSelect(text)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sql.Analyze(catalog.NREF(), stmt)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestLayoutOffsets(t *testing.T) {
	q := analyzed(t, `SELECT t.lineage, COUNT(*) FROM source s, taxonomy t, taxonomy t2
		WHERE t.nref_id = s.nref_id AND t.lineage = t2.lineage GROUP BY t.lineage`)
	l := NewLayout(q)
	// source has 6 columns, taxonomy 5: bases 0, 6, 11; width 16.
	if len(l.Base) != 3 || l.Base[0] != 0 || l.Base[1] != 6 || l.Base[2] != 11 || l.Width != 16 {
		t.Fatalf("layout = %+v", l)
	}
	// t.lineage is table 1, column 2 -> offset 8.
	if off := l.Offset(sql.QCol{Tab: 1, Col: 2}); off != 8 {
		t.Errorf("offset = %d", off)
	}
}

func TestFilterEval(t *testing.T) {
	r := val.Row{val.Int(5), val.String("x")}
	cases := []struct {
		f    Filter
		want bool
	}{
		{Filter{Offset: 0, Op: "=", Value: val.Int(5)}, true},
		{Filter{Offset: 0, Op: "<", Value: val.Int(5)}, false},
		{Filter{Offset: 1, Op: ">=", Value: val.String("w")}, true},
	}
	for _, c := range cases {
		if got := c.f.Eval(r); got != c.want {
			t.Errorf("Eval(%+v) = %v", c.f, got)
		}
	}
}

func TestDescribeAndExplainCoverAllNodes(t *testing.T) {
	info := &TableInfo{Table: catalog.NREF().Table("protein")}
	ix := &IndexInfo{Def: conf.IndexDef{Table: "protein", Columns: []string{"length"}}, Cols: []int{4}}
	nodes := []Node{
		&SeqScan{Info: info},
		&IndexScan{Info: info, Index: ix, Covering: true},
		&HashJoin{Build: &SeqScan{Info: info}, Probe: &SeqScan{Info: info}},
		&IndexJoin{Outer: &SeqScan{Info: info}, Info: info, Index: ix},
		&MergeJoin{L: MergeSide{Info: info, Index: ix}, R: MergeSide{Info: info, Index: ix}},
		&HashAgg{Input: &SeqScan{Info: info}},
		&Project{Input: &SeqScan{Info: info}},
	}
	for _, n := range nodes {
		if n.Describe() == "" {
			t.Errorf("%T has empty Describe", n)
		}
	}
	p := &Plan{
		Query:  analyzed(t, "SELECT length, COUNT(*) FROM protein GROUP BY length"),
		Root:   &HashAgg{Input: &SeqScan{Info: info}},
		InSets: []InSetPlan{{Pred: sql.InPred{SubTable: info.Table}, Info: info}},
	}
	out := p.Explain()
	if !strings.Contains(out, "HashAgg") || !strings.Contains(out, "SeqScan") ||
		!strings.Contains(out, "inset[0]") {
		t.Errorf("explain output:\n%s", out)
	}
}

func TestPhysicalLookups(t *testing.T) {
	schema := catalog.NREF()
	p := &Physical{
		Schema:  schema,
		Tables:  map[string]*TableInfo{"protein": {Table: schema.Table("protein")}},
		Indexes: map[string][]*IndexInfo{"protein": {{}}},
	}
	if p.Table("PROTEIN") == nil {
		t.Error("table lookup must be case-insensitive")
	}
	if len(p.IndexesOn("Protein")) != 1 {
		t.Error("index lookup must be case-insensitive")
	}
	if p.Table("nope") != nil {
		t.Error("missing table must be nil")
	}
}
