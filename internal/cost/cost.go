// Package cost provides the deterministic simulated clock used throughout
// the benchmark.
//
// The paper (SIGMOD 2005) measured wall-clock elapsed times of queries on
// 2005-era desktop machines against multi-gigabyte databases, with a
// 30-minute timeout per query. This reproduction executes queries for real,
// but over databases scaled down by a configurable factor; the executor
// counts the logical work it performs (sequential and random page reads,
// page writes for spills, per-row CPU operations) in a Meter, and a Model
// converts those counts into simulated seconds as if the database were at
// full scale on the paper's hardware.
//
// Because the conversion is a pure function of deterministic counters, every
// experiment in this repository is exactly reproducible, host-independent,
// and preserves the paper's time axis (sub-second to 30-minute-timeout).
package cost

import "fmt"

// Meter accumulates the logical work performed by an executor.
// The zero Meter is ready to use.
// The per-row/per-page counters (SeqPages..CPUOps) describe work that is
// proportional to data volume: when the database is scaled down by a
// factor, this work shrinks by the same factor, so the Model multiplies it
// back up. FixedRand and FixedSeq describe per-query constant work — an
// index descent for a constant-bound lookup costs the same few pages at
// any scale — and are billed unscaled.
type Meter struct {
	SeqPages  int64 // pages read sequentially (table or index leaf scans)
	RandPages int64 // pages read at random (per-row index probes, fetches)
	WritePage int64 // pages written (hash join / aggregation spills)
	Rows      int64 // rows processed by operators
	CPUOps    int64 // extra per-row CPU operations (hashing, comparisons)

	FixedRand int64 // random pages independent of data volume
	FixedSeq  int64 // sequential pages independent of data volume
}

// Add accumulates o into m.
func (m *Meter) Add(o Meter) {
	m.SeqPages += o.SeqPages
	m.RandPages += o.RandPages
	m.WritePage += o.WritePage
	m.Rows += o.Rows
	m.CPUOps += o.CPUOps
	m.FixedRand += o.FixedRand
	m.FixedSeq += o.FixedSeq
}

// Reset zeroes all counters.
func (m *Meter) Reset() { *m = Meter{} }

func (m *Meter) String() string {
	return fmt.Sprintf("seq=%d rand=%d write=%d rows=%d cpu=%d fixedRand=%d fixedSeq=%d",
		m.SeqPages, m.RandPages, m.WritePage, m.Rows, m.CPUOps, m.FixedRand, m.FixedSeq)
}

// Model converts Meter counts into simulated seconds.
//
// The default constants model a 2005 desktop with a single commodity disk:
// ~40 MB/s sequential bandwidth (a 4 KB page every 0.1 ms), ~5 ms average
// positioning time for a random page, and a CPU that spends on the order of
// a microsecond of work per row flowing through a query operator.
type Model struct {
	SeqPageSec   float64 // seconds per sequentially-read page
	RandPageSec  float64 // seconds per randomly-read page
	WritePageSec float64 // seconds per page written
	RowSec       float64 // seconds of CPU per row processed
	CPUOpSec     float64 // seconds per extra CPU operation

	// Scale is the inverse of the data scale factor: counters are
	// multiplied by Scale so that work on a 1/1000-scale database is
	// billed as if performed at full scale. Scale 0 is treated as 1.
	Scale float64
}

// Desktop2005 returns the calibrated default model (scale 1): ~40 MB/s
// sequential bandwidth, 5 ms random positioning, and a ~2 GHz CPU pushing
// roughly five million rows per second through a scan operator.
func Desktop2005() Model {
	return Model{
		SeqPageSec:   1.0e-4,
		RandPageSec:  5.0e-3,
		WritePageSec: 2.0e-4,
		RowSec:       2.0e-7,
		CPUOpSec:     5.0e-8,
		Scale:        1,
	}
}

// WithScale returns a copy of the model billing work at the given scale
// multiplier (the inverse of the data scale factor).
func (c Model) WithScale(scale float64) Model {
	c.Scale = scale
	return c
}

// Seconds returns the simulated elapsed seconds for the metered work.
//
// conflint:pure — pricing a meter must not touch the meter: every
// estimate path (what-if sessions included) prices concurrently.
func (c Model) Seconds(m *Meter) float64 {
	s := c.Scale
	if s == 0 {
		s = 1
	}
	return s*(float64(m.SeqPages)*c.SeqPageSec+
		float64(m.RandPages)*c.RandPageSec+
		float64(m.WritePage)*c.WritePageSec+
		float64(m.Rows)*c.RowSec+
		float64(m.CPUOps)*c.CPUOpSec) +
		float64(m.FixedRand)*c.RandPageSec +
		float64(m.FixedSeq)*c.SeqPageSec
}

// PageSize is the logical page size, in bytes, used by the storage layer,
// index size model and the spill heuristics.
const PageSize = 4096

// PagesForBytes returns the number of PageSize pages needed for n bytes.
//
// conflint:pure — arithmetic shared by the size estimators.
func PagesForBytes(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + PageSize - 1) / PageSize
}
