package cost

import (
	"testing"
	"testing/quick"
)

func TestSecondsScaling(t *testing.T) {
	m := Meter{SeqPages: 100, RandPages: 10, WritePage: 5, Rows: 1000, CPUOps: 500}
	base := Desktop2005()
	s1 := base.Seconds(&m)
	s10 := base.WithScale(10).Seconds(&m)
	if s10 < s1*9.9 || s10 > s1*10.1 {
		t.Errorf("scaled seconds %v, want ~10x %v", s10, s1)
	}
}

func TestFixedCostsUnscaled(t *testing.T) {
	m := Meter{FixedRand: 3, FixedSeq: 7}
	base := Desktop2005()
	s1 := base.Seconds(&m)
	s1000 := base.WithScale(1000).Seconds(&m)
	if s1 != s1000 {
		t.Errorf("fixed costs must not scale: %v vs %v", s1, s1000)
	}
	want := 3*base.RandPageSec + 7*base.SeqPageSec
	if s1 != want {
		t.Errorf("fixed seconds = %v, want %v", s1, want)
	}
}

func TestZeroScaleTreatedAsOne(t *testing.T) {
	m := Meter{SeqPages: 10}
	c := Model{SeqPageSec: 1}
	if got := c.Seconds(&m); got != 10 {
		t.Errorf("zero scale: %v, want 10", got)
	}
}

func TestMeterAddAndReset(t *testing.T) {
	a := Meter{SeqPages: 1, RandPages: 2, WritePage: 3, Rows: 4, CPUOps: 5, FixedRand: 6, FixedSeq: 7}
	var b Meter
	b.Add(a)
	b.Add(a)
	if b.SeqPages != 2 || b.RandPages != 4 || b.WritePage != 6 || b.Rows != 8 ||
		b.CPUOps != 10 || b.FixedRand != 12 || b.FixedSeq != 14 {
		t.Errorf("Add: %+v", b)
	}
	b.Reset()
	if b != (Meter{}) {
		t.Errorf("Reset: %+v", b)
	}
}

func TestSecondsAdditive(t *testing.T) {
	// Seconds(a) + Seconds(b) == Seconds(a+b): the clock is a linear
	// function of the counters.
	f := func(s1, r1, s2, r2 uint16) bool {
		a := Meter{SeqPages: int64(s1), RandPages: int64(r1)}
		b := Meter{SeqPages: int64(s2), RandPages: int64(r2)}
		var sum Meter
		sum.Add(a)
		sum.Add(b)
		c := Desktop2005().WithScale(3)
		lhs := c.Seconds(&a) + c.Seconds(&b)
		rhs := c.Seconds(&sum)
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9*(1+lhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPagesForBytes(t *testing.T) {
	cases := []struct {
		bytes int64
		want  int64
	}{
		{0, 0}, {-5, 0}, {1, 1}, {4096, 1}, {4097, 2}, {40960, 10},
	}
	for _, c := range cases {
		if got := PagesForBytes(c.bytes); got != c.want {
			t.Errorf("PagesForBytes(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestDesktop2005Ordering(t *testing.T) {
	c := Desktop2005()
	if !(c.RandPageSec > c.WritePageSec && c.WritePageSec > c.SeqPageSec) {
		t.Error("random > write > sequential page costs expected")
	}
	if !(c.RowSec > c.CPUOpSec) {
		t.Error("per-row cost should exceed per-op cost")
	}
}
