// Package recommender implements autonomic configuration recommenders in
// the mold the paper benchmarks (§2.1): given a workload and a storage
// budget, search the space of index (and materialized-view) configurations
// for one minimizing the estimated workload cost, where every estimate is
// a hypothetical what-if estimate H(q, Ch, P) obtained through the
// engine's optimizer from the current configuration's statistics.
//
// Three profiles reproduce the behavioral envelope of the paper's
// commercial Systems A, B and C:
//
//   - System A enumerates per-query candidate permutations aggressively
//     and gives up when the candidate space exceeds its work limit — the
//     paper §4.1.2 observed exactly this: A produced no recommendation at
//     all for the NREF3J 100-query workload.
//   - System B generates targeted composites and runs a workload-level
//     greedy knapsack on total estimated cost.
//   - System C additionally proposes materialized views over the
//     workload's joins, and indexes on those views (paper Table 3).
package recommender

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sql"
)

// ErrTooComplex reports that the recommender capitulated: the candidate
// space for the workload exceeded its evaluation budget (System A on
// NREF3J).
var ErrTooComplex = errors.New("recommender: workload candidate space exceeds the evaluation limit")

// Config parameterizes a recommender profile.
type Config struct {
	Name string
	// MaxWidth bounds index key width (the paper's recommendations never
	// exceeded 4 columns; Tables 2 and 3).
	MaxWidth int
	// TopPerQuery keeps the best candidates per query after solo
	// evaluation, before the workload-level search.
	TopPerQuery int
	// EvalLimit bounds the total number of per-query candidate
	// evaluations; exceeded => ErrTooComplex. 0 means unlimited.
	EvalLimit int
	// Permute enumerates all ordered permutations of relevant column
	// subsets (System A's aggressive generation) instead of targeted
	// composites.
	Permute bool
	// UseViews adds materialized-view candidates (System C).
	UseViews bool
	// MinGainFrac stops the greedy search when the best candidate's gain
	// falls below this fraction of the current total estimated cost.
	MinGainFrac float64
	// PerQuery ranks candidates only by their solo (single-query) gains
	// instead of re-evaluating the workload each greedy round.
	PerQuery bool
	// MaxIndexes caps the number of non-auto indexes in the
	// recommendation (0 = unlimited).
	MaxIndexes int
}

// SystemA returns the paper's System A profile.
func SystemA() Config {
	return Config{
		Name: "A", MaxWidth: 4, TopPerQuery: 2,
		EvalLimit: 8000, Permute: true, PerQuery: true,
		MinGainFrac: 0.01, MaxIndexes: 12,
	}
}

// SystemB returns the paper's System B profile.
func SystemB() Config {
	return Config{
		Name: "B", MaxWidth: 4, TopPerQuery: 3,
		MinGainFrac: 0.002,
	}
}

// SystemC returns the paper's System C profile.
func SystemC() Config {
	return Config{
		Name: "C", MaxWidth: 4, TopPerQuery: 3,
		UseViews: true, MinGainFrac: 0.002,
	}
}

// candidate is one atomic configuration change: a set of indexes, possibly
// bundled with the materialized view they are defined on.
type candidate struct {
	key     string
	indexes []conf.IndexDef
	views   []conf.ViewDef
	// size is the estimated full-scale bytes, filled lazily.
	size int64
	// soloGain accumulates single-query gains (for ranking).
	soloGain float64
}

// scoredCand pairs a candidate with its single-query gain. byGainDesc
// sorts best-gain-first (ties by key for determinism); a named
// sort.Interface keeps the per-query ranking loop closure-free on the
// recommendation path.
type scoredCand struct {
	c    *candidate
	gain float64
}

type byGainDesc []scoredCand

func (s byGainDesc) Len() int      { return len(s) }
func (s byGainDesc) Swap(a, b int) { s[a], s[b] = s[b], s[a] }
func (s byGainDesc) Less(a, b int) bool {
	if s[a].gain != s[b].gain {
		return s[a].gain > s[b].gain
	}
	return s[a].c.key < s[b].c.key
}

func (c *candidate) applyTo(cfg conf.Configuration) conf.Configuration {
	out := cfg.Clone()
	for _, v := range c.views {
		if !out.HasView(v.Name) {
			out.Views = append(out.Views, v)
		}
	}
	for _, ix := range c.indexes {
		out.AddIndex(ix)
	}
	return out
}

// inConfig reports whether the configuration already contains everything
// the candidate would add.
func (c *candidate) inConfig(cfg conf.Configuration) bool {
	for _, v := range c.views {
		if !cfg.HasView(v.Name) {
			return false
		}
	}
	for _, ix := range c.indexes {
		if !cfg.HasIndex(ix) {
			return false
		}
	}
	return true
}

// tables returns the base tables the candidate concerns (for affected-
// query filtering).
func (c *candidate) tables() map[string]bool {
	out := make(map[string]bool)
	for _, ix := range c.indexes {
		out[strings.ToLower(ix.Table)] = true
	}
	for _, v := range c.views {
		for _, t := range v.BaseTables {
			out[strings.ToLower(t)] = true
		}
	}
	return out
}

// Recommender searches configurations for one engine + profile.
type Recommender struct {
	e       *engine.Engine
	cfg     Config
	run     core.Runner
	session *engine.WhatIf
}

// New creates a recommender over the engine (which should be in the P
// configuration with statistics collected, per §3.2.3). The search runs
// sequentially unless Parallel raises the fan-out.
func New(e *engine.Engine, cfg Config) *Recommender {
	return &Recommender{e: e, cfg: cfg, run: core.Runner{Parallelism: 1}}
}

// Parallel sets the candidate-evaluation fan-out (1 = sequential,
// 0 = GOMAXPROCS) and returns the recommender for chaining. The
// recommendation is byte-identical at any setting: estimates fan out over
// index-addressed slices and every selection reduces sequentially.
func (r *Recommender) Parallel(n int) *Recommender {
	r.run.Parallelism = n
	return r
}

// UseSession makes the search estimate through an existing what-if
// session instead of opening its own, so a long-lived caller (the
// autopilot controller) shares one estimate cache across retunes and
// with its own predictions. The session must belong to the same engine.
func (r *Recommender) UseSession(w *engine.WhatIf) *Recommender {
	r.session = w
	return r
}

// soloJob is one (query, candidate) pair of the solo-evaluation fan-out.
type soloJob struct {
	qi int
	c  *candidate
}

// Recommend returns a configuration for the workload within the storage
// budget (full-scale bytes for structures beyond the base configuration).
//
// conflint:hotpath — the whole candidate search runs inside here; every
// allocation repeats per candidate per round.
func (r *Recommender) Recommend(queries []string, budget int64) (conf.Configuration, error) {
	base := r.e.Current().Clone()
	base.Name = r.cfg.Name + " R"

	// Analyze the workload once.
	qs := make([]*sql.Query, len(queries))
	for i, text := range queries {
		q, err := r.e.AnalyzeSQL(text)
		if err != nil {
			return conf.Configuration{}, fmt.Errorf("recommender: %w", err)
		}
		qs[i] = q
	}

	// Candidate generation, with the capitulation check applied to the
	// size of the candidate space before any evaluation happens.
	perQuery := make([][]*candidate, len(qs))
	evals := 0
	for i, q := range qs {
		perQuery[i] = r.generate(q)
		evals += r.evalUnits(q)
	}
	if r.cfg.EvalLimit > 0 && evals > r.cfg.EvalLimit {
		return conf.Configuration{}, fmt.Errorf("%w (%d evaluations > %d)",
			ErrTooComplex, evals, r.cfg.EvalLimit)
	}

	w := r.session
	if w == nil {
		w = r.e.NewWhatIf()
	}

	// Baseline cost per query in the starting configuration, fanned over
	// the pool into an index-addressed slice.
	baseCost := make([]float64, len(qs))
	err := r.run.Each(len(qs), func(i int) error {
		m, err := w.Estimate(qs[i], base)
		if err != nil {
			return err
		}
		baseCost[i] = m.Seconds
		return nil
	})
	if err != nil {
		return conf.Configuration{}, err
	}

	// Solo evaluation: estimate every (query, candidate) pair in parallel
	// through the delta path, then reduce per query sequentially so the
	// TopPerQuery ranking is order-independent of the fan-out.
	nJobs := 0
	for i := range perQuery {
		nJobs += len(perQuery[i])
	}
	jobs := make([]soloJob, 0, nJobs)
	for i := range perQuery {
		for _, c := range perQuery[i] {
			jobs = append(jobs, soloJob{qi: i, c: c})
		}
	}
	gains := make([]float64, len(jobs))
	err = r.run.Each(len(jobs), func(k int) error {
		j := jobs[k]
		delta := conf.Configuration{Indexes: j.c.indexes, Views: j.c.views}
		m, err := w.EstimateWith(qs[j.qi], base, delta)
		if err != nil {
			return err
		}
		gains[k] = baseCost[j.qi] - m.Seconds
		return nil
	})
	if err != nil {
		return conf.Configuration{}, err
	}

	// Sequential reduction: keep the best TopPerQuery candidates per query.
	pool := make(map[string]*candidate)
	k := 0
	for i := range qs {
		ss := make([]scoredCand, 0, len(perQuery[i]))
		for range perQuery[i] {
			if g := gains[k]; g > 0 {
				ss = append(ss, scoredCand{jobs[k].c, g})
			}
			k++
		}
		sort.Sort(byGainDesc(ss))
		if len(ss) > r.cfg.TopPerQuery {
			ss = ss[:r.cfg.TopPerQuery]
		}
		for _, s := range ss {
			if p, ok := pool[s.c.key]; ok {
				p.soloGain += s.gain
			} else {
				c := *s.c
				c.soloGain = s.gain
				pool[s.c.key] = &c
			}
		}
	}

	// Estimate candidate sizes (key-sorted first so every later stage sees
	// one deterministic candidate order).
	cands := make([]*candidate, 0, len(pool))
	for _, c := range pool {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].key < cands[b].key })
	err = r.run.Each(len(cands), func(i int) error {
		c := cands[i]
		c.size = w.EstimateSize(conf.Configuration{Indexes: c.indexes, Views: c.views})
		return nil
	})
	if err != nil {
		return conf.Configuration{}, err
	}

	if r.cfg.PerQuery {
		return r.packBySoloGain(base, cands, budget), nil
	}
	return r.greedy(w, base, qs, baseCost, cands, budget)
}

// packBySoloGain is System A's cruder selection: rank the pooled
// candidates by accumulated single-query gain density and add them while
// the budget lasts, without workload-level re-evaluation.
func (r *Recommender) packBySoloGain(base conf.Configuration, cands []*candidate, budget int64) conf.Configuration {
	sort.SliceStable(cands, func(a, b int) bool {
		da := cands[a].soloGain / float64(cands[a].size+1)
		db := cands[b].soloGain / float64(cands[b].size+1)
		if da != db {
			return da > db
		}
		return cands[a].key < cands[b].key
	})
	out := base
	var used int64
	for _, c := range cands {
		if c.inConfig(out) {
			continue
		}
		if used+c.size > budget {
			continue
		}
		if r.cfg.MaxIndexes > 0 && nonAutoCount(out)+len(c.indexes) > r.cfg.MaxIndexes {
			continue
		}
		out = c.applyTo(out)
		used += c.size
	}
	return out
}

// nonAutoCount counts the recommendation's own indexes.
func nonAutoCount(c conf.Configuration) int {
	n := 0
	for _, d := range c.Indexes {
		if !d.Auto {
			n++
		}
	}
	return n
}

// queryCost is one improved query cost found during a greedy trial.
type queryCost struct {
	qi      int
	seconds float64
}

// roundResult is one candidate's outcome in a greedy round: its total
// gain over the affected queries and the per-query costs that improved.
type roundResult struct {
	gain  float64
	costs []queryCost
}

// greedy is the workload-level knapsack: each round adds the candidate
// with the best total-gain-per-byte, re-estimating affected queries, until
// no candidate clears the minimum-gain bar or the budget is exhausted.
// Each round evaluates its feasible candidates in parallel and then
// selects sequentially in candidate order, so the chosen sequence is
// byte-identical at any parallelism.
func (r *Recommender) greedy(w *engine.WhatIf, base conf.Configuration, qs []*sql.Query,
	baseCost []float64, cands []*candidate, budget int64) (conf.Configuration, error) {

	cur := base
	cost := append([]float64(nil), baseCost...)
	var used int64

	// affected[i] lists queries touching candidate i's tables.
	affected := make([][]int, len(cands))
	for ci, c := range cands {
		tabs := c.tables()
		for qi, q := range qs {
			for _, t := range q.Tables {
				if tabs[strings.ToLower(t.Table.Name)] {
					affected[ci] = append(affected[ci], qi)
					break
				}
			}
		}
	}

	work := make([]int, 0, len(cands))
	results := make([]roundResult, len(cands))
	for round := 0; round < 64; round++ {
		total := 0.0
		for _, c := range cost {
			total += c
		}
		// The feasibility filter depends on the evolving configuration and
		// budget, so it runs sequentially; the surviving candidates then
		// estimate concurrently.
		work = work[:0]
		for ci, c := range cands {
			if c.inConfig(cur) || used+c.size > budget {
				continue
			}
			if r.cfg.MaxIndexes > 0 && nonAutoCount(cur)+len(c.indexes) > r.cfg.MaxIndexes {
				continue
			}
			work = append(work, ci)
		}
		if len(work) == 0 {
			break
		}
		if err := r.greedyRound(w, cur, qs, cost, cands, affected, work, results); err != nil {
			return conf.Configuration{}, err
		}
		// Density comparison with deterministic tie-breaks, in candidate
		// order — exactly the sequential scan's selection.
		bestGain, bestIdx, bestK := 0.0, -1, -1
		for k, ci := range work {
			if results[k].gain <= 0 {
				continue
			}
			if bestIdx < 0 || results[k].gain/float64(cands[ci].size+1) > bestGain/float64(cands[bestIdx].size+1) {
				bestGain, bestIdx, bestK = results[k].gain, ci, k
			}
		}
		if bestIdx < 0 || bestGain < r.cfg.MinGainFrac*total {
			break
		}
		cur = cands[bestIdx].applyTo(cur)
		used += cands[bestIdx].size
		for _, qc := range results[bestK].costs {
			cost[qc.qi] = qc.seconds
		}
	}
	return cur, nil
}

// greedyRound evaluates one round's feasible candidates (work, indexes
// into cands) against the current configuration, writing each outcome
// into results[k]. Trials go through the what-if delta path: the base
// configuration's structures resolve once in the session and each
// candidate only contributes its own delta.
func (r *Recommender) greedyRound(w *engine.WhatIf, cur conf.Configuration, qs []*sql.Query,
	cost []float64, cands []*candidate, affected [][]int, work []int, results []roundResult) error {
	return r.run.Each(len(work), func(k int) error {
		ci := work[k]
		c := cands[ci]
		delta := conf.Configuration{Indexes: c.indexes, Views: c.views}
		gain := 0.0
		costs := make([]queryCost, 0, len(affected[ci]))
		for _, qi := range affected[ci] {
			m, err := w.EstimateWith(qs[qi], cur, delta)
			if err != nil {
				return err
			}
			if m.Seconds < cost[qi] {
				gain += cost[qi] - m.Seconds
				costs = append(costs, queryCost{qi: qi, seconds: m.Seconds})
			}
		}
		results[k] = roundResult{gain: gain, costs: costs}
		return nil
	})
}

// evalUnits sizes the candidate space for one query. Permuting profiles
// (System A) consider combinations of one index per table instance, so
// their space is the product of the per-alias permutation counts — the
// multiplicative blowup that makes self-joining three-table workloads
// (NREF3J) exceed the limit while two-table workloads stay under it.
func (r *Recommender) evalUnits(q *sql.Query) int {
	if !r.cfg.Permute {
		return len(r.generate(q))
	}
	sets := relevantColumns(q)
	units := 1
	for _, cs := range sets {
		rel := len(concatUnique(cs.eq, cs.rng, cs.join, cs.in, cs.group))
		n := permCount(rel, r.cfg.MaxWidth)
		if n < 1 {
			n = 1
		}
		units *= n
		if units > 1<<30 {
			return 1 << 30
		}
	}
	return units
}

// permCount returns sum_{k=1..maxLen} n!/(n-k)!.
func permCount(n, maxLen int) int {
	total := 0
	for k := 1; k <= maxLen && k <= n; k++ {
		p := 1
		for i := 0; i < k; i++ {
			p *= n - i
		}
		total += p
	}
	return total
}

// DebugEvalCount reports the candidate-space size a profile would incur on
// the workload — the quantity EvalLimit bounds. Exposed for calibration
// tooling and tests.
func DebugEvalCount(e *engine.Engine, cfg Config, queries []string) int {
	r := New(e, cfg)
	total := 0
	for _, text := range queries {
		q, err := e.AnalyzeSQL(text)
		if err != nil {
			continue
		}
		total += r.evalUnits(q)
	}
	return total
}
