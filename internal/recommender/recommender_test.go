package recommender

import (
	"errors"
	"testing"

	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/workload"
)

func nrefEngine(t *testing.T, prof engine.Profile) *engine.Engine {
	t.Helper()
	e := engine.New(catalog.NREF(), 0.0001, prof)
	if err := datagen.GenerateNREF(e, datagen.NREFOptions{ScaleFactor: 0.0001, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	e.CollectStats()
	if _, err := e.ApplyConfig(engine.PConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	return e
}

// smallWorkload samples a handful of NREF2J queries.
func smallWorkload(t *testing.T, e *engine.Engine, n int) []string {
	t.Helper()
	fam := workload.NREF2J(e.Schema, e, workload.DefaultOptions())
	fam = fam.Sample(n, func(s string) float64 { return float64(len(s)) }, 3)
	return fam.SQLs()
}

// budgetFor returns the 1C-minus-P budget the paper uses (§3.2.3).
func budgetFor(t *testing.T, e *engine.Engine) int64 {
	t.Helper()
	w := e.NewWhatIf()
	return w.EstimateSize(engine.OneColumnConfiguration(e))
}

func TestRecommendWithinBudget(t *testing.T) {
	e := nrefEngine(t, engine.SystemB())
	queries := smallWorkload(t, e, 12)
	budget := budgetFor(t, e)
	r := New(e, SystemB())
	rec, err := r.Recommend(queries, budget)
	if err != nil {
		t.Fatal(err)
	}
	// The recommendation must respect the budget (by its own estimates,
	// as in the paper: ET uses estimated storage).
	w := e.NewWhatIf()
	if size := w.EstimateSize(rec); size > budget {
		t.Errorf("recommendation size %d exceeds budget %d", size, budget)
	}
	// It must include the auto primary-key indexes.
	var autos int
	for _, d := range rec.Indexes {
		if d.Auto {
			autos++
		}
	}
	if autos == 0 {
		t.Error("recommendation lost the primary-key indexes")
	}
	// And must actually build.
	if _, err := e.ApplyConfig(rec); err != nil {
		t.Fatalf("recommended configuration failed to build: %v", err)
	}
}

func TestRecommendationImprovesEstimates(t *testing.T) {
	e := nrefEngine(t, engine.SystemB())
	queries := smallWorkload(t, e, 12)
	r := New(e, SystemB())
	rec, err := r.Recommend(queries, budgetFor(t, e))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Indexes) == 0 {
		t.Fatal("empty recommendation")
	}
	// Total what-if cost must improve over P.
	w := e.NewWhatIf()
	var totP, totR float64
	for _, qs := range queries {
		q, err := e.AnalyzeSQL(qs)
		if err != nil {
			t.Fatal(err)
		}
		mp, err := w.Estimate(q, engine.PConfiguration(e))
		if err != nil {
			t.Fatal(err)
		}
		mr, err := w.Estimate(q, rec)
		if err != nil {
			t.Fatal(err)
		}
		totP += mp.Seconds
		totR += mr.Seconds
	}
	if totR >= totP {
		t.Errorf("recommendation worsens estimated total: P=%.0f R=%.0f", totP, totR)
	}
}

func TestSystemACapitulates(t *testing.T) {
	e := nrefEngine(t, engine.SystemA())
	fam := workload.NREF3J(e.Schema, e, workload.DefaultOptions())
	fam = fam.Sample(100, func(s string) float64 { return float64(len(s)) }, 3)
	r := New(e, SystemA())
	_, err := r.Recommend(fam.SQLs(), budgetFor(t, e))
	if !errors.Is(err, ErrTooComplex) {
		t.Fatalf("System A should capitulate on NREF3J, got err=%v", err)
	}
}

func TestSystemAHandlesNREF2J(t *testing.T) {
	e := nrefEngine(t, engine.SystemA())
	fam := workload.NREF2J(e.Schema, e, workload.DefaultOptions())
	fam = fam.Sample(100, func(s string) float64 { return float64(len(s)) }, 3)
	r := New(e, SystemA())
	rec, err := r.Recommend(fam.SQLs(), budgetFor(t, e))
	if err != nil {
		t.Fatalf("System A should handle NREF2J: %v", err)
	}
	if len(rec.Indexes) == 0 {
		t.Error("System A produced an empty recommendation")
	}
}

func TestMaxWidthRespected(t *testing.T) {
	e := nrefEngine(t, engine.SystemB())
	r := New(e, SystemB())
	rec, err := r.Recommend(smallWorkload(t, e, 10), budgetFor(t, e))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rec.Indexes {
		if len(d.Columns) > 4 {
			t.Errorf("index %s wider than 4 columns", d.Name())
		}
	}
}

func TestViewCandidatesOnlyForC(t *testing.T) {
	e := nrefEngine(t, engine.SystemB())
	queries := smallWorkload(t, e, 10)
	recB, err := New(e, SystemB()).Recommend(queries, budgetFor(t, e))
	if err != nil {
		t.Fatal(err)
	}
	if len(recB.Views) != 0 {
		t.Errorf("System B must not recommend views, got %d", len(recB.Views))
	}
}

func TestPermutations(t *testing.T) {
	ps := permutations([]string{"b", "a"}, 2)
	// 2 singles + 2 ordered pairs.
	if len(ps) != 4 {
		t.Fatalf("permutations = %v", ps)
	}
	ps = permutations([]string{"a", "b", "c"}, 2)
	if len(ps) != 3+6 {
		t.Fatalf("len = %d, want 9", len(ps))
	}
}

func TestZeroBudget(t *testing.T) {
	e := nrefEngine(t, engine.SystemB())
	rec, err := New(e, SystemB()).Recommend(smallWorkload(t, e, 6), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rec.Indexes {
		if !d.Auto {
			t.Errorf("zero budget must yield only auto indexes, got %s", d.Name())
		}
	}
	_ = rec
}

func TestCandidateBundles(t *testing.T) {
	cfgC := conf.Configuration{Name: "x"}
	c := &candidate{
		key:     "view+ix:test",
		views:   []conf.ViewDef{{Name: "v1", SQL: "SELECT nref_id FROM protein", BaseTables: []string{"protein"}}},
		indexes: []conf.IndexDef{{Table: "v1", Columns: []string{"c0"}}},
	}
	out := c.applyTo(cfgC)
	if !out.HasView("v1") || !out.HasIndex(conf.IndexDef{Table: "v1", Columns: []string{"c0"}}) {
		t.Error("applyTo must add both the view and its index")
	}
	if !c.inConfig(out) {
		t.Error("inConfig should see the bundle")
	}
	if c.inConfig(cfgC) {
		t.Error("inConfig false positive")
	}
}

func tpchEngine(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(catalog.TPCH(), 0.0001, engine.SystemC())
	if err := datagen.GenerateTPCH(e, datagen.TPCHOptions{ScaleFactor: 0.0001, Seed: 42, Skew: true, ZipfS: 1}); err != nil {
		t.Fatal(err)
	}
	e.CollectStats()
	if _, err := e.ApplyConfig(engine.PConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestSystemCBuildsOnTPCH exercises the C profile end to end: view
// candidates, size estimation, greedy selection, and a real build of the
// outcome.
func TestSystemCBuildsOnTPCH(t *testing.T) {
	e := tpchEngine(t)
	queries := []string{
		`SELECT l.l_shipmode, COUNT(*) FROM orders o, lineitem l
		 WHERE o.o_orderkey = l.l_orderkey AND o.o_orderpriority = '1-URGENT' GROUP BY l.l_shipmode`,
		`SELECT l.l_returnflag, COUNT(*) FROM orders o, lineitem l
		 WHERE o.o_orderkey = l.l_orderkey AND o.o_orderstatus = 'F' GROUP BY l.l_returnflag`,
		`SELECT p.p_brand, COUNT(*) FROM part p, partsupp ps
		 WHERE p.p_partkey = ps.ps_partkey AND p.p_size = 7 GROUP BY p.p_brand`,
	}
	w := e.NewWhatIf()
	budget := w.EstimateSize(engine.OneColumnConfiguration(e))
	rec, err := New(e, SystemC()).Recommend(queries, budget)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyConfig(rec); err != nil {
		t.Fatalf("recommended configuration failed to build: %v", err)
	}
	for _, q := range queries {
		if _, _, err := e.Run(q, 0); err != nil {
			t.Fatalf("query failed under recommendation: %v", err)
		}
	}
	// The C profile considered view candidates (whether or not any view
	// survived the greedy selection, candidate generation must offer them).
	q0, err := e.AnalyzeSQL(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	hasViewCand := false
	for _, c := range New(e, SystemC()).generate(q0) {
		if len(c.views) > 0 {
			hasViewCand = true
			break
		}
	}
	if !hasViewCand {
		t.Error("System C generated no view candidates")
	}
}
