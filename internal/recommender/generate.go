package recommender

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/conf"
	"repro/internal/sql"
)

// colSets collects, for one query table, the columns playing each
// predicate role — the raw material of index candidates.
type colSets struct {
	eq, rng, join, in, group, agg []string
}

// relevantColumns partitions the query's column references by table
// ordinal and role.
func relevantColumns(q *sql.Query) []colSets {
	out := make([]colSets, len(q.Tables))
	name := func(c sql.QCol) string {
		return q.Tables[c.Tab].Table.Columns[c.Col].Name
	}
	addUnique := func(list *[]string, c string) {
		for _, e := range *list {
			if strings.EqualFold(e, c) {
				return
			}
		}
		*list = append(*list, c)
	}
	for _, p := range q.Sels {
		if p.Op == "=" {
			addUnique(&out[p.Col.Tab].eq, name(p.Col))
		} else {
			addUnique(&out[p.Col.Tab].rng, name(p.Col))
		}
	}
	for _, j := range q.Joins {
		addUnique(&out[j.L.Tab].join, name(j.L))
		addUnique(&out[j.R.Tab].join, name(j.R))
	}
	for _, p := range q.Ins {
		addUnique(&out[p.Col.Tab].in, name(p.Col))
	}
	for _, g := range q.GroupBy {
		addUnique(&out[g.Tab].group, name(g))
	}
	for _, a := range q.Aggs {
		if a.Kind != sql.AggCountStar {
			addUnique(&out[a.Col.Tab].agg, name(a.Col))
		}
	}
	return out
}

// generate builds the per-query candidate list for the profile.
//
// conflint:pure — candidate generation is the search's enumeration
// phase: it may read the profile but must build only fresh candidates
// (scoring, which locks the engine via what-if, lives in greedy).
func (r *Recommender) generate(q *sql.Query) []*candidate {
	sets := relevantColumns(q)
	seen := make(map[string]bool)
	var out []*candidate

	add := func(c *candidate) {
		if c == nil || seen[c.key] {
			return
		}
		seen[c.key] = true
		out = append(out, c)
	}
	index := func(table string, cols ...string) *candidate {
		if len(cols) == 0 || len(cols) > r.cfg.MaxWidth {
			return nil
		}
		d := conf.IndexDef{Table: table, Columns: cols}
		return &candidate{key: d.Name(), indexes: []conf.IndexDef{d}}
	}

	for t, cs := range sets {
		table := q.Tables[t].Table.Name
		access := concatUnique(cs.eq, cs.rng, cs.join, cs.in)
		// Singles on every access column.
		for _, c := range access {
			add(index(table, c))
		}
		if r.cfg.Permute {
			// System A: every ordered permutation of relevant-column
			// subsets up to MaxWidth. The count of these is what blows
			// past the evaluation limit on complex workloads.
			rel := concatUnique(access, cs.group)
			for _, perm := range permutations(rel, r.cfg.MaxWidth) {
				add(index(table, perm...))
			}
			continue
		}
		// Targeted composites.
		add(index(table, truncate(concatUnique(cs.eq, cs.join, cs.rng), r.cfg.MaxWidth)...))
		add(index(table, truncate(concatUnique(cs.join, cs.eq), r.cfg.MaxWidth)...))
		// Covering composites: access prefix plus group-by and aggregate
		// columns (enables index-only plans).
		add(index(table, truncate(concatUnique(cs.eq, cs.join, cs.group, cs.agg), r.cfg.MaxWidth)...))
		add(index(table, truncate(concatUnique(cs.in, cs.join, cs.group), r.cfg.MaxWidth)...))
	}

	// Indexes enabling index-only IN-set computation on subquery tables.
	for _, p := range q.Ins {
		add(index(p.SubTable.Name, p.SubTable.Columns[p.SubCol].Name))
	}

	if r.cfg.UseViews {
		for _, c := range r.viewCandidates(q, sets) {
			add(c)
		}
	}
	return out
}

// viewCandidates proposes a materialized view for each joined table pair,
// projecting every column the query needs from the pair, plus an indexed
// variant keyed on the pair's selection columns (paper Table 3: System C
// recommended views over Lineitem ⋈ Partsupp with indexes on them).
//
// conflint:pure — same enumeration-phase contract as generate.
func (r *Recommender) viewCandidates(q *sql.Query, sets []colSets) []*candidate {
	// Skip self-joined queries: view matching would be ambiguous.
	namesSeen := make(map[string]bool)
	for _, t := range q.Tables {
		n := strings.ToLower(t.Table.Name)
		if namesSeen[n] {
			return nil
		}
		namesSeen[n] = true
	}

	out := make([]*candidate, 0, len(q.Tables)*len(q.Tables))
	for ti := range q.Tables {
		for tj := ti + 1; tj < len(q.Tables); tj++ {
			joins := make([]sql.JoinPred, 0, len(q.Joins))
			for _, j := range q.Joins {
				if (j.L.Tab == ti && j.R.Tab == tj) || (j.L.Tab == tj && j.R.Tab == ti) {
					joins = append(joins, j)
				}
			}
			if len(joins) == 0 {
				continue
			}
			nameA := q.Tables[ti].Table.Name
			nameB := q.Tables[tj].Table.Name

			colsA, colsB := neededCols(sets, ti), neededCols(sets, tj)
			if len(colsA)+len(colsB) == 0 {
				continue
			}
			proj := make([]string, 0, len(colsA)+len(colsB))
			viewColOf := make(map[string]int) // "alias.col" -> view ordinal
			for _, c := range colsA {
				viewColOf["a."+strings.ToLower(c)] = len(proj)
				proj = append(proj, "a."+c)
			}
			for _, c := range colsB {
				viewColOf["b."+strings.ToLower(c)] = len(proj)
				proj = append(proj, "b."+c)
			}
			preds := make([]string, 0, len(joins))
			for _, j := range joins {
				l, rr := j.L, j.R
				if l.Tab != ti {
					l, rr = rr, l
				}
				preds = append(preds, "a."+q.Tables[ti].Table.Columns[l.Col].Name+
					" = b."+q.Tables[tj].Table.Columns[rr.Col].Name)
			}
			vname := viewName(nameA, nameB, preds)
			vd := conf.ViewDef{
				Name: vname,
				SQL: "SELECT " + strings.Join(proj, ", ") + " FROM " + nameA + " a, " +
					nameB + " b WHERE " + strings.Join(preds, " AND "),
				BaseTables: []string{nameA, nameB},
			}
			out = append(out, &candidate{key: "view:" + vname, views: []conf.ViewDef{vd}})

			// Indexed variant: keys are the selection columns of either
			// side (view columns are named c0..cN by projection position).
			keyCols := make([]string, 0, len(sets[ti].eq)+len(sets[tj].eq))
			for _, c := range sets[ti].eq {
				keyCols = append(keyCols, "c"+strconv.Itoa(viewColOf["a."+strings.ToLower(c)]))
			}
			for _, c := range sets[tj].eq {
				keyCols = append(keyCols, "c"+strconv.Itoa(viewColOf["b."+strings.ToLower(c)]))
			}
			if len(keyCols) > 0 && len(keyCols) <= r.cfg.MaxWidth {
				d := conf.IndexDef{Table: vname, Columns: keyCols}
				out = append(out, &candidate{
					key:     "view+ix:" + d.Name(),
					views:   []conf.ViewDef{vd},
					indexes: []conf.IndexDef{d},
				})
			}
		}
	}
	return out
}

// neededCols lists one side's query-needed columns in deterministic
// order (hoisted out of the pair loop: a closure there would allocate
// its environment once per table pair on the recommendation path).
func neededCols(sets []colSets, t int) []string {
	cs := sets[t]
	return concatUnique(cs.eq, cs.rng, cs.join, cs.in, cs.group, cs.agg)
}

// viewName derives a deterministic, compact view name.
func viewName(a, b string, preds []string) string {
	h := uint32(2166136261)
	for _, p := range preds {
		for i := 0; i < len(p); i++ {
			h = (h ^ uint32(p[i])) * 16777619
		}
	}
	pa, pb := a, b
	if len(pa) > 4 {
		pa = pa[:4]
	}
	if len(pb) > 4 {
		pb = pb[:4]
	}
	return fmt.Sprintf("mv_%s_%s_%x", pa, pb, h&0xffff)
}

// concatUnique appends the lists, dropping case-insensitive duplicates.
func concatUnique(lists ...[]string) []string {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for _, l := range lists {
		for _, c := range l {
			k := strings.ToLower(c)
			if !seen[k] {
				seen[k] = true
				out = append(out, c)
			}
		}
	}
	return out
}

func truncate(l []string, n int) []string {
	if len(l) > n {
		return l[:n]
	}
	return l
}

// permutations enumerates all ordered arrangements of 1..maxLen elements
// drawn from cols (no repetition), in deterministic order.
func permutations(cols []string, maxLen int) [][]string {
	cols = append([]string(nil), cols...)
	sort.Strings(cols)
	// The arrangement count is known in closed form; size the result once
	// instead of growing it through the recursion.
	out := make([][]string, 0, permCount(len(cols), maxLen))
	cur := make([]string, 0, maxLen)
	used := make([]bool, len(cols))
	var rec func()
	rec = func() {
		if len(cur) > 0 {
			out = append(out, append([]string(nil), cur...))
		}
		if len(cur) == maxLen {
			return
		}
		for i, c := range cols {
			if used[i] {
				continue
			}
			used[i] = true
			cur = append(cur, c)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}
