// The interprocedural effect analysis: the substrate for the v4 purity
// rules (pure, readpath). Every function in the analysis domain gets a
// side-effect summary — a set of effects over a finite lattice:
//
//   - writes, classified by what they mutate: the receiver, a
//     reference-typed parameter (with its slot), a package-level
//     variable, or — for conflint:epoch fields only — state the
//     analysis could not attribute ("escaped");
//   - channel operations (send, receive, close);
//   - goroutine spawns;
//   - lock acquisitions (Lock and RLock both: a pure observation has no
//     business synchronizing);
//   - calls into a curated table of effectful stdlib functions (file
//     and network I/O, logging, global rand, atomics, sleeps).
//
// Summaries propagate bottom-up over the v2 call graph with the v3
// fixpoint driver (m.fixpoint, rule "effects"). At each call site a
// callee's receiver/parameter-rooted write is re-rooted through the
// caller's actual receiver/argument expression: rooted in the caller's
// receiver or a reference parameter it stays an effect, rooted in a
// global it stays a global write, and rooted in a fresh local (composite
// literal, new, make, a zero-value var — the fresh-local escape
// exemption) it is discharged: mutating an object the function itself
// allocated is not an observable effect. Writes the re-rooting cannot
// attribute are dropped (conservative silence) — except writes to
// conflint:epoch config-bearing fields, which are kept as "escaped" so
// the readpath rule never loses track of a configuration mutation.
//
// Every effect carries a witness chain (root-first) through the calls
// that realize it, in the same vocabulary as the other interprocedural
// rules. Go-spawned callees do not propagate (their effects happen on
// another goroutine; the spawn itself is already an effect).
//
// Known conservatisms, consistent with the suite's resolution policy:
// freshness is shallow (a fresh struct that holds pointers to caller
// state can launder writes — the executor billing its caller's meter
// through a fresh executor is the sanctioned example); value receivers
// and value parameters are function-local copies, so writes through
// their pointer-valued fields are not tracked; dynamic calls have no
// edges and contribute nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
)

const pureDirective = "conflint:pure"

// Pure returns the purity-contract analyzer: a function carrying the
// pure directive in its doc comment must be transitively effect-free.
func Pure() *Analyzer {
	return &Analyzer{
		Name:  "pure",
		Doc:   "functions declared conflint:pure must be transitively effect-free: no writes to caller-visible state, no channel ops, spawns, locks, or effectful stdlib calls",
		Check: func(p *Package) []Finding { return p.Mod.interprocFindings(p, "pure", pureModule) },
	}
}

// effKind is the effect lattice's dimension.
type effKind int

const (
	effWrite effKind = iota
	effChan
	effGo
	effLock
	effIO
)

// effRoot classifies what a write mutates.
type effRoot int

const (
	rootRecv effRoot = iota
	rootParam
	rootGlobal
	// rootEscaped marks a conflint:epoch write the re-rooting could not
	// attribute to caller-visible state; kept so readpath (and the pure
	// contract) never lose a configuration mutation.
	rootEscaped
)

// effect is one entry of a function's side-effect summary. Entries are
// immutable once inserted; the witness chain is fixed at first insertion
// (deterministic, because insertion order is deterministic).
type effect struct {
	kind  effKind
	root  effRoot // meaningful for effWrite
	slot  int     // parameter index for root == rootParam
	desc  string  // human-readable effect ("writes engine.Engine.current")
	pos   token.Pos
	epoch fieldKey // non-zero typ when the write hits a conflint:epoch field
	steps []string // witness chain, summarized function first
}

// id is the dedup key within one function's summary.
func (e *effect) id() string {
	return fmt.Sprintf("%d|%d|%d|%d", e.pos, e.kind, e.root, e.slot)
}

// readSession is one RLock-held span of an epoch-guarding mutex: the
// engine's what-if read session (and its cluster analogue).
type readSession struct {
	key      string // holder function
	class    string // lock class of the guard
	interval heldInterval
}

// effectState is the module-wide result of the analysis, built once.
type effectState struct {
	m     *Module
	sets  *epochSets
	sums  map[string][]effect // fixpoint summaries, sorted per key
	local map[string][]effect // per-function direct effects
	// full marks functions needing the complete lattice (the pure-root
	// closure); everything else in the domain tracks epoch writes only
	// (the readpath closure can span most of the module — keeping its
	// summaries epoch-only keeps the fixpoint small).
	full      map[string]bool
	domain    []string // sorted
	pureRoots []string // sorted conflint:pure function keys
	sessions  []readSession

	// callCtx caches per-call-site root classifications: the fixpoint
	// revisits functions, the AST walk need not. ctxMu guards it (the
	// fixpoint itself is single-goroutine, but pure and readpath may
	// race to warm the state's lazy parts).
	ctxMu   sync.Mutex
	callCtx map[*funcDecl]map[token.Pos]callRoots // conflint:guardedby ctxMu
}

// effectsOf builds (once) the module's effect summaries, the pure roots
// and the read sessions. Both the pure and readpath analyzers share it.
func effectsOf(m *Module) *effectState {
	m.effOnce.Do(func() {
		m.eff = buildEffects(m)
	})
	return m.eff
}

func buildEffects(m *Module) *effectState {
	es := &effectState{
		m:     m,
		sets:  epochSetsOf(m),
		sums:  make(map[string][]effect),
		local: make(map[string][]effect),
		full:  make(map[string]bool),
	}
	g := m.Graph()

	// Pure roots: conflint:pure in the function's doc comment.
	for _, key := range g.Keys() {
		node := g.Node(key)
		if node.Fn != nil && docHasToken(node.Fn.decl, pureDirective) {
			es.pureRoots = append(es.pureRoots, key)
		}
	}

	// Read sessions: RLock intervals of mutexes that guard epoch fields.
	guards := epochGuardClasses(m, es.sets)
	if len(guards) > 0 {
		for _, key := range g.Keys() {
			node := g.Node(key)
			if node.Fn == nil || node.Fn.decl.Body == nil {
				continue
			}
			for _, iv := range m.lockIntervals(node.Fn) {
				if iv.rlock && guards[iv.class] {
					es.sessions = append(es.sessions, readSession{key: key, class: iv.class, interval: iv})
				}
			}
		}
	}
	if len(es.pureRoots) == 0 && len(es.sessions) == 0 {
		return es
	}

	// Domain: the non-go call closure of the pure roots (tracked with
	// the full lattice) plus the closure of every call made inside a
	// read session (epoch writes only).
	inDomain := make(map[string]bool)
	var queue []string
	push := func(key string, full bool) {
		if full && !es.full[key] {
			es.full[key] = true
			queue = append(queue, key)
			inDomain[key] = true
		} else if !inDomain[key] {
			inDomain[key] = true
			queue = append(queue, key)
		}
	}
	for _, r := range es.pureRoots {
		push(r, true)
	}
	for _, s := range es.sessions {
		push(s.key, false)
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		node := g.Node(key)
		if node == nil {
			continue
		}
		for _, cs := range node.Out {
			if cs.Go {
				continue
			}
			push(cs.Callee, es.full[key])
		}
	}
	for key := range inDomain {
		es.domain = append(es.domain, key)
	}
	sort.Strings(es.domain)

	// Direct effects, then the bottom-up fixpoint.
	for _, key := range es.domain {
		es.local[key] = es.directEffects(key)
	}
	m.fixpoint("effects", es.domain, nil, es.recompute)
	return es
}

// docHasToken reports whether a function's doc comment carries the
// directive: a comment line that starts with the token (mentioning the
// directive mid-sentence, as this very comment does, is prose, not a
// declaration).
func docHasToken(fn *ast.FuncDecl, tok string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == tok || strings.HasPrefix(text, tok+" ") {
			return true
		}
	}
	return false
}

// epochGuardClasses derives the lock classes that guard epoch fields
// from the fields' own conflint:guardedby annotations.
func epochGuardClasses(m *Module, sets *epochSets) map[string]bool {
	out := make(map[string]bool)
	for fk := range sets.guarded {
		st, _ := m.StructOf(fk.typ)
		if st == nil {
			continue
		}
		for _, fld := range st.Fields.List {
			for _, n := range fld.Names {
				if n.Name != fk.field {
					continue
				}
				if mu := guardAnnotation(fld); mu != "" {
					out[fk.typ+"."+mu] = true
				}
			}
		}
	}
	return out
}

// stdlibEffects is the curated table of effectful stdlib calls, keyed
// like stdlibReturnsError ("importPath.Func", "importPath.Type.Method").
// Reads of the wall clock are deliberately absent: nondeterminism is
// dettaint's jurisdiction; this table is about side effects.
var stdlibEffects = map[string]bool{
	// Filesystem and process.
	"os.WriteFile": true, "os.ReadFile": true, "os.Create": true,
	"os.Open": true, "os.OpenFile": true, "os.Remove": true,
	"os.RemoveAll": true, "os.Mkdir": true, "os.MkdirAll": true,
	"os.Rename": true, "os.Setenv": true, "os.Chdir": true, "os.Exit": true,
	"os.File.Close": true, "os.File.Sync": true, "os.File.Write": true,
	"os.File.WriteString": true, "os.File.Read": true,
	// Terminal and logging.
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"log.Print": true, "log.Printf": true, "log.Println": true,
	"log.Fatal": true, "log.Fatalf": true, "log.Fatalln": true,
	"log.Panic": true, "log.Panicf": true, "log.Panicln": true,
	"log.Logger.Print": true, "log.Logger.Printf": true, "log.Logger.Println": true,
	// Network.
	"net.Listen": true, "net.Dial": true,
	"net/http.Get": true, "net/http.Post": true, "net/http.Head": true,
	"net/http.Server.ListenAndServe": true, "net/http.Server.Serve": true,
	"net/http.Server.Shutdown": true, "net/http.Server.Close": true,
	// Streams.
	"io.Copy": true, "io.ReadAll": true, "bufio.Writer.Flush": true,
	"encoding/json.Encoder.Encode": true,
	"encoding/csv.Writer.Write":    true, "encoding/csv.Writer.WriteAll": true,
	"encoding/csv.Writer.Flush": true,
	// Scheduling and global PRNG state.
	"time.Sleep":    true,
	"math/rand.Int": true, "math/rand.Intn": true, "math/rand.Int63": true,
	"math/rand.Int63n": true, "math/rand.Float64": true, "math/rand.Perm": true,
	"math/rand.Shuffle": true, "math/rand.Seed": true,
	"os/signal.Notify": true,
	// Shared-state synchronization primitives beyond plain mutexes.
	"sync.WaitGroup.Add": true, "sync.WaitGroup.Done": true, "sync.WaitGroup.Wait": true,
	"sync.Once.Do":   true,
	"sync.Map.Store": true, "sync.Map.Delete": true, "sync.Map.LoadOrStore": true,
	"sync/atomic.AddInt32": true, "sync/atomic.AddInt64": true,
	"sync/atomic.AddUint32": true, "sync/atomic.AddUint64": true,
	"sync/atomic.StoreInt32": true, "sync/atomic.StoreInt64": true,
	"sync/atomic.StoreUint32": true, "sync/atomic.StoreUint64": true,
	"sync/atomic.SwapInt64": true, "sync/atomic.CompareAndSwapInt32": true,
	"sync/atomic.CompareAndSwapInt64": true,
	"sync/atomic.Int64.Add":           true, "sync/atomic.Int64.Store": true,
	"sync/atomic.Int32.Add": true, "sync/atomic.Int32.Store": true,
	"sync/atomic.Uint64.Add": true, "sync/atomic.Uint64.Store": true,
	"sync/atomic.Bool.Store": true, "sync/atomic.Value.Store": true,
}

// stdlibCallKey resolves a call to its stdlib table key ("" when the
// call is module-internal or unresolvable).
func stdlibCallKey(m *Module, fd *funcDecl, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if base, ok := sel.X.(*ast.Ident); ok {
		if imp := importPathOf(fd.file, base.Name); imp != "" {
			return imp + "." + sel.Sel.Name
		}
	}
	recv := m.TypeOf(fd.pkg, fd.file, fd.decl, sel.X)
	if key := m.NamedKey(recv); key != "" && !strings.HasPrefix(key, m.Path+"/") && !strings.HasPrefix(key, m.Path+".") {
		return key + "." + sel.Sel.Name
	}
	return ""
}

// rootRef is the outcome of classifying an expression's root: what the
// expression ultimately aliases from the enclosing function's point of
// view.
type rootRef struct {
	kind effRoot
	slot int
	sym  string // global symbol key for rootGlobal
	// drop marks an expression that aliases nothing caller-visible:
	// fresh reports the fresh-local exemption (also value-typed copies),
	// and !fresh an unattributable root (call results, unresolved) —
	// the difference matters only for epoch writes, which escape rather
	// than discharge when the root is unattributable.
	drop  bool
	fresh bool
}

const maxRootTrace = 6

// classifyRoot resolves the root of an expression within fd: the
// receiver, a parameter, a package-level variable, or a local (traced
// through reference-typed definitions to its source).
func (es *effectState) classifyRoot(fd *funcDecl, e ast.Expr) rootRef {
	return es.classifyRootDepth(fd, e, maxRootTrace)
}

func (es *effectState) classifyRootDepth(fd *funcDecl, e ast.Expr, depth int) rootRef {
	m := es.m
	// A package-qualified selector is a foreign global.
	if sel, ok := unparen(e).(*ast.SelectorExpr); ok {
		if base, ok := sel.X.(*ast.Ident); ok {
			if imp := importPathOf(fd.file, base.Name); imp != "" {
				return rootRef{kind: rootGlobal, sym: imp + "." + sel.Sel.Name}
			}
		}
	}
	id := rootIdent(unamp(e))
	if id == nil {
		// Composite literals and &T{...} are fresh; anything else
		// (call results, conversions) is unattributable.
		if isFreshExpr(unparen(e)) {
			return rootRef{drop: true, fresh: true}
		}
		return rootRef{drop: true}
	}
	if id.Name == "_" {
		return rootRef{drop: true, fresh: true}
	}
	fn := fd.decl
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		for _, n := range fn.Recv.List[0].Names {
			if n.Name == id.Name {
				if _, isPtr := fn.Recv.List[0].Type.(*ast.StarExpr); isPtr {
					return rootRef{kind: rootRecv}
				}
				// Value receiver: the function owns a copy.
				return rootRef{drop: true, fresh: true}
			}
		}
	}
	if fn.Type.Params != nil {
		slot := 0
		for _, fld := range fn.Type.Params.List {
			n := len(fld.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				if i < len(fld.Names) && fld.Names[i].Name == id.Name {
					if es.isRefTypeExpr(fd, fld.Type) {
						return rootRef{kind: rootParam, slot: slot + i}
					}
					return rootRef{drop: true, fresh: true} // value copy
				}
			}
			slot += n
		}
	}
	if _, ok := m.buildIndex().vars[fd.pkg.ImportPath+"."+id.Name]; ok {
		return rootRef{kind: rootGlobal, sym: fd.pkg.ImportPath + "." + id.Name}
	}
	// A local: only reference-typed locals can alias caller state.
	if depth <= 0 {
		return rootRef{drop: true}
	}
	t := m.TypeOf(fd.pkg, fd.file, fd.decl, id)
	if t.zero() {
		return rootRef{drop: true}
	}
	if !es.isRefType(t) {
		return rootRef{drop: true, fresh: true} // value copy
	}
	return es.traceLocal(fd, id.Name, depth)
}

// isRefTypeExpr reports whether a type expression (interpreted in fd's
// file) is reference-like: pointer, map, slice, or channel.
func (es *effectState) isRefTypeExpr(fd *funcDecl, t ast.Expr) bool {
	if _, ok := t.(*ast.Ellipsis); ok {
		return true // variadic: a slice
	}
	return es.isRefType(Type{Expr: t, Pkg: fd.pkg, File: fd.file})
}

func (es *effectState) isRefType(t Type) bool {
	u := es.m.Underlying(t)
	switch ut := u.Expr.(type) {
	case *ast.StarExpr, *ast.MapType, *ast.ChanType:
		return true
	case *ast.ArrayType:
		return ut.Len == nil // slice
	}
	return false
}

// traceLocal follows a reference-typed local back to its definition:
// fresh allocations discharge, reference chains re-classify at their
// source, and anything else (call results, untraceable) is
// unattributable.
func (es *effectState) traceLocal(fd *funcDecl, name string, depth int) rootRef {
	var def ast.Expr
	found := false
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range s.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || lid.Name != name {
					continue
				}
				found = true
				if len(s.Rhs) == len(s.Lhs) {
					def = s.Rhs[i]
				}
				return false
			}
		case *ast.ValueSpec:
			for i, n2 := range s.Names {
				if n2.Name != name {
					continue
				}
				found = true
				if i < len(s.Values) {
					def = s.Values[i]
				}
				// No initializer: zero value, fresh by construction.
				return false
			}
		case *ast.RangeStmt:
			match := func(e ast.Expr) bool {
				id, ok := e.(*ast.Ident)
				return ok && id.Name == name
			}
			if (s.Key != nil && match(s.Key)) || (s.Value != nil && match(s.Value)) {
				found = true
				def = s.X
				return false
			}
		}
		return true
	})
	if !found {
		return rootRef{drop: true}
	}
	if def == nil || isFreshLocalExpr(def) {
		return rootRef{drop: true, fresh: true}
	}
	if _, isCall := unparen(def).(*ast.CallExpr); isCall {
		// A call result: function-local as far as the caller can see,
		// but not provably fresh.
		return rootRef{drop: true}
	}
	return es.classifyRootDepth(fd, def, depth-1)
}

// isFreshLocalExpr extends the epoch rule's freshness (composite
// literals, &T{...}, new) with make: all allocate storage this function
// owns.
func isFreshLocalExpr(e ast.Expr) bool {
	if isFreshExpr(e) {
		return true
	}
	if call, ok := unparen(e).(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" {
			return true
		}
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// unamp strips a leading &.
func unamp(e ast.Expr) ast.Expr {
	if u, ok := unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return e
}

// directEffects scans one function body for effects it performs itself
// (calls contribute via summary propagation, not here). Function-literal
// bodies are skipped, consistent with the other interprocedural rules.
func (es *effectState) directEffects(key string) []effect {
	m := es.m
	node := m.Graph().Node(key)
	if node == nil || node.Fn == nil || node.Fn.decl.Body == nil {
		return nil
	}
	fd := node.Fn
	full := es.full[key]
	short := m.shortKey(key)
	var out []effect
	seen := make(map[string]bool)
	add := func(e effect) {
		if !full && e.epoch.typ == "" {
			return // epoch-only tracking outside the pure closure
		}
		e.steps = []string{m.stepf(e.pos, "%s %s", short, e.desc)}
		if k := e.id(); !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}

	writeTarget := func(target ast.Expr, forceRef bool) {
		t := unparen(target)
		if _, isIdent := t.(*ast.Ident); isIdent && !forceRef {
			// Plain identifier: only a package-level variable write is
			// an effect (locals and parameter rebinds are copies).
			ref := es.classifyRoot(fd, t)
			if ref.kind == rootGlobal && !ref.drop {
				add(effect{kind: effWrite, root: rootGlobal, desc: "writes package-level " + m.shortKey(ref.sym), pos: t.Pos()})
			}
			return
		}
		ref := es.classifyRoot(fd, t)
		var ek fieldKey
		if sel := baseSelector(t); sel != nil {
			fkey := m.NamedKey(m.TypeOf(fd.pkg, fd.file, fd.decl, sel.X))
			if fkey != "" {
				if _, guarded := es.sets.guarded[fieldKey{fkey, sel.Sel.Name}]; guarded {
					ek = fieldKey{fkey, sel.Sel.Name}
				}
			}
		}
		desc := "writes " + exprString(m.Fset, t)
		if ek.typ != "" {
			desc = fmt.Sprintf("writes %s.%s (conflint:epoch)", m.shortKey(ek.typ), ek.field)
		}
		switch {
		case ref.drop && ref.fresh:
			return // fresh-local exemption (or a value copy)
		case ref.drop:
			if ek.typ != "" {
				add(effect{kind: effWrite, root: rootEscaped, desc: desc, pos: t.Pos(), epoch: ek})
			}
			return
		default:
			add(effect{kind: effWrite, root: ref.kind, slot: ref.slot, desc: desc, pos: t.Pos(), epoch: ek})
		}
	}

	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if s.Tok == token.DEFINE {
					if _, isIdent := unparen(l).(*ast.Ident); isIdent {
						continue // declaration, not a write
					}
				}
				writeTarget(l, false)
			}
		case *ast.IncDecStmt:
			writeTarget(s.X, false)
		case *ast.SendStmt:
			add(effect{kind: effChan, desc: "sends on " + exprString(m.Fset, s.Chan), pos: s.Pos()})
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				add(effect{kind: effChan, desc: "receives from " + exprString(m.Fset, s.X), pos: s.Pos()})
			}
		case *ast.GoStmt:
			add(effect{kind: effGo, desc: "spawns a goroutine", pos: s.Pos()})
		case *ast.CallExpr:
			if id, ok := s.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "close":
					if len(s.Args) == 1 {
						add(effect{kind: effChan, desc: "closes " + exprString(m.Fset, s.Args[0]), pos: s.Pos()})
					}
					return true
				case "delete", "copy":
					if len(s.Args) >= 1 {
						writeTarget(s.Args[0], true)
					}
					return true
				case "print", "println":
					add(effect{kind: effIO, desc: "calls builtin " + id.Name, pos: s.Pos()})
					return true
				}
			}
			if sk := stdlibCallKey(m, fd, s); sk != "" && stdlibEffects[sk] {
				add(effect{kind: effIO, desc: "calls effectful stdlib " + sk, pos: s.Pos()})
			}
		}
		return true
	})

	if full {
		for _, ev := range m.lockEvents(fd) {
			if !ev.acquire {
				continue
			}
			flavor := "Lock"
			if ev.rlock {
				flavor = "RLock"
			}
			add(effect{kind: effLock, desc: fmt.Sprintf("acquires %s (%s)", ev.target, flavor), pos: ev.pos})
		}
	}
	return out
}

// recompute rebuilds one function's summary from its direct effects and
// its callees' current summaries, re-rooting write effects through the
// call sites. Monotone: entries are only ever added.
func (es *effectState) recompute(key string) bool {
	m := es.m
	node := m.Graph().Node(key)
	if node == nil || node.Fn == nil || node.Fn.decl.Body == nil {
		return false
	}
	full := es.full[key]
	short := m.shortKey(key)
	set := make(map[string]effect)
	var order []string
	insert := func(e effect) {
		k := e.id()
		if _, ok := set[k]; !ok {
			set[k] = e
			order = append(order, k)
		}
	}
	for _, e := range es.local[key] {
		insert(e)
	}
	callCtx := es.callContexts(node.Fn)
	for _, cs := range node.Out {
		if cs.Go {
			continue
		}
		step := m.stepf(cs.Pos, "%s calls %s", short, m.shortKey(cs.Callee))
		for _, ce := range es.sums[cs.Callee] {
			ne, keep := es.reroot(ce, callCtx[cs.Pos])
			if !keep {
				continue
			}
			if !full && ne.epoch.typ == "" {
				continue
			}
			ne.pos = ce.pos
			ne.steps = append([]string{step}, ce.steps...)
			insert(ne)
		}
	}
	if len(order) == len(es.sums[key]) {
		return false
	}
	out := make([]effect, 0, len(order))
	for _, k := range order {
		out = append(out, set[k])
	}
	// Sorted summaries keep downstream iteration (and witness selection)
	// deterministic regardless of which round inserted an entry.
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.root != b.root {
			return a.root < b.root
		}
		return a.slot < b.slot
	})
	es.sums[key] = out
	return true
}

// callRoots captures, for one call site, the classification of the
// receiver expression and each argument in the caller's context.
type callRoots struct {
	recv rootRef
	args []rootRef
}

// callContexts builds the per-call-site re-rooting table for a function
// (cached: the fixpoint revisits functions, the AST walk need not).
func (es *effectState) callContexts(fd *funcDecl) map[token.Pos]callRoots {
	es.ctxMu.Lock()
	if es.callCtx == nil {
		es.callCtx = make(map[*funcDecl]map[token.Pos]callRoots)
	}
	if got, ok := es.callCtx[fd]; ok {
		es.ctxMu.Unlock()
		return got
	}
	es.ctxMu.Unlock()
	out := make(map[token.Pos]callRoots)
	ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cr := callRoots{recv: rootRef{drop: true}}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if base, isID := sel.X.(*ast.Ident); !isID || importPathOf(fd.file, base.Name) == "" {
				cr.recv = es.classifyRoot(fd, sel.X)
			}
		}
		cr.args = make([]rootRef, len(call.Args))
		for i, a := range call.Args {
			cr.args[i] = es.classifyRoot(fd, a)
		}
		out[call.Pos()] = cr
		return true
	})
	es.ctxMu.Lock()
	es.callCtx[fd] = out
	es.ctxMu.Unlock()
	return out
}

// reroot lifts a callee effect into the caller: ambient effects (chan,
// go, lock, io) carry over unchanged; write effects re-root through the
// call's receiver/argument expressions, discharging against fresh
// locals and escaping (epoch writes) or dropping (everything else) when
// unattributable.
func (es *effectState) reroot(ce effect, cr callRoots) (effect, bool) {
	if ce.kind != effWrite {
		return ce, true
	}
	var ref rootRef
	switch ce.root {
	case rootGlobal:
		return ce, true
	case rootEscaped:
		return ce, true
	case rootRecv:
		ref = cr.recv
	case rootParam:
		if ce.slot >= len(cr.args) {
			ref = rootRef{drop: true} // variadic/mismatch: unattributable
		} else {
			ref = cr.args[ce.slot]
		}
	}
	if ref.drop {
		if ce.epoch.typ != "" && !ref.fresh {
			ce.root = rootEscaped
			return ce, true
		}
		return effect{}, false
	}
	ce.root = ref.kind
	ce.slot = ref.slot
	return ce, true
}

// pureModule reports every effect in the summary of a conflint:pure
// function, chained through the calls that realize it.
func pureModule(m *Module) []Finding {
	es := effectsOf(m)
	var out []Finding
	for _, root := range es.pureRoots {
		node := m.Graph().Node(root)
		if node == nil || node.Fn == nil {
			continue
		}
		pos := m.Fset.Position(node.Fn.decl.Name.Pos())
		short := m.shortKey(root)
		for _, e := range es.sums[root] {
			witness := append([]string(nil), e.steps...)
			out = append(out, Finding{
				Rule: "pure", File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("%s is declared conflint:pure but has a side effect: %s (%s)",
					short, e.desc, m.relPos(m.Fset.Position(e.pos))),
				Hint:    "make the effect function-local (fresh allocation), lift it out of the pure closure, or drop the conflint:pure contract",
				Witness: witness,
			})
		}
	}
	return out
}

// pureRootsOf exposes the pure-annotated function keys (for tests).
func (m *Module) pureRootsOf() []string { return effectsOf(m).pureRoots }

// effectSummary exposes one function's effect summary (for tests). The
// function must be in the analysis domain to have one.
func (m *Module) effectSummary(key string) []effect { return effectsOf(m).sums[key] }
