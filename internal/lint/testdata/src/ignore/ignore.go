// Fixture for the ignore-directive rule: a directive without a reason is
// itself a finding and suppresses nothing (see TestBareIgnoreDirective,
// which pins the line numbers below).
package ignorefix

func mayFail() error { return nil }

// Bare has a reason-less directive on line 11; the discard on line 12
// stays a finding too.
func Bare() {
	// conflint:ignore
	_ = mayFail()
}
