// Fixture for the pure analyzer: functions declared pure via the
// directive must be transitively effect-free. Each exemption (reads,
// fresh locals, effects discharged into fresh allocations) sits next to
// the violation it distinguishes itself from.
package purefix

type Registry struct {
	entries map[string]int
	n       int
}

var hits int

// Size only reads: the contract's trivial case.
//
// conflint:pure
func (r *Registry) Size() int { return r.n }

// Clone writes only into a fresh local map: discharged, not an effect.
//
// conflint:pure
func (r *Registry) Clone() map[string]int {
	out := make(map[string]int, r.n)
	for k, v := range r.entries {
		out[k] = v
	}
	return out
}

// BadWrite mutates its receiver directly.
//
// conflint:pure
func (r *Registry) BadWrite(k string, v int) { // want "BadWrite is declared conflint:pure but has a side effect: writes r.entries"
	r.entries[k] = v
}

func note() { hits++ }

func tally() { note() }

// BadTransitive reaches a global write two calls down: the effect must
// be reported through the call chain.
//
// conflint:pure
func (r *Registry) BadTransitive() int { // want "BadTransitive is declared conflint:pure but has a side effect: writes package-level fixture.hits"
	tally()
	return r.n
}
