// Fixture for the unchecked-error analyzer: the three discard shapes,
// the escape hatch, and the conventional allowlist.
package errfix

import (
	"fmt"
	"strconv"
	"strings"
)

func mayFail() error { return nil }

// Discard drops the error as an expression statement.
func Discard() {
	mayFail() // want "result of mayFail is an error and this statement discards it"
}

// GoDrop loses the error in a goroutine.
func GoDrop() {
	go mayFail() // want "dies silently when it fails"
}

// DeferDrop loses the error in a defer.
func DeferDrop() {
	defer mayFail() // want "defer mayFail drops its error"
}

// Blank discards the error result position.
func Blank() float64 {
	f, _ := strconv.ParseFloat("3", 64) // want "blank identifier discards the error from strconv\.ParseFloat"
	return f
}

// Assigned discards through a bare blank assignment.
func Assigned() {
	_ = mayFail() // want "discards an error without a conflint:ignore reason"
}

// Ignored is the sanctioned escape hatch: reasoned, so no finding.
func Ignored() {
	_ = mayFail() // conflint:ignore fixture demonstrates the sanctioned escape hatch
}

// Handled is clean.
func Handled() error {
	if err := mayFail(); err != nil {
		return err
	}
	return nil
}

// Allowed exercises the conventional allowlist: the fmt print family and
// strings.Builder writes never need checking.
func Allowed(b *strings.Builder) string {
	b.WriteString("ok")
	fmt.Println("fine")
	return b.String()
}
