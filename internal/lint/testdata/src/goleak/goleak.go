// Fixture for the goroutine-leak analyzer: each escape route (worker
// annotation, WaitGroup pairing, lifecycle channel, provable
// termination) next to the leaks it distinguishes itself from.
package goleakfix

import (
	"context"
	"net"
	"net/http"
	"sync"
)

// Leak spawns a goroutine that loops forever with no lifecycle: the
// canonical leak.
func Leak() {
	go func() { // want "goroutine may leak: it loops forever \(for \{\} with no break or return\)"
		for {
		}
	}()
}

// Worker is a deliberate daemon; the annotation names its lifecycle.
func Worker() {
	// conflint:worker lifecycle=none fixture daemon, runs until process exit by design; the busy loop never blocks
	go func() {
		for {
		}
	}()
}

// Pooled is the bounded worker-pool shape: Add before spawn, Done in the
// body, Wait after. The range over jobs alone would be a leak; the
// pairing bounds it.
func Pooled(jobs chan int) {
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				_ = j
			}
		}()
	}
	wg.Wait()
}

// Stopped is tied to a lifecycle: the select's receive on ctx.Done ends
// the goroutine when the caller cancels.
func Stopped(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

// NoDone waits on a WaitGroup but the spawned body never calls Done: the
// pairing does not hold, and the range never ends.
func NoDone(jobs chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "goroutine may leak: it ranges over channel jobs, which never ends unless the channel is closed"
		for j := range jobs {
			_ = j
		}
	}()
	wg.Wait()
}

// Bounded provably terminates: a plain range over a slice.
func Bounded(xs []int) {
	go func() {
		s := 0
		for _, x := range xs {
			s += x
		}
		_ = s
	}()
}

// Serve leaks through a call edge: serveLoop blocks in the stdlib's
// serve loop, so the spawn site needs a lifecycle or an annotation.
func Serve(srv *http.Server, ln net.Listener) {
	go serveLoop(srv, ln) // want "goroutine may leak: it blocks in net/http\.Server\.Serve until shutdown"
}

func serveLoop(srv *http.Server, ln net.Listener) {
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		panic(err)
	}
}
