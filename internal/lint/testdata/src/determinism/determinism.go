// Fixture for the determinism analyzer. The package is named core on
// purpose: the rule scopes by package name, so the fixture is checked
// exactly like the real report-producing packages.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Now reads the wall clock in a report-producing package.
func Now() int64 {
	return time.Now().Unix() // want "time\.Now in package core"
}

// Roll draws from the global math/rand source.
func Roll() int {
	return rand.Intn(6) // want "rand\.Intn uses the global math/rand source"
}

// Seeded is the sanctioned pattern: constructors are allowed.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

// Render writes output directly from a map range.
func Render(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v) // want "map iteration feeds ordered output"
	}
	return b.String()
}

// Collect builds a slice from a map range and never sorts it.
func Collect(m map[string]int) []string {
	var keys []string
	for k := range m { // want "slice that Collect never sorts"
		keys = append(keys, k)
	}
	return keys
}

// Sorted is the sanctioned pattern: collect, sort, then use.
func Sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
