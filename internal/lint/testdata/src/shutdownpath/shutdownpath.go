// Fixture for the shutdownpath analyzer: every conflint:worker must
// declare its lifecycle, and for channel lifecycles every blocking
// operation reachable from the worker body — directly or through
// callees — must be guarded by that channel.
package shutdownfix

import "sync"

type worker struct {
	trigger chan struct{}
	other   chan int
	done    chan struct{}
}

// startGood ranges over its lifecycle channel: the canonical clean shape.
func (w *worker) startGood() {
	// conflint:worker lifecycle=trigger drains trigger until closed
	go func() {
		defer close(w.done)
		for range w.trigger {
		}
	}()
}

// startUndeclared has a reason but no lifecycle token.
func (w *worker) startUndeclared() {
	// conflint:worker drains other forever
	go func() { // want "conflint:worker must declare its shutdown mechanism"
		for range w.other {
		}
	}()
}

// startNoReason declares the lifecycle but gives no reason.
func (w *worker) startNoReason() {
	// conflint:worker lifecycle=trigger
	go func() { // want "conflint:worker needs a reason beyond the lifecycle token"
		for range w.trigger {
		}
	}()
}

// startSend blocks on an unguarded send inside the guarded loop.
func (w *worker) startSend(results chan int) {
	// conflint:worker lifecycle=trigger forwards results
	go func() {
		for range w.trigger {
			results <- 1 // want "worker \(lifecycle=trigger\) sends on results with no lifecycle guard"
		}
	}()
}

// startSelect guards every block with a case receiving from the
// lifecycle channel: clean.
func (w *worker) startSelect(work chan int) {
	// conflint:worker lifecycle=trigger select-guarded pump
	go func() {
		for {
			select {
			case <-w.trigger:
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// startBadSelect selects with no default and no lifecycle case.
func (w *worker) startBadSelect(a, b chan int) {
	// conflint:worker lifecycle=trigger merges a and b
	go func() {
		for {
			select { // want "worker \(lifecycle=trigger\) blocks in a select with no default and no case receiving from lifecycle channel trigger"
			case v := <-a:
				_ = v
			case v := <-b:
				_ = v
			}
		}
	}()
}

// pumpAll may block: its summary carries the range up to its callers.
func (w *worker) pumpAll(jobs chan int) {
	for j := range jobs {
		_ = j
	}
}

// startTransitive blocks one call-graph level down: the finding lands on
// the call, with the witness chaining into pumpAll.
func (w *worker) startTransitive(jobs chan int) {
	// conflint:worker lifecycle=trigger delegates to pumpAll
	go func() {
		for range w.trigger {
			w.pumpAll(jobs) // want "worker \(lifecycle=trigger\) ranges over channel jobs, which is not the lifecycle channel"
		}
	}()
}

// startNone claims the worker never blocks; the receive disproves it.
func (w *worker) startNone(c chan int) {
	// conflint:worker lifecycle=none claims it never blocks
	go func() {
		<-c // want "worker \(lifecycle=none\) receives from c with no lifecycle guard"
	}()
}

// startExternal is stopped by an external mechanism: the body is not
// scanned, like the repo's HTTP listeners under srv.Shutdown.
func (w *worker) startExternal(c chan int) {
	// conflint:worker lifecycle=external stopped by the fixture harness
	go func() {
		<-c
	}()
}

// startWait joins a WaitGroup inside the worker: unguarded blocking.
func (w *worker) startWait(wg *sync.WaitGroup) {
	// conflint:worker lifecycle=trigger joins the group per tick
	go func() {
		for range w.trigger {
			wg.Wait() // want "worker \(lifecycle=trigger\) waits on wg with no lifecycle guard"
		}
	}()
}

// boundedNotify's send carries a reasoned ignore: the exemption at the
// source kills every transitive report through it.
func (w *worker) boundedNotify(c chan int) {
	c <- 1 // conflint:ignore buffered capacity-1 notification send, provably bounded in this fixture
}

// startIgnored is clean because its only block is ignored at the source.
func (w *worker) startIgnored(c chan int) {
	// conflint:worker lifecycle=trigger notifier with a bounded send
	go func() {
		for range w.trigger {
			w.boundedNotify(c)
		}
	}()
}
