// Fixture for the readpath analyzer: while an RLock read session on an
// epoch guard is open, no function in the session's call closure may
// write a conflint:epoch field of that guard's struct.
package readpathfix

import "sync"

type Store struct {
	mu sync.RWMutex
	// conflint:guardedby mu
	catalog map[string]int // conflint:epoch
	epoch   int64          // conflint:epochcounter
}

// Snapshot only reads under the read lock: the sanctioned session.
func (s *Store) Snapshot() map[string]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int, len(s.catalog))
	for k, v := range s.catalog {
		out[k] = v
	}
	return out
}

// badInlineWrite mutates the epoch field inside its own read session.
func (s *Store) badInlineWrite(k string, v int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.catalog[k] = v // want "catalog is written while the RLock read session on fixture.Store.mu .held by fixture.Store.badInlineWrite. is open"
	s.epoch++
}

// grow mutates the catalog for callers that hold the write lock; the
// violation is calling it from a read session.
func (s *Store) grow(k string) {
	s.catalog[k] = 1 // want "catalog is written while the RLock read session on fixture.Store.mu .held by fixture.Store.BadTransitiveWrite. is open"
	s.epoch++
}

// Resize takes the write lock: growing there is legitimate.
func (s *Store) Resize(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grow(k)
}

// BadTransitiveWrite calls the mutator while its read session is open:
// only the call chain makes the write visible.
func (s *Store) BadTransitiveWrite(k string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.grow(k)
	return len(s.catalog)
}
