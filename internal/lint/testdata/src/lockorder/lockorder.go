// Fixture for the lock-ordering analyzer: a seeded two-mutex inversion,
// one leg direct and one leg through a call edge, alongside nesting that
// follows a single global order and must stay silent.
package lockorderfix

import "sync"

// S carries two mutexes whose acquisition order the two methods invert.
type S struct {
	a sync.Mutex
	b sync.Mutex
}

// AB nests directly: a then b.
func (s *S) AB() {
	s.a.Lock() // want "potential deadlock: lock-order cycle fixture\.S\.a -> fixture\.S\.b -> fixture\.S\.a"
	defer s.a.Unlock()
	s.b.Lock()
	defer s.b.Unlock()
}

// BA inverts through a call edge: it holds b while grab takes a, so the
// inversion is only visible interprocedurally.
func (s *S) BA() {
	s.b.Lock()
	defer s.b.Unlock()
	s.grab()
}

func (s *S) grab() {
	s.a.Lock()
	defer s.a.Unlock()
}

// T nests its mutexes in one consistent order everywhere: no cycle, no
// finding.
type T struct {
	outer sync.Mutex
	inner sync.Mutex
}

// Both callers agree on outer -> inner.
func (t *T) One() {
	t.outer.Lock()
	defer t.outer.Unlock()
	t.inner.Lock()
	defer t.inner.Unlock()
}

func (t *T) Two() {
	t.outer.Lock()
	defer t.outer.Unlock()
	t.touch()
}

func (t *T) touch() {
	t.inner.Lock()
	defer t.inner.Unlock()
}
