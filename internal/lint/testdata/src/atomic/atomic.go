// Fixture for the atomic-discipline analyzer: typed atomics bypassed,
// raw atomics read plainly, and a misaligned 64-bit raw atomic.
package atomicfix

import "sync/atomic"

// Counters uses a typed atomic.
type Counters struct {
	hits atomic.Int64
}

// Hit is clean: every access goes through an atomic method.
func (c *Counters) Hit() { c.hits.Add(1) }

// Bad copies the atomic value out, bypassing Load.
func (c *Counters) Bad() atomic.Int64 {
	return c.hits // want "Counters\.hits used without an atomic method"
}

// Raw drives a plain int64 through sync/atomic functions. The bool in
// front leaves hits at offset 4 under 32-bit layout: misaligned.
type Raw struct {
	flag bool
	hits int64 // want "sits at 32-bit offset 4"
}

// Inc is the sanctioned access.
func (r *Raw) Inc() { atomic.AddInt64(&r.hits, 1) }

// Peek mixes in a plain read.
func (r *Raw) Peek() int64 {
	return r.hits // want "accessed via sync/atomic elsewhere but plainly here"
}

// Aligned keeps the 64-bit word first: no alignment finding, and all
// access is atomic.
type Aligned struct {
	hits int64
	flag bool
}

// Touch is clean.
func (a *Aligned) Touch() {
	atomic.AddInt64(&a.hits, 1)
	a.flag = true
}
