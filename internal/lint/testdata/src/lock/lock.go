// Fixture for the lock-discipline analyzer: one violation per rule,
// alongside clean code that must produce no findings.
package lockfix

import "sync"

// Annotated follows the protocol: the guarded field is declared.
type Annotated struct {
	mu sync.RWMutex
	n  int // conflint:guardedby mu
}

// Get is clean: read under the reader lock.
func (a *Annotated) Get() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.n
}

// Set writes under the reader lock: wrong side.
func (a *Annotated) Set(v int) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	a.n = v // want "under a\.mu\.RLock\(\): writers need the exclusive side"
}

// Bump writes with no lock at all.
func (a *Annotated) Bump() {
	a.n++ // want "writes guarded field a\.n without holding a\.mu\.Lock"
}

// Peek reads with no lock at all.
func (a *Annotated) Peek() int {
	return a.n // want "reads guarded field a\.n without holding"
}

// Leak acquires without releasing.
func (a *Annotated) Leak() {
	a.mu.Lock() // want "a\.mu\.Lock\(\) without a\.mu\.Unlock\(\)"
	a.n = 1
}

// sweep is unexported: the caller-holds-mu convention applies, no finding.
func (a *Annotated) sweep() {
	a.n = 0
}

// Unannotated has a mutex but declares nothing about it.
type Unannotated struct { // want "no conflint:guardedby annotations"
	mu sync.Mutex
	n  int
}

// Lock/Unlock here are paired, so only the annotation finding fires.
func (u *Unannotated) Touch() {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.n++
}
