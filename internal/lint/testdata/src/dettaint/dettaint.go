// Fixture for the determinism-taint analyzer: nondeterminism sources
// must not flow into conflint:sink report functions — through locals,
// helper returns, struct fields, or map iteration — while sorted
// map-collected slices and static values stay clean.
package dettaintfix

import (
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Render joins report lines into the artifact's bytes.
//
// conflint:sink fixture report
func Render(lines []string) string {
	return strings.Join(lines, "\n")
}

// helper builds one line inside Render's call closure.
func helper() string {
	return time.Now().String() // want "time.Now inside the call closure of report sink"
}

// RenderWithHeader pulls helper into the sink's closure.
//
// conflint:sink fixture header report
func RenderWithHeader(lines []string) string {
	return helper() + "\n" + Render(lines)
}

// Clean passes only static values: no finding.
func Clean() string {
	return Render([]string{"static", strconv.Itoa(len("x"))})
}

// BadStamp lets wall clock reach the sink through a local and an
// unresolved stdlib call.
func BadStamp() string {
	stamp := time.Now().String()
	return Render([]string{stamp}) // want "tainted value \(source: time.Now\) passed to report sink"
}

// id forwards its parameter: the summary must carry param taint through.
func id(s string) string { return s }

// BadThroughParam routes the taint through id's summary.
func BadThroughParam() string {
	t := time.Now().Format("15:04")
	return Render([]string{id(t)}) // want "tainted value \(source: time.Now\) passed to report sink"
}

// BadProcs embeds a GOMAXPROCS-dependent value.
func BadProcs() string {
	n := runtime.GOMAXPROCS(0)
	return Render([]string{strconv.Itoa(n)}) // want "tainted value \(source: runtime.GOMAXPROCS\) passed to report sink"
}

// BadKeys collects map keys in iteration order: the slice's order is
// nondeterministic and reaches the sink.
func BadKeys(m map[string]int) string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	return Render(ks) // want "tainted value \(source: map iteration order\) passed to report sink"
}

// GoodKeys sorts before rendering: the sort sanitizes order taint.
func GoodKeys(m map[string]int) string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return Render(ks)
}

// Report's wall field is tainted by fill and read while rendering.
type Report struct {
	wall  string
	count int
}

// fill is NOT in any sink closure: the taint it plants in Report.wall
// is only reported where it reaches rendered bytes, in write below.
func fill(r *Report) {
	r.wall = time.Now().String()
	r.count = 3
}

// write renders the report struct.
//
// conflint:sink fixture artifact
func write(r *Report) string {
	return r.wall + strconv.Itoa(r.count) // want "tainted field .*Report.wall \(source: time.Now\) is read inside the call closure"
}

// Build ties the two ends of the field flow together.
func Build() string {
	r := &Report{}
	fill(r)
	return write(r)
}
