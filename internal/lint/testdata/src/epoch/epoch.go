// Fixture for the epoch analyzer: config-bearing fields must be bumped
// on every path before returning. Each escape route (direct bump,
// interprocedural bump through the fixpoint, deferred bump, atomic add
// of the counter's address, constructor exemption) sits next to the
// violations it distinguishes itself from.
package epochfix

import "sync/atomic"

type Engine struct {
	catalog map[string]int // conflint:epoch
	views   []string       // conflint:epoch
	epoch   int64          // conflint:epochcounter
}

func (e *Engine) bump() { e.epoch++ }

// bumpIndirect proves the summary fixpoint: it bumps only through a
// callee, and callers of bumpIndirect must still count as bumped.
func (e *Engine) bumpIndirect() { e.bump() }

// BadWrite mutates the catalog and returns without any bump: the
// canonical violation.
func (e *Engine) BadWrite(k string, v int) {
	e.catalog[k] = v // want "BadWrite writes config-bearing field .*catalog but can return without bumping"
}

// GoodDirect bumps inline after the write.
func (e *Engine) GoodDirect(k string, v int) {
	e.catalog[k] = v
	e.epoch++
}

// GoodViaCallee bumps two call-graph levels down.
func (e *Engine) GoodViaCallee(vs []string) {
	e.views = vs
	e.bumpIndirect()
}

// GoodDefer covers every return with a deferred bump, including the
// early one.
func (e *Engine) GoodDefer(k string, v int, ok bool) {
	defer e.bump()
	e.catalog[k] = v
	if ok {
		return
	}
	e.views = nil
}

// BadCondBump only bumps on one branch: the conditional callee becomes
// the witness's "tried" material.
func (e *Engine) BadCondBump(vs []string, ok bool) {
	e.views = vs // want "BadCondBump writes config-bearing field .*views but can return without bumping"
	if ok {
		e.bump()
	}
}

// maybeBump bumps on only one of its paths: not a bumper.
func (e *Engine) maybeBump(ok bool) {
	if ok {
		e.bump()
	}
}

// BadTriedBump delegates to a conditional bumper: the call is recorded
// as "tried" witness material, and the write is still unbumped on the
// path where maybeBump declines.
func (e *Engine) BadTriedBump(vs []string, ok bool) {
	e.views = vs // want "BadTriedBump writes config-bearing field .*views but can return without bumping"
	e.maybeBump(ok)
}

// NewEngine writes fields of a locally constructed value: a constructor
// initializes state nobody else can observe yet, so no bump is owed.
func NewEngine() *Engine {
	e := &Engine{catalog: make(map[string]int)}
	e.views = []string{"v0"}
	return e
}

// Cluster's counter is only ever touched via sync/atomic: passing its
// address to atomic.AddInt64 counts as the bump.
type Cluster struct {
	spec string // conflint:epoch
	gen  int64  // conflint:epochcounter
}

func (c *Cluster) SetSpec(s string) {
	c.spec = s
	atomic.AddInt64(&c.gen, 1)
}

// BadHelper shows the contract is per-function: even when every caller
// bumps afterwards, the writing helper itself must bump before
// returning, because any new caller could forget.
func (c *Cluster) setSpecNoBump(s string) {
	c.spec = s // want "setSpecNoBump writes config-bearing field .*spec but can return without bumping"
}

func (c *Cluster) Apply(s string) {
	c.setSpecNoBump(s)
	atomic.AddInt64(&c.gen, 1)
}
