// Fixture for the bare conflint:worker directive: the annotation itself
// is a finding and suppresses nothing, so the leak is still reported.
//
// Excluded from TestFixtures: a want comment on the directive's line
// would become the directive's reason, so TestBareWorkerDirective pins
// the line numbers instead (like the ignore fixture).
package goleakbarefix

func spawn() {
	// conflint:worker
	go func() {
		for {
		}
	}()
}
