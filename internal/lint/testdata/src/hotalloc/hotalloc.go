// Fixture for the hot-path allocation analyzer: a conflint:hotpath root
// with each per-iteration allocation pattern, a callee reached through
// the graph, identical cold code that must stay silent, and the
// preallocated shapes the rule asks for.
package hotallocfix

import "fmt"

// Process is the fixture's workload entry point.
//
// conflint:hotpath — everything reachable from here is the measure path.
func Process(items []string) string {
	var out []string
	total := ""
	for i, it := range items {
		out = append(out, it)            // want "hot path fixture\.Process appends to out inside a loop, but out was declared without capacity"
		total += it + "-"                // want "hot path fixture\.Process concatenates strings inside a loop: quadratic allocation"
		_ = fmt.Sprintf("%d", i)         // want "hot path fixture\.Process calls fmt\.Sprintf inside a loop: one allocation per element"
		f := func() string { return it } // want "hot path fixture\.Process builds a closure on every loop iteration"
		_ = f
	}
	helper(items)
	_ = out
	return total
}

// helper is hot by reachability, not by annotation.
func helper(items []string) {
	var acc []string
	for _, it := range items {
		acc = append(acc, it) // want "hot path fixture\.helper appends to acc inside a loop, but acc was declared without capacity"
	}
	_ = acc
}

// Cold is identical to helper but unreachable from any hot-path root: no
// findings.
func Cold(items []string) {
	var acc []string
	for _, it := range items {
		acc = append(acc, it)
	}
	_ = acc
}

// Pre is on the hot path but allocates correctly: capacity up front, no
// per-iteration formatting or closures.
//
// conflint:hotpath — preallocated variant.
func Pre(items []string) []string {
	out := make([]string, 0, len(items))
	for _, it := range items {
		out = append(out, it)
	}
	return out
}
