// Lightweight name resolution: enough static typing to answer the
// analyzers' questions — "is this expression a map?", "what named type is
// this selector's base?", "does this call's last result carry an error?" —
// without go/types or export data. Resolution is best-effort and
// conservative: anything it cannot see resolves to the zero Type, and
// analyzers treat an unresolved type as "emit nothing".
package lint

import (
	"go/ast"
	"go/printer"
	"go/token"
	"path"
	"strings"
)

// Type is a resolved type: a syntactic type expression plus the package
// whose import table interprets its identifiers.
type Type struct {
	Expr ast.Expr
	Pkg  *Package
	File *File
}

func (t Type) zero() bool { return t.Expr == nil }

// index holds the module-wide symbol tables, built once on demand.
type index struct {
	// types maps "importPath.Name" to the type declaration.
	types map[string]*typeDecl
	// funcs maps "importPath.Name" to package-level functions.
	funcs map[string]*funcDecl
	// methods maps "importPath.Recv.Name" to methods (Recv is the bare
	// receiver type name, pointers stripped).
	methods map[string]*funcDecl
	// vars maps "importPath.Name" to package-level var/const specs.
	vars map[string]*varDecl
}

type typeDecl struct {
	pkg  *Package
	file *File
	spec *ast.TypeSpec
}

type funcDecl struct {
	pkg  *Package
	file *File
	decl *ast.FuncDecl
}

type varDecl struct {
	pkg   *Package
	file  *File
	typ   ast.Expr // nil when inferred
	value ast.Expr // nil when no initializer for this name
}

func (m *Module) buildIndex() *index {
	if m.idx != nil {
		return m.idx
	}
	idx := &index{
		types:   make(map[string]*typeDecl),
		funcs:   make(map[string]*funcDecl),
		methods: make(map[string]*funcDecl),
		vars:    make(map[string]*varDecl),
	}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.AST.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					fd := &funcDecl{pkg: p, file: f, decl: d}
					if d.Recv == nil || len(d.Recv.List) == 0 {
						idx.funcs[p.ImportPath+"."+d.Name.Name] = fd
					} else if rn := baseTypeName(d.Recv.List[0].Type); rn != "" {
						idx.methods[p.ImportPath+"."+rn+"."+d.Name.Name] = fd
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							idx.types[p.ImportPath+"."+s.Name.Name] = &typeDecl{pkg: p, file: f, spec: s}
						case *ast.ValueSpec:
							for i, n := range s.Names {
								var val ast.Expr
								if i < len(s.Values) {
									val = s.Values[i]
								}
								idx.vars[p.ImportPath+"."+n.Name] = &varDecl{pkg: p, file: f, typ: s.Type, value: val}
							}
						}
					}
				}
			}
		}
	}
	m.idx = idx
	return idx
}

// baseTypeName strips pointers/parens/generics from a receiver type.
func baseTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// importPathOf resolves a package identifier within a file to its import
// path ("" when the ident is not an import).
func importPathOf(f *File, name string) string {
	for _, imp := range f.AST.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		local := path.Base(p)
		if imp.Name != nil {
			local = imp.Name.Name
		}
		if local == name {
			return p
		}
	}
	return ""
}

// exprString renders an expression compactly ("e.mu", "w.e.mu") for
// matching lock/unlock pairs.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	// printer.Fprint never fails on a bytes-like writer.
	_ = printer.Fprint(&b, fset, e)
	return b.String()
}

const maxResolveDepth = 24

// resolver carries the context of one resolution walk.
type resolver struct {
	m     *Module
	pkg   *Package
	file  *File
	fn    *ast.FuncDecl // enclosing function, may be nil
	depth int
}

// TypeOf resolves the static type of expr as written inside fn (which may
// be nil for package-level contexts) in file f of package p.
func (m *Module) TypeOf(p *Package, f *File, fn *ast.FuncDecl, expr ast.Expr) Type {
	r := &resolver{m: m, pkg: p, file: f, fn: fn}
	return r.typeOf(expr)
}

func (r *resolver) typeOf(expr ast.Expr) Type {
	if r.depth++; r.depth > maxResolveDepth {
		return Type{}
	}
	defer func() { r.depth-- }()

	switch e := expr.(type) {
	case *ast.ParenExpr:
		return r.typeOf(e.X)
	case *ast.StarExpr:
		t := r.typeOf(e.X)
		return r.deref(t)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return r.typeOf(e.X) // pointer-insensitive
		}
		return r.typeOf(e.X)
	case *ast.Ident:
		return r.identType(e)
	case *ast.SelectorExpr:
		return r.selectorType(e)
	case *ast.CallExpr:
		return r.callType(e)
	case *ast.CompositeLit:
		if e.Type != nil {
			return Type{Expr: e.Type, Pkg: r.pkg, File: r.file}
		}
	case *ast.IndexExpr:
		base := r.m.Underlying(r.typeOf(e.X))
		switch bt := base.Expr.(type) {
		case *ast.MapType:
			return Type{Expr: bt.Value, Pkg: base.Pkg, File: base.File}
		case *ast.ArrayType:
			return Type{Expr: bt.Elt, Pkg: base.Pkg, File: base.File}
		}
	case *ast.TypeAssertExpr:
		if e.Type != nil {
			return Type{Expr: e.Type, Pkg: r.pkg, File: r.file}
		}
	}
	return Type{}
}

// deref strips one pointer level from a type.
func (r *resolver) deref(t Type) Type {
	if st, ok := t.Expr.(*ast.StarExpr); ok {
		return Type{Expr: st.X, Pkg: t.Pkg, File: t.File}
	}
	return t
}

// identType resolves a plain identifier: receiver, parameter, local
// declaration, range variable, or package-level symbol.
func (r *resolver) identType(id *ast.Ident) Type {
	if r.fn != nil {
		// Receiver and parameters/results.
		for _, fl := range fieldLists(r.fn) {
			for _, fld := range fl {
				for _, n := range fld.Names {
					if n.Name == id.Name {
						return Type{Expr: fld.Type, Pkg: r.pkg, File: r.file}
					}
				}
			}
		}
		// Local declarations anywhere in the body. Go scoping would
		// demand dominance analysis; taking the first match is the
		// lightweight approximation.
		if t := r.localDecl(r.fn.Body, id.Name); !t.zero() {
			return t
		}
	}
	// Package-level symbol.
	idx := r.m.buildIndex()
	if v, ok := idx.vars[r.pkg.ImportPath+"."+id.Name]; ok {
		return r.varType(v)
	}
	return Type{}
}

func fieldLists(fn *ast.FuncDecl) [][]*ast.Field {
	var out [][]*ast.Field
	if fn.Recv != nil {
		out = append(out, fn.Recv.List)
	}
	if fn.Type.Params != nil {
		out = append(out, fn.Type.Params.List)
	}
	if fn.Type.Results != nil {
		out = append(out, fn.Type.Results.List)
	}
	return out
}

func (r *resolver) varType(v *varDecl) Type {
	if v.typ != nil {
		return Type{Expr: v.typ, Pkg: v.pkg, File: v.file}
	}
	if v.value != nil {
		sub := &resolver{m: r.m, pkg: v.pkg, file: v.file, depth: r.depth}
		return sub.typeOf(v.value)
	}
	return Type{}
}

// localDecl finds the type of a name declared inside a statement block.
func (r *resolver) localDecl(body *ast.BlockStmt, name string) Type {
	if body == nil {
		return Type{}
	}
	var found Type
	ast.Inspect(body, func(n ast.Node) bool {
		if !found.zero() {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range s.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || lid.Name != name {
					continue
				}
				if len(s.Rhs) == len(s.Lhs) {
					found = r.typeOf(s.Rhs[i])
				} else if len(s.Rhs) == 1 {
					found = r.resultType(s.Rhs[0], i)
				}
				return false
			}
		case *ast.ValueSpec:
			for i, n2 := range s.Names {
				if n2.Name != name {
					continue
				}
				if s.Type != nil {
					found = Type{Expr: s.Type, Pkg: r.pkg, File: r.file}
				} else if i < len(s.Values) {
					found = r.typeOf(s.Values[i])
				}
				return false
			}
		case *ast.RangeStmt:
			base := r.m.Underlying(r.typeOf(s.X))
			match := func(e ast.Expr, t ast.Expr) {
				if id, ok := e.(*ast.Ident); ok && id.Name == name && t != nil {
					found = Type{Expr: t, Pkg: base.Pkg, File: base.File}
				}
			}
			switch bt := base.Expr.(type) {
			case *ast.MapType:
				if s.Key != nil {
					match(s.Key, bt.Key)
				}
				if s.Value != nil {
					match(s.Value, bt.Value)
				}
			case *ast.ArrayType:
				if s.Value != nil {
					match(s.Value, bt.Elt)
				}
			}
		}
		return true
	})
	return found
}

// resultType resolves result i of a (possibly multi-valued) expression.
func (r *resolver) resultType(e ast.Expr, i int) Type {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		if i == 0 {
			return r.typeOf(e)
		}
		return Type{}
	}
	sig, declPkg, declFile := r.signatureOf(call)
	if sig == nil || sig.Results == nil {
		return Type{}
	}
	n := 0
	for _, fld := range sig.Results.List {
		c := len(fld.Names)
		if c == 0 {
			c = 1
		}
		if i < n+c {
			return Type{Expr: fld.Type, Pkg: declPkg, File: declFile}
		}
		n += c
	}
	return Type{}
}

// stdlibCtorResults maps stdlib constructor functions to the bare name of
// the type they return, in the same package. This is what lets
// `json.NewEncoder(w).Encode(...)` resolve to encoding/json.Encoder
// without go/types.
var stdlibCtorResults = map[string]string{
	"encoding/json.NewEncoder": "Encoder",
	"encoding/json.NewDecoder": "Decoder",
	"encoding/csv.NewWriter":   "Writer",
	"encoding/csv.NewReader":   "Reader",
	"bufio.NewWriter":          "Writer",
	"bufio.NewReader":          "Reader",
	"bufio.NewScanner":         "Scanner",
	"strings.NewReplacer":      "Replacer",
}

// callType resolves the type of a call's single result, handling the
// builtins the analyzers care about.
func (r *resolver) callType(call *ast.CallExpr) Type {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if base, ok := sel.X.(*ast.Ident); ok {
			if imp := importPathOf(r.file, base.Name); imp != "" {
				if tn, ok := stdlibCtorResults[imp+"."+sel.Sel.Name]; ok {
					// Synthesized selector reuses the call site's local
					// import name, so NamedKey round-trips to imp+"."+tn.
					return Type{
						Expr: &ast.SelectorExpr{X: ast.NewIdent(base.Name), Sel: ast.NewIdent(tn)},
						Pkg:  r.pkg, File: r.file,
					}
				}
			}
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "make":
			if len(call.Args) > 0 {
				return Type{Expr: call.Args[0], Pkg: r.pkg, File: r.file}
			}
		case "append":
			if len(call.Args) > 0 {
				return r.typeOf(call.Args[0])
			}
		case "new":
			if len(call.Args) > 0 {
				return Type{Expr: &ast.StarExpr{X: call.Args[0]}, Pkg: r.pkg, File: r.file}
			}
		case "len", "cap":
			return Type{}
		}
	}
	return r.resultType(call, 0)
}

// signatureOf resolves a call's target signature within the module.
// Stdlib calls resolve to nil (the analyzers use lookup tables for those).
func (r *resolver) signatureOf(call *ast.CallExpr) (*ast.FuncType, *Package, *File) {
	idx := r.m.buildIndex()
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fd, ok := idx.funcs[r.pkg.ImportPath+"."+fun.Name]; ok {
			return fd.decl.Type, fd.pkg, fd.file
		}
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok {
			if imp := importPathOf(r.file, base.Name); imp != "" {
				if fd, ok := idx.funcs[imp+"."+fun.Sel.Name]; ok {
					return fd.decl.Type, fd.pkg, fd.file
				}
				return nil, nil, nil // stdlib or external function
			}
		}
		// Method call: resolve the receiver's named type.
		recv := r.typeOf(fun.X)
		if key := r.m.NamedKey(recv); key != "" {
			if fd, ok := idx.methods[key+"."+fun.Sel.Name]; ok {
				return fd.decl.Type, fd.pkg, fd.file
			}
		}
	}
	return nil, nil, nil
}

// NamedKey returns "importPath.TypeName" for a named type ("time.Time",
// "repro/internal/engine.Engine"), or "" for unnamed/unresolved types.
func (m *Module) NamedKey(t Type) string {
	for {
		switch e := t.Expr.(type) {
		case *ast.StarExpr:
			t = Type{Expr: e.X, Pkg: t.Pkg, File: t.File}
		case *ast.ParenExpr:
			t = Type{Expr: e.X, Pkg: t.Pkg, File: t.File}
		case *ast.Ident:
			if t.Pkg == nil {
				return ""
			}
			return t.Pkg.ImportPath + "." + e.Name
		case *ast.SelectorExpr:
			base, ok := e.X.(*ast.Ident)
			if !ok || t.File == nil {
				return ""
			}
			if imp := importPathOf(t.File, base.Name); imp != "" {
				return imp + "." + e.Sel.Name
			}
			return ""
		default:
			return ""
		}
	}
}

// Underlying follows module-local named types to their declared type
// expression (one that is a map/struct/etc.), stripping pointers.
func (m *Module) Underlying(t Type) Type {
	idx := m.buildIndex()
	for i := 0; i < maxResolveDepth; i++ {
		switch e := t.Expr.(type) {
		case *ast.StarExpr:
			t = Type{Expr: e.X, Pkg: t.Pkg, File: t.File}
			continue
		case *ast.ParenExpr:
			t = Type{Expr: e.X, Pkg: t.Pkg, File: t.File}
			continue
		}
		key := m.NamedKey(t)
		if key == "" {
			return t
		}
		td, ok := idx.types[key]
		if !ok {
			return t
		}
		next := Type{Expr: td.spec.Type, Pkg: td.pkg, File: td.file}
		if m.NamedKey(next) == key {
			return t
		}
		t = next
	}
	return t
}

// IsMap reports whether the type resolves to a map.
func (m *Module) IsMap(t Type) bool {
	_, ok := m.Underlying(t).Expr.(*ast.MapType)
	return ok
}

// StructOf returns the struct type declaration behind a named key, if the
// key names a module struct.
func (m *Module) StructOf(key string) (*ast.StructType, *typeDecl) {
	td, ok := m.buildIndex().types[key]
	if !ok {
		return nil, nil
	}
	st, ok := td.spec.Type.(*ast.StructType)
	if !ok {
		return nil, nil
	}
	return st, td
}

// FieldType looks up a field's type on a module struct named by key.
func (m *Module) FieldType(key, field string) Type {
	st, td := m.StructOf(key)
	if st == nil {
		return Type{}
	}
	for _, fld := range st.Fields.List {
		for _, n := range fld.Names {
			if n.Name == field {
				return Type{Expr: fld.Type, Pkg: td.pkg, File: td.file}
			}
		}
	}
	return Type{}
}

// selectorType resolves x.f for field access (methods resolve via
// signatureOf when called).
func (r *resolver) selectorType(sel *ast.SelectorExpr) Type {
	if base, ok := sel.X.(*ast.Ident); ok {
		if imp := importPathOf(r.file, base.Name); imp != "" {
			idx := r.m.buildIndex()
			if v, ok := idx.vars[imp+"."+sel.Sel.Name]; ok {
				return r.varType(v)
			}
			return Type{}
		}
	}
	recv := r.typeOf(sel.X)
	key := r.m.NamedKey(recv)
	if key == "" {
		return Type{}
	}
	return r.m.FieldType(key, sel.Sel.Name)
}

// returnsError reports whether a signature's last result is `error`.
func returnsError(sig *ast.FuncType) bool {
	if sig == nil || sig.Results == nil || len(sig.Results.List) == 0 {
		return false
	}
	last := sig.Results.List[len(sig.Results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}

// resultCount returns the number of results in a signature.
func resultCount(sig *ast.FuncType) int {
	if sig == nil || sig.Results == nil {
		return 0
	}
	n := 0
	for _, fld := range sig.Results.List {
		c := len(fld.Names)
		if c == 0 {
			c = 1
		}
		n += c
	}
	return n
}
