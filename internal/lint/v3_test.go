package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// findingWith returns the first finding whose message contains all the
// fragments, failing the test when none does.
func findingWith(t *testing.T, fs []Finding, fragments ...string) Finding {
	t.Helper()
	for _, f := range fs {
		ok := true
		for _, frag := range fragments {
			if !strings.Contains(f.Message, frag) {
				ok = false
				break
			}
		}
		if ok {
			return f
		}
	}
	t.Fatalf("no finding containing %q in %v", fragments, fs)
	return Finding{}
}

func wantWitness(t *testing.T, f Finding, fragments ...string) {
	t.Helper()
	joined := strings.Join(f.Witness, "\n")
	for _, frag := range fragments {
		if !strings.Contains(joined, frag) {
			t.Errorf("witness of %q missing %q:\n%s", f.Message, frag, joined)
		}
	}
}

// TestEpochWitness pins the interprocedural witness shape: the write,
// the conditionally bumping callee that was tried, and the unbumped
// return.
func TestEpochWitness(t *testing.T) {
	m, err := LoadFixture(filepath.Join("testdata", "src", "epoch"))
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(m, All())
	f := findingWith(t, fs, "BadTriedBump writes config-bearing field")
	wantWitness(t, f,
		"BadTriedBump writes",
		"calls", "does not bump on every path",
		"returns with the write unbumped")
	if !strings.Contains(f.Message, "stale what-if sessions") {
		t.Errorf("message should explain the consequence: %s", f.Message)
	}
}

// TestDetTaintWitness pins the source -> assignment -> field -> sink
// chains for the three finding shapes.
func TestDetTaintWitness(t *testing.T) {
	m, err := LoadFixture(filepath.Join("testdata", "src", "dettaint"))
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(m, All())

	mapF := findingWith(t, fs, "map iteration order", "passed to report sink")
	wantWitness(t, mapF, "collected during map iteration", "passed to report sink")

	fieldF := findingWith(t, fs, "tainted field", "Report.wall")
	wantWitness(t, fieldF,
		"report sink",
		"time.Now called in",
		"assigned to",
		"read while rendering")

	closureF := findingWith(t, fs, "time.Now inside the call closure")
	wantWitness(t, closureF, "report sink", "calls", "read while rendering")
}

// TestShutdownPathWitness pins the transitive chain: spawn site, the
// call into the helper, and the blocking op inside it.
func TestShutdownPathWitness(t *testing.T) {
	m, err := LoadFixture(filepath.Join("testdata", "src", "shutdownpath"))
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(m, All())
	f := findingWith(t, fs, "ranges over channel jobs")
	wantWitness(t, f,
		"worker spawned (lifecycle=trigger)",
		"calls",
		"ranges over channel jobs")
}

// TestFixpointDeterminism re-runs the interprocedural analyzers from
// scratch many times, sequentially and in parallel, and requires the
// exact same findings in the exact same order every time.
func TestFixpointDeterminism(t *testing.T) {
	for _, fixture := range []string{"epoch", "dettaint", "shutdownpath", "lockorder"} {
		dir := filepath.Join("testdata", "src", fixture)
		var first []Finding
		for i := 0; i < 10; i++ {
			m, err := LoadFixture(dir)
			if err != nil {
				t.Fatal(err)
			}
			fs := Run(m, All())
			if i == 0 {
				first = fs
				if len(first) == 0 && fixture != "lockorder" {
					t.Fatalf("%s: fixture produced no findings", fixture)
				}
				continue
			}
			if !reflect.DeepEqual(fs, first) {
				t.Fatalf("%s: run %d differs:\n%v\nvs\n%v", fixture, i, fs, first)
			}
		}
		for _, par := range []int{2, 4} {
			m, err := LoadFixture(dir)
			if err != nil {
				t.Fatal(err)
			}
			fs := RunParallel(m, All(), par)
			if !reflect.DeepEqual(fs, first) {
				t.Fatalf("%s: RunParallel(%d) differs:\n%v\nvs\n%v", fixture, par, fs, first)
			}
		}
	}
}

// TestRepoParallelIdentical is the repo-scale determinism gate:
// RunParallel over the real module produces exactly Run's findings
// (both empty, per TestRepoIsClean, but compared structurally so a
// future regression in either path shows the difference).
func TestRepoParallelIdentical(t *testing.T) {
	root := repoRoot(t)
	m1, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	seq := Run(m1, All())
	m2, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	par := RunParallel(m2, All(), 0)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel run differs from sequential:\n%v\nvs\n%v", par, seq)
	}
	iters := m2.FixpointIters()
	for _, rule := range []string{"epoch", "dettaint", "shutdownpath", "effects"} {
		if iters[rule] < 1 {
			t.Errorf("fixpoint for %s reported %d iterations; want >= 1", rule, iters[rule])
		}
	}
}

// TestBareSinkDirective: a label-less conflint:sink is itself a finding.
func TestBareSinkDirective(t *testing.T) {
	dir := t.TempDir()
	src := `package sinkbare

// render is a sink with no label.
//
// conflint:sink
func render(lines []string) string { return lines[0] }
`
	if err := os.WriteFile(filepath.Join(dir, "sinkbare.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(m, []*Analyzer{DetTaint()})
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "conflint:sink needs a label") {
		t.Fatalf("want exactly the bare-sink finding, got %v", fs)
	}
}

// TestBaselineStrict pins the malformed-baseline contract: null, JSON
// objects, unknown rules, and missing rules are errors, never an empty
// suppression set.
func TestBaselineStrict(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	for name, content := range map[string]string{
		"null.json":    `null`,
		"empty.json":   ``,
		"object.json":  `{"rule": "lock"}`,
		"norule.json":  `[{"package": "p", "symbol": "s"}]`,
		"unknown.json": `[{"rule": "nosuch", "package": "p", "symbol": "s"}]`,
		"extra.json":   `[{"rule": "lock", "package": "p", "symbol": "s", "line": 3}]`,
	} {
		if _, err := ReadBaseline(write(name, content)); err == nil {
			t.Errorf("%s: want parse error, got nil", name)
		}
	}

	good := write("good.json", `[{"rule": "epoch", "package": "p", "symbol": "s"}]`)
	base, err := ReadBaseline(good)
	if err != nil {
		t.Fatal(err)
	}
	if !base[BaselineKey("epoch", "p", "s")] {
		t.Error("valid entry not in the suppression set")
	}

	emptyList := write("emptylist.json", "[]\n")
	base, err = ReadBaseline(emptyList)
	if err != nil || len(base) != 0 {
		t.Errorf("[] should parse to an empty set, got %v, %v", base, err)
	}
}

// TestWriteReadBaselineRoundtrip: entries survive the write/read cycle.
func TestWriteReadBaselineRoundtrip(t *testing.T) {
	fs := []Finding{
		{Rule: "epoch", Package: "repro/internal/engine", Symbol: "Engine.ApplyConfig"},
		{Rule: "epoch", Package: "repro/internal/engine", Symbol: "Engine.ApplyConfig"}, // dup
		{Rule: "dettaint", Package: "repro/internal/core", Symbol: "Histogram.Render"},
	}
	p := filepath.Join(t.TempDir(), "base.json")
	if err := WriteBaseline(p, fs); err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 {
		t.Fatalf("want 2 deduped entries, got %d", len(base))
	}
	for _, f := range fs {
		if !base[BaselineKey(f.Rule, f.Package, f.Symbol)] {
			t.Errorf("missing %s/%s/%s", f.Rule, f.Package, f.Symbol)
		}
	}
}

// TestRunTimed: the per-analyzer walls cover every analyzer and the
// timed run returns the same findings as Run.
func TestRunTimed(t *testing.T) {
	m, err := LoadFixture(filepath.Join("testdata", "src", "epoch"))
	if err != nil {
		t.Fatal(err)
	}
	fs, walls := RunTimed(m, All())
	if len(walls) != len(All()) {
		t.Errorf("want a wall per analyzer, got %d/%d", len(walls), len(All()))
	}
	m2, err := LoadFixture(filepath.Join("testdata", "src", "epoch"))
	if err != nil {
		t.Fatal(err)
	}
	if plain := Run(m2, All()); !reflect.DeepEqual(fs, plain) {
		t.Errorf("RunTimed findings differ from Run's")
	}
}
