// The module-wide call graph: the substrate for the interprocedural
// analyzers (lockorder, goleak, hotalloc). It is built from go/ast plus
// the lightweight resolver — no go/types — so edges exist only where the
// callee is statically resolvable inside the module: direct calls to
// package functions, cross-package calls through an import, and method
// calls whose receiver's named type the resolver can pin down. Dynamic
// calls (function values, interface methods) produce no edge; every
// analyzer built on the graph treats a missing edge conservatively.
//
// Nodes are keyed the same way as the resolver's symbol tables:
// "importPath.Func" for functions, "importPath.Type.Method" for methods.
// Node and edge order is deterministic (keys sorted, call sites in source
// order), so every downstream finding and witness path is stable.
package lint

import (
	"go/ast"
	"go/token"
	"sort"
)

// CallSite is one statically resolved call from one function to another
// module function.
type CallSite struct {
	Caller string
	Callee string
	// Pos is the call's position in the caller.
	Pos token.Pos
	// Go and Defer mark `go f()` and `defer f()` call sites.
	Go    bool
	Defer bool
}

// CGNode is one function in the call graph.
type CGNode struct {
	Key string
	Fn  *funcDecl
	// Out lists resolved outgoing calls in source order.
	Out []*CallSite
}

// CallGraph is the module-wide graph.
type CallGraph struct {
	nodes map[string]*CGNode
	keys  []string
	edges int
}

// Node returns the graph node for a function key, or nil.
func (g *CallGraph) Node(key string) *CGNode { return g.nodes[key] }

// Keys returns every node key in sorted order.
func (g *CallGraph) Keys() []string { return g.keys }

// Stats returns the node and edge counts.
func (g *CallGraph) Stats() (nodes, edges int) { return len(g.keys), g.edges }

// Graph builds (once) and returns the module's call graph.
func (m *Module) Graph() *CallGraph {
	if m.graph != nil {
		return m.graph
	}
	g := &CallGraph{nodes: make(map[string]*CGNode)}
	idx := m.buildIndex()
	// Every declared function is a node, even if no call resolves to it.
	for key, fd := range idx.funcs {
		g.nodes[key] = &CGNode{Key: key, Fn: fd}
	}
	for key, fd := range idx.methods {
		g.nodes[key] = &CGNode{Key: key, Fn: fd}
	}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, fn := range fileFuncs(f) {
				key := funcKey(p, fn)
				node := g.nodes[key]
				if node == nil || fn.Body == nil {
					continue
				}
				node.Out = m.resolveCalls(p, f, fn, key)
				g.edges += len(node.Out)
			}
		}
	}
	for key := range g.nodes {
		g.keys = append(g.keys, key)
	}
	sort.Strings(g.keys)
	m.graph = g
	return g
}

// funcKey returns the graph/index key of a declared function.
func funcKey(p *Package, fn *ast.FuncDecl) string {
	if fn.Recv != nil && len(fn.Recv.List) > 0 {
		if rn := baseTypeName(fn.Recv.List[0].Type); rn != "" {
			return p.ImportPath + "." + rn + "." + fn.Name.Name
		}
	}
	return p.ImportPath + "." + fn.Name.Name
}

// resolveCalls finds every statically resolvable call in a function body,
// including calls inside function literals (attributed to the enclosing
// declaration: the literal runs with the declaration's lock and lifecycle
// context unless spawned, and spawned literals are additionally analyzed
// at their go sites).
func (m *Module) resolveCalls(p *Package, f *File, fn *ast.FuncDecl, key string) []*CallSite {
	// Mark calls that are the operand of go/defer statements.
	goCalls := make(map[*ast.CallExpr]bool)
	deferCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			goCalls[s.Call] = true
		case *ast.DeferStmt:
			deferCalls[s.Call] = true
		}
		return true
	})
	var out []*CallSite
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := m.calleeKey(p, f, fn, call)
		if callee == "" {
			return true
		}
		out = append(out, &CallSite{
			Caller: key, Callee: callee, Pos: call.Pos(),
			Go: goCalls[call], Defer: deferCalls[call],
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// calleeKey resolves a call expression to a module function key, or ""
// for dynamic, stdlib and otherwise unresolvable targets.
func (m *Module) calleeKey(p *Package, f *File, fn *ast.FuncDecl, call *ast.CallExpr) string {
	idx := m.buildIndex()
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		key := p.ImportPath + "." + fun.Name
		if _, ok := idx.funcs[key]; ok {
			return key
		}
	case *ast.SelectorExpr:
		if base, ok := fun.X.(*ast.Ident); ok {
			if imp := importPathOf(f, base.Name); imp != "" {
				key := imp + "." + fun.Sel.Name
				if _, ok := idx.funcs[key]; ok {
					return key
				}
				return "" // stdlib or external function
			}
		}
		r := &resolver{m: m, pkg: p, file: f, fn: fn}
		recv := r.typeOf(fun.X)
		if key := m.NamedKey(recv); key != "" {
			mkey := key + "." + fun.Sel.Name
			if _, ok := idx.methods[mkey]; ok {
				return mkey
			}
		}
	}
	return ""
}

// shortKey trims the module path off a symbol key for human-readable
// findings ("repro/internal/engine.Engine.mu" → "internal/engine.Engine.mu").
func (m *Module) shortKey(key string) string {
	if m.Path != "" && len(key) > len(m.Path)+1 && key[:len(m.Path)+1] == m.Path+"/" {
		return key[len(m.Path)+1:]
	}
	return key
}
