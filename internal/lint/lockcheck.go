// The lock-discipline analyzer guards PR 1's concurrency contract: the
// engine's read path shares mu.RLock while configuration changes take the
// writer side. The invariant is declared in the source with a
// machine-readable field annotation (the same shape as gVisor's
// checklocks):
//
//	type Engine struct {
//		mu sync.RWMutex
//		current conf.Configuration // conflint:guardedby mu
//	}
//
// Rules enforced:
//
//  1. a struct with a sync.Mutex/RWMutex field must annotate which fields
//     that mutex guards (an unguarded mutex is either dead weight or an
//     undocumented invariant — both findings);
//  2. an exported method that touches a guarded field must acquire the
//     guarding mutex in its body — the writer side (Lock) for writes, at
//     least the reader side (RLock) for reads. Unexported methods are
//     exempt by convention: they document "caller holds mu";
//  3. every Lock/RLock acquisition must be released in the same function,
//     by defer or by a plain call — a lock that escapes a function is a
//     deadlock waiting for an early return.
//
// The analysis is per-function and flow-insensitive: it checks that the
// right acquisitions exist somewhere in the method body, not that they
// dominate every access. That catches the realistic failure (a new
// exported method that forgets locking entirely, or takes RLock and then
// writes) without a dataflow engine.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

const guardedByDirective = "conflint:guardedby"

// LockCheck returns the lock-discipline analyzer.
func LockCheck() *Analyzer {
	return &Analyzer{
		Name:  "lock",
		Doc:   "guarded fields (conflint:guardedby) must be accessed under their mutex in exported methods; every Lock has a same-function release",
		Check: checkLocks,
	}
}

// mutexField is one sync.Mutex / sync.RWMutex struct field.
type mutexField struct {
	name   string
	rw     bool // sync.RWMutex
	fldPos token.Pos
}

// guardedStruct is one annotated (or annotation-missing) struct.
type guardedStruct struct {
	name    string
	mutexes []mutexField
	// guards maps field name -> guarding mutex field name.
	guards map[string]string
	pos    token.Pos
	file   *File
}

func checkLocks(p *Package) []Finding {
	m := p.Mod
	fset := m.Fset
	var out []Finding

	structs := make(map[string]*guardedStruct) // by bare type name
	for _, f := range p.Files {
		for _, d := range f.AST.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				gs := scanStruct(f, ts.Name.Name, st)
				if gs != nil {
					structs[gs.name] = gs
				}
			}
		}
	}

	// Rule 1: a mutex-bearing struct with other fields must say what the
	// mutex guards.
	for _, gs := range structs {
		if len(gs.guards) == 0 && structHasPlainFields(gs) {
			pos := fset.Position(gs.pos)
			out = append(out, Finding{
				Rule: "lock", File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("struct %s has a mutex but no conflint:guardedby annotations: the lock protocol is not machine-checkable", gs.name),
				Hint:    "tag each guarded field with `// conflint:guardedby <mutexField>`",
			})
		}
		for field, mu := range gs.guards {
			if !hasMutex(gs, mu) {
				pos := fset.Position(gs.pos)
				out = append(out, Finding{
					Rule: "lock", File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: fmt.Sprintf("field %s.%s is guardedby %q, but the struct has no such mutex field", gs.name, field, mu),
				})
			}
		}
	}

	// Rules 2 and 3 over every function.
	for _, f := range p.Files {
		for _, fn := range fileFuncs(f) {
			out = append(out, checkLockPairing(fset, f, fn)...)
			gs := receiverStruct(structs, fn)
			if gs == nil || !fn.Name.IsExported() {
				continue
			}
			out = append(out, checkGuardedAccess(fset, f, fn, gs)...)
		}
	}
	return out
}

// scanStruct collects mutex fields and guardedby annotations; returns nil
// when the struct has no mutex fields.
func scanStruct(f *File, name string, st *ast.StructType) *guardedStruct {
	gs := &guardedStruct{name: name, guards: make(map[string]string), pos: st.Pos(), file: f}
	for _, fld := range st.Fields.List {
		if rw, ok := mutexType(f, fld.Type); ok {
			for _, n := range fld.Names {
				gs.mutexes = append(gs.mutexes, mutexField{name: n.Name, rw: rw, fldPos: n.Pos()})
			}
			continue
		}
		mu := guardAnnotation(fld)
		if mu == "" {
			continue
		}
		for _, n := range fld.Names {
			gs.guards[n.Name] = mu
		}
	}
	if len(gs.mutexes) == 0 {
		return nil
	}
	return gs
}

// mutexType recognizes sync.Mutex and sync.RWMutex (optionally pointer).
func mutexType(f *File, t ast.Expr) (rw, ok bool) {
	if st, isPtr := t.(*ast.StarExpr); isPtr {
		t = st.X
	}
	sel, isSel := t.(*ast.SelectorExpr)
	if !isSel {
		return false, false
	}
	base, isIdent := sel.X.(*ast.Ident)
	if !isIdent || importPathOf(f, base.Name) != "sync" {
		return false, false
	}
	switch sel.Sel.Name {
	case "Mutex":
		return false, true
	case "RWMutex":
		return true, true
	}
	return false, false
}

// guardAnnotation extracts `conflint:guardedby <mu>` from a field's doc
// or trailing comment.
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, guardedByDirective); ok {
				return strings.TrimSpace(strings.SplitN(strings.TrimSpace(rest), " ", 2)[0])
			}
		}
	}
	return ""
}

func hasMutex(gs *guardedStruct, name string) bool {
	for _, mu := range gs.mutexes {
		if mu.name == name {
			return true
		}
	}
	return false
}

// structHasPlainFields reports whether the struct has any non-mutex,
// non-annotated field — the case where missing annotations matter.
func structHasPlainFields(gs *guardedStruct) bool {
	st, ok := gs.file.astStruct(gs.pos)
	if !ok {
		return false
	}
	n := 0
	for _, fld := range st.Fields.List {
		n += len(fld.Names)
	}
	return n > len(gs.mutexes)
}

// astStruct finds the struct type node at a position (helper for
// structHasPlainFields).
func (f *File) astStruct(pos token.Pos) (*ast.StructType, bool) {
	var found *ast.StructType
	ast.Inspect(f.AST, func(n ast.Node) bool {
		if st, ok := n.(*ast.StructType); ok && st.Pos() == pos {
			found = st
			return false
		}
		return true
	})
	return found, found != nil
}

// receiverStruct maps a method to its receiver's guarded struct.
func receiverStruct(structs map[string]*guardedStruct, fn *ast.FuncDecl) *guardedStruct {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	return structs[baseTypeName(fn.Recv.List[0].Type)]
}

// lockOps describes the acquisitions and releases present in a function,
// keyed by the rendered mutex expression ("e.mu", "em").
type lockOps struct {
	lock, rlock, unlock, runlock map[string]token.Pos
}

func scanLockOps(fset *token.FileSet, body *ast.BlockStmt) lockOps {
	ops := lockOps{
		lock: map[string]token.Pos{}, rlock: map[string]token.Pos{},
		unlock: map[string]token.Pos{}, runlock: map[string]token.Pos{},
	}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		target := exprString(fset, sel.X)
		switch sel.Sel.Name {
		case "Lock":
			ops.lock[target] = call.Pos()
		case "RLock":
			ops.rlock[target] = call.Pos()
		case "Unlock":
			ops.unlock[target] = call.Pos()
		case "RUnlock":
			ops.runlock[target] = call.Pos()
		}
		return true
	})
	return ops
}

// checkLockPairing enforces rule 3: every acquisition has a same-function
// release of the matching flavor.
func checkLockPairing(fset *token.FileSet, f *File, fn *ast.FuncDecl) []Finding {
	ops := scanLockOps(fset, fn.Body)
	var out []Finding
	for target, at := range ops.lock {
		if _, ok := ops.unlock[target]; !ok {
			pos := fset.Position(at)
			out = append(out, Finding{
				Rule: "lock", File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("%s.Lock() without %s.Unlock() in %s: the lock escapes the function", target, target, fn.Name.Name),
				Hint:    fmt.Sprintf("add `defer %s.Unlock()` right after the acquisition", target),
			})
		}
	}
	for target, at := range ops.rlock {
		if _, ok := ops.runlock[target]; !ok {
			pos := fset.Position(at)
			out = append(out, Finding{
				Rule: "lock", File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("%s.RLock() without %s.RUnlock() in %s: the read lock escapes the function", target, target, fn.Name.Name),
				Hint:    fmt.Sprintf("add `defer %s.RUnlock()` right after the acquisition", target),
			})
		}
	}
	return out
}

// fieldAccess is one use of a guarded field inside a method body.
type fieldAccess struct {
	field string
	write bool
	pos   token.Pos
}

// checkGuardedAccess enforces rule 2 on one exported method.
func checkGuardedAccess(fset *token.FileSet, f *File, fn *ast.FuncDecl, gs *guardedStruct) []Finding {
	recvName := ""
	if names := fn.Recv.List[0].Names; len(names) > 0 {
		recvName = names[0].Name
	}
	if recvName == "" || recvName == "_" {
		return nil
	}
	accesses := guardedAccesses(f, fn, recvName, gs)
	if len(accesses) == 0 {
		return nil
	}
	ops := scanLockOps(fset, fn.Body)
	var out []Finding
	for _, acc := range accesses {
		mu := gs.guards[acc.field]
		target := recvName + "." + mu
		_, hasL := ops.lock[target]
		_, hasRL := ops.rlock[target]
		pos := fset.Position(acc.pos)
		switch {
		case acc.write && !hasL:
			msg := fmt.Sprintf("exported method %s writes guarded field %s.%s without holding %s.Lock()", fn.Name.Name, recvName, acc.field, target)
			if hasRL {
				msg = fmt.Sprintf("exported method %s writes guarded field %s.%s under %s.RLock(): writers need the exclusive side", fn.Name.Name, recvName, acc.field, target)
			}
			out = append(out, Finding{
				Rule: "lock", File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: msg,
				Hint:    fmt.Sprintf("acquire %s.Lock() (with defer %s.Unlock()) before the write", target, target),
			})
		case !acc.write && !hasL && !hasRL:
			out = append(out, Finding{
				Rule: "lock", File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("exported method %s reads guarded field %s.%s without holding %s", fn.Name.Name, recvName, acc.field, target),
				Hint:    fmt.Sprintf("acquire %s.RLock() (with defer %s.RUnlock()) before the read", target, target),
			})
		}
	}
	return out
}

// guardedAccesses finds recv.field uses of guarded fields, classifying
// writes: assignment LHS (including recv.f[k] = v), ++/--, and &recv.f
// aliasing.
func guardedAccesses(f *File, fn *ast.FuncDecl, recvName string, gs *guardedStruct) []fieldAccess {
	var out []fieldAccess
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || base.Name != recvName {
			return true
		}
		if _, guarded := gs.guards[sel.Sel.Name]; !guarded {
			return true
		}
		out = append(out, fieldAccess{field: sel.Sel.Name, write: isWriteContext(f, sel), pos: sel.Pos()})
		return true
	})
	return out
}

// isWriteContext reports whether a selector is written: direct assignment
// target, indexed assignment target, inc/dec, or address-taken.
func isWriteContext(f *File, sel *ast.SelectorExpr) bool {
	var node ast.Node = sel
	for {
		par := f.Parent(node)
		switch p := par.(type) {
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == node {
					return true
				}
			}
			return false
		case *ast.IndexExpr:
			if p.X != node {
				return false
			}
			node = p // recv.f[k]: a write iff the index expr is assigned
		case *ast.IncDecStmt:
			return true
		case *ast.UnaryExpr:
			return p.Op == token.AND
		default:
			return false
		}
	}
}
