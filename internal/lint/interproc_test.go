package lint

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestLockOrderWitness pins the shape of a lockorder finding on the
// seeded two-mutex inversion: one cycle, anchored at the first edge's
// acquisition, with a witness path that walks both edges — including the
// leg that is only visible through a call edge.
func TestLockOrderWitness(t *testing.T) {
	m, err := LoadFixture(filepath.Join("testdata", "src", "lockorder"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, []*Analyzer{LockOrder()})
	if len(findings) != 1 {
		t.Fatalf("want exactly one lockorder finding, got %d: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Rule != "lockorder" || f.Line != 16 {
		t.Errorf("want [lockorder] anchored at AB's s.a.Lock() (line 16), got %s", f)
	}
	if !strings.Contains(f.Message, "fixture.S.a -> fixture.S.b -> fixture.S.a") {
		t.Errorf("cycle message wrong: %s", f.Message)
	}
	witness := strings.Join(f.Witness, "\n")
	for _, want := range []string{
		"edge fixture.S.a -> fixture.S.b:",
		"edge fixture.S.b -> fixture.S.a:",
		"fixture.S.AB acquires fixture.S.a",
		"fixture.S.BA calls fixture.S.grab",
		"fixture.S.grab acquires fixture.S.a",
	} {
		if !strings.Contains(witness, want) {
			t.Errorf("witness missing %q:\n%s", want, witness)
		}
	}

	// The witness must survive both renderers.
	text := RenderText(m, findings, false)
	if !strings.Contains(text, "edge fixture.S.a -> fixture.S.b:") {
		t.Errorf("text rendering drops the witness:\n%s", text)
	}
	j, err := RenderJSON(m, findings)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j, `"witness"`) || !strings.Contains(j, "fixture.S.grab") {
		t.Errorf("JSON rendering drops the witness:\n%s", j)
	}
}

// TestBareWorkerDirective mirrors TestBareIgnoreDirective: a reason-less
// conflint:worker is a finding and suppresses nothing, so the leak under
// it is reported too. (A want comment cannot share the directive's line
// without becoming its reason, hence the pinned line numbers.)
func TestBareWorkerDirective(t *testing.T) {
	m, err := LoadFixture(filepath.Join("testdata", "src", "goleakbare"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, All())
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (bare directive + unsuppressed leak), got %d: %v", len(findings), findings)
	}
	if findings[0].Rule != "goleak" || findings[0].Line != 10 ||
		!strings.Contains(findings[0].Message, "needs a reason") {
		t.Errorf("want bare-directive finding at line 10, got %s", findings[0])
	}
	if findings[1].Rule != "goleak" || findings[1].Line != 11 ||
		!strings.Contains(findings[1].Message, "may leak") {
		t.Errorf("want leak finding at line 11, got %s", findings[1])
	}
}

// TestFindingOrdering is the determinism golden: on the hotalloc fixture
// the findings come out in exactly (file, line, col, rule) order, with
// package and symbol attribution filled in.
func TestFindingOrdering(t *testing.T) {
	m, err := LoadFixture(filepath.Join("testdata", "src", "hotalloc"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, All())
	wantLines := []int{16, 17, 18, 19, 31}
	if len(findings) != len(wantLines) {
		t.Fatalf("want %d findings, got %d: %v", len(wantLines), len(findings), findings)
	}
	for i, f := range findings {
		if f.Line != wantLines[i] {
			t.Errorf("finding %d: want line %d, got %s", i, wantLines[i], f)
		}
		if f.Rule != "hotalloc" || f.Package == "" || f.Symbol == "" {
			t.Errorf("finding %d: want hotalloc with package+symbol attribution, got %+v", i, f)
		}
	}
	if findings[4].Symbol != "helper" {
		t.Errorf("want symbol attribution \"helper\" on the callee finding, got %q", findings[4].Symbol)
	}
	sorted := sort.SliceIsSorted(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	if !sorted {
		t.Errorf("findings are not in (file, line, col, rule) order: %v", findings)
	}
}

// TestCallGraphDeterminism builds the module graph twice and requires
// identical node and edge sequences: every downstream witness depends on
// this ordering.
func TestCallGraphDeterminism(t *testing.T) {
	build := func() ([]string, int) {
		m, err := LoadFixture(filepath.Join("testdata", "src", "lockorder"))
		if err != nil {
			t.Fatal(err)
		}
		g := m.Graph()
		_, edges := g.Stats()
		return g.Keys(), edges
	}
	k1, e1 := build()
	k2, e2 := build()
	if strings.Join(k1, ",") != strings.Join(k2, ",") || e1 != e2 {
		t.Errorf("call graph not deterministic: %v/%d vs %v/%d", k1, e1, k2, e2)
	}
	if len(k1) == 0 || e1 == 0 {
		t.Errorf("lockorder fixture graph unexpectedly empty: %d nodes, %d edges", len(k1), e1)
	}
}

// FuzzResolve feeds arbitrary Go sources through the full analyzer
// stack — parse, resolve, call graph, all seven rules. The resolver and
// graph walk must never panic on any input; unparsable input is simply
// skipped. The corpus is seeded from the module's own files.
func FuzzResolve(f *testing.F) {
	root := repoRoot(f)
	seeded := 0
	for _, dir := range []string{"internal/core", "internal/conf", filepath.Join("internal", "lint", "testdata", "src", "lockorder")} {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") || seeded >= 8 {
				continue
			}
			data, err := os.ReadFile(filepath.Join(root, dir, e.Name()))
			if err != nil {
				continue
			}
			f.Add(string(data))
			seeded++
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "fuzz.go"), []byte(src), 0o644); err != nil {
			t.Skip()
		}
		m, err := LoadFixture(dir)
		if err != nil {
			t.Skip() // parse errors are expected; panics are the bug
		}
		Run(m, All())
	})
}
