// The atomic-discipline analyzer guards the Metrics counters' lock-free
// contract (PR 2): a field that is ever accessed atomically must be
// accessed atomically everywhere, and raw 64-bit fields driven through
// sync/atomic functions must be alignment-safe on 32-bit platforms.
//
// Two field families are tracked per package:
//
//   - typed atomics (atomic.Int64 and friends): every use must go through
//     a method call (Load/Store/Add/...); a bare read of the field value
//     is a data race that the race detector only catches when a test
//     happens to collide on it.
//   - raw atomics: plain int64/uint64 fields passed by address to
//     atomic.AddInt64-style functions. Any other read or write of such a
//     field is flagged, and the field's offset must be 8-byte aligned
//     under 32-bit layout rules (the documented sync/atomic requirement;
//     typed atomics embed align64 and are immune).
package lint

import (
	"fmt"
	"go/ast"
)

var atomicMethodNames = map[string]bool{
	"Load": true, "Store": true, "Add": true, "Swap": true,
	"CompareAndSwap": true, "Or": true, "And": true,
}

// atomicTypedNames are the sync/atomic value types.
var atomicTypedNames = map[string]bool{
	"Int32": true, "Int64": true, "Uint32": true, "Uint64": true,
	"Uintptr": true, "Bool": true, "Value": true, "Pointer": true,
}

// atomicFuncWidth maps sync/atomic function names to the bit width of the
// word they operate on (0 = not an atomic accessor).
func atomicFuncWidth(name string) int {
	switch name {
	case "AddInt64", "LoadInt64", "StoreInt64", "SwapInt64", "CompareAndSwapInt64",
		"AddUint64", "LoadUint64", "StoreUint64", "SwapUint64", "CompareAndSwapUint64":
		return 64
	case "AddInt32", "LoadInt32", "StoreInt32", "SwapInt32", "CompareAndSwapInt32",
		"AddUint32", "LoadUint32", "StoreUint32", "SwapUint32", "CompareAndSwapUint32",
		"AddUintptr", "LoadUintptr", "StoreUintptr", "SwapUintptr", "CompareAndSwapUintptr":
		return 32
	}
	return 0
}

// AtomicCheck returns the atomic-discipline analyzer.
func AtomicCheck() *Analyzer {
	return &Analyzer{
		Name:  "atomic",
		Doc:   "fields accessed via sync/atomic must never be accessed plainly, and raw 64-bit atomics must be alignment-safe",
		Check: checkAtomics,
	}
}

// fieldKey identifies a struct field across a package.
type fieldKey struct {
	typ   string // NamedKey of the struct
	field string
}

// atomicSets are the module-wide tracked fields, computed once: typed
// atomic fields by declaring struct, raw atomically-accessed fields with
// their bit width, and the sanctioned &x.f nodes inside atomic calls.
type atomicSets struct {
	typed      map[fieldKey]bool
	raw        map[fieldKey]int
	sanctioned map[ast.Node]bool
}

func atomicSetsOf(m *Module) *atomicSets {
	if m.atomics != nil {
		return m.atomics
	}
	s := &atomicSets{
		typed:      make(map[fieldKey]bool),
		raw:        make(map[fieldKey]int),
		sanctioned: make(map[ast.Node]bool),
	}
	for _, p := range m.Pkgs {
		// Typed atomic fields declared on this package's structs.
		for _, f := range p.Files {
			for _, d := range f.AST.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					key := p.ImportPath + "." + ts.Name.Name
					for _, fld := range st.Fields.List {
						if !isAtomicTyped(f, fld.Type) {
							continue
						}
						for _, n := range fld.Names {
							s.typed[fieldKey{key, n.Name}] = true
						}
					}
				}
			}
		}
		// Raw fields accessed through sync/atomic functions.
		for _, f := range p.Files {
			for _, fn := range fileFuncs(f) {
				fn := fn
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					base, ok := sel.X.(*ast.Ident)
					if !ok || importPathOf(f, base.Name) != "sync/atomic" {
						return true
					}
					width := atomicFuncWidth(sel.Sel.Name)
					if width == 0 || len(call.Args) == 0 {
						return true
					}
					addr, ok := call.Args[0].(*ast.UnaryExpr)
					if !ok {
						return true
					}
					fieldSel, ok := addr.X.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					recv := m.TypeOf(p, f, fn, fieldSel.X)
					if key := m.NamedKey(recv); key != "" {
						s.raw[fieldKey{key, fieldSel.Sel.Name}] = width
						s.sanctioned[fieldSel] = true
					}
					return true
				})
			}
		}
	}
	m.atomics = s
	return s
}

func checkAtomics(p *Package) []Finding {
	m := p.Mod
	fset := m.Fset
	var out []Finding

	sets := atomicSetsOf(m)
	typed, raw, sanctioned := sets.typed, sets.raw, sets.sanctioned

	// Pass 2: every selector use of a tracked field must be atomic.
	for _, f := range p.Files {
		for _, fn := range fileFuncs(f) {
			fn := fn
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				recv := m.TypeOf(p, f, fn, sel.X)
				key := m.NamedKey(recv)
				if key == "" {
					return true
				}
				fk := fieldKey{key, sel.Sel.Name}
				if typed[fk] {
					// Allowed only as the receiver of an atomic method:
					// parent must be a SelectorExpr naming one.
					if par, ok := f.Parent(sel).(*ast.SelectorExpr); ok && atomicMethodNames[par.Sel.Name] {
						return true
					}
					pos := fset.Position(sel.Pos())
					out = append(out, Finding{
						Rule: "atomic", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("atomic field %s.%s used without an atomic method: this is a data race with its lock-free writers", shortKey(key), sel.Sel.Name),
						Hint:    fmt.Sprintf("use %s.Load() / .Store() / .Add()", exprString(fset, sel)),
					})
					return true
				}
				if _, ok := raw[fk]; ok && !sanctioned[sel] {
					pos := fset.Position(sel.Pos())
					out = append(out, Finding{
						Rule: "atomic", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("field %s.%s is accessed via sync/atomic elsewhere but plainly here: mixed access is a data race", shortKey(key), sel.Sel.Name),
						Hint:    "route every access through the same sync/atomic calls (or switch the field to atomic.Int64)",
					})
				}
				return true
			})
		}
	}

	// Pass 3: alignment of raw 64-bit atomic fields under 32-bit layout,
	// reported once, against the declaring package.
	for fk, width := range raw {
		if width != 64 {
			continue
		}
		st, td := m.StructOf(fk.typ)
		if st == nil || td.pkg != p {
			continue
		}
		off, known := fieldOffset32(m, td.file, st, fk.field)
		if known && off%8 != 0 {
			pos := fset.Position(st.Pos())
			for _, fld := range st.Fields.List {
				for _, n := range fld.Names {
					if n.Name == fk.field {
						pos = fset.Position(n.Pos())
					}
				}
			}
			out = append(out, Finding{
				Rule: "atomic", File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("64-bit atomic field %s.%s sits at 32-bit offset %d: sync/atomic requires 8-byte alignment on 32-bit platforms", shortKey(fk.typ), fk.field, off),
				Hint:    "move the field to the front of the struct, pad to 8 bytes, or use atomic.Int64 (which embeds align64)",
			})
		}
	}
	return out
}

// isAtomicTyped reports whether a field type is one of sync/atomic's
// value types.
func isAtomicTyped(f *File, t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	return ok && importPathOf(f, base.Name) == "sync/atomic" && atomicTypedNames[sel.Sel.Name]
}

// fileFuncs returns the file's function declarations with bodies.
func fileFuncs(f *File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.AST.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			out = append(out, fn)
		}
	}
	return out
}

func shortKey(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			return key[i+1:]
		}
	}
	return key
}

// size32 returns (size, alignment) of a type under 32-bit layout rules,
// or ok=false when the type cannot be sized syntactically.
func size32(m *Module, f *File, t ast.Expr) (size, align int, ok bool) {
	switch e := t.(type) {
	case *ast.Ident:
		switch e.Name {
		case "bool", "int8", "uint8", "byte":
			return 1, 1, true
		case "int16", "uint16":
			return 2, 2, true
		case "int32", "uint32", "int", "uint", "uintptr", "float32", "rune":
			return 4, 4, true
		case "int64", "uint64", "float64":
			// 8 bytes but only 4-byte aligned on 32-bit: the trap this
			// analyzer exists to catch.
			return 8, 4, true
		case "string":
			return 8, 4, true
		case "complex64":
			return 8, 4, true
		}
		return 0, 0, false
	case *ast.StarExpr, *ast.MapType, *ast.ChanType, *ast.FuncType:
		return 4, 4, true
	case *ast.ArrayType:
		if e.Len == nil { // slice header
			return 12, 4, true
		}
		return 0, 0, false
	case *ast.InterfaceType:
		return 8, 4, true
	case *ast.SelectorExpr:
		if base, ok2 := e.X.(*ast.Ident); ok2 && importPathOf(f, base.Name) == "sync/atomic" {
			switch e.Sel.Name {
			case "Int64", "Uint64":
				return 8, 8, true // align64 padding makes these 8-aligned
			case "Int32", "Uint32", "Bool":
				return 4, 4, true
			}
		}
		return 0, 0, false
	}
	return 0, 0, false
}

// fieldOffset32 computes a field's byte offset in a struct under 32-bit
// layout. Unknown field types make the whole struct unsizeable (no
// finding rather than a wrong one).
func fieldOffset32(m *Module, f *File, st *ast.StructType, field string) (int, bool) {
	off := 0
	for _, fld := range st.Fields.List {
		sz, al, ok := size32(m, f, fld.Type)
		if !ok {
			return 0, false
		}
		names := len(fld.Names)
		if names == 0 {
			names = 1
		}
		for i := 0; i < names; i++ {
			if al > 0 && off%al != 0 {
				off += al - off%al
			}
			if i < len(fld.Names) && fld.Names[i].Name == field {
				return off, true
			}
			off += sz
		}
	}
	return 0, false
}
