// The parallel lint runner: RunParallel produces byte-identical output
// to Run by construction — per-package work fans out over core.Runner
// into an indexed result slice, the module-wide interprocedural passes
// are warmed first (their fixpoints are deterministic regardless of who
// runs them), and the final merge is the same package-order append plus
// position sort as the sequential path.
package lint

import (
	"sort"

	"repro/internal/core"
)

// interprocRules are the rules whose Check is a filtered view of one
// module-wide pass: RunParallel warms these first, one goroutine per
// rule, so the per-package fan-out only ever hits warm caches.
var interprocRules = map[string]bool{
	"lockorder":    true,
	"hotalloc":     true,
	"epoch":        true,
	"dettaint":     true,
	"shutdownpath": true,
	"pure":         true,
	"readpath":     true,
}

// Prewarm builds every lazily shared structure the analyzers read
// concurrently: the resolution index, the call graph and its reverse
// edges, the atomic and epoch field sets. After Prewarm, those caches
// are read-only.
func (m *Module) Prewarm() {
	m.buildIndex()
	m.Graph()
	m.Callers()
	atomicSetsOf(m)
	epochSetsOf(m)
}

// RunParallel is Run with the per-package analyzer checks fanned out
// across a bounded worker pool. parallelism <= 0 means GOMAXPROCS;
// parallelism == 1 is exactly the sequential path. Findings are
// byte-identical to Run's at any parallelism.
func RunParallel(m *Module, analyzers []*Analyzer, parallelism int) []Finding {
	if parallelism == 1 {
		return Run(m, analyzers)
	}
	m.Prewarm()
	runner := core.Runner{Parallelism: parallelism}

	// Phase 1: warm the module-wide passes concurrently. Each rule runs
	// exactly once (interprocFindings caches under interMu); passing a
	// throwaway first package makes the pass run without keeping its
	// per-package filtering.
	var interproc []*Analyzer
	for _, a := range analyzers {
		if interprocRules[a.Name] {
			interproc = append(interproc, a)
		}
	}
	if len(interproc) > 0 && len(m.Pkgs) > 0 {
		_ = runner.Each(len(interproc), func(i int) error { // conflint:ignore the warm fn never returns an error
			interproc[i].Check(m.Pkgs[0])
			return nil
		})
	}

	// Phase 2: per-package fan-out into an indexed slice — package i's
	// findings land in slot i, so the merge order equals Run's loop.
	perPkg := make([][]Finding, len(m.Pkgs))
	_ = runner.Each(len(m.Pkgs), func(i int) error { // conflint:ignore analyzer checks never return an error

		p := m.Pkgs[i]
		for _, a := range analyzers {
			perPkg[i] = append(perPkg[i], a.Check(p)...)
		}
		return nil
	})
	var raw []Finding
	for _, fs := range perPkg {
		raw = append(raw, fs...)
	}
	return finishRun(m, raw, analyzers)
}

// coversAllRules reports whether the selected analyzers include every
// registered rule. Stale-ignore detection only runs then: under a rule
// subset, a directive written for an unselected rule would look unused.
func coversAllRules(analyzers []*Analyzer) bool {
	names := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		names[a.Name] = true
	}
	for _, a := range All() {
		if !names[a.Name] {
			return false
		}
	}
	return true
}

// finishRun applies ignore directives, reports bare and stale
// directives, fills structural attribution, and sorts — the shared tail
// of Run and RunParallel.
func finishRun(m *Module, raw []Finding, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, f := range raw {
		if info, dline, ok := m.ignoreAt(f.File, f.Line); ok {
			m.noteIgnoreUsed(f.File, dline)
			if info.reason != "" {
				continue
			}
			// Fall through: a bare directive suppresses nothing.
		}
		out = append(out, f)
	}
	staleCheck := coversAllRules(analyzers)
	for _, p := range m.Pkgs {
		for _, file := range p.Files {
			lines := make([]int, 0, len(file.ignores))
			for line := range file.ignores {
				lines = append(lines, line)
			}
			sort.Ints(lines)
			for _, line := range lines {
				info := file.ignores[line]
				if info.reason == "" {
					out = append(out, Finding{
						Rule: "ignore", File: file.Path, Line: line, Col: 1,
						Message: "conflint:ignore needs a reason (// conflint:ignore <why this is safe>)",
						Hint:    "state why the finding is a false alarm, or fix the code",
					})
					continue
				}
				if staleCheck && !m.ignoreUsed(file.Path, line) {
					out = append(out, Finding{
						Rule: "ignore", File: file.Path, Line: line, Col: 1,
						Message: "conflint:ignore suppresses nothing: no rule reports a finding on this line or the line below",
						Hint:    "delete the stale directive (conflint -fix does), or restore the code it was written for",
						Fixes:   []TextEdit{m.deleteCommentEdit(file, info.pos, info.end)},
					})
				}
			}
		}
	}
	for i := range out {
		out[i].Package, out[i].Symbol = m.symbolAt(out[i].File, out[i].Line)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return out
}
