// The unchecked-error analyzer: a dropped error in a tuning daemon is a
// silent wrong answer — a recommendation computed from a config file that
// never parsed, a report written to a disk that was full. Three discard
// shapes are flagged:
//
//	srv.Shutdown(ctx)          // expression statement, error vaporized
//	go srv.Serve(ln)           // goroutine exits silently on error
//	f, _ := strconv.ParseFloat // blank-discarded error result
//
// Error-returning targets are recognized two ways: module functions and
// methods through the lightweight resolver (their signatures are in the
// source we parsed), and a curated table of stdlib calls this repo
// actually uses. Anything unresolvable produces no finding.
//
// The escape hatch is `_ = err // conflint:ignore <reason>`; the policy
// (see DESIGN.md) admits only provably best-effort paths, like writing a
// metrics response to an HTTP client that may have hung up.
package lint

import (
	"fmt"
	"go/ast"
)

// ErrCheck returns the unchecked-error analyzer.
func ErrCheck() *Analyzer {
	return &Analyzer{
		Name:  "errcheck",
		Doc:   "no silently discarded errors: expression-statement, go/defer, and blank-assigned error results are findings",
		Check: checkErrors,
	}
}

// stdlibReturnsError lists stdlib calls whose last result is an error,
// keyed "importPath.Func" for functions and "importPath.Type.Method" for
// methods. Curated to what the module uses; unlisted stdlib calls are not
// findings (conservative).
var stdlibReturnsError = map[string]bool{
	"os.WriteFile": true, "os.MkdirAll": true, "os.Mkdir": true,
	"os.Remove": true, "os.RemoveAll": true, "os.Rename": true,
	"os.Setenv": true, "os.Chdir": true,
	"os.File.Close": true, "os.File.Sync": true,
	"os.File.Write": true, "os.File.WriteString": true,
	"net/http.Server.Serve": true, "net/http.Server.ListenAndServe": true,
	"net/http.Server.Shutdown": true, "net/http.Server.Close": true,
	"encoding/json.Encoder.Encode": true,
	"encoding/json.Unmarshal":      true,
	"encoding/csv.Writer.Write":    true, "encoding/csv.Writer.WriteAll": true,
	"bufio.Writer.Flush": true,
	"io.Copy":            true,
	"strconv.ParseFloat": true, "strconv.ParseInt": true,
	"strconv.ParseUint": true, "strconv.ParseBool": true, "strconv.Atoi": true,
	"time.Parse": true,
}

// errDiscardAllowed lists calls whose error is ignorable by convention:
// the fmt print family, and the never-failing Write* methods of
// strings.Builder and bytes.Buffer.
var errDiscardAllowedFuncs = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

var errDiscardAllowedRecvs = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

// stdlibSingleErrResult is the subset of stdlibReturnsError whose calls
// return exactly one value (the error) — the precondition for rewriting
// a discarding expression statement to `_ = call()`. Multi-result calls
// (io.Copy, os.File.Write, the strconv parsers, time.Parse) are
// excluded: `_ =` would not compile for them.
var stdlibSingleErrResult = map[string]bool{
	"os.WriteFile": true, "os.MkdirAll": true, "os.Mkdir": true,
	"os.Remove": true, "os.RemoveAll": true, "os.Rename": true,
	"os.Setenv": true, "os.Chdir": true,
	"os.File.Close": true, "os.File.Sync": true,
	"net/http.Server.Serve": true, "net/http.Server.ListenAndServe": true,
	"net/http.Server.Shutdown": true, "net/http.Server.Close": true,
	"encoding/json.Encoder.Encode": true,
	"encoding/json.Unmarshal":      true,
	"encoding/csv.Writer.Write":    true, "encoding/csv.Writer.WriteAll": true,
	"bufio.Writer.Flush": true,
}

// errFixIgnoreComment is the reasoned-discard comment -fix appends: the
// reason is a deliberate TODO — the fix makes the discard explicit and
// auditable, the justification stays a human's job.
const errFixIgnoreComment = " // conflint:ignore TODO: justify this error discard"

// singleErrorResult reports whether the call provably returns exactly
// one value, an error: a resolved module signature with one result, or
// a curated single-result stdlib call.
func singleErrorResult(m *Module, p *Package, f *File, fn *ast.FuncDecl, call *ast.CallExpr) bool {
	r := &resolver{m: m, pkg: p, file: f, fn: fn}
	if sig, _, _ := r.signatureOf(call); sig != nil {
		return returnsError(sig) && resultCount(sig) == 1
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if base, ok := sel.X.(*ast.Ident); ok {
		if imp := importPathOf(f, base.Name); imp != "" {
			return stdlibSingleErrResult[imp+"."+sel.Sel.Name]
		}
	}
	if key := m.NamedKey(m.TypeOf(p, f, fn, sel.X)); key != "" {
		return stdlibSingleErrResult[key+"."+sel.Sel.Name]
	}
	return false
}

func checkErrors(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, fn := range fileFuncs(f) {
			out = append(out, checkErrorsFunc(p, f, fn)...)
		}
	}
	return out
}

func checkErrorsFunc(p *Package, f *File, fn *ast.FuncDecl) []Finding {
	m := p.Mod
	fset := m.Fset
	var out []Finding

	flag := func(at ast.Node, msg, hint string, fixes []TextEdit) {
		pos := fset.Position(at.Pos())
		out = append(out, Finding{
			Rule: "errcheck", File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: msg, Hint: hint, Fixes: fixes,
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, drops := callDropsError(m, p, f, fn, call); drops {
				// Fixable when the call provably returns just the error
				// (so `_ =` compiles) and the statement ends its line:
				// prefix the blank assign, append the reasoned ignore.
				var fixes []TextEdit
				if singleErrorResult(m, p, f, fn, call) {
					if tail, ok := m.appendLineCommentEdit(f, s.End(), errFixIgnoreComment); ok {
						at := m.offsetOf(s.Pos())
						fixes = []TextEdit{{File: f.Path, Start: at, End: at, New: "_ = "}, tail}
					}
				}
				flag(call,
					fmt.Sprintf("result of %s is an error and this statement discards it", name),
					"handle the error, or discard explicitly with `_ = ... // conflint:ignore <reason>`",
					fixes)
			}
		case *ast.GoStmt:
			if name, drops := callDropsError(m, p, f, fn, s.Call); drops {
				flag(s.Call,
					fmt.Sprintf("go %s drops its error: the goroutine dies silently when it fails", name),
					"wrap in `go func() { if err := ...; err != nil { log / signal } }()`", nil)
			}
		case *ast.DeferStmt:
			if name, drops := callDropsError(m, p, f, fn, s.Call); drops {
				flag(s.Call,
					fmt.Sprintf("defer %s drops its error", name),
					"defer a closure that checks the error, or discard explicitly with a conflint:ignore reason", nil)
			}
		case *ast.AssignStmt:
			out = append(out, checkBlankErrors(m, p, f, fn, s)...)
		}
		return true
	})
	return out
}

// callDropsError reports whether evaluating call as a statement throws an
// error away, with a printable name for the callee.
func callDropsError(m *Module, p *Package, f *File, fn *ast.FuncDecl, call *ast.CallExpr) (string, bool) {
	name := exprString(m.Fset, call.Fun)
	if allowedDiscard(m, p, f, fn, call) {
		return name, false
	}
	ret, known := callReturnsError(m, p, f, fn, call)
	return name, known && ret
}

// allowedDiscard reports whether the call is on the conventional
// never-matters list.
func allowedDiscard(m *Module, p *Package, f *File, fn *ast.FuncDecl, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if base, ok := sel.X.(*ast.Ident); ok {
		if imp := importPathOf(f, base.Name); imp != "" {
			return errDiscardAllowedFuncs[imp+"."+sel.Sel.Name]
		}
	}
	recv := m.TypeOf(p, f, fn, sel.X)
	return errDiscardAllowedRecvs[m.NamedKey(recv)]
}

// callReturnsError resolves whether a call's last result is an error.
// known=false means the callee could not be resolved at all.
func callReturnsError(m *Module, p *Package, f *File, fn *ast.FuncDecl, call *ast.CallExpr) (ret, known bool) {
	r := &resolver{m: m, pkg: p, file: f, fn: fn}
	if sig, _, _ := r.signatureOf(call); sig != nil {
		return returnsError(sig), true
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false, false
	}
	if base, ok := sel.X.(*ast.Ident); ok {
		if imp := importPathOf(f, base.Name); imp != "" {
			return stdlibReturnsError[imp+"."+sel.Sel.Name], true
		}
	}
	recv := m.TypeOf(p, f, fn, sel.X)
	if key := m.NamedKey(recv); key != "" {
		return stdlibReturnsError[key+"."+sel.Sel.Name], true
	}
	return false, false
}

// checkBlankErrors flags `_` assignment positions that receive an error:
// both `x, _ := call()` (multi-result call) and `_ = call()`.
func checkBlankErrors(m *Module, p *Package, f *File, fn *ast.FuncDecl, s *ast.AssignStmt) []Finding {
	fset := m.Fset
	var out []Finding

	blankAt := func(i int) bool {
		id, ok := s.Lhs[i].(*ast.Ident)
		return ok && id.Name == "_"
	}

	// x, _ := call(): one multi-valued call feeding all LHS names.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return nil
		}
		last := len(s.Lhs) - 1
		if !blankAt(last) {
			return nil
		}
		if allowedDiscard(m, p, f, fn, call) {
			return nil
		}
		if ret, known := callReturnsError(m, p, f, fn, call); known && ret {
			pos := fset.Position(s.Lhs[last].Pos())
			out = append(out, Finding{
				Rule: "errcheck", File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("blank identifier discards the error from %s", exprString(fset, call.Fun)),
				Hint:    "name the error and handle it; a deliberate discard needs `// conflint:ignore <reason>`",
			})
		}
		return out
	}

	// _ = call() pairs.
	if len(s.Rhs) == len(s.Lhs) {
		for i := range s.Lhs {
			if !blankAt(i) {
				continue
			}
			call, ok := s.Rhs[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			if allowedDiscard(m, p, f, fn, call) {
				continue
			}
			if ret, known := callReturnsError(m, p, f, fn, call); known && ret {
				// The discard is already explicit; the fix appends the
				// reasoned ignore that makes it auditable.
				var fixes []TextEdit
				if e, ok := m.appendLineCommentEdit(f, s.End(), errFixIgnoreComment); ok {
					fixes = []TextEdit{e}
				}
				pos := fset.Position(s.Lhs[i].Pos())
				out = append(out, Finding{
					Rule: "errcheck", File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: fmt.Sprintf("`_ = %s` discards an error without a conflint:ignore reason", exprString(fset, call.Fun)),
					Hint:    "handle the error or append `// conflint:ignore <reason>` to the discard",
					Fixes:   fixes,
				})
			}
		}
	}
	return out
}
