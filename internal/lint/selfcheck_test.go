package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the test's working directory to go.mod.
func repoRoot(t testing.TB) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

// TestRepoIsClean is the self-run gate: the repository must pass its own
// analyzers with zero findings. A failure here means a real invariant
// violation landed (fix the code) or an analyzer regressed into a false
// positive (fix the analyzer) — never "add a directive to make CI green".
func TestRepoIsClean(t *testing.T) {
	m, err := LoadModule(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Fatalf("conflint found %d violation(s) in the repository", len(findings))
	}
}
