// The epoch analyzer: the machine-checked version of the what-if cache
// contract from PR 5. Config-bearing fields (the engine's catalog,
// views, indexes, the cluster's shard topology) are annotated
//
//	// conflint:guardedby mu conflint:epoch
//
// and the invalidation counter itself
//
//	// conflint:guardedby mu conflint:epochcounter
//
// (the tokens are whitespace-separated so they compose with lockcheck's
// guardedby annotation). The rule: any function that writes an epoch
// field must bump an epoch counter on every path before returning —
// either directly (write/++ of a counter field) or by calling, on every
// such path, a callee that itself provably bumps on all of its paths.
// A mutate-without-bump would leave stale what-if sessions validating
// against a configuration that no longer exists.
//
// The analysis is a forward must-analysis over each function body
// (branch joins AND the bumped bit, loops may run zero times, a defer
// of a bumping callee covers every later return) plus an interprocedural
// "bumps on all paths" summary computed to a fixpoint over the call
// graph (dataflow.go). Go-spawned calls never count as bumps. Writes
// through a locally constructed value (`c := &Cluster{...}`) are exempt:
// a constructor initializes, it does not mutate observable state.
//
// Conservatism: writes inside function literals are not attributed to
// the enclosing function, and an unresolvable write target produces no
// finding — consistent with the rest of the suite, silence over noise.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

const (
	epochDirective        = "conflint:epoch"
	epochCounterDirective = "conflint:epochcounter"
)

// Epoch returns the epoch-bump analyzer.
func Epoch() *Analyzer {
	return &Analyzer{
		Name:  "epoch",
		Doc:   "functions writing conflint:epoch config-bearing fields must bump a conflint:epochcounter on every path before returning",
		Check: func(p *Package) []Finding { return p.Mod.interprocFindings(p, "epoch", epochModule) },
	}
}

// epochSets are the module-wide annotated fields.
type epochSets struct {
	guarded  map[fieldKey]token.Pos // epoch-directive fields -> declaration pos
	counters map[fieldKey]bool      // epochcounter-directive fields
}

// fieldHasToken reports whether a struct field's doc or trailing comment
// carries the exact whitespace-separated token.
func fieldHasToken(fld *ast.Field, tok string) bool {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			for _, w := range strings.Fields(strings.TrimPrefix(c.Text, "//")) {
				if w == tok {
					return true
				}
			}
		}
	}
	return false
}

func epochSetsOf(m *Module) *epochSets {
	if m.epochs != nil {
		return m.epochs
	}
	s := &epochSets{guarded: make(map[fieldKey]token.Pos), counters: make(map[fieldKey]bool)}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, d := range f.AST.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					key := p.ImportPath + "." + ts.Name.Name
					for _, fld := range st.Fields.List {
						for _, n := range fld.Names {
							if fieldHasToken(fld, epochDirective) {
								s.guarded[fieldKey{key, n.Name}] = n.Pos()
							}
							if fieldHasToken(fld, epochCounterDirective) {
								s.counters[fieldKey{key, n.Name}] = true
							}
						}
					}
				}
			}
		}
	}
	m.epochs = s
	return s
}

// counterNames renders the declared counters for findings.
func (s *epochSets) counterNames(m *Module) string {
	var ns []string
	for fk := range s.counters {
		ns = append(ns, m.shortKey(fk.typ)+"."+fk.field)
	}
	sort.Strings(ns)
	if len(ns) == 0 {
		return "an epoch counter"
	}
	return strings.Join(ns, ", ")
}

// epochWrite is one pending config-field write awaiting a bump.
type epochWrite struct {
	pos token.Pos
	key fieldKey
}

// epochCall is a call made while a write was pending to a callee that
// does not bump on all paths — witness material for the finding.
type epochCall struct {
	pos    token.Pos
	callee string
}

// epochState is the abstract per-path state of the must-bump analysis.
type epochState struct {
	terminated bool // control already left the function on this path
	bumped     bool
	writes     []epochWrite
	tried      []epochCall
}

func joinEpoch(a, b epochState) epochState {
	if a.terminated {
		return b
	}
	if b.terminated {
		return a
	}
	out := epochState{bumped: a.bumped && b.bumped}
	out.writes = append(out.writes, a.writes...)
	for _, w := range b.writes {
		if !hasWrite(out.writes, w.pos) {
			out.writes = append(out.writes, w)
		}
	}
	out.tried = append(out.tried, a.tried...)
	for _, c := range b.tried {
		if !hasTried(out.tried, c.pos) {
			out.tried = append(out.tried, c)
		}
	}
	return out
}

func hasWrite(ws []epochWrite, pos token.Pos) bool {
	for _, w := range ws {
		if w.pos == pos {
			return true
		}
	}
	return false
}

func hasTried(cs []epochCall, pos token.Pos) bool {
	for _, c := range cs {
		if c.pos == pos {
			return true
		}
	}
	return false
}

// epochEval walks one function body. In summary mode (report == nil) it
// records the bumped bit at every exit; in report mode it emits one
// finding per unbumped pending write.
type epochEval struct {
	m      *Module
	sets   *epochSets
	sums   map[string]bool // bumpsAlways summaries (may be mid-fixpoint)
	fd     *funcDecl
	exits  []bool
	report func(w epochWrite, st epochState, exitPos token.Pos)
	seen   map[token.Pos]bool // writes already reported
}

func (ev *epochEval) run() {
	body := ev.fd.decl.Body
	out := ev.stmts(body.List, epochState{})
	if !out.terminated {
		ev.exit(out, body.End())
	}
}

func (ev *epochEval) exit(st epochState, pos token.Pos) {
	ev.exits = append(ev.exits, st.bumped)
	if ev.report == nil || st.bumped {
		return
	}
	for _, w := range st.writes {
		if ev.seen[w.pos] {
			continue
		}
		ev.seen[w.pos] = true
		ev.report(w, st, pos)
	}
}

// bumpsAlways reports whether every exit of the walked body was bumped.
func (ev *epochEval) bumpsAlways() bool {
	if len(ev.exits) == 0 {
		return true // no reachable exit: vacuously true
	}
	for _, b := range ev.exits {
		if !b {
			return false
		}
	}
	return true
}

func (ev *epochEval) stmts(list []ast.Stmt, in epochState) epochState {
	for _, s := range list {
		if in.terminated {
			return in
		}
		in = ev.stmt(s, in)
	}
	return in
}

func (ev *epochEval) stmt(s ast.Stmt, in epochState) epochState {
	switch s := s.(type) {
	case *ast.ExprStmt:
		ev.applyCalls(s.X, &in)
		return in
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			ev.applyCalls(r, &in)
		}
		for _, l := range s.Lhs {
			ev.target(l, &in)
		}
		return in
	case *ast.IncDecStmt:
		ev.target(s.X, &in)
		return in
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ev.applyCalls(r, &in)
		}
		ev.exit(in, s.Pos())
		in.terminated = true
		return in
	case *ast.DeferStmt:
		// A deferred bump covers every return after this point.
		if key := ev.m.calleeKey(ev.fd.pkg, ev.fd.file, ev.fd.decl, s.Call); key != "" && ev.sums[key] {
			in.bumped = true
		}
		ev.counterAddrArg(s.Call, &in)
		return in
	case *ast.GoStmt:
		return in // async: never a bump on this path
	case *ast.IfStmt:
		if s.Init != nil {
			in = ev.stmt(s.Init, in)
		}
		ev.applyCalls(s.Cond, &in)
		thenOut := ev.stmts(s.Body.List, in)
		elseOut := in
		if s.Else != nil {
			elseOut = ev.stmt(s.Else, in)
		}
		return joinEpoch(thenOut, elseOut)
	case *ast.ForStmt:
		if s.Init != nil {
			in = ev.stmt(s.Init, in)
		}
		if s.Cond != nil {
			ev.applyCalls(s.Cond, &in)
		}
		body := ev.stmts(s.Body.List, in)
		if s.Post != nil && !body.terminated {
			body = ev.stmt(s.Post, body)
		}
		if s.Cond == nil {
			// for{}: the loop cannot be skipped; its only exits are
			// breaks and returns (returns are handled at their site,
			// breaks approximate as terminated).
			return body
		}
		return joinEpoch(in, body)
	case *ast.RangeStmt:
		ev.applyCalls(s.X, &in)
		body := ev.stmts(s.Body.List, in)
		return joinEpoch(in, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			in = ev.stmt(s.Init, in)
		}
		if s.Tag != nil {
			ev.applyCalls(s.Tag, &in)
		}
		return ev.clauses(s.Body.List, in)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			in = ev.stmt(s.Init, in)
		}
		if s.Assign != nil {
			in = ev.stmt(s.Assign, in)
		}
		return ev.clauses(s.Body.List, in)
	case *ast.SelectStmt:
		// Exactly one clause runs (select blocks until one is ready).
		out := epochState{terminated: true}
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			cur := in
			if cc.Comm != nil {
				cur = ev.stmt(cc.Comm, cur)
			}
			out = joinEpoch(out, ev.stmts(cc.Body, cur))
		}
		if len(s.Body.List) == 0 {
			return in
		}
		return out
	case *ast.BlockStmt:
		return ev.stmts(s.List, in)
	case *ast.LabeledStmt:
		return ev.stmt(s.Stmt, in)
	case *ast.BranchStmt:
		// break/continue/goto leave this straight-line path; their
		// targets are approximated as terminated (conservative toward
		// silence: a jumped-to path is never reported).
		in.terminated = true
		return in
	case *ast.SendStmt:
		ev.applyCalls(s.Chan, &in)
		ev.applyCalls(s.Value, &in)
		return in
	case *ast.DeclStmt:
		ev.applyCalls(s, &in)
		return in
	default:
		if s != nil {
			ev.applyCalls(s, &in)
		}
		return in
	}
}

// clauses joins a switch's case bodies; without a default the zero-case
// fall-through joins in too.
func (ev *epochEval) clauses(list []ast.Stmt, in epochState) epochState {
	out := epochState{terminated: true}
	hasDefault := false
	for _, cl := range list {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		cur := in
		for _, e := range cc.List {
			ev.applyCalls(e, &cur)
		}
		out = joinEpoch(out, ev.stmts(cc.Body, cur))
	}
	if !hasDefault {
		out = joinEpoch(out, in)
	}
	return out
}

// applyCalls folds the effect of every call inside an expression (or
// declaration statement) into the state, skipping function literals:
// a call to a callee that bumps on all paths sets bumped, a call to any
// other module function while a write is pending is witness material.
func (ev *epochEval) applyCalls(n ast.Node, st *epochState) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key := ev.m.calleeKey(ev.fd.pkg, ev.fd.file, ev.fd.decl, call); key != "" {
			if ev.sums[key] {
				st.bumped = true
			} else if len(st.writes) > 0 && !hasTried(st.tried, call.Pos()) && len(st.tried) < 6 {
				st.tried = append(st.tried, epochCall{pos: call.Pos(), callee: key})
			}
		}
		ev.counterAddrArg(call, st)
		return true
	})
}

// counterAddrArg treats passing &x.counter to any call (atomic.AddInt64
// and friends) as a bump.
func (ev *epochEval) counterAddrArg(call *ast.CallExpr, st *epochState) {
	for _, a := range call.Args {
		u, ok := a.(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		if fk, ok := ev.fieldOf(u.X); ok && ev.sets.counters[fk] {
			st.bumped = true
		}
	}
}

// target folds one assignment/inc-dec target into the state: counter
// fields bump, epoch fields become pending writes (unless the base was
// constructed locally).
func (ev *epochEval) target(e ast.Expr, st *epochState) {
	fk, ok := ev.fieldOf(e)
	if !ok {
		return
	}
	if ev.sets.counters[fk] {
		st.bumped = true
		return
	}
	if _, ok := ev.sets.guarded[fk]; !ok {
		return
	}
	sel := baseSelector(e)
	if sel != nil && ev.freshBase(sel) {
		return
	}
	if !hasWrite(st.writes, e.Pos()) {
		st.writes = append(st.writes, epochWrite{pos: e.Pos(), key: fk})
	}
}

// fieldOf resolves an assignment target to a module struct field.
func (ev *epochEval) fieldOf(e ast.Expr) (fieldKey, bool) {
	sel := baseSelector(e)
	if sel == nil {
		return fieldKey{}, false
	}
	key := ev.m.NamedKey(ev.m.TypeOf(ev.fd.pkg, ev.fd.file, ev.fd.decl, sel.X))
	if key == "" {
		return fieldKey{}, false
	}
	return fieldKey{key, sel.Sel.Name}, true
}

// baseSelector unwraps indexes/derefs/parens down to the field selector:
// `e.indexes[k]` and `(*c).spec` both resolve to their selector.
func baseSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch t := e.(type) {
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.SelectorExpr:
			return t
		default:
			return nil
		}
	}
}

// freshBase reports whether the selector's root variable is constructed
// inside this function (`c := &Cluster{...}`, `e := new(Engine)`):
// initializing a value nobody else can see yet needs no invalidation.
func (ev *epochEval) freshBase(sel *ast.SelectorExpr) bool {
	id := rootIdent(sel.X)
	if id == nil {
		return false
	}
	fresh := false
	ast.Inspect(ev.fd.decl.Body, func(n ast.Node) bool {
		if fresh {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, l := range as.Lhs {
			lid, ok := l.(*ast.Ident)
			if !ok || lid.Name != id.Name {
				continue
			}
			if i < len(as.Rhs) && isFreshExpr(as.Rhs[i]) {
				fresh = true
			}
		}
		return true
	})
	return fresh
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		case *ast.Ident:
			return t
		default:
			return nil
		}
	}
}

func isFreshExpr(e ast.Expr) bool {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.UnaryExpr:
			if t.Op != token.AND {
				return false
			}
			e = t.X
		case *ast.CompositeLit:
			return true
		case *ast.CallExpr:
			id, ok := t.Fun.(*ast.Ident)
			return ok && id.Name == "new"
		default:
			return false
		}
	}
}

// epochModule runs the whole analysis: annotation scan, bumps-on-all-
// paths summaries to a fixpoint, then a reporting pass per function.
func epochModule(m *Module) []Finding {
	sets := epochSetsOf(m)
	if len(sets.guarded) == 0 {
		return nil
	}
	g := m.Graph()
	sums := make(map[string]bool)
	m.fixpoint("epoch", g.Keys(), nil, func(key string) bool {
		if sums[key] {
			return false // monotone: a bumper stays a bumper
		}
		node := g.Node(key)
		if node == nil || node.Fn == nil || node.Fn.decl.Body == nil {
			return false
		}
		ev := &epochEval{m: m, sets: sets, sums: sums, fd: node.Fn}
		ev.run()
		if ev.bumpsAlways() {
			sums[key] = true
			return true
		}
		return false
	})

	var out []Finding
	if len(sets.counters) == 0 {
		// Epoch fields with no counter anywhere: every write is a
		// violation by construction; say so once, at each field.
		var fks []fieldKey
		for fk := range sets.guarded {
			fks = append(fks, fk)
		}
		sort.Slice(fks, func(i, j int) bool {
			if fks[i].typ != fks[j].typ {
				return fks[i].typ < fks[j].typ
			}
			return fks[i].field < fks[j].field
		})
		for _, fk := range fks {
			pos := m.Fset.Position(sets.guarded[fk])
			out = append(out, Finding{
				Rule: "epoch", File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("%s.%s is marked conflint:epoch but no field is marked conflint:epochcounter: there is nothing to bump", m.shortKey(fk.typ), fk.field),
				Hint:    "mark the invalidation counter with conflint:epochcounter",
			})
		}
		return out
	}
	counters := sets.counterNames(m)
	for _, key := range g.Keys() {
		node := g.Node(key)
		if node == nil || node.Fn == nil || node.Fn.decl.Body == nil {
			continue
		}
		key := key
		ev := &epochEval{m: m, sets: sets, sums: sums, fd: node.Fn, seen: make(map[token.Pos]bool)}
		ev.report = func(w epochWrite, st epochState, exitPos token.Pos) {
			pos := m.Fset.Position(w.pos)
			witness := []string{m.stepf(w.pos, "%s writes %s.%s", m.shortKey(key), m.shortKey(w.key.typ), w.key.field)}
			for _, c := range st.tried {
				if c.pos > w.pos {
					witness = append(witness, m.stepf(c.pos, "calls %s, which does not bump on every path", m.shortKey(c.callee)))
				}
			}
			witness = append(witness, m.stepf(exitPos, "returns with the write unbumped"))
			out = append(out, Finding{
				Rule: "epoch", File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("%s writes config-bearing field %s.%s but can return without bumping %s: stale what-if sessions would keep validating against the old configuration", m.shortKey(key), m.shortKey(w.key.typ), w.key.field, counters),
				Hint:    "bump the epoch counter on every path before returning (directly, via a deferred bump, or by calling a callee that always bumps)",
				Witness: witness,
			})
		}
		ev.run()
	}
	return out
}
