// The lock-order analyzer: the interprocedural half of the lock story.
// lockcheck proves each acquisition is paired; lockorder proves the
// acquisitions *nest consistently* across the whole module. It abstracts
// every mutex to a lock class, propagates the set of held classes across
// call-graph edges, builds the module's lock-ordering graph, and reports
// every cycle as a potential deadlock with a full witness path — the
// chain of functions and source positions that realizes each edge.
//
// Lock classes:
//
//   - a struct mutex field abstracts to "importPath.Type.field"
//     (every Engine instance shares the class engine.Engine.mu — the
//     standard may-deadlock abstraction);
//   - a local variable obtained from a module call that returns a mutex
//     abstracts to the producing callee, "importPath.Type.Method()"
//     (bench.Lab.lockEngine() is the per-cell lock class);
//   - anything else is unresolved and produces no edges (conservative).
//
// RLock and Lock acquisitions of one mutex share a class: a read lock
// still participates in ordering cycles against writers. Self-edges
// (re-acquiring a held class) are not reported — that is single-lock
// territory, and flagging RLock-under-RLock would drown real inversions.
//
// `go` call sites contribute no edges: the spawned goroutine does not
// run under the spawner's held set.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// LockOrder returns the interprocedural lock-ordering analyzer.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name:  "lockorder",
		Doc:   "mutex acquisitions must nest consistently module-wide: any cycle in the lock-ordering graph is a potential deadlock",
		Check: checkLockOrder,
	}
}

func checkLockOrder(p *Package) []Finding {
	return p.Mod.interprocFindings(p, "lockorder", lockOrderModule)
}

// interprocFindings runs a module-wide analysis once (cached) and returns
// the findings whose file belongs to package p, so per-package Check
// calls never duplicate a module-level finding. Each rule's pass runs
// under its own sync.Once, so RunParallel can warm different rules from
// different goroutines while per-package checks hit the warm cache.
func (m *Module) interprocFindings(p *Package, rule string, run func(m *Module) []Finding) []Finding {
	m.interMu.Lock()
	if m.inter == nil {
		m.inter = make(map[string][]Finding)
	}
	if m.interOnce == nil {
		m.interOnce = make(map[string]*sync.Once)
	}
	once := m.interOnce[rule]
	if once == nil {
		once = new(sync.Once)
		m.interOnce[rule] = once
	}
	m.interMu.Unlock()
	once.Do(func() {
		all := run(m)
		m.interMu.Lock()
		m.inter[rule] = all
		m.interMu.Unlock()
	})
	m.interMu.Lock()
	all := m.inter[rule]
	m.interMu.Unlock()
	inPkg := make(map[string]bool, len(p.Files))
	for _, f := range p.Files {
		inPkg[f.Path] = true
	}
	var out []Finding
	for _, f := range all {
		if inPkg[f.File] {
			out = append(out, f)
		}
	}
	return out
}

// lockEvent is one Lock/RLock/Unlock/RUnlock call, in source order.
type lockEvent struct {
	acquire  bool
	rlock    bool // RLock/RUnlock flavor
	target   string
	class    string // resolved lock class, "" when unresolvable
	pos      token.Pos
	deferred bool
	consumed bool
}

// heldInterval is one span of a function body during which a lock class
// is held.
type heldInterval struct {
	class      string
	rlock      bool // acquired via RLock (a read session, for readpath)
	start, end token.Pos
}

// pathStep is one hop of an acquisition witness: a call (callee != "") or
// the final acquire (callee == "", class names the lock).
type pathStep struct {
	fn     string
	pos    token.Pos
	callee string
	class  string
}

// orderEdge is one "holding from, acquires to" observation with its
// witness: the position where from was acquired, and the step chain
// that reaches the acquisition of to.
type orderEdge struct {
	from, to string
	holder   string // function holding from
	fromPos  token.Pos
	steps    []pathStep
}

// lockOrderModule builds the lock-ordering graph and reports cycles.
func lockOrderModule(m *Module) []Finding {
	g := m.Graph()
	trans := &transAcqState{m: m, memo: make(map[string]map[string][]pathStep), active: make(map[string]bool)}

	edges := make(map[string]*orderEdge) // "from\x00to" -> first witness
	addEdge := func(e *orderEdge) {
		k := e.from + "\x00" + e.to
		if _, ok := edges[k]; !ok {
			edges[k] = e
		}
	}
	for _, key := range g.Keys() {
		node := g.Node(key)
		if node.Fn == nil || node.Fn.decl.Body == nil {
			continue
		}
		intervals := m.lockIntervals(node.Fn)
		// Intra-function nesting: an acquisition inside a held interval.
		for _, outer := range intervals {
			for _, inner := range intervals {
				if outer.class == inner.class {
					continue
				}
				if outer.start < inner.start && inner.start < outer.end {
					addEdge(&orderEdge{
						from: outer.class, to: inner.class, holder: key, fromPos: outer.start,
						steps: []pathStep{{fn: key, pos: inner.start, class: inner.class}},
					})
				}
			}
		}
		// Interprocedural nesting: a call made while holding, where the
		// callee transitively acquires.
		for _, cs := range node.Out {
			if cs.Go {
				continue
			}
			acq := trans.of(cs.Callee)
			if len(acq) == 0 {
				continue
			}
			var classes []string
			for c := range acq {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			for _, outer := range intervals {
				if outer.start >= cs.Pos || cs.Pos >= outer.end {
					continue
				}
				for _, c := range classes {
					if c == outer.class {
						continue
					}
					steps := append([]pathStep{{fn: key, pos: cs.Pos, callee: cs.Callee}}, acq[c]...)
					addEdge(&orderEdge{from: outer.class, to: c, holder: key, fromPos: outer.start, steps: steps})
				}
			}
		}
	}
	return m.lockOrderCycles(edges)
}

// transAcqState memoizes, per function, every lock class the function
// may acquire (directly or through callees) with one witness path each.
type transAcqState struct {
	m      *Module
	memo   map[string]map[string][]pathStep
	active map[string]bool
}

// of returns class -> witness path for a function key.
func (t *transAcqState) of(key string) map[string][]pathStep {
	if got, ok := t.memo[key]; ok {
		return got
	}
	if t.active[key] {
		return nil // recursion: the cycle adds no new classes
	}
	t.active[key] = true
	defer delete(t.active, key)

	out := make(map[string][]pathStep)
	node := t.m.Graph().Node(key)
	if node == nil || node.Fn == nil || node.Fn.decl.Body == nil {
		t.memo[key] = out
		return out
	}
	for _, ev := range t.m.lockEvents(node.Fn) {
		if !ev.acquire || ev.class == "" {
			continue
		}
		if _, ok := out[ev.class]; !ok {
			out[ev.class] = []pathStep{{fn: key, pos: ev.pos, class: ev.class}}
		}
	}
	for _, cs := range node.Out {
		if cs.Go {
			continue
		}
		sub := t.of(cs.Callee)
		var classes []string
		for c := range sub {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		for _, c := range classes {
			if _, ok := out[c]; !ok {
				out[c] = append([]pathStep{{fn: key, pos: cs.Pos, callee: cs.Callee}}, sub[c]...)
			}
		}
	}
	t.memo[key] = out
	return out
}

// lockEvents scans a function body for lock operations in source order,
// resolving each target to its class.
func (m *Module) lockEvents(fd *funcDecl) []*lockEvent {
	fn, f, p := fd.decl, fd.file, fd.pkg
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred[d.Call] = true
		}
		return true
	})
	var out []*lockEvent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ev := &lockEvent{pos: call.Pos(), deferred: deferred[call]}
		switch sel.Sel.Name {
		case "Lock":
			ev.acquire = true
		case "RLock":
			ev.acquire, ev.rlock = true, true
		case "Unlock":
		case "RUnlock":
			ev.rlock = true
		default:
			return true
		}
		ev.target = exprString(m.Fset, sel.X)
		ev.class = m.lockClass(p, f, fn, sel.X)
		out = append(out, ev)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// lockIntervals pairs each acquisition with its release: the next
// unconsumed same-target, same-flavor release after it. A deferred (or
// missing) release holds the class to the end of the body.
func (m *Module) lockIntervals(fd *funcDecl) []heldInterval {
	events := m.lockEvents(fd)
	end := fd.decl.Body.End()
	var out []heldInterval
	for i, ev := range events {
		if !ev.acquire || ev.class == "" {
			continue
		}
		iv := heldInterval{class: ev.class, rlock: ev.rlock, start: ev.pos, end: end}
		for _, rel := range events[i+1:] {
			if rel.acquire || rel.consumed || rel.rlock != ev.rlock || rel.target != ev.target {
				continue
			}
			rel.consumed = true
			if !rel.deferred {
				iv.end = rel.pos
			}
			break
		}
		out = append(out, iv)
	}
	return out
}

// lockClass abstracts a lock target expression to its class (see the
// package comment), or "" when unresolvable.
func (m *Module) lockClass(p *Package, f *File, fn *ast.FuncDecl, target ast.Expr) string {
	switch t := target.(type) {
	case *ast.SelectorExpr:
		key := m.NamedKey(m.TypeOf(p, f, fn, t.X))
		if key == "" {
			return ""
		}
		ft := m.FieldType(key, t.Sel.Name)
		if ft.Expr == nil {
			return ""
		}
		if _, ok := mutexType(ft.File, ft.Expr); !ok {
			return ""
		}
		return key + "." + t.Sel.Name
	case *ast.Ident:
		call := producingCall(fn.Body, t.Name)
		if call == nil {
			return ""
		}
		callee := m.calleeKey(p, f, fn, call)
		if callee == "" {
			return ""
		}
		fd, ok := m.buildIndex().methods[callee]
		if !ok {
			fd, ok = m.buildIndex().funcs[callee]
		}
		if !ok || fd.decl.Type.Results == nil || len(fd.decl.Type.Results.List) == 0 {
			return ""
		}
		if _, isMu := mutexType(fd.file, fd.decl.Type.Results.List[0].Type); !isMu {
			return ""
		}
		return callee + "()"
	}
	return ""
}

// producingCall finds the call expression a local name is defined from
// (`em := l.lockEngine(sys, db)`).
func producingCall(body *ast.BlockStmt, name string) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
				if call, ok := as.Rhs[i].(*ast.CallExpr); ok {
					found = call
				}
				return false
			}
		}
		return true
	})
	return found
}

// lockOrderCycles finds every elementary cycle of the ordering graph and
// renders one finding per cycle, anchored at the first edge's holder
// acquisition, with the full witness in Finding.Witness.
func (m *Module) lockOrderCycles(edges map[string]*orderEdge) []Finding {
	adj := make(map[string][]string)
	byPair := make(map[string]*orderEdge)
	nodeSet := make(map[string]bool)
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		byPair[e.from+"\x00"+e.to] = e
		nodeSet[e.from], nodeSet[e.to] = true, true
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		sort.Strings(adj[n])
	}

	const maxCycles = 32
	var cycles [][]string
	// Elementary cycles with minimal-node canonical start: from each
	// start node, DFS only through nodes >= start, so every cycle is
	// enumerated exactly once, rooted at its smallest class.
	var dfs func(start, at string, path []string, onPath map[string]bool)
	dfs = func(start, at string, path []string, onPath map[string]bool) {
		if len(cycles) >= maxCycles {
			return
		}
		for _, next := range adj[at] {
			if next == start {
				cycles = append(cycles, append(append([]string{}, path...), start))
				continue
			}
			if next < start || onPath[next] {
				continue
			}
			onPath[next] = true
			dfs(start, next, append(path, next), onPath)
			delete(onPath, next)
		}
	}
	for _, start := range nodes {
		dfs(start, start, []string{start}, map[string]bool{start: true})
	}

	fset := m.Fset
	var out []Finding
	for _, cyc := range cycles {
		first := byPair[cyc[0]+"\x00"+cyc[1]]
		var short []string
		for _, c := range cyc {
			short = append(short, m.shortKey(c))
		}
		var witness []string
		for i := 0; i+1 < len(cyc); i++ {
			e := byPair[cyc[i]+"\x00"+cyc[i+1]]
			witness = append(witness, fmt.Sprintf("edge %s -> %s:", m.shortKey(e.from), m.shortKey(e.to)))
			witness = append(witness, fmt.Sprintf("  %s acquires %s at %s",
				m.shortKey(e.holder), m.shortKey(e.from), m.relPos(fset.Position(e.fromPos))))
			for _, st := range e.steps {
				if st.callee != "" {
					witness = append(witness, fmt.Sprintf("  %s calls %s at %s",
						m.shortKey(st.fn), m.shortKey(st.callee), m.relPos(fset.Position(st.pos))))
				} else {
					witness = append(witness, fmt.Sprintf("  %s acquires %s at %s",
						m.shortKey(st.fn), m.shortKey(st.class), m.relPos(fset.Position(st.pos))))
				}
			}
		}
		pos := fset.Position(first.fromPos)
		out = append(out, Finding{
			Rule: "lockorder", File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: fmt.Sprintf("potential deadlock: lock-order cycle %s", strings.Join(short, " -> ")),
			Hint:    "pick one global acquisition order for these mutexes and restructure the callers that violate it",
			Witness: witness,
		})
	}
	return out
}

// relPos renders a position with the path relative to the module root.
func (m *Module) relPos(pos token.Position) string {
	file := pos.Filename
	if rel, err := filepath.Rel(m.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return fmt.Sprintf("%s:%d", file, pos.Line)
}
