// The goroutine-leak analyzer: every `go` statement must come with an
// argument for why the goroutine does not outlive its work. A spawn
// site passes if any of these hold, checked in order:
//
//  1. it carries a `// conflint:worker <reason>` annotation (on the go
//     statement's line or the line above) — the escape hatch for
//     deliberate long-lived workers like a daemon's metrics server. The
//     reason is mandatory; a bare annotation is itself a finding;
//  2. it is WaitGroup-paired: the spawner calls wg.Add before the spawn
//     and wg.Wait after, and the spawned body (or a function it calls)
//     calls Done on a sync.WaitGroup;
//  3. the spawned body is tied to a lifecycle: it (or a callee) selects
//     on a channel receive, or receives from a context Done channel;
//  4. the spawned body provably terminates: no unbounded `for {}`
//     (one with no break/return anywhere inside), no range over a
//     channel, no empty select, no known-blocking stdlib call
//     (http.Server.Serve and friends) — transitively through resolved
//     callees, where an unresolvable callee is assumed to terminate
//     (conservative toward silence, like the rest of the suite) and
//     recursion is treated as terminating.
//
// Termination is judged per spawn site: walking a body skips nested
// `go` statements and non-spawned function literals, because what a
// *different* goroutine does is that goroutine's own spawn-site problem.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

const workerDirective = "conflint:worker"

// GoLeak returns the goroutine-lifecycle analyzer.
func GoLeak() *Analyzer {
	return &Analyzer{
		Name:  "goleak",
		Doc:   "every go statement must terminate, be WaitGroup-paired, follow a lifecycle channel, or carry conflint:worker <reason>",
		Check: checkGoLeak,
	}
}

func checkGoLeak(p *Package) []Finding {
	m := p.Mod
	fset := m.Fset
	term := &termState{m: m, memo: make(map[string]termFacts), active: make(map[string]bool)}
	var out []Finding
	for _, f := range p.Files {
		workers := scanWorkers(fset, f)
		for line, reason := range workers {
			if reason == "" {
				out = append(out, Finding{
					Rule: "goleak", File: f.Path, Line: line, Col: 1,
					Message: "conflint:worker needs a reason (// conflint:worker <why this goroutine is deliberately long-lived>)",
					Hint:    "state the worker's lifecycle (who stops it, or why running forever is intended)",
				})
			}
		}
		for _, fn := range fileFuncs(f) {
			if fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				pos := fset.Position(g.Pos())
				if r, ok := workerAt(workers, pos.Line); ok {
					if r == "" {
						// The bare annotation was already reported;
						// it covers nothing.
					} else {
						return true
					}
				}
				if f.waitGroupPaired(m, p, fn, g, term) {
					return true
				}
				facts := term.spawnFacts(p, f, fn, g)
				if facts.lifecycle {
					return true
				}
				if facts.terminates {
					return true
				}
				out = append(out, Finding{
					Rule: "goleak", File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: fmt.Sprintf("goroutine may leak: %s, and it is neither WaitGroup-paired nor tied to a lifecycle channel", facts.why),
					Hint:    "bound it (WaitGroup Add/Done/Wait), give it a stop channel or context select, or annotate `// conflint:worker <reason>` if it is deliberately long-lived",
				})
				return true
			})
		}
	}
	return out
}

// scanWorkers collects conflint:worker directives: line -> reason.
func scanWorkers(fset *token.FileSet, f *File) map[int]string {
	out := make(map[int]string)
	for _, cg := range f.AST.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, workerDirective); ok {
				out[fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
			}
		}
	}
	return out
}

// workerAt reports the directive covering a go statement's line (its own
// line or the one above).
func workerAt(workers map[int]string, line int) (string, bool) {
	if r, ok := workers[line]; ok {
		return r, true
	}
	if r, ok := workers[line-1]; ok {
		return r, true
	}
	return "", false
}

// waitGroupPaired checks discipline (2): Add-before-spawn and Wait in
// the spawner on the same WaitGroup expression, Done in the spawned
// body or a resolved callee.
func (f *File) waitGroupPaired(m *Module, p *Package, fn *ast.FuncDecl, g *ast.GoStmt, term *termState) bool {
	var addTargets, waitTargets []string
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Add" && sel.Sel.Name != "Wait" {
			return true
		}
		if m.NamedKey(m.TypeOf(p, f, fn, sel.X)) != "sync.WaitGroup" {
			return true
		}
		t := exprString(m.Fset, sel.X)
		if sel.Sel.Name == "Add" && call.Pos() < g.Pos() {
			addTargets = append(addTargets, t)
		}
		if sel.Sel.Name == "Wait" {
			waitTargets = append(waitTargets, t)
		}
		return true
	})
	paired := false
	for _, a := range addTargets {
		for _, w := range waitTargets {
			if a == w {
				paired = true
			}
		}
	}
	if !paired {
		return false
	}
	return term.spawnCallsDone(p, f, fn, g)
}

// spawnCallsDone reports whether the spawned body (or a resolved callee,
// transitively) calls Done on a sync.WaitGroup.
func (t *termState) spawnCallsDone(p *Package, f *File, fn *ast.FuncDecl, g *ast.GoStmt) bool {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return t.bodyCallsDone(p, f, fn, lit.Body, make(map[string]bool))
	}
	if key := t.m.calleeKey(p, f, fn, g.Call); key != "" {
		return t.fnCallsDone(key, make(map[string]bool))
	}
	return false
}

func (t *termState) fnCallsDone(key string, seen map[string]bool) bool {
	if seen[key] {
		return false
	}
	seen[key] = true
	node := t.m.Graph().Node(key)
	if node == nil || node.Fn == nil || node.Fn.decl.Body == nil {
		return false
	}
	fd := node.Fn
	return t.bodyCallsDone(fd.pkg, fd.file, fd.decl, fd.decl.Body, seen)
}

func (t *termState) bodyCallsDone(p *Package, f *File, fn *ast.FuncDecl, body *ast.BlockStmt, seen map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			return false // a nested goroutine's Done is its own pairing
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" &&
			t.m.NamedKey(t.m.TypeOf(p, f, fn, sel.X)) == "sync.WaitGroup" {
			found = true
			return false
		}
		if key := t.m.calleeKey(p, f, fn, call); key != "" && t.fnCallsDone(key, seen) {
			found = true
			return false
		}
		return true
	})
	return found
}

// termFacts is the per-function termination/lifecycle summary.
type termFacts struct {
	terminates bool
	lifecycle  bool
	why        string // first reason found for non-termination
}

// termState memoizes termination facts per function key.
type termState struct {
	m      *Module
	memo   map[string]termFacts
	active map[string]bool
}

// spawnFacts analyzes the body a go statement spawns.
func (t *termState) spawnFacts(p *Package, f *File, fn *ast.FuncDecl, g *ast.GoStmt) termFacts {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return t.bodyFacts(p, f, fn, lit.Body, make(map[string]bool))
	}
	if key := t.m.calleeKey(p, f, fn, g.Call); key != "" {
		return t.fnFacts(key, make(map[string]bool))
	}
	// Unresolvable spawn target (function value, interface method):
	// assume it terminates, like every other unresolved callee.
	return termFacts{terminates: true}
}

func (t *termState) fnFacts(key string, seen map[string]bool) termFacts {
	if got, ok := t.memo[key]; ok {
		return got
	}
	if t.active[key] {
		return termFacts{terminates: true} // recursion terminates by assumption
	}
	node := t.m.Graph().Node(key)
	if node == nil || node.Fn == nil || node.Fn.decl.Body == nil {
		return termFacts{terminates: true}
	}
	t.active[key] = true
	fd := node.Fn
	facts := t.bodyFacts(fd.pkg, fd.file, fd.decl, fd.decl.Body, seen)
	delete(t.active, key)
	t.memo[key] = facts
	return facts
}

// bodyFacts walks one body, skipping nested go statements and function
// literals (judged at their own spawn/call sites), collecting lifecycle
// evidence and non-termination reasons, and following resolved callees.
func (t *termState) bodyFacts(p *Package, f *File, fn *ast.FuncDecl, body *ast.BlockStmt, seen map[string]bool) termFacts {
	m := t.m
	facts := termFacts{terminates: true}
	flagNonTerm := func(why string) {
		if facts.terminates {
			facts.terminates = false
			facts.why = why
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if len(s.Body.List) == 0 {
				flagNonTerm("it blocks forever on an empty select{}")
				return true
			}
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && commIsReceive(cc) {
					facts.lifecycle = true
				}
			}
		case *ast.UnaryExpr:
			// `<-ctx.Done()` outside a select still ties the goroutine
			// to its context's lifecycle.
			if s.Op == token.ARROW {
				if call, ok := s.X.(*ast.CallExpr); ok {
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
						facts.lifecycle = true
					}
				}
			}
		case *ast.ForStmt:
			if s.Cond == nil && !hasBreakOrReturn(s.Body) {
				flagNonTerm("it loops forever (for {} with no break or return)")
			}
		case *ast.RangeStmt:
			if _, isChan := m.Underlying(m.TypeOf(p, f, fn, s.X)).Expr.(*ast.ChanType); isChan {
				flagNonTerm(fmt.Sprintf("it ranges over channel %s, which never ends unless the channel is closed",
					exprString(m.Fset, s.X)))
			}
		case *ast.CallExpr:
			if why := t.blockingStdlibCall(p, f, fn, s); why != "" {
				flagNonTerm(why)
				return true
			}
			if key := m.calleeKey(p, f, fn, s); key != "" && !seen[key] {
				seen[key] = true
				sub := t.fnFacts(key, seen)
				if sub.lifecycle {
					facts.lifecycle = true
				}
				if !sub.terminates {
					flagNonTerm(fmt.Sprintf("it calls %s, which %s", m.shortKey(key), sub.why))
				}
			}
		}
		return true
	})
	return facts
}

// commIsReceive reports whether a select clause is a channel receive.
func commIsReceive(cc *ast.CommClause) bool {
	switch c := cc.Comm.(type) {
	case *ast.ExprStmt:
		u, ok := c.X.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			u, ok := c.Rhs[0].(*ast.UnaryExpr)
			return ok && u.Op == token.ARROW
		}
	}
	return false
}

// hasBreakOrReturn reports whether a loop body can exit: any break or
// return anywhere inside (an approximation — a break bound to an inner
// loop counts, trading a missed leak for no false alarms on the common
// `for { ... if done { break } ... }` shape).
func hasBreakOrReturn(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch s := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if s.Tok == token.BREAK || s.Tok == token.GOTO {
				found = true
			}
		case *ast.ReturnStmt:
			found = true
		}
		return !found
	})
	return found
}

// blockingStdlibNames are stdlib methods/functions that block until an
// external shutdown: calling one makes the goroutine a worker by
// construction.
var blockingStdlibMethods = map[string]map[string]bool{
	"net/http.Server": {"Serve": true, "ServeTLS": true, "ListenAndServe": true, "ListenAndServeTLS": true},
}

var blockingStdlibFuncs = map[string]string{
	"net/http.ListenAndServe":    "http.ListenAndServe",
	"net/http.ListenAndServeTLS": "http.ListenAndServeTLS",
}

// blockingStdlibCall reports a human-readable reason when the call is a
// known-blocking stdlib serve loop, "" otherwise.
func (t *termState) blockingStdlibCall(p *Package, f *File, fn *ast.FuncDecl, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if base, ok := sel.X.(*ast.Ident); ok {
		if imp := importPathOf(f, base.Name); imp != "" {
			if name, ok := blockingStdlibFuncs[imp+"."+sel.Sel.Name]; ok {
				return fmt.Sprintf("it blocks in %s until shutdown", name)
			}
			return ""
		}
	}
	key := t.m.NamedKey(t.m.TypeOf(p, f, fn, sel.X))
	if methods, ok := blockingStdlibMethods[key]; ok && methods[sel.Sel.Name] {
		return fmt.Sprintf("it blocks in %s.%s until shutdown", key, sel.Sel.Name)
	}
	return ""
}
