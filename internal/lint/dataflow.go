// The interprocedural dataflow substrate for the v3 analyzers (epoch,
// dettaint, shutdownpath). It layers two things on the v2 call graph:
//
//   - reverse edges (Callers), so a changed function summary can requeue
//     exactly the functions whose own summaries depend on it;
//   - a deterministic worklist fixpoint driver: functions are recomputed
//     in sorted-key order, re-enqueued dependents keep that order, and
//     the per-rule iteration count is recorded for BENCH_conflint.json.
//
// Summaries must be monotone over a finite lattice (bumpsAlways flips
// false→true at most once; a taint value appears at most once per slot;
// a blocking fact never un-blocks), so the fixpoint terminates and —
// because both the initial queue and every re-enqueue are ordered — it
// terminates in the same state with findings in the same order on every
// run, sequential or parallel.
//
// Witness paths reuse lockorder's vocabulary: each taintVal carries the
// step-by-step chain (source position first) that realizes the flow, so
// every interprocedural finding prints how the violation happens, not
// just where.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Callers builds (once) the reverse adjacency of the call graph:
// callee key -> sorted, deduplicated caller keys.
func (m *Module) Callers() map[string][]string {
	if m.callers != nil {
		return m.callers
	}
	g := m.Graph()
	rev := make(map[string]map[string]bool)
	for _, key := range g.Keys() {
		for _, cs := range g.Node(key).Out {
			set := rev[cs.Callee]
			if set == nil {
				set = make(map[string]bool)
				rev[cs.Callee] = set
			}
			set[cs.Caller] = true
		}
	}
	out := make(map[string][]string, len(rev))
	for callee, set := range rev {
		callers := make([]string, 0, len(set))
		for c := range set {
			callers = append(callers, c)
		}
		sort.Strings(callers)
		out[callee] = callers
	}
	m.callers = out
	return out
}

// fixpoint drives a summary computation to stability: recompute(key) is
// called for every key in sorted order; when it reports a change, the
// key's callers are re-enqueued (in order, each at most once per round).
// deps, when non-nil, maps a key to extra dependents to re-enqueue
// beyond the call-graph callers (dettaint uses it for field readers).
// The total number of recompute calls is recorded under rule in
// Module.FixpointIters and returned.
func (m *Module) fixpoint(rule string, keys []string, deps func(key string) []string, recompute func(key string) bool) int {
	callers := m.Callers()
	queue := append([]string(nil), keys...)
	sort.Strings(queue)
	queued := make(map[string]bool, len(queue))
	for _, k := range queue {
		queued[k] = true
	}
	known := make(map[string]bool, len(queue))
	for _, k := range queue {
		known[k] = true
	}
	iters := 0
	enqueue := func(k string) {
		if known[k] && !queued[k] {
			queued[k] = true
			queue = append(queue, k)
		}
	}
	for len(queue) > 0 {
		// Drain in sorted batches: the pending set is ordered, processed,
		// and re-enqueues accumulate into the next ordered batch. This
		// keeps the visit order a pure function of the dependency graph.
		batch := queue
		queue = nil
		sort.Strings(batch)
		for _, k := range batch {
			queued[k] = false
		}
		for _, k := range batch {
			iters++
			if !recompute(k) {
				continue
			}
			for _, c := range callers[k] {
				enqueue(c)
			}
			if deps != nil {
				for _, d := range deps(k) {
					enqueue(d)
				}
			}
		}
	}
	m.noteIters(rule, iters)
	return iters
}

// noteIters records a rule's fixpoint iteration count (guarded: the
// parallel runner may warm several module passes concurrently).
func (m *Module) noteIters(rule string, iters int) {
	m.statMu.Lock()
	defer m.statMu.Unlock()
	if m.fixIters == nil {
		m.fixIters = make(map[string]int)
	}
	m.fixIters[rule] += iters
}

// FixpointIters returns a copy of the per-rule fixpoint iteration
// counts accumulated so far (for BENCH_conflint.json).
func (m *Module) FixpointIters() map[string]int {
	m.statMu.Lock()
	defer m.statMu.Unlock()
	out := make(map[string]int, len(m.fixIters))
	for k, v := range m.fixIters {
		out[k] = v
	}
	return out
}

// taintVal is one abstract tainted value: the nondeterminism source it
// descends from plus the witness chain (source first) that carried it
// here. Values are immutable; extend copies.
type taintVal struct {
	src   string // "time.Now", "math/rand", "map iteration order", "runtime.GOMAXPROCS"
	steps []string
}

func (t *taintVal) extend(step string) *taintVal {
	if t == nil {
		return nil
	}
	steps := make([]string, 0, len(t.steps)+1)
	steps = append(steps, t.steps...)
	steps = append(steps, step)
	return &taintVal{src: t.src, steps: steps}
}

// stepf renders one witness step with a module-relative position.
func (m *Module) stepf(pos token.Pos, format string, args ...any) string {
	return fmt.Sprintf(format, args...) + " at " + m.relPos(m.Fset.Position(pos))
}
