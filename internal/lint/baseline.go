// Baseline files: the adoption mechanism for running conflint on a tree
// that is not yet clean. Entries are keyed rule+package+symbol — never
// line numbers — so a baseline survives reformatting while dying with
// the code it described. Parsing is strict: a malformed baseline must
// fail the run loudly, because a baseline that silently parses to
// "suppress nothing" (or worse, JSON `null` parsing to an empty list)
// turns a gating lint run into a no-op without anyone noticing.
package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// BaselineEntry is one suppressed finding.
type BaselineEntry struct {
	Rule    string `json:"rule"`
	Package string `json:"package"`
	Symbol  string `json:"symbol"`
}

// BaselineKey is the suppression key of a finding.
func BaselineKey(rule, pkg, symbol string) string {
	return rule + "\x00" + pkg + "\x00" + symbol
}

// BaselineEntries dedupes and sorts findings into baseline form.
func BaselineEntries(fs []Finding) []BaselineEntry {
	seen := make(map[string]bool, len(fs))
	out := make([]BaselineEntry, 0, len(fs))
	for _, f := range fs {
		k := BaselineKey(f.Rule, f.Package, f.Symbol)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, BaselineEntry{Rule: f.Rule, Package: f.Package, Symbol: f.Symbol})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Package != b.Package {
			return a.Package < b.Package
		}
		return a.Symbol < b.Symbol
	})
	return out
}

// WriteBaseline writes the findings' baseline entries to path.
func WriteBaseline(path string, fs []Finding) error {
	data, err := json.MarshalIndent(BaselineEntries(fs), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBaseline parses and validates a baseline file into a suppression
// set. It rejects anything but a JSON array of entries: `null`, objects,
// and entries with missing or unknown rule names are hard errors, never
// an empty baseline.
func ReadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 || strings.TrimSpace(string(data)) == "null" {
		return nil, fmt.Errorf("baseline %s: not a JSON array of entries (write one with -write-baseline)", path)
	}
	var entries []BaselineEntry
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	known["ignore"] = true // bare-directive findings are baselinable too
	out := make(map[string]bool, len(entries))
	for i, e := range entries {
		if e.Rule == "" {
			return nil, fmt.Errorf("baseline %s: entry %d has no rule", path, i)
		}
		if !known[e.Rule] {
			return nil, fmt.Errorf("baseline %s: entry %d has unknown rule %q (have: %s)", path, i, e.Rule, ruleNames())
		}
		out[BaselineKey(e.Rule, e.Package, e.Symbol)] = true
	}
	return out, nil
}
