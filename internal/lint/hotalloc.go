// The hot-path allocation analyzer: the measure path — everything
// reachable from a function annotated `// conflint:hotpath` in its doc
// comment (the Runner workload entry points and the autopilot window
// loop) — runs once per query per window, so a per-iteration allocation
// there is a per-query allocation. Within loops of hot-path functions
// the analyzer flags the four allocation shapes that hide in plain
// sight:
//
//   - a function literal built per iteration (its capture environment is
//     heap-allocated every pass) — except directly under `go`, where the
//     allocation is per-goroutine, not per-element;
//   - fmt.Sprintf, which allocates its result and boxes its arguments;
//   - string concatenation (`s += x`, `s = s + x`), quadratic in the
//     loop trip count;
//   - append to a function-local slice declared with no capacity, which
//     reallocs its way up instead of a single make([]T, 0, n).
//
// Reachability follows the static call graph, including `go` edges (a
// worker spawned by the hot path is the hot path). Functions the graph
// cannot see into (interface methods, function values) are not flagged —
// consistent with the suite's conservative-resolution policy.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

const hotpathDirective = "conflint:hotpath"

// HotAlloc returns the hot-path allocation analyzer.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name:  "hotalloc",
		Doc:   "loops reachable from conflint:hotpath roots must not allocate per iteration (closures, Sprintf, string concat, append without preallocation)",
		Check: checkHotAlloc,
	}
}

func checkHotAlloc(p *Package) []Finding {
	return p.Mod.interprocFindings(p, "hotalloc", hotAllocModule)
}

func hotAllocModule(m *Module) []Finding {
	g := m.Graph()
	reach := m.hotReachable()
	var out []Finding
	for _, key := range g.Keys() {
		if !reach[key] {
			continue
		}
		node := g.Node(key)
		if node.Fn == nil || node.Fn.decl.Body == nil {
			continue
		}
		out = append(out, m.hotAllocFn(node.Fn, key)...)
	}
	return out
}

// hotReachable returns every function key reachable from a hotpath root.
func (m *Module) hotReachable() map[string]bool {
	g := m.Graph()
	reach := make(map[string]bool)
	var queue []string
	for _, key := range g.Keys() {
		node := g.Node(key)
		if node.Fn != nil && hasHotpathDirective(node.Fn.decl) {
			reach[key] = true
			queue = append(queue, key)
		}
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		node := g.Node(key)
		if node == nil {
			continue
		}
		for _, cs := range node.Out {
			if !reach[cs.Callee] {
				reach[cs.Callee] = true
				queue = append(queue, cs.Callee)
			}
		}
	}
	return reach
}

// hasHotpathDirective reports a conflint:hotpath marker in the doc
// comment of a function declaration.
func hasHotpathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.Contains(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), hotpathDirective) {
			return true
		}
	}
	return false
}

// hotAllocFn flags per-iteration allocations inside one hot function.
func (m *Module) hotAllocFn(fd *funcDecl, key string) []Finding {
	fn, f, p := fd.decl, fd.file, fd.pkg
	fset := m.Fset
	short := m.shortKey(key)
	var out []Finding
	report := func(pos token.Pos, msg, hint string, fixes ...[]TextEdit) {
		pp := fset.Position(pos)
		fnd := Finding{
			Rule: "hotalloc", File: pp.Filename, Line: pp.Line, Col: pp.Column,
			Message: msg, Hint: hint,
		}
		if len(fixes) > 0 {
			fnd.Fixes = fixes[0]
		}
		out = append(out, fnd)
	}

	goLits := make(map[*ast.FuncLit]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				goLits[lit] = true
			}
		}
		return true
	})

	var walk func(n ast.Node, depth int, loop *ast.RangeStmt)
	walk = func(n ast.Node, depth int, loop *ast.RangeStmt) {
		ast.Inspect(n, func(c ast.Node) bool {
			if c == nil || c == n {
				return true
			}
			switch s := c.(type) {
			case *ast.ForStmt:
				// A plain for offers no countable source: no prealloc fix
				// inside it.
				walk(s.Body, depth+1, nil)
				return false
			case *ast.RangeStmt:
				walk(s.Body, depth+1, s)
				return false
			case *ast.FuncLit:
				if depth > 0 && !goLits[s] {
					report(s.Pos(), fmt.Sprintf("hot path %s builds a closure on every loop iteration", short),
						"hoist the function literal out of the loop (or pass the varying values as arguments)", nil)
				}
				// Allocations inside the literal body run when the
				// literal runs, not per enclosing iteration — and its
				// own loops are walked via the call graph when the
				// literal is attributed to this declaration.
				walk(s.Body, 0, nil)
				return false
			case *ast.CallExpr:
				if depth > 0 && isSprintf(f, s) {
					report(s.Pos(), fmt.Sprintf("hot path %s calls fmt.Sprintf inside a loop: one allocation per element", short),
						"format once outside the loop, or use strconv/append-style building")
				}
				if depth > 0 {
					if name, pos, ok := m.bareAppend(p, f, fn, s); ok {
						report(pos, fmt.Sprintf("hot path %s appends to %s inside a loop, but %s was declared without capacity", short, name, name),
							fmt.Sprintf("preallocate: %s := make([]T, 0, n) before the loop", name),
							m.preallocFix(p, f, fn, name, loop))
					}
				}
			case *ast.AssignStmt:
				if depth > 0 && isStringConcat(m, p, f, fn, s) {
					report(s.Pos(), fmt.Sprintf("hot path %s concatenates strings inside a loop: quadratic allocation", short),
						"use a strings.Builder (or collect parts and strings.Join once)")
				}
			}
			return true
		})
	}
	walk(fn.Body, 0, nil)
	return out
}

// preallocFix builds the edit preallocating a capacity-less local slice
// to the enclosing range loop's element count: the innermost loop must
// range over a simple variable or field chain (no calls, not the slice
// itself) whose type supports len, and the declaration must precede the
// loop. Covers the three capacity-less shapes bareAppend admits:
// `var x []T`, `x := []T{}`, `x := make([]T, 0)`.
func (m *Module) preallocFix(p *Package, f *File, fn *ast.FuncDecl, name string, loop *ast.RangeStmt) []TextEdit {
	if loop == nil || !simpleRangeSrc(loop.X, name) {
		return nil
	}
	if !lenCapable(m, p, f, fn, loop.X) {
		return nil
	}
	srcText := exprString(m.Fset, loop.X)
	init, spec, found := localSliceDecl(fn.Body, name)
	if !found {
		return nil
	}
	var declNode ast.Node = spec
	if init != nil {
		declNode = init
	}
	if declNode == nil || declNode.End() >= loop.Pos() {
		return nil
	}
	switch e := init.(type) {
	case nil: // var x []T
		if spec == nil || len(spec.Names) != 1 || len(spec.Values) != 0 {
			return nil
		}
		at, ok := spec.Type.(*ast.ArrayType)
		if !ok || at.Len != nil {
			return nil
		}
		return []TextEdit{{
			File:  f.Path,
			Start: m.offsetOf(spec.Pos()),
			End:   m.offsetOf(spec.End()),
			New:   fmt.Sprintf("%s = make(%s, 0, len(%s))", name, exprString(m.Fset, spec.Type), srcText),
		}}
	case *ast.CompositeLit: // x := []T{}
		if _, isSlice := e.Type.(*ast.ArrayType); !isSlice {
			return nil
		}
		return []TextEdit{{
			File:  f.Path,
			Start: m.offsetOf(e.Pos()),
			End:   m.offsetOf(e.End()),
			New:   fmt.Sprintf("make(%s, 0, len(%s))", exprString(m.Fset, e.Type), srcText),
		}}
	case *ast.CallExpr: // x := make([]T, 0)
		if len(e.Args) != 2 {
			return nil
		}
		at := m.offsetOf(e.Rparen)
		return []TextEdit{{File: f.Path, Start: at, End: at, New: fmt.Sprintf(", len(%s)", srcText)}}
	}
	return nil
}

// simpleRangeSrc admits range sources safe to mention inside a len():
// an identifier or a selector chain of identifiers, not naming the
// slice being grown (evaluating them twice is free and effectless).
func simpleRangeSrc(e ast.Expr, avoid string) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name != avoid
	case *ast.SelectorExpr:
		return simpleRangeSrc(x.X, avoid)
	}
	return false
}

// lenCapable reports whether the expression's resolved type supports
// len(): a slice, array, map, or string. Unresolvable types are not
// fixable (conservative).
func lenCapable(m *Module, p *Package, f *File, fn *ast.FuncDecl, e ast.Expr) bool {
	t := m.Underlying(m.TypeOf(p, f, fn, e))
	switch u := t.Expr.(type) {
	case *ast.ArrayType, *ast.MapType:
		return true
	case *ast.Ident:
		return u.Name == "string"
	}
	return false
}

// isSprintf matches fmt.Sprintf (and Sprint/Sprintln) calls.
func isSprintf(f *File, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok || importPathOf(f, base.Name) != "fmt" {
		return false
	}
	switch sel.Sel.Name {
	case "Sprintf", "Sprint", "Sprintln":
		return true
	}
	return false
}

// isStringConcat matches `s += x` and `s = s + x` where s is a string:
// either its declared type resolves to string, or a string literal
// appears among the operands (the resolver cannot type every local, so
// the literal operand is the syntactic tell).
func isStringConcat(m *Module, p *Package, f *File, fn *ast.FuncDecl, as *ast.AssignStmt) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	concat := false
	switch as.Tok {
	case token.ADD_ASSIGN:
		concat = true
	case token.ASSIGN:
		if bin, ok := as.Rhs[0].(*ast.BinaryExpr); ok && bin.Op == token.ADD {
			if exprString(m.Fset, bin.X) == exprString(m.Fset, as.Lhs[0]) {
				concat = true
			}
		}
	}
	if !concat {
		return false
	}
	if id, ok := m.Underlying(m.TypeOf(p, f, fn, as.Lhs[0])).Expr.(*ast.Ident); ok && id.Name == "string" {
		return true
	}
	return hasStringLit(as.Rhs[0])
}

func hasStringLit(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if bl, ok := n.(*ast.BasicLit); ok && bl.Kind == token.STRING {
			found = true
		}
		return !found
	})
	return found
}

// bareAppend matches `x = append(x, ...)` where x is a slice declared in
// this function with no capacity: `var x []T`, `x := []T{}`, or
// `x := make([]T, 0)`. Slices that arrive as parameters, fields, or
// preallocated makes are left alone.
func (m *Module) bareAppend(p *Package, f *File, fn *ast.FuncDecl, call *ast.CallExpr) (name string, pos token.Pos, ok bool) {
	id, isIdent := call.Fun.(*ast.Ident)
	if !isIdent || id.Name != "append" || len(call.Args) < 2 {
		return "", 0, false
	}
	target, isIdent := call.Args[0].(*ast.Ident)
	if !isIdent {
		return "", 0, false
	}
	decl, _, declared := localSliceDecl(fn.Body, target.Name)
	if !declared || preallocated(decl) {
		return "", 0, false
	}
	return target.Name, call.Pos(), true
}

// localSliceDecl finds how a local name is first declared, returning the
// initializer expression (nil for `var x []T` with no value), the
// ValueSpec when declared by one (for -fix rewrites), and whether a
// slice-shaped declaration was found at all.
func localSliceDecl(body *ast.BlockStmt, name string) (init ast.Expr, spec *ast.ValueSpec, found bool) {
	done := false
	ast.Inspect(body, func(n ast.Node) bool {
		if done {
			return false
		}
		switch s := n.(type) {
		case *ast.ValueSpec:
			for i, id := range s.Names {
				if id.Name != name {
					continue
				}
				if _, isSlice := s.Type.(*ast.ArrayType); s.Type != nil && !isSlice {
					return false
				}
				if i < len(s.Values) {
					init = s.Values[i]
				}
				spec = s
				found, done = true, true
				return false
			}
		case *ast.AssignStmt:
			if s.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != name || len(s.Rhs) != len(s.Lhs) {
					continue
				}
				switch r := s.Rhs[i].(type) {
				case *ast.CompositeLit:
					if _, isSlice := r.Type.(*ast.ArrayType); isSlice {
						init = r
						found, done = true, true
					}
				case *ast.CallExpr:
					if fid, ok := r.Fun.(*ast.Ident); ok && fid.Name == "make" && len(r.Args) > 0 {
						if _, isSlice := r.Args[0].(*ast.ArrayType); isSlice {
							init = r
							found, done = true, true
						}
					}
				}
				return false
			}
		}
		return true
	})
	return init, spec, found
}

// preallocated reports whether a slice initializer reserves capacity:
// make with an explicit cap, make with a nonzero length, or a composite
// literal with elements.
func preallocated(init ast.Expr) bool {
	switch e := init.(type) {
	case *ast.CallExpr:
		if len(e.Args) >= 3 {
			return true
		}
		if len(e.Args) == 2 {
			if bl, ok := e.Args[1].(*ast.BasicLit); ok && bl.Value == "0" {
				return false
			}
			return true
		}
		return false
	case *ast.CompositeLit:
		return len(e.Elts) > 0
	}
	return false
}
