// The readpath analyzer: the closing of the loop between PR 5's what-if
// read session and the v3 epoch rule. The engine (and the shard cluster)
// serve what-if estimation under an RLock of the mutex that guards the
// conflint:epoch config-bearing fields — a *read session*. The contract:
// nothing reachable while that read session is held may write an epoch
// field. A write would mutate the very configuration the session is
// validating its cache entries against, under a lock mode that does not
// even exclude other readers.
//
// Mechanics: the guard mutexes are derived from the epoch fields' own
// conflint:guardedby annotations (no new annotation to drift out of
// sync); every RLock-held interval of such a mutex is a read session;
// the effect analysis (effects.go) supplies, for every function callable
// from a session, the set of epoch-field writes it transitively performs
// — including writes the re-rooting could not attribute ("escaped"),
// which are deliberately kept rather than discharged. Findings anchor at
// the write itself, with a witness from the RLock through the call chain
// to the write; each write position is reported once, from the first
// session that reaches it (sessions are visited in deterministic order).
//
// Conservatism: deferred calls inside a session run at return time —
// after a non-deferred RUnlock — and are skipped (a deferred RUnlock
// extends the session to the body end, where position-based containment
// already covers later calls); go-spawned calls are the spawned
// goroutine's problem (and its own lock acquisition's); dynamic calls
// contribute nothing, as everywhere in the suite.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// ReadPath returns the read-session purity analyzer.
func ReadPath() *Analyzer {
	return &Analyzer{
		Name:  "readpath",
		Doc:   "functions reachable while an epoch-guarding RLock read session is held must not write conflint:epoch config-bearing fields",
		Check: func(p *Package) []Finding { return p.Mod.interprocFindings(p, "readpath", readPathModule) },
	}
}

func readPathModule(m *Module) []Finding {
	es := effectsOf(m)
	if len(es.sessions) == 0 {
		return nil
	}
	g := m.Graph()
	// Sessions come out of buildEffects in deterministic order (sorted
	// holder keys, source-order intervals); keep that order so the
	// first-session-wins dedup below is stable.
	sessions := append([]readSession(nil), es.sessions...)
	sort.SliceStable(sessions, func(i, j int) bool {
		if sessions[i].key != sessions[j].key {
			return sessions[i].key < sessions[j].key
		}
		return sessions[i].interval.start < sessions[j].interval.start
	})

	seen := make(map[token.Pos]bool) // write origins already reported
	var out []Finding
	report := func(s readSession, e effect, chain []string) {
		if e.epoch.typ == "" || seen[e.pos] {
			return
		}
		seen[e.pos] = true
		pos := m.Fset.Position(e.pos)
		witness := append([]string{
			m.stepf(s.interval.start, "%s acquires %s via RLock (read session)", m.shortKey(s.key), m.shortKey(s.class)),
		}, chain...)
		out = append(out, Finding{
			Rule: "readpath", File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: fmt.Sprintf("conflint:epoch field %s.%s is written while the RLock read session on %s (held by %s) is open: a read session must not mutate the configuration it is validating against",
				m.shortKey(e.epoch.typ), e.epoch.field, m.shortKey(s.class), m.shortKey(s.key)),
			Hint:    "move the write out of the read session, or upgrade the session to a write lock and bump the epoch",
			Witness: witness,
		})
	}

	for _, s := range sessions {
		node := g.Node(s.key)
		if node == nil || node.Fn == nil {
			continue
		}
		// Direct writes by the session holder inside the interval.
		for _, e := range es.local[s.key] {
			if e.epoch.typ != "" && s.interval.start < e.pos && e.pos < s.interval.end {
				report(s, e, e.steps)
			}
		}
		// Transitive writes through calls made inside the interval.
		for _, cs := range node.Out {
			if cs.Go || cs.Defer || cs.Pos <= s.interval.start || cs.Pos >= s.interval.end {
				continue
			}
			step := m.stepf(cs.Pos, "%s calls %s", m.shortKey(s.key), m.shortKey(cs.Callee))
			for _, e := range es.sums[cs.Callee] {
				if e.epoch.typ != "" {
					report(s, e, append([]string{step}, e.steps...))
				}
			}
		}
	}
	return out
}
