package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts golden expectations from fixture sources. Each
// `// want "regexp"` names a finding that must be reported on its line;
// every reported finding must be named by a want.
var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

type wantSpec struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func loadWants(t *testing.T, m *Module) []*wantSpec {
	t.Helper()
	var out []*wantSpec
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for i, line := range f.lines {
				sm := wantRe.FindStringSubmatch(line)
				if sm == nil {
					continue
				}
				re, err := regexp.Compile(sm[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", f.Path, i+1, sm[1], err)
				}
				out = append(out, &wantSpec{file: f.Path, line: i + 1, pattern: re})
			}
		}
	}
	return out
}

// TestFixtures runs ALL analyzers over each fixture package and requires
// an exact, bidirectional match between findings and want expectations —
// running every rule on every fixture also proves the rules do not
// false-positive on each other's material.
func TestFixtures(t *testing.T) {
	dirs, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if !d.IsDir() || d.Name() == "ignore" || d.Name() == "goleakbare" {
			continue // these fixtures pin line numbers in their own tests
		}
		t.Run(d.Name(), func(t *testing.T) {
			m, err := LoadFixture(filepath.Join("testdata", "src", d.Name()))
			if err != nil {
				t.Fatal(err)
			}
			findings := Run(m, All())
			wants := loadWants(t, m)
			for _, f := range findings {
				ok := false
				for _, w := range wants {
					if w.file == f.File && w.line == f.Line && !w.matched && w.pattern.MatchString(f.Message) {
						w.matched = true
						ok = true
						break
					}
				}
				if !ok {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: expected a finding matching %q, got none",
						w.file, w.line, w.pattern)
				}
			}
		})
	}
}

// TestBareIgnoreDirective checks that a reason-less directive is a
// finding and suppresses nothing.
func TestBareIgnoreDirective(t *testing.T) {
	m, err := LoadFixture(filepath.Join("testdata", "src", "ignore"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, All())
	if len(findings) != 2 {
		t.Fatalf("want 2 findings (bare directive + unsuppressed discard), got %d: %v", len(findings), findings)
	}
	if findings[0].Rule != "ignore" || findings[0].Line != 11 {
		t.Errorf("want [ignore] at line 11, got %s", findings[0])
	}
	if findings[1].Rule != "errcheck" || findings[1].Line != 12 {
		t.Errorf("want [errcheck] at line 12, got %s", findings[1])
	}
}

func TestByNames(t *testing.T) {
	as, err := ByNames("lock,errcheck")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "lock" || as[1].Name != "errcheck" {
		t.Errorf("ByNames(lock,errcheck) = %v", as)
	}
	if _, err := ByNames("nosuchrule"); err == nil {
		t.Error("ByNames(nosuchrule) should fail")
	}
	all, err := ByNames("")
	if err != nil || len(all) != 12 {
		t.Errorf("ByNames(\"\") = %d analyzers, err %v; want 12", len(all), err)
	}
	if _, err := ByNames("lock,lock"); err == nil || !strings.Contains(err.Error(), "duplicate rule") {
		t.Errorf("ByNames(lock,lock) = %v; want duplicate-rule error", err)
	}
	if _, err := ByNames("lock,,errcheck"); err == nil || !strings.Contains(err.Error(), "empty rule name") {
		t.Errorf("ByNames(lock,,errcheck) = %v; want empty-name error", err)
	}
	if _, err := ByNames("nosuchrule"); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Errorf("ByNames(nosuchrule) = %v; want error listing known rules (incl. epoch)", err)
	}
}

// TestRenderers smoke-tests the two output formats on a fixture run.
func TestRenderers(t *testing.T) {
	m, err := LoadFixture(filepath.Join("testdata", "src", "errcheck"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, All())
	if len(findings) == 0 {
		t.Fatal("errcheck fixture produced no findings")
	}
	text := RenderText(m, findings, true)
	if !strings.Contains(text, "[errcheck]") || !strings.Contains(text, "fix: ") {
		t.Errorf("hints rendering missing pieces:\n%s", text)
	}
	j, err := RenderJSON(m, findings)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j, `"rule": "errcheck"`) || strings.Contains(j, m.Root) {
		t.Errorf("JSON rendering wrong (want relative paths, errcheck rule):\n%s", j)
	}
}
