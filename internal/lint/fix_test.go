package lint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// fixableSrc exercises every mechanically-fixable finding class: the
// three capacity-less slice shapes under a hotpath loop, the two
// errcheck discard shapes, a stale ignore directive, and a label-less
// sink directive.
const fixableSrc = `package fixable

import "os"

// conflint:hotpath
func collect(items []string) ([]string, []string, []string) {
	var a []string
	b := []string{}
	c := make([]string, 0)
	for _, it := range items {
		a = append(a, it)
		b = append(b, it)
		c = append(c, it)
	}
	return a, b, c
}

func cleanup() {
	os.Remove("a")
	_ = os.Remove("b")
}

// conflint:ignore this directive outlived the code it excused
func idle() {}

// conflint:sink
func render(rows []string) string {
	out := ""
	for _, r := range rows {
		out += r
	}
	return out
}
`

func writeFixture(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFixEndToEnd drives the whole engine over every fixable class:
// plan, write, re-lint to zero findings, prove idempotence, and build
// the fixed tree.
func TestFixEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeFixture(t, dir, "fixable.go", fixableSrc)

	m, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, All())
	if len(findings) != 7 {
		t.Fatalf("want 7 findings (3 hotalloc, 2 errcheck, 1 stale ignore, 1 bare sink), got %d:\n%v", len(findings), findings)
	}
	plan, err := PlanFixes(m, findings)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Applied) != 7 || len(plan.Dropped) != 0 {
		t.Fatalf("want 7 applied / 0 dropped, got %d / %d", len(plan.Applied), len(plan.Dropped))
	}
	if err := plan.Write(); err != nil {
		t.Fatal(err)
	}

	fixed, err := os.ReadFile(filepath.Join(dir, "fixable.go"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(fixed)
	for _, frag := range []string{
		"var a = make([]string, 0, len(items))",
		"b := make([]string, 0, len(items))",
		"c := make([]string, 0, len(items))",
		"_ = os.Remove(\"a\") // conflint:ignore TODO: justify this error discard",
		"_ = os.Remove(\"b\") // conflint:ignore TODO: justify this error discard",
		"// conflint:sink render",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("fixed source missing %q:\n%s", frag, got)
		}
	}
	if strings.Contains(got, "outlived the code") {
		t.Errorf("stale directive not deleted:\n%s", got)
	}

	// The fixed tree re-lints clean and a second pass is a no-op.
	m2, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	after := Run(m2, All())
	if len(after) != 0 {
		t.Fatalf("fixed tree still has findings: %v", after)
	}
	plan2, err := PlanFixes(m2, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan2.Applied) != 0 || len(plan2.Files) != 0 {
		t.Fatalf("second fix pass is not a no-op: %d applied", len(plan2.Applied))
	}

	// The fixed tree compiles.
	writeFixture(t, dir, "go.mod", "module fixable\n\ngo 1.21\n")
	cmd := exec.Command("go", "build", "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("fixed tree does not build: %v\n%s", err, out)
	}
}

// TestStaleIgnore pins the stale-directive contract: a reasoned
// directive that suppresses a finding is silent, one that suppresses
// nothing is a finding with a deletion fix — but only when the full
// rule set runs, since a subset cannot know what the directive was
// written for.
func TestStaleIgnore(t *testing.T) {
	const src = `package stale

import "os"

func touch() {
	_ = os.Remove("x") // conflint:ignore best-effort cleanup of a scratch file
}

// conflint:ignore written for code that moved away
func quiet() {}
`
	dir := t.TempDir()
	writeFixture(t, dir, "stale.go", src)

	m, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(m, All())
	if len(findings) != 1 || findings[0].Rule != "ignore" || findings[0].Line != 9 {
		t.Fatalf("want exactly the stale-ignore finding at line 9, got %v", findings)
	}
	if !strings.Contains(findings[0].Message, "suppresses nothing") || len(findings[0].Fixes) != 1 {
		t.Fatalf("stale finding malformed: %+v", findings[0])
	}

	// Under a rule subset the gate is off: no stale reporting (and the
	// used directive still suppresses).
	m2, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sub := Run(m2, []*Analyzer{ErrCheck()}); len(sub) != 0 {
		t.Fatalf("subset run should report nothing, got %v", sub)
	}

	// The fix deletes the directive; the tree re-lints clean.
	plan, err := PlanFixes(m, findings)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Write(); err != nil {
		t.Fatal(err)
	}
	m3, err := LoadFixture(dir)
	if err != nil {
		t.Fatal(err)
	}
	if after := Run(m3, All()); len(after) != 0 {
		t.Fatalf("fixed tree still has findings: %v", after)
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "stale.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(fixed), "moved away") {
		t.Errorf("stale directive survived the fix:\n%s", fixed)
	}
}

// TestPureWitnessShape pins the effect-summary witness: the call chain
// from the declared-pure root to the function performing the effect,
// ending at the write itself.
func TestPureWitnessShape(t *testing.T) {
	m, err := LoadFixture(filepath.Join("testdata", "src", "pure"))
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(m, All())

	direct := findingWith(t, fs, "BadWrite is declared conflint:pure")
	wantWitness(t, direct, "fixture.Registry.BadWrite writes r.entries[k]")

	chain := findingWith(t, fs, "BadTransitive is declared conflint:pure")
	wantWitness(t, chain,
		"fixture.Registry.BadTransitive calls fixture.tally",
		"fixture.tally calls fixture.note",
		"fixture.note writes package-level fixture.hits")
}

// TestReadPathWitnessShape pins the read-session witness: the RLock
// acquisition, the call into the mutator, and the epoch write.
func TestReadPathWitnessShape(t *testing.T) {
	m, err := LoadFixture(filepath.Join("testdata", "src", "readpath"))
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(m, All())
	f := findingWith(t, fs, "held by fixture.Store.BadTransitiveWrite")
	wantWitness(t, f,
		"acquires fixture.Store.mu via RLock (read session)",
		"BadTransitiveWrite calls fixture.Store.grow",
		"fixture.Store.grow writes fixture.Store.catalog (conflint:epoch)")
}

// TestRenderSARIF smoke-tests the SARIF renderer: valid version, rule
// metadata, results with module-relative URIs.
func TestRenderSARIF(t *testing.T) {
	m, err := LoadFixture(filepath.Join("testdata", "src", "errcheck"))
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(m, All())
	if len(fs) == 0 {
		t.Fatal("errcheck fixture produced no findings")
	}
	out, err := RenderSARIF(m, All(), fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		`"version": "2.1.0"`,
		`"name": "conflint"`,
		`"ruleId": "errcheck"`,
		`"id": "pure"`,
		`"startLine"`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("SARIF output missing %q", frag)
		}
	}
	if strings.Contains(out, m.Root) {
		t.Error("SARIF URIs should be module-relative, found absolute root")
	}
}
