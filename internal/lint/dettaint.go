// The determinism-taint analyzer: the interprocedural generalization of
// the determinism rule. The per-package rule bans nondeterminism sources
// syntactically inside report-producing packages; dettaint tracks the
// *values* those sources produce as they flow through assignments,
// calls, returns, and struct fields, and reports them only where they
// can change rendered bytes: at report/artifact/audit sinks.
//
// Sources (the taint lattice's non-bottom elements, one per origin):
//
//	time.Now / Since / Until / Tick   wall-clock
//	math/rand package-level funcs     global rand source
//	runtime.GOMAXPROCS / NumCPU       parallelism-dependent values
//	map iteration (collected slices)  randomized range order
//
// Sinks are declared with a doc-comment directive on the function:
//
//	// conflint:sink <label>
//
// (the label is mandatory — a bare directive is a finding). A finding
// is reported when (a) a tainted value is passed as an argument to a
// sink function, anywhere in the module, or (b) a source is read or a
// tainted struct field is loaded inside the sink's call closure — the
// functions a sink provably reaches, where the bytes are being built.
//
// Sanitizers: sorting clears map-iteration-order taint (sorted output
// no longer depends on range order); len/cap/make/new produce clean
// values. Nothing clears wall-clock or rand taint — those need a
// reasoned conflint:ignore where observability genuinely wants them.
//
// Per-function summaries (does the return value carry taint? does it
// forward taint from parameter i?) and the module-wide tainted-field
// set are driven to a fixpoint on the deterministic worklist
// (dataflow.go); witnesses chain source → assignments → fields → sink.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

const sinkDirective = "conflint:sink"

// DetTaint returns the determinism-taint analyzer.
func DetTaint() *Analyzer {
	return &Analyzer{
		Name:  "dettaint",
		Doc:   "nondeterminism sources (wall clock, global rand, map order, GOMAXPROCS) must not flow into conflint:sink report functions",
		Check: func(p *Package) []Finding { return p.Mod.interprocFindings(p, "dettaint", detTaintModule) },
	}
}

// dtVal is one abstract value: an optional taint plus the set of
// parameters it may forward (a bitmask over the enclosing function's
// parameters, for summaries).
type dtVal struct {
	t      *taintVal
	params uint64
}

func (v dtVal) union(o dtVal) dtVal {
	out := dtVal{t: v.t, params: v.params | o.params}
	if out.t == nil {
		out.t = o.t
	}
	return out
}

// dtSummary is one function's taint summary.
type dtSummary struct {
	ret       *taintVal // non-nil: the return value may carry this taint
	retParams uint64    // the return value may forward these parameters
}

// dtAnalysis is the module-wide fixpoint state.
type dtAnalysis struct {
	m       *Module
	sums    map[string]*dtSummary
	fields  map[fieldKey]*taintVal
	readers map[fieldKey][]string // field -> functions that read it
	written map[string][]fieldKey // function -> fields it assigns
	// sink declarations and the sink call closure.
	roots   map[string]string // sink function key -> label
	via     map[string]sinkHop
	changed bool // set when fields gained taint during one recompute
}

type sinkHop struct {
	from string
	pos  token.Pos
	root string
}

// sourceCall classifies a call as a nondeterminism source ("" if not).
func sourceCall(f *File, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	switch importPathOf(f, base.Name) {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since", "Until", "Tick":
			return "time." + sel.Sel.Name
		}
	case "math/rand", "math/rand/v2":
		if bannedRandFunc(sel.Sel.Name) {
			return "rand." + sel.Sel.Name
		}
	case "runtime":
		switch sel.Sel.Name {
		case "GOMAXPROCS", "NumCPU":
			return "runtime." + sel.Sel.Name
		}
	}
	return ""
}

const mapOrderSrc = "map iteration order"

// scanSinks collects conflint:sink directives from function doc
// comments: key -> label, plus findings for label-less directives.
func scanSinks(m *Module) (map[string]string, []Finding) {
	roots := make(map[string]string)
	var bare []Finding
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, fn := range fileFuncs(f) {
				if fn.Doc == nil {
					continue
				}
				for _, c := range fn.Doc.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, sinkDirective)
					if !ok {
						continue
					}
					label := strings.TrimSpace(strings.TrimLeft(rest, " \t—-"))
					if label == "" {
						// The fix labels the sink after the function it
						// marks — mechanical, and it arms the rule: the
						// re-lint then audits the sink's call closure.
						at := m.offsetOf(c.End())
						pos := m.Fset.Position(c.Pos())
						bare = append(bare, Finding{
							Rule: "dettaint", File: f.Path, Line: pos.Line, Col: pos.Column,
							Message: "conflint:sink needs a label (// conflint:sink <what this renders>)",
							Hint:    "name the artifact this function produces",
							Fixes:   []TextEdit{{File: f.Path, Start: at, End: at, New: " " + fn.Name.Name}},
						})
						continue
					}
					roots[funcKey(p, fn)] = label
				}
			}
		}
	}
	return roots, bare
}

// sinkClosure BFSes from the sink roots over resolved, non-go call
// edges, recording for each reached function the hop that discovered it
// (for witness chains). Roots are processed in sorted order so the
// discovered parents are deterministic.
func (a *dtAnalysis) sinkClosure() {
	a.via = make(map[string]sinkHop)
	g := a.m.Graph()
	var rootKeys []string
	for k := range a.roots {
		rootKeys = append(rootKeys, k)
	}
	sort.Strings(rootKeys)
	for _, root := range rootKeys {
		queue := []string{root}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			node := g.Node(cur)
			if node == nil {
				continue
			}
			for _, cs := range node.Out {
				if cs.Go {
					continue
				}
				if _, seen := a.via[cs.Callee]; seen {
					continue
				}
				if _, isRoot := a.roots[cs.Callee]; isRoot {
					continue
				}
				a.via[cs.Callee] = sinkHop{from: cur, pos: cs.Pos, root: root}
				queue = append(queue, cs.Callee)
			}
		}
	}
}

// inClosure reports the root whose closure contains key ("" if none).
func (a *dtAnalysis) inClosure(key string) string {
	if _, ok := a.roots[key]; ok {
		return key
	}
	if hop, ok := a.via[key]; ok {
		return hop.root
	}
	return ""
}

// closureChain renders the call chain from a sink root down to key.
func (a *dtAnalysis) closureChain(key string) []string {
	var hops []string
	cur := key
	for {
		hop, ok := a.via[cur]
		if !ok {
			break
		}
		hops = append(hops, a.m.stepf(hop.pos, "%s calls %s", a.m.shortKey(hop.from), a.m.shortKey(cur)))
		cur = hop.from
	}
	root := cur
	out := []string{fmt.Sprintf("report sink %s (%s)", a.m.shortKey(root), a.roots[root])}
	for i := len(hops) - 1; i >= 0; i-- {
		out = append(out, hops[i])
	}
	return out
}

// scanFieldDeps builds the field-reader and field-writer indexes that
// let the fixpoint requeue exactly the functions a newly tainted field
// can reach.
func (a *dtAnalysis) scanFieldDeps() {
	m := a.m
	g := m.Graph()
	a.readers = make(map[fieldKey][]string)
	a.written = make(map[string][]fieldKey)
	readSet := make(map[fieldKey]map[string]bool)
	for _, key := range g.Keys() {
		node := g.Node(key)
		if node == nil || node.Fn == nil || node.Fn.decl.Body == nil {
			continue
		}
		fd := node.Fn
		writes := make(map[ast.Expr]bool)
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, l := range as.Lhs {
					writes[l] = true
				}
			}
			return true
		})
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			tk := m.NamedKey(m.TypeOf(fd.pkg, fd.file, fd.decl, sel.X))
			if tk == "" {
				return true
			}
			fk := fieldKey{tk, sel.Sel.Name}
			if writes[ast.Expr(sel)] {
				a.written[key] = append(a.written[key], fk)
			} else {
				if readSet[fk] == nil {
					readSet[fk] = make(map[string]bool)
				}
				readSet[fk][key] = true
			}
			return true
		})
	}
	for fk, set := range readSet {
		var ks []string
		for k := range set {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		a.readers[fk] = ks
	}
}

// dtCtx walks one function body.
type dtCtx struct {
	a      *dtAnalysis
	fd     *funcDecl
	key    string
	env    map[string]dtVal
	params map[string]int
	ret    dtVal
	mapRng int // depth of enclosing range-over-map statements
	report func(pos token.Pos, msg string, witness []string)
}

func (a *dtAnalysis) newCtx(key string, report func(pos token.Pos, msg string, witness []string)) *dtCtx {
	node := a.m.Graph().Node(key)
	if node == nil || node.Fn == nil || node.Fn.decl.Body == nil {
		return nil
	}
	dc := &dtCtx{a: a, fd: node.Fn, key: key, env: make(map[string]dtVal), params: make(map[string]int), report: report}
	i := 0
	if ps := node.Fn.decl.Type.Params; ps != nil {
		for _, fld := range ps.List {
			for _, n := range fld.Names {
				if i < 64 {
					dc.params[n.Name] = i
				}
				i++
			}
		}
	}
	return dc
}

func (dc *dtCtx) run() {
	dc.walkStmts(dc.fd.decl.Body.List)
}

func (dc *dtCtx) walkStmts(list []ast.Stmt) {
	for _, s := range list {
		dc.walkStmt(s)
	}
}

func (dc *dtCtx) walkStmt(s ast.Stmt) {
	m := dc.a.m
	switch s := s.(type) {
	case *ast.AssignStmt:
		n := len(s.Lhs)
		var vals []dtVal
		if len(s.Rhs) == n {
			for _, r := range s.Rhs {
				vals = append(vals, dc.eval(r))
			}
		} else {
			// Multi-assign from one call: every target shares the
			// call's taint (coarse, conservative toward reporting at
			// the summary level but sinks see the same value anyway).
			v := dc.eval(s.Rhs[0])
			for i := 0; i < n; i++ {
				vals = append(vals, v)
			}
		}
		for i, l := range s.Lhs {
			dc.assign(l, vals[i], s.Rhs[min(i, len(s.Rhs)-1)])
		}
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if ok && sortCall(dc.fd.file, call) && len(call.Args) > 0 {
			// A sort sanitizes map-iteration-order taint on its target.
			if id, ok := rootExprIdent(call.Args[0]); ok {
				if v, has := dc.env[id]; has && v.t != nil && v.t.src == mapOrderSrc {
					v.t = nil
					dc.env[id] = v
				}
			}
			return
		}
		dc.eval(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			dc.ret = dc.ret.union(dc.eval(r))
		}
	case *ast.IfStmt:
		if s.Init != nil {
			dc.walkStmt(s.Init)
		}
		dc.eval(s.Cond)
		dc.walkStmts(s.Body.List)
		if s.Else != nil {
			dc.walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			dc.walkStmt(s.Init)
		}
		if s.Cond != nil {
			dc.eval(s.Cond)
		}
		dc.walkStmts(s.Body.List)
		if s.Post != nil {
			dc.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		v := dc.eval(s.X)
		isMap := dc.a.m.IsMap(m.TypeOf(dc.fd.pkg, dc.fd.file, dc.fd.decl, s.X))
		// Range variables inherit the ranged value's taint.
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				dc.env[id.Name] = v
			}
		}
		if isMap {
			dc.mapRng++
		}
		dc.walkStmts(s.Body.List)
		if isMap {
			dc.mapRng--
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			dc.walkStmt(s.Init)
		}
		if s.Tag != nil {
			dc.eval(s.Tag)
		}
		dc.walkStmts(s.Body.List)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			dc.walkStmt(s.Init)
		}
		dc.walkStmt(s.Assign)
		dc.walkStmts(s.Body.List)
	case *ast.CaseClause:
		for _, e := range s.List {
			dc.eval(e)
		}
		dc.walkStmts(s.Body)
	case *ast.SelectStmt:
		dc.walkStmts(s.Body.List)
	case *ast.CommClause:
		if s.Comm != nil {
			dc.walkStmt(s.Comm)
		}
		dc.walkStmts(s.Body)
	case *ast.BlockStmt:
		dc.walkStmts(s.List)
	case *ast.LabeledStmt:
		dc.walkStmt(s.Stmt)
	case *ast.SendStmt:
		dc.eval(s.Chan)
		dc.eval(s.Value)
	case *ast.IncDecStmt:
		dc.eval(s.X)
	case *ast.DeferStmt:
		dc.eval(s.Call)
	case *ast.GoStmt:
		dc.eval(s.Call)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						dc.assign(name, dc.eval(vs.Values[i]), vs.Values[i])
					}
				}
			}
		}
	}
}

// assign records one value landing in a target: locals update the
// environment, resolvable struct fields join the module-wide tainted
// field set (requeuing their readers via the fixpoint's deps hook).
func (dc *dtCtx) assign(target ast.Expr, v dtVal, src ast.Expr) {
	m := dc.a.m
	// Appends inside a map range carry iteration-order taint.
	if dc.mapRng > 0 && v.t == nil && isAppendCall(src) {
		v.t = &taintVal{src: mapOrderSrc, steps: []string{m.stepf(src.Pos(), "collected during map iteration")}}
	}
	switch t := target.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		old := dc.env[t.Name]
		dc.env[t.Name] = old.union(v)
	case *ast.SelectorExpr:
		if v.t == nil {
			return
		}
		tk := m.NamedKey(m.TypeOf(dc.fd.pkg, dc.fd.file, dc.fd.decl, t.X))
		if tk == "" {
			return
		}
		fk := fieldKey{tk, t.Sel.Name}
		if dc.a.fields[fk] == nil {
			dc.a.fields[fk] = v.t.extend(m.stepf(target.Pos(), "assigned to %s.%s", m.shortKey(fk.typ), fk.field))
			dc.a.changed = true
		}
	case *ast.IndexExpr:
		dc.eval(t.X)
		dc.eval(t.Index)
	case *ast.StarExpr:
		dc.eval(t.X)
	}
}

func isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

func rootExprIdent(e ast.Expr) (string, bool) {
	id := rootIdent(e)
	if id == nil {
		return "", false
	}
	return id.Name, true
}

// eval computes the abstract value of an expression, reporting sources,
// tainted field reads, and tainted sink arguments when in report mode.
func (dc *dtCtx) eval(e ast.Expr) dtVal {
	switch e := e.(type) {
	case nil:
		return dtVal{}
	case *ast.Ident:
		if i, ok := dc.params[e.Name]; ok {
			if v, has := dc.env[e.Name]; has {
				return v.union(dtVal{params: 1 << uint(i)})
			}
			return dtVal{params: 1 << uint(i)}
		}
		return dc.env[e.Name]
	case *ast.ParenExpr:
		return dc.eval(e.X)
	case *ast.StarExpr:
		return dc.eval(e.X)
	case *ast.UnaryExpr:
		return dc.eval(e.X)
	case *ast.BinaryExpr:
		return dc.eval(e.X).union(dc.eval(e.Y))
	case *ast.IndexExpr:
		v := dc.eval(e.X)
		dc.eval(e.Index)
		return v
	case *ast.SliceExpr:
		return dc.eval(e.X)
	case *ast.KeyValueExpr:
		return dc.eval(e.Value)
	case *ast.CompositeLit:
		var v dtVal
		for _, el := range e.Elts {
			v = v.union(dc.eval(el))
		}
		return v
	case *ast.TypeAssertExpr:
		return dc.eval(e.X)
	case *ast.SelectorExpr:
		return dc.evalSelector(e)
	case *ast.CallExpr:
		return dc.evalCall(e)
	case *ast.FuncLit:
		return dtVal{} // judged at its own call sites when resolvable
	default:
		return dtVal{}
	}
}

// evalSelector handles field reads: a load of a module struct field that
// the fixpoint marked tainted yields that taint (and is a finding inside
// a sink closure).
func (dc *dtCtx) evalSelector(sel *ast.SelectorExpr) dtVal {
	m := dc.a.m
	base := dc.eval(sel.X)
	tk := m.NamedKey(m.TypeOf(dc.fd.pkg, dc.fd.file, dc.fd.decl, sel.X))
	if tk == "" {
		return base
	}
	fk := fieldKey{tk, sel.Sel.Name}
	t := dc.a.fields[fk]
	if t == nil {
		return base
	}
	v := base.union(dtVal{t: t.extend(m.stepf(sel.Pos(), "read in %s", m.shortKey(dc.key)))})
	if dc.report != nil {
		if root := dc.a.inClosure(dc.key); root != "" {
			witness := append(dc.a.closureChain(dc.key), t.steps...)
			witness = append(witness, m.stepf(sel.Pos(), "read while rendering"))
			dc.report(sel.Pos(), fmt.Sprintf("tainted field %s.%s (source: %s) is read inside the call closure of report sink %s (%s): rendered bytes would vary run to run",
				m.shortKey(fk.typ), fk.field, t.src, m.shortKey(root), dc.a.roots[root]), witness)
		}
	}
	return v
}

func (dc *dtCtx) evalCall(call *ast.CallExpr) dtVal {
	m := dc.a.m
	f := dc.fd.file
	// Builtins that never carry taint / always merge their args.
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch id.Name {
		case "len", "cap", "make", "new":
			for _, a := range call.Args {
				dc.eval(a)
			}
			return dtVal{}
		case "append":
			var v dtVal
			for _, a := range call.Args {
				v = v.union(dc.eval(a))
			}
			return v
		}
	}
	// Nondeterminism sources.
	if src := sourceCall(f, call); src != "" {
		t := &taintVal{src: src, steps: []string{m.stepf(call.Pos(), "%s called in %s", src, m.shortKey(dc.key))}}
		if dc.report != nil {
			if root := dc.a.inClosure(dc.key); root != "" {
				witness := append(dc.a.closureChain(dc.key), m.stepf(call.Pos(), "%s read while rendering", src))
				dc.report(call.Pos(), fmt.Sprintf("%s inside the call closure of report sink %s (%s): the rendered artifact would embed a nondeterministic value",
					src, m.shortKey(root), dc.a.roots[root]), witness)
			}
		}
		return dtVal{t: t}
	}
	// Module callee with a summary.
	if key := m.calleeKey(dc.fd.pkg, f, dc.fd.decl, call); key != "" {
		argVals := make([]dtVal, len(call.Args))
		for i, a := range call.Args {
			argVals[i] = dc.eval(a)
		}
		if label, isSink := dc.a.roots[key]; isSink && dc.report != nil {
			for i, av := range argVals {
				if av.t == nil {
					continue
				}
				witness := append(append([]string(nil), av.t.steps...),
					m.stepf(call.Args[i].Pos(), "passed to report sink %s (%s)", m.shortKey(key), label))
				dc.report(call.Args[i].Pos(), fmt.Sprintf("tainted value (source: %s) passed to report sink %s (%s): rendered bytes would vary run to run",
					av.t.src, m.shortKey(key), label), witness)
			}
		}
		var out dtVal
		if s := dc.a.sums[key]; s != nil {
			if s.ret != nil {
				out.t = s.ret.extend(m.stepf(call.Pos(), "returned by %s", m.shortKey(key)))
			}
			for i, av := range argVals {
				if i < 64 && s.retParams&(1<<uint(i)) != 0 {
					if out.t == nil && av.t != nil {
						out.t = av.t.extend(m.stepf(call.Pos(), "flows through %s", m.shortKey(key)))
					}
					out.params |= av.params
				}
			}
		}
		return out
	}
	// Unresolved call (stdlib, conversion, function value): taint in,
	// taint out — fmt.Sprintf of a wall-clock value is still wall-clock.
	var v dtVal
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		v = v.union(dc.eval(sel.X))
	}
	for _, a := range call.Args {
		v = v.union(dc.eval(a))
	}
	if v.t != nil {
		v.t = v.t.extend(m.stepf(call.Pos(), "through %s", exprString(m.Fset, call.Fun)))
	}
	return v
}

// recompute runs one function's transfer and folds the result into its
// summary; true when the summary (or the field set) changed.
func (a *dtAnalysis) recompute(key string) bool {
	a.changed = false
	dc := a.newCtx(key, nil)
	if dc == nil {
		return false
	}
	dc.run()
	old := a.sums[key]
	if old == nil {
		old = &dtSummary{}
		a.sums[key] = old
	}
	changed := a.changed
	if old.ret == nil && dc.ret.t != nil {
		old.ret = dc.ret.t
		changed = true
	}
	if grown := old.retParams | dc.ret.params; grown != old.retParams {
		old.retParams = grown
		changed = true
	}
	return changed
}

// detTaintModule runs the whole analysis: sink scan, field-dependency
// scan, summary fixpoint, then one reporting pass.
func detTaintModule(m *Module) []Finding {
	roots, out := scanSinks(m)
	if len(roots) == 0 {
		return out
	}
	a := &dtAnalysis{
		m:      m,
		sums:   make(map[string]*dtSummary),
		fields: make(map[fieldKey]*taintVal),
		roots:  roots,
	}
	a.sinkClosure()
	a.scanFieldDeps()
	g := m.Graph()
	m.fixpoint("dettaint", g.Keys(), func(key string) []string {
		var deps []string
		for _, fk := range a.written[key] {
			if a.fields[fk] != nil {
				deps = append(deps, a.readers[fk]...)
			}
		}
		sort.Strings(deps)
		return deps
	}, a.recompute)

	for _, key := range g.Keys() {
		dc := a.newCtx(key, nil)
		if dc == nil {
			continue
		}
		reported := make(map[token.Pos]bool)
		dc.report = func(pos token.Pos, msg string, witness []string) {
			if reported[pos] {
				return
			}
			reported[pos] = true
			p := m.Fset.Position(pos)
			out = append(out, Finding{
				Rule: "dettaint", File: p.Filename, Line: p.Line, Col: p.Column,
				Message: msg,
				Hint:    "derive the value from simulated measures, sort map-collected slices, or conflint:ignore with a reason if observability genuinely needs it",
				Witness: witness,
			})
		}
		dc.run()
	}
	return out
}
