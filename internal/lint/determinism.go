// The determinism analyzer guards PR 2's headline guarantee: for a given
// seed, every rendered report and artifact is byte-identical at any
// parallelism. Three things break that at the source level, and all three
// have crept into benchmark harnesses before reviewers caught them:
//
//  1. wall-clock reads (time.Now / time.Since) leaking into measurements,
//  2. the global math/rand source (unseeded, and shared across goroutines),
//  3. map iteration feeding ordered output — Go randomizes range order,
//     so a report built directly from a map range differs run to run.
//
// The rule applies to the packages that produce measurements and reports
// (core, workload, autopilot, bench, gateway, shard, and the lint fixture
// packages that opt in by name); engines and daemons may read the clock
// freely.
package lint

import (
	"fmt"
	"go/ast"
)

// determinismScope lists the package *names* under the rule. Scoping by
// name rather than import path keeps fixtures honest: a fixture package
// named `core` is checked exactly like the real one.
var determinismScope = map[string]bool{
	"core":      true,
	"workload":  true,
	"autopilot": true,
	"bench":     true,
	"gateway":   true,
	"shard":     true,
}

// bannedRandFuncs are the math/rand package-level entry points that use
// the global source. Constructors are fine: rand.New(rand.NewSource(seed))
// is exactly the sanctioned pattern.
func bannedRandFunc(name string) bool {
	switch name {
	case "New", "NewSource", "NewZipf":
		return false
	}
	return true
}

// Determinism returns the determinism analyzer.
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "bans wall-clock reads, the global math/rand source, and map iteration feeding ordered output in report-producing packages",
		Check: func(p *Package) []Finding {
			if !determinismScope[p.Name] {
				return nil
			}
			var out []Finding
			for _, f := range p.Files {
				out = append(out, checkDeterminismFile(p, f)...)
			}
			return out
		},
	}
}

func checkDeterminismFile(p *Package, f *File) []Finding {
	var out []Finding
	fset := p.Mod.Fset

	var fn *ast.FuncDecl
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			fn = n
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if base, ok := sel.X.(*ast.Ident); ok {
					switch importPathOf(f, base.Name) {
					case "time":
						switch sel.Sel.Name {
						case "Now", "Since", "Until", "Tick":
							pos := fset.Position(n.Pos())
							out = append(out, Finding{
								Rule: "determinism", File: pos.Filename, Line: pos.Line, Col: pos.Column,
								Message: fmt.Sprintf("time.%s in package %s: wall-clock reads break byte-identical reports; use the simulated clock, or move this out of the report path", sel.Sel.Name, p.Name),
								Hint:    "derive times from engine measures (simulated seconds); wall-clock observability needs a conflint:ignore with a reason",
							})
						}
					case "math/rand", "math/rand/v2":
						if bannedRandFunc(sel.Sel.Name) {
							pos := fset.Position(n.Pos())
							out = append(out, Finding{
								Rule: "determinism", File: pos.Filename, Line: pos.Line, Col: pos.Column,
								Message: fmt.Sprintf("rand.%s uses the global math/rand source in package %s; draw from a seeded *rand.Rand instead", sel.Sel.Name, p.Name),
								Hint:    "thread a rand.New(rand.NewSource(seed)) through the caller",
							})
						}
					}
				}
			}
		case *ast.RangeStmt:
			out = append(out, checkMapRange(p, f, fn, n)...)
		}
		return true
	}
	ast.Inspect(f.AST, walk)
	return out
}

// outputCall reports whether a call writes ordered output: the fmt print
// family or a Write* method (strings.Builder, bytes.Buffer, io.Writer).
func outputCall(f *File, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if base, ok := sel.X.(*ast.Ident); ok && importPathOf(f, base.Name) == "fmt" {
		switch sel.Sel.Name {
		case "Fprintf", "Fprintln", "Fprint", "Printf", "Println", "Print":
			return true
		}
		return false
	}
	switch sel.Sel.Name {
	case "WriteString", "WriteByte", "WriteRune", "Write":
		return true
	}
	return false
}

// sortCall reports whether a call is a sort (sort.* or slices.Sort*).
func sortCall(f *File, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	switch importPathOf(f, base.Name) {
	case "sort":
		return true
	case "slices":
		return len(sel.Sel.Name) >= 4 && sel.Sel.Name[:4] == "Sort"
	}
	return false
}

// checkMapRange flags ranges over maps whose bodies either write output
// directly or collect into a slice that the enclosing function never
// sorts. The sanctioned pattern — collect keys, sort, then iterate the
// sorted slice — passes both branches.
func checkMapRange(p *Package, f *File, fn *ast.FuncDecl, rng *ast.RangeStmt) []Finding {
	m := p.Mod
	t := m.TypeOf(p, f, fn, rng.X)
	if t.zero() || !m.IsMap(t) {
		return nil
	}
	fset := m.Fset

	// Direct output inside the loop body is always order-dependent.
	var outCall *ast.CallExpr
	appends := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if outCall == nil && outputCall(f, call) {
				outCall = call
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
				appends = true
			}
		}
		return true
	})
	if outCall != nil {
		pos := fset.Position(outCall.Pos())
		return []Finding{{
			Rule: "determinism", File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: fmt.Sprintf("map iteration feeds ordered output in package %s: range order is randomized, so the rendered bytes change run to run", p.Name),
			Hint:    "collect the keys, sort them, and iterate the sorted slice",
		}}
	}

	// Collecting into a slice is fine only when the function sorts it
	// afterwards (checked coarsely: any sort call after the range).
	if appends && fn != nil && fn.Body != nil {
		sorted := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && call.Pos() > rng.End() && sortCall(f, call) {
				sorted = true
			}
			return true
		})
		if !sorted {
			pos := fset.Position(rng.Pos())
			return []Finding{{
				Rule: "determinism", File: pos.Filename, Line: pos.Line, Col: pos.Column,
				Message: fmt.Sprintf("map iteration collects into a slice that %s never sorts: downstream consumers observe random order", funcName(fn)),
				Hint:    "sort the collected slice (sort.Strings / sort.Slice) before it escapes",
			}}
		}
	}
	return nil
}

func funcName(fn *ast.FuncDecl) string {
	if fn == nil {
		return "the function"
	}
	return fn.Name.Name
}
