// Package lint implements conflint, the repository's own static-analysis
// suite. It enforces, at the source level, the invariants PR 1 and PR 2
// established by construction and test: the engine's lock discipline, the
// determinism of everything that feeds rendered reports, the atomicity of
// the metrics counters, and the absence of silently dropped errors.
//
// The suite is stdlib-only: packages are parsed with go/parser and
// analyzed syntactically with a lightweight name-resolution layer
// (resolve.go) instead of go/types, so it runs on a bare toolchain with
// no module dependencies. Resolution is deliberately conservative — an
// expression whose type cannot be determined produces no findings — so
// every reported finding is worth reading, at the price of a few
// undetectable corner cases (documented per analyzer).
//
// Findings can be suppressed line-by-line with
//
//	// conflint:ignore <reason>
//
// placed on the offending line or the line directly above. The reason is
// mandatory; a bare directive is itself a finding. Policy (see README
// "Invariants & static analysis"): directives are for provably benign
// cases only — wall-clock observability that never reaches a rendered
// report, best-effort writes to a disconnecting HTTP client — never for
// silencing a rule the code could satisfy.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	// Hint, when non-empty, is a suggested edit (the -hints mode prints
	// it under the offending source line).
	Hint string `json:"hint,omitempty"`
	// Package and Symbol locate the finding structurally (import path
	// and enclosing top-level declaration) — the key baselines use, so
	// a baseline survives reformatting while dying with the code it
	// described.
	Package string `json:"package,omitempty"`
	Symbol  string `json:"symbol,omitempty"`
	// Witness, for interprocedural findings, is the step-by-step path
	// that realizes the violation (lockorder cycle edges).
	Witness []string `json:"witness,omitempty"`
	// Fixes, when non-empty, is a machine-applicable suggested fix: a
	// set of byte-offset edits that together resolve the finding
	// (fix.go applies them under `conflint -fix`). Edits within one
	// finding are applied atomically or not at all.
	Fixes []TextEdit `json:"fixes,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Rule, f.Message)
}

// File is one parsed, non-test Go source file.
type File struct {
	Path string // absolute path
	AST  *ast.File
	// lines is the raw source split by newline, for -hints output.
	lines []string
	// ignores maps a directive's own line number to the directive. A
	// directive suppresses findings on its line and the line below.
	ignores map[int]*ignoreInfo
	// parents maps every AST node to its parent, built on demand.
	parents map[ast.Node]ast.Node
}

// SourceLine returns the 1-based source line, or "".
func (f *File) SourceLine(n int) string {
	if n < 1 || n > len(f.lines) {
		return ""
	}
	return f.lines[n-1]
}

// Parent returns the syntactic parent of a node in this file.
func (f *File) Parent(n ast.Node) ast.Node {
	if f.parents == nil {
		f.parents = make(map[ast.Node]ast.Node)
		var stack []ast.Node
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if len(stack) > 0 {
				f.parents[n] = stack[len(stack)-1]
			}
			stack = append(stack, n)
			return true
		})
	}
	return f.parents[n]
}

// Package is one parsed package directory.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Files      []*File
	Mod        *Module
}

// Module is a loaded source tree: the unit conflint runs over.
type Module struct {
	Root string // directory containing go.mod (or the fixture dir)
	Path string // module path from go.mod ("fixture" for test loads)
	Fset *token.FileSet
	Pkgs []*Package

	idx     *index              // lazy resolution indexes (resolve.go)
	atomics *atomicSets         // lazy module-wide atomic-field sets (atomiccheck.go)
	graph   *CallGraph          // lazy module-wide call graph (callgraph.go)
	callers map[string][]string // lazy reverse call-graph edges (dataflow.go)
	epochs  *epochSets          // lazy epoch annotation sets (epoch.go)
	// inter caches module-wide analyzer results by rule name, so the
	// per-package Check calls of interprocedural rules share one run.
	// interMu guards it: RunParallel warms the cache from worker
	// goroutines (one per interprocedural rule, never two for the same
	// rule), while the sequential path takes the lock uncontended.
	interMu   sync.Mutex
	inter     map[string][]Finding  // conflint:guardedby interMu
	interOnce map[string]*sync.Once // conflint:guardedby interMu
	// statMu guards fixIters, the per-rule fixpoint iteration counts
	// (dataflow.go) reported in BENCH_conflint.json.
	statMu   sync.Mutex
	fixIters map[string]int // conflint:guardedby statMu
	// eff is the module-wide effect-summary state (effects.go), built
	// once under effOnce and shared by the pure and readpath rules.
	effOnce sync.Once
	eff     *effectState
	// usedMu guards usedIgnores: "path:line" of every ignore directive
	// that actually suppressed a finding this run. Most suppression
	// happens in finishRun, but shutdownpath consumes directives at
	// source level during its module pass and records them here.
	usedMu      sync.Mutex
	usedIgnores map[string]bool // conflint:guardedby usedMu
}

// noteIgnoreUsed records that the directive at path:line suppressed a
// finding (stale-ignore detection reads the set in finishRun).
func (m *Module) noteIgnoreUsed(path string, line int) {
	m.usedMu.Lock()
	defer m.usedMu.Unlock()
	if m.usedIgnores == nil {
		m.usedIgnores = make(map[string]bool)
	}
	m.usedIgnores[fmt.Sprintf("%s:%d", path, line)] = true
}

func (m *Module) ignoreUsed(path string, line int) bool {
	m.usedMu.Lock()
	defer m.usedMu.Unlock()
	return m.usedIgnores[fmt.Sprintf("%s:%d", path, line)]
}

// Analyzer is one conflint rule.
type Analyzer struct {
	Name  string
	Doc   string
	Check func(p *Package) []Finding
}

// All returns every analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		LockCheck(),
		Determinism(),
		AtomicCheck(),
		ErrCheck(),
		LockOrder(),
		GoLeak(),
		HotAlloc(),
		Epoch(),
		DetTaint(),
		ShutdownPath(),
		Pure(),
		ReadPath(),
	}
}

// ByNames resolves a comma-separated rule list against All. Unknown,
// empty, and duplicate names are hard errors — a typo in -rules must
// never silently run the wrong (or the same) rule set.
func ByNames(csv string) ([]*Analyzer, error) {
	if csv == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	seen := make(map[string]bool)
	var out []*Analyzer
	for _, n := range strings.Split(csv, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			return nil, fmt.Errorf("empty rule name in %q (have: %s)", csv, ruleNames())
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (have: %s)", n, ruleNames())
		}
		if seen[n] {
			return nil, fmt.Errorf("duplicate rule %q in %q", n, csv)
		}
		seen[n] = true
		out = append(out, a)
	}
	return out, nil
}

func ruleNames() string {
	var ns []string
	for _, a := range All() {
		ns = append(ns, a.Name)
	}
	return strings.Join(ns, ", ")
}

// skippedDirs are never descended into when loading a module.
func skipDir(name string) bool {
	switch name {
	case "testdata", "vendor", "artifacts":
		return true
	}
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadModule parses every non-test Go file under root (the directory
// holding go.mod). Test files are excluded by design: the invariants
// guard production code paths, and test helpers legitimately drop errors
// and read clocks.
func LoadModule(root string) (*Module, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := m.loadDir(path, imp)
		if err != nil {
			return err
		}
		if pkg != nil {
			m.Pkgs = append(m.Pkgs, pkg)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].ImportPath < m.Pkgs[j].ImportPath })
	return m, nil
}

// LoadFixture parses a single directory as a one-package module (the
// fixture tests' entry point).
func LoadFixture(dir string) (*Module, error) {
	m := &Module{Root: dir, Path: "fixture", Fset: token.NewFileSet()}
	pkg, err := m.loadDir(dir, "fixture")
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	m.Pkgs = []*Package{pkg}
	return m, nil
}

// loadDir parses the non-test Go files of one directory, returning nil
// when there are none.
func (m *Module) loadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{ImportPath: importPath, Dir: dir, Mod: m}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(m.Fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		file := &File{
			Path:    path,
			AST:     f,
			lines:   strings.Split(string(src), "\n"),
			ignores: scanIgnores(m.Fset, f),
		}
		pkg.Files = append(pkg.Files, file)
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	sort.Slice(pkg.Files, func(i, j int) bool { return pkg.Files[i].Path < pkg.Files[j].Path })
	return pkg, nil
}

// modulePath extracts the module path from a go.mod.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

const ignoreDirective = "conflint:ignore"

// ignoreInfo is one conflint:ignore directive: its reason (empty for a
// bare directive) and the comment's source extent, kept so `-fix` can
// delete a directive that suppresses nothing.
type ignoreInfo struct {
	reason   string
	pos, end token.Pos
}

// scanIgnores collects ignore directives by comment line.
func scanIgnores(fset *token.FileSet, f *ast.File) map[int]*ignoreInfo {
	out := make(map[int]*ignoreInfo)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if rest, ok := strings.CutPrefix(text, ignoreDirective); ok {
				out[fset.Position(c.Pos()).Line] = &ignoreInfo{
					reason: strings.TrimSpace(rest),
					pos:    c.Pos(),
					end:    c.End(),
				}
			}
		}
	}
	return out
}

// Run executes the analyzers over every package, applies ignore
// directives, reports reason-less directives, and returns findings in
// position order.
func Run(m *Module, analyzers []*Analyzer) []Finding {
	fs, _ := RunTimed(m, analyzers)
	return fs
}

// RunTimed is Run, additionally reporting each analyzer's wall time
// across the whole module (for BENCH_conflint.json).
func RunTimed(m *Module, analyzers []*Analyzer) ([]Finding, map[string]time.Duration) {
	walls := make(map[string]time.Duration, len(analyzers))
	var raw []Finding
	for _, a := range analyzers {
		t0 := time.Now()
		for _, p := range m.Pkgs {
			raw = append(raw, a.Check(p)...)
		}
		walls[a.Name] += time.Since(t0)
	}
	return finishRun(m, raw, analyzers), walls
}

// symbolAt locates a source line structurally: the import path of its
// package and the top-level declaration enclosing it ("Engine.Run",
// "dedupe", "Lab" — "" for file-level positions). This is the baseline
// key, stable under reformatting and unrelated edits.
func (m *Module) symbolAt(path string, line int) (pkg, symbol string) {
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			if f.Path != path {
				continue
			}
			for _, d := range f.AST.Decls {
				start := m.Fset.Position(d.Pos()).Line
				end := m.Fset.Position(d.End()).Line
				// A declaration's doc comment (where annotations live)
				// belongs to the declaration.
				switch dd := d.(type) {
				case *ast.FuncDecl:
					if dd.Doc != nil {
						start = m.Fset.Position(dd.Doc.Pos()).Line
					}
				case *ast.GenDecl:
					if dd.Doc != nil {
						start = m.Fset.Position(dd.Doc.Pos()).Line
					}
				}
				if line < start || line > end {
					continue
				}
				switch dd := d.(type) {
				case *ast.FuncDecl:
					name := dd.Name.Name
					if dd.Recv != nil && len(dd.Recv.List) > 0 {
						if rn := baseTypeName(dd.Recv.List[0].Type); rn != "" {
							name = rn + "." + name
						}
					}
					return p.ImportPath, name
				case *ast.GenDecl:
					for _, spec := range dd.Specs {
						if ts, ok := spec.(*ast.TypeSpec); ok &&
							m.Fset.Position(ts.Pos()).Line <= line && line <= m.Fset.Position(ts.End()).Line {
							return p.ImportPath, ts.Name.Name
						}
					}
					return p.ImportPath, ""
				}
			}
			return p.ImportPath, ""
		}
	}
	return "", ""
}

// ignoreAt returns the directive covering the given line (a directive
// covers its own line and the one directly below it), along with the
// directive's own line number.
func (m *Module) ignoreAt(path string, line int) (*ignoreInfo, int, bool) {
	f := m.fileOf(path)
	if f == nil {
		return nil, 0, false
	}
	if info, ok := f.ignores[line]; ok {
		return info, line, true
	}
	if info, ok := f.ignores[line-1]; ok {
		return info, line - 1, true
	}
	return nil, 0, false
}

// fileOf returns the loaded file for a path, if any.
func (m *Module) fileOf(path string) *File {
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			if f.Path == path {
				return f
			}
		}
	}
	return nil
}

// RenderText prints findings for humans; with hints, each finding is
// followed by the offending source line and a suggested edit.
func RenderText(m *Module, fs []Finding, hints bool) string {
	var b strings.Builder
	for _, f := range fs {
		rel := f.File
		if r, err := filepath.Rel(m.Root, f.File); err == nil {
			rel = r
		}
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n", rel, f.Line, f.Col, f.Rule, f.Message)
		for _, w := range f.Witness {
			fmt.Fprintf(&b, "    %s\n", w)
		}
		if hints {
			if file := m.fileOf(f.File); file != nil {
				if src := strings.TrimRight(file.SourceLine(f.Line), " \t"); src != "" {
					fmt.Fprintf(&b, "        %s\n", strings.TrimLeft(src, " \t"))
				}
			}
			if f.Hint != "" {
				fmt.Fprintf(&b, "        fix: %s\n", f.Hint)
			}
		}
	}
	return b.String()
}

// RenderJSON prints findings as a JSON array (paths relative to root).
func RenderJSON(m *Module, fs []Finding) (string, error) {
	rel := make([]Finding, len(fs))
	for i, f := range fs {
		rel[i] = f
		if r, err := filepath.Rel(m.Root, f.File); err == nil {
			rel[i].File = r
		}
	}
	data, err := json.MarshalIndent(rel, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data) + "\n", nil
}
