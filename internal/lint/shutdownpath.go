// The shutdownpath analyzer generalizes goleak from "the goroutine
// terminates" to "the goroutine terminates promptly on shutdown". Every
// deliberate worker must now declare its lifecycle in the directive:
//
//	// conflint:worker lifecycle=<chan> <reason>   stops when <chan> closes
//	// conflint:worker lifecycle=none <reason>     never blocks at all
//	// conflint:worker lifecycle=external <reason> stopped by an external
//	                                               mechanism (http server
//	                                               Shutdown, process exit)
//
// For lifecycle=<chan>, every blocking operation reachable from the
// worker body must be guarded by the lifecycle channel on all paths:
// ranging over the channel, receiving from it, or selecting with a case
// that receives from it (or with a default). An unguarded block — a bare
// send, a receive from some other channel, a default-less select with no
// lifecycle case, a WaitGroup.Wait, a blocking stdlib serve loop — would
// keep the worker alive after shutdown closes its channel, which is
// exactly the hang the gateway's drain contract forbids.
//
// The analysis is interprocedural: per-function "may block" summaries
// (first blocking operation, with the witness chain that reaches it)
// are driven to a fixpoint over the call graph, so a worker calling a
// helper that calls Runner.Each sees the send buried two frames down.
// A blocking operation under a reasoned conflint:ignore is exempt at
// its source — the ignore expresses "this send is provably bounded",
// and every transitive report through it disappears with it.
//
// Conservatism: unresolvable callees are assumed non-blocking, nested
// go statements and uncalled function literals are their own spawn
// sites' problem, and mutex acquisitions are lockcheck's department.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// ShutdownPath returns the worker shutdown-path analyzer.
func ShutdownPath() *Analyzer {
	return &Analyzer{
		Name:  "shutdownpath",
		Doc:   "every conflint:worker must declare lifecycle=<chan>|none|external, and all its blocking ops must be guarded by that lifecycle",
		Check: func(p *Package) []Finding { return p.Mod.interprocFindings(p, "shutdownpath", shutdownPathModule) },
	}
}

// workerInfo is one parsed conflint:worker directive.
type workerInfo struct {
	lifecycle string // channel name, "none", "external", or "" (undeclared)
	reason    string // the human reason, lifecycle token stripped
}

// parseWorkerDirective splits a directive's rest-string into the
// lifecycle token (first field, when prefixed lifecycle=) and reason.
func parseWorkerDirective(rest string) workerInfo {
	fields := strings.Fields(rest)
	if len(fields) > 0 {
		if lc, ok := strings.CutPrefix(fields[0], "lifecycle="); ok {
			return workerInfo{lifecycle: lc, reason: strings.Join(fields[1:], " ")}
		}
	}
	return workerInfo{reason: rest}
}

// scanWorkerInfo collects parsed worker directives: line -> info.
func scanWorkerInfo(fset *token.FileSet, f *File) map[int]workerInfo {
	out := make(map[int]workerInfo)
	for line, rest := range scanWorkers(fset, f) {
		out[line] = parseWorkerDirective(rest)
	}
	return out
}

// blockInfo is one function's may-block summary: the first blocking
// operation in source order, with the witness chain reaching it.
type blockInfo struct {
	pos   token.Pos
	why   string // the ultimate reason ("sends on jobs", "waits on wg")
	steps []string
}

const maxBlockSteps = 8

// spState is the module-wide shutdownpath fixpoint state.
type spState struct {
	m      *Module
	blocks map[string]*blockInfo
}

// ignored reports whether a reasoned conflint:ignore covers a position,
// marking the directive used (shutdownpath consumes directives at
// source level, before finishRun's suppression pass, so it must feed
// stale-ignore detection itself).
func (sp *spState) ignored(pos token.Pos) bool {
	p := sp.m.Fset.Position(pos)
	info, line, ok := sp.m.ignoreAt(p.Filename, p.Line)
	if !ok || info.reason == "" {
		return false
	}
	sp.m.noteIgnoreUsed(p.Filename, line)
	return true
}

// lastSelName returns the final name of an expression ("as.trigger" ->
// "trigger"), the currency lifecycle channels are matched in: the
// spawner writes `lifecycle=trigger` and both `as.trigger` in a literal
// body and `w.trigger` in a named worker method match it.
func lastSelName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.ParenExpr:
		return lastSelName(e.X)
	case *ast.CallExpr:
		// <-ctx.Done(): match on the method name.
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name
		}
	}
	return ""
}

// commReceivesFrom reports whether a select clause receives from the
// named lifecycle channel.
func commReceivesFrom(cc *ast.CommClause, name string) bool {
	var rhs ast.Expr
	switch c := cc.Comm.(type) {
	case *ast.ExprStmt:
		rhs = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			rhs = c.Rhs[0]
		}
	}
	u, ok := rhs.(*ast.UnaryExpr)
	if !ok || u.Op != token.ARROW {
		return false
	}
	return lastSelName(u.X) == name
}

// scanBlocking walks one body (go statements and function literals
// skipped: their blocking is their own spawn/call site's problem),
// reporting each unguarded blocking operation. lifecycle is the guard
// channel name ("" or "none" guard nothing), and hit receives the op's
// position, ultimate reason, and witness chain.
func (sp *spState) scanBlocking(fd *funcDecl, body ast.Node, lifecycle string, hit func(pos token.Pos, why string, steps []string)) {
	m := sp.m
	guardName := lifecycle
	if guardName == "none" || guardName == "external" {
		guardName = ""
	}
	direct := func(pos token.Pos, why string) {
		if sp.ignored(pos) {
			return
		}
		hit(pos, why, []string{m.stepf(pos, "%s", why)})
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			hasDefault, guarded := false, false
			for _, cl := range s.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				if guardName != "" && commReceivesFrom(cc, guardName) {
					guarded = true
				}
			}
			if !hasDefault && !guarded {
				direct(s.Pos(), describeSelect(lifecycle))
			}
			// The comm operations belong to the select; only the clause
			// bodies can block on their own.
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						ast.Inspect(st, walk)
					}
				}
			}
			return false
		case *ast.SendStmt:
			direct(s.Arrow, fmt.Sprintf("sends on %s with no lifecycle guard", exprString(m.Fset, s.Chan)))
			return true
		case *ast.UnaryExpr:
			if s.Op != token.ARROW {
				return true
			}
			if guardName != "" && lastSelName(s.X) == guardName {
				return true // receiving from the lifecycle IS the guard
			}
			direct(s.OpPos, fmt.Sprintf("receives from %s with no lifecycle guard", exprString(m.Fset, s.X)))
			return true
		case *ast.RangeStmt:
			if _, isChan := m.Underlying(m.TypeOf(fd.pkg, fd.file, fd.decl, s.X)).Expr.(*ast.ChanType); isChan {
				if guardName == "" || lastSelName(s.X) != guardName {
					direct(s.Pos(), fmt.Sprintf("ranges over channel %s, which is not the lifecycle channel", exprString(m.Fset, s.X)))
				}
			}
			return true
		case *ast.CallExpr:
			sp.checkCall(fd, s, hit)
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

func describeSelect(lifecycle string) string {
	if lifecycle == "" || lifecycle == "none" || lifecycle == "external" {
		return "blocks in a select with no default case"
	}
	return fmt.Sprintf("blocks in a select with no default and no case receiving from lifecycle channel %s", lifecycle)
}

// checkCall reports blocking calls: known-blocking stdlib serve loops,
// sync.WaitGroup.Wait, and module callees whose summary may block.
func (sp *spState) checkCall(fd *funcDecl, call *ast.CallExpr, hit func(pos token.Pos, why string, steps []string)) {
	m := sp.m
	if sp.ignored(call.Pos()) {
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if base, ok := sel.X.(*ast.Ident); ok {
			if imp := importPathOf(fd.file, base.Name); imp != "" {
				if name, ok := blockingStdlibFuncs[imp+"."+sel.Sel.Name]; ok {
					hit(call.Pos(), fmt.Sprintf("blocks in %s until an external shutdown", name),
						[]string{m.stepf(call.Pos(), "blocks in %s", name)})
				}
				return
			}
		}
		tk := m.NamedKey(m.TypeOf(fd.pkg, fd.file, fd.decl, sel.X))
		if methods, ok := blockingStdlibMethods[tk]; ok && methods[sel.Sel.Name] {
			hit(call.Pos(), fmt.Sprintf("blocks in %s.%s until an external shutdown", tk, sel.Sel.Name),
				[]string{m.stepf(call.Pos(), "blocks in %s.%s", tk, sel.Sel.Name)})
			return
		}
		if sel.Sel.Name == "Wait" && tk == "sync.WaitGroup" {
			hit(call.Pos(), fmt.Sprintf("waits on %s with no lifecycle guard", exprString(m.Fset, sel.X)),
				[]string{m.stepf(call.Pos(), "waits on %s", exprString(m.Fset, sel.X))})
			return
		}
	}
	key := m.calleeKey(fd.pkg, fd.file, fd.decl, call)
	if key == "" {
		return
	}
	if b := sp.blocks[key]; b != nil {
		steps := append([]string{m.stepf(call.Pos(), "calls %s", m.shortKey(key))}, b.steps...)
		if len(steps) > maxBlockSteps {
			steps = steps[:maxBlockSteps]
		}
		hit(call.Pos(), b.why, steps)
	}
}

// summarize recomputes one function's may-block summary; true on change.
func (sp *spState) summarize(key string) bool {
	if sp.blocks[key] != nil {
		return false // monotone: the first-found block is kept
	}
	node := sp.m.Graph().Node(key)
	if node == nil || node.Fn == nil || node.Fn.decl.Body == nil {
		return false
	}
	var found *blockInfo
	sp.scanBlocking(node.Fn, node.Fn.decl.Body, "", func(pos token.Pos, why string, steps []string) {
		if found == nil || pos < found.pos {
			found = &blockInfo{pos: pos, why: why, steps: steps}
		}
	})
	if found != nil {
		sp.blocks[key] = found
		return true
	}
	return false
}

// shutdownPathModule runs the analysis: may-block summaries to a
// fixpoint, then a check of every annotated worker spawn site.
func shutdownPathModule(m *Module) []Finding {
	sp := &spState{m: m, blocks: make(map[string]*blockInfo)}
	g := m.Graph()
	m.fixpoint("shutdownpath", g.Keys(), nil, sp.summarize)

	var out []Finding
	fset := m.Fset
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			workers := scanWorkerInfo(fset, f)
			if len(workers) == 0 {
				continue
			}
			for _, fn := range fileFuncs(f) {
				fd := &funcDecl{pkg: p, file: f, decl: fn}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					gs, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					pos := fset.Position(gs.Pos())
					info, ok := workerAtInfo(workers, pos.Line)
					if !ok {
						return true
					}
					out = append(out, checkWorkerSite(sp, fd, gs, info, pos)...)
					return true
				})
			}
		}
	}
	return out
}

func workerAtInfo(workers map[int]workerInfo, line int) (workerInfo, bool) {
	if w, ok := workers[line]; ok {
		return w, true
	}
	if w, ok := workers[line-1]; ok {
		return w, true
	}
	return workerInfo{}, false
}

// checkWorkerSite validates one annotated spawn: the directive must
// declare a lifecycle and a reason, and for channel lifecycles every
// blocking op reachable from the body must be guarded.
func checkWorkerSite(sp *spState, fd *funcDecl, gs *ast.GoStmt, info workerInfo, pos token.Position) []Finding {
	m := sp.m
	if info.lifecycle == "" && info.reason == "" {
		return nil // a fully bare directive is goleak's finding
	}
	var out []Finding
	if info.lifecycle == "" {
		return []Finding{{
			Rule: "shutdownpath", File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: "conflint:worker must declare its shutdown mechanism: lifecycle=<chan> (stops when the channel closes), lifecycle=none (never blocks), or lifecycle=external (stopped externally)",
			Hint:    "name the channel the worker's blocking ops are guarded by, e.g. // conflint:worker lifecycle=trigger <reason>",
		}}
	}
	if info.reason == "" {
		out = append(out, Finding{
			Rule: "shutdownpath", File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Message: "conflint:worker needs a reason beyond the lifecycle token (// conflint:worker lifecycle=... <why this worker exists>)",
			Hint:    "state what the worker does and who stops it",
		})
	}
	if info.lifecycle == "external" {
		return out // shutdown is somebody else's provable contract
	}
	var body ast.Node
	workerFd := fd
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		body = lit.Body
	} else if key := m.calleeKey(fd.pkg, fd.file, fd.decl, gs.Call); key != "" {
		if node := m.Graph().Node(key); node != nil && node.Fn != nil && node.Fn.decl.Body != nil {
			workerFd = node.Fn
			body = node.Fn.decl.Body
		}
	}
	if body == nil {
		return out // unresolvable spawn target: conservative silence
	}
	sp.scanBlocking(workerFd, body, info.lifecycle, func(opPos token.Pos, why string, steps []string) {
		p := m.Fset.Position(opPos)
		witness := append([]string{m.stepf(gs.Pos(), "worker spawned (lifecycle=%s)", info.lifecycle)}, steps...)
		if len(witness) > maxBlockSteps {
			witness = witness[:maxBlockSteps]
		}
		out = append(out, Finding{
			Rule: "shutdownpath", File: p.Filename, Line: p.Line, Col: p.Column,
			Message: fmt.Sprintf("worker (lifecycle=%s) %s: on shutdown it would hang here instead of draining promptly", info.lifecycle, why),
			Hint:    "guard the operation with a select on the lifecycle channel, move it off the worker, or conflint:ignore with a boundedness argument",
			Witness: witness,
		})
	})
	return out
}
