// The auto-fix engine: findings for mechanically-fixable classes carry
// byte-offset edits (Finding.Fixes), and PlanFixes turns a finding list
// into formatted replacement file contents. The engine is deliberately
// dumb where the analyzers are smart: an edit is a byte splice, a
// finding's edits apply atomically or not at all, findings whose edits
// overlap an already-accepted edit are dropped (first finding in report
// order wins), and every touched file is run through go/format so the
// result is gofmt-clean by construction.
//
// `conflint -fix` (cmd/conflint) applies the plan, re-parses the tree,
// re-lints with the same rule set, and verifies the fixed findings are
// gone without new ones appearing — which also makes the fix pass
// idempotent: a second -fix finds nothing fixable.
package lint

import (
	"fmt"
	"go/format"
	"go/token"
	"os"
	"sort"
	"strings"
)

// TextEdit is one byte-offset splice: replace file[Start:End) with New.
// Start == End is a pure insertion. Offsets index the raw file bytes.
type TextEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	New   string `json:"new"`
}

// FixResult is a planned fix pass: the full post-fix content of every
// file an accepted edit touches, plus which findings made it in.
type FixResult struct {
	Files   map[string][]byte // path -> gofmt-formatted fixed source
	Applied []Finding         // findings whose edits were accepted
	Dropped []Finding         // fixable findings dropped for overlapping an accepted edit
}

// src reconstructs the file's raw source (lines was split on "\n", so
// the join is byte-exact).
func (f *File) src() string {
	return strings.Join(f.lines, "\n")
}

// offsetOf converts a token position to a byte offset in its file.
func (m *Module) offsetOf(pos token.Pos) int {
	return m.Fset.Position(pos).Offset
}

// PlanFixes computes the fixed content for every finding that carries
// edits. Malformed edits (unknown file, out-of-range offsets) are hard
// errors — they indicate an analyzer bug, not a user mistake. A fix
// whose result does not parse is likewise an error: the engine must
// never plan a tree it cannot format.
func PlanFixes(m *Module, fs []Finding) (*FixResult, error) {
	res := &FixResult{Files: make(map[string][]byte)}
	accepted := make(map[string][]TextEdit)
	for _, f := range fs {
		if len(f.Fixes) == 0 {
			continue
		}
		ok := true
		for _, e := range f.Fixes {
			file := m.fileOf(e.File)
			if file == nil {
				return nil, fmt.Errorf("lint: [%s] fix edits unknown file %s", f.Rule, e.File)
			}
			if e.Start < 0 || e.End < e.Start || e.End > len(file.src()) {
				return nil, fmt.Errorf("lint: [%s] fix edit out of range [%d,%d) in %s", f.Rule, e.Start, e.End, e.File)
			}
			for _, prev := range accepted[e.File] {
				if (e.Start < prev.End && prev.Start < e.End) ||
					(e.Start == prev.Start && e.End == prev.End) {
					ok = false
				}
			}
		}
		if !ok {
			res.Dropped = append(res.Dropped, f)
			continue
		}
		for _, e := range f.Fixes {
			accepted[e.File] = append(accepted[e.File], e)
		}
		res.Applied = append(res.Applied, f)
	}
	for path, edits := range accepted {
		src := m.fileOf(path).src()
		// Splice back to front so earlier offsets stay valid.
		sort.Slice(edits, func(i, j int) bool { return edits[i].Start > edits[j].Start })
		for _, e := range edits {
			src = src[:e.Start] + e.New + src[e.End:]
		}
		out, err := format.Source([]byte(src))
		if err != nil {
			return nil, fmt.Errorf("lint: fixed %s does not format: %w", path, err)
		}
		res.Files[path] = out
	}
	return res, nil
}

// Write persists the planned file contents to disk.
func (r *FixResult) Write() error {
	paths := make([]string, 0, len(r.Files))
	for p := range r.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := os.WriteFile(p, r.Files[p], 0o644); err != nil {
			return err
		}
	}
	return nil
}

// deleteCommentEdit removes a comment: the whole line (newline
// included) when the comment stands alone on it, otherwise the comment
// plus the spacing separating it from the code it trails.
func (m *Module) deleteCommentEdit(file *File, pos, end token.Pos) TextEdit {
	src := file.src()
	start, stop := m.offsetOf(pos), m.offsetOf(end)
	lineStart := start
	for lineStart > 0 && src[lineStart-1] != '\n' {
		lineStart--
	}
	if strings.TrimSpace(src[lineStart:start]) == "" {
		if stop < len(src) && src[stop] == '\n' {
			stop++
		}
		return TextEdit{File: file.Path, Start: lineStart, End: stop}
	}
	for start > lineStart && (src[start-1] == ' ' || src[start-1] == '\t') {
		start--
	}
	return TextEdit{File: file.Path, Start: start, End: stop}
}

// appendLineCommentEdit builds an insertion of text at the end of the
// line containing end — only when nothing but whitespace follows end on
// that line, so the insertion cannot split code or stack onto an
// existing comment.
func (m *Module) appendLineCommentEdit(file *File, end token.Pos, text string) (TextEdit, bool) {
	p := m.Fset.Position(end)
	line := file.SourceLine(p.Line)
	if p.Column-1 > len(line) {
		return TextEdit{}, false
	}
	rest := line[p.Column-1:]
	if strings.TrimSpace(rest) != "" {
		return TextEdit{}, false
	}
	at := m.offsetOf(end) + len(rest)
	return TextEdit{File: file.Path, Start: at, End: at, New: text}, true
}
