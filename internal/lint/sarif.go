// SARIF 2.1.0 output: the minimal static-analysis interchange shape
// code-scanning UIs ingest — one run, the analyzer set as the driver's
// rule metadata, each finding a result with a physical location. File
// URIs are module-root-relative, and the JSON is rendered with sorted,
// fixed field order so the artifact is byte-stable run to run.
package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

type sarifText struct {
	Text string `json:"text"`
}

type sarifRuleDesc struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifDriver struct {
	Name           string          `json:"name"`
	InformationURI string          `json:"informationUri,omitempty"`
	Rules          []sarifRuleDesc `json:"rules"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

// RenderSARIF renders the findings of one run as a SARIF 2.1.0 log.
// The driver's rule table lists the analyzers that ran plus the
// synthetic "ignore" rule (bare/stale directive findings carry it).
func RenderSARIF(m *Module, analyzers []*Analyzer, fs []Finding) (string, error) {
	rules := make([]sarifRuleDesc, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRuleDesc{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRuleDesc{
		ID:               "ignore",
		ShortDescription: sarifText{Text: "conflint:ignore directives must carry a reason and suppress a finding"},
	})

	results := make([]sarifResult, 0, len(fs))
	for _, f := range fs {
		uri := f.File
		if rel, err := filepath.Rel(m.Root, f.File); err == nil {
			uri = rel
		}
		msg := f.Message
		if len(f.Witness) > 0 {
			msg += "\n" + strings.Join(f.Witness, "\n")
		}
		results = append(results, sarifResult{
			RuleID:  f.Rule,
			Level:   "error",
			Message: sarifText{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "conflint", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data) + "\n", nil
}
