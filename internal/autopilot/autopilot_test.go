package autopilot

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/workload"
)

// TestDriftRecovery is the headline behavior, in overlapped mode under
// whatever scheduler the race detector provides: the controller notices
// the mixture flip, applies a transition while traffic flows, and the
// final window's goal satisfaction recovers to at least the pre-drift
// level.
func TestDriftRecovery(t *testing.T) {
	opts := tinyOpts(4, false) // overlapped transitions
	ap, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	reports, retunes, err := ap.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var driftRetune *RetuneRecord
	for i := range retunes {
		if strings.Contains(retunes[i].Reason, "mix-shift") {
			driftRetune = &retunes[i]
		}
	}
	if driftRetune == nil {
		t.Fatalf("controller never detected the mix shift; retunes: %+v", retunes)
	}
	if driftRetune.Err != "" {
		t.Fatalf("drift retune failed: %s", driftRetune.Err)
	}
	if driftRetune.Built == 0 {
		t.Error("drift retune built nothing; transition was a no-op")
	}

	preDrift := reports[0].Satisfaction
	final := reports[len(reports)-1].Satisfaction
	if final < preDrift {
		t.Errorf("no recovery: final satisfaction %.2f < pre-drift %.2f\n%s",
			final, preDrift, RenderTable(reports, retunes))
	}

	m := ap.Metrics().Snapshot()
	wantQueries := int64(opts.Windows * opts.WindowSize)
	if m.QueriesServed != wantQueries {
		t.Errorf("metrics served %d queries, want %d", m.QueriesServed, wantQueries)
	}
	if m.WindowsCompleted != int64(opts.Windows) {
		t.Errorf("metrics windows = %d, want %d", m.WindowsCompleted, opts.Windows)
	}
	if m.RetunesApplied < 1 {
		t.Error("metrics recorded no applied retunes")
	}
	if m.RetunesInFlight != 0 {
		t.Errorf("retunes still in flight after Run: %d", m.RetunesInFlight)
	}
}

// TestScaleLoopDrivenByWindows pins the batch loop's elastic wiring:
// every window report is lowered through ScaleMetrics and drives the
// shard recommender/updater pair — the first window's fired rule
// reshards the cluster, and the updater's cooldown holds the rest. The
// audit trail is the contract: one record per window, in window order.
func TestScaleLoopDrivenByWindows(t *testing.T) {
	coord := engine.New(catalog.NREF(), 0.0001, engine.SystemB())
	if err := datagen.GenerateNREF(coord, datagen.NREFOptions{ScaleFactor: 0.0001, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	coord.CollectStats()
	cl, err := shard.New(coord, shard.Spec{Shards: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	upd := shard.NewUpdater(cl, shard.Bounds{MinShards: 1, MaxShards: 8, MinPool: 1, MaxPool: 16}, false)
	upd.Cooldown = 8 // longer than the run: exactly one action may land

	opts := tinyOpts(1, true)
	opts.Autoscale = &ScaleLoop{
		Cluster: cl,
		// A rule on the window's query count fires deterministically on
		// every window regardless of what the traffic scores.
		Rec: &shard.Recommender{Rules: []shard.ScalingRule{
			{Name: "always-out", Metric: "queries", Op: ">", Threshold: 1, MinQueries: 1, ShardFactor: 2},
		}},
		Upd: upd,
	}
	reports, _ := runBounded(t, opts)

	if got := cl.Shards(); got != 2 {
		t.Errorf("cluster at %d shards after the run, want 2 (window 0 scale-out applied once)", got)
	}
	if st := cl.Stats(); st.Reshards != 1 {
		t.Errorf("Reshards = %d, want 1 (cooldown must hold later windows)", st.Reshards)
	}
	audit := upd.Audit()
	if len(audit) != len(reports) {
		t.Fatalf("%d audit records, want one per window (%d)", len(audit), len(reports))
	}
	for i, a := range audit {
		if a.Window != reports[i].Window {
			t.Errorf("audit %d is for window %d, want %d (ScaleMetrics must carry the window number)", i, a.Window, reports[i].Window)
		}
		want := shard.ActionCooldown
		if i == 0 {
			want = shard.ActionApply
		}
		if a.Action != want {
			t.Errorf("audit %d: action %q, want %q", i, a.Action, want)
		}
	}
}

// TestStaticBaselineNeverRetunes checks the comparison arm: after the
// warmup tune the configuration is frozen no matter what the stream does.
func TestStaticBaselineNeverRetunes(t *testing.T) {
	opts := tinyOpts(1, true)
	opts.Static = true
	reports, retunes := runBounded(t, opts)
	if len(retunes) != 1 || retunes[0].Reason != "warmup" {
		t.Fatalf("static run retuned beyond warmup: %+v", retunes)
	}
	for _, rep := range reports {
		if rep.Trigger != "" {
			t.Errorf("window %d has trigger %q in static mode", rep.Window, rep.Trigger)
		}
		if rep.Config != retunes[0].Name {
			t.Errorf("window %d served by %q, want frozen %q", rep.Window, rep.Config, retunes[0].Name)
		}
	}
}

func TestStreamDriftAndSequencing(t *testing.T) {
	mk := func(name string, n int) workload.Family {
		f := workload.Family{Name: name}
		for i := 0; i < n; i++ {
			f.Queries = append(f.Queries, workload.Query{SQL: name, Family: name})
		}
		return f
	}
	pools := []workload.Family{mk("X", 5), mk("Y", 5)}
	s, err := newStream(1, pools, []float64{0.9, 0.1}, []float64{0.1, 0.9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	countY := func(qs []workload.Query) int {
		n := 0
		for _, q := range qs {
			if q.Family == "Y" {
				n++
			}
		}
		return n
	}
	w0, err := s.Window(0, 400)
	if err != nil {
		t.Fatal(err)
	}
	if y := countY(w0); y < 10 || y > 90 {
		t.Errorf("pre-drift Y share %d/400, want ≈40", y)
	}
	if _, err := s.Window(0, 10); err == nil {
		t.Error("re-drawing window 0 should fail: windows are sequential")
	}
	if _, err := s.Window(1, 10); err != nil {
		t.Fatal(err)
	}
	w2, err := s.Window(2, 400)
	if err != nil {
		t.Fatal(err)
	}
	if y := countY(w2); y < 310 || y > 410 {
		t.Errorf("post-drift Y share %d/400, want ≈360", y)
	}
}

func TestMixtureValidation(t *testing.T) {
	f := workload.Family{Name: "X", Queries: []workload.Query{{SQL: "q", Family: "X"}}}
	if _, err := workload.NewMixture(nil, nil); err == nil {
		t.Error("empty mixture should fail")
	}
	if _, err := workload.NewMixture([]workload.Family{f}, []float64{0}); err == nil {
		t.Error("zero-mass mixture should fail")
	}
	if _, err := workload.NewMixture([]workload.Family{f}, []float64{1, 2}); err == nil {
		t.Error("mismatched weights should fail")
	}
	if _, err := workload.NewMixture([]workload.Family{{Name: "empty"}}, []float64{1}); err == nil {
		t.Error("empty family should fail")
	}
	m, err := workload.NewMixture([]workload.Family{f}, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Proportions(); got[0] != 1 {
		t.Errorf("Proportions = %v, want [1]", got)
	}
	if q := m.Draw(rand.New(rand.NewSource(1))); q.Family != "X" {
		t.Errorf("Draw picked %q", q.Family)
	}
}

func TestObserverWindowReport(t *testing.T) {
	obs := &observer{
		goal:     core.Goal{Name: "g", Steps: []core.GoalStep{{X: 10, Frac: 0.5}}},
		timeout:  100,
		famOrder: []string{"X", "Y"},
	}
	qs := []workload.Query{
		{SQL: "a", Family: "X"}, {SQL: "b", Family: "X"},
		{SQL: "c", Family: "Y"}, {SQL: "d", Family: "Y"},
	}
	ms := []core.Measure{
		{SQL: "a", Seconds: 1}, {SQL: "b", Seconds: 2},
		{SQL: "c", Seconds: 50}, {SQL: "d", Seconds: 100, TimedOut: true},
	}
	est := []core.Measure{
		{SQL: "a", Seconds: 2}, {SQL: "b", Seconds: 2},
		{SQL: "c", Seconds: 25}, {SQL: "d", Seconds: 1},
	}
	rep := obs.observe(3, "P", qs, ms, est)
	if rep.Window != 3 || rep.Queries != 4 || rep.Timeouts != 1 {
		t.Errorf("header fields wrong: %+v", rep)
	}
	if got := rep.Mix; got[0].Count != 2 || got[1].Count != 2 {
		t.Errorf("mix = %+v", got)
	}
	if rep.P50 != 2 {
		t.Errorf("p50 = %v, want 2", rep.P50)
	}
	if !math.IsInf(rep.P99, 1) {
		t.Errorf("p99 = %v, want +Inf (timeout)", rep.P99)
	}
	// Ratios over completed queries: 2/1, 2/2, 25/50 → sorted {0.5, 1, 2}.
	if rep.EAMedian != 1 || rep.EAP90 != 2 {
		t.Errorf("E/A quantiles = %v, %v, want 1, 2", rep.EAMedian, rep.EAP90)
	}
	// 2 of 4 queries complete under 10s → step met exactly.
	if !rep.Satisfied || rep.Satisfaction != 1 {
		t.Errorf("goal verdict = %v/%v, want ok/1", rep.Satisfied, rep.Satisfaction)
	}
}

func TestControllerConsider(t *testing.T) {
	c := &controller{threshold: 0.25}
	mk := func(x, y int, sat bool) WindowReport {
		return WindowReport{
			Mix:       []FamilyCount{{Family: "X", Count: x}, {Family: "Y", Count: y}},
			Satisfied: sat,
		}
	}
	// Before any tune: only a goal violation triggers (cold start).
	if d := c.consider(mk(9, 1, true)); d.Retune {
		t.Errorf("satisfied cold start should not retune: %+v", d)
	}
	if d := c.consider(mk(9, 1, false)); !d.Retune || d.Reason != "goal-violation" {
		t.Errorf("violated cold start: %+v", d)
	}
	// After tuning for 90:10, the same mix no longer triggers on
	// violation alone (already tried), but a flip does.
	c.lastTuneMix = []float64{0.9, 0.1}
	c.tunedThisMix = true
	if d := c.consider(mk(9, 1, false)); d.Retune {
		t.Errorf("retuning the already-tuned mix churns: %+v", d)
	}
	if d := c.consider(mk(1, 9, true)); !d.Retune || d.Reason != "mix-shift" {
		t.Errorf("flip while satisfied: %+v", d)
	}
	if d := c.consider(mk(1, 9, false)); !d.Retune || d.Reason != "mix-shift+goal-violation" {
		t.Errorf("flip while violated: %+v", d)
	}
}

func TestMetricsHandler(t *testing.T) {
	m := NewMetrics()
	m.ObserveQuery(core.Measure{Seconds: 1})
	m.ObserveQuery(core.Measure{Seconds: 2, TimedOut: true})
	m.ObserveWindow(WindowReport{Window: 0, Config: "P", Queries: 2, P95: 2, Satisfied: false, Satisfaction: 0.5})

	h := m.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"autopilot_queries_served_total 2",
		"autopilot_query_timeouts_total 1",
		"autopilot_windows_completed_total 1",
		"autopilot_goal_violations_total 1",
		"autopilot_window_goal_satisfaction 0.5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Fatalf("/healthz status %d", rec.Code)
	}
	var health map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("/healthz is not JSON: %v", err)
	}
	if health["status"] != "ok" {
		t.Errorf("/healthz status = %v", health["status"])
	}
	if health["queries_served"].(float64) != 2 {
		t.Errorf("/healthz queries_served = %v", health["queries_served"])
	}
}

// TestOptionsValidation covers the assembly errors a daemon flag typo
// would hit.
func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("no families should fail")
	}
	if _, err := New(Options{Families: []FamilyShare{{Family: "NOPE", Weight: 1}}}); err == nil {
		t.Error("unknown family should fail")
	}
	if _, err := New(Options{Families: []FamilyShare{
		{Family: "NREF2J", Weight: 1}, {Family: "SkTH3J", Weight: 1},
	}}); err == nil {
		t.Error("families on different databases should fail")
	}
	if _, err := New(Options{
		Recommender: "Z",
		Families:    []FamilyShare{{Family: "NREF2J", Weight: 1}},
	}); err == nil {
		t.Error("unknown recommender should fail")
	}
	if _, err := New(Options{
		Families: []FamilyShare{{Family: "NREF2J", Weight: 1}},
		Drift:    &Drift{AtWindow: 1, Shares: []FamilyShare{{Family: "NREF3J", Weight: 1}}},
	}); err == nil {
		t.Error("drift family outside the base mixture should fail")
	}
}
