// Package autopilot runs the benchmark as a long-lived autonomic control
// loop instead of a batch. Where the paper evaluates a recommender as a
// one-shot oracle — recommend, apply, replay a frozen 100-query sample —
// the autopilot serves an unbounded, seeded stream of family queries
// through the engine's concurrent read path, observes sliding windows of
// live measurements, and lets a controller retune the configuration (via
// the recommender and the engine's incremental Transition) while traffic
// keeps flowing.
//
// The split:
//
//   - Stream     — seeded mixture-of-families query source with a drift
//     schedule that shifts the mix over time (stream.go)
//   - observer   — per-window CFC quantiles, goal verdicts and
//     estimate-vs-actual ratios (observer.go)
//   - controller — detects mix shifts and goal violations, recommends,
//     predicts and applies transitions (controller.go)
//   - Metrics    — atomic counters + /metrics and /healthz handlers
//     (metrics.go)
//
// In bounded mode (Options.Windows > 0) with Options.Sync set, a run is
// fully deterministic: same seed ⇒ byte-identical window reports at any
// parallelism, mirroring the batch runner's determinism guarantee. With
// Sync off, transitions are applied concurrently with the next window's
// traffic — the daemon's production posture.
package autopilot

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/recommender"
	"repro/internal/shard"
	"repro/internal/workload"
)

// Options configures one autopilot instance.
type Options struct {
	// System selects the engine profile ("A", "B" or "C").
	System string
	// Recommender selects the tuner: a system profile name or "1C" for
	// the paper's reference configuration as a baseline. Empty = System.
	Recommender string

	// Families is the initial stream mixture. All families must live on
	// the same database.
	Families []FamilyShare
	// Drift, when non-nil, shifts the mixture at a window boundary.
	Drift *Drift

	Scale float64
	Seed  int64
	// PoolSize is the per-family sampled pool the stream draws from
	// (the paper's workloads use 100).
	PoolSize int

	// WindowSize is queries per observation window.
	WindowSize int
	// Windows bounds the run; 0 streams until the context is canceled.
	Windows int

	// Parallelism is the query fan-out within a window (core.Runner).
	Parallelism int

	// Goal is the QoS target; zero value = the paper's Example 2 goal.
	Goal core.Goal

	// MixShiftThreshold is the moved-probability-mass fraction beyond
	// which the controller treats the mix as shifted (default 0.25).
	MixShiftThreshold float64

	// Timeout is the per-query simulated timeout (default 1800s).
	Timeout float64

	// Sync applies transitions at window boundaries instead of
	// overlapping them with the next window's traffic. Deterministic;
	// used by tests and CI.
	Sync bool

	// Warmup tunes once on a warmup window before serving, so traffic
	// starts under a configuration fitted to the initial mix.
	Warmup bool

	// Static freezes the configuration after warmup: the decaying
	// baseline the drift experiment compares against.
	Static bool

	// NoWhatIfCache disables the engine's what-if estimate cache (the
	// -whatif-cache=off escape hatch). Reports are byte-identical either
	// way; only retune wall time changes.
	NoWhatIfCache bool

	// Autoscale, when non-nil, feeds every window report through the
	// shard autoscaler's recommend/apply loop (the ScaleMetrics bridge) —
	// the batch counterpart of the gateway's live elastic loop. The
	// cluster is the caller's: the autopilot grades its own traffic and
	// only drives the scale decision.
	Autoscale *ScaleLoop
}

// ScaleLoop bundles the elastic-scaling collaborators the batch loop
// drives between windows: the cluster under management plus the shard
// package's pure Recommender and side-effecting Updater.
type ScaleLoop struct {
	Cluster *shard.Cluster
	Rec     *shard.Recommender
	Upd     *shard.Updater
}

func (o *Options) setDefaults() {
	if o.System == "" {
		o.System = "B"
	}
	if o.Recommender == "" {
		o.Recommender = o.System
	}
	if o.Scale == 0 {
		o.Scale = 0.0002
	}
	if o.PoolSize == 0 {
		o.PoolSize = 30
	}
	if o.WindowSize == 0 {
		o.WindowSize = 24
	}
	if len(o.Goal.Steps) == 0 {
		o.Goal = core.Example2Goal()
	}
	if o.MixShiftThreshold == 0 {
		o.MixShiftThreshold = 0.25
	}
	if o.Timeout == 0 {
		o.Timeout = core.DefaultTimeout
	}
}

// Autopilot is one assembled control loop over one engine.
type Autopilot struct {
	opts     Options
	eng      *engine.Engine
	stream   *Stream
	runner   core.Runner
	estR     core.Runner // no OnMeasure hook: estimates are not traffic
	ctrl     *controller
	metrics  *Metrics
	famOrder []string

	curName string
}

// recConfigOf maps a recommender profile name ("1C" handled upstream).
func recConfigOf(name string) (recommender.Config, error) {
	switch name {
	case "A":
		return recommender.SystemA(), nil
	case "B":
		return recommender.SystemB(), nil
	case "C":
		return recommender.SystemC(), nil
	}
	return recommender.Config{}, fmt.Errorf("autopilot: unknown recommender %q", name)
}

// New loads the engine and family pools through a bench.Lab (the PR 1
// substrate: loading, stratified sampling and the storage budget are the
// batch benchmark's own) and assembles the control loop. The lab is not
// retained: once traffic starts, the autopilot owns the engine's
// configuration lifecycle.
func New(opts Options) (*Autopilot, error) {
	opts.setDefaults()
	if len(opts.Families) == 0 {
		return nil, fmt.Errorf("autopilot: no families configured")
	}
	db, err := bench.DBOfFamily(opts.Families[0].Family)
	if err != nil {
		return nil, err
	}
	for _, fs := range opts.Families[1:] {
		d, err := bench.DBOfFamily(fs.Family)
		if err != nil {
			return nil, err
		}
		if d != db {
			return nil, fmt.Errorf("autopilot: families span databases %s and %s; one engine serves one database", db, d)
		}
	}
	var recCfg recommender.Config
	if opts.Recommender != "1C" {
		if recCfg, err = recConfigOf(opts.Recommender); err != nil {
			return nil, err
		}
	}

	lab := bench.NewLab(opts.Scale, opts.Seed)
	lab.WorkloadSize = opts.PoolSize
	lab.Parallelism = opts.Parallelism
	lab.DisableWhatIfCache = opts.NoWhatIfCache

	famOrder := make([]string, len(opts.Families))
	pools := make([]workload.Family, len(opts.Families))
	shares := make([]float64, len(opts.Families))
	for i, fs := range opts.Families {
		famOrder[i] = fs.Family
		pools[i] = lab.Workload(opts.System, fs.Family)
		shares[i] = fs.Weight
	}
	var drifted []float64
	driftAt := 0
	if opts.Drift != nil {
		drifted = make([]float64, len(famOrder))
		for _, fs := range opts.Drift.Shares {
			found := false
			for i, name := range famOrder {
				if name == fs.Family {
					drifted[i] = fs.Weight
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("autopilot: drift family %q is not in the base mixture", fs.Family)
			}
		}
		driftAt = opts.Drift.AtWindow
		if opts.Warmup {
			driftAt++ // the warmup window occupies stream position 0
		}
	}

	eng := lab.Engine(opts.System, db)
	budget := lab.Budget(opts.System, db)

	stream, err := newStream(opts.Seed+1, pools, shares, drifted, driftAt)
	if err != nil {
		return nil, err
	}

	metrics := NewMetrics()
	a := &Autopilot{
		opts:     opts,
		eng:      eng,
		stream:   stream,
		runner:   core.Runner{Parallelism: opts.Parallelism, OnMeasure: metrics.ObserveQuery},
		estR:     core.Runner{Parallelism: opts.Parallelism},
		metrics:  metrics,
		famOrder: famOrder,
		curName:  "P",
	}
	a.ctrl = &controller{
		eng:       eng,
		runner:    a.estR,
		budget:    budget,
		profile:   opts.Recommender,
		recCfg:    recCfg,
		timeout:   opts.Timeout,
		threshold: opts.MixShiftThreshold,
		whatif:    eng.NewWhatIf(),
		metrics:   metrics,
	}
	return a, nil
}

// Metrics exposes the live counters (for the daemon's HTTP endpoints).
func (a *Autopilot) Metrics() *Metrics { return a.metrics }

// Run drives the control loop: warmup tune (if configured), then one
// window per iteration until the bound or the context ends. It returns
// every window report plus the retune log.
//
// In overlapped mode a retune launched after window w runs concurrently
// with window w+1's traffic and is joined before window w+2, so a
// transition overlaps exactly one window of queries and every later
// window runs fully under the new configuration.
//
// conflint:hotpath — the window loop: every statement here executes once
// per window while traffic flows.
func (a *Autopilot) Run(ctx context.Context) (reports []WindowReport, retunes []RetuneRecord, err error) {
	obs := &observer{goal: a.opts.Goal, timeout: a.opts.Timeout, famOrder: a.famOrder}
	reports = make([]WindowReport, 0, a.opts.Windows)
	retunes = make([]RetuneRecord, 0, a.opts.Windows)

	streamPos := 0
	if a.opts.Warmup {
		qs, err := a.stream.Window(streamPos, a.opts.WindowSize)
		if err != nil {
			return nil, nil, err
		}
		streamPos++
		job := a.ctrl.launch(-1, "warmup", sqlsOf(qs), countMix(qs, a.famOrder))
		<-job.done
		retunes = append(retunes, job.rec)
		if job.rec.Err == "" {
			a.curName = job.rec.Name
		}
	}

	var pending *retuneJob
	// joinPending drains the in-flight retune, if any. It runs before
	// every return: a retune goroutine may be mid-Transition, and exiting
	// while it holds the engine's write lock would drop accepted work on
	// the floor (the shutdown-ordering contract shared with the gateway).
	joinPending := func() {
		if pending == nil {
			return
		}
		<-pending.done
		retunes = append(retunes, pending.rec)
		if pending.rec.Err == "" {
			a.curName = pending.rec.Name
		}
		pending = nil
	}
	defer joinPending()

	// firstFull tracks the window that will be the first served entirely
	// by the most recently applied configuration (-1 = none awaited).
	firstFull := -1
	lastPredicted := 0.0

	for w := 0; a.opts.Windows == 0 || w < a.opts.Windows; w++ {
		if err := ctx.Err(); err != nil {
			break
		}
		qs, err := a.stream.Window(streamPos, a.opts.WindowSize)
		if err != nil {
			return reports, retunes, err
		}
		streamPos++
		sqls := sqlsOf(qs)
		startCfg := a.curName

		ms, err := a.runner.RunWorkload(a.eng, sqls, a.opts.Timeout)
		if err != nil {
			return reports, retunes, fmt.Errorf("autopilot: window %d: %w", w, err)
		}
		est, err := a.estR.EstimateWorkload(a.eng, sqls)
		if err != nil {
			return reports, retunes, fmt.Errorf("autopilot: window %d estimates: %w", w, err)
		}

		cfgLabel := startCfg
		if pending != nil {
			// The overlapped retune ran concurrently with this window's
			// traffic; join it before observing.
			<-pending.done
			retunes = append(retunes, pending.rec)
			if pending.rec.Err == "" {
				a.curName = pending.rec.Name
				cfgLabel = startCfg + "→" + pending.rec.Name
				firstFull = w + 1
				lastPredicted = pending.rec.PredictedMean
			}
			pending = nil
		}

		rep := obs.observe(w, cfgLabel, qs, ms, est)
		if w == firstFull && rep.MeanSeconds > 0 && lastPredicted > 0 {
			rep.HypoRatio = lastPredicted / rep.MeanSeconds
			firstFull = -1
		}

		if !a.opts.Static {
			if d := a.ctrl.consider(rep); d.Retune {
				rep.Trigger = d.Reason
				job := a.ctrl.launch(w, d.Reason, sqls, rep.Mix)
				if a.opts.Sync {
					<-job.done
					retunes = append(retunes, job.rec)
					if job.rec.Err == "" {
						a.curName = job.rec.Name
						firstFull = w + 1
						lastPredicted = job.rec.PredictedMean
					}
				} else {
					pending = job
				}
			}
		}

		a.scaleWindow(rep)
		a.metrics.ObserveWindow(rep)
		reports = append(reports, rep)
	}

	return reports, retunes, nil
}

// scaleWindow hands one window's digest to the elastic loop, if one is
// configured: the report lowers to shard.WindowMetrics through the
// ScaleMetrics bridge (batch windows have no admission queue, so queue
// depth is 0) and the recommender/updater pair may reshard the cluster
// between windows — the same code path the gateway's live autoscaler
// drives.
func (a *Autopilot) scaleWindow(rep WindowReport) {
	s := a.opts.Autoscale
	if s == nil || s.Cluster == nil || s.Rec == nil || s.Upd == nil {
		return
	}
	cur := shard.State{Shards: s.Cluster.Shards(), Pool: s.Cluster.Pool()}
	s.Upd.Apply(s.Rec.Recommend(cur, rep.ScaleMetrics(0)))
}

func sqlsOf(qs []workload.Query) []string {
	out := make([]string, len(qs))
	for i, q := range qs {
		out[i] = q.SQL
	}
	return out
}
