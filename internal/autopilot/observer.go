package autopilot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/workload"
)

// FamilyCount is one family's share of a window's traffic.
type FamilyCount struct {
	Family string
	Count  int
}

// WindowReport is the observer's digest of one window of live traffic:
// the per-window CFC collapsed to its headline quantiles, the goal
// verdict (boolean and graded), and the estimate-vs-actual ratio
// quantiles that track how far the optimizer's model has drifted from
// the configuration actually serving the queries (the paper's E/A
// analysis, taken online). Everything here derives from the simulated
// clock, so reports are byte-identical across runner parallelism.
type WindowReport struct {
	Window  int
	Config  string
	Queries int
	Mix     []FamilyCount

	MeanSeconds   float64
	P50, P95, P99 float64
	Timeouts      int

	// EAMedian and EAP90 are quantiles of E(q,C)/A(q,C) over the
	// window's completed queries.
	EAMedian, EAP90 float64

	Satisfied    bool
	Satisfaction float64

	// Trigger is the controller's decision made on seeing this window
	// ("" when it left the configuration alone).
	Trigger string

	// HypoRatio, when nonzero, is predicted/actual mean seconds for the
	// first full window served by a freshly applied configuration — the
	// online analogue of the paper's H-vs-A comparison.
	HypoRatio float64
}

// ScaleMetrics lowers the report into the metric record the shard
// autoscaler's scaling rules evaluate, bridging the autopilot's
// observer to the elastic resource loop: goal level and mean latency
// carry over, queue depth is the caller's to supply (the autopilot's
// batch windows have no admission queue).
//
// conflint:pure — lowering an observation must not adjust it: the
// autoscaler grades this record against its goal, and a bridge that
// mutated the report would corrupt the retune decision downstream.
func (r WindowReport) ScaleMetrics(queueDepth float64) shard.WindowMetrics {
	return shard.WindowMetrics{
		Window:      r.Window,
		Queries:     r.Queries,
		MeanSeconds: r.MeanSeconds,
		GoalLevel:   r.Satisfaction,
		QueueDepth:  queueDepth,
	}
}

// observer turns raw window traffic into WindowReports.
type observer struct {
	goal     core.Goal
	timeout  float64
	famOrder []string
}

// observe digests one window. ms and est are parallel to qs.
func (o *observer) observe(w int, cfgName string, qs []workload.Query, ms, est []core.Measure) WindowReport {
	cfc := core.NewCFC(ms, o.timeout)
	rep := WindowReport{
		Window:       w,
		Config:       cfgName,
		Queries:      len(ms),
		Mix:          countMix(qs, o.famOrder),
		MeanSeconds:  cfc.Mean(),
		P50:          cfc.Quantile(0.50),
		P95:          cfc.Quantile(0.95),
		P99:          cfc.Quantile(0.99),
		Timeouts:     cfc.Timeouts(),
		Satisfied:    o.goal.Satisfied(cfc),
		Satisfaction: o.goal.Satisfaction(cfc),
	}
	ratios := make([]float64, 0, len(ms))
	for i := range ms {
		if i >= len(est) || ms[i].TimedOut || ms[i].Seconds <= 0 {
			continue
		}
		ratios = append(ratios, est[i].Seconds/ms[i].Seconds)
	}
	sort.Float64s(ratios)
	rep.EAMedian = quantile(ratios, 0.50)
	rep.EAP90 = quantile(ratios, 0.90)
	return rep
}

// countMix tallies the window's queries per family, in famOrder.
func countMix(qs []workload.Query, famOrder []string) []FamilyCount {
	counts := make(map[string]int)
	for _, q := range qs {
		counts[q.Family]++
	}
	out := make([]FamilyCount, len(famOrder))
	for i, f := range famOrder {
		out[i] = FamilyCount{Family: f, Count: counts[f]}
	}
	return out
}

// proportions converts a mix to normalized shares in famOrder.
func proportions(mix []FamilyCount) []float64 {
	total := 0
	for _, fc := range mix {
		total += fc.Count
	}
	out := make([]float64, len(mix))
	if total == 0 {
		return out
	}
	for i, fc := range mix {
		out[i] = float64(fc.Count) / float64(total)
	}
	return out
}

// quantile reads the p-quantile of an ascending slice (0 when empty).
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	k := int(math.Ceil(p * float64(len(sorted))))
	if k <= 0 {
		k = 1
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[k-1]
}

// fmtSec renders a simulated-seconds figure at fixed width; timed-out
// quantiles (+Inf) print as t/out.
func fmtSec(x float64) string {
	if math.IsInf(x, 1) {
		return "  t/out"
	}
	return fmt.Sprintf("%7.2f", x)
}

func fmtMix(mix []FamilyCount) string {
	total := 0
	for _, fc := range mix {
		total += fc.Count
	}
	parts := make([]string, len(mix))
	for i, fc := range mix {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(fc.Count) / float64(total)
		}
		parts[i] = fmt.Sprintf("%s:%02.0f%%", fc.Family, pct)
	}
	return strings.Join(parts, " ")
}

// RenderTable prints the per-window run as the drift experiment's table
// artifact. Retune records appear under the window whose report
// triggered them. Wall-clock fields are deliberately omitted: the table
// must be byte-identical for a given seed at any parallelism.
//
// conflint:sink drift experiment window table
func RenderTable(reports []WindowReport, retunes []RetuneRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-8s %-24s %4s %8s %8s %8s %4s %7s %5s %5s  %s\n",
		"win", "config", "mix", "n", "p50", "p95", "p99", "t/o", "E/A q50", "goal", "level", "trigger")
	byWindow := make(map[int][]RetuneRecord)
	for _, r := range retunes {
		byWindow[r.Window] = append(byWindow[r.Window], r)
	}
	for _, r := range byWindow[-1] {
		b.WriteString(renderRetune(r))
	}
	for _, rep := range reports {
		verdict := "VIOL"
		if rep.Satisfied {
			verdict = "ok"
		}
		fmt.Fprintf(&b, "%-4d %-8s %-24s %4d %s %s %s %4d %7.2f %5s %5.2f  %s\n",
			rep.Window, rep.Config, fmtMix(rep.Mix), rep.Queries,
			fmtSec(rep.P50), fmtSec(rep.P95), fmtSec(rep.P99), rep.Timeouts,
			rep.EAMedian, verdict, rep.Satisfaction, rep.Trigger)
		if rep.HypoRatio > 0 {
			fmt.Fprintf(&b, "     · first full window under new config: H/A = %.2f\n", rep.HypoRatio)
		}
		for _, r := range byWindow[rep.Window] {
			b.WriteString(renderRetune(r))
		}
	}
	return b.String()
}

func renderRetune(r RetuneRecord) string {
	if r.Err != "" {
		return fmt.Sprintf("     ↳ retune [%s] failed: %s\n", r.Reason, r.Err)
	}
	return fmt.Sprintf("     ↳ retune [%s] → %s: built %d, kept %d, dropped %d, AT=%.1fs, predicted %.2fs/q\n",
		r.Reason, r.Name, r.Built, r.Kept, r.Dropped, r.BuildSeconds, r.PredictedMean)
}

// RenderComparison prints the headline drift experiment: the autopilot
// run against a static baseline that froze its configuration after the
// warmup tune, window by window.
//
// conflint:sink autopilot-vs-static comparison table
func RenderComparison(auto, static []WindowReport) string {
	n := len(auto)
	if len(static) < n {
		n = len(static)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-24s | %-8s %8s %5s %5s | %-8s %8s %5s %5s\n",
		"", "", "autopilot", "", "", "", "static", "", "", "")
	fmt.Fprintf(&b, "%-4s %-24s | %-8s %8s %5s %5s | %-8s %8s %5s %5s\n",
		"win", "mix", "config", "p95", "goal", "level", "config", "p95", "goal", "level")
	for i := 0; i < n; i++ {
		a, s := auto[i], static[i]
		av, sv := "VIOL", "VIOL"
		if a.Satisfied {
			av = "ok"
		}
		if s.Satisfied {
			sv = "ok"
		}
		fmt.Fprintf(&b, "%-4d %-24s | %-8s %s %5s %5.2f | %-8s %s %5s %5.2f\n",
			a.Window, fmtMix(a.Mix),
			a.Config, fmtSec(a.P95), av, a.Satisfaction,
			s.Config, fmtSec(s.P95), sv, s.Satisfaction)
	}
	return b.String()
}
