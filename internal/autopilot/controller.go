package autopilot

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/recommender"
)

// Decision is the controller's verdict on one window report.
type Decision struct {
	Retune bool
	Reason string
}

// RetuneRecord documents one configuration change: why it was triggered,
// what it built, what the what-if estimator promised, and (once the next
// full window has been served) what it delivered. WallMS is the only
// wall-clock field and never appears in rendered reports.
type RetuneRecord struct {
	// Window is the index of the report that triggered the tune
	// (-1 for the warmup tune that precedes traffic).
	Window int
	Reason string
	Name   string

	Built, Kept, Dropped int
	BuildSeconds         float64

	// PredictedMean is the what-if mean seconds per query for the
	// triggering window's queries under the new configuration.
	PredictedMean float64

	WallMS int64
	Err    string
}

// controller decides when to retune and performs the retunes. Launching
// and considering happen on the autopilot's loop goroutine; the retune
// body itself may run concurrently with query traffic — its reads go
// through the engine's what-if session (read lock) and its apply goes
// through Transition (write lock), so traffic and tuning interleave
// safely.
type controller struct {
	eng     *engine.Engine
	runner  core.Runner
	budget  int64
	profile string // "A", "B", "C" or "1C"
	recCfg  recommender.Config
	timeout float64

	// threshold is the L1/2 mixture distance beyond which the observed
	// mix counts as shifted from the one last tuned for.
	threshold float64

	lastTuneMix  []float64
	tunedThisMix bool
	epoch        int

	// whatif is the controller's long-lived estimation session. The
	// recommender search and the post-search prediction share its
	// relevance-keyed cache; the session invalidates itself when a
	// Transition moves the engine's configuration epoch, so it stays
	// correct across retunes.
	whatif *engine.WhatIf

	metrics *Metrics
}

// consider inspects a window report and decides whether to retune. A
// mixture shift always warrants a retune (the configuration was chosen
// for a different workload); a goal violation warrants one only if the
// current mix has not already been tuned for — retrying an identical
// problem would churn structures for nothing.
//
// conflint:pure — the controller's propose/apply split: deciding is an
// observation of the report, and only launch (loop-goroutine-only)
// commits state. A consider that mutated the controller could skew
// every later window's decision.
func (c *controller) consider(rep WindowReport) Decision {
	mix := proportions(rep.Mix)
	shifted := c.lastTuneMix != nil && l1Half(mix, c.lastTuneMix) > c.threshold
	violated := !rep.Satisfied
	switch {
	case shifted && violated:
		return Decision{true, "mix-shift+goal-violation"}
	case shifted:
		return Decision{true, "mix-shift"}
	case violated && !c.tunedThisMix:
		return Decision{true, "goal-violation"}
	}
	return Decision{}
}

// l1Half is half the L1 distance between two distributions: the total
// probability mass that moved.
func l1Half(a, b []float64) float64 {
	var d float64
	for i := range a {
		x := a[i] - b[i]
		if x < 0 {
			x = -x
		}
		d += x
	}
	return d / 2
}

// retuneJob is one in-flight retune.
type retuneJob struct {
	done chan struct{}
	rec  RetuneRecord
}

// launch starts a retune for the mix observed in qsMix over the window's
// queries. Call only from the loop goroutine, and only with no other job
// in flight. The epoch is assigned here so configuration names do not
// depend on goroutine scheduling.
func (c *controller) launch(window int, reason string, sqls []string, mix []FamilyCount) *retuneJob {
	c.epoch++
	name := fmt.Sprintf("R%d", c.epoch)
	c.lastTuneMix = proportions(mix)
	c.tunedThisMix = true
	job := &retuneJob{done: make(chan struct{})}
	job.rec = RetuneRecord{Window: window, Reason: reason, Name: name}
	if c.metrics != nil {
		c.metrics.RetunesInFlight.Add(1)
	}
	go c.retune(job, sqls)
	return job
}

// retune recommends, predicts and transitions. It runs off the loop
// goroutine in overlapped mode; everything it touches on the engine is
// lock-protected.
func (c *controller) retune(job *retuneJob, sqls []string) {
	defer close(job.done)
	// conflint:ignore WallMS is wall-clock observability for the operator; it is excluded from all rendered reports
	start := time.Now()
	rec := &job.rec
	defer func() {
		// conflint:ignore WallMS is wall-clock observability for the operator; it is excluded from all rendered reports
		rec.WallMS = time.Since(start).Milliseconds()
		if c.metrics != nil {
			c.metrics.RetunesInFlight.Add(-1)
			c.metrics.RetuneWallMS.Add(rec.WallMS)
			if rec.Err == "" {
				c.metrics.RetunesApplied.Add(1)
				c.metrics.StructuresBuilt.Add(int64(rec.Built))
				c.metrics.StructuresDropped.Add(int64(rec.Dropped))
			} else {
				c.metrics.RetuneErrors.Add(1)
			}
		}
	}()

	var cfg conf.Configuration
	if c.profile == "1C" {
		cfg = engine.OneColumnConfiguration(c.eng)
	} else {
		var err error
		cfg, err = recommender.New(c.eng, c.recCfg).
			Parallel(c.runner.Parallelism).
			UseSession(c.whatif).
			Recommend(dedupe(sqls), c.budget)
		if err != nil {
			rec.Err = err.Error()
			return
		}
	}
	cfg.Name = rec.Name

	// Predict before applying: what-if mean for the triggering window's
	// queries under the candidate, seen from the current configuration.
	// The prediction reuses the search's session, so the winning
	// configuration's estimates are usually already cached.
	hyp, err := c.runner.WhatIfSessionWorkload(c.whatif, sqls, cfg)
	if err != nil {
		rec.Err = err.Error()
		return
	}
	var total float64
	for _, m := range hyp {
		s := m.Seconds
		if c.timeout > 0 && s > c.timeout {
			s = c.timeout
		}
		total += s
	}
	if len(hyp) > 0 {
		rec.PredictedMean = total / float64(len(hyp))
	}

	rep, err := c.eng.Transition(cfg)
	if err != nil {
		rec.Err = err.Error()
		return
	}
	rec.Built, rec.Kept, rec.Dropped = rep.Built, rep.Kept, rep.Dropped
	rec.BuildSeconds = rep.BuildSeconds
}

// dedupe returns the sorted distinct queries of a window: the stream
// draws with replacement, but the recommender wants the workload's
// support, not its multiset.
func dedupe(sqls []string) []string {
	seen := make(map[string]bool, len(sqls))
	out := make([]string, 0, len(sqls))
	for _, s := range sqls {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
