package autopilot

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Metrics is the autopilot's observability surface: lock-free counters
// updated from the worker pool as queries complete, plus a mutex-guarded
// snapshot of the most recent window report. It backs both the periodic
// text report and the daemon's /metrics and /healthz endpoints.
type Metrics struct {
	start time.Time

	QueriesServed    atomic.Int64
	Timeouts         atomic.Int64
	WindowsCompleted atomic.Int64
	GoalViolations   atomic.Int64

	RetunesApplied    atomic.Int64
	RetuneErrors      atomic.Int64
	RetunesInFlight   atomic.Int64
	StructuresBuilt   atomic.Int64
	StructuresDropped atomic.Int64
	RetuneWallMS      atomic.Int64

	mu       sync.Mutex
	last     WindowReport // conflint:guardedby mu
	haveLast bool         // conflint:guardedby mu
}

// NewMetrics starts the uptime clock.
func NewMetrics() *Metrics {
	// conflint:ignore uptime is wall-clock observability; it feeds /metrics and /healthz, never a rendered report
	return &Metrics{start: time.Now()}
}

// ObserveQuery is the core.Runner.OnMeasure hook: one completed query.
func (m *Metrics) ObserveQuery(q core.Measure) {
	m.QueriesServed.Add(1)
	if q.TimedOut {
		m.Timeouts.Add(1)
	}
}

// ObserveWindow records a completed window report.
func (m *Metrics) ObserveWindow(rep WindowReport) {
	m.WindowsCompleted.Add(1)
	if !rep.Satisfied {
		m.GoalViolations.Add(1)
	}
	m.mu.Lock()
	m.last = rep
	m.haveLast = true
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of every metric, for reports and the
// perf-trajectory JSON.
type Snapshot struct {
	UptimeSeconds     float64    `json:"uptime_seconds"`
	QueriesServed     int64      `json:"queries_served"`
	Timeouts          int64      `json:"timeouts"`
	WindowsCompleted  int64      `json:"windows_completed"`
	GoalViolations    int64      `json:"goal_violations"`
	RetunesApplied    int64      `json:"retunes_applied"`
	RetuneErrors      int64      `json:"retune_errors"`
	RetunesInFlight   int64      `json:"retunes_in_flight"`
	StructuresBuilt   int64      `json:"structures_built"`
	StructuresDropped int64      `json:"structures_dropped"`
	RetuneWallMS      int64      `json:"retune_wall_ms"`
	LastWindow        *WindowRow `json:"last_window,omitempty"`
}

// WindowRow is the JSON-safe view of a window report (infinite quantiles
// are clamped to -1, meaning "beyond timeout").
type WindowRow struct {
	Window       int     `json:"window"`
	Config       string  `json:"config"`
	Queries      int     `json:"queries"`
	P50          float64 `json:"p50_seconds"`
	P95          float64 `json:"p95_seconds"`
	P99          float64 `json:"p99_seconds"`
	MeanSeconds  float64 `json:"mean_seconds"`
	Timeouts     int     `json:"timeouts"`
	EAMedian     float64 `json:"ea_ratio_p50"`
	EAP90        float64 `json:"ea_ratio_p90"`
	Satisfied    bool    `json:"goal_satisfied"`
	Satisfaction float64 `json:"goal_satisfaction"`
}

func finite(x float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		return -1
	}
	return x
}

func rowOf(rep WindowReport) *WindowRow {
	return &WindowRow{
		Window:       rep.Window,
		Config:       rep.Config,
		Queries:      rep.Queries,
		P50:          finite(rep.P50),
		P95:          finite(rep.P95),
		P99:          finite(rep.P99),
		MeanSeconds:  finite(rep.MeanSeconds),
		Timeouts:     rep.Timeouts,
		EAMedian:     rep.EAMedian,
		EAP90:        rep.EAP90,
		Satisfied:    rep.Satisfied,
		Satisfaction: rep.Satisfaction,
	}
}

// Snapshot copies the current metric values.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		// conflint:ignore uptime is wall-clock observability; Snapshot consumers never render it into deterministic artifacts
		UptimeSeconds:     time.Since(m.start).Seconds(),
		QueriesServed:     m.QueriesServed.Load(),
		Timeouts:          m.Timeouts.Load(),
		WindowsCompleted:  m.WindowsCompleted.Load(),
		GoalViolations:    m.GoalViolations.Load(),
		RetunesApplied:    m.RetunesApplied.Load(),
		RetuneErrors:      m.RetuneErrors.Load(),
		RetunesInFlight:   m.RetunesInFlight.Load(),
		StructuresBuilt:   m.StructuresBuilt.Load(),
		StructuresDropped: m.StructuresDropped.Load(),
		RetuneWallMS:      m.RetuneWallMS.Load(),
	}
	m.mu.Lock()
	if m.haveLast {
		s.LastWindow = rowOf(m.last)
	}
	m.mu.Unlock()
	return s
}

// Handler serves /metrics (Prometheus text exposition) and /healthz
// (JSON liveness) off this metrics set.
func (m *Metrics) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.serveMetrics)
	mux.HandleFunc("/healthz", m.serveHealth)
	return mux
}

func (m *Metrics) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	s := m.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "autopilot_uptime_seconds %g\n", s.UptimeSeconds)
	fmt.Fprintf(w, "autopilot_queries_served_total %d\n", s.QueriesServed)
	fmt.Fprintf(w, "autopilot_query_timeouts_total %d\n", s.Timeouts)
	fmt.Fprintf(w, "autopilot_windows_completed_total %d\n", s.WindowsCompleted)
	fmt.Fprintf(w, "autopilot_goal_violations_total %d\n", s.GoalViolations)
	fmt.Fprintf(w, "autopilot_retunes_applied_total %d\n", s.RetunesApplied)
	fmt.Fprintf(w, "autopilot_retune_errors_total %d\n", s.RetuneErrors)
	fmt.Fprintf(w, "autopilot_retunes_in_flight %d\n", s.RetunesInFlight)
	fmt.Fprintf(w, "autopilot_structures_built_total %d\n", s.StructuresBuilt)
	fmt.Fprintf(w, "autopilot_structures_dropped_total %d\n", s.StructuresDropped)
	fmt.Fprintf(w, "autopilot_retune_wall_ms_total %d\n", s.RetuneWallMS)
	if lw := s.LastWindow; lw != nil {
		fmt.Fprintf(w, "autopilot_window_index %d\n", lw.Window)
		fmt.Fprintf(w, "autopilot_window_p50_seconds %g\n", lw.P50)
		fmt.Fprintf(w, "autopilot_window_p95_seconds %g\n", lw.P95)
		fmt.Fprintf(w, "autopilot_window_p99_seconds %g\n", lw.P99)
		fmt.Fprintf(w, "autopilot_window_mean_seconds %g\n", lw.MeanSeconds)
		fmt.Fprintf(w, "autopilot_window_ea_ratio_p50 %g\n", lw.EAMedian)
		fmt.Fprintf(w, "autopilot_window_ea_ratio_p90 %g\n", lw.EAP90)
		sat := 0
		if lw.Satisfied {
			sat = 1
		}
		fmt.Fprintf(w, "autopilot_window_goal_satisfied %d\n", sat)
		fmt.Fprintf(w, "autopilot_window_goal_satisfaction %g\n", lw.Satisfaction)
	}
}

func (m *Metrics) serveHealth(w http.ResponseWriter, _ *http.Request) {
	s := m.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	// conflint:ignore best-effort write to a health-check client that may have disconnected; nothing to do with the error
	json.NewEncoder(w).Encode(map[string]any{
		"status":            "ok",
		"uptime_seconds":    s.UptimeSeconds,
		"windows_completed": s.WindowsCompleted,
		"queries_served":    s.QueriesServed,
		"retunes_in_flight": s.RetunesInFlight,
	})
}
