package autopilot

import (
	"fmt"
	"math/rand"

	"repro/internal/workload"
)

// FamilyShare is one family's weight in the stream mixture.
type FamilyShare struct {
	Family string
	Weight float64
}

// Drift is the stream's schedule of mixture change: from window AtWindow
// on, queries are drawn with the Shares weights instead of the initial
// ones. This is the benchmark's model of workload evolution — the paper's
// one-shot evaluation freezes the mix; the autopilot's whole point is to
// notice when it moves.
type Drift struct {
	AtWindow int
	Shares   []FamilyShare
}

// Stream is an unbounded, seeded source of family queries. A window is a
// consecutive slice of the stream; windows must be drawn in order because
// every draw advances the generator (that, plus the seed, is what makes a
// bounded run byte-reproducible at any parallelism).
type Stream struct {
	rng     *rand.Rand
	base    workload.Mixture
	drifted *workload.Mixture
	driftAt int
	next    int // next window index expected
}

// newStream builds a stream over the family pools. shares and pools are
// parallel; drifted may be nil for a stationary stream.
func newStream(seed int64, pools []workload.Family, shares []float64, drifted []float64, driftAt int) (*Stream, error) {
	base, err := workload.NewMixture(pools, shares)
	if err != nil {
		return nil, err
	}
	s := &Stream{rng: rand.New(rand.NewSource(seed)), base: base, driftAt: driftAt}
	if drifted != nil {
		m, err := workload.NewMixture(pools, drifted)
		if err != nil {
			return nil, err
		}
		s.drifted = &m
	}
	return s, nil
}

// MixtureAt returns the mixture in force for a window index.
func (s *Stream) MixtureAt(w int) workload.Mixture {
	if s.drifted != nil && w >= s.driftAt {
		return *s.drifted
	}
	return s.base
}

// Window draws the n queries of window w. Windows must be requested in
// strictly increasing order starting at 0.
func (s *Stream) Window(w, n int) ([]workload.Query, error) {
	if w != s.next {
		return nil, fmt.Errorf("autopilot: stream window %d requested, expected %d (windows are sequential)", w, s.next)
	}
	s.next++
	m := s.MixtureAt(w)
	out := make([]workload.Query, n)
	for i := range out {
		out[i] = m.Draw(s.rng)
	}
	return out, nil
}
