package autopilot

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
)

// tinyOpts is the shared bounded drift scenario: warmup tune, two-family
// mixture flipping at window 1, four windows.
func tinyOpts(parallelism int, sync bool) Options {
	return Options{
		System: "B",
		Families: []FamilyShare{
			{Family: "NREF2J", Weight: 0.9},
			{Family: "NREF3J", Weight: 0.1},
		},
		Drift: &Drift{
			AtWindow: 1,
			Shares: []FamilyShare{
				{Family: "NREF2J", Weight: 0.1},
				{Family: "NREF3J", Weight: 0.9},
			},
		},
		Scale:       0.0001,
		Seed:        7,
		PoolSize:    12,
		WindowSize:  10,
		Windows:     4,
		Parallelism: parallelism,
		Sync:        sync,
		Warmup:      true,
		Goal: core.Goal{Name: "tail", Steps: []core.GoalStep{
			{X: 60, Frac: 0.50},
			{X: 400, Frac: 0.95},
		}},
	}
}

func runBounded(t *testing.T, opts Options) ([]WindowReport, []RetuneRecord) {
	t.Helper()
	ap, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	reports, retunes, err := ap.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != opts.Windows {
		t.Fatalf("got %d reports, want %d", len(reports), opts.Windows)
	}
	return reports, retunes
}

// TestAutopilotDeterminism mirrors the batch runner's determinism
// guarantee for the online loop: with synchronous transitions, the same
// seed and window bound produce byte-identical window reports (and
// identical retune logs, wall clock aside) at parallelism 1 and N.
func TestAutopilotDeterminism(t *testing.T) {
	baseReports, baseRetunes := runBounded(t, tinyOpts(1, true))
	baseTable := RenderTable(baseReports, baseRetunes)
	if len(baseRetunes) < 2 {
		t.Fatalf("scenario too quiet: %d retunes, want warmup + drift retune", len(baseRetunes))
	}

	for _, n := range []int{4, 16} {
		reports, retunes := runBounded(t, tinyOpts(n, true))
		if !reflect.DeepEqual(baseReports, reports) {
			t.Errorf("parallel(%d) window reports differ from sequential", n)
		}
		table := RenderTable(reports, retunes)
		if table != baseTable {
			t.Errorf("parallel(%d) rendered table differs from sequential:\n--- seq ---\n%s\n--- par ---\n%s", n, baseTable, table)
		}
		for i := range retunes {
			a, b := baseRetunes[i], retunes[i]
			a.WallMS, b.WallMS = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Errorf("parallel(%d) retune %d differs: %+v vs %+v", n, i, a, b)
			}
		}
	}
}

// TestAutopilotSameSeedSameRun re-runs the identical sequential scenario
// and requires a byte-identical table: the stream, sampler and
// recommender hold no hidden global state.
func TestAutopilotSameSeedSameRun(t *testing.T) {
	r1, t1 := runBounded(t, tinyOpts(1, true))
	r2, t2 := runBounded(t, tinyOpts(1, true))
	if RenderTable(r1, t1) != RenderTable(r2, t2) {
		t.Error("two runs with the same seed rendered different tables")
	}
}
