// Package btree implements an in-memory B+-tree keyed by composite rows,
// the index structure behind every secondary and primary-key index in the
// benchmark engine.
//
// Keys are val.Row values compared lexicographically; each entry carries an
// opaque int64 payload (a storage RowID). Duplicate keys are permitted —
// entries are ordered by (key, payload) — which is what a non-unique
// secondary index needs.
//
// The tree is a real search structure (lookups walk internal nodes to a
// leaf, range scans follow the leaf chain), and it exposes a size model
// (Height, LeafPages) that the cost model uses to bill index traversals
// and leaf scans in simulated time.
package btree

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/val"
)

// order is the fan-out of the tree: maximum number of entries in a leaf
// and of children in an internal node. 64 keeps the height realistic
// (3-4 levels for millions of keys) while staying cache-friendly.
const order = 64

type leaf struct {
	keys []val.Row
	rids []int64
	next *leaf
}

type inner struct {
	// seps[i] is the smallest key in children[i+1]'s subtree.
	seps     []val.Row
	children []node
}

type node interface{ isNode() }

func (*leaf) isNode()  {}
func (*inner) isNode() {}

// Tree is a B+-tree. The zero value is not usable; call New.
type Tree struct {
	root   node
	height int // number of levels; 1 = root is a leaf
	size   int64

	keyWidth int64 // cumulative key bytes, for the size model
	unique   bool
}

// New returns an empty tree. If unique is true, Insert rejects an entry
// whose key already exists.
func New(unique bool) *Tree {
	return &Tree{root: &leaf{}, height: 1, unique: unique}
}

// Len returns the number of entries.
func (t *Tree) Len() int64 { return t.size }

// Height returns the number of levels in the tree (1 = a single leaf).
// The cost model bills Height random page reads per traversal.
func (t *Tree) Height() int { return t.height }

// entryWidth returns the average entry width in bytes (key + 8-byte rid).
func (t *Tree) entryWidth() int64 {
	if t.size == 0 {
		return 16
	}
	return t.keyWidth/t.size + 8
}

// LeafPages returns the modeled number of leaf pages, assuming 70% page
// fill (the steady-state fill factor of a B+-tree built by insertion).
func (t *Tree) LeafPages() int64 {
	bytes := t.size * t.entryWidth()
	fill := int64(cost.PageSize) * 70 / 100
	if fill < 1 {
		fill = 1
	}
	p := (bytes + fill - 1) / fill
	if p == 0 {
		p = 1
	}
	return p
}

// Bytes returns the modeled total size of the index (leaves plus ~1.5%
// internal-node overhead).
func (t *Tree) Bytes() int64 {
	lp := t.LeafPages()
	internal := lp/order + 1
	return (lp + internal) * cost.PageSize
}

// EntriesPerLeafPage returns the modeled entries per leaf page, used to
// bill sequential leaf-page reads during range scans.
func (t *Tree) EntriesPerLeafPage() int64 {
	n := (int64(cost.PageSize) * 70 / 100) / t.entryWidth()
	if n < 1 {
		n = 1
	}
	return n
}

// cmpEntry orders (key, rid) pairs.
func cmpEntry(aKey val.Row, aRid int64, bKey val.Row, bRid int64) int {
	if c := val.CompareRows(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aRid < bRid:
		return -1
	case aRid > bRid:
		return 1
	}
	return 0
}

// Insert adds an entry. For unique trees it returns an error if the key is
// already present.
func (t *Tree) Insert(key val.Row, rid int64) error {
	if t.unique {
		if _, ok := t.First(key); ok {
			return fmt.Errorf("btree: duplicate key %v in unique index", key)
		}
	}
	sepKey, newChild := t.insert(t.root, key, rid)
	if newChild != nil {
		t.root = &inner{seps: []val.Row{sepKey}, children: []node{t.root, newChild}}
		t.height++
	}
	t.size++
	t.keyWidth += int64(key.Width())
	return nil
}

// insert descends into n; on split it returns the separator key and the
// new right sibling.
func (t *Tree) insert(n node, key val.Row, rid int64) (val.Row, node) {
	switch n := n.(type) {
	case *leaf:
		i := t.leafLowerBound(n, key, rid)
		n.keys = append(n.keys, nil)
		n.rids = append(n.rids, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.rids[i+1:], n.rids[i:])
		n.keys[i] = key
		n.rids[i] = rid
		if len(n.keys) <= order {
			return nil, nil
		}
		// Split.
		mid := len(n.keys) / 2
		right := &leaf{
			keys: append([]val.Row(nil), n.keys[mid:]...),
			rids: append([]int64(nil), n.rids[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid:mid]
		n.rids = n.rids[:mid:mid]
		n.next = right
		return right.keys[0], right

	case *inner:
		ci := t.childIndex(n, key)
		sep, newChild := t.insert(n.children[ci], key, rid)
		if newChild == nil {
			return nil, nil
		}
		n.seps = append(n.seps, nil)
		n.children = append(n.children, nil)
		copy(n.seps[ci+1:], n.seps[ci:])
		copy(n.children[ci+2:], n.children[ci+1:])
		n.seps[ci] = sep
		n.children[ci+1] = newChild
		if len(n.children) <= order {
			return nil, nil
		}
		// Split the inner node.
		midSep := len(n.seps) / 2
		upKey := n.seps[midSep]
		right := &inner{
			seps:     append([]val.Row(nil), n.seps[midSep+1:]...),
			children: append([]node(nil), n.children[midSep+1:]...),
		}
		n.seps = n.seps[:midSep:midSep]
		n.children = n.children[: midSep+1 : midSep+1]
		return upKey, right
	}
	panic("btree: unknown node type")
}

// leafLowerBound returns the position of the first entry >= (key, rid).
func (t *Tree) leafLowerBound(n *leaf, key val.Row, rid int64) int {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if cmpEntry(n.keys[mid], n.rids[mid], key, rid) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childIndex returns the child to descend into for key.
func (t *Tree) childIndex(n *inner, key val.Row) int {
	lo, hi := 0, len(n.seps)
	for lo < hi {
		mid := (lo + hi) / 2
		if val.CompareRows(n.seps[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// descendToLeaf walks to the leaf that may contain the first entry with a
// key >= the given key prefix, returning the leaf and entry position.
func (t *Tree) descendToLeaf(key val.Row) (*leaf, int) {
	n := t.root
	for {
		switch nd := n.(type) {
		case *inner:
			// For prefix seeks we must take the leftmost viable child:
			// compare separators against the prefix only.
			lo, hi := 0, len(nd.seps)
			for lo < hi {
				mid := (lo + hi) / 2
				if comparePrefix(nd.seps[mid], key) < 0 {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			n = nd.children[lo]
		case *leaf:
			lo, hi := 0, len(nd.keys)
			for lo < hi {
				mid := (lo + hi) / 2
				if comparePrefix(nd.keys[mid], key) < 0 {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return nd, lo
		}
	}
}

// comparePrefix compares a full key against a (possibly shorter) bound,
// considering only the bound's columns.
func comparePrefix(full val.Row, bound val.Row) int {
	n := len(bound)
	if len(full) < n {
		n = len(full)
	}
	for i := 0; i < n; i++ {
		if c := val.Compare(full[i], bound[i]); c != 0 {
			return c
		}
	}
	return 0
}

// First returns the payload of the first entry whose key has the given
// prefix, if any.
func (t *Tree) First(prefix val.Row) (int64, bool) {
	it := t.SeekPrefix(prefix)
	_, rid, ok := it.Next()
	return rid, ok
}

// Iter iterates tree entries in key order.
type Iter struct {
	t    *Tree
	leaf *leaf
	pos  int
	// stop reports whether the entry at (leaf, pos) terminates iteration.
	stop func(key val.Row) bool
	// skipWhile, if set, discards leading entries matching it (used for
	// exclusive lower bounds); cleared after the first mismatch.
	skipWhile func(key val.Row) bool
	// entries consumed, for cost accounting by the caller.
	scanned int64
}

// Next returns the next entry. ok is false when iteration is done.
func (it *Iter) Next() (key val.Row, rid int64, ok bool) {
	for it.leaf != nil {
		if it.pos >= len(it.leaf.keys) {
			it.leaf = it.leaf.next
			it.pos = 0
			continue
		}
		k, r := it.leaf.keys[it.pos], it.leaf.rids[it.pos]
		if it.skipWhile != nil {
			if it.skipWhile(k) {
				it.pos++
				continue
			}
			it.skipWhile = nil
		}
		if it.stop != nil && it.stop(k) {
			it.leaf = nil
			return nil, 0, false
		}
		it.pos++
		it.scanned++
		return k, r, true
	}
	return nil, 0, false
}

// Scanned returns the number of entries produced so far.
func (it *Iter) Scanned() int64 { return it.scanned }

// SeekPrefix returns an iterator over all entries whose key starts with
// the given prefix (all entries if the prefix is empty).
func (t *Tree) SeekPrefix(prefix val.Row) *Iter {
	lf, pos := t.descendToLeaf(prefix)
	it := &Iter{t: t, leaf: lf, pos: pos}
	if len(prefix) > 0 {
		p := prefix.Clone()
		it.stop = func(k val.Row) bool { return comparePrefix(k, p) != 0 }
	}
	return it
}

// SeekRange returns an iterator over entries with lo <= key-prefix <= hi
// on the first len(lo) columns. Either bound may be nil (unbounded).
// Bounds are inclusive when loIncl/hiIncl are set.
func (t *Tree) SeekRange(lo, hi val.Row, loIncl, hiIncl bool) *Iter {
	var lf *leaf
	var pos int
	if lo == nil {
		lf, pos = t.leftmost()
	} else {
		lf, pos = t.descendToLeaf(lo)
	}
	it := &Iter{t: t, leaf: lf, pos: pos}
	if lo != nil && !loIncl {
		l := lo.Clone()
		it.skipWhile = func(k val.Row) bool { return comparePrefix(k, l) == 0 }
	}
	if hi != nil {
		h := hi.Clone()
		if hiIncl {
			it.stop = func(k val.Row) bool { return comparePrefix(k, h) > 0 }
		} else {
			it.stop = func(k val.Row) bool { return comparePrefix(k, h) >= 0 }
		}
	}
	return it
}

// Scan returns an iterator over all entries in key order.
func (t *Tree) Scan() *Iter {
	lf, pos := t.leftmost()
	return &Iter{t: t, leaf: lf, pos: pos}
}

func (t *Tree) leftmost() (*leaf, int) {
	n := t.root
	for {
		switch nd := n.(type) {
		case *inner:
			n = nd.children[0]
		case *leaf:
			return nd, 0
		}
	}
}
