package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/val"
)

func intKey(i int64) val.Row { return val.Row{val.Int(i)} }

func collect(it *Iter) (keys []val.Row, rids []int64) {
	for {
		k, r, ok := it.Next()
		if !ok {
			return
		}
		keys = append(keys, k)
		rids = append(rids, r)
	}
}

func TestInsertAndScanSorted(t *testing.T) {
	tr := New(false)
	rng := rand.New(rand.NewSource(1))
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Insert(intKey(rng.Int63n(1000)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	keys, _ := collect(tr.Scan())
	if len(keys) != n {
		t.Fatalf("scan returned %d entries, want %d", len(keys), n)
	}
	for i := 1; i < len(keys); i++ {
		if val.CompareRows(keys[i-1], keys[i]) > 0 {
			t.Fatalf("scan out of order at %d: %v > %v", i, keys[i-1], keys[i])
		}
	}
}

func TestUniqueRejectsDuplicates(t *testing.T) {
	tr := New(true)
	if err := tr.Insert(intKey(7), 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(intKey(7), 2); err == nil {
		t.Fatal("expected duplicate-key error")
	}
	if err := tr.Insert(intKey(8), 2); err != nil {
		t.Fatal(err)
	}
}

func TestSeekPrefixSingleColumn(t *testing.T) {
	tr := New(false)
	// 10 entries for each key 0..99.
	for k := int64(0); k < 100; k++ {
		for d := int64(0); d < 10; d++ {
			if err := tr.Insert(intKey(k), k*10+d); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, k := range []int64{0, 1, 42, 99} {
		_, rids := collect(tr.SeekPrefix(intKey(k)))
		if len(rids) != 10 {
			t.Fatalf("prefix %d: got %d entries, want 10", k, len(rids))
		}
		for _, r := range rids {
			if r/10 != k {
				t.Fatalf("prefix %d returned rid %d", k, r)
			}
		}
	}
	if _, rids := collect(tr.SeekPrefix(intKey(100))); len(rids) != 0 {
		t.Fatalf("missing key returned %d entries", len(rids))
	}
}

func TestSeekPrefixComposite(t *testing.T) {
	tr := New(false)
	id := int64(0)
	for a := int64(0); a < 20; a++ {
		for b := int64(0); b < 20; b++ {
			if err := tr.Insert(val.Row{val.Int(a), val.Int(b)}, id); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	// Prefix on first column only.
	keys, _ := collect(tr.SeekPrefix(intKey(7)))
	if len(keys) != 20 {
		t.Fatalf("one-column prefix: got %d, want 20", len(keys))
	}
	// Full-key prefix.
	keys, _ = collect(tr.SeekPrefix(val.Row{val.Int(7), val.Int(3)}))
	if len(keys) != 1 {
		t.Fatalf("full prefix: got %d, want 1", len(keys))
	}
}

func TestSeekRange(t *testing.T) {
	tr := New(false)
	for i := int64(0); i < 1000; i++ {
		if err := tr.Insert(intKey(i), i); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		lo, hi         int64
		loIncl, hiIncl bool
		want           int64
	}{
		{10, 20, true, true, 11},
		{10, 20, false, true, 10},
		{10, 20, true, false, 10},
		{10, 20, false, false, 9},
		{0, 999, true, true, 1000},
		{500, 500, true, true, 1},
		{500, 500, false, false, 0},
	}
	for _, c := range cases {
		_, rids := collect(tr.SeekRange(intKey(c.lo), intKey(c.hi), c.loIncl, c.hiIncl))
		if int64(len(rids)) != c.want {
			t.Errorf("range [%d,%d] incl(%v,%v): got %d, want %d",
				c.lo, c.hi, c.loIncl, c.hiIncl, len(rids), c.want)
		}
	}
	// Unbounded ranges.
	if _, rids := collect(tr.SeekRange(nil, intKey(9), true, true)); len(rids) != 10 {
		t.Errorf("(-inf, 9]: got %d, want 10", len(rids))
	}
	if _, rids := collect(tr.SeekRange(intKey(990), nil, true, true)); len(rids) != 10 {
		t.Errorf("[990, +inf): got %d, want 10", len(rids))
	}
}

// TestRangeScanMatchesFilteredScan is the core index invariant: a range
// scan must return exactly the entries a filtered full scan returns.
func TestRangeScanMatchesFilteredScan(t *testing.T) {
	f := func(seed int64, loRaw, hiRaw uint8) bool {
		lo, hi := int64(loRaw%100), int64(hiRaw%100)
		if lo > hi {
			lo, hi = hi, lo
		}
		rng := rand.New(rand.NewSource(seed))
		tr := New(false)
		var all []int64
		for i := 0; i < 500; i++ {
			k := rng.Int63n(100)
			if err := tr.Insert(intKey(k), int64(i)); err != nil {
				return false
			}
			all = append(all, k)
		}
		var want int
		for _, k := range all {
			if k >= lo && k <= hi {
				want++
			}
		}
		_, rids := collect(tr.SeekRange(intKey(lo), intKey(hi), true, true))
		return len(rids) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	tr := New(false)
	for i := int64(0); i < 100_000; i++ {
		if err := tr.Insert(intKey(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if h := tr.Height(); h < 2 || h > 5 {
		t.Errorf("height of 100k-entry tree = %d, want 2..5", h)
	}
}

func TestSizeModel(t *testing.T) {
	tr := New(false)
	for i := int64(0); i < 10_000; i++ {
		if err := tr.Insert(intKey(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if tr.LeafPages() <= 0 || tr.Bytes() <= 0 || tr.EntriesPerLeafPage() <= 0 {
		t.Error("size model must be positive")
	}
	// 10k entries of ~16 bytes at 70% fill of 4KB pages: roughly 56 pages.
	if lp := tr.LeafPages(); lp < 30 || lp > 120 {
		t.Errorf("LeafPages = %d, want ~56", lp)
	}
}

func TestStringKeys(t *testing.T) {
	tr := New(false)
	words := []string{"delta", "alpha", "echo", "bravo", "charlie", "alpha"}
	for i, w := range words {
		if err := tr.Insert(val.Row{val.String(w)}, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	keys, _ := collect(tr.Scan())
	var got []string
	for _, k := range keys {
		got = append(got, k[0].Str)
	}
	want := append([]string(nil), words...)
	sort.Strings(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted order: got %v, want %v", got, want)
		}
	}
	if _, rids := collect(tr.SeekPrefix(val.Row{val.String("alpha")})); len(rids) != 2 {
		t.Errorf("duplicate string keys: got %d, want 2", len(rids))
	}
}

func TestFirst(t *testing.T) {
	tr := New(false)
	for i := int64(0); i < 50; i++ {
		if err := tr.Insert(intKey(i), i*2); err != nil {
			t.Fatal(err)
		}
	}
	rid, ok := tr.First(intKey(21))
	if !ok || rid != 42 {
		t.Errorf("First(21) = %d,%v want 42,true", rid, ok)
	}
	if _, ok := tr.First(intKey(100)); ok {
		t.Error("First of missing key should report !ok")
	}
}

func TestIterScannedCount(t *testing.T) {
	tr := New(false)
	for i := int64(0); i < 100; i++ {
		if err := tr.Insert(intKey(i%10), i); err != nil {
			t.Fatal(err)
		}
	}
	it := tr.SeekPrefix(intKey(3))
	collect(it)
	if it.Scanned() != 10 {
		t.Errorf("Scanned = %d, want 10", it.Scanned())
	}
}
