package engine

import (
	"math"
	"strings"

	"repro/internal/conf"
	"repro/internal/cost"
	"repro/internal/plan"
)

// Transition switches the engine from its current configuration Ci to the
// target Cj incrementally: structures present in both survive, removed
// ones are dropped, and only new ones are built. The returned report's
// BuildSeconds is the paper's AT(Ci, Cj) — the actual cost of changing the
// system configuration (§2.2) — which is much smaller than rebuilding Cj
// from scratch when the configurations overlap.
func (e *Engine) Transition(target conf.Configuration) (BuildReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.configEpoch++
	var meter, viewMeter cost.Meter
	var nBuilt, nKept, nDropped int

	// Views: keep unchanged definitions, build new ones. Drops cost one
	// page write (catalog update; deallocation is lazy).
	oldViews := e.views
	e.views = nil
	for _, vd := range target.Views {
		var kept *plan.ViewInfo
		for _, v := range oldViews {
			if strings.EqualFold(v.Def.Name, vd.Name) && v.Def.SQL == vd.SQL {
				kept = v
				break
			}
		}
		if kept != nil {
			e.views = append(e.views, kept)
			nKept++
			continue
		}
		vi, m, err := e.buildView(vd)
		if err != nil {
			return BuildReport{}, err
		}
		meter.Add(m)
		viewMeter.Add(m)
		e.views = append(e.views, vi)
		nBuilt++
	}
	for _, v := range oldViews {
		if !target.HasView(v.Def.Name) {
			meter.FixedSeq++ // catalog update for the drop
			viewMeter.FixedSeq++
			nDropped++
		}
	}

	// Indexes: keep matching definitions (on still-existing relations),
	// build the rest.
	oldIndexes := e.indexes
	e.indexes = make(map[string][]*plan.IndexInfo)
	var extraBytes int64
	for _, d := range target.Indexes {
		key := strings.ToLower(d.Table)
		var kept *plan.IndexInfo
		for _, ix := range oldIndexes[key] {
			if ix.Def.Equal(d) {
				kept = ix
				break
			}
		}
		// An index on a rebuilt view must itself be rebuilt.
		if kept != nil && e.Schema.Table(d.Table) == nil {
			if v := e.findView(d.Table); v == nil || v.Heap == nil {
				kept = nil
			}
		}
		if kept != nil {
			e.indexes[key] = append(e.indexes[key], kept)
			extraBytes += kept.Bytes
			nKept++
			continue
		}
		ix, m, err := e.buildIndex(d)
		if err != nil {
			return BuildReport{}, err
		}
		meter.Add(m)
		e.indexes[key] = append(e.indexes[key], ix)
		extraBytes += ix.Bytes
		nBuilt++
	}
	dropped := 0
	for key, list := range oldIndexes {
		for _, ix := range list {
			found := false
			for _, cur := range e.indexes[key] {
				if cur == ix {
					found = true
					break
				}
			}
			if !found {
				dropped++
			}
		}
	}
	meter.FixedSeq += int64(dropped)
	nDropped += dropped
	for _, list := range e.indexes {
		plan.SortIndexes(list)
	}

	e.current = target.Clone()
	for _, v := range e.views {
		extraBytes += int64(float64(v.Heap.Bytes()) / e.ScaleFactor)
	}
	return BuildReport{
		Config:       e.current,
		IndexBytes:   extraBytes,
		Bytes:        e.baseBytes() + extraBytes,
		BuildSeconds: e.Model.Seconds(&meter),
		ViewSeconds:  e.Model.Seconds(&viewMeter),
		Built:        nBuilt,
		Kept:         nKept,
		Dropped:      nDropped,
	}, nil
}

// EstimateTransition returns ET(Ci, Cj) as simulated seconds: the
// estimated time to build the target configuration's structures that the
// current configuration lacks, priced from statistics without building
// anything (one relation scan, a sort, and a sequential leaf write per
// new index; the defining query's estimated cost plus the result write
// per new view).
func (w *WhatIf) EstimateTransition(target conf.Configuration) (float64, error) {
	w.e.mu.RLock()
	defer w.e.mu.RUnlock()
	var meter cost.Meter
	for _, vd := range target.Views {
		if w.e.findView(vd.Name) != nil {
			continue
		}
		vi, err := w.hypoView(vd)
		if err != nil {
			return 0, err
		}
		// Build = scan the base tables, join, write the result.
		for _, t := range vi.Query.Tables {
			if info := w.e.TableStats(t.Table.Name); info != nil {
				meter.SeqPages += info.Pages
				meter.Rows += info.Rows
			}
		}
		meter.WritePage += vi.Stats.Pages
	}
	for _, d := range target.Indexes {
		if w.e.findIndex(d) != nil {
			continue
		}
		ix, err := w.hypoIndex(d)
		if err != nil {
			return 0, err
		}
		var rows, pages int64
		if ts := w.e.TableStats(d.Table); ts != nil {
			rows, pages = ts.Rows, ts.Pages
		} else if vi, err := w.hypoView2(d.Table); err == nil && vi != nil {
			rows, pages = vi.Stats.Rows, vi.Stats.Pages
		}
		meter.SeqPages += pages
		meter.WritePage += ix.LeafPages
		if rows > 1 {
			meter.CPUOps += int64(float64(rows) * math.Log2(float64(rows)))
		}
	}
	return w.e.Model.Seconds(&meter), nil
}

// hypoView2 returns the cached hypothetical view by name, if any.
func (w *WhatIf) hypoView2(name string) (*plan.ViewInfo, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if v, ok := w.viewCache[strings.ToLower(name)]; ok {
		return v, nil
	}
	return nil, nil
}
