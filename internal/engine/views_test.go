package engine

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/datagen"
	"repro/internal/plan"
)

// tpchEngine builds a small skewed TPC-H engine (System C uses views).
func tpchEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(catalog.TPCH(), 0.0001, SystemC())
	if err := datagen.GenerateTPCH(e, datagen.TPCHOptions{ScaleFactor: 0.0001, Seed: 42, Skew: true, ZipfS: 1}); err != nil {
		t.Fatal(err)
	}
	e.CollectStats()
	if _, err := e.ApplyConfig(PConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	return e
}

// ordersLineitemView joins orders and lineitem, projecting the columns a
// date/priority rollup needs.
func ordersLineitemView() conf.ViewDef {
	return conf.ViewDef{
		Name: "mv_ord_li",
		SQL: "SELECT a.o_orderpriority, a.o_orderdate, b.l_quantity, b.l_orderkey, a.o_orderkey " +
			"FROM orders a, lineitem b WHERE a.o_orderkey = b.l_orderkey",
		BaseTables: []string{"orders", "lineitem"},
	}
}

const rollupQuery = `
SELECT o.o_orderpriority, COUNT(*)
FROM orders o, lineitem l
WHERE o.o_orderkey = l.l_orderkey AND o.o_orderdate < 300
GROUP BY o.o_orderpriority`

func TestViewBuildAndMatch(t *testing.T) {
	e := tpchEngine(t)

	// Ground truth from the base configuration.
	resBase, mBase, err := e.Run(rollupQuery, 0)
	if err != nil {
		t.Fatal(err)
	}

	cfg := PConfiguration(e)
	cfg.Name = "withview"
	cfg.Views = append(cfg.Views, ordersLineitemView())
	rep, err := e.ApplyConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.IndexBytes <= 0 {
		t.Error("view must occupy space")
	}
	if len(e.Views()) != 1 {
		t.Fatalf("views = %d", len(e.Views()))
	}

	// The optimizer should answer the rollup from the view.
	p, err := e.Prepare(rollupQuery)
	if err != nil {
		t.Fatal(err)
	}
	usesView := false
	var walk func(plan.Node)
	walk = func(n plan.Node) {
		switch n := n.(type) {
		case *plan.ViewScan:
			usesView = true
		case *plan.HashJoin:
			walk(n.Build)
			walk(n.Probe)
		case *plan.IndexJoin:
			walk(n.Outer)
		case *plan.HashAgg:
			walk(n.Input)
		case *plan.Project:
			walk(n.Input)
		}
	}
	walk(p.Root)
	if !usesView {
		t.Fatalf("expected a ViewScan:\n%s", p.Explain())
	}

	resView, mView, err := e.Run(rollupQuery, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(resBase.Rows, resView.Rows) {
		t.Fatalf("view rewrite changed results: %d vs %d rows", len(resBase.Rows), len(resView.Rows))
	}
	if mView.Seconds >= mBase.Seconds {
		t.Errorf("view scan (%.1fs) should beat the base join (%.1fs)", mView.Seconds, mBase.Seconds)
	}
}

func TestIndexedView(t *testing.T) {
	e := tpchEngine(t)
	cfg := PConfiguration(e)
	cfg.Name = "withviewindex"
	cfg.Views = append(cfg.Views, ordersLineitemView())
	// Index the view on o_orderpriority (view column c0).
	cfg.AddIndex(conf.IndexDef{Table: "mv_ord_li", Columns: []string{"c0"}})
	if _, err := e.ApplyConfig(cfg); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT o.o_orderdate, COUNT(*) FROM orders o, lineitem l
		WHERE o.o_orderkey = l.l_orderkey AND o.o_orderpriority = '1-URGENT'
		GROUP BY o.o_orderdate`
	p, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Explain(), "ViewScan") {
		t.Fatalf("expected view usage:\n%s", p.Explain())
	}
	res, _, err := e.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the base configuration.
	if _, err := e.ApplyConfig(PConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	resBase, _, err := e.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(res.Rows, resBase.Rows) {
		t.Fatalf("indexed view changed results: %d vs %d", len(res.Rows), len(resBase.Rows))
	}
}

func TestViewNotMatchedWhenColumnsMissing(t *testing.T) {
	e := tpchEngine(t)
	cfg := PConfiguration(e)
	v := ordersLineitemView()
	cfg.Views = append(cfg.Views, v)
	if _, err := e.ApplyConfig(cfg); err != nil {
		t.Fatal(err)
	}
	// l_extendedprice is not projected by the view: matching must fail and
	// the query still answer correctly from base tables.
	const q = `SELECT o.o_orderpriority, SUM(l.l_extendedprice) FROM orders o, lineitem l
		WHERE o.o_orderkey = l.l_orderkey GROUP BY o.o_orderpriority`
	p, err := e.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(p.Explain(), "ViewScan") {
		t.Fatalf("view lacks l_extendedprice yet was matched:\n%s", p.Explain())
	}
	if _, _, err := e.Run(q, 0); err != nil {
		t.Fatal(err)
	}
}
