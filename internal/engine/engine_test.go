package engine

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/datagen"
	"repro/internal/storage"
	"repro/internal/val"
)

// testNREF builds a small NREF engine, shared across tests in this file.
func testNREF(t *testing.T, profile Profile) *Engine {
	t.Helper()
	e := New(catalog.NREF(), 0.0001, profile)
	if err := datagen.GenerateNREF(e, datagen.NREFOptions{ScaleFactor: 0.0001, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	e.CollectStats()
	return e
}

// selectiveQ is a query whose constant matches a handful of rows — the
// kind of exploratory lookup where single-column indexes shine. (Example 1
// itself has percent-level selectivity at test scale, where a sequential
// scan is legitimately competitive; see DESIGN.md on the scale floor.)
const selectiveQ = `
SELECT t.taxon_id, COUNT(*)
FROM taxonomy t, organism o
WHERE t.nref_id = o.nref_id AND t.nref_id = 'NF0000041'
GROUP BY t.taxon_id`

// example1 is the paper's Example 1 query.
const example1 = `
SELECT t.lineage, COUNT(DISTINCT t2.nref_id)
FROM source s, taxonomy t, taxonomy t2
WHERE t.nref_id = s.nref_id AND t.lineage = t2.lineage
  AND s.p_name = 'Simian Virus 40'
GROUP BY t.lineage`

// testQueries exercise single tables, selections, ranges, self-joins,
// 2- and 3-way joins, IN subqueries and every aggregate.
var testQueries = []string{
	example1,
	selectiveQ,
	`SELECT taxon_id, COUNT(*) FROM taxonomy GROUP BY taxon_id`,
	`SELECT p_name, length FROM protein WHERE length < 100`,
	`SELECT nref_id FROM protein WHERE nref_id = 'NF0000041'`,
	`SELECT o.name, COUNT(*) FROM organism o, taxonomy t
	 WHERE o.taxon_id = t.taxon_id AND o.ordinal = 7 GROUP BY o.name`,
	`SELECT r.taxon_id, COUNT(*) FROM taxonomy r, organism s
	 WHERE r.nref_id = s.nref_id
	   AND r.nref_id IN (SELECT nref_id FROM taxonomy GROUP BY nref_id HAVING COUNT(*) < 4)
	   AND s.nref_id IN (SELECT nref_id FROM organism GROUP BY nref_id HAVING COUNT(*) < 4)
	 GROUP BY r.taxon_id`,
	`SELECT r1.taxon_id_2, r1.nref_id_1, COUNT(DISTINCT r2.nref_id_2)
	 FROM neighboring_seq r1, neighboring_seq r2, taxonomy s
	 WHERE r1.nref_id_1 = r2.nref_id_1 AND r1.nref_id_2 = s.nref_id AND s.taxon_id = 3
	 GROUP BY r1.taxon_id_2, r1.nref_id_1`,
	`SELECT source, MIN(taxon_id), MAX(taxon_id), SUM(p_id), AVG(p_id), COUNT(p_id)
	 FROM source GROUP BY source`,
	`SELECT length, COUNT(*) FROM protein WHERE length >= 900 GROUP BY length`,
	`SELECT i.taxon_id, COUNT(*) FROM identical_seq i, organism o
	 WHERE i.taxon_id = o.taxon_id AND o.ordinal < 5 GROUP BY i.taxon_id`,
}

// configsUnderTest returns P, 1C and a hand-written composite-index
// configuration, covering the main plan shapes.
func configsUnderTest(e *Engine) []conf.Configuration {
	comp := PConfiguration(e)
	comp.Name = "composite"
	comp.AddIndex(conf.IndexDef{Table: "taxonomy", Columns: []string{"nref_id", "taxon_id", "lineage"}})
	comp.AddIndex(conf.IndexDef{Table: "source", Columns: []string{"p_name", "nref_id"}})
	comp.AddIndex(conf.IndexDef{Table: "organism", Columns: []string{"ordinal"}})
	comp.AddIndex(conf.IndexDef{Table: "neighboring_seq", Columns: []string{"nref_id_1", "nref_id_2"}})
	return []conf.Configuration{PConfiguration(e), OneColumnConfiguration(e), comp}
}

// TestPlanEquivalence is the central correctness property: every
// configuration must produce identical results for every query, and those
// results must match an independent naive evaluator.
func TestPlanEquivalence(t *testing.T) {
	e := testNREF(t, SystemA())
	for qi, sqlText := range testQueries {
		q, err := e.AnalyzeSQL(sqlText)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		want := naiveEval(e, q)
		for _, cfg := range configsUnderTest(e) {
			if _, err := e.ApplyConfig(cfg); err != nil {
				t.Fatalf("apply %s: %v", cfg.Name, err)
			}
			res, _, err := e.Run(sqlText, 0)
			if err != nil {
				t.Fatalf("query %d on %s: %v", qi, cfg.Name, err)
			}
			if !rowsEqual(res.Rows, want) {
				p, _ := e.Prepare(sqlText)
				t.Errorf("query %d on %s: got %d rows, want %d\nplan:\n%s",
					qi, cfg.Name, len(res.Rows), len(want), p.Explain())
			}
		}
	}
}

func TestOneColumnBeatsP(t *testing.T) {
	e := testNREF(t, SystemA())
	if _, err := e.ApplyConfig(PConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	// A selective lookup on a non-key column of the biggest table: find a
	// rare species name by scanning, so the test is robust to generator
	// tweaks.
	counts := make(map[string]int)
	e.Heap("taxonomy").Scan(nil, func(_ storage.RowID, r val.Row) bool {
		counts[r[3].Str]++
		return true
	})
	rare := ""
	for name, n := range counts {
		if n >= 1 && n <= 3 && (rare == "" || name < rare) {
			rare = name
		}
	}
	if rare == "" {
		t.Fatal("no rare species_name in generated data")
	}
	q := `SELECT taxon_id, COUNT(*) FROM taxonomy WHERE species_name = ` +
		val.String(rare).String() + ` GROUP BY taxon_id`
	_, mp, err := e.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyConfig(OneColumnConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	_, m1c, err := e.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m1c.Seconds >= mp.Seconds {
		t.Fatalf("1C (%.2fs) should beat P (%.2fs)", m1c.Seconds, mp.Seconds)
	}
}

func TestTimeout(t *testing.T) {
	e := testNREF(t, SystemA())
	if _, err := e.ApplyConfig(PConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	_, m, err := e.Run(example1, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !m.TimedOut {
		t.Fatal("expected timeout under a microscopic limit")
	}
	if m.Seconds != 1e-6 {
		t.Fatalf("timeout measure should report the limit, got %v", m.Seconds)
	}
}

func TestEstimateSanity(t *testing.T) {
	e := testNREF(t, SystemB())
	if _, err := e.ApplyConfig(PConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	for qi, sqlText := range testQueries {
		m, err := e.Estimate(sqlText)
		if err != nil {
			t.Fatalf("estimate %d: %v", qi, err)
		}
		if m.Seconds <= 0 {
			t.Errorf("query %d: nonpositive estimate %v", qi, m.Seconds)
		}
	}
}

func TestWhatIfConservatism(t *testing.T) {
	e := testNREF(t, SystemB())
	if _, err := e.ApplyConfig(PConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	q, err := e.AnalyzeSQL(selectiveQ)
	if err != nil {
		t.Fatal(err)
	}
	w := e.NewWhatIf()
	oneC := OneColumnConfiguration(e)
	h1c, err := w.Estimate(q, oneC)
	if err != nil {
		t.Fatal(err)
	}
	hp, err := w.Estimate(q, PConfiguration(e))
	if err != nil {
		t.Fatal(err)
	}
	// The what-if estimator must still see 1C as an improvement over P...
	if h1c.Seconds >= hp.Seconds {
		t.Fatalf("H(1C)=%.2f should improve on H(P)=%.2f", h1c.Seconds, hp.Seconds)
	}
	// ...but, per the paper's Figure 10, conservatively: once 1C is built,
	// the same-configuration estimate E(1C) is lower than H(1C) was.
	if _, err := e.ApplyConfig(oneC); err != nil {
		t.Fatal(err)
	}
	e1c, err := e.Estimate(selectiveQ)
	if err != nil {
		t.Fatal(err)
	}
	// Tolerance: per-query fixed costs (index heights) are estimated
	// slightly differently for hypothetical trees.
	if e1c.Seconds > h1c.Seconds*1.1 {
		t.Errorf("E(1C)=%.2f should not exceed the conservative H(1C)=%.2f", e1c.Seconds, h1c.Seconds)
	}
}

func TestWhatIfSizeWithinActual(t *testing.T) {
	e := testNREF(t, SystemA())
	oneC := OneColumnConfiguration(e)
	w := e.NewWhatIf()
	est := w.EstimateSize(oneC)
	rep, err := e.ApplyConfig(oneC)
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Fatal("size estimate must be positive")
	}
	ratio := float64(est) / float64(rep.IndexBytes)
	if ratio < 0.3 || ratio > 3 {
		t.Errorf("size estimate %d vs actual %d (ratio %.2f) outside 3x", est, rep.IndexBytes, ratio)
	}
}

func TestBuildReport(t *testing.T) {
	e := testNREF(t, SystemA())
	repP, err := e.ApplyConfig(PConfiguration(e))
	if err != nil {
		t.Fatal(err)
	}
	rep1C, err := e.ApplyConfig(OneColumnConfiguration(e))
	if err != nil {
		t.Fatal(err)
	}
	if rep1C.Bytes <= repP.Bytes {
		t.Errorf("1C (%d bytes) must be larger than P (%d bytes)", rep1C.Bytes, repP.Bytes)
	}
	if rep1C.BuildSeconds <= repP.BuildSeconds {
		t.Errorf("1C build time %.0fs must exceed P's %.0fs", rep1C.BuildSeconds, repP.BuildSeconds)
	}
	if repP.BuildSeconds <= 0 {
		t.Error("P build time must be positive")
	}
}

func TestInsertRows(t *testing.T) {
	e := testNREF(t, SystemA())
	if _, err := e.ApplyConfig(OneColumnConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	h := e.Heap("neighboring_seq")
	before := h.NumRows()
	row := h.Get(0).Clone()
	m, err := e.InsertRows("neighboring_seq", []val.Row{row})
	if err != nil {
		t.Fatal(err)
	}
	if h.NumRows() != before+1 {
		t.Fatal("row not inserted")
	}
	if m.Seconds <= 0 {
		t.Error("insert must cost simulated time")
	}
	// 1C has 11 indexes on neighboring_seq; inserting under P is cheaper.
	perRow1C := e.InsertCostPerRow("neighboring_seq")
	if _, err := e.ApplyConfig(PConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	perRowP := e.InsertCostPerRow("neighboring_seq")
	if perRow1C <= perRowP {
		t.Errorf("insert cost under 1C (%.4fs) must exceed P (%.4fs)", perRow1C, perRowP)
	}
}

func TestOneColumnConfigurationShape(t *testing.T) {
	e := testNREF(t, SystemA())
	c := OneColumnConfiguration(e)
	for _, d := range c.Indexes {
		if !d.Auto && len(d.Columns) != 1 {
			t.Errorf("1C contains a %d-column non-auto index %s", len(d.Columns), d.Name())
		}
	}
	// Every indexable column appears exactly once.
	seen := make(map[string]bool)
	for _, d := range c.Indexes {
		if d.Auto {
			continue
		}
		key := strings.ToLower(d.Table + "." + d.Columns[0])
		if seen[key] {
			t.Errorf("duplicate 1C index on %s", key)
		}
		seen[key] = true
	}
	// Expected: every indexable column, except those already covered by a
	// single-column primary-key index (protein.nref_id).
	want := 0
	for _, tab := range e.Schema.Tables() {
		for _, col := range tab.IndexableColumns() {
			if len(tab.PrimaryKey) == 1 && strings.EqualFold(tab.PrimaryKey[0], col) {
				continue
			}
			want++
		}
	}
	if len(seen) != want {
		t.Errorf("1C has %d single-column indexes, want %d", len(seen), want)
	}
}

func TestTransitionReusesStructures(t *testing.T) {
	e := testNREF(t, SystemA())
	oneC := OneColumnConfiguration(e)
	repFull, err := e.ApplyConfig(oneC)
	if err != nil {
		t.Fatal(err)
	}
	// Transitioning to the same configuration costs (almost) nothing.
	repSame, err := e.Transition(oneC)
	if err != nil {
		t.Fatal(err)
	}
	if repSame.BuildSeconds > repFull.BuildSeconds/100 {
		t.Errorf("no-op transition cost %.2fs vs full build %.2fs", repSame.BuildSeconds, repFull.BuildSeconds)
	}
	if repSame.IndexBytes != repFull.IndexBytes {
		t.Errorf("sizes differ: %d vs %d", repSame.IndexBytes, repFull.IndexBytes)
	}
	// Adding one index on top costs far less than the full build.
	plus := oneC.Clone()
	plus.AddIndex(conf.IndexDef{Table: "taxonomy", Columns: []string{"taxon_id", "lineage"}})
	repPlus, err := e.Transition(plus)
	if err != nil {
		t.Fatal(err)
	}
	if repPlus.BuildSeconds >= repFull.BuildSeconds {
		t.Errorf("incremental AT %.2fs should be below full rebuild %.2fs",
			repPlus.BuildSeconds, repFull.BuildSeconds)
	}
	// Dropping back to P is nearly free but must actually drop.
	repP, err := e.Transition(PConfiguration(e))
	if err != nil {
		t.Fatal(err)
	}
	if repP.BuildSeconds > 1 {
		t.Errorf("drop-only transition cost %.2fs", repP.BuildSeconds)
	}
	if n := len(e.Indexes("taxonomy")); n != 1 {
		t.Errorf("taxonomy should keep only its PK index, has %d", n)
	}
	// Queries still run correctly after the incremental churn.
	if _, _, err := e.Run(selectiveQ, 0); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateTransition(t *testing.T) {
	e := testNREF(t, SystemB())
	if _, err := e.ApplyConfig(PConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	w := e.NewWhatIf()
	et, err := w.EstimateTransition(OneColumnConfiguration(e))
	if err != nil {
		t.Fatal(err)
	}
	if et <= 0 {
		t.Fatal("ET must be positive")
	}
	rep, err := e.ApplyConfig(OneColumnConfiguration(e))
	if err != nil {
		t.Fatal(err)
	}
	// ET should land within a small factor of AT (the actual build).
	ratio := et / rep.BuildSeconds
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("ET %.0fs vs AT %.0fs (ratio %.2f)", et, rep.BuildSeconds, ratio)
	}
	// Estimating a transition to the current configuration is free.
	et0, err := w.EstimateTransition(OneColumnConfiguration(e))
	if err != nil {
		t.Fatal(err)
	}
	if et0 != 0 {
		t.Errorf("no-op ET = %v", et0)
	}
}
