package engine

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/conf"
	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/storage"
	"repro/internal/val"
)

// PConfiguration is the paper's initial configuration P: only the indexes
// automatically created for primary keys (§3.2).
func PConfiguration(e *Engine) conf.Configuration {
	c := conf.Configuration{Name: "P"}
	for _, t := range e.Schema.Tables() {
		if len(t.PrimaryKey) == 0 {
			continue
		}
		c.AddIndex(conf.IndexDef{
			Table:   t.Name,
			Columns: append([]string(nil), t.PrimaryKey...),
			Unique:  true,
			Auto:    true,
		})
	}
	return c
}

// OneColumnConfiguration is the paper's reference configuration 1C: P plus
// one single-column index on every indexable column (§3.2.3).
func OneColumnConfiguration(e *Engine) conf.Configuration {
	c := PConfiguration(e)
	c.Name = "1C"
	for _, t := range e.Schema.Tables() {
		for _, col := range t.IndexableColumns() {
			c.AddIndex(conf.IndexDef{Table: t.Name, Columns: []string{col}})
		}
	}
	return c
}

// SystemA simulates the paper's System A: a per-query recommender with no
// materialized views; its what-if estimator is moderately conservative.
func SystemA() Profile {
	return Profile{
		Name:     "A",
		Opts:     optimizer.Options{HypoRowPenalty: 4, NoViews: true},
		MemBytes: 256 << 20,
	}
}

// SystemB simulates the paper's System B: a workload-total-cost
// recommender with no views and a strongly conservative what-if estimator
// (this is the system whose estimate curves appear in Figure 10).
func SystemB() Profile {
	return Profile{
		Name:     "B",
		Opts:     optimizer.Options{HypoRowPenalty: 10, NoViews: true, HypoNoMergeJoin: true},
		MemBytes: 256 << 20,
	}
}

// SystemC simulates the paper's System C: it recommends (and uses)
// materialized views and indexes on them, with moderate conservatism.
func SystemC() Profile {
	return Profile{
		Name:     "C",
		Opts:     optimizer.Options{HypoRowPenalty: 4},
		MemBytes: 256 << 20,
	}
}

// InsertRows inserts rows into a base table under the current
// configuration, billing heap writes and the maintenance of every index on
// the table (the paper's §4.4 insertion experiment). Each index entry
// insertion costs one random leaf-page touch plus the descent comparisons.
//
// Insert costs are per-actual-row and therefore unscaled: unlike query
// work (where a scaled database stands in for the full one), the §4.4
// experiment inserts a literal number of tuples. Views are not
// maintained, matching the experiment (no NREF recommendation contains
// views, Table 2).
func (e *Engine) InsertRows(table string, rows []val.Row) (Measure, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.configEpoch++
	h := e.Heap(table)
	if h == nil {
		return Measure{}, fmt.Errorf("engine: unknown table %s", table)
	}
	ixs := e.indexes[strings.ToLower(table)]
	var seconds float64
	var meter cost.Meter
	for _, r := range rows {
		seconds += e.insertRowCost(h, len(ixs))
		id, err := h.Insert(&meter, r)
		if err != nil {
			return Measure{}, err
		}
		for _, ix := range ixs {
			key := r.Project(ix.Cols)
			if err := ix.Tree.Insert(key, int64(id)); err != nil {
				return Measure{}, err
			}
		}
	}
	return Measure{
		SQL:     fmt.Sprintf("INSERT INTO %s (%d rows)", table, len(rows)),
		Seconds: seconds,
		Meter:   meter,
	}, nil
}

// insertRowCost prices one row insertion, unscaled: per-row CPU, the
// amortized heap page write, and one random leaf touch plus descent
// comparisons per index.
func (e *Engine) insertRowCost(h *storage.Heap, numIndexes int) float64 {
	perRow := e.Model.RowSec + e.Model.WritePageSec/float64(h.RowsPerPage())
	full := float64(h.NumRows())/e.ScaleFactor + 2
	perRow += float64(numIndexes) * (e.Model.RandPageSec + math.Log2(full)*e.Model.CPUOpSec)
	return perRow
}

// InsertCostPerRow returns the simulated cost of one row insertion under
// the current configuration without mutating state.
func (e *Engine) InsertCostPerRow(table string) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	h := e.Heap(table)
	if h == nil {
		return 0
	}
	return e.insertRowCost(h, len(e.indexes[strings.ToLower(table)]))
}
