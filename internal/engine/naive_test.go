package engine

import (
	"sort"

	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/val"
)

// naiveEval is an independent, obviously-correct query evaluator used as
// the ground truth for plan-equivalence tests: fold the FROM list left to
// right, applying every predicate as soon as its tables are bound, then
// group and aggregate. It shares no code with the optimizer or executor.
func naiveEval(e *Engine, q *sql.Query) []val.Row {
	layout := layoutOf(q)

	// IN-subquery sets by brute force.
	sets := make([]map[string]bool, len(q.Ins))
	for i, p := range q.Ins {
		counts := make(map[string]int64)
		e.Heap(p.SubTable.Name).Scan(nil, func(_ storage.RowID, r val.Row) bool {
			v := r[p.SubCol]
			if v.IsNull() {
				return true
			}
			for _, ss := range p.SubSels {
				if !sql.CompareOp(ss.Op, r[ss.Col], ss.Value) {
					return true
				}
			}
			counts[val.Row{v}.Key()]++
			return true
		})
		set := make(map[string]bool)
		for k, n := range counts {
			if p.Having == nil || naiveCmp(n, p.Having.Op, p.Having.Value) {
				set[k] = true
			}
		}
		sets[i] = set
	}

	// Fold tables.
	var bound []bool = make([]bool, len(q.Tables))
	cur := []val.Row{make(val.Row, layout.width)}
	for t := range q.Tables {
		var next []val.Row
		var tRows []val.Row
		e.Heap(q.Tables[t].Table.Name).Scan(nil, func(_ storage.RowID, r val.Row) bool {
			tRows = append(tRows, r)
			return true
		})
		// Pre-filter the new table's rows on its local predicates so the
		// nested loop below only checks join predicates.
		var local []val.Row
		for _, r := range tRows {
			if naiveLocalPasses(q, r, t, sets) {
				local = append(local, r)
			}
		}
		for _, acc := range cur {
			for _, r := range local {
				if !naiveJoinPasses(q, layout, acc, r, bound, t) {
					continue
				}
				merged := acc.Clone()
				copy(merged[layout.base[t]:], r)
				next = append(next, merged)
			}
		}
		cur = next
		bound[t] = true
	}

	// Group and aggregate (or project).
	if len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
		var out []val.Row
		for _, r := range cur {
			row := make(val.Row, len(q.Out))
			for i, o := range q.Out {
				row[i] = r[layout.off(o.Col)]
			}
			out = append(out, row)
		}
		sortRows(out)
		return out
	}

	type group struct {
		vals     val.Row
		counts   []int64
		sums     []float64
		mins     []val.Value
		maxs     []val.Value
		distinct []map[string]bool
	}
	groups := make(map[string]*group)
	for _, r := range cur {
		gv := make(val.Row, len(q.GroupBy))
		for i, g := range q.GroupBy {
			gv[i] = r[layout.off(g)]
		}
		k := gv.Key()
		g := groups[k]
		if g == nil {
			g = &group{vals: gv,
				counts: make([]int64, len(q.Aggs)), sums: make([]float64, len(q.Aggs)),
				mins: make([]val.Value, len(q.Aggs)), maxs: make([]val.Value, len(q.Aggs)),
				distinct: make([]map[string]bool, len(q.Aggs))}
			groups[k] = g
		}
		for i, a := range q.Aggs {
			if a.Kind == sql.AggCountStar {
				g.counts[i]++
				continue
			}
			v := r[layout.off(a.Col)]
			if v.IsNull() {
				continue
			}
			g.counts[i]++
			g.sums[i] += v.AsFloat()
			if g.counts[i] == 1 || val.Compare(v, g.mins[i]) < 0 {
				g.mins[i] = v
			}
			if g.counts[i] == 1 || val.Compare(v, g.maxs[i]) > 0 {
				g.maxs[i] = v
			}
			if a.Kind == sql.AggCountDistinct {
				if g.distinct[i] == nil {
					g.distinct[i] = make(map[string]bool)
				}
				g.distinct[i][val.Row{v}.Key()] = true
			}
		}
	}
	var out []val.Row
	for _, g := range groups {
		row := make(val.Row, len(q.Out))
		for i, o := range q.Out {
			if o.Kind == sql.OutGroup {
				row[i] = g.vals[o.Index]
				continue
			}
			a := q.Aggs[o.Index]
			switch a.Kind {
			case sql.AggCountStar, sql.AggCountCol:
				row[i] = val.Int(g.counts[o.Index])
			case sql.AggCountDistinct:
				row[i] = val.Int(int64(len(g.distinct[o.Index])))
			case sql.AggSum:
				row[i] = val.Float(g.sums[o.Index])
			case sql.AggMin:
				row[i] = g.mins[o.Index]
			case sql.AggMax:
				row[i] = g.maxs[o.Index]
			case sql.AggAvg:
				row[i] = val.Float(g.sums[o.Index] / float64(g.counts[o.Index]))
			}
		}
		out = append(out, row)
	}
	sortRows(out)
	return out
}

type tLayout struct {
	base  []int
	width int
}

func layoutOf(q *sql.Query) tLayout {
	l := tLayout{base: make([]int, len(q.Tables))}
	for i, t := range q.Tables {
		l.base[i] = l.width
		l.width += len(t.Table.Columns)
	}
	return l
}

func (l tLayout) off(c sql.QCol) int { return l.base[c.Tab] + c.Col }

// naiveLocalPasses checks table-local predicates on a raw table row.
func naiveLocalPasses(q *sql.Query, r val.Row, t int, sets []map[string]bool) bool {
	for _, p := range q.Sels {
		if p.Col.Tab == t && !sql.CompareOp(p.Op, r[p.Col.Col], p.Value) {
			return false
		}
	}
	for i, p := range q.Ins {
		if p.Col.Tab == t && !sets[i][val.Row{r[p.Col.Col]}.Key()] {
			return false
		}
	}
	return true
}

// naiveJoinPasses checks join predicates that become fully bound when
// table t's row r joins the accumulated row acc.
func naiveJoinPasses(q *sql.Query, l tLayout, acc, r val.Row, bound []bool, t int) bool {
	get := func(c sql.QCol) val.Value {
		if c.Tab == t {
			return r[c.Col]
		}
		return acc[l.off(c)]
	}
	for _, j := range q.Joins {
		lb := j.L.Tab == t || bound[j.L.Tab]
		rb := j.R.Tab == t || bound[j.R.Tab]
		touches := j.L.Tab == t || j.R.Tab == t
		if touches && lb && rb && !val.Equal(get(j.L), get(j.R)) {
			return false
		}
	}
	return true
}

func naiveCmp(a int64, op string, b int64) bool {
	switch op {
	case "=":
		return a == b
	case "<>":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

func sortRows(rows []val.Row) {
	sort.Slice(rows, func(i, j int) bool { return val.CompareRows(rows[i], rows[j]) < 0 })
}

func rowsEqual(a, b []val.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if val.CompareRows(a[i], b[i]) != 0 {
			return false
		}
	}
	return true
}
