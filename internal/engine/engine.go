// Package engine assembles the benchmark RDBMS: catalog, heap storage,
// B+-tree indexes, materialized views, statistics, the cost-based
// optimizer and the executor, behind a SQL front end.
//
// An Engine owns one database at one data scale factor and executes one
// configuration at a time (paper §2.1: the recommender changes the system
// from configuration Ci to Cj). It exposes the three cost measures of the
// paper's framework:
//
//	A(q, C)      Run        — actual simulated elapsed time
//	E(q, C)      Estimate   — optimizer estimate in the current config
//	H(q, Ch, Ca) WhatIf     — optimizer estimate for a hypothetical config
//	                          using statistics derived in the current one
package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/val"
)

// Profile parameterizes a simulated commercial system (paper Systems A, B
// and C differ in optimizer behavior and recommender strategy).
type Profile struct {
	Name string
	// Opts is the optimizer profile, including the what-if conservatism.
	Opts optimizer.Options
	// MemBytes is the full-scale memory budget for hash operations
	// (2005 desktops: ~256 MB of working memory).
	MemBytes int64
}

// Engine is one database instance under one configuration.
//
// The read path — Run, Estimate, Prepare, Physical and what-if estimation
// — is safe for concurrent use: readers share mu.RLock while
// configuration changes (ApplyConfig, Transition, Load, InsertRows,
// CollectStats) take the writer side and therefore observe no in-flight
// queries. Model is an exported field and is not guarded: callers that
// mutate it (the disk ablation) must hold exclusive use of the engine.
type Engine struct {
	Schema  *catalog.Schema
	Profile Profile

	// ScaleFactor is the fraction of the paper's full-scale row counts
	// actually stored; simulated time bills work as if at full scale.
	ScaleFactor float64
	Model       cost.Model

	// DisableWhatIfCache turns off the what-if relevance-keyed estimate
	// cache for sessions opened after it is set (the -whatif-cache=off
	// escape hatch). Like Model, it is not lock-guarded: set it right
	// after construction, before the engine is shared.
	DisableWhatIfCache bool

	heaps      map[string]*storage.Heap
	tableOrder []string

	// mu serializes configuration changes (writers) against query
	// execution and estimation (readers).
	mu sync.RWMutex

	// statsMu guards tstats on its own: the lazy collection in physical()
	// runs under mu.RLock, so map access needs a separate lock. It is
	// always innermost — nothing acquires mu while holding it.
	statsMu sync.Mutex
	tstats  map[string]*stats.TableStats // conflint:guardedby statsMu

	current conf.Configuration           // conflint:guardedby mu conflint:epoch
	indexes map[string][]*plan.IndexInfo // conflint:guardedby mu conflint:epoch (keyed by lower-case relation name)
	views   []*plan.ViewInfo             // conflint:guardedby mu conflint:epoch

	// configEpoch counts every change that can move an estimate:
	// configuration switches, data loads and statistics collection. Open
	// what-if sessions compare it against the epoch their caches were
	// derived in and flush on mismatch (invalidation on RUNSTATS and
	// Transition).
	configEpoch int64 // conflint:guardedby mu conflint:epochcounter
}

// New creates an empty engine for the schema at the given data scale
// factor (1.0 = the paper's full-size databases).
func New(schema *catalog.Schema, scaleFactor float64, profile Profile) *Engine {
	if scaleFactor <= 0 {
		scaleFactor = 1
	}
	e := &Engine{
		Schema:      schema,
		Profile:     profile,
		ScaleFactor: scaleFactor,
		Model:       cost.Desktop2005().WithScale(1 / scaleFactor),
		heaps:       make(map[string]*storage.Heap),
		tstats:      make(map[string]*stats.TableStats),
		indexes:     make(map[string][]*plan.IndexInfo),
	}
	for _, t := range schema.Tables() {
		e.heaps[strings.ToLower(t.Name)] = storage.NewHeap(t)
		e.tableOrder = append(e.tableOrder, t.Name)
	}
	return e
}

// Heap returns the heap of a base table.
func (e *Engine) Heap(table string) *storage.Heap {
	return e.heaps[strings.ToLower(table)]
}

// Load bulk-inserts rows into a base table without cost accounting
// (loading is not part of any measured experiment).
func (e *Engine) Load(table string, rows []val.Row) error {
	h := e.Heap(table)
	if h == nil {
		return fmt.Errorf("engine: unknown table %s", table)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.configEpoch++
	for _, r := range rows {
		if _, err := h.Insert(nil, r); err != nil {
			return err
		}
	}
	return nil
}

// CollectStats runs statistics collection on every base table (the
// paper directs systems to collect statistics before recommending and
// before running queries, §3.2.3).
func (e *Engine) CollectStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.configEpoch++
	for name, h := range e.heaps {
		ts := stats.Collect(h)
		e.statsMu.Lock()
		e.tstats[name] = ts
		e.statsMu.Unlock()
	}
}

// NoteTopologyChange records an estimate-moving change that happened
// outside this engine — resharding moves rows between partitions, so any
// H estimate cached against the old topology is stale. Open what-if
// sessions flush on the next estimate.
func (e *Engine) NoteTopologyChange() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.configEpoch++
}

// TableStats returns the collected statistics for a base table.
func (e *Engine) TableStats(table string) *stats.TableStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.tstats[strings.ToLower(table)]
}

// statsFor returns the memoized statistics for a heap, collecting them
// lazily if the caller forgot. Safe under mu.RLock: duplicate collection
// is deterministic and the first stored result wins.
func (e *Engine) statsFor(name string, h *storage.Heap) *stats.TableStats {
	e.statsMu.Lock()
	ts := e.tstats[name]
	e.statsMu.Unlock()
	if ts != nil {
		return ts
	}
	ts = stats.Collect(h)
	e.statsMu.Lock()
	if cur := e.tstats[name]; cur != nil {
		ts = cur
	} else {
		e.tstats[name] = ts
	}
	e.statsMu.Unlock()
	return ts
}

// Current returns the active configuration.
func (e *Engine) Current() conf.Configuration {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.current
}

// Views returns the materialized views of the active configuration.
func (e *Engine) Views() []*plan.ViewInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.views
}

// Indexes returns the built indexes on a relation.
func (e *Engine) Indexes(rel string) []*plan.IndexInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.indexes[strings.ToLower(rel)]
}

// BuildReport summarizes applying a configuration (paper Table 1).
type BuildReport struct {
	Config conf.Configuration
	// Bytes is the total size of the database in the configuration:
	// base data plus indexes plus materialized views (full-scale bytes).
	Bytes int64
	// IndexBytes is the size of indexes and views beyond the base data.
	IndexBytes int64
	// BuildSeconds is the simulated time to build all indexes and views.
	BuildSeconds float64
	// ViewSeconds is the portion of BuildSeconds spent materializing
	// views. The sharded cluster needs the split: views stay global
	// (coordinator-serial) while index builds scale out with partitions.
	ViewSeconds float64
	// Built, Kept and Dropped count structures (indexes plus views)
	// constructed, carried over unchanged, and removed by the change —
	// the "index churn" an online tuner pays per transition. ApplyConfig
	// always rebuilds, so Kept is zero there; Transition reuses overlap.
	Built, Kept, Dropped int
}

// ApplyConfig drops the previous configuration's structures and builds the
// new configuration's indexes and materialized views, returning size and
// build-time figures.
func (e *Engine) ApplyConfig(c conf.Configuration) (BuildReport, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.configEpoch++
	dropped := len(e.views)
	for _, list := range e.indexes {
		dropped += len(list)
	}
	e.indexes = make(map[string][]*plan.IndexInfo)
	e.views = nil
	e.current = c.Clone()

	var meter, viewMeter cost.Meter
	var extraBytes int64

	// Views first: view indexes may reference them.
	for _, vd := range c.Views {
		vi, m, err := e.buildView(vd)
		if err != nil {
			return BuildReport{}, fmt.Errorf("engine: building %s: %w", vd.Name, err)
		}
		meter.Add(m)
		viewMeter.Add(m)
		e.views = append(e.views, vi)
		extraBytes += int64(float64(vi.Heap.Bytes()) / e.ScaleFactor)
	}

	for _, d := range c.Indexes {
		ix, m, err := e.buildIndex(d)
		if err != nil {
			return BuildReport{}, fmt.Errorf("engine: building %s: %w", d.Name(), err)
		}
		meter.Add(m)
		key := strings.ToLower(d.Table)
		e.indexes[key] = append(e.indexes[key], ix)
		extraBytes += ix.Bytes
	}
	for _, list := range e.indexes {
		plan.SortIndexes(list)
	}

	rep := BuildReport{
		Config:       e.current,
		IndexBytes:   extraBytes,
		Bytes:        e.baseBytes() + extraBytes,
		BuildSeconds: e.Model.Seconds(&meter),
		ViewSeconds:  e.Model.Seconds(&viewMeter),
		Built:        len(c.Views) + len(c.Indexes),
		Dropped:      dropped,
	}
	return rep, nil
}

// BaseBytes returns the full-scale size of the base tables.
func (e *Engine) BaseBytes() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.baseBytes()
}

func (e *Engine) baseBytes() int64 {
	var b int64
	for _, h := range e.heaps {
		b += int64(float64(h.Bytes()) / e.ScaleFactor)
	}
	return b
}

// relationSchema resolves a relation name to its schema (base table or
// materialized view) plus the heap and a view pointer when applicable.
func (e *Engine) relationSchema(name string) (*catalog.Table, *storage.Heap, *plan.ViewInfo, error) {
	if t := e.Schema.Table(name); t != nil {
		return t, e.Heap(name), nil, nil
	}
	for _, v := range e.views {
		if strings.EqualFold(v.Def.Name, name) {
			return v.Table, v.Heap, v, nil
		}
	}
	return nil, nil, nil, fmt.Errorf("engine: unknown relation %s", name)
}

// buildIndex constructs a B+-tree for the definition and measures its
// (sort-based) build cost: one scan of the relation, a sort of the
// entries, and a sequential write of the leaves.
func (e *Engine) buildIndex(d conf.IndexDef) (*plan.IndexInfo, cost.Meter, error) {
	tab, heap, _, err := e.relationSchema(d.Table)
	if err != nil {
		return nil, cost.Meter{}, err
	}
	cols := make([]int, len(d.Columns))
	for i, cn := range d.Columns {
		ci := tab.ColumnIndex(cn)
		if ci < 0 {
			return nil, cost.Meter{}, fmt.Errorf("no column %s in %s", cn, d.Table)
		}
		cols[i] = ci
	}

	tree := btree.New(false) // PK uniqueness is enforced by generators
	var insertErr error
	heap.Scan(nil, func(id storage.RowID, r val.Row) bool {
		key := r.Project(cols)
		if err := tree.Insert(key, int64(id)); err != nil {
			insertErr = err
			return false
		}
		return true
	})
	if insertErr != nil {
		return nil, cost.Meter{}, insertErr
	}

	ix := &plan.IndexInfo{
		Def:            d,
		Cols:           cols,
		Tree:           tree,
		Height:         tree.Height(),
		LeafPages:      tree.LeafPages(),
		EntriesPerLeaf: tree.EntriesPerLeafPage(),
		Bytes:          int64(float64(tree.Bytes()) / e.ScaleFactor),
		KeyNDV:         measureKeyNDV(tree, len(cols)),
	}

	n := float64(tree.Len())
	var m cost.Meter
	m.SeqPages = heap.Pages()
	m.WritePage = tree.LeafPages()
	if n > 1 {
		m.CPUOps = int64(n * math.Log2(n))
	}
	return ix, m, nil
}

// measureKeyNDV walks the tree in key order counting distinct prefixes of
// every length — the exact statistics a built index provides and a
// hypothetical one can only approximate.
func measureKeyNDV(tree *btree.Tree, width int) []int64 {
	ndv := make([]int64, width)
	prev := make(val.Row, 0, width)
	it := tree.Scan()
	for {
		k, _, ok := it.Next()
		if !ok {
			break
		}
		changed := len(prev) == 0
		for i := 0; i < width; i++ {
			if !changed && val.Compare(prev[i], k[i]) != 0 {
				changed = true
			}
			if changed {
				ndv[i]++
			}
		}
		prev = append(prev[:0], k...)
	}
	return ndv
}

// buildView materializes the view by executing its defining query and
// collecting statistics over the result.
func (e *Engine) buildView(vd conf.ViewDef) (*plan.ViewInfo, cost.Meter, error) {
	stmt, err := sql.ParseSelect(vd.SQL)
	if err != nil {
		return nil, cost.Meter{}, err
	}
	q, err := sql.Analyze(e.Schema, stmt)
	if err != nil {
		return nil, cost.Meter{}, err
	}
	if len(q.GroupBy) > 0 || len(q.Aggs) > 0 {
		return nil, cost.Meter{}, fmt.Errorf("view %s: only projection views are supported", vd.Name)
	}

	// Plan against the base configuration (no secondary structures are
	// assumed during the build).
	phys := e.physical(optimizer.Options{NoViews: true})
	p, err := optimizer.Optimize(phys, q, optimizer.Options{NoViews: true})
	if err != nil {
		return nil, cost.Meter{}, err
	}
	ctx := &exec.Ctx{Model: e.Model}
	res, err := exec.Run(p, ctx)
	if err != nil {
		return nil, cost.Meter{}, err
	}

	// Synthesize the view's schema from its output columns.
	cols := make([]catalog.Column, len(q.Out))
	outSrc := make([]sql.QCol, len(q.Out))
	for i, o := range q.Out {
		src := q.Tables[o.Col.Tab].Table.Columns[o.Col.Col]
		cols[i] = catalog.Column{
			Name:      "c" + strconv.Itoa(i),
			Type:      src.Type,
			Domain:    src.Domain,
			Indexable: src.Indexable,
			AvgWidth:  src.AvgWidth,
		}
		outSrc[i] = o.Col
	}
	vt, err := catalog.NewTable(vd.Name, cols, nil)
	if err != nil {
		return nil, cost.Meter{}, err
	}
	heap := storage.NewHeap(vt)
	for _, r := range res.Rows {
		if _, err := heap.Insert(nil, r); err != nil {
			return nil, cost.Meter{}, err
		}
	}
	// Build cost: the defining query's execution plus writing the result.
	m := ctx.Meter
	m.WritePage += heap.Pages()

	vi := &plan.ViewInfo{
		Def:    vd,
		Query:  q,
		Table:  vt,
		Heap:   heap,
		Stats:  stats.Collect(heap),
		OutSrc: outSrc,
	}
	return vi, m, nil
}

// physical assembles the Physical description of the current state.
func (e *Engine) physical(_ optimizer.Options) *plan.Physical {
	phys := &plan.Physical{
		Schema:  e.Schema,
		Tables:  make(map[string]*plan.TableInfo),
		Views:   e.views,
		Indexes: e.indexes,
		Mem:     e.Profile.MemBytes,
		Model:   e.Model,
	}
	for name, h := range e.heaps {
		phys.Tables[name] = &plan.TableInfo{Table: h.Table, Heap: h, Stats: e.statsFor(name, h)}
	}
	return phys
}

// Physical exposes the current physical design (for the recommenders).
func (e *Engine) Physical() *plan.Physical {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.physical(e.Profile.Opts)
}

// Measure is one observed or estimated query cost.
type Measure struct {
	SQL      string
	Seconds  float64
	TimedOut bool
	Meter    cost.Meter
}

// Prepare parses, analyzes and optimizes a query under the current
// configuration.
func (e *Engine) Prepare(sqlText string) (*plan.Plan, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.prepare(sqlText)
}

// prepare is Prepare without locking; the caller holds mu.
func (e *Engine) prepare(sqlText string) (*plan.Plan, error) {
	stmt, err := sql.ParseSelect(sqlText)
	if err != nil {
		return nil, err
	}
	q, err := sql.Analyze(e.Schema, stmt)
	if err != nil {
		return nil, err
	}
	return optimizer.Optimize(e.physical(e.Profile.Opts), q, e.Profile.Opts)
}

// Run executes the query under the current configuration with the given
// simulated-time limit (0 = no limit), returning the result rows (nil on
// timeout) and the measured cost A(q, C).
func (e *Engine) Run(sqlText string, limitSeconds float64) (*exec.Result, Measure, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	p, err := e.prepare(sqlText)
	if err != nil {
		return nil, Measure{}, err
	}
	return e.execPlan(p, sqlText, limitSeconds)
}

// RunAnalyzed executes an already-analyzed query under the current
// configuration. This is the gateway's serving path: the request pipeline
// parses and analyzes once for authorization and must not pay the SQL
// front end a second time per request. The query must have been analyzed
// against this engine's schema.
func (e *Engine) RunAnalyzed(q *sql.Query, limitSeconds float64) (*exec.Result, Measure, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	p, err := optimizer.Optimize(e.physical(e.Profile.Opts), q, e.Profile.Opts)
	if err != nil {
		return nil, Measure{}, err
	}
	return e.execPlan(p, q.SQL(), limitSeconds)
}

// execPlan runs an optimized plan and folds the execution into a Measure.
// The caller holds mu.RLock.
func (e *Engine) execPlan(p *plan.Plan, sqlText string, limitSeconds float64) (*exec.Result, Measure, error) {
	ctx := &exec.Ctx{Model: e.Model, LimitSeconds: limitSeconds}
	res, runErr := exec.Run(p, ctx)
	m := Measure{SQL: sqlText, Seconds: ctx.Seconds(), Meter: ctx.Meter}
	if runErr != nil {
		if runErr == exec.ErrTimeout {
			m.TimedOut = true
			m.Seconds = limitSeconds
			return nil, m, nil
		}
		return nil, Measure{}, runErr
	}
	if limitSeconds > 0 && m.Seconds > limitSeconds {
		// Work billed at operator boundaries may overshoot the limit.
		m.TimedOut = true
		m.Seconds = limitSeconds
	}
	return res, m, nil
}

// Estimate returns the optimizer's estimated cost E(q, C) of the query in
// the current configuration.
func (e *Engine) Estimate(sqlText string) (Measure, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	p, err := e.prepare(sqlText)
	if err != nil {
		return Measure{}, err
	}
	return Measure{SQL: sqlText, Seconds: p.Est.Seconds, Meter: p.Est.Meter}, nil
}
