package engine

import (
	"sync"
	"testing"
)

// TestConcurrentReadersWithWriter hammers the engine's read path — Run,
// Estimate and what-if estimation — from 32 goroutines while a writer
// periodically applies configurations. It asserts nothing about the
// values (determinism is covered elsewhere); its job is to put every
// lock in the engine under pressure so `go test -race ./...` can prove
// the discipline sound.
func TestConcurrentReadersWithWriter(t *testing.T) {
	e := testNREF(t, SystemA())
	if _, err := e.ApplyConfig(PConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	configs := configsUnderTest(e)
	hypo := OneColumnConfiguration(e)

	const readers = 32
	const iters = 6

	var wg sync.WaitGroup
	errc := make(chan error, readers+1)

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := e.NewWhatIf()
			for i := 0; i < iters; i++ {
				sqlText := testQueries[(g+i)%len(testQueries)]
				switch g % 3 {
				case 0:
					if _, _, err := e.Run(sqlText, 1800); err != nil {
						errc <- err
						return
					}
				case 1:
					if _, err := e.Estimate(sqlText); err != nil {
						errc <- err
						return
					}
				default:
					q, err := e.AnalyzeSQL(sqlText)
					if err != nil {
						errc <- err
						return
					}
					if _, err := w.Estimate(q, hypo); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2*len(configs); i++ {
			if _, err := e.ApplyConfig(configs[i%len(configs)]); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestConcurrentWhatIfSharedSession drives one shared what-if session
// from many goroutines: the derivation caches must be internally
// consistent (every goroutine sees the same derived estimate).
func TestConcurrentWhatIfSharedSession(t *testing.T) {
	e := testNREF(t, SystemB())
	if _, err := e.ApplyConfig(PConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	hypo := OneColumnConfiguration(e)
	w := e.NewWhatIf()

	q, err := e.AnalyzeSQL(testQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	want, err := w.Estimate(q, hypo)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	results := make([]float64, 16)
	errs := make([]error, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m, err := w.Estimate(q, hypo)
			results[g], errs[g] = m.Seconds, err
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
		if results[g] != want.Seconds {
			t.Errorf("goroutine %d: estimate %v, want %v", g, results[g], want.Seconds)
		}
	}
}
