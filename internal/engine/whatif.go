package engine

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/stats"
)

// whatifCalls and whatifHits count estimate invocations and relevance-
// cache hits process-wide. They are observability only — BENCH_whatif.json
// reports the hit rate — and nothing on a decision path reads them.
var (
	whatifCalls atomic.Int64
	whatifHits  atomic.Int64
)

// WhatIfCounters returns the process-wide what-if estimate call and
// cache-hit counts since the last reset.
func WhatIfCounters() (calls, hits int64) {
	return whatifCalls.Load(), whatifHits.Load()
}

// ResetWhatIfCounters zeroes the process-wide what-if counters (bench
// drivers reset them between measurement phases).
func ResetWhatIfCounters() {
	whatifCalls.Store(0)
	whatifHits.Store(0)
}

// WhatIf is a hypothetical-configuration estimation session: it answers
// H(q, Ch, Ca) — "what would query q cost in configuration Ch?" — while
// the engine remains in its actual configuration Ca.
//
// Structures of Ch that exist in Ca are described by their measured
// statistics; everything else gets *derived* statistics (composite
// distinct counts under an independence assumption, no page-locality
// credit, and the profile's row-count penalty). This derivation gap is
// the recommender weakness the paper's Section 5 demonstrates.
//
// The session memoizes aggressively — this is the recommender search's
// inner loop:
//
//   - derivation caches hold hypothetical index/view descriptions per
//     definition, and resolution caches hold the actual-or-derived
//     description per definition, so a search evaluating hundreds of
//     candidates pays each derivation and catalog lookup once;
//   - the base physical description (table stats, memory, cost model) is
//     assembled once and shared by every estimate of an epoch;
//   - estimates themselves are cached under a relevance key: the query's
//     fingerprint plus only the structures on relations the query can
//     touch, so candidate configurations differing in irrelevant
//     structures share one optimizer invocation.
//
// Every cache is invalidated when the engine's configuration epoch moves
// (ApplyConfig, Transition, Load, InsertRows, CollectStats), so a session
// may outlive configuration changes — the autopilot controller keeps one
// across retunes. A session may be shared by concurrent estimators: the
// caches are guarded by their own read-write mutex (warm estimates run
// the read-shared pass; cache fills take the exclusive pass), and every
// estimation entry point takes the engine's reader lock for the duration
// of the call.
type WhatIf struct {
	e *Engine
	// caching is fixed at session creation from the engine's
	// DisableWhatIfCache escape hatch.
	caching bool

	// mu guards the caches. Lock ordering: acquired after the engine's
	// reader lock, never the other way around. The values the maps hold
	// (*plan.IndexInfo, *plan.ViewInfo, the base *plan.Physical) are
	// immutable once published, so readers may keep using them after
	// releasing mu.
	mu    sync.RWMutex
	epoch int64 // conflint:guardedby mu (engine configEpoch the caches belong to)

	indexCache map[string]*plan.IndexInfo     // conflint:guardedby mu
	viewCache  map[string]*plan.ViewInfo      // conflint:guardedby mu
	resIndex   map[ixKey][]resolvedIndex      // conflint:guardedby mu (actual-or-hypo, bucketed by ixKey)
	resView    map[string]*plan.ViewInfo      // conflint:guardedby mu (actual-or-hypo, by lower name)
	base       *plan.Physical                 // conflint:guardedby mu
	queries    map[*sql.Query]*queryRelevance // conflint:guardedby mu
	estimates  map[string]estEntry            // conflint:guardedby mu
}

// queryRelevance is a query's once-computed fingerprint: its canonical
// SQL text and the set of relations whose physical structures can
// influence its plan — the FROM-list tables plus the tables of its
// IN-subqueries (planInSets consults indexes on those).
type queryRelevance struct {
	sql    string
	tables map[string]bool
}

// estEntry is one cached estimation result.
type estEntry struct {
	seconds float64
	meter   cost.Meter
}

// resolvedIndex is one memoized actual-or-derived index description with
// its definition name computed once — the name is the index's cache-key
// component, and rebuilding it per estimate showed up in profiles.
type resolvedIndex struct {
	def  conf.IndexDef
	name string
	ix   *plan.IndexInfo
}

// ixKey buckets interned index resolutions. Equal definitions always
// land in the same bucket, and the bucket scan stays short even under
// System A's permutation generator, which produces hundreds of
// distinct defs per table but spreads them across first columns.
type ixKey struct {
	table string
	n     int
	first string
}

func keyOf(d conf.IndexDef) ixKey {
	k := ixKey{table: strings.ToLower(d.Table), n: len(d.Columns)}
	if k.n > 0 {
		k.first = strings.ToLower(d.Columns[0])
	}
	return k
}

// NewWhatIf opens a what-if session against the current configuration.
func (e *Engine) NewWhatIf() *WhatIf {
	return &WhatIf{
		e:          e,
		caching:    !e.DisableWhatIfCache,
		epoch:      -1, // force a sync on first use
		indexCache: make(map[string]*plan.IndexInfo),
		viewCache:  make(map[string]*plan.ViewInfo),
		resIndex:   make(map[ixKey][]resolvedIndex),
		resView:    make(map[string]*plan.ViewInfo),
		queries:    make(map[*sql.Query]*queryRelevance),
		estimates:  make(map[string]estEntry),
	}
}

// Engine returns the engine the session estimates against.
func (w *WhatIf) Engine() *Engine { return w.e }

// AnalyzeSQL parses and analyzes a query once for repeated estimation.
func (e *Engine) AnalyzeSQL(sqlText string) (*sql.Query, error) {
	stmt, err := sql.ParseSelect(sqlText)
	if err != nil {
		return nil, err
	}
	return sql.Analyze(e.Schema, stmt)
}

// syncEpochLocked flushes the derivation, resolution and estimate caches
// when the engine's configuration epoch has moved since they were filled
// (invalidation on RUNSTATS, transitions and loads). Query fingerprints
// survive: they depend only on the query text. The caller holds w.mu and
// the engine's reader lock (required to read configEpoch).
func (w *WhatIf) syncEpochLocked() {
	if w.epoch == w.e.configEpoch {
		return
	}
	w.epoch = w.e.configEpoch
	w.indexCache = make(map[string]*plan.IndexInfo)
	w.viewCache = make(map[string]*plan.ViewInfo)
	w.resIndex = make(map[ixKey][]resolvedIndex)
	w.resView = make(map[string]*plan.ViewInfo)
	w.base = nil
	w.estimates = make(map[string]estEntry)
}

// Estimate returns H(q, Ch, Ca) for the hypothetical configuration.
//
// conflint:hotpath — every recommender candidate trial and every
// controller prediction funnels through here.
func (w *WhatIf) Estimate(q *sql.Query, hypo conf.Configuration) (Measure, error) {
	w.e.mu.RLock()
	defer w.e.mu.RUnlock()
	whatifCalls.Add(1)
	if !w.caching {
		return w.estimateUncached(q, hypo)
	}
	return w.estimate(q, hypo.Views, hypo.Indexes, nil, nil)
}

// EstimateWith returns H(q, base+delta, Ca) without materializing the
// combined configuration — the delta path the greedy search's
// base-plus-one-candidate trials take. The result is identical to
// Estimate against candidate.applyTo(base): delta views whose name base
// already holds and delta indexes base already defines are skipped,
// mirroring Configuration.HasView/AddIndex deduplication.
func (w *WhatIf) EstimateWith(q *sql.Query, base, delta conf.Configuration) (Measure, error) {
	w.e.mu.RLock()
	defer w.e.mu.RUnlock()
	whatifCalls.Add(1)
	if !w.caching {
		return w.estimateUncached(q, combineConfig(base, delta))
	}
	return w.estimate(q, base.Views, base.Indexes, delta.Views, delta.Indexes)
}

// estimateUncached is the pre-cache code path, kept verbatim behind the
// -whatif-cache=off escape hatch so regressions can be bisected.
func (w *WhatIf) estimateUncached(q *sql.Query, hypo conf.Configuration) (Measure, error) {
	phys, err := w.physical(hypo)
	if err != nil {
		return Measure{}, err
	}
	p, err := optimizer.Optimize(phys, q, w.e.Profile.Opts)
	if err != nil {
		return Measure{}, err
	}
	return Measure{SQL: q.SQL(), Seconds: p.Est.Seconds, Meter: p.Est.Meter}, nil
}

// errNeedFill is the internal signal that the read-shared estimation
// pass met a cold cache entry and the exclusive pass must run.
var errNeedFill = errors.New("engine: what-if caches need filling")

// estimate is the relevance-keyed fast path. The hypothetical
// configuration arrives as base plus an optional delta. Every definition
// is resolved (memoized per epoch) so derivation errors surface exactly
// as on the uncached path; the estimate is then keyed by the query
// fingerprint plus only the relevant structures:
//
//   - a view is relevant iff every table of its defining query is among
//     the query's relevant tables — view matching requires an unambiguous
//     mapping of all defining tables into the query, so an excluded view
//     can never produce a candidate;
//   - an index is relevant iff its relation is a relevant table or a
//     relevant view — the optimizer consults IndexesOn only for FROM
//     tables, IN-subquery tables and matched views.
//
// Two candidate configurations that agree on the relevant subset
// therefore share one cache entry and one optimizer invocation.
//
// The work runs as two passes so a fanned-out search does not serialize
// on the session: the read-shared pass handles warm caches concurrently,
// and only a cold fingerprint, definition or base falls back to the
// exclusive pass that may write.
func (w *WhatIf) estimate(q *sql.Query, baseViews []conf.ViewDef, baseIx []conf.IndexDef,
	deltaViews []conf.ViewDef, deltaIx []conf.IndexDef) (Measure, error) {
	m, err := w.estimatePass(q, baseViews, baseIx, deltaViews, deltaIx, false)
	if err == errNeedFill {
		m, err = w.estimatePass(q, baseViews, baseIx, deltaViews, deltaIx, true)
	}
	return m, err
}

// estimatePass is one attempt at the fast path. In the shared pass
// (exclusive=false) it holds only the read half of w.mu and reports
// errNeedFill at the first cold cache entry; in the exclusive pass it
// holds the write half and fills whatever is missing. Both passes
// assemble and optimize outside the lock — the cached structures they
// reference are immutable once published, and the engine's reader lock
// (held by the caller for the whole estimate) pins the epoch.
func (w *WhatIf) estimatePass(q *sql.Query, baseViews []conf.ViewDef, baseIx []conf.IndexDef,
	deltaViews []conf.ViewDef, deltaIx []conf.IndexDef, exclusive bool) (Measure, error) {

	if exclusive {
		w.mu.Lock()
	} else {
		w.mu.RLock()
	}
	unlock := func() {
		if exclusive {
			w.mu.Unlock()
		} else {
			w.mu.RUnlock()
		}
	}
	if exclusive {
		w.syncEpochLocked()
	} else if w.epoch != w.e.configEpoch {
		unlock()
		return Measure{}, errNeedFill
	}
	fp := w.queries[q]
	if fp == nil {
		if !exclusive {
			unlock()
			return Measure{}, errNeedFill
		}
		fp = w.relevanceLocked(q)
	}

	var key strings.Builder
	key.Grow(len(fp.sql) + 24*(len(baseViews)+len(deltaViews)+len(baseIx)+len(deltaIx)))
	key.WriteString(fp.sql)

	// Views first (indexes on views resolve against them); base before
	// delta, in configuration order — phys.Views order decides equal-cost
	// ties, so it is part of the key by construction.
	relViews := make([]*plan.ViewInfo, 0, len(baseViews)+len(deltaViews))
	relNames := make(map[string]bool, len(baseViews)+len(deltaViews))
	for _, vd := range baseViews {
		if err := w.noteView(vd, fp, &relViews, relNames, &key, exclusive); err != nil {
			unlock()
			return Measure{}, err
		}
	}
	for i, vd := range deltaViews {
		if viewNamed(baseViews, vd.Name) || viewNamed(deltaViews[:i], vd.Name) {
			continue
		}
		if err := w.noteView(vd, fp, &relViews, relNames, &key, exclusive); err != nil {
			unlock()
			return Measure{}, err
		}
	}
	relIx := make([]*plan.IndexInfo, 0, len(baseIx)+len(deltaIx))
	for _, d := range baseIx {
		if err := w.noteIndex(d, fp, relNames, &relIx, &key, exclusive); err != nil {
			unlock()
			return Measure{}, err
		}
	}
	for i, d := range deltaIx {
		if indexDefined(baseIx, d) || indexDefined(deltaIx[:i], d) {
			continue
		}
		if err := w.noteIndex(d, fp, relNames, &relIx, &key, exclusive); err != nil {
			unlock()
			return Measure{}, err
		}
	}

	k := key.String()
	if ent, ok := w.estimates[k]; ok {
		unlock()
		whatifHits.Add(1)
		return Measure{SQL: fp.sql, Seconds: ent.seconds, Meter: ent.meter}, nil
	}
	base := w.base
	if base == nil {
		if !exclusive {
			unlock()
			return Measure{}, errNeedFill
		}
		base = w.basePhysicalLocked()
	}
	unlock()

	// Miss: assemble the candidate physical incrementally — the memoized
	// base supplies tables, memory and model; only the relevant structures
	// are attached. Per-relation lists are name-sorted here, once, so the
	// optimizer's sortedIndexes takes its no-copy path. Workers racing on
	// the same key duplicate the optimization but store identical results.
	phys := &plan.Physical{
		Schema:  base.Schema,
		Tables:  base.Tables,
		Views:   relViews,
		Indexes: make(map[string][]*plan.IndexInfo, len(fp.tables)),
		Mem:     base.Mem,
		Model:   base.Model,
	}
	for _, ix := range relIx {
		rel := strings.ToLower(ix.Def.Table)
		phys.Indexes[rel] = append(phys.Indexes[rel], ix)
	}
	for _, list := range phys.Indexes {
		plan.SortIndexes(list)
	}
	p, err := optimizer.Optimize(phys, q, w.e.Profile.Opts)
	if err != nil {
		return Measure{}, err
	}
	w.mu.Lock()
	w.estimates[k] = estEntry{seconds: p.Est.Seconds, meter: p.Est.Meter}
	w.mu.Unlock()
	return Measure{SQL: fp.sql, Seconds: p.Est.Seconds, Meter: p.Est.Meter}, nil
}

// relevanceLocked returns the memoized fingerprint of an analyzed query.
// Caller holds w.mu exclusively.
func (w *WhatIf) relevanceLocked(q *sql.Query) *queryRelevance {
	if fp, ok := w.queries[q]; ok {
		return fp
	}
	fp := &queryRelevance{
		sql:    q.SQL(),
		tables: make(map[string]bool, len(q.Tables)+len(q.Ins)),
	}
	for _, t := range q.Tables {
		fp.tables[strings.ToLower(t.Table.Name)] = true
	}
	for _, p := range q.Ins {
		fp.tables[strings.ToLower(p.SubTable.Name)] = true
	}
	w.queries[q] = fp
	return fp
}

// noteView resolves one view of the hypothetical configuration and, when
// relevant to the query, records it for assembly and in the cache key.
// Resolution is keyed by name (first definition wins), matching the
// derivation cache's semantics, so the name alone identifies the
// description within an epoch.
func (w *WhatIf) noteView(vd conf.ViewDef, fp *queryRelevance,
	relViews *[]*plan.ViewInfo, relNames map[string]bool, key *strings.Builder, exclusive bool) error {
	vi, err := w.resolveView(vd, exclusive)
	if err != nil {
		return err
	}
	for _, t := range vi.Query.Tables {
		if !fp.tables[strings.ToLower(t.Table.Name)] {
			return nil // a defining table is absent: the view can never match
		}
	}
	*relViews = append(*relViews, vi)
	relNames[strings.ToLower(vd.Name)] = true
	key.WriteByte(0)
	key.WriteString(strings.ToLower(vd.Name))
	return nil
}

// noteIndex resolves one index definition and, when its relation is
// relevant, records it for assembly and in the cache key.
func (w *WhatIf) noteIndex(d conf.IndexDef, fp *queryRelevance, relNames map[string]bool,
	relIx *[]*plan.IndexInfo, key *strings.Builder, exclusive bool) error {
	ix, name, err := w.resolveIndex(d, exclusive)
	if err != nil {
		return err
	}
	rel := strings.ToLower(d.Table)
	if !fp.tables[rel] && !relNames[rel] {
		return nil
	}
	*relIx = append(*relIx, ix)
	key.WriteByte(1)
	key.WriteString(name)
	return nil
}

// viewNamed reports whether the slice holds a view of the given name.
func viewNamed(views []conf.ViewDef, name string) bool {
	for _, v := range views {
		if strings.EqualFold(v.Name, name) {
			return true
		}
	}
	return false
}

// indexDefined reports whether the slice holds an equal index definition.
func indexDefined(ixs []conf.IndexDef, d conf.IndexDef) bool {
	for _, e := range ixs {
		if e.Equal(d) {
			return true
		}
	}
	return false
}

// combineConfig materializes base+delta with applyTo's deduplication
// (the uncached path of EstimateWith).
func combineConfig(base, delta conf.Configuration) conf.Configuration {
	out := base.Clone()
	for _, v := range delta.Views {
		if !out.HasView(v.Name) {
			out.Views = append(out.Views, v)
		}
	}
	for _, d := range delta.Indexes {
		out.AddIndex(d)
	}
	return out
}

// resolveView returns the actual or derived description of a view,
// memoized per epoch under its lower-case name. In the shared pass a
// cold entry reports errNeedFill instead of writing.
func (w *WhatIf) resolveView(vd conf.ViewDef, exclusive bool) (*plan.ViewInfo, error) {
	key := strings.ToLower(vd.Name)
	if v, ok := w.resView[key]; ok {
		return v, nil
	}
	if !exclusive {
		return nil, errNeedFill
	}
	v := w.e.findView(vd.Name)
	if v == nil {
		var err error
		v, err = w.hypoViewLocked(vd)
		if err != nil {
			return nil, err
		}
	}
	w.resView[key] = v
	return v, nil
}

// resolveIndex returns the actual or derived description of an index
// and its definition name (the index's cache-key component), memoized
// per epoch. Entries are interned in small buckets and matched by Equal —
// equal definitions share one description and one name, so the
// allocation-heavy Name construction happens once per definition. In
// the shared pass a cold entry reports errNeedFill instead of writing.
func (w *WhatIf) resolveIndex(d conf.IndexDef, exclusive bool) (*plan.IndexInfo, string, error) {
	rel := keyOf(d)
	for _, r := range w.resIndex[rel] {
		if r.def.Equal(d) {
			return r.ix, r.name, nil
		}
	}
	if !exclusive {
		return nil, "", errNeedFill
	}
	ix := w.e.findIndex(d)
	if ix == nil {
		var err error
		ix, err = w.hypoIndexLocked(d)
		if err != nil {
			return nil, "", err
		}
	}
	r := resolvedIndex{def: d, name: d.Name(), ix: ix}
	w.resIndex[rel] = append(w.resIndex[rel], r)
	return ix, r.name, nil
}

// basePhysicalLocked returns the memoized configuration-independent part
// of a hypothetical Physical: table descriptions, memory budget and cost
// model. The Tables map is shared by every estimate of the epoch; the
// optimizer only reads it.
func (w *WhatIf) basePhysicalLocked() *plan.Physical {
	if w.base == nil {
		w.base = w.e.physical(w.e.Profile.Opts)
	}
	return w.base
}

// EstimateSize returns the estimated full-scale bytes of the
// configuration's indexes and views beyond the base data — the measure
// the storage budget constrains (paper §2.2: ET uses storage).
func (w *WhatIf) EstimateSize(hypo conf.Configuration) int64 {
	w.e.mu.RLock()
	defer w.e.mu.RUnlock()
	var total int64
	for _, vd := range hypo.Views {
		vi, err := w.hypoView(vd)
		if err != nil {
			continue
		}
		total += int64(float64(vi.Stats.Pages*cost.PageSize) / w.e.ScaleFactor)
	}
	for _, d := range hypo.Indexes {
		if d.Auto {
			continue // primary-key indexes belong to every configuration
		}
		ix, err := w.hypoIndex(d)
		if err != nil {
			continue
		}
		total += ix.Bytes
	}
	return total
}

// physical assembles a hypothetical physical design from scratch — the
// uncached estimation path.
func (w *WhatIf) physical(hypo conf.Configuration) (*plan.Physical, error) {
	phys := w.e.physical(w.e.Profile.Opts)
	indexes := make(map[string][]*plan.IndexInfo)
	views := make([]*plan.ViewInfo, 0, len(hypo.Views))

	for _, vd := range hypo.Views {
		if actual := w.e.findView(vd.Name); actual != nil {
			views = append(views, actual)
			continue
		}
		vi, err := w.hypoView(vd)
		if err != nil {
			return nil, err
		}
		views = append(views, vi)
	}
	for _, d := range hypo.Indexes {
		var ix *plan.IndexInfo
		if actual := w.e.findIndex(d); actual != nil {
			ix = actual
		} else {
			var err error
			ix, err = w.hypoIndex(d)
			if err != nil {
				return nil, err
			}
		}
		key := strings.ToLower(d.Table)
		indexes[key] = append(indexes[key], ix)
	}
	phys.Indexes = indexes
	phys.Views = views
	return phys, nil
}

// findIndex returns the built index matching the definition, if any.
func (e *Engine) findIndex(d conf.IndexDef) *plan.IndexInfo {
	for _, ix := range e.indexes[strings.ToLower(d.Table)] {
		if ix.Def.Equal(d) {
			return ix
		}
	}
	return nil
}

// findView returns the built view with the given name, if any.
func (e *Engine) findView(name string) *plan.ViewInfo {
	for _, v := range e.views {
		if strings.EqualFold(v.Def.Name, name) {
			return v
		}
	}
	return nil
}

// hypoIndex derives (and caches) a hypothetical index description from
// the statistics of the current configuration.
func (w *WhatIf) hypoIndex(d conf.IndexDef) (*plan.IndexInfo, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncEpochLocked()
	return w.hypoIndexLocked(d)
}

// hypoIndexLocked is hypoIndex with w.mu held by the caller.
func (w *WhatIf) hypoIndexLocked(d conf.IndexDef) (*plan.IndexInfo, error) {
	key := d.Name()
	if ix, ok := w.indexCache[key]; ok {
		return ix, nil
	}
	var tab *catalog.Table
	var ts *stats.TableStats
	if t := w.e.Schema.Table(d.Table); t != nil {
		tab = t
		ts = w.e.TableStats(d.Table)
	} else if v, ok := w.viewCache[strings.ToLower(d.Table)]; ok {
		tab, ts = v.Table, v.Stats
	} else if v := w.e.findView(d.Table); v != nil {
		tab, ts = v.Table, v.Stats
	}
	if tab == nil || ts == nil {
		return nil, fmt.Errorf("engine: what-if index on unknown relation %s", d.Table)
	}
	cols := make([]int, len(d.Columns))
	entryWidth := 8 // rid
	for i, cn := range d.Columns {
		ci := tab.ColumnIndex(cn)
		if ci < 0 {
			return nil, fmt.Errorf("engine: what-if index: no column %s in %s", cn, d.Table)
		}
		cols[i] = ci
		if tab.Columns[ci].Type == catalog.TypeString {
			aw := tab.Columns[ci].AvgWidth
			if aw == 0 {
				aw = 16
			}
			entryWidth += 2 + aw
		} else {
			entryWidth += 8
		}
	}
	ndv := make([]int64, len(cols))
	for i := range cols {
		ndv[i] = ts.CompositeNDV(cols[:i+1])
	}
	rows := ts.Rows
	fill := int64(cost.PageSize) * 70 / 100
	leafPages := (rows*int64(entryWidth) + fill - 1) / fill
	if leafPages < 1 {
		leafPages = 1
	}
	height := 1
	for p := leafPages; p > 1; p = (p + 63) / 64 {
		height++
	}
	epl := fill / int64(entryWidth)
	if epl < 1 {
		epl = 1
	}
	ix := &plan.IndexInfo{
		Def:          d,
		Cols:         cols,
		Hypothetical: true,
		KeyNDV:       ndv,
		// Bytes is a full-scale figure (the budget's unit); the page and
		// height fields stay in the scaled domain the cost meter uses.
		Bytes:          int64(float64((leafPages+leafPages/64+1)*cost.PageSize) / w.e.ScaleFactor),
		Height:         height,
		LeafPages:      leafPages,
		EntriesPerLeaf: epl,
	}
	w.indexCache[key] = ix
	return ix, nil
}

// hypoView derives (and caches) a hypothetical materialized view
// description: the defining query is analyzed, its cardinality estimated
// with the join formula, and column statistics are borrowed from the base
// tables.
func (w *WhatIf) hypoView(vd conf.ViewDef) (*plan.ViewInfo, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.syncEpochLocked()
	return w.hypoViewLocked(vd)
}

// hypoViewLocked is hypoView with w.mu held by the caller.
func (w *WhatIf) hypoViewLocked(vd conf.ViewDef) (*plan.ViewInfo, error) {
	key := strings.ToLower(vd.Name)
	if v, ok := w.viewCache[key]; ok {
		return v, nil
	}
	stmt, err := sql.ParseSelect(vd.SQL)
	if err != nil {
		return nil, err
	}
	q, err := sql.Analyze(w.e.Schema, stmt)
	if err != nil {
		return nil, err
	}

	// Estimated cardinality: product of table rows over join-key NDVs.
	// Multiple predicates between the same table pair are usually
	// correlated (composite foreign keys), so predicates after the first
	// divide by the square root of their NDV only.
	rows := 1.0
	for _, t := range q.Tables {
		ts := w.e.TableStats(t.Table.Name)
		if ts == nil {
			return nil, fmt.Errorf("engine: no stats for %s", t.Table.Name)
		}
		rows *= float64(ts.Rows)
	}
	pairSeen := make(map[[2]int]bool)
	for _, j := range q.Joins {
		lts := w.e.TableStats(q.Tables[j.L.Tab].Table.Name)
		rts := w.e.TableStats(q.Tables[j.R.Tab].Table.Name)
		ndv := math.Max(float64(lts.Cols[j.L.Col].NDV), float64(rts.Cols[j.R.Col].NDV))
		pair := [2]int{j.L.Tab, j.R.Tab}
		if pair[0] > pair[1] {
			pair[0], pair[1] = pair[1], pair[0]
		}
		if pairSeen[pair] {
			ndv = math.Sqrt(ndv)
		}
		pairSeen[pair] = true
		if ndv > 1 {
			rows /= ndv
		}
	}
	if rows < 1 {
		rows = 1
	}

	cols := make([]catalog.Column, len(q.Out))
	outSrc := make([]sql.QCol, len(q.Out))
	cstats := make([]stats.ColumnStats, len(q.Out))
	width := 4
	for i, o := range q.Out {
		src := q.Tables[o.Col.Tab].Table.Columns[o.Col.Col]
		cols[i] = catalog.Column{
			Name: "c" + strconv.Itoa(i), Type: src.Type, Domain: src.Domain,
			Indexable: src.Indexable, AvgWidth: src.AvgWidth,
		}
		outSrc[i] = o.Col
		srcStats := w.e.TableStats(q.Tables[o.Col.Tab].Table.Name)
		cstats[i] = srcStats.Cols[o.Col.Col]
		if cstats[i].NDV > int64(rows) {
			cstats[i].NDV = int64(rows)
		}
		if src.Type == catalog.TypeString {
			aw := src.AvgWidth
			if aw == 0 {
				aw = 16
			}
			width += 2 + aw
		} else {
			width += 8
		}
	}
	vt, err := catalog.NewTable(vd.Name, cols, nil)
	if err != nil {
		return nil, err
	}
	vi := &plan.ViewInfo{
		Def:   vd,
		Query: q,
		Table: vt,
		Stats: &stats.TableStats{
			Rows:  int64(rows),
			Pages: cost.PagesForBytes(int64(rows) * int64(width)),
			Cols:  cstats,
		},
		OutSrc: outSrc,
	}
	w.viewCache[key] = vi
	return vi, nil
}
