package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/cost"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/stats"
)

// WhatIf is a hypothetical-configuration estimation session: it answers
// H(q, Ch, Ca) — "what would query q cost in configuration Ch?" — while
// the engine remains in its actual configuration Ca.
//
// Structures of Ch that exist in Ca are described by their measured
// statistics; everything else gets *derived* statistics (composite
// distinct counts under an independence assumption, no page-locality
// credit, and the profile's row-count penalty). This derivation gap is
// the recommender weakness the paper's Section 5 demonstrates.
//
// The session caches derived descriptions, so a recommender evaluating
// hundreds of candidate configurations pays the derivation once per
// structure. A session may be shared by concurrent estimators: the caches
// are guarded by their own mutex, and every estimation entry point takes
// the engine's reader lock for the duration of the call.
type WhatIf struct {
	e *Engine

	// mu guards the derivation caches. Lock ordering: acquired after the
	// engine's reader lock, never the other way around.
	mu         sync.Mutex
	indexCache map[string]*plan.IndexInfo // conflint:guardedby mu
	viewCache  map[string]*plan.ViewInfo  // conflint:guardedby mu
}

// NewWhatIf opens a what-if session against the current configuration.
func (e *Engine) NewWhatIf() *WhatIf {
	return &WhatIf{
		e:          e,
		indexCache: make(map[string]*plan.IndexInfo),
		viewCache:  make(map[string]*plan.ViewInfo),
	}
}

// AnalyzeSQL parses and analyzes a query once for repeated estimation.
func (e *Engine) AnalyzeSQL(sqlText string) (*sql.Query, error) {
	stmt, err := sql.ParseSelect(sqlText)
	if err != nil {
		return nil, err
	}
	return sql.Analyze(e.Schema, stmt)
}

// Estimate returns H(q, Ch, Ca) for the hypothetical configuration.
func (w *WhatIf) Estimate(q *sql.Query, hypo conf.Configuration) (Measure, error) {
	w.e.mu.RLock()
	defer w.e.mu.RUnlock()
	phys, err := w.physical(hypo)
	if err != nil {
		return Measure{}, err
	}
	p, err := optimizer.Optimize(phys, q, w.e.Profile.Opts)
	if err != nil {
		return Measure{}, err
	}
	return Measure{SQL: q.SQL(), Seconds: p.Est.Seconds, Meter: p.Est.Meter}, nil
}

// EstimateSize returns the estimated full-scale bytes of the
// configuration's indexes and views beyond the base data — the measure
// the storage budget constrains (paper §2.2: ET uses storage).
func (w *WhatIf) EstimateSize(hypo conf.Configuration) int64 {
	w.e.mu.RLock()
	defer w.e.mu.RUnlock()
	var total int64
	for _, vd := range hypo.Views {
		vi, err := w.hypoView(vd)
		if err != nil {
			continue
		}
		total += int64(float64(vi.Stats.Pages*cost.PageSize) / w.e.ScaleFactor)
	}
	for _, d := range hypo.Indexes {
		if d.Auto {
			continue // primary-key indexes belong to every configuration
		}
		ix, err := w.hypoIndex(d)
		if err != nil {
			continue
		}
		total += ix.Bytes
	}
	return total
}

// physical assembles a hypothetical physical design.
func (w *WhatIf) physical(hypo conf.Configuration) (*plan.Physical, error) {
	phys := w.e.physical(w.e.Profile.Opts)
	indexes := make(map[string][]*plan.IndexInfo)
	views := make([]*plan.ViewInfo, 0, len(hypo.Views))

	for _, vd := range hypo.Views {
		if actual := w.e.findView(vd.Name); actual != nil {
			views = append(views, actual)
			continue
		}
		vi, err := w.hypoView(vd)
		if err != nil {
			return nil, err
		}
		views = append(views, vi)
	}
	for _, d := range hypo.Indexes {
		var ix *plan.IndexInfo
		if actual := w.e.findIndex(d); actual != nil {
			ix = actual
		} else {
			var err error
			ix, err = w.hypoIndex(d)
			if err != nil {
				return nil, err
			}
		}
		key := strings.ToLower(d.Table)
		indexes[key] = append(indexes[key], ix)
	}
	phys.Indexes = indexes
	phys.Views = views
	return phys, nil
}

// findIndex returns the built index matching the definition, if any.
func (e *Engine) findIndex(d conf.IndexDef) *plan.IndexInfo {
	for _, ix := range e.indexes[strings.ToLower(d.Table)] {
		if ix.Def.Equal(d) {
			return ix
		}
	}
	return nil
}

// findView returns the built view with the given name, if any.
func (e *Engine) findView(name string) *plan.ViewInfo {
	for _, v := range e.views {
		if strings.EqualFold(v.Def.Name, name) {
			return v
		}
	}
	return nil
}

// hypoIndex derives a hypothetical index description from the statistics
// of the current configuration.
func (w *WhatIf) hypoIndex(d conf.IndexDef) (*plan.IndexInfo, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	key := d.Name()
	if ix, ok := w.indexCache[key]; ok {
		return ix, nil
	}
	var tab *catalog.Table
	var ts *stats.TableStats
	if t := w.e.Schema.Table(d.Table); t != nil {
		tab = t
		ts = w.e.TableStats(d.Table)
	} else if v, ok := w.viewCache[strings.ToLower(d.Table)]; ok {
		tab, ts = v.Table, v.Stats
	} else if v := w.e.findView(d.Table); v != nil {
		tab, ts = v.Table, v.Stats
	}
	if tab == nil || ts == nil {
		return nil, fmt.Errorf("engine: what-if index on unknown relation %s", d.Table)
	}
	cols := make([]int, len(d.Columns))
	entryWidth := 8 // rid
	for i, cn := range d.Columns {
		ci := tab.ColumnIndex(cn)
		if ci < 0 {
			return nil, fmt.Errorf("engine: what-if index: no column %s in %s", cn, d.Table)
		}
		cols[i] = ci
		if tab.Columns[ci].Type == catalog.TypeString {
			aw := tab.Columns[ci].AvgWidth
			if aw == 0 {
				aw = 16
			}
			entryWidth += 2 + aw
		} else {
			entryWidth += 8
		}
	}
	ndv := make([]int64, len(cols))
	for i := range cols {
		ndv[i] = ts.CompositeNDV(cols[:i+1])
	}
	rows := ts.Rows
	fill := int64(cost.PageSize) * 70 / 100
	leafPages := (rows*int64(entryWidth) + fill - 1) / fill
	if leafPages < 1 {
		leafPages = 1
	}
	height := 1
	for p := leafPages; p > 1; p = (p + 63) / 64 {
		height++
	}
	epl := fill / int64(entryWidth)
	if epl < 1 {
		epl = 1
	}
	ix := &plan.IndexInfo{
		Def:          d,
		Cols:         cols,
		Hypothetical: true,
		KeyNDV:       ndv,
		// Bytes is a full-scale figure (the budget's unit); the page and
		// height fields stay in the scaled domain the cost meter uses.
		Bytes:          int64(float64((leafPages+leafPages/64+1)*cost.PageSize) / w.e.ScaleFactor),
		Height:         height,
		LeafPages:      leafPages,
		EntriesPerLeaf: epl,
	}
	w.indexCache[key] = ix
	return ix, nil
}

// hypoView derives a hypothetical materialized view description: the
// defining query is analyzed, its cardinality estimated with the join
// formula, and column statistics are borrowed from the base tables.
func (w *WhatIf) hypoView(vd conf.ViewDef) (*plan.ViewInfo, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	key := strings.ToLower(vd.Name)
	if v, ok := w.viewCache[key]; ok {
		return v, nil
	}
	stmt, err := sql.ParseSelect(vd.SQL)
	if err != nil {
		return nil, err
	}
	q, err := sql.Analyze(w.e.Schema, stmt)
	if err != nil {
		return nil, err
	}

	// Estimated cardinality: product of table rows over join-key NDVs.
	// Multiple predicates between the same table pair are usually
	// correlated (composite foreign keys), so predicates after the first
	// divide by the square root of their NDV only.
	rows := 1.0
	for _, t := range q.Tables {
		ts := w.e.TableStats(t.Table.Name)
		if ts == nil {
			return nil, fmt.Errorf("engine: no stats for %s", t.Table.Name)
		}
		rows *= float64(ts.Rows)
	}
	pairSeen := make(map[[2]int]bool)
	for _, j := range q.Joins {
		lts := w.e.TableStats(q.Tables[j.L.Tab].Table.Name)
		rts := w.e.TableStats(q.Tables[j.R.Tab].Table.Name)
		ndv := math.Max(float64(lts.Cols[j.L.Col].NDV), float64(rts.Cols[j.R.Col].NDV))
		pair := [2]int{j.L.Tab, j.R.Tab}
		if pair[0] > pair[1] {
			pair[0], pair[1] = pair[1], pair[0]
		}
		if pairSeen[pair] {
			ndv = math.Sqrt(ndv)
		}
		pairSeen[pair] = true
		if ndv > 1 {
			rows /= ndv
		}
	}
	if rows < 1 {
		rows = 1
	}

	cols := make([]catalog.Column, len(q.Out))
	outSrc := make([]sql.QCol, len(q.Out))
	cstats := make([]stats.ColumnStats, len(q.Out))
	width := 4
	for i, o := range q.Out {
		src := q.Tables[o.Col.Tab].Table.Columns[o.Col.Col]
		cols[i] = catalog.Column{
			Name: "c" + strconv.Itoa(i), Type: src.Type, Domain: src.Domain,
			Indexable: src.Indexable, AvgWidth: src.AvgWidth,
		}
		outSrc[i] = o.Col
		srcStats := w.e.TableStats(q.Tables[o.Col.Tab].Table.Name)
		cstats[i] = srcStats.Cols[o.Col.Col]
		if cstats[i].NDV > int64(rows) {
			cstats[i].NDV = int64(rows)
		}
		if src.Type == catalog.TypeString {
			aw := src.AvgWidth
			if aw == 0 {
				aw = 16
			}
			width += 2 + aw
		} else {
			width += 8
		}
	}
	vt, err := catalog.NewTable(vd.Name, cols, nil)
	if err != nil {
		return nil, err
	}
	vi := &plan.ViewInfo{
		Def:   vd,
		Query: q,
		Table: vt,
		Stats: &stats.TableStats{
			Rows:  int64(rows),
			Pages: cost.PagesForBytes(int64(rows) * int64(width)),
			Cols:  cstats,
		},
		OutSrc: outSrc,
	}
	w.viewCache[key] = vi
	return vi, nil
}
