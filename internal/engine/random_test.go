package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/datagen"
	"repro/internal/storage"
)

// randomQuery builds a random conjunctive aggregate query over the NREF
// schema: 1-3 (possibly repeated) tables joined through shared domains,
// random constant predicates with constants drawn from live data, an
// occasional IN subquery, and a GROUP BY with COUNT(*).
func randomQuery(rng *rand.Rand, e *Engine) (string, bool) {
	tables := e.Schema.Tables()
	n := 1 + rng.Intn(3)
	picked := make([]*catalog.Table, 0, n)
	// Avoid the biggest table for 3-way joins to keep the naive evaluator
	// tractable.
	for len(picked) < n {
		t := tables[rng.Intn(len(tables))]
		if n == 3 && strings.EqualFold(t.Name, "neighboring_seq") {
			continue
		}
		picked = append(picked, t)
	}
	alias := func(i int) string { return fmt.Sprintf("q%d", i) }

	indexableOf := func(t *catalog.Table) []catalog.Column {
		var out []catalog.Column
		for _, c := range t.Columns {
			if c.Indexable {
				out = append(out, c)
			}
		}
		return out
	}

	// Connect table i to some earlier table via a shared domain.
	var preds []string
	for i := 1; i < len(picked); i++ {
		j := rng.Intn(i)
		var pairs [][2]string
		for _, ci := range indexableOf(picked[i]) {
			for _, cj := range indexableOf(picked[j]) {
				if ci.Domain != "" && ci.Domain == cj.Domain {
					pairs = append(pairs, [2]string{ci.Name, cj.Name})
				}
			}
		}
		if len(pairs) == 0 {
			return "", false
		}
		p := pairs[rng.Intn(len(pairs))]
		preds = append(preds, fmt.Sprintf("%s.%s = %s.%s", alias(i), p[0], alias(j), p[1]))
	}

	// Constant predicates with live constants.
	nSel := rng.Intn(3)
	for k := 0; k < nSel; k++ {
		ti := rng.Intn(len(picked))
		cols := indexableOf(picked[ti])
		col := cols[rng.Intn(len(cols))]
		h := e.Heap(picked[ti].Name)
		if h.NumRows() == 0 {
			continue
		}
		row := h.Get(storage.RowID(rng.Int63n(h.NumRows())))
		v := row[picked[ti].ColumnIndex(col.Name)]
		op := []string{"=", "<", "<=", ">", ">="}[rng.Intn(5)]
		preds = append(preds, fmt.Sprintf("%s.%s %s %s", alias(ti), col.Name, op, v.String()))
	}

	// Occasional IN subquery on a domain column.
	if rng.Intn(3) == 0 {
		ti := rng.Intn(len(picked))
		cols := indexableOf(picked[ti])
		col := cols[rng.Intn(len(cols))]
		sub := tables[rng.Intn(len(tables))]
		var subCol string
		for _, sc := range indexableOf(sub) {
			if sc.Domain != "" && sc.Domain == col.Domain {
				subCol = sc.Name
				break
			}
		}
		if subCol != "" {
			k := 2 + rng.Intn(6)
			preds = append(preds, fmt.Sprintf(
				"%s.%s IN (SELECT %s FROM %s GROUP BY %s HAVING COUNT(*) < %d)",
				alias(ti), col.Name, subCol, sub.Name, subCol, k))
		}
	}

	// GROUP BY 1-2 columns of the first table.
	cols0 := indexableOf(picked[0])
	ng := 1 + rng.Intn(2)
	var groups []string
	for k := 0; k < ng && k < len(cols0); k++ {
		g := alias(0) + "." + cols0[(rng.Intn(len(cols0))+k)%len(cols0)].Name
		dup := false
		for _, existing := range groups {
			if existing == g {
				dup = true
			}
		}
		if !dup {
			groups = append(groups, g)
		}
	}

	var sb strings.Builder
	sb.WriteString("SELECT " + strings.Join(groups, ", ") + ", COUNT(*) FROM ")
	for i, t := range picked {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Name + " " + alias(i))
	}
	if len(preds) > 0 {
		sb.WriteString(" WHERE " + strings.Join(preds, " AND "))
	}
	sb.WriteString(" GROUP BY " + strings.Join(groups, ", "))
	return sb.String(), true
}

// randomConfig picks a random set of 1- and 2-column indexes.
func randomConfig(rng *rand.Rand, e *Engine) conf.Configuration {
	cfg := PConfiguration(e)
	cfg.Name = "random"
	for _, t := range e.Schema.Tables() {
		cols := t.IndexableColumns()
		for _, c := range cols {
			if rng.Intn(3) == 0 {
				cfg.AddIndex(conf.IndexDef{Table: t.Name, Columns: []string{c}})
			}
		}
		if len(cols) >= 2 && rng.Intn(2) == 0 {
			i, j := rng.Intn(len(cols)), rng.Intn(len(cols))
			if i != j {
				cfg.AddIndex(conf.IndexDef{Table: t.Name, Columns: []string{cols[i], cols[j]}})
			}
		}
	}
	return cfg
}

// TestRandomQueryEquivalence fuzzes the whole stack: random queries under
// random index configurations must return exactly what the naive evaluator
// returns.
func TestRandomQueryEquivalence(t *testing.T) {
	e := New(catalog.NREF(), 0.00005, SystemA())
	if err := datagen.GenerateNREF(e, datagen.NREFOptions{ScaleFactor: 0.00005, Seed: 17}); err != nil {
		t.Fatal(err)
	}
	e.CollectStats()
	rng := rand.New(rand.NewSource(99))

	queries := 0
	for attempt := 0; attempt < 200 && queries < 40; attempt++ {
		qText, ok := randomQuery(rng, e)
		if !ok {
			continue
		}
		q, err := e.AnalyzeSQL(qText)
		if err != nil {
			t.Fatalf("generated unanalyzable query %q: %v", qText, err)
		}
		queries++
		want := naiveEval(e, q)
		for trial := 0; trial < 2; trial++ {
			cfg := randomConfig(rng, e)
			if _, err := e.ApplyConfig(cfg); err != nil {
				t.Fatal(err)
			}
			res, _, err := e.Run(qText, 0)
			if err != nil {
				t.Fatalf("query %q: %v", qText, err)
			}
			if !rowsEqual(res.Rows, want) {
				p, _ := e.Prepare(qText)
				t.Fatalf("random query diverged from naive evaluation\nquery: %s\nconfig: %v\ngot %d rows, want %d\nplan:\n%s",
					qText, cfg.Indexes, len(res.Rows), len(want), p.Explain())
			}
		}
	}
	if queries < 20 {
		t.Fatalf("only %d usable random queries generated", queries)
	}
}
