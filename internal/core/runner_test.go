package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunnerWorkers(t *testing.T) {
	if got := (Runner{}).workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("zero-value workers = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Runner{Parallelism: -3}).workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("negative parallelism workers = %d", got)
	}
	if got := (Runner{Parallelism: 5}).workers(); got != 5 {
		t.Errorf("workers = %d, want 5", got)
	}
}

// TestRunnerEachCoversAllIndexes checks every index runs exactly once at
// every pool size, including pools larger than the job count.
func TestRunnerEachCoversAllIndexes(t *testing.T) {
	for _, par := range []int{1, 2, 7, 64} {
		const n = 40
		var counts [n]int32
		err := Runner{Parallelism: par}.Each(n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("parallelism %d: index %d ran %d times", par, i, c)
			}
		}
	}
	if err := (Runner{Parallelism: 4}).Each(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("each(0) = %v", err)
	}
}

// TestRunnerEachLowestIndexError checks error determinism: whatever the
// scheduling, the reported error is the one the sequential path would
// hit first.
func TestRunnerEachLowestIndexError(t *testing.T) {
	for _, par := range []int{1, 4, 16} {
		err := Runner{Parallelism: par}.Each(50, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("odd %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "odd 1" {
			t.Fatalf("parallelism %d: err = %v, want odd 1", par, err)
		}
	}
}
