package core

import (
	"fmt"
	"math"
	"strings"
)

// RenderCurves draws several cumulative-frequency curves on one log-x
// chart — the textual analogue of the paper's Figures 3 through 10. Each
// curve gets a marker character; the y axis is cumulative fraction and the
// x axis spans [lo, timeout] log-scaled, with a final t_out column.
//
// conflint:sink cumulative-frequency curve figure
func RenderCurves(title string, labels []string, curves []CFC, lo, timeout float64) string {
	const width, height = 64, 16
	if lo <= 0 {
		lo = 1
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	xAt := func(col int) float64 {
		f := float64(col) / float64(width-1)
		return lo * math.Pow(timeout/lo, f)
	}
	for ci, c := range curves {
		mk := markers[ci%len(markers)]
		for col := 0; col < width; col++ {
			frac := c.At(xAt(col))
			row := height - 1 - int(frac*float64(height-1)+0.5)
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mk
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for i, l := range labels {
		if i < len(curves) {
			fmt.Fprintf(&sb, "  %c %s (t_out=%d/%d)", markers[i%len(markers)], l,
				curves[i].Timeouts(), curves[i].N())
		}
	}
	sb.WriteString("\n")
	for r, row := range grid {
		frac := 100 * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(&sb, "%5.0f%% |%s|\n", frac, string(row))
	}
	// X axis: decade tick marks.
	axis := []byte(strings.Repeat("-", width))
	labelsRow := []byte(strings.Repeat(" ", width+8))
	for d := math.Ceil(math.Log10(lo)); d <= math.Log10(timeout); d++ {
		x := math.Pow(10, d)
		col := int(math.Log(x/lo) / math.Log(timeout/lo) * float64(width-1))
		if col >= 0 && col < width {
			axis[col] = '+'
			lab := fmtSeconds(x)
			for i := 0; i < len(lab) && col+8+i < len(labelsRow); i++ {
				labelsRow[col+8+i] = lab[i]
			}
		}
	}
	fmt.Fprintf(&sb, "       +%s+\n", string(axis))
	fmt.Fprintf(&sb, "%s\n", string(labelsRow))
	return sb.String()
}

// SummaryTable renders quantile summaries for several configurations.
func SummaryTable(labels []string, curves []CFC) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %9s %9s %9s %9s %7s %12s\n",
		"config", "p25", "median", "p75", "p90", "t_out", "total(lb)")
	for i, l := range labels {
		c := curves[i]
		fmt.Fprintf(&sb, "%-14s %9s %9s %9s %9s %4d/%-3d %11.0fs\n",
			l, fq(c.Quantile(0.25)), fq(c.Quantile(0.5)), fq(c.Quantile(0.75)),
			fq(c.Quantile(0.9)), c.Timeouts(), c.N(), c.TotalLowerBound())
	}
	return sb.String()
}

func fq(x float64) string {
	if math.IsInf(x, 1) {
		return "t_out"
	}
	return fmtSeconds(x)
}
