package core

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseGoal parses a step-goal spec of the form
// "10:0.10,60:0.50,1800:0.90": each comma-separated SECONDS:FRACTION
// pair declares G(x) = FRACTION from x = SECONDS on. It is the textual
// goal format shared by autopilotd's -goal flag and the gateway's
// per-tenant configuration.
func ParseGoal(spec string) (Goal, error) {
	g := Goal{Name: "custom"}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		xs, fs, ok := strings.Cut(part, ":")
		if !ok {
			return Goal{}, fmt.Errorf("goal step %q: want SECONDS:FRACTION", part)
		}
		x, err := strconv.ParseFloat(xs, 64)
		if err != nil {
			return Goal{}, err
		}
		f, err := strconv.ParseFloat(fs, 64)
		if err != nil {
			return Goal{}, err
		}
		if x < 0 || f <= 0 || f > 1 {
			return Goal{}, fmt.Errorf("goal step %q: want SECONDS >= 0 and FRACTION in (0,1]", part)
		}
		g.Steps = append(g.Steps, GoalStep{X: x, Frac: f})
	}
	if len(g.Steps) == 0 {
		return Goal{}, fmt.Errorf("no goal steps in %q", spec)
	}
	return g, nil
}

// String renders a goal back to the ParseGoal format.
func (g Goal) String() string {
	parts := make([]string, len(g.Steps))
	for i, st := range g.Steps {
		parts[i] = strconv.FormatFloat(st.X, 'g', -1, 64) + ":" + strconv.FormatFloat(st.Frac, 'g', -1, 64)
	}
	return strings.Join(parts, ",")
}
