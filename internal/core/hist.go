package core

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a log-scale histogram of per-query times with a dedicated
// timeout bin, matching the figures' presentation (Figure 1: "we define
// the bins using a logarithmic scale ... and report all timeout queries on
// a single bin labeled t_out").
type Histogram struct {
	// Edges[i] is the left edge of bin i (seconds); bin i covers
	// [Edges[i], Edges[i+1]); the last counted bin is the timeout bin.
	Edges  []float64
	Counts []int
	TOut   int
	Total  int
}

// NewHistogram bins the measures into binsPerDecade log bins spanning
// [lo, timeout).
func NewHistogram(ms []Measure, lo, timeout float64, binsPerDecade int) Histogram {
	if lo <= 0 {
		lo = 1
	}
	if binsPerDecade < 1 {
		binsPerDecade = 1
	}
	h := Histogram{Total: len(ms)}
	for x := lo; x < timeout*1.0000001; x *= math.Pow(10, 1/float64(binsPerDecade)) {
		h.Edges = append(h.Edges, x)
	}
	h.Counts = make([]int, len(h.Edges))
	for _, m := range ms {
		if m.TimedOut {
			h.TOut++
			continue
		}
		i := 0
		for i < len(h.Edges)-1 && m.Seconds >= h.Edges[i+1] {
			i++
		}
		if m.Seconds < h.Edges[0] {
			i = 0
		}
		h.Counts[i]++
	}
	return h
}

// Render draws the histogram with an overlaid cumulative-frequency column,
// the textual analogue of the paper's Figures 1 and 2.
//
// conflint:sink histogram figure
func (h Histogram) Render(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (n=%d, t_out=%d)\n", title, h.Total, h.TOut)
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if h.TOut > maxC {
		maxC = h.TOut
	}
	cum := 0
	for i, c := range h.Counts {
		cum += c
		bar := strings.Repeat("#", c*40/maxC)
		fmt.Fprintf(&sb, "  %8s |%-40s %3d  cum %5.1f%%\n",
			fmtSeconds(h.Edges[i]), bar, c, 100*float64(cum)/math.Max(1, float64(h.Total)))
	}
	cum += h.TOut
	bar := strings.Repeat("#", h.TOut*40/maxC)
	fmt.Fprintf(&sb, "  %8s |%-40s %3d  cum %5.1f%%\n",
		"t_out", bar, h.TOut, 100*float64(cum)/math.Max(1, float64(h.Total)))
	return sb.String()
}

func fmtSeconds(x float64) string {
	switch {
	case x >= 100:
		return fmt.Sprintf("%.0fs", x)
	case x >= 1:
		return fmt.Sprintf("%.1fs", x)
	default:
		return fmt.Sprintf("%.2fs", x)
	}
}

// RatioHistogram bins improvement ratios into decade bins centered on 1
// (the paper's Figure 11: how many queries are 10x, 100x, ... faster in
// one configuration than the other).
type RatioHistogram struct {
	// Decades[i] counts ratios in [10^(i+MinExp), 10^(i+MinExp+1)); the
	// bin containing exponent 0 counts "no improvement" (ratio ≈ 1).
	MinExp  int
	Decades []int
	Total   int
}

// NewRatioHistogram builds the decade histogram over the ratios.
func NewRatioHistogram(ratios []float64) RatioHistogram {
	minE, maxE := 0, 0
	exps := make([]int, 0, len(ratios))
	for _, r := range ratios {
		if r <= 0 {
			continue
		}
		e := int(math.Floor(math.Log10(r) + 0.5)) // nearest decade
		exps = append(exps, e)
		if e < minE {
			minE = e
		}
		if e > maxE {
			maxE = e
		}
	}
	h := RatioHistogram{MinExp: minE, Decades: make([]int, maxE-minE+1), Total: len(exps)}
	for _, e := range exps {
		h.Decades[e-minE]++
	}
	return h
}

// Count returns how many ratios round to decade 10^exp.
func (h RatioHistogram) Count(exp int) int {
	i := exp - h.MinExp
	if i < 0 || i >= len(h.Decades) {
		return 0
	}
	return h.Decades[i]
}

// Render draws the ratio histogram (Figure 11 style). Ratios below one
// mean the first configuration is faster; above one, the second.
//
// conflint:sink ratio histogram figure
func (h RatioHistogram) Render(title string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (n=%d)\n", title, h.Total)
	maxC := 1
	for _, c := range h.Decades {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Decades {
		exp := h.MinExp + i
		label := "1 (none)"
		if exp != 0 {
			label = fmt.Sprintf("10^%d", exp)
		}
		fmt.Fprintf(&sb, "  %8s |%-40s %d\n", label, strings.Repeat("#", c*40/maxC), c)
	}
	return sb.String()
}
