package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func measures(times []float64, timeouts int) []Measure {
	var ms []Measure
	for _, t := range times {
		ms = append(ms, Measure{Seconds: t})
	}
	for i := 0; i < timeouts; i++ {
		ms = append(ms, Measure{Seconds: 1800, TimedOut: true})
	}
	return ms
}

func TestCFCBasics(t *testing.T) {
	c := NewCFC(measures([]float64{1, 10, 100, 1000}, 1), 1800)
	if c.N() != 5 || c.Timeouts() != 1 {
		t.Fatalf("N=%d timeouts=%d", c.N(), c.Timeouts())
	}
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1.5, 0.2}, {10, 0.2}, {10.5, 0.4}, {1e6, 0.8},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCFCMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var times []float64
		for i := 0; i < 50; i++ {
			times = append(times, rng.Float64()*2000)
		}
		c := NewCFC(measures(times, rng.Intn(5)), 1800)
		prev := -1.0
		for x := 0.0; x < 3000; x += 37 {
			v := c.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	c := NewCFC(measures([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 2), 1800)
	if q := c.Quantile(0.5); q != 5 {
		t.Errorf("median = %v, want 5", q)
	}
	if q := c.Quantile(0.9); !math.IsInf(q, 1) {
		t.Errorf("p90 should land in timeouts, got %v", q)
	}
	if q := c.Quantile(0.1); q != 1 {
		t.Errorf("p10 = %v, want 1", q)
	}
}

func TestTotalLowerBound(t *testing.T) {
	c := NewCFC(measures([]float64{10, 20}, 3), 1800)
	if got := c.TotalLowerBound(); got != 10+20+3*1800 {
		t.Errorf("lower bound = %v", got)
	}
}

func TestDominates(t *testing.T) {
	fast := NewCFC(measures([]float64{1, 2, 3, 4}, 0), 1800)
	slow := NewCFC(measures([]float64{10, 20, 30, 40}, 0), 1800)
	if !fast.Dominates(slow) {
		t.Error("fast should dominate slow")
	}
	if slow.Dominates(fast) {
		t.Error("slow must not dominate fast")
	}
	if fast.Dominates(fast) {
		t.Error("a curve must not strictly dominate itself")
	}
	// Crossing curves: neither dominates.
	a := NewCFC(measures([]float64{1, 100}, 0), 1800)
	b := NewCFC(measures([]float64{10, 20}, 0), 1800)
	if a.Dominates(b) || b.Dominates(a) {
		t.Error("crossing curves must not dominate each other")
	}
}

func TestGoalSatisfaction(t *testing.T) {
	goal := Example2Goal()
	// Paper Example 2 + Figure 3 reading: a 1C-like curve passes, a P-like
	// curve fails.
	pass := NewCFC(measures([]float64{
		2, 5, 8, 9, // 40% under 10s
		20, 30, 40, 50, 55, // 90% under 60s
		300, // rest before timeout
	}, 0), 1800)
	if !goal.Satisfied(pass) {
		t.Error("fast curve should satisfy Example 2 goal")
	}
	fail := NewCFC(measures([]float64{50, 100, 200, 400, 800, 900, 1000, 1200, 1500}, 1), 1800)
	if goal.Satisfied(fail) {
		t.Error("slow curve must not satisfy Example 2 goal")
	}
	// Exactly-at-edge semantics: 10% strictly below 10s required just
	// after x=10.
	edge := NewCFC(measures([]float64{10, 10, 10, 10, 10, 20, 20, 20, 20, 20}, 0), 1800)
	g := Goal{Steps: []GoalStep{{X: 10, Frac: 0.5}}}
	if !g.Satisfied(edge) {
		t.Error("values equal to the step edge count for x just above it")
	}

	// The graded level counts satisfied steps: the slow curve above meets
	// only the timeout step (90% before 1800s), so 1 of 3.
	if got := goal.Satisfaction(pass); got != 1 {
		t.Errorf("Satisfaction(pass) = %v, want 1", got)
	}
	if got := goal.Satisfaction(fail); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("Satisfaction(fail) = %v, want 1/3", got)
	}
	if got := (Goal{}).Satisfaction(pass); got != 1 {
		t.Errorf("empty goal Satisfaction = %v, want 1 (vacuous)", got)
	}
}

func TestImprovementRatio(t *testing.T) {
	ci := []Measure{{Seconds: 100}, {Seconds: 10}, {Seconds: 50, TimedOut: true}, {Seconds: 8}}
	cj := []Measure{{Seconds: 10}, {Seconds: 10}, {Seconds: 5}, {Seconds: 2, TimedOut: true}}
	rs := ImprovementRatio(ci, cj)
	if len(rs) != 2 {
		t.Fatalf("ratios = %v, want 2 entries (timeout pairs skipped)", rs)
	}
	if rs[0] != 10 || rs[1] != 1 {
		t.Errorf("ratios = %v", rs)
	}
}

func TestRatioHistogram(t *testing.T) {
	rs := []float64{1, 1, 1, 10, 12, 100, 95, 0.1}
	h := NewRatioHistogram(rs)
	if h.Count(0) != 3 {
		t.Errorf("decade 1: %d, want 3", h.Count(0))
	}
	if h.Count(1) != 2 {
		t.Errorf("decade 10: %d, want 2", h.Count(1))
	}
	if h.Count(2) != 2 {
		t.Errorf("decade 100: %d, want 2", h.Count(2))
	}
	if h.Count(-1) != 1 {
		t.Errorf("decade 0.1: %d, want 1", h.Count(-1))
	}
	out := h.Render("ratios")
	if !strings.Contains(out, "10^1") || !strings.Contains(out, "1 (none)") {
		t.Errorf("render missing labels:\n%s", out)
	}
}

func TestHistogramBinning(t *testing.T) {
	ms := measures([]float64{0.5, 1.5, 15, 150, 1500}, 2)
	h := NewHistogram(ms, 1, 1800, 1)
	if h.TOut != 2 {
		t.Errorf("t_out = %d", h.TOut)
	}
	var binned int
	for _, c := range h.Counts {
		binned += c
	}
	if binned != 5 {
		t.Errorf("binned %d of 5 completed queries", binned)
	}
	out := h.Render("hist")
	if !strings.Contains(out, "t_out") {
		t.Error("render missing timeout bin")
	}
	// Cumulative line must end at 100%.
	if !strings.Contains(out, "100.0%") {
		t.Errorf("cumulative should reach 100%%:\n%s", out)
	}
}

func TestRenderCurves(t *testing.T) {
	a := NewCFC(measures([]float64{1, 5, 20, 100}, 0), 1800)
	b := NewCFC(measures([]float64{100, 500, 1000}, 1), 1800)
	out := RenderCurves("Figure X", []string{"1C", "P"}, []CFC{a, b}, 1, 1800)
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "1C") {
		t.Error("render missing labels")
	}
	if len(strings.Split(out, "\n")) < 16 {
		t.Error("render too short")
	}
	sum := SummaryTable([]string{"1C", "P"}, []CFC{a, b})
	if !strings.Contains(sum, "median") {
		t.Error("summary missing header")
	}
}

func TestEmptyWorkload(t *testing.T) {
	c := NewCFC(nil, 1800)
	if c.At(100) != 0 || !math.IsInf(c.Quantile(0.5), 1) || c.Mean() != 0 {
		t.Error("empty CFC should be all-zero")
	}
	h := NewHistogram(nil, 1, 1800, 2)
	if h.Total != 0 {
		t.Error("empty histogram")
	}
	if rs := ImprovementRatio(nil, nil); len(rs) != 0 {
		t.Error("empty ratios")
	}
}
