// Package core implements the paper's evaluation framework (§2): the cost
// measures A/E/H over workloads, cumulative frequency curves (CFC) of
// per-query elapsed times, log-binned histograms with a timeout bin,
// quality-of-service performance goals expressed as step functions, and
// the improvement ratios AIR/EIR/HIR of §5.2 — plus text rendering for
// every figure style the paper uses.
package core

import (
	"math"
	"sort"
)

// Measure is one per-query cost observation (actual, estimated or
// hypothetical).
type Measure struct {
	SQL      string
	Seconds  float64
	TimedOut bool
}

// CFC is the cumulative (relative) frequency of per-query elapsed times on
// one configuration: CFC(x) = |{q : A(q,C) < x}| / |W|  (paper §2.2).
// Timed-out queries never contribute below the timeout limit.
type CFC struct {
	sorted  []float64 // completed-query times, ascending
	total   int
	timeout float64 // 0 when no timeout was in force
	nTimout int
}

// NewCFC builds the curve from a workload's measures.
func NewCFC(ms []Measure, timeout float64) CFC {
	c := CFC{timeout: timeout, total: len(ms)}
	for _, m := range ms {
		if m.TimedOut {
			c.nTimout++
			continue
		}
		c.sorted = append(c.sorted, m.Seconds)
	}
	sort.Float64s(c.sorted)
	return c
}

// N returns the number of queries underlying the curve.
func (c CFC) N() int { return c.total }

// Timeouts returns the number of timed-out queries.
func (c CFC) Timeouts() int { return c.nTimout }

// At returns CFC(x): the fraction of queries completing in less than x
// seconds.
func (c CFC) At(x float64) float64 {
	if c.total == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	return float64(i) / float64(c.total)
}

// Quantile returns the smallest x with CFC(x) >= p, or +Inf when the
// p-quantile falls among timed-out queries. "Naive folks will use the
// average response time; more sophisticated specifiers will opt for the
// 90th or 95th percentile" (§2.2, quoting Sawyer).
func (c CFC) Quantile(p float64) float64 {
	if c.total == 0 {
		return math.Inf(1)
	}
	k := int(math.Ceil(p * float64(c.total)))
	if k <= 0 {
		k = 1
	}
	if k > len(c.sorted) {
		return math.Inf(1)
	}
	return c.sorted[k-1]
}

// Mean returns the mean completed-query time, counting timeouts at the
// timeout limit (a lower bound, as in the paper's §4.3 totals).
func (c CFC) Mean() float64 {
	if c.total == 0 {
		return 0
	}
	return c.TotalLowerBound() / float64(c.total)
}

// TotalLowerBound is the §4.3 workload total: completed times summed, with
// each timed-out query counted at the timeout limit.
func (c CFC) TotalLowerBound() float64 {
	var s float64
	for _, t := range c.sorted {
		s += t
	}
	s += float64(c.nTimout) * c.timeout
	return s
}

// Dominates reports first-order stochastic dominance: this curve is
// everywhere at or above other, and strictly above somewhere. The paper
// (§2.2) reads configuration comparison as exactly this relation.
func (c CFC) Dominates(other CFC) bool {
	xs := append(append([]float64(nil), c.sorted...), other.sorted...)
	xs = append(xs, math.Max(c.timeout, other.timeout))
	strict := false
	for _, x := range xs {
		a, b := c.At(x), other.At(x)
		// Evaluate just above x too, since At is left-continuous.
		a2, b2 := c.At(nextAfter(x)), other.At(nextAfter(x))
		if a < b || a2 < b2 {
			return false
		}
		if a > b || a2 > b2 {
			strict = true
		}
	}
	return strict
}

func nextAfter(x float64) float64 { return math.Nextafter(x, math.Inf(1)) }

// Goal is a performance goal: a monotone step function G; a configuration
// satisfies the goal iff its CFC is pointwise above G (paper Example 2).
type Goal struct {
	Name  string
	Steps []GoalStep
}

// GoalStep declares G(x) = Frac for x in [X, nextX).
type GoalStep struct {
	X    float64 // seconds
	Frac float64 // required cumulative fraction in (0,1]
}

// Satisfied reports whether CFC > G pointwise. Since G is a right-open
// step function and the CFC is nondecreasing, it suffices to check each
// step's left edge... more precisely: for the step starting at X with
// value Frac, the constraint binds hardest just after X, where the CFC is
// smallest on the step; we therefore check CFC(X+) >= Frac... but the CFC
// may jump inside the step, so the binding point is X itself (approached
// from the right).
//
// conflint:pure — goal checking is an observation; tuners call it from
// read paths and must be able to do so without locking or mutation.
func (g Goal) Satisfied(c CFC) bool {
	for _, st := range g.Steps {
		if c.At(nextAfter(st.X)) < st.Frac {
			return false
		}
	}
	return true
}

// Satisfaction grades the verdict: the fraction of goal steps the curve
// meets, in [0, 1]. Satisfied(c) ⇔ Satisfaction(c) == 1. An online tuner
// tracks this level per window: it degrades stepwise as a configuration
// ages and recovers after a successful retune.
//
// conflint:pure — same contract as Satisfied: grading a curve against a
// goal is effect-free by definition.
func (g Goal) Satisfaction(c CFC) float64 {
	if len(g.Steps) == 0 {
		return 1
	}
	met := 0
	for _, st := range g.Steps {
		if c.At(nextAfter(st.X)) >= st.Frac {
			met++
		}
	}
	return float64(met) / float64(len(g.Steps))
}

// Example2Goal is the paper's Example 2: 10% of queries under 10 seconds,
// 50% under one minute, 90% before the 30-minute timeout.
func Example2Goal() Goal {
	return Goal{
		Name: "Example2",
		Steps: []GoalStep{
			{X: 10, Frac: 0.10},
			{X: 60, Frac: 0.50},
			{X: 1800, Frac: 0.90},
		},
	}
}

// ImprovementRatio is the paper's §5.2 per-query ratio between two
// configurations: IR(q) = cost(q, Ci) / cost(q, Cj). Ratios > 1 favor Cj.
// Pairs where either side timed out are skipped, as in the paper
// ("for simplicity, actual improvements involving timeout queries are not
// considered").
func ImprovementRatio(ci, cj []Measure) []float64 {
	n := len(ci)
	if len(cj) < n {
		n = len(cj)
	}
	var out []float64
	for i := 0; i < n; i++ {
		if ci[i].TimedOut || cj[i].TimedOut {
			continue
		}
		if cj[i].Seconds <= 0 {
			continue
		}
		out = append(out, ci[i].Seconds/cj[i].Seconds)
	}
	return out
}
