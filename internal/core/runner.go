package core

import (
	"fmt"

	"repro/internal/conf"
	"repro/internal/engine"
)

// DefaultTimeout is the paper's per-query timeout: 30 minutes.
const DefaultTimeout = 1800.0

// RunWorkload executes every query under the engine's current
// configuration with the timeout, returning the A(q, C) measures in
// workload order.
func RunWorkload(e *engine.Engine, queries []string, timeout float64) ([]Measure, error) {
	out := make([]Measure, 0, len(queries))
	for _, q := range queries {
		_, m, err := e.Run(q, timeout)
		if err != nil {
			return nil, fmt.Errorf("core: running %q: %w", q, err)
		}
		out = append(out, Measure{SQL: q, Seconds: m.Seconds, TimedOut: m.TimedOut})
	}
	return out, nil
}

// EstimateWorkload returns the optimizer estimates E(q, C) under the
// current configuration.
func EstimateWorkload(e *engine.Engine, queries []string) ([]Measure, error) {
	out := make([]Measure, 0, len(queries))
	for _, q := range queries {
		m, err := e.Estimate(q)
		if err != nil {
			return nil, fmt.Errorf("core: estimating %q: %w", q, err)
		}
		out = append(out, Measure{SQL: q, Seconds: m.Seconds})
	}
	return out, nil
}

// WhatIfWorkload returns the hypothetical estimates H(q, Ch, Ca) for the
// configuration Ch evaluated from the engine's current configuration.
func WhatIfWorkload(e *engine.Engine, queries []string, hypo conf.Configuration) ([]Measure, error) {
	w := e.NewWhatIf()
	out := make([]Measure, 0, len(queries))
	for _, qs := range queries {
		q, err := e.AnalyzeSQL(qs)
		if err != nil {
			return nil, fmt.Errorf("core: analyzing %q: %w", qs, err)
		}
		m, err := w.Estimate(q, hypo)
		if err != nil {
			return nil, fmt.Errorf("core: what-if %q: %w", qs, err)
		}
		out = append(out, Measure{SQL: qs, Seconds: m.Seconds})
	}
	return out, nil
}
