package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/conf"
	"repro/internal/engine"
)

// DefaultTimeout is the paper's per-query timeout: 30 minutes.
const DefaultTimeout = 1800.0

// Runner executes workloads with a bounded worker pool. Results are
// deterministic and order-stable: measure i always belongs to query i,
// and because the simulated clock is per-query, the measured times are
// bit-for-bit identical no matter how many workers run — parallelism
// changes wall-clock time, never the reported numbers.
//
// The zero value runs with GOMAXPROCS workers; Parallelism of 1 runs
// inline on the calling goroutine (the exact sequential code path).
type Runner struct {
	// Parallelism is the maximum number of queries in flight at once.
	// 0 or negative means runtime.GOMAXPROCS(0).
	Parallelism int

	// OnMeasure, when non-nil, is called by RunWorkload for every
	// completed query from the worker that ran it, as it completes —
	// the hook live dashboards and daemons count traffic with. It must
	// be safe for concurrent use and must not block; it has no effect
	// on the returned measures. Estimate and what-if passes do not
	// report.
	OnMeasure func(Measure)
}

// workers resolves the effective pool size.
func (r Runner) workers() int {
	if r.Parallelism > 0 {
		return r.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Each runs fn(i) for i in [0, n) on the pool. Every index is processed
// exactly once; on error the lowest-index error is returned, so the
// reported failure is the one the sequential path would hit first. This
// is the primitive the recommender's candidate-evaluation loops fan out
// through: callers write results into index i of a pre-sized slice and
// reduce sequentially afterwards, which keeps the outcome byte-identical
// at any parallelism.
func (r Runner) Each(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	w := r.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	jobs := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i // conflint:ignore bounded pool send: w workers drain jobs until close, so Each always returns
	}
	close(jobs)
	wg.Wait() // conflint:ignore bounded join: each worker exits when jobs closes, which the line above guarantees
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunWorkload executes every query under the engine's current
// configuration with the timeout, returning the A(q, C) measures in
// workload order.
//
// conflint:hotpath — one call per query per window; everything reachable
// from here is the measure path.
func (r Runner) RunWorkload(e *engine.Engine, queries []string, timeout float64) ([]Measure, error) {
	out := make([]Measure, len(queries))
	err := r.Each(len(queries), func(i int) error {
		_, m, err := e.Run(queries[i], timeout)
		if err != nil {
			return fmt.Errorf("core: running %q: %w", queries[i], err)
		}
		out[i] = Measure{SQL: queries[i], Seconds: m.Seconds, TimedOut: m.TimedOut}
		if r.OnMeasure != nil {
			r.OnMeasure(out[i])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EstimateWorkload returns the optimizer estimates E(q, C) under the
// current configuration.
//
// conflint:hotpath — runs once per query per window alongside the
// measured pass.
func (r Runner) EstimateWorkload(e *engine.Engine, queries []string) ([]Measure, error) {
	out := make([]Measure, len(queries))
	err := r.Each(len(queries), func(i int) error {
		m, err := e.Estimate(queries[i])
		if err != nil {
			return fmt.Errorf("core: estimating %q: %w", queries[i], err)
		}
		out[i] = Measure{SQL: queries[i], Seconds: m.Seconds}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WhatIfWorkload returns the hypothetical estimates H(q, Ch, Ca) for the
// configuration Ch evaluated from the engine's current configuration.
// One what-if session is shared by all workers, so the per-structure
// statistics derivation is paid once; the session's caches are
// internally synchronized.
//
// conflint:hotpath — the controller predicts over every window's
// queries through this path.
func (r Runner) WhatIfWorkload(e *engine.Engine, queries []string, hypo conf.Configuration) ([]Measure, error) {
	return r.WhatIfSessionWorkload(e.NewWhatIf(), queries, hypo)
}

// WhatIfSessionWorkload is WhatIfWorkload against a caller-owned session:
// the controller keeps one session alive across retunes so the estimate
// cache filled by the recommender search is still warm when the
// controller predicts the winning configuration's cost. The session's
// engine must be the one the queries are analyzed against.
//
// conflint:hotpath — shares the prediction path with WhatIfWorkload.
func (r Runner) WhatIfSessionWorkload(w *engine.WhatIf, queries []string, hypo conf.Configuration) ([]Measure, error) {
	e := w.Engine()
	out := make([]Measure, len(queries))
	err := r.Each(len(queries), func(i int) error {
		q, err := e.AnalyzeSQL(queries[i])
		if err != nil {
			return fmt.Errorf("core: analyzing %q: %w", queries[i], err)
		}
		m, err := w.Estimate(q, hypo)
		if err != nil {
			return fmt.Errorf("core: what-if %q: %w", queries[i], err)
		}
		out[i] = Measure{SQL: queries[i], Seconds: m.Seconds}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunWorkload executes the workload sequentially (Runner with one worker).
func RunWorkload(e *engine.Engine, queries []string, timeout float64) ([]Measure, error) {
	return Runner{Parallelism: 1}.RunWorkload(e, queries, timeout)
}

// EstimateWorkload estimates the workload sequentially.
func EstimateWorkload(e *engine.Engine, queries []string) ([]Measure, error) {
	return Runner{Parallelism: 1}.EstimateWorkload(e, queries)
}

// WhatIfWorkload estimates the hypothetical workload sequentially.
func WhatIfWorkload(e *engine.Engine, queries []string, hypo conf.Configuration) ([]Measure, error) {
	return Runner{Parallelism: 1}.WhatIfWorkload(e, queries, hypo)
}
