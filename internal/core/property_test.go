package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomMeasures draws a workload of n measures with log-uniform times
// and a timeout probability, mimicking the heavy-tailed family runs.
func randomMeasures(rng *rand.Rand, n int, timeout float64) []Measure {
	ms := make([]Measure, n)
	for i := range ms {
		if rng.Float64() < 0.1 {
			ms[i] = Measure{SQL: "q", Seconds: timeout, TimedOut: true}
			continue
		}
		// 10^[-2, 3): 10ms .. 1000s, under the 1800s timeout.
		ms[i] = Measure{SQL: "q", Seconds: pow10(rng.Float64()*5 - 2)}
	}
	return ms
}

func pow10(x float64) float64 {
	v := 1.0
	for ; x >= 1; x-- {
		v *= 10
	}
	for ; x < 0; x++ {
		v /= 10
	}
	// x in [0,1): linear interpolation is fine for test data.
	return v * (1 + 9*x/10)
}

// TestCFCDominanceTransitive checks the §2.2 comparison relation is a
// strict partial order on random curves: transitive and irreflexive.
func TestCFCDominanceTransitive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const timeout = 1800.0
	curves := make([]CFC, 30)
	for i := range curves {
		curves[i] = NewCFC(randomMeasures(rng, 50, timeout), timeout)
	}
	for i, a := range curves {
		if a.Dominates(a) {
			t.Fatalf("curve %d dominates itself", i)
		}
		for j, b := range curves {
			if !a.Dominates(b) {
				continue
			}
			if b.Dominates(a) {
				t.Fatalf("curves %d and %d dominate each other", i, j)
			}
			for k, c := range curves {
				if b.Dominates(c) && !a.Dominates(c) {
					t.Fatalf("dominance not transitive: %d>%d, %d>%d, but not %d>%d", i, j, j, k, i, k)
				}
			}
		}
	}
}

// TestCFCPermutationInvariant checks the curve is a pure function of the
// multiset of measures: any permutation yields an identical CFC and
// identical dominance relations — the property that lets the parallel
// runner's order-stable output stand in for the sequential one.
func TestCFCPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const timeout = 1800.0
	base := randomMeasures(rng, 64, timeout)
	ref := NewCFC(base, timeout)
	other := NewCFC(randomMeasures(rng, 64, timeout), timeout)
	for trial := 0; trial < 20; trial++ {
		perm := append([]Measure(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		c := NewCFC(perm, timeout)
		if !reflect.DeepEqual(ref, c) {
			t.Fatalf("trial %d: permuted CFC differs", trial)
		}
		if ref.Dominates(other) != c.Dominates(other) || other.Dominates(ref) != other.Dominates(c) {
			t.Fatalf("trial %d: dominance changed under permutation", trial)
		}
	}
}

// TestHistogramConservesCount checks log-binning loses no queries: every
// measure lands in exactly one bin or the timeout bin (Figure 1's
// presentation).
func TestHistogramConservesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const timeout = 1800.0
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		ms := randomMeasures(rng, n, timeout)
		for _, bpd := range []int{1, 2, 4} {
			h := NewHistogram(ms, 1, timeout, bpd)
			sum := h.TOut
			for _, c := range h.Counts {
				sum += c
			}
			if sum != h.Total || h.Total != n {
				t.Fatalf("trial %d bpd %d: binned %d of %d measures", trial, bpd, sum, n)
			}
		}
	}
}

// TestRatioHistogramConservesCount checks the AIR/EIR/HIR decade binning
// (Figure 11): every usable ratio lands in exactly one decade, and the
// skipped pairs are exactly the timeout-tainted ones.
func TestRatioHistogramConservesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const timeout = 1800.0
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(150)
		ci := randomMeasures(rng, n, timeout)
		cj := randomMeasures(rng, n, timeout)
		ratios := ImprovementRatio(ci, cj)
		skipped := 0
		for i := 0; i < n; i++ {
			if ci[i].TimedOut || cj[i].TimedOut {
				skipped++
			}
		}
		if len(ratios)+skipped != n {
			t.Fatalf("trial %d: %d ratios + %d skipped != %d pairs", trial, len(ratios), skipped, n)
		}
		h := NewRatioHistogram(ratios)
		sum := 0
		for _, c := range h.Decades {
			sum += c
		}
		if sum != h.Total || h.Total != len(ratios) {
			t.Fatalf("trial %d: decades sum %d, total %d, ratios %d", trial, sum, h.Total, len(ratios))
		}
	}
}
