package workload

import (
	"fmt"
	"math/rand"
)

// Mixture is a weighted blend of query families, the unit of streaming
// workload generation: an unbounded query stream is a sequence of draws
// from a (possibly time-varying) mixture. Weights need not sum to one;
// they are normalized at draw time.
type Mixture struct {
	Families []Family
	Weights  []float64
}

// NewMixture pairs families with weights, validating shape.
func NewMixture(families []Family, weights []float64) (Mixture, error) {
	if len(families) == 0 {
		return Mixture{}, fmt.Errorf("workload: mixture needs at least one family")
	}
	if len(families) != len(weights) {
		return Mixture{}, fmt.Errorf("workload: %d families but %d weights", len(families), len(weights))
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return Mixture{}, fmt.Errorf("workload: negative weight %v for family %s", w, families[i].Name)
		}
		total += w
	}
	if total <= 0 {
		return Mixture{}, fmt.Errorf("workload: mixture weights sum to zero")
	}
	for _, f := range families {
		if len(f.Queries) == 0 {
			return Mixture{}, fmt.Errorf("workload: family %s is empty", f.Name)
		}
	}
	return Mixture{Families: families, Weights: weights}, nil
}

// Draw picks one query: a family proportional to the weights, then a
// uniform member of that family. Deterministic given the rng state.
func (m Mixture) Draw(rng *rand.Rand) Query {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	x := rng.Float64() * total
	k := len(m.Families) - 1
	for i, w := range m.Weights {
		if x < w {
			k = i
			break
		}
		x -= w
	}
	f := m.Families[k]
	return f.Queries[rng.Intn(len(f.Queries))]
}

// Proportions returns the normalized weight of each family, in order.
func (m Mixture) Proportions() []float64 {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	out := make([]float64, len(m.Weights))
	if total <= 0 {
		return out
	}
	for i, w := range m.Weights {
		out[i] = w / total
	}
	return out
}
