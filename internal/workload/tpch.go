package workload

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
)

// fkJoin is a PK/FK correspondence between two tables.
type fkJoin struct {
	FKTable string
	PKTable string
	Preds   []string // rendered "r.x = s.y" fragments with r = FK side
}

// fkJoins enumerates the schema's foreign-key relationships.
func fkJoins(schema *catalog.Schema) []fkJoin {
	var out []fkJoin
	for _, t := range schema.Tables() {
		for _, fk := range t.ForeignKeys {
			j := fkJoin{FKTable: t.Name, PKTable: fk.RefTable}
			for i := range fk.Columns {
				j.Preds = append(j.Preds, fmt.Sprintf("r.%s = s.%s", fk.Columns[i], fk.RefColumns[i]))
			}
			out = append(out, j)
		}
	}
	return out
}

// nonKeyCols returns the usable columns of a table that participate in no
// primary or foreign key (the templates join S and T on "non-key columns
// from the same domain").
func (g *generator) nonKeyCols(t *catalog.Table) map[string]bool {
	keyed := make(map[string]bool)
	for _, c := range t.PrimaryKey {
		keyed[strings.ToLower(c)] = true
	}
	for _, fk := range t.ForeignKeys {
		for _, c := range fk.Columns {
			keyed[strings.ToLower(c)] = true
		}
	}
	out := make(map[string]bool)
	for _, c := range g.usableCols(t) {
		if !keyed[strings.ToLower(c)] {
			out[strings.ToLower(c)] = true
		}
	}
	return out
}

// TH3JOptions selects the SkTH3J/SkTH3Js variants.
type TH3JOptions struct {
	Options
	// Simple restricts R, S, T to Lineitem, Orders and Partsupp and uses
	// only equality θ predicates (family SkTH3Js).
	Simple bool
	Name   string
}

// TH3J generates the three-way-join TPC-H families (paper §3.2.2):
//
//	SELECT t.ci1,...,t.ci4, COUNT(*)
//	FROM R r, S s, T t
//	WHERE r.cp1 = s.cf1 AND ... AND s.c1 = t.c2 AND θ(s.c3)
//	GROUP BY t.ci1,...,t.ci4
//
// R⋈S is a PK/FK join; S⋈T joins non-key columns in the same domain;
// θ(s.c3) is s.c3 = p, or s.c3 IN (SELECT c3 FROM S GROUP BY c3 HAVING
// COUNT(*) = p) in the general family. The three constants per binding
// produce intermediate results whose sizes differ by roughly an order of
// magnitude each (the k1/k2/k3 rule).
func TH3J(schema *catalog.Schema, src Source, opts TH3JOptions) Family {
	if opts.MaxGroupByCols == 0 {
		opts.Options = DefaultOptions()
	}
	opts.MaxGroupByCols = 4
	g := newGenerator(schema, src, opts.Options)
	fam := Family{Name: opts.Name}
	fam.UnrestrictedSize = unrestrictedTH3JSize(schema, opts.Simple)

	simpleSet := map[string]bool{"lineitem": true, "orders": true, "partsupp": true}

	// Each PK/FK relationship is used in both orientations: S (the middle
	// table, carrying θ and the join to T) may be either side.
	type rsPair struct {
		rName string
		s     *catalog.Table
		preds []string
	}
	var rsPairs []rsPair
	for _, fj := range fkJoins(schema) {
		if opts.Simple && (!simpleSet[strings.ToLower(fj.FKTable)] || !simpleSet[strings.ToLower(fj.PKTable)]) {
			continue
		}
		rsPairs = append(rsPairs,
			rsPair{rName: fj.FKTable, s: schema.Table(fj.PKTable), preds: fj.Preds},
			rsPair{rName: fj.PKTable, s: schema.Table(fj.FKTable), preds: flipPreds(fj.Preds)})
	}

	for _, rs := range rsPairs {
		st := rs.s
		rtName := rs.rName
		// S ⋈ T on same-domain non-key columns.
		sNonKey := g.nonKeyCols(st)
		for _, pr := range g.domainPairs() {
			if !strings.EqualFold(pr.A.Table, st.Name) {
				continue
			}
			if strings.EqualFold(pr.B.Table, rtName) || strings.EqualFold(pr.B.Table, st.Name) {
				continue
			}
			if opts.Simple && !simpleSet[strings.ToLower(pr.B.Table)] {
				continue
			}
			if !sNonKey[strings.ToLower(pr.A.Column)] {
				continue
			}
			tt := schema.Table(pr.B.Table)
			tNonKey := g.nonKeyCols(tt)
			if !tNonKey[strings.ToLower(pr.B.Column)] {
				continue
			}

			// θ selection columns of S with usable constant triples.
			var selCols []string
			for _, c3 := range g.usableCols(st) {
				if strings.EqualFold(c3, pr.A.Column) {
					continue
				}
				if g.constants(st.Name, st.ColumnIndex(c3)).ok {
					selCols = append(selCols, c3)
				}
				if len(selCols) == 2 {
					break
				}
			}
			for _, c3 := range selCols {
				tri := g.constants(st.Name, st.ColumnIndex(c3))
				for ki := 0; ki < 3; ki++ {
					if dupConstant(tri, ki) {
						continue
					}
					theta := fmt.Sprintf("s.%s = %s", c3, tri.vals[ki].String())
					if !opts.Simple && ki == 2 {
						// The general family mixes in the frequency-based
						// IN form for the heaviest constant.
						theta = fmt.Sprintf(
							"s.%s IN (SELECT %s FROM %s GROUP BY %s HAVING COUNT(*) = %d)",
							c3, c3, st.Name, c3, tri.freqs[0])
					}
					for _, gb := range g.groupByChoices(tt, pr.B.Column) {
						var sel, grp []string
						for _, c := range gb {
							sel = append(sel, "t."+c)
							grp = append(grp, "t."+c)
						}
						if len(grp) == 0 {
							sel = append(sel, "t."+pr.B.Column)
							grp = append(grp, "t."+pr.B.Column)
						}
						q := fmt.Sprintf(
							"SELECT %s, COUNT(*) FROM %s r, %s s, %s t WHERE %s AND s.%s = t.%s AND %s GROUP BY %s",
							strings.Join(sel, ", "),
							rtName, st.Name, tt.Name,
							strings.Join(rs.preds, " AND "),
							pr.A.Column, pr.B.Column, theta,
							strings.Join(grp, ", "))
						fam.Queries = append(fam.Queries, Query{SQL: q, Family: fam.Name})
					}
				}
			}
		}
	}
	return dedup(fam)
}

// flipPreds rewrites "r.x = s.y" fragments as "r.y = s.x" for the
// reversed R/S orientation.
func flipPreds(preds []string) []string {
	out := make([]string, len(preds))
	for i, p := range preds {
		parts := strings.SplitN(p, " = ", 2)
		l := strings.TrimPrefix(parts[0], "r.")
		r := strings.TrimPrefix(parts[1], "s.")
		out[i] = "r." + r + " = s." + l
	}
	return out
}

// SkTH3J builds the general skewed-TPC-H family.
func SkTH3J(schema *catalog.Schema, src Source, opts Options) Family {
	return TH3J(schema, src, TH3JOptions{Options: opts, Name: "SkTH3J"})
}

// SkTH3Js builds the simpler Lineitem/Orders/Partsupp family.
func SkTH3Js(schema *catalog.Schema, src Source, opts Options) Family {
	return TH3J(schema, src, TH3JOptions{Options: opts, Simple: true, Name: "SkTH3Js"})
}

// UnTH3J builds the SkTH3J templates against a uniform database (the
// constants differ because the frequency analysis sees uniform data).
func UnTH3J(schema *catalog.Schema, src Source, opts Options) Family {
	opts.RelaxedConstants = true
	return TH3J(schema, src, TH3JOptions{Options: opts, Name: "UnTH3J"})
}

// unrestrictedTH3JSize counts the combinatorial space before restrictions.
func unrestrictedTH3JSize(schema *catalog.Schema, simple bool) int64 {
	simpleSet := map[string]bool{"lineitem": true, "orders": true, "partsupp": true}
	var total int64
	domains := schema.DomainColumns()
	for _, fj := range fkJoins(schema) {
		if simple && (!simpleSet[strings.ToLower(fj.FKTable)] || !simpleSet[strings.ToLower(fj.PKTable)]) {
			continue
		}
		st := schema.Table(fj.PKTable)
		for _, cols := range domains {
			for _, a := range cols {
				if !strings.EqualFold(a.Table, st.Name) {
					continue
				}
				for _, b := range cols {
					if strings.EqualFold(b.Table, fj.FKTable) || strings.EqualFold(b.Table, st.Name) {
						continue
					}
					if simple && !simpleSet[strings.ToLower(b.Table)] {
						continue
					}
					tt := schema.Table(b.Table)
					nSel := len(st.IndexableColumns()) - 1
					if nSel < 0 {
						nSel = 0
					}
					total += int64(nSel) * 3 * subsetsUpTo(len(tt.IndexableColumns())-1, 4)
				}
			}
		}
	}
	return total
}
