package workload

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datagen"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/val"
)

// memSource is a lightweight Source backed by generated heaps.
type memSource struct {
	schema *catalog.Schema
	heaps  map[string]*storage.Heap
}

func newMemSource(schema *catalog.Schema) *memSource {
	s := &memSource{schema: schema, heaps: make(map[string]*storage.Heap)}
	for _, t := range schema.Tables() {
		s.heaps[strings.ToLower(t.Name)] = storage.NewHeap(t)
	}
	return s
}

func (s *memSource) Heap(table string) *storage.Heap { return s.heaps[strings.ToLower(table)] }

func (s *memSource) Load(table string, rows []val.Row) error {
	h := s.Heap(table)
	for _, r := range rows {
		if _, err := h.Insert(nil, r); err != nil {
			return err
		}
	}
	return nil
}

func nrefSource(t *testing.T) (*catalog.Schema, *memSource) {
	t.Helper()
	schema := catalog.NREF()
	src := newMemSource(schema)
	if err := datagen.GenerateNREF(src, datagen.NREFOptions{ScaleFactor: 0.0001, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	return schema, src
}

func tpchSource(t *testing.T, skew bool) (*catalog.Schema, *memSource) {
	t.Helper()
	schema := catalog.TPCH()
	src := newMemSource(schema)
	if err := datagen.GenerateTPCH(src, datagen.TPCHOptions{ScaleFactor: 0.0001, Seed: 7, Skew: skew, ZipfS: 1}); err != nil {
		t.Fatal(err)
	}
	return schema, src
}

// checkFamily validates that every generated query parses, analyzes, and
// has the expected structural shape.
func checkFamily(t *testing.T, schema *catalog.Schema, fam Family, minSize int, wantTables int) {
	t.Helper()
	if len(fam.Queries) < minSize {
		t.Fatalf("%s has only %d queries, want >= %d", fam.Name, len(fam.Queries), minSize)
	}
	if fam.UnrestrictedSize <= int64(len(fam.Queries)) {
		t.Errorf("%s unrestricted size %d should exceed restricted %d",
			fam.Name, fam.UnrestrictedSize, len(fam.Queries))
	}
	seen := make(map[string]bool)
	for _, q := range fam.Queries {
		if seen[q.SQL] {
			t.Errorf("%s: duplicate query %s", fam.Name, q.SQL)
		}
		seen[q.SQL] = true
		stmt, err := sql.ParseSelect(q.SQL)
		if err != nil {
			t.Fatalf("%s: %v\nquery: %s", fam.Name, err, q.SQL)
		}
		aq, err := sql.Analyze(schema, stmt)
		if err != nil {
			t.Fatalf("%s: %v\nquery: %s", fam.Name, err, q.SQL)
		}
		if len(aq.Tables) != wantTables {
			t.Errorf("%s: query has %d tables, want %d: %s", fam.Name, len(aq.Tables), wantTables, q.SQL)
		}
		if len(aq.GroupBy) == 0 || len(aq.Aggs) == 0 {
			t.Errorf("%s: query must group and aggregate: %s", fam.Name, q.SQL)
		}
	}
}

func TestNREF2J(t *testing.T) {
	schema, src := nrefSource(t)
	fam := NREF2J(schema, src, DefaultOptions())
	checkFamily(t, schema, fam, 100, 2)
	// Every query carries the two HAVING COUNT(*) < 4 restrictions.
	for _, q := range fam.Queries[:5] {
		if strings.Count(q.SQL, "HAVING COUNT(*) < 4") != 2 {
			t.Errorf("NREF2J query missing IN restrictions: %s", q.SQL)
		}
	}
}

func TestNREF3J(t *testing.T) {
	schema, src := nrefSource(t)
	fam := NREF3J(schema, src, DefaultOptions())
	checkFamily(t, schema, fam, 100, 3)
	for _, q := range fam.Queries[:5] {
		if !strings.Contains(q.SQL, "COUNT(DISTINCT") {
			t.Errorf("NREF3J query missing COUNT(DISTINCT): %s", q.SQL)
		}
	}
}

func TestSkTH3J(t *testing.T) {
	schema, src := tpchSource(t, true)
	fam := SkTH3J(schema, src, DefaultOptions())
	checkFamily(t, schema, fam, 60, 3)
}

func TestSkTH3Js(t *testing.T) {
	schema, src := tpchSource(t, true)
	fam := SkTH3Js(schema, src, DefaultOptions())
	checkFamily(t, schema, fam, 12, 3)
	set := map[string]bool{"lineitem": true, "orders": true, "partsupp": true}
	for _, q := range fam.Queries {
		stmt, _ := sql.ParseSelect(q.SQL)
		for _, tr := range stmt.From {
			if !set[strings.ToLower(tr.Table)] {
				t.Errorf("SkTH3Js uses table %s outside the restricted set: %s", tr.Table, q.SQL)
			}
		}
		if strings.Contains(q.SQL, "HAVING") {
			t.Errorf("SkTH3Js must use only equality θ predicates: %s", q.SQL)
		}
	}
}

func TestUnTH3J(t *testing.T) {
	schema, src := tpchSource(t, false)
	fam := UnTH3J(schema, src, DefaultOptions())
	checkFamily(t, schema, fam, 60, 3)
}

func TestConstantsRule(t *testing.T) {
	schema, src := nrefSource(t)
	g := newGenerator(schema, src, DefaultOptions())
	tab := schema.Table("taxonomy")
	tri := g.constants("taxonomy", tab.ColumnIndex("taxon_id"))
	if !tri.ok {
		t.Fatal("taxon_id should have a usable constant triple")
	}
	if !(tri.freqs[0] <= tri.freqs[1] && tri.freqs[1] <= tri.freqs[2]) {
		t.Errorf("frequencies not increasing: %v", tri.freqs)
	}
	if tri.freqs[2] < tri.freqs[0]*4 {
		t.Errorf("k3 frequency %d not well above k1 %d", tri.freqs[2], tri.freqs[0])
	}
}

func TestSamplePreservesDistribution(t *testing.T) {
	schema, src := nrefSource(t)
	fam := NREF2J(schema, src, DefaultOptions())
	// Cost proxy: query length (deterministic, monotone for the test).
	costOf := func(s string) float64 { return float64(len(s)) }
	sample := fam.Sample(50, costOf, 1)
	if len(sample.Queries) != 50 {
		t.Fatalf("sample size %d", len(sample.Queries))
	}
	// Median of sample should be near the family median under the proxy.
	med := func(qs []Query) float64 {
		costs := make([]float64, len(qs))
		for i, q := range qs {
			costs[i] = costOf(q.SQL)
		}
		for i := range costs {
			for j := i + 1; j < len(costs); j++ {
				if costs[j] < costs[i] {
					costs[i], costs[j] = costs[j], costs[i]
				}
			}
		}
		return costs[len(costs)/2]
	}
	famMed, samMed := med(fam.Queries), med(sample.Queries)
	if samMed < famMed*0.7 || samMed > famMed*1.3 {
		t.Errorf("sample median %.0f far from family median %.0f", samMed, famMed)
	}
	// Sampling fewer than the family size returns the family unchanged.
	if got := fam.Sample(len(fam.Queries)+10, costOf, 1); len(got.Queries) != len(fam.Queries) {
		t.Errorf("oversized sample should return the family")
	}
}

func TestDeterminism(t *testing.T) {
	schema, src := nrefSource(t)
	f1 := NREF2J(schema, src, DefaultOptions())
	f2 := NREF2J(schema, src, DefaultOptions())
	if len(f1.Queries) != len(f2.Queries) {
		t.Fatal("family generation must be deterministic")
	}
	for i := range f1.Queries {
		if f1.Queries[i].SQL != f2.Queries[i].SQL {
			t.Fatalf("query %d differs between runs", i)
		}
	}
}

func TestUsableColsPreferNonKey(t *testing.T) {
	schema, src := nrefSource(t)
	g := newGenerator(schema, src, DefaultOptions())
	cols := g.usableCols(schema.Table("taxonomy"))
	if len(cols) == 0 {
		t.Fatal("no usable columns")
	}
	// taxonomy's PK is (nref_id, taxon_id): the leading usable columns
	// must be non-key (lineage, species_name, common_name).
	for _, c := range cols[:2] {
		if c == "nref_id" || c == "taxon_id" {
			t.Errorf("PK column %s should sort after non-key columns: %v", c, cols)
		}
	}
}

func TestFamiliesAvoidNonIndexableColumns(t *testing.T) {
	schema, src := nrefSource(t)
	for _, fam := range []Family{
		NREF2J(schema, src, DefaultOptions()),
		NREF3J(schema, src, DefaultOptions()),
	} {
		for _, q := range fam.Queries {
			if strings.Contains(q.SQL, "sequence") {
				t.Errorf("%s query uses the non-indexable sequence column: %s", fam.Name, q.SQL)
			}
		}
	}
}
