// Package workload generates the benchmark's query families (paper
// §3.2.2): large sets of structurally related exploratory queries obtained
// by binding template variables to schema elements and to constants chosen
// by value-frequency analysis.
//
// Five families are provided:
//
//	NREF2J  — two-way co-occurrence joins with HAVING COUNT(*) < 4
//	          IN-subquery restrictions, on the NREF database.
//	NREF3J  — self-join + join generalizing the paper's Example 1, with a
//	          constant selection s.c4 = k, on the NREF database.
//	SkTH3J  — three-way PK/FK + domain joins on the skewed TPC-H database.
//	SkTH3Js — the simpler variant restricted to Lineitem/Orders/Partsupp
//	          with only equality θ predicates.
//	UnTH3J  — the SkTH3J templates on the uniform TPC-H database.
//
// Following §4.1.1, each family supports distribution-preserving sampling
// down to the 100-query workloads used in the experiments.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/val"
)

// Query is one generated family member.
type Query struct {
	SQL    string
	Family string
}

// Family is a set of generated queries plus bookkeeping about the
// enumeration (paper §4.1.1 reports family sizes before restriction).
type Family struct {
	Name    string
	Queries []Query
	// UnrestrictedSize is the combinatorial size of the family before the
	// practical restrictions (fewer columns per table, fewer constants on
	// large tables) are applied.
	UnrestrictedSize int64
}

// Source provides the heaps the generator analyzes for constants.
type Source interface {
	Heap(table string) *storage.Heap
}

// Options tunes the enumeration restrictions of §4.1.1.
type Options struct {
	// MaxGroupByCols bounds the GROUP BY width (the templates use up to 3
	// for NREF, 4 for TPC-H).
	MaxGroupByCols int
	// GroupByVariants is how many GROUP BY column choices are enumerated
	// per template binding.
	GroupByVariants int
	// MaxColsPerTable restricts how many indexable columns of each table
	// participate (paper: "we did not use more than 4 columns per table").
	MaxColsPerTable int
	// LargeTableRows marks tables where fewer selection criteria are used.
	LargeTableRows int64
	// RelaxedConstants accepts constant triples whose frequencies do not
	// span orders of magnitude. Uniform databases (UnTH3J) need this: the
	// paper notes that family simply uses "different selection constants",
	// since uniform value frequencies cannot spread.
	RelaxedConstants bool
}

// DefaultOptions mirrors the paper's restrictions.
func DefaultOptions() Options {
	return Options{
		MaxGroupByCols:  3,
		GroupByVariants: 2,
		MaxColsPerTable: 4,
		LargeTableRows:  10_000_000,
	}
}

// freqTriple holds the paper's k1, k2, k3 constants for one column: k1 is
// a highest-selectivity (lowest-frequency) value; k2 and k3 have
// frequencies roughly one and two orders of magnitude larger.
type freqTriple struct {
	vals  [3]val.Value
	freqs [3]int64
	ok    bool
}

// generator carries shared state for one family enumeration.
type generator struct {
	schema *catalog.Schema
	src    Source
	opts   Options
	// freqCache caches per-column frequency analyses.
	freqCache map[string]freqTriple
}

func newGenerator(schema *catalog.Schema, src Source, opts Options) *generator {
	return &generator{schema: schema, src: src, opts: opts, freqCache: make(map[string]freqTriple)}
}

// constants returns the k1,k2,k3 triple for a column, computing and
// caching the frequency analysis.
func (g *generator) constants(table string, col int) freqTriple {
	key := fmt.Sprintf("%s.%d", strings.ToLower(table), col)
	if t, ok := g.freqCache[key]; ok {
		if !t.ok && g.opts.RelaxedConstants && t.freqs[2] > 0 {
			t.ok = true
		}
		return t
	}
	t := analyzeColumn(g.src.Heap(table), col)
	g.freqCache[key] = t
	if !t.ok && g.opts.RelaxedConstants && t.freqs[2] > 0 {
		t.ok = true
	}
	return t
}

// analyzeColumn scans the column and picks the constant triple.
func analyzeColumn(h *storage.Heap, col int) freqTriple {
	if h == nil {
		return freqTriple{}
	}
	counts := make(map[string]*struct {
		v val.Value
		n int64
	})
	h.Scan(nil, func(_ storage.RowID, r val.Row) bool {
		v := r[col]
		if v.IsNull() {
			return true
		}
		k := val.Row{v}.Key()
		if c := counts[k]; c != nil {
			c.n++
		} else {
			counts[k] = &struct {
				v val.Value
				n int64
			}{v, 1}
		}
		return true
	})
	if len(counts) < 3 {
		return freqTriple{}
	}
	type vc struct {
		v val.Value
		n int64
	}
	all := make([]vc, 0, len(counts))
	for _, c := range counts {
		all = append(all, vc{c.v, c.n})
	}
	// Sort by (frequency, value) so the choice is deterministic.
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n < all[j].n
		}
		return val.Compare(all[i].v, all[j].v) < 0
	})
	k1 := all[0]
	// k2 and k3: frequencies nearest one and two orders of magnitude
	// above k1's.
	pick := func(target int64) vc {
		best := all[len(all)-1]
		bestDiff := diffAbs(best.n, target)
		for _, c := range all {
			if d := diffAbs(c.n, target); d < bestDiff {
				best, bestDiff = c, d
			}
		}
		return best
	}
	k2 := pick(k1.n * 10)
	k3 := pick(k1.n * 100)
	t := freqTriple{ok: true}
	t.vals = [3]val.Value{k1.v, k2.v, k3.v}
	t.freqs = [3]int64{k1.n, k2.n, k3.n}
	// The triple must actually spread: require k3 well above k1. (Callers
	// may relax this via Options.RelaxedConstants.)
	if t.freqs[2] < t.freqs[0]*4 {
		t.ok = false
	}
	return t
}

func diffAbs(a, b int64) int64 {
	if a > b {
		return a - b
	}
	return b - a
}

// usableCols returns up to MaxColsPerTable indexable columns of the table
// (paper §4.1.1: non-indexable columns ignored, at most 4 per table), with
// fewer on large tables. Non-primary-key columns come first: the families
// probe exploratory access paths beyond the keys (SkTH3J explicitly joins
// "non-key columns"), and the restriction keeps that emphasis.
func (g *generator) usableCols(t *catalog.Table) []string {
	max := g.opts.MaxColsPerTable
	if h := g.src.Heap(t.Name); h != nil && h.NumRows() >= g.opts.LargeTableRows {
		max = max / 2
		if max < 2 {
			max = 2
		}
	}
	pk := make(map[string]bool)
	for _, c := range t.PrimaryKey {
		pk[strings.ToLower(c)] = true
	}
	var cols []string
	for _, c := range t.IndexableColumns() {
		if !pk[strings.ToLower(c)] {
			cols = append(cols, c)
		}
	}
	for _, c := range t.IndexableColumns() {
		if pk[strings.ToLower(c)] {
			cols = append(cols, c)
		}
	}
	if len(cols) > max {
		cols = cols[:max]
	}
	return cols
}

// groupByChoices enumerates GROUP BY column lists: prefixes of the usable
// columns excluding the given ones, up to MaxGroupByCols wide, in
// GroupByVariants lengths.
func (g *generator) groupByChoices(t *catalog.Table, exclude ...string) [][]string {
	ex := make(map[string]bool)
	for _, e := range exclude {
		ex[strings.ToLower(e)] = true
	}
	var avail []string
	for _, c := range g.usableCols(t) {
		if !ex[strings.ToLower(c)] {
			avail = append(avail, c)
		}
	}
	if len(avail) > g.opts.MaxGroupByCols {
		avail = avail[:g.opts.MaxGroupByCols]
	}
	var out [][]string
	for v := 0; v < g.opts.GroupByVariants; v++ {
		n := len(avail) - v
		if n < 1 {
			break
		}
		out = append(out, avail[:n])
	}
	if len(out) == 0 {
		out = append(out, nil)
	}
	return out
}

// domainPairs returns all (colA, colB) pairs of distinct-table columns in
// the same domain, each column restricted to the usable set.
func (g *generator) domainPairs() []pairRef {
	usable := make(map[string]bool)
	for _, t := range g.schema.Tables() {
		for _, c := range g.usableCols(t) {
			usable[strings.ToLower(t.Name+"."+c)] = true
		}
	}
	var out []pairRef
	for _, cols := range g.domainColumnsSorted() {
		for _, a := range cols {
			for _, b := range cols {
				if strings.EqualFold(a.Table, b.Table) {
					continue
				}
				if !usable[strings.ToLower(a.Table+"."+a.Column)] || !usable[strings.ToLower(b.Table+"."+b.Column)] {
					continue
				}
				out = append(out, pairRef{A: a, B: b})
			}
		}
	}
	return out
}

type pairRef struct {
	A, B catalog.ColumnRef
}

// domainColumnsSorted returns domain groups in deterministic order.
func (g *generator) domainColumnsSorted() [][]catalog.ColumnRef {
	m := g.schema.DomainColumns()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]catalog.ColumnRef, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Sample draws n queries preserving the distribution of the given cost
// measure across the family (paper §4.1.1): the family is sorted by cost,
// cut into n equal-size strata, and one query is drawn per stratum.
func (f Family) Sample(n int, costOf func(sql string) float64, seed int64) Family {
	if len(f.Queries) <= n {
		return f
	}
	type qc struct {
		q Query
		c float64
	}
	qcs := make([]qc, len(f.Queries))
	for i, q := range f.Queries {
		qcs[i] = qc{q, costOf(q.SQL)}
	}
	sort.SliceStable(qcs, func(i, j int) bool { return qcs[i].c < qcs[j].c })
	rng := rand.New(rand.NewSource(seed))
	out := Family{Name: f.Name, UnrestrictedSize: f.UnrestrictedSize}
	for i := 0; i < n; i++ {
		lo := i * len(qcs) / n
		hi := (i + 1) * len(qcs) / n
		if hi <= lo {
			hi = lo + 1
		}
		out.Queries = append(out.Queries, qcs[lo+rng.Intn(hi-lo)].q)
	}
	return out
}

// SQLs returns the query texts.
func (f Family) SQLs() []string {
	out := make([]string, len(f.Queries))
	for i, q := range f.Queries {
		out[i] = q.SQL
	}
	return out
}
