package workload

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
)

// NREF2J generates the paper's NREF2J family: counting co-occurrences of
// same-domain values across two tables, with both join columns restricted
// to infrequent values (HAVING COUNT(*) < 4) to bound the join size.
//
//	SELECT r.ci1,...,r.ci3, r.c1, COUNT(*)
//	FROM R r, S s
//	WHERE r.c1 = s.c2
//	  AND r.c1 IN (SELECT c1 FROM R GROUP BY c1 HAVING COUNT(*) < 4)
//	  AND s.c2 IN (SELECT c2 FROM S GROUP BY c2 HAVING COUNT(*) < 4)
//	GROUP BY r.ci1,...,r.ci3, r.c1
func NREF2J(schema *catalog.Schema, src Source, opts Options) Family {
	g := newGenerator(schema, src, opts)
	fam := Family{Name: "NREF2J"}
	fam.UnrestrictedSize = unrestrictedPairFamilySize(schema, 3)

	for _, pr := range g.domainPairs() {
		r := schema.Table(pr.A.Table)
		for _, gb := range g.groupByChoices(r, pr.A.Column) {
			var sel []string
			var grp []string
			for _, c := range gb {
				sel = append(sel, "r."+c)
				grp = append(grp, "r."+c)
			}
			sel = append(sel, "r."+pr.A.Column)
			grp = append(grp, "r."+pr.A.Column)
			q := fmt.Sprintf(
				"SELECT %s, COUNT(*) FROM %s r, %s s WHERE r.%s = s.%s"+
					" AND r.%s IN (SELECT %s FROM %s GROUP BY %s HAVING COUNT(*) < 4)"+
					" AND s.%s IN (SELECT %s FROM %s GROUP BY %s HAVING COUNT(*) < 4)"+
					" GROUP BY %s",
				strings.Join(sel, ", "), pr.A.Table, pr.B.Table,
				pr.A.Column, pr.B.Column,
				pr.A.Column, pr.A.Column, pr.A.Table, pr.A.Column,
				pr.B.Column, pr.B.Column, pr.B.Table, pr.B.Column,
				strings.Join(grp, ", "))
			fam.Queries = append(fam.Queries, Query{SQL: q, Family: fam.Name})
		}
	}
	return fam
}

// NREF3J generates the paper's NREF3J family, the generalization of the
// Example 1 self-join pattern:
//
//	SELECT r1.ci1,...,r1.ci3, r1.c1, COUNT(DISTINCT r2.c2)
//	FROM R r1, R r2, S s
//	WHERE r1.c1 = r2.c1 AND r1.c2 = s.c3 AND s.c4 = k
//	GROUP BY r1.ci1,...,r1.ci3, r1.c1
//
// Constants k follow the k1/k2/k3 frequency rule (§3.2.2): the most
// selective value plus values one and two orders of magnitude more
// frequent.
func NREF3J(schema *catalog.Schema, src Source, opts Options) Family {
	g := newGenerator(schema, src, opts)
	fam := Family{Name: "NREF3J"}
	fam.UnrestrictedSize = unrestrictedSelfJoinFamilySize(schema, 3)

	for _, rt := range schema.Tables() {
		selfCols := g.usableCols(rt)
		if len(selfCols) > 2 {
			selfCols = selfCols[:2] // restriction: fewer self-join columns
		}
		for _, c1 := range selfCols {
			// (r.c2, s.c3) pairs where the R side is this table.
			var pairs []pairRef
			for _, pr := range g.domainPairs() {
				if strings.EqualFold(pr.A.Table, rt.Name) && !strings.EqualFold(pr.A.Column, c1) {
					pairs = append(pairs, pr)
				}
				if len(pairs) == 3 { // restriction: few join targets
					break
				}
			}
			for _, pr := range pairs {
				st := schema.Table(pr.B.Table)
				// Selection columns of S with a usable constant triple.
				var selCols []string
				for _, c4 := range g.usableCols(st) {
					if strings.EqualFold(c4, pr.B.Column) {
						continue
					}
					if g.constants(st.Name, st.ColumnIndex(c4)).ok {
						selCols = append(selCols, c4)
					}
					if len(selCols) == 2 {
						break
					}
				}
				for _, c4 := range selCols {
					tri := g.constants(st.Name, st.ColumnIndex(c4))
					for ki := 0; ki < 3; ki++ {
						if dupConstant(tri, ki) {
							continue
						}
						for _, gb := range g.groupByChoices(rt, c1, pr.A.Column) {
							var sel, grp []string
							for _, c := range gb {
								sel = append(sel, "r1."+c)
								grp = append(grp, "r1."+c)
							}
							sel = append(sel, "r1."+c1)
							grp = append(grp, "r1."+c1)
							q := fmt.Sprintf(
								"SELECT %s, COUNT(DISTINCT r2.%s) FROM %s r1, %s r2, %s s"+
									" WHERE r1.%s = r2.%s AND r1.%s = s.%s AND s.%s = %s"+
									" GROUP BY %s",
								strings.Join(sel, ", "), pr.A.Column,
								rt.Name, rt.Name, st.Name,
								c1, c1, pr.A.Column, pr.B.Column,
								c4, tri.vals[ki].String(),
								strings.Join(grp, ", "))
							fam.Queries = append(fam.Queries, Query{SQL: q, Family: fam.Name})
						}
					}
				}
			}
		}
	}
	return dedup(fam)
}

// dupConstant reports whether the ki-th constant equals an earlier one in
// the triple (columns with compressed frequency spectra can repeat values).
func dupConstant(tri freqTriple, ki int) bool {
	for j := 0; j < ki; j++ {
		if tri.vals[j].String() == tri.vals[ki].String() {
			return true
		}
	}
	return false
}

// dedup removes textually identical queries, preserving order.
func dedup(f Family) Family {
	seen := make(map[string]bool, len(f.Queries))
	out := f.Queries[:0]
	for _, q := range f.Queries {
		if seen[q.SQL] {
			continue
		}
		seen[q.SQL] = true
		out = append(out, q)
	}
	f.Queries = out
	return f
}

// unrestrictedPairFamilySize counts the NREF2J combinatorial space before
// restrictions: every same-domain cross-table column pair times every
// GROUP BY subset of up to maxGB other indexable columns of R.
func unrestrictedPairFamilySize(schema *catalog.Schema, maxGB int) int64 {
	var total int64
	for _, cols := range schema.DomainColumns() {
		for _, a := range cols {
			for _, b := range cols {
				if strings.EqualFold(a.Table, b.Table) {
					continue
				}
				n := len(schema.Table(a.Table).IndexableColumns()) - 1
				total += subsetsUpTo(n, maxGB)
			}
		}
	}
	return total
}

// unrestrictedSelfJoinFamilySize counts the NREF3J combinatorial space:
// every (R, c1), same-domain (R.c2, S.c3) pair, selection column c4 of S,
// three constants, and every GROUP BY subset.
func unrestrictedSelfJoinFamilySize(schema *catalog.Schema, maxGB int) int64 {
	domains := schema.DomainColumns()
	var total int64
	for _, rt := range schema.Tables() {
		rCols := rt.IndexableColumns()
		for range rCols { // choice of c1
			for _, cols := range domains {
				for _, a := range cols {
					if !strings.EqualFold(a.Table, rt.Name) {
						continue
					}
					for _, b := range cols {
						if strings.EqualFold(b.Table, rt.Name) {
							continue
						}
						st := schema.Table(b.Table)
						nSel := len(st.IndexableColumns()) - 1
						if nSel < 0 {
							nSel = 0
						}
						total += int64(nSel) * 3 * subsetsUpTo(len(rCols)-2, maxGB)
					}
				}
			}
		}
	}
	return total
}

// subsetsUpTo returns sum_{k=0..maxK} C(n, k).
func subsetsUpTo(n, maxK int) int64 {
	if n < 0 {
		return 1
	}
	var total int64
	for k := 0; k <= maxK && k <= n; k++ {
		total += choose(n, k)
	}
	return total
}

func choose(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	c := int64(1)
	for i := 0; i < k; i++ {
		c = c * int64(n-i) / int64(i+1)
	}
	return c
}
