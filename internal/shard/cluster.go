package shard

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/val"
)

// Cluster is a sharded engine: a coordinator engine holding the full
// data (and answering estimates, what-if sessions and recommender calls
// exactly as before) plus N partition engines, each holding one
// row-disjoint slice of every base table with its own partitioned
// B+-trees.
//
// Queries execute partition-parallel over a bounded core.Runner pool and
// merge deterministically; Reshard swaps in a new partition set live, and
// Transition propagates configuration changes to every partition.
//
// Lock order: reshardMu before mu. Engine-internal locks are only taken
// with both released (topology snapshots are handed out under RLock and
// used lock-free — partition engines are immutable once published except
// through their own internal locking).
type Cluster struct {
	coord *engine.Engine

	// reshardMu serializes topology and configuration changes (Reshard,
	// Transition); the expensive partition builds run under it without
	// blocking queries, which only need mu for a snapshot.
	reshardMu sync.Mutex

	mu     sync.RWMutex
	spec   Spec             // conflint:guardedby mu conflint:epoch
	shards []*engine.Engine // conflint:guardedby mu conflint:epoch (nil for a 1-shard topology)
	pool   int              // conflint:guardedby mu

	statMu sync.Mutex
	st     Stats // conflint:guardedby statMu
}

// Stats is a snapshot of the cluster's execution counters, the raw
// material for the autoscaler's Amdahl prediction: SerialSeconds is
// simulated time that does not shrink with shard count (IN-set
// computation, merge, serial fallbacks), ParallelWork is the total
// simulated shard time normalized to one shard (sum over queries of
// max-shard-seconds × shard count).
type Stats struct {
	Queries       int64
	Fallbacks     int64 // queries run coordinator-serial (view plans, self-joins)
	Timeouts      int64
	Reshards      int64
	SerialSeconds float64
	ParallelWork  float64
}

// New builds a cluster over an already-loaded coordinator engine. The
// coordinator must have its data loaded and stats collected; its current
// configuration is propagated (base-table structures only) to every
// partition.
func New(coord *engine.Engine, spec Spec, pool int) (*Cluster, error) {
	spec = spec.normalized()
	if err := spec.validate(coord.Schema); err != nil {
		return nil, err
	}
	if pool < 1 {
		pool = 1
	}
	c := &Cluster{coord: coord, spec: spec, pool: pool}
	shards, err := c.buildShards(spec)
	if err != nil {
		return nil, err
	}
	c.shards = shards
	return c, nil
}

// Coordinator returns the full-data engine behind the cluster — the
// estimation and recommendation surface (E, H and goal reports are
// topology-invariant: they are always computed against the full data).
func (c *Cluster) Coordinator() *engine.Engine { return c.coord }

// Shards returns the current shard count.
func (c *Cluster) Shards() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.spec.Shards
}

// Pool returns the current worker-pool width for partition fan-out.
func (c *Cluster) Pool() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pool
}

// SetPool changes the worker-pool width (min 1). Unlike Reshard this is
// instant: the pool bounds fan-out concurrency only.
func (c *Cluster) SetPool(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.pool = n
	c.mu.Unlock()
}

// Spec returns the current topology spec.
func (c *Cluster) Spec() Spec {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.spec
}

// Stats returns a snapshot of the execution counters.
func (c *Cluster) Stats() Stats {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.st
}

// buildShards constructs the partition engines for a spec: partition
// every base table's rows, load them, collect statistics, and build the
// coordinator's current base-table structures over each partition. Called
// without c.mu held (the coordinator's heaps are append-only and only
// mutated at load time, never while a cluster serves).
func (c *Cluster) buildShards(spec Spec) ([]*engine.Engine, error) {
	if spec.Shards <= 1 {
		return nil, nil // 1-shard topology serves straight from the coordinator
	}
	shards := make([]*engine.Engine, spec.Shards)
	for i := range shards {
		sh := engine.New(c.coord.Schema, c.coord.ScaleFactor, c.coord.Profile)
		sh.Model = c.coord.Model
		shards[i] = sh
	}
	for _, t := range c.coord.Schema.Tables() {
		h := c.coord.Heap(t.Name)
		if h == nil {
			return nil, fmt.Errorf("shard: coordinator has no heap for %s", t.Name)
		}
		rows := make([]val.Row, 0, h.NumRows())
		h.Scan(nil, func(_ storage.RowID, r val.Row) bool {
			rows = append(rows, r)
			return true
		})
		part := newPartitioner(spec, t, rows)
		buckets := make([][]val.Row, spec.Shards)
		for _, r := range rows {
			s := part.locate(r)
			buckets[s] = append(buckets[s], r)
		}
		for i, sh := range shards {
			if err := sh.Load(t.Name, buckets[i]); err != nil {
				return nil, err
			}
		}
	}
	cfg := baseOnly(c.coord.Schema, c.coord.Current())
	for _, sh := range shards {
		sh.CollectStats()
		if _, err := sh.ApplyConfig(cfg); err != nil {
			return nil, err
		}
	}
	return shards, nil
}

// baseOnly strips a configuration down to what a partition materializes:
// indexes over base tables. Views (and their indexes) stay
// coordinator-only — a materialized view is a global derived result, so
// any plan using one runs coordinator-serial.
func baseOnly(schema *catalog.Schema, cfg conf.Configuration) conf.Configuration {
	out := conf.Configuration{Name: cfg.Name}
	for _, d := range cfg.Indexes {
		if schema.Table(d.Table) != nil {
			out.Indexes = append(out.Indexes, d)
		}
	}
	return out
}

// Reshard rebuilds the cluster at a new shard count and swaps it in
// live. Running queries keep their snapshot of the old topology; new
// queries see the new one. The coordinator's what-if epoch is bumped so
// cached H estimates never survive the topology change.
func (c *Cluster) Reshard(n int) error {
	if n < 1 {
		return fmt.Errorf("shard: cannot reshard to %d shards", n)
	}
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	c.mu.RLock()
	spec := c.spec
	c.mu.RUnlock()
	if n == spec.Shards {
		return nil
	}
	spec.Shards = n
	shards, err := c.buildShards(spec)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.spec = spec
	c.shards = shards
	c.mu.Unlock()
	c.statMu.Lock()
	c.st.Reshards++
	c.statMu.Unlock()
	c.coord.NoteTopologyChange()
	return nil
}

// Transition applies a configuration change to the coordinator and every
// partition (base-table structures only on partitions), reusing overlap
// on each engine. The returned report is the coordinator's.
func (c *Cluster) Transition(target conf.Configuration) (engine.BuildReport, error) {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	rep, err := c.coord.Transition(target)
	if err != nil {
		return rep, err
	}
	c.mu.RLock()
	shards := c.shards
	c.mu.RUnlock()
	cfg := baseOnly(c.coord.Schema, target)
	for _, sh := range shards {
		if _, err := sh.Transition(cfg); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// Run parses, analyzes and executes a query partition-parallel.
func (c *Cluster) Run(sqlText string, limitSeconds float64) (*exec.Result, engine.Measure, error) {
	q, err := c.coord.AnalyzeSQL(sqlText)
	if err != nil {
		return nil, engine.Measure{}, err
	}
	return c.RunAnalyzed(q, limitSeconds)
}

// RunAnalyzed executes an already-analyzed query across the partitions
// and merges the results deterministically. The measure's Seconds is the
// sharded simulated cost: IN-set computation (coordinator, once) + the
// slowest partition + the merge. Plans that read materialized views, and
// queries with no partitionable table (every table self-joined), fall
// back to coordinator-serial execution — identically at every shard
// count, so results stay byte-identical across topologies.
func (c *Cluster) RunAnalyzed(q *sql.Query, limitSeconds float64) (*exec.Result, engine.Measure, error) {
	c.mu.RLock()
	shards := c.shards
	pool := c.pool
	nShards := c.spec.Shards
	c.mu.RUnlock()

	if len(shards) == 0 {
		res, m, err := c.coord.RunAnalyzed(q, limitSeconds)
		c.note(m, 0, m.Seconds, false)
		return res, m, err
	}

	opts := c.coord.Profile.Opts
	coordPhys := c.coord.Physical()
	coordPlan, err := optimizer.Optimize(coordPhys, q, opts)
	if err != nil {
		return nil, engine.Measure{}, err
	}
	designated, ok := designate(q, coordPhys)
	if !ok || planUsesView(coordPlan.Root) {
		res, m, err := c.coord.RunAnalyzed(q, limitSeconds)
		c.note(m, 0, m.Seconds, true)
		return res, m, err
	}

	sqlText := q.SQL()

	// Phase 1 (serial, coordinator): IN-subquery sets over the full
	// tables, so HAVING COUNT(*) predicates see global counts.
	insetCtx := &exec.Ctx{Model: c.coord.Model, LimitSeconds: limitSeconds}
	preset, err := exec.ComputeInSets(coordPlan, insetCtx)
	if err != nil {
		if err == exec.ErrTimeout {
			m := engine.Measure{SQL: sqlText, Seconds: limitSeconds, TimedOut: true, Meter: insetCtx.Meter}
			c.note(m, 0, 0, false)
			return nil, m, nil
		}
		return nil, engine.Measure{}, err
	}

	// Phase 2 (parallel): each partition plans against a hybrid physical
	// — the designated table and its indexes from the partition,
	// everything else from the coordinator — and produces a mergeable
	// partial. Indexed fan-out; errors resolve to the lowest index.
	shardOpts := opts
	shardOpts.NoViews = true
	partials := make([]*exec.Partial, len(shards))
	meters := make([]exec.Ctx, len(shards))
	runner := core.Runner{Parallelism: pool}
	err = runner.Each(len(shards), func(i int) error {
		hybrid := hybridPhysical(coordPhys, shards[i].Physical(), designated)
		p, perr := optimizer.Optimize(hybrid, q, shardOpts)
		if perr != nil {
			return perr
		}
		ctx := &exec.Ctx{Model: c.coord.Model, LimitSeconds: limitSeconds, Preset: preset}
		part, rerr := exec.RunPartial(p, ctx)
		meters[i] = *ctx
		if rerr != nil {
			return rerr
		}
		partials[i] = part
		return nil
	})
	if err != nil {
		if err == exec.ErrTimeout {
			m := timeoutMeasure(sqlText, limitSeconds, insetCtx, meters)
			c.note(m, 0, 0, false)
			return nil, m, nil
		}
		return nil, engine.Measure{}, err
	}

	// Phase 3 (serial): ordered reduction, billed to its own meter.
	mergeCtx := &exec.Ctx{Model: c.coord.Model, LimitSeconds: limitSeconds}
	res, err := exec.MergePartials(coordPlan, partials, mergeCtx)
	if err != nil {
		if err == exec.ErrTimeout {
			m := timeoutMeasure(sqlText, limitSeconds, insetCtx, meters)
			c.note(m, 0, 0, false)
			return nil, m, nil
		}
		return nil, engine.Measure{}, err
	}

	var slowest float64
	total := insetCtx.Meter
	for i := range meters {
		if s := meters[i].Seconds(); s > slowest {
			slowest = s
		}
		total.Add(meters[i].Meter)
	}
	total.Add(mergeCtx.Meter)
	serial := insetCtx.Seconds() + mergeCtx.Seconds()
	m := engine.Measure{SQL: sqlText, Seconds: serial + slowest, Meter: total}
	if limitSeconds > 0 && m.Seconds > limitSeconds {
		m.TimedOut = true
		m.Seconds = limitSeconds
	}
	c.note(m, slowest*float64(nShards), serial, false)
	return res, m, nil
}

// note folds one query's cost split into the counters.
func (c *Cluster) note(m engine.Measure, parallelWork, serialSeconds float64, fallback bool) {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	c.st.Queries++
	if fallback {
		c.st.Fallbacks++
	}
	if m.TimedOut {
		c.st.Timeouts++
	}
	c.st.SerialSeconds += serialSeconds
	c.st.ParallelWork += parallelWork
}

// timeoutMeasure assembles the measure for a hard partition/merge
// timeout: no result, billed at the limit, meters summed for
// observability.
func timeoutMeasure(sqlText string, limit float64, insetCtx *exec.Ctx, meters []exec.Ctx) engine.Measure {
	total := insetCtx.Meter
	for i := range meters {
		total.Add(meters[i].Meter)
	}
	return engine.Measure{SQL: sqlText, Seconds: limit, TimedOut: true, Meter: total}
}

// PredictSeconds is the autoscaler's Amdahl model: mean per-query cost
// at a hypothetical shard count, from the observed serial/parallel work
// split. Returns 0 until a query has been measured.
func (c *Cluster) PredictSeconds(targetShards int) float64 {
	if targetShards < 1 {
		targetShards = 1
	}
	c.statMu.Lock()
	st := c.st
	c.statMu.Unlock()
	if st.Queries == 0 {
		return 0
	}
	q := float64(st.Queries)
	return st.SerialSeconds/q + st.ParallelWork/q/float64(targetShards)
}

// designate picks the partitioned table for a query: the largest base
// table (coordinator row count) referenced exactly once in FROM; ties
// break to the lowest table ordinal. Self-joined tables are ineligible —
// both sides would read the same partition and lose cross-partition
// pairs — as are views. Returns false when no table qualifies.
func designate(q *sql.Query, phys *plan.Physical) (string, bool) {
	refs := make(map[string]int, len(q.Tables))
	for _, t := range q.Tables {
		refs[strings.ToLower(t.Table.Name)]++
	}
	best := ""
	var bestRows int64 = -1
	for _, t := range q.Tables {
		name := strings.ToLower(t.Table.Name)
		if refs[name] != 1 {
			continue
		}
		ti := phys.Tables[name]
		if ti == nil {
			continue
		}
		if rows := ti.Heap.NumRows(); rows > bestRows {
			best, bestRows = name, rows
		}
	}
	return best, best != ""
}

// planUsesView reports whether any operator in the tree reads a
// materialized view.
func planUsesView(n plan.Node) bool {
	switch n := n.(type) {
	case *plan.ViewScan:
		return true
	case *plan.HashJoin:
		return planUsesView(n.Build) || planUsesView(n.Probe)
	case *plan.IndexJoin:
		return planUsesView(n.Outer)
	case *plan.HashAgg:
		return planUsesView(n.Input)
	case *plan.Project:
		return planUsesView(n.Input)
	}
	return false
}

// hybridPhysical assembles the physical description one partition plans
// against: the designated table (data, stats and indexes) from the
// partition engine; every other table from the coordinator; no views
// (view-reading plans never reach here). View-relation index lists are
// dropped with the views.
func hybridPhysical(coord, shard *plan.Physical, designated string) *plan.Physical {
	h := &plan.Physical{
		Schema:  coord.Schema,
		Tables:  make(map[string]*plan.TableInfo, len(coord.Tables)),
		Indexes: make(map[string][]*plan.IndexInfo, len(coord.Indexes)),
		Mem:     coord.Mem,
		Model:   coord.Model,
	}
	for name, ti := range coord.Tables {
		h.Tables[name] = ti
	}
	h.Tables[designated] = shard.Tables[designated]
	for name, ixs := range coord.Indexes {
		if coord.Schema.Table(name) == nil {
			continue // view index: dropped with the view
		}
		h.Indexes[name] = ixs
	}
	h.Indexes[designated] = shard.Indexes[designated]
	return h
}
