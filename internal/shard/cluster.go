package shard

import (
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/val"
)

// Cluster is a sharded engine: a coordinator engine holding the full
// data (and answering estimates, what-if sessions and recommender calls
// exactly as before) plus N partition engines, each holding one
// row-disjoint slice of every base table with its own partitioned
// B+-trees.
//
// Queries execute partition-parallel over a bounded core.Runner pool and
// merge deterministically; Reshard swaps in a new partition set live, and
// Transition propagates configuration changes to every partition.
//
// Lock order: reshardMu before mu. Engine-internal locks are only taken
// with both released (topology snapshots are handed out under RLock and
// used lock-free — partition engines are immutable once published except
// through their own internal locking).
type Cluster struct {
	coord *engine.Engine

	// reshardMu serializes topology and configuration changes (Reshard,
	// Transition); the expensive partition builds run under it without
	// blocking queries, which only need mu for a snapshot.
	reshardMu sync.Mutex

	mu   sync.RWMutex
	top  *topology // conflint:guardedby mu conflint:epoch
	pool int       // conflint:guardedby mu

	statMu sync.Mutex
	st     Stats // conflint:guardedby statMu
}

// Stats is a snapshot of the cluster's execution counters, the raw
// material for the autoscaler's Amdahl prediction: SerialSeconds is
// simulated time that does not shrink with shard count (IN-set
// computation, merge, serial fallbacks), ParallelWork is the total
// simulated shard time normalized to one shard (sum over queries of
// max-shard-seconds × shard count).
type Stats struct {
	Queries       int64
	Fallbacks     int64 // queries run coordinator-serial (plans reading materialized views)
	Exchanges     int64 // queries that repartitioned at least one table via row exchange
	Timeouts      int64
	Reshards      int64
	SerialSeconds float64
	ParallelWork  float64
}

// New builds a cluster over an already-loaded coordinator engine. The
// coordinator must have its data loaded and stats collected; its current
// configuration is propagated (base-table structures only) to every
// partition.
func New(coord *engine.Engine, spec Spec, pool int) (*Cluster, error) {
	spec = spec.normalized()
	if err := spec.validate(coord.Schema); err != nil {
		return nil, err
	}
	if pool < 1 {
		pool = 1
	}
	c := &Cluster{coord: coord, pool: pool}
	top, err := c.buildTopology(spec)
	if err != nil {
		return nil, err
	}
	c.top = top
	return c, nil
}

// Coordinator returns the full-data engine behind the cluster — the
// estimation and recommendation surface (E, H and goal reports are
// topology-invariant: they are always computed against the full data).
func (c *Cluster) Coordinator() *engine.Engine { return c.coord }

// snapshot hands out the current topology generation and pool width.
func (c *Cluster) snapshot() (*topology, int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.top, c.pool
}

// Shards returns the current shard count.
func (c *Cluster) Shards() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.top.spec.Shards
}

// Pool returns the current worker-pool width for partition fan-out.
func (c *Cluster) Pool() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pool
}

// SetPool changes the worker-pool width (min 1). Unlike Reshard this is
// instant: the pool bounds fan-out concurrency only.
func (c *Cluster) SetPool(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.pool = n
	c.mu.Unlock()
}

// Spec returns the current topology spec.
func (c *Cluster) Spec() Spec {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.top.spec
}

// Stats returns a snapshot of the execution counters.
func (c *Cluster) Stats() Stats {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return c.st
}

// buildTopology constructs one immutable topology generation for a spec.
func (c *Cluster) buildTopology(spec Spec) (*topology, error) {
	shards, err := c.buildShards(spec)
	if err != nil {
		return nil, err
	}
	return &topology{spec: spec, shards: shards}, nil
}

// buildShards constructs the partition engines for a spec: partition
// every base table's rows (one serial coordinator scan per table), then
// load, collect statistics and build the coordinator's current
// base-table structures per partition in parallel over the pool — the
// transition-cost side of the scale-out: build work divides across
// partitions. Called without c.mu held (the coordinator's heaps are
// append-only and only mutated at load time, never while a cluster
// serves).
func (c *Cluster) buildShards(spec Spec) ([]*engine.Engine, error) {
	if spec.Shards <= 1 {
		return nil, nil // 1-shard topology serves straight from the coordinator
	}
	shards := make([]*engine.Engine, spec.Shards)
	for i := range shards {
		sh := engine.New(c.coord.Schema, c.coord.ScaleFactor, c.coord.Profile)
		sh.Model = c.coord.Model
		shards[i] = sh
	}
	type tablePart struct {
		name    string
		buckets [][]val.Row
	}
	tables := c.coord.Schema.Tables()
	parts := make([]tablePart, 0, len(tables))
	var rows []val.Row
	collect := func(_ storage.RowID, r val.Row) bool {
		rows = append(rows, r)
		return true
	}
	for _, t := range tables {
		h := c.coord.Heap(t.Name)
		if h == nil {
			return nil, fmt.Errorf("shard: coordinator has no heap for %s", t.Name)
		}
		rows = make([]val.Row, 0, h.NumRows())
		h.Scan(nil, collect)
		part := newPartitioner(spec, t, rows)
		buckets := make([][]val.Row, spec.Shards)
		for _, r := range rows {
			s := part.locate(r)
			buckets[s] = append(buckets[s], r)
		}
		parts = append(parts, tablePart{name: t.Name, buckets: buckets})
	}
	cfg := baseOnly(c.coord.Schema, c.coord.Current())
	runner := core.Runner{Parallelism: c.Pool()}
	if err := runner.Each(len(shards), func(i int) error {
		sh := shards[i]
		for _, tp := range parts {
			if err := sh.Load(tp.name, tp.buckets[i]); err != nil {
				return err
			}
		}
		sh.CollectStats()
		_, err := sh.ApplyConfig(cfg)
		return err
	}); err != nil {
		return nil, err
	}
	return shards, nil
}

// baseOnly strips a configuration down to what a partition materializes:
// indexes over base tables. Views (and their indexes) stay
// coordinator-only — a materialized view is a global derived result, so
// any plan using one runs coordinator-serial.
func baseOnly(schema *catalog.Schema, cfg conf.Configuration) conf.Configuration {
	out := conf.Configuration{Name: cfg.Name}
	for _, d := range cfg.Indexes {
		if schema.Table(d.Table) != nil {
			out.Indexes = append(out.Indexes, d)
		}
	}
	return out
}

// Reshard rebuilds the cluster at a new shard count and swaps it in
// live. Running queries keep their snapshot of the old topology —
// including its exchange-bucket cache, so a query never joins old
// partitions against new-generation buckets; new queries see the new
// generation. The coordinator's what-if epoch is bumped so cached H
// estimates never survive the topology change.
func (c *Cluster) Reshard(n int) error {
	if n < 1 {
		return fmt.Errorf("shard: cannot reshard to %d shards", n)
	}
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	c.mu.RLock()
	spec := c.top.spec
	c.mu.RUnlock()
	if n == spec.Shards {
		return nil
	}
	spec.Shards = n
	top, err := c.buildTopology(spec)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.top = top
	c.mu.Unlock()
	c.statMu.Lock()
	c.st.Reshards++
	c.statMu.Unlock()
	c.coord.NoteTopologyChange()
	return nil
}

// Transition applies a configuration change to the coordinator and every
// partition (base-table structures only on partitions, built in parallel
// over the pool). The returned report is the coordinator's, with
// BuildSeconds restated as the sharded transition cost: views are global
// (coordinator-only), index builds run partition-parallel, so the
// cluster pays the view time plus the slowest partition's build.
// Exchange buckets hold base rows only and carry no indexes, so a
// configuration change never invalidates them.
func (c *Cluster) Transition(target conf.Configuration) (engine.BuildReport, error) {
	c.reshardMu.Lock()
	defer c.reshardMu.Unlock()
	rep, err := c.coord.Transition(target)
	if err != nil {
		return rep, err
	}
	top, pool := c.snapshot()
	if top == nil || len(top.shards) == 0 {
		return rep, nil
	}
	cfg := baseOnly(c.coord.Schema, target)
	reps := make([]engine.BuildReport, len(top.shards))
	runner := core.Runner{Parallelism: pool}
	if err := runner.Each(len(top.shards), func(i int) error {
		r, terr := top.shards[i].Transition(cfg)
		reps[i] = r
		return terr
	}); err != nil {
		return rep, err
	}
	var slowest float64
	for i := range reps {
		if reps[i].BuildSeconds > slowest {
			slowest = reps[i].BuildSeconds
		}
	}
	rep.BuildSeconds = rep.ViewSeconds + slowest
	return rep, nil
}

// Run parses, analyzes and executes a query partition-parallel.
func (c *Cluster) Run(sqlText string, limitSeconds float64) (*exec.Result, engine.Measure, error) {
	q, err := c.coord.AnalyzeSQL(sqlText)
	if err != nil {
		return nil, engine.Measure{}, err
	}
	return c.RunAnalyzed(q, limitSeconds)
}

// RunAnalyzed executes an already-analyzed query across the partitions
// and merges the results deterministically. The measure's Seconds is the
// sharded simulated cost: IN-set computation (coordinator, once) + the
// slowest partition (including its deterministic share of any row
// exchange) + the merge. Placement comes from planPlacements — stored
// partitions where the join graph aligns with the partition keys, row
// exchange where it does not, broadcast elsewhere — so every join shape
// runs partition-parallel. Only plans that read materialized views fall
// back to coordinator-serial execution — identically at every shard
// count, so results stay byte-identical across topologies.
func (c *Cluster) RunAnalyzed(q *sql.Query, limitSeconds float64) (*exec.Result, engine.Measure, error) {
	top, pool := c.snapshot()

	if top == nil || len(top.shards) == 0 {
		res, m, err := c.coord.RunAnalyzed(q, limitSeconds)
		c.note(m, 0, m.Seconds, false, false)
		return res, m, err
	}
	nShards := top.spec.Shards

	opts := c.coord.Profile.Opts
	coordPhys := c.coord.Physical()
	coordPlan, err := optimizer.Optimize(coordPhys, q, opts)
	if err != nil {
		return nil, engine.Measure{}, err
	}
	if planUsesView(coordPlan.Root) {
		res, m, err := c.coord.RunAnalyzed(q, limitSeconds)
		c.note(m, 0, m.Seconds, true, false)
		return res, m, err
	}
	placements, exchanged := planPlacements(q, coordPhys, top.spec)

	sqlText := q.SQL()

	// Phase 1 (serial, coordinator): IN-subquery sets over the full
	// tables, so HAVING COUNT(*) predicates see global counts.
	insetCtx := &exec.Ctx{Model: c.coord.Model, LimitSeconds: limitSeconds}
	preset, err := exec.ComputeInSets(coordPlan, insetCtx)
	if err != nil {
		if err == exec.ErrTimeout {
			m := engine.Measure{SQL: sqlText, Seconds: limitSeconds, TimedOut: true, Meter: insetCtx.Meter}
			c.note(m, 0, 0, false, false)
			return nil, m, nil
		}
		return nil, engine.Measure{}, err
	}

	// Phase 2 (parallel): each partition plans against a hybrid physical
	// — native ordinals bound to the partition's tables and indexes,
	// exchanged ordinals to repartitioned buckets, the rest reading the
	// coordinator — and produces a mergeable partial. Exchange cost is
	// billed into the shard's meter up front as a fixed function of
	// coordinator statistics, so simulated seconds stay pool-invariant.
	// Indexed fan-out; errors resolve to the lowest index.
	shardOpts := opts
	shardOpts.NoViews = true
	partials := make([]*exec.Partial, len(top.shards))
	meters := make([]exec.Ctx, len(top.shards))
	runner := core.Runner{Parallelism: pool}
	err = runner.Each(len(top.shards), func(i int) error {
		hybrid, herr := top.shardPhysical(coordPhys, q, placements, i)
		if herr != nil {
			return herr
		}
		p, perr := optimizer.Optimize(hybrid, q, shardOpts)
		if perr != nil {
			return perr
		}
		ctx := &exec.Ctx{Model: c.coord.Model, LimitSeconds: limitSeconds, Preset: preset}
		for _, k := range exchanged {
			billExchange(&ctx.Meter, coordPhys.Table(k.table), nShards)
		}
		part, rerr := exec.RunPartial(p, ctx)
		meters[i] = *ctx
		if rerr != nil {
			return rerr
		}
		partials[i] = part
		return nil
	})
	if err != nil {
		if err == exec.ErrTimeout {
			m := timeoutMeasure(sqlText, limitSeconds, insetCtx, meters)
			c.note(m, 0, 0, false, false)
			return nil, m, nil
		}
		return nil, engine.Measure{}, err
	}

	// Phase 3 (serial): ordered reduction, billed to its own meter.
	mergeCtx := &exec.Ctx{Model: c.coord.Model, LimitSeconds: limitSeconds}
	res, err := exec.MergePartials(coordPlan, partials, mergeCtx)
	if err != nil {
		if err == exec.ErrTimeout {
			m := timeoutMeasure(sqlText, limitSeconds, insetCtx, meters)
			c.note(m, 0, 0, false, false)
			return nil, m, nil
		}
		return nil, engine.Measure{}, err
	}

	var slowest float64
	total := insetCtx.Meter
	for i := range meters {
		if s := meters[i].Seconds(); s > slowest {
			slowest = s
		}
		total.Add(meters[i].Meter)
	}
	total.Add(mergeCtx.Meter)
	serial := insetCtx.Seconds() + mergeCtx.Seconds()
	m := engine.Measure{SQL: sqlText, Seconds: serial + slowest, Meter: total}
	if limitSeconds > 0 && m.Seconds > limitSeconds {
		m.TimedOut = true
		m.Seconds = limitSeconds
	}
	c.note(m, slowest*float64(nShards), serial, false, len(exchanged) > 0)
	return res, m, nil
}

// note folds one query's cost split into the counters.
func (c *Cluster) note(m engine.Measure, parallelWork, serialSeconds float64, fallback, exchanged bool) {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	c.st.Queries++
	if fallback {
		c.st.Fallbacks++
	}
	if exchanged {
		c.st.Exchanges++
	}
	if m.TimedOut {
		c.st.Timeouts++
	}
	c.st.SerialSeconds += serialSeconds
	c.st.ParallelWork += parallelWork
}

// timeoutMeasure assembles the measure for a hard partition/merge
// timeout: no result, billed at the limit, meters summed for
// observability.
func timeoutMeasure(sqlText string, limit float64, insetCtx *exec.Ctx, meters []exec.Ctx) engine.Measure {
	total := insetCtx.Meter
	for i := range meters {
		total.Add(meters[i].Meter)
	}
	return engine.Measure{SQL: sqlText, Seconds: limit, TimedOut: true, Meter: total}
}

// PredictSeconds is the autoscaler's Amdahl model: mean per-query cost
// at a hypothetical shard count, from the observed serial/parallel work
// split. Returns 0 until a query has been measured.
func (c *Cluster) PredictSeconds(targetShards int) float64 {
	if targetShards < 1 {
		targetShards = 1
	}
	c.statMu.Lock()
	st := c.st
	c.statMu.Unlock()
	if st.Queries == 0 {
		return 0
	}
	q := float64(st.Queries)
	return st.SerialSeconds/q + st.ParallelWork/q/float64(targetShards)
}

// PartitionPhysical returns partition i's physical description — its
// heap slice, partition statistics and partitioned indexes. A 1-shard
// topology exposes the coordinator as partition 0. The what-if layer
// costs against these to see partition cardinalities; recommendations
// themselves stay topology-invariant (they are computed on the
// coordinator's full data).
func (c *Cluster) PartitionPhysical(i int) (*plan.Physical, error) {
	top, _ := c.snapshot()
	if top == nil || len(top.shards) == 0 {
		if i == 0 {
			return c.coord.Physical(), nil
		}
		return nil, fmt.Errorf("shard: no partition %d in a 1-shard topology", i)
	}
	if i < 0 || i >= len(top.shards) {
		return nil, fmt.Errorf("shard: no partition %d in a %d-shard topology", i, len(top.shards))
	}
	return top.shards[i].Physical(), nil
}

// EstimateSharded optimizes a query once per partition — against the
// same hybrid physical descriptions (native partitions, exchange
// buckets, broadcast coordinator tables) RunAnalyzed executes with — and
// returns the per-partition optimizer estimates. This is the what-if
// surface for partition statistics: the coordinator's estimate answers
// "what would this cost unsharded", EstimateSharded answers "what does
// each partition think it will pay". A 1-shard topology returns the
// coordinator's single estimate.
func (c *Cluster) EstimateSharded(sqlText string) ([]engine.Measure, error) {
	q, err := c.coord.AnalyzeSQL(sqlText)
	if err != nil {
		return nil, err
	}
	top, _ := c.snapshot()
	if top == nil || len(top.shards) == 0 {
		m, err := c.coord.Estimate(sqlText)
		if err != nil {
			return nil, err
		}
		return []engine.Measure{m}, nil
	}
	coordPhys := c.coord.Physical()
	placements, _ := planPlacements(q, coordPhys, top.spec)
	shardOpts := c.coord.Profile.Opts
	shardOpts.NoViews = true
	out := make([]engine.Measure, len(top.shards))
	for i := range top.shards {
		hybrid, err := top.shardPhysical(coordPhys, q, placements, i)
		if err != nil {
			return nil, err
		}
		p, err := optimizer.Optimize(hybrid, q, shardOpts)
		if err != nil {
			return nil, err
		}
		out[i] = engine.Measure{SQL: sqlText, Seconds: p.Est.Seconds, Meter: p.Est.Meter}
	}
	return out, nil
}

// planUsesView reports whether any operator in the tree reads a
// materialized view.
func planUsesView(n plan.Node) bool {
	switch n := n.(type) {
	case *plan.ViewScan:
		return true
	case *plan.HashJoin:
		return planUsesView(n.Build) || planUsesView(n.Probe)
	case *plan.IndexJoin:
		return planUsesView(n.Outer)
	case *plan.HashAgg:
		return planUsesView(n.Input)
	case *plan.Project:
		return planUsesView(n.Input)
	}
	return false
}
