package shard

import (
	"fmt"
	"strconv"
	"sync"
)

// This file is the elastic resource autoscaler, modeled on the
// recommender/updater split of cluster autoscalers: a Recommender turns
// sliding-window metrics into shard-count and pool-width proposals via
// declarative boolean scaling rules (every rule's fire/hold decision is
// recorded, first fired rule wins), and an Updater applies proposals to a
// live Cluster — or only audits them in dry-run mode — refusing any
// action outside its declared min/max bounds.
//
// The split mirrors the paper's recommender/engine separation: the
// Recommender is pure (metrics in, proposal out, fully auditable and
// testable against golden fixtures), and every side effect lives in the
// Updater.

// WindowMetrics is one sliding window's observation, the autoscaler's
// entire input.
type WindowMetrics struct {
	// Window is the observation's sequence number (for audit ordering).
	Window int
	// Queries is the number of completed queries in the window.
	Queries int
	// MeanSeconds is the mean simulated cost per query.
	MeanSeconds float64
	// GoalLevel is the graded goal satisfaction over the window's CFC,
	// in [0,1].
	GoalLevel float64
	// QueueDepth is the mean admission queue depth over the window.
	QueueDepth float64
}

// metric returns the named metric's value.
func (w WindowMetrics) metric(name string) (float64, bool) {
	switch name {
	case "goal_level":
		return w.GoalLevel, true
	case "mean_seconds":
		return w.MeanSeconds, true
	case "queue_depth":
		return w.QueueDepth, true
	case "queries":
		return float64(w.Queries), true
	}
	return 0, false
}

// State is the resource configuration the autoscaler manages.
type State struct {
	Shards int
	Pool   int
}

// ScalingRule is one declarative boolean rule: when Metric Op Threshold
// holds, propose multiplying the shard count by ShardFactor and/or the
// pool width by PoolFactor (a zero factor leaves that resource alone).
// Rules are evaluated in order and the first fired rule that changes the
// state wins, so earlier rules encode higher priority (scale-out before
// scale-in).
type ScalingRule struct {
	Name      string
	Metric    string
	Op        string // "<" or ">"
	Threshold float64
	// MinQueries holds the rule off until the window has at least this
	// many completed queries (guards against deciding on noise).
	MinQueries  int
	ShardFactor float64
	PoolFactor  float64
}

// fired reports whether the rule's condition holds for the window.
func (r ScalingRule) fired(w WindowMetrics) (float64, bool) {
	v, ok := w.metric(r.Metric)
	if !ok || w.Queries < r.MinQueries {
		return v, false
	}
	switch r.Op {
	case "<":
		return v, v < r.Threshold
	case ">":
		return v, v > r.Threshold
	}
	return v, false
}

// target applies the rule's factors to a state, clamped below at 1.
func (r ScalingRule) target(cur State) State {
	next := cur
	if r.ShardFactor > 0 {
		next.Shards = scaleBy(cur.Shards, r.ShardFactor)
	}
	if r.PoolFactor > 0 {
		next.Pool = scaleBy(cur.Pool, r.PoolFactor)
	}
	return next
}

func scaleBy(n int, f float64) int {
	out := int(float64(n)*f + 0.5)
	if out < 1 {
		out = 1
	}
	return out
}

// DefaultRules is the stock rule set, parameterized by the per-query
// simulated-seconds target. Order is priority: goal violations scale out
// first, then latency, then backlog widens the pool; scale-in is last and
// therefore only reached when every scale-out condition is calm.
func DefaultRules(targetSeconds float64) []ScalingRule {
	return []ScalingRule{
		{Name: "scale-out-goal", Metric: "goal_level", Op: "<", Threshold: 0.90, MinQueries: 8, ShardFactor: 2},
		{Name: "scale-out-latency", Metric: "mean_seconds", Op: ">", Threshold: targetSeconds, MinQueries: 8, ShardFactor: 2},
		{Name: "scale-out-backlog", Metric: "queue_depth", Op: ">", Threshold: 8, MinQueries: 1, PoolFactor: 2},
		{Name: "scale-in-idle", Metric: "mean_seconds", Op: "<", Threshold: targetSeconds / 4, MinQueries: 8, ShardFactor: 0.5, PoolFactor: 0.5},
	}
}

// Decision is the audit record of one rule's evaluation against one
// window.
type Decision struct {
	Rule      string  `json:"rule"`
	Metric    string  `json:"metric"`
	Value     float64 `json:"value"`
	Op        string  `json:"op"`
	Threshold float64 `json:"threshold"`
	Fired     bool    `json:"fired"`
}

// Proposal is a concrete scale action derived from a fired rule.
type Proposal struct {
	Rule       string `json:"rule"`
	FromShards int    `json:"from_shards"`
	ToShards   int    `json:"to_shards"`
	FromPool   int    `json:"from_pool"`
	ToPool     int    `json:"to_pool"`
	Reason     string `json:"reason"`
	// PredictedSeconds is the Amdahl-model mean query cost at the proposed
	// shard count (0 when no predictor was configured or no data exists).
	PredictedSeconds float64 `json:"predicted_seconds"`
}

// Recommendation is the Recommender's full output for one window: every
// rule's decision plus at most one proposal (nil = hold).
type Recommendation struct {
	Window    int        `json:"window"`
	Decisions []Decision `json:"decisions"`
	Proposal  *Proposal  `json:"proposal,omitempty"`
}

// Recommender derives scale proposals from window metrics. It is pure:
// no clock, no side effects, deterministic output for a given input.
type Recommender struct {
	Rules []ScalingRule
	// Predict, when set, prices a proposed shard count in mean simulated
	// seconds per query (Cluster.PredictSeconds fits the signature).
	Predict func(targetShards int) float64
}

// Recommend evaluates every rule against the window, records each
// fire/hold decision, and returns the first fired rule's target as the
// proposal — skipping fired rules whose target is a no-op (already at
// the proposed state).
//
// conflint:pure — the autoscaler's propose/apply split: proposing a
// scale change must never mutate cluster state (only Updater.Apply may).
func (r *Recommender) Recommend(cur State, w WindowMetrics) Recommendation {
	rec := Recommendation{Window: w.Window, Decisions: make([]Decision, 0, len(r.Rules))}
	for _, rule := range r.Rules {
		v, fired := rule.fired(w)
		rec.Decisions = append(rec.Decisions, Decision{
			Rule: rule.Name, Metric: rule.Metric, Value: v,
			Op: rule.Op, Threshold: rule.Threshold, Fired: fired,
		})
		if !fired || rec.Proposal != nil {
			continue
		}
		next := rule.target(cur)
		if next == cur {
			continue // no-op: keep looking for a rule that changes something
		}
		p := &Proposal{
			Rule:       rule.Name,
			FromShards: cur.Shards, ToShards: next.Shards,
			FromPool: cur.Pool, ToPool: next.Pool,
			Reason: rule.Metric + " " + rule.Op + " " + strconv.FormatFloat(rule.Threshold, 'g', -1, 64) +
				" (observed " + strconv.FormatFloat(v, 'g', -1, 64) + ")",
		}
		if r.Predict != nil && next.Shards != cur.Shards {
			p.PredictedSeconds = r.Predict(next.Shards)
		}
		rec.Proposal = p
	}
	return rec
}

// Bounds is the updater's safety rail: proposals outside the declared
// ranges are refused, never clamped — a refusal is loud in the audit
// trail, a silent clamp would hide that the rule set and the rail
// disagree. Zero maxima mean "no upper bound"; minima below 1 normalize
// to 1.
type Bounds struct {
	MinShards int `json:"min_shards"`
	MaxShards int `json:"max_shards"`
	MinPool   int `json:"min_pool"`
	MaxPool   int `json:"max_pool"`
}

// check returns a non-empty refusal reason when the state is out of
// bounds.
func (b Bounds) check(s State) string {
	if min := max1(b.MinShards); s.Shards < min {
		return fmt.Sprintf("shards %d below min %d", s.Shards, min)
	}
	if b.MaxShards > 0 && s.Shards > b.MaxShards {
		return fmt.Sprintf("shards %d above max %d", s.Shards, b.MaxShards)
	}
	if min := max1(b.MinPool); s.Pool < min {
		return fmt.Sprintf("pool %d below min %d", s.Pool, min)
	}
	if b.MaxPool > 0 && s.Pool > b.MaxPool {
		return fmt.Sprintf("pool %d above max %d", s.Pool, b.MaxPool)
	}
	return ""
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// Action values of an AuditRecord.
const (
	ActionHold     = "hold"     // no proposal this window
	ActionApply    = "apply"    // proposal applied to the cluster
	ActionRefuse   = "refuse"   // proposal outside bounds, not applied
	ActionDryRun   = "dry-run"  // dry-run mode: audited, not applied
	ActionError    = "error"    // apply attempted and failed
	ActionCooldown = "cooldown" // proposal held: a recent action is still settling
)

// AuditRecord is the updater's trace of one recommendation.
type AuditRecord struct {
	Window   int       `json:"window"`
	Action   string    `json:"action"`
	Rule     string    `json:"rule,omitempty"`
	Reason   string    `json:"reason,omitempty"`
	Proposal *Proposal `json:"proposal,omitempty"`
	Err      string    `json:"err,omitempty"`
}

// Updater owns the side-effecting half of the autoscaler: it takes
// recommendations, enforces Bounds, and either applies them to the
// target cluster or — in DryRun mode — only records what it would have
// done. Every recommendation produces exactly one audit record.
type Updater struct {
	Bounds Bounds
	DryRun bool
	Target *Cluster
	// Cooldown is the hysteresis window: after an action (apply, dry-run,
	// or a failed apply — anything that would have touched the cluster), a
	// proposal arriving within Cooldown windows is held with
	// ActionCooldown instead of applied. Metrics gathered while a reshard
	// is still settling reflect the transition, not the steady state;
	// acting on them oscillates. Zero or negative disables the cooldown.
	Cooldown int

	mu         sync.Mutex
	audit      []AuditRecord // conflint:guardedby mu
	lastAction int           // conflint:guardedby mu (window of the most recent action)
	hasAction  bool          // conflint:guardedby mu
}

// NewUpdater builds an updater for a cluster.
func NewUpdater(target *Cluster, bounds Bounds, dryRun bool) *Updater {
	return &Updater{Bounds: bounds, DryRun: dryRun, Target: target}
}

// Apply executes (or audits) one recommendation and returns its audit
// record. The whole evaluation runs under u.mu so concurrent callers
// serialize: the cooldown check, the action, and the audit append are
// one atomic step (lock order Updater.mu → cluster locks; nothing takes
// Updater.mu with a cluster lock held).
func (u *Updater) Apply(rec Recommendation) AuditRecord {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := AuditRecord{Window: rec.Window, Action: ActionHold}
	if p := rec.Proposal; p != nil {
		out.Rule = p.Rule
		out.Reason = p.Reason
		out.Proposal = p
		cooling := u.Cooldown > 0 && u.hasAction && rec.Window-u.lastAction <= u.Cooldown
		if refusal := u.Bounds.check(State{Shards: p.ToShards, Pool: p.ToPool}); refusal != "" {
			out.Action = ActionRefuse
			out.Reason = refusal
		} else if cooling {
			out.Action = ActionCooldown
			out.Reason = fmt.Sprintf("cooling down: last action at window %d, cooldown %d windows", u.lastAction, u.Cooldown)
		} else if u.DryRun {
			out.Action = ActionDryRun
			u.lastAction, u.hasAction = rec.Window, true
		} else {
			out.Action = ActionApply
			if err := u.applyProposal(p); err != nil {
				out.Action = ActionError
				out.Err = err.Error()
			}
			// Errored applies start the cooldown too: a failed reshard may
			// have widened the pool, and retrying every window is the
			// oscillation the cooldown exists to damp.
			u.lastAction, u.hasAction = rec.Window, true
		}
	}
	u.audit = append(u.audit, out)
	return out
}

// applyProposal mutates the cluster: pool first (instant), then the
// reshard (expensive, live-swapped).
func (u *Updater) applyProposal(p *Proposal) error {
	if u.Target == nil {
		return fmt.Errorf("shard: updater has no target cluster")
	}
	if p.ToPool != p.FromPool {
		u.Target.SetPool(p.ToPool)
	}
	if p.ToShards != p.FromShards {
		return u.Target.Reshard(p.ToShards)
	}
	return nil
}

// Audit returns a copy of the audit trail.
func (u *Updater) Audit() []AuditRecord {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]AuditRecord, len(u.audit))
	copy(out, u.audit)
	return out
}
