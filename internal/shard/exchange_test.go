package shard

import (
	"testing"

	"repro/internal/conf"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/val"
)

// placementsFor analyzes sqlText on coord and runs the placement planner
// under spec.
func placementsFor(t *testing.T, coord *engine.Engine, spec Spec, sqlText string) ([]placement, []exKey) {
	t.Helper()
	q, err := coord.AnalyzeSQL(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	return planPlacements(q, coord.Physical(), spec.normalized())
}

// TestPlanPlacements pins the placement planner's decisions per join
// shape. NREF native partition keys are the primary keys' first columns:
// taxonomy→nref_id (offset 0), organism→nref_id (offset 0); taxonomy's
// taxon_id is offset 1, organism's taxon_id offset 2.
func TestPlanPlacements(t *testing.T) {
	coord := testCoord(t)
	hash4 := Spec{Shards: 4}

	cases := []struct {
		name      string
		spec      Spec
		sql       string
		want      []placement
		exchanged []exKey
	}{
		{
			name: "single table is a native singleton",
			spec: hash4,
			sql:  `SELECT taxon_id, COUNT(*) FROM taxonomy GROUP BY taxon_id`,
			want: []placement{{placeNative, 0}},
		},
		{
			name: "self-join on the stored key is partition-wise",
			spec: hash4,
			sql: `SELECT t.taxon_id, COUNT(*) FROM taxonomy t, taxonomy t2
			 WHERE t.nref_id = t2.nref_id GROUP BY t.taxon_id`,
			want: []placement{{placeNative, 0}, {placeNative, 0}},
		},
		{
			name: "cross-table join on both stored keys is partition-wise",
			spec: hash4,
			sql: `SELECT t.taxon_id, COUNT(*) FROM taxonomy t, organism o
			 WHERE t.nref_id = o.nref_id GROUP BY t.taxon_id`,
			want: []placement{{placeNative, 0}, {placeNative, 0}},
		},
		{
			name: "key-mismatched join exchanges both sides on the join column",
			spec: hash4,
			sql: `SELECT o.name, COUNT(*) FROM organism o, taxonomy t
			 WHERE o.taxon_id = t.taxon_id GROUP BY o.name`,
			want:      []placement{{placeExchange, 2}, {placeExchange, 1}},
			exchanged: []exKey{{"organism", 2}, {"taxonomy", 1}},
		},
		{
			name: "half-native join keeps the native side, exchanges the other",
			spec: Spec{Shards: 4, Keys: map[string]string{"organism": "taxon_id"}},
			sql: `SELECT o.name, COUNT(*) FROM organism o, taxonomy t
			 WHERE o.taxon_id = t.taxon_id GROUP BY o.name`,
			want:      []placement{{placeNative, 2}, {placeExchange, 1}},
			exchanged: []exKey{{"taxonomy", 1}},
		},
		{
			name: "redundant unaligned edge is a filter, not a conflict",
			spec: hash4,
			sql: `SELECT t.taxon_id, COUNT(*) FROM taxonomy t, organism o
			 WHERE t.nref_id = o.nref_id AND t.taxon_id = o.taxon_id GROUP BY t.taxon_id`,
			want: []placement{{placeNative, 0}, {placeNative, 0}},
		},
		{
			name: "largest component wins; the rest broadcasts",
			spec: hash4,
			sql: `SELECT t.taxon_id, COUNT(*) FROM taxonomy t, taxonomy t2, organism o, organism o2
			 WHERE t.nref_id = t2.nref_id AND o.nref_id = o2.nref_id GROUP BY t.taxon_id`,
			want: []placement{{placeNative, 0}, {placeNative, 0}, {placeBroadcast, 0}, {placeBroadcast, 0}},
		},
		{
			name: "conflicting edge leaves the loser's component broadcast",
			spec: hash4,
			sql: `SELECT t.lineage, COUNT(*) FROM source s, taxonomy t, taxonomy t2
			 WHERE t.nref_id = s.nref_id AND t.lineage = t2.lineage GROUP BY t.lineage`,
			want: []placement{{placeNative, 0}, {placeNative, 0}, {placeBroadcast, 0}},
		},
		{
			name: "range mode keeps same-table components native",
			spec: Spec{Shards: 4, Mode: ModeRange},
			sql: `SELECT t.taxon_id, COUNT(*) FROM taxonomy t, taxonomy t2
			 WHERE t.nref_id = t2.nref_id GROUP BY t.taxon_id`,
			want: []placement{{placeNative, 0}, {placeNative, 0}},
		},
		{
			name: "range mode exchanges cross-table components even on stored keys",
			spec: Spec{Shards: 4, Mode: ModeRange},
			sql: `SELECT t.taxon_id, COUNT(*) FROM taxonomy t, organism o
			 WHERE t.nref_id = o.nref_id GROUP BY t.taxon_id`,
			want:      []placement{{placeExchange, 0}, {placeExchange, 0}},
			exchanged: []exKey{{"taxonomy", 0}, {"organism", 0}},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, exchanged := placementsFor(t, coord, tc.spec, tc.sql)
			if len(got) != len(tc.want) {
				t.Fatalf("got %d placements, want %d", len(got), len(tc.want))
			}
			for o := range tc.want {
				if tc.want[o].kind == placeBroadcast {
					// Broadcast carries no meaningful column.
					if got[o].kind != placeBroadcast {
						t.Errorf("ordinal %d: kind = %v, want broadcast", o, got[o].kind)
					}
					continue
				}
				if got[o] != tc.want[o] {
					t.Errorf("ordinal %d: placement = %+v, want %+v", o, got[o], tc.want[o])
				}
			}
			if len(exchanged) != len(tc.exchanged) {
				t.Fatalf("exchanged = %v, want %v", exchanged, tc.exchanged)
			}
			for i := range tc.exchanged {
				if exchanged[i] != tc.exchanged[i] {
					t.Errorf("exchanged[%d] = %v, want %v", i, exchanged[i], tc.exchanged[i])
				}
			}
		})
	}
}

// TestExchangeBuckets checks the repartitioning itself: every coordinator
// row lands in exactly the bucket hashShard routes it to, the buckets
// conserve rows, and the per-topology cache returns the same buckets on
// the second request.
func TestExchangeBuckets(t *testing.T) {
	coord := testCoord(t)
	cl, err := New(coord, Spec{Shards: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	top, _ := cl.snapshot()
	coordPhys := coord.Physical()

	const col = 1 // taxonomy.taxon_id
	infos, err := top.exchange(coordPhys, "taxonomy", col)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 4 {
		t.Fatalf("exchange returned %d buckets, want 4", len(infos))
	}
	var total int64
	for i, info := range infos {
		total += info.Stats.Rows
		info.Heap.Scan(nil, func(_ storage.RowID, r val.Row) bool {
			if s := hashShard(r[col], 4); s != i {
				t.Errorf("row with key %v in bucket %d, hashShard says %d", r[col], i, s)
				return false
			}
			return true
		})
	}
	want := coordPhys.Table("taxonomy").Stats.Rows
	if total != want {
		t.Errorf("buckets hold %d rows, coordinator has %d", total, want)
	}

	again, err := top.exchange(coordPhys, "taxonomy", col)
	if err != nil {
		t.Fatal(err)
	}
	if again[0] != infos[0] {
		t.Error("second exchange call rebuilt the buckets instead of hitting the cache")
	}
}

// TestPartitionStatsSurface pins the what-if surface over partition
// statistics: PartitionPhysical exposes per-partition cardinalities that
// sum to the coordinator's, EstimateSharded costs one optimizer pass per
// partition, and the coordinator's own estimates — the recommendation
// input — do not move when the topology does.
func TestPartitionStatsSurface(t *testing.T) {
	coord := testCoord(t)
	q := clusterQueries[1]
	base, err := coord.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := New(coord, Spec{Shards: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range coord.Schema.Tables() {
		var sum int64
		for i := 0; i < 4; i++ {
			phys, err := cl.PartitionPhysical(i)
			if err != nil {
				t.Fatal(err)
			}
			ti := phys.Table(tab.Name)
			if ti == nil {
				t.Fatalf("partition %d has no table %s", i, tab.Name)
			}
			sum += ti.Stats.Rows
		}
		if want := coord.Physical().Table(tab.Name).Stats.Rows; sum != want {
			t.Errorf("%s: partition stats sum to %d rows, coordinator has %d", tab.Name, sum, want)
		}
	}
	if _, err := cl.PartitionPhysical(4); err == nil {
		t.Error("PartitionPhysical(4) on a 4-shard topology succeeded, want error")
	}
	if _, err := cl.PartitionPhysical(-1); err == nil {
		t.Error("PartitionPhysical(-1) succeeded, want error")
	}

	for _, sqlText := range []string{clusterQueries[1], clusterQueries[4]} {
		ms, err := cl.EstimateSharded(sqlText)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 4 {
			t.Fatalf("EstimateSharded returned %d measures, want 4", len(ms))
		}
		for i, m := range ms {
			if m.Seconds <= 0 {
				t.Errorf("partition %d estimate is %v seconds, want > 0", i, m.Seconds)
			}
		}
	}

	// Estimates (and therefore recommendations) are topology-invariant:
	// they always read the coordinator's full data.
	if err := cl.Reshard(8); err != nil {
		t.Fatal(err)
	}
	after, err := coord.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Seconds != base.Seconds {
		t.Errorf("coordinator estimate moved across Reshard: %v != %v", after.Seconds, base.Seconds)
	}

	// The 1-shard topology exposes the coordinator as partition 0.
	cl1, err := New(coord, Spec{Shards: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	phys0, err := cl1.PartitionPhysical(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := phys0.Table("taxonomy").Stats.Rows, coord.Physical().Table("taxonomy").Stats.Rows; got != want {
		t.Errorf("1-shard partition 0 has %d taxonomy rows, coordinator has %d", got, want)
	}
	if _, err := cl1.PartitionPhysical(1); err == nil {
		t.Error("PartitionPhysical(1) on a 1-shard topology succeeded, want error")
	}
	ms, err := cl1.EstimateSharded(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Seconds != base.Seconds {
		t.Errorf("1-shard EstimateSharded = %+v, want the coordinator estimate (%v s)", ms, base.Seconds)
	}
}

// TestShardedTransitionBuildSeconds pins the sharded transition-cost
// accounting: views are global (coordinator-serial), index builds divide
// across partitions, so the cluster pays ViewSeconds plus the slowest
// partition — strictly cheaper than the unsharded build, and exactly the
// unsharded build at one shard.
func TestShardedTransitionBuildSeconds(t *testing.T) {
	target := conf.Configuration{Name: "mixed"}
	target.Views = append(target.Views, conf.ViewDef{
		Name:       "v_tax",
		SQL:        "SELECT nref_id, taxon_id, lineage FROM taxonomy",
		BaseTables: []string{"taxonomy"},
	})
	target.AddIndex(conf.IndexDef{Table: "v_tax", Columns: []string{"c0", "c1"}})
	target.AddIndex(conf.IndexDef{Table: "taxonomy", Columns: []string{"taxon_id"}})
	target.AddIndex(conf.IndexDef{Table: "organism", Columns: []string{"taxon_id"}})

	flat, err := testCoord(t).Transition(target)
	if err != nil {
		t.Fatal(err)
	}
	if flat.ViewSeconds <= 0 {
		t.Fatalf("unsharded ViewSeconds = %v, want > 0 (view in target)", flat.ViewSeconds)
	}
	if flat.BuildSeconds <= flat.ViewSeconds {
		t.Fatalf("unsharded BuildSeconds %v not above ViewSeconds %v", flat.BuildSeconds, flat.ViewSeconds)
	}

	cl, err := New(testCoord(t), Spec{Shards: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := cl.Transition(target)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.ViewSeconds != flat.ViewSeconds {
		t.Errorf("sharded ViewSeconds %v != unsharded %v (views are coordinator-only)", sharded.ViewSeconds, flat.ViewSeconds)
	}
	if sharded.BuildSeconds <= sharded.ViewSeconds {
		t.Errorf("sharded BuildSeconds %v not above ViewSeconds %v", sharded.BuildSeconds, sharded.ViewSeconds)
	}
	if sharded.BuildSeconds >= flat.BuildSeconds {
		t.Errorf("sharded BuildSeconds %v not below unsharded %v (index builds divide across partitions)", sharded.BuildSeconds, flat.BuildSeconds)
	}

	cl1, err := New(testCoord(t), Spec{Shards: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	one, err := cl1.Transition(target)
	if err != nil {
		t.Fatal(err)
	}
	if one.BuildSeconds != flat.BuildSeconds {
		t.Errorf("1-shard BuildSeconds %v != unsharded %v", one.BuildSeconds, flat.BuildSeconds)
	}
}
