package shard

import (
	"sync"
	"testing"
)

// TestClusterRaceStress hammers one cluster from 32 goroutines mixing
// queries, live reshards, configuration transitions, pool changes,
// stats reads and dry-run autoscaler traffic. Correctness here is "no
// race, no error, every query's result non-nil"; byte-level determinism
// under a fixed topology is covered by the sequential tests. Run under
// `make race`.
func TestClusterRaceStress(t *testing.T) {
	coord := testCoord(t)
	cl, err := New(coord, Spec{Shards: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUpdater(cl, Bounds{MinShards: 1, MaxShards: 8, MinPool: 1, MaxPool: 16}, true)
	r := &Recommender{Rules: DefaultRules(10), Predict: cl.PredictSeconds}

	// The mix deliberately includes the exchange path: [0] is the
	// key-mismatched self-alias join (taxonomy⋈taxonomy on lineage) and
	// [4] joins organism⋈taxonomy on taxon_id, neither side native — both
	// repartition rows through the topology's exchange cache while other
	// goroutines Reshard underneath them.
	queries := []string{
		clusterQueries[0], clusterQueries[1], clusterQueries[2],
		clusterQueries[3], clusterQueries[4], clusterQueries[6],
	}
	const goroutines = 32
	const iters = 6

	errc := make(chan error, goroutines*iters)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) { // conflint:worker test stress goroutine, joined by wg.Wait below
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch g % 8 {
				case 0: // live reshard, alternating topology
					n := 2 + 2*((g+it)%2) // 2 or 4
					if err := cl.Reshard(n); err != nil {
						errc <- err
						return
					}
				case 1: // configuration churn
					var err error
					if it%2 == 0 {
						_, err = cl.Transition(coord.Current())
					} else {
						_, err = cl.Transition(coord.Current())
					}
					if err != nil {
						errc <- err
						return
					}
				case 2: // pool resizing + stats reads
					cl.SetPool(1 + (g+it)%8)
					_ = cl.Pool()
					_ = cl.Stats()
					_ = cl.PredictSeconds(4)
				case 3: // dry-run autoscaler traffic
					rec := r.Recommend(State{Shards: cl.Shards(), Pool: cl.Pool()},
						WindowMetrics{Window: it, Queries: 20, MeanSeconds: 25, GoalLevel: 0.5})
					_ = u.Apply(rec)
					_ = u.Audit()
				default: // concurrent queries
					q := queries[(g+it)%len(queries)]
					res, _, err := cl.Run(q, 0)
					if err != nil {
						errc <- err
						return
					}
					if res == nil {
						errc <- errNilResult
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

type nilResultError struct{}

func (nilResultError) Error() string { return "nil result without error" }

var errNilResult = nilResultError{}
