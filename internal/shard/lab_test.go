package shard

import (
	"strconv"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// TestFiveFamiliesByteIdenticalAcrossTopologies closes the determinism
// net over the paper's benchmark surface: for every query family on all
// three databases, results AND the coordinator-side goal report are
// byte-identical when served at 1, 2, 4 and 8 shards. Goal reports
// derive from the estimates E, which always read the full coordinator
// data — resharding must never perturb them.
func TestFiveFamiliesByteIdenticalAcrossTopologies(t *testing.T) {
	lab := bench.NewLab(0.0001, 7)
	lab.WorkloadSize = 6
	goal := core.Example2Goal()

	for _, family := range []string{"NREF2J", "NREF3J", "SkTH3J", "SkTH3Js", "UnTH3J"} {
		db, err := bench.DBOfFamily(family)
		if err != nil {
			t.Fatal(err)
		}
		coord := lab.Engine("B", db)
		sqls := lab.Workload("B", family).SQLs()
		if len(sqls) == 0 {
			t.Fatalf("%s: empty workload", family)
		}

		// goalReport renders the family's estimate-derived goal ledger.
		goalReport := func() string {
			ms := make([]core.Measure, len(sqls))
			for i, q := range sqls {
				m, err := coord.Estimate(q)
				if err != nil {
					t.Fatalf("%s: estimate %d: %v", family, i, err)
				}
				ms[i] = core.Measure{Seconds: m.Seconds, TimedOut: m.TimedOut}
			}
			return strconv.FormatFloat(goal.Satisfaction(core.NewCFC(ms, 0)), 'f', 6, 64)
		}

		base, err := New(coord, Spec{Shards: 1}, 1)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		want := make([]string, len(sqls))
		for i, q := range sqls {
			res, _, err := base.Run(q, 0)
			if err != nil {
				t.Fatalf("%s: baseline query %d: %v", family, i, err)
			}
			want[i] = render(res)
		}
		wantGoal := goalReport()

		for _, n := range []int{2, 4, 8} {
			cl, err := New(coord, Spec{Shards: n}, 4)
			if err != nil {
				t.Fatalf("%s/%d: %v", family, n, err)
			}
			// Pool width only changes how many partitions execute
			// concurrently, never which rows a partition sees or how
			// partials merge — results must be byte-identical at any
			// worker-pool size, including a fully serialized pool of 1.
			for _, pool := range []int{1, 4, 16} {
				cl.SetPool(pool)
				for i, q := range sqls {
					res, _, err := cl.Run(q, 0)
					if err != nil {
						t.Fatalf("%s/%d/pool=%d: query %d: %v", family, n, pool, i, err)
					}
					if got := render(res); got != want[i] {
						t.Errorf("%s/%d/pool=%d: query %d result differs from 1-shard baseline", family, n, pool, i)
					}
				}
			}
			if got := goalReport(); got != wantGoal {
				t.Errorf("%s/%d: goal report %s differs from baseline %s", family, n, got, wantGoal)
			}
		}
	}
}
