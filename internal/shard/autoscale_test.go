package shard

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// ruleFixture is one golden case: a window, the expected fire/hold
// vector over DefaultRules(10), and the expected proposal (empty rule =
// hold).
type ruleFixture struct {
	name     string
	cur      State
	w        WindowMetrics
	fired    []bool // scale-out-goal, scale-out-latency, scale-out-backlog, scale-in-idle
	proposal string // winning rule name, "" = hold
	toShards int
	toPool   int
}

var ruleFixtures = []ruleFixture{
	{
		name:     "goal-violation-scales-out",
		cur:      State{Shards: 2, Pool: 4},
		w:        WindowMetrics{Window: 1, Queries: 20, MeanSeconds: 5, GoalLevel: 0.50, QueueDepth: 0},
		fired:    []bool{true, false, false, false},
		proposal: "scale-out-goal", toShards: 4, toPool: 4,
	},
	{
		name:     "latency-scales-out",
		cur:      State{Shards: 2, Pool: 4},
		w:        WindowMetrics{Window: 2, Queries: 20, MeanSeconds: 25, GoalLevel: 0.95, QueueDepth: 0},
		fired:    []bool{false, true, false, false},
		proposal: "scale-out-latency", toShards: 4, toPool: 4,
	},
	{
		name:     "backlog-widens-pool",
		cur:      State{Shards: 2, Pool: 4},
		w:        WindowMetrics{Window: 3, Queries: 20, MeanSeconds: 5, GoalLevel: 0.95, QueueDepth: 12},
		fired:    []bool{false, false, true, false},
		proposal: "scale-out-backlog", toShards: 2, toPool: 8,
	},
	{
		name:     "idle-scales-in",
		cur:      State{Shards: 4, Pool: 8},
		w:        WindowMetrics{Window: 4, Queries: 20, MeanSeconds: 1, GoalLevel: 1.0, QueueDepth: 0},
		fired:    []bool{false, false, false, true},
		proposal: "scale-in-idle", toShards: 2, toPool: 4,
	},
	{
		name:     "calm-window-holds",
		cur:      State{Shards: 2, Pool: 4},
		w:        WindowMetrics{Window: 5, Queries: 20, MeanSeconds: 5, GoalLevel: 0.95, QueueDepth: 2},
		fired:    []bool{false, false, false, false},
		proposal: "",
	},
	{
		name:     "min-queries-guards-noise",
		cur:      State{Shards: 2, Pool: 4},
		w:        WindowMetrics{Window: 6, Queries: 3, MeanSeconds: 25, GoalLevel: 0.10, QueueDepth: 0},
		fired:    []bool{false, false, false, false},
		proposal: "",
	},
	{
		name:     "goal-beats-latency-first-fire-wins",
		cur:      State{Shards: 2, Pool: 4},
		w:        WindowMetrics{Window: 7, Queries: 20, MeanSeconds: 25, GoalLevel: 0.50, QueueDepth: 12},
		fired:    []bool{true, true, true, false},
		proposal: "scale-out-goal", toShards: 4, toPool: 4,
	},
	{
		name: "fired-noop-falls-through",
		// scale-in at the 1/1 floor is a no-op, so the fired rule yields
		// no proposal.
		cur:      State{Shards: 1, Pool: 1},
		w:        WindowMetrics{Window: 8, Queries: 20, MeanSeconds: 1, GoalLevel: 1.0, QueueDepth: 0},
		fired:    []bool{false, false, false, true},
		proposal: "",
	},
}

// TestScalingRuleDecisions covers every DefaultRule's fire and hold
// decision against golden fixtures, including rule priority and the
// no-op fall-through.
func TestScalingRuleDecisions(t *testing.T) {
	rules := DefaultRules(10)
	if len(rules) != 4 {
		t.Fatalf("DefaultRules has %d rules, fixtures assume 4", len(rules))
	}
	r := &Recommender{Rules: rules}
	for _, fx := range ruleFixtures {
		t.Run(fx.name, func(t *testing.T) {
			rec := r.Recommend(fx.cur, fx.w)
			if rec.Window != fx.w.Window {
				t.Errorf("Window = %d, want %d", rec.Window, fx.w.Window)
			}
			if len(rec.Decisions) != len(rules) {
				t.Fatalf("%d decisions, want one per rule (%d)", len(rec.Decisions), len(rules))
			}
			for i, d := range rec.Decisions {
				if d.Rule != rules[i].Name {
					t.Errorf("decision %d is for %q, want %q (audit must cover every rule in order)", i, d.Rule, rules[i].Name)
				}
				if d.Fired != fx.fired[i] {
					t.Errorf("rule %s fired=%v, want %v", d.Rule, d.Fired, fx.fired[i])
				}
			}
			if fx.proposal == "" {
				if rec.Proposal != nil {
					t.Fatalf("proposal = %+v, want hold", rec.Proposal)
				}
				return
			}
			if rec.Proposal == nil {
				t.Fatalf("no proposal, want %s", fx.proposal)
			}
			p := rec.Proposal
			if p.Rule != fx.proposal || p.ToShards != fx.toShards || p.ToPool != fx.toPool {
				t.Errorf("proposal %s → shards %d pool %d, want %s → shards %d pool %d",
					p.Rule, p.ToShards, p.ToPool, fx.proposal, fx.toShards, fx.toPool)
			}
			if p.FromShards != fx.cur.Shards || p.FromPool != fx.cur.Pool {
				t.Errorf("proposal from %d/%d, want current %d/%d", p.FromShards, p.FromPool, fx.cur.Shards, fx.cur.Pool)
			}
			if p.Reason == "" {
				t.Error("proposal has no reason")
			}
		})
	}
}

// TestRecommendationGolden pins the full JSON shape of one
// recommendation — the audit contract downstream consumers parse.
func TestRecommendationGolden(t *testing.T) {
	r := &Recommender{Rules: DefaultRules(10), Predict: func(n int) float64 { return 16.0 / float64(n) }}
	rec := r.Recommend(State{Shards: 2, Pool: 4}, WindowMetrics{Window: 9, Queries: 20, MeanSeconds: 5, GoalLevel: 0.5})
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(rec); err != nil {
		t.Fatal(err)
	}
	got := strings.TrimRight(buf.String(), "\n")
	want := `{"window":9,"decisions":[` +
		`{"rule":"scale-out-goal","metric":"goal_level","value":0.5,"op":"<","threshold":0.9,"fired":true},` +
		`{"rule":"scale-out-latency","metric":"mean_seconds","value":5,"op":">","threshold":10,"fired":false},` +
		`{"rule":"scale-out-backlog","metric":"queue_depth","value":0,"op":">","threshold":8,"fired":false},` +
		`{"rule":"scale-in-idle","metric":"mean_seconds","value":5,"op":"<","threshold":2.5,"fired":false}],` +
		`"proposal":{"rule":"scale-out-goal","from_shards":2,"to_shards":4,"from_pool":4,"to_pool":4,` +
		`"reason":"goal_level < 0.9 (observed 0.5)","predicted_seconds":4}}`
	if got != want {
		t.Errorf("recommendation JSON:\ngot  %s\nwant %s", got, want)
	}
}

// TestUpdaterBoundsRefusal: proposals outside the declared bounds are
// refused — not clamped, not applied — and the refusal is audited.
func TestUpdaterBoundsRefusal(t *testing.T) {
	coord := testCoord(t)
	cl, err := New(coord, Spec{Shards: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUpdater(cl, Bounds{MinShards: 2, MaxShards: 4, MinPool: 1, MaxPool: 8}, false)

	cases := []struct {
		name string
		p    Proposal
	}{
		{"above-max-shards", Proposal{Rule: "scale-out-goal", FromShards: 4, ToShards: 8, FromPool: 4, ToPool: 4}},
		{"below-min-shards", Proposal{Rule: "scale-in-idle", FromShards: 4, ToShards: 1, FromPool: 4, ToPool: 4}},
		{"above-max-pool", Proposal{Rule: "scale-out-backlog", FromShards: 4, ToShards: 4, FromPool: 4, ToPool: 16}},
	}
	for _, tc := range cases {
		rec := Recommendation{Window: 1, Proposal: &tc.p}
		out := u.Apply(rec)
		if out.Action != ActionRefuse {
			t.Errorf("%s: action %q, want refuse", tc.name, out.Action)
		}
		if out.Reason == "" {
			t.Errorf("%s: refusal has no reason", tc.name)
		}
	}
	if cl.Shards() != 4 || cl.Pool() != 4 {
		t.Errorf("cluster mutated by refused proposals: shards=%d pool=%d", cl.Shards(), cl.Pool())
	}
	audit := u.Audit()
	if len(audit) != len(cases) {
		t.Fatalf("%d audit records, want %d", len(audit), len(cases))
	}
	for i, a := range audit {
		if a.Action != ActionRefuse || a.Proposal == nil {
			t.Errorf("audit %d: %+v, want refusal with proposal attached", i, a)
		}
	}
}

// TestUpdaterDryRun: in dry-run mode every proposal is audited and
// nothing is applied.
func TestUpdaterDryRun(t *testing.T) {
	coord := testCoord(t)
	cl, err := New(coord, Spec{Shards: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUpdater(cl, Bounds{MinShards: 1, MaxShards: 8, MinPool: 1, MaxPool: 16}, true)
	r := &Recommender{Rules: DefaultRules(10), Predict: cl.PredictSeconds}

	rec := r.Recommend(State{Shards: cl.Shards(), Pool: cl.Pool()},
		WindowMetrics{Window: 1, Queries: 20, MeanSeconds: 5, GoalLevel: 0.5})
	if rec.Proposal == nil {
		t.Fatal("expected a proposal")
	}
	out := u.Apply(rec)
	if out.Action != ActionDryRun {
		t.Fatalf("action %q, want dry-run", out.Action)
	}
	if cl.Shards() != 2 || cl.Pool() != 4 {
		t.Errorf("dry-run mutated the cluster: shards=%d pool=%d", cl.Shards(), cl.Pool())
	}
	if st := cl.Stats(); st.Reshards != 0 {
		t.Errorf("dry-run resharded %d times", st.Reshards)
	}
	audit := u.Audit()
	if len(audit) != 1 || audit[0].Proposal == nil || audit[0].Proposal.ToShards != 4 {
		t.Errorf("audit = %+v, want one dry-run record proposing 4 shards", audit)
	}

	// A hold window is audited too.
	hold := u.Apply(r.Recommend(State{Shards: 2, Pool: 4},
		WindowMetrics{Window: 2, Queries: 20, MeanSeconds: 5, GoalLevel: 0.95, QueueDepth: 1}))
	if hold.Action != ActionHold {
		t.Errorf("calm window action %q, want hold", hold.Action)
	}
}

// TestUpdaterCooldown drives a fixed window sequence through an updater
// with a 2-window cooldown and pins the resulting audit trail — the
// hysteresis contract: actions start the cooldown, proposals inside it
// are held with ActionCooldown, refusals and holds never start one.
func TestUpdaterCooldown(t *testing.T) {
	propose := func(w, toShards int) Recommendation {
		return Recommendation{Window: w, Proposal: &Proposal{
			Rule: "scale-out-goal", FromShards: 2, ToShards: toShards, FromPool: 4, ToPool: 4,
			Reason: "goal_level < 0.9 (observed 0.5)",
		}}
	}
	u := NewUpdater(nil, Bounds{MinShards: 1, MaxShards: 8, MinPool: 1, MaxPool: 16}, true)
	u.Cooldown = 2

	seq := []struct {
		rec  Recommendation
		want string
	}{
		{propose(1, 4), ActionDryRun},           // action: cooldown starts at window 1
		{propose(2, 4), ActionCooldown},         // 2-1 <= 2: held
		{Recommendation{Window: 3}, ActionHold}, // no proposal: plain hold, no cooldown reset
		{propose(3, 4), ActionCooldown},         // 3-1 <= 2: still held
		{propose(4, 4), ActionDryRun},           // 4-1 > 2: cooldown expired, acts again
		{propose(5, 16), ActionRefuse},          // out of bounds: refused even though cooling
		{propose(5, 99), ActionRefuse},          // refusals precede the cooldown check in the audit
		{propose(7, 4), ActionDryRun},           // 7-4 > 2: refusals did not extend the cooldown
		{propose(8, 4), ActionCooldown},         // the window-7 action did
	}
	for i, s := range seq {
		if out := u.Apply(s.rec); out.Action != s.want {
			t.Errorf("step %d (window %d): action %q, want %q", i, s.rec.Window, out.Action, s.want)
		}
	}

	// Golden fixture: the full audit-trail action/reason sequence is the
	// conformance contract downstream dashboards parse.
	audit := u.Audit()
	wantActions := []string{
		ActionDryRun, ActionCooldown, ActionHold, ActionCooldown,
		ActionDryRun, ActionRefuse, ActionRefuse, ActionDryRun, ActionCooldown,
	}
	if len(audit) != len(wantActions) {
		t.Fatalf("%d audit records, want %d", len(audit), len(wantActions))
	}
	for i, a := range audit {
		if a.Action != wantActions[i] {
			t.Errorf("audit %d: action %q, want %q", i, a.Action, wantActions[i])
		}
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(audit[1]); err != nil {
		t.Fatal(err)
	}
	b := strings.TrimRight(buf.String(), "\n")
	want := `{"window":2,"action":"cooldown","rule":"scale-out-goal",` +
		`"reason":"cooling down: last action at window 1, cooldown 2 windows",` +
		`"proposal":{"rule":"scale-out-goal","from_shards":2,"to_shards":4,"from_pool":4,"to_pool":4,` +
		`"reason":"goal_level < 0.9 (observed 0.5)","predicted_seconds":0}}`
	if b != want {
		t.Errorf("cooldown audit JSON:\ngot  %s\nwant %s", b, want)
	}

	// Cooldown zero (the default) disables hysteresis entirely.
	u2 := NewUpdater(nil, Bounds{MaxShards: 8, MaxPool: 16}, true)
	for w := 1; w <= 3; w++ {
		if out := u2.Apply(propose(w, 4)); out.Action != ActionDryRun {
			t.Errorf("window %d without cooldown: action %q, want dry-run", w, out.Action)
		}
	}

	// A live (non-dry-run) apply starts the cooldown and the held window
	// leaves the cluster untouched.
	coord := testCoord(t)
	cl, err := New(coord, Spec{Shards: 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	u3 := NewUpdater(cl, Bounds{MinShards: 1, MaxShards: 8, MinPool: 1, MaxPool: 16}, false)
	u3.Cooldown = 1
	if out := u3.Apply(propose(1, 4)); out.Action != ActionApply {
		t.Fatalf("live apply: %+v", out)
	}
	if out := u3.Apply(Recommendation{Window: 2, Proposal: &Proposal{
		Rule: "scale-in-idle", FromShards: 4, ToShards: 2, FromPool: 4, ToPool: 4,
	}}); out.Action != ActionCooldown {
		t.Fatalf("cooling live proposal: %+v", out)
	}
	if cl.Shards() != 4 {
		t.Errorf("cluster at %d shards, want 4 (cooldown must not apply)", cl.Shards())
	}
	if st := cl.Stats(); st.Reshards != 1 {
		t.Errorf("Reshards = %d, want 1", st.Reshards)
	}
}

// TestUpdaterApplies: outside dry-run, an in-bounds proposal reshards
// the live cluster and results stay identical.
func TestUpdaterApplies(t *testing.T) {
	coord := testCoord(t)
	cl, err := New(coord, Spec{Shards: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := clusterQueries[2]
	before, _, err := cl.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	u := NewUpdater(cl, Bounds{MinShards: 1, MaxShards: 8, MinPool: 1, MaxPool: 16}, false)
	out := u.Apply(Recommendation{Window: 1, Proposal: &Proposal{
		Rule: "scale-out-goal", FromShards: 2, ToShards: 4, FromPool: 2, ToPool: 4,
	}})
	if out.Action != ActionApply || out.Err != "" {
		t.Fatalf("apply: %+v", out)
	}
	if cl.Shards() != 4 || cl.Pool() != 4 {
		t.Fatalf("cluster at %d shards / pool %d, want 4/4", cl.Shards(), cl.Pool())
	}
	after, _, err := cl.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if render(before) != render(after) {
		t.Error("result changed across an applied scale action")
	}
}
