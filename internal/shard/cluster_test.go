package shard

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/exec"
)

// testCoord builds a small NREF coordinator with the 1C configuration
// applied, so partitions carry real single-column B+-trees.
func testCoord(t *testing.T) *engine.Engine {
	t.Helper()
	e := engine.New(catalog.NREF(), 0.0001, engine.SystemB())
	if err := datagen.GenerateNREF(e, datagen.NREFOptions{ScaleFactor: 0.0001, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	e.CollectStats()
	if _, err := e.ApplyConfig(engine.OneColumnConfiguration(e)); err != nil {
		t.Fatal(err)
	}
	return e
}

// clusterQueries exercise single tables, selections, self-joins
// (partition-wise on the shared key), key-mismatched joins (the
// row-exchange path), 2- and 3-way joins, IN subqueries and every
// aggregate kind.
var clusterQueries = []string{
	`SELECT t.lineage, COUNT(DISTINCT t2.nref_id)
	 FROM source s, taxonomy t, taxonomy t2
	 WHERE t.nref_id = s.nref_id AND t.lineage = t2.lineage
	   AND s.p_name = 'Simian Virus 40'
	 GROUP BY t.lineage`,
	`SELECT t.taxon_id, COUNT(*)
	 FROM taxonomy t, organism o
	 WHERE t.nref_id = o.nref_id AND t.nref_id = 'NF0000041'
	 GROUP BY t.taxon_id`,
	`SELECT taxon_id, COUNT(*) FROM taxonomy GROUP BY taxon_id`,
	`SELECT p_name, length FROM protein WHERE length < 100`,
	`SELECT o.name, COUNT(*) FROM organism o, taxonomy t
	 WHERE o.taxon_id = t.taxon_id AND o.ordinal = 7 GROUP BY o.name`,
	`SELECT r.taxon_id, COUNT(*) FROM taxonomy r, organism s
	 WHERE r.nref_id = s.nref_id
	   AND r.nref_id IN (SELECT nref_id FROM taxonomy GROUP BY nref_id HAVING COUNT(*) < 4)
	   AND s.nref_id IN (SELECT nref_id FROM organism GROUP BY nref_id HAVING COUNT(*) < 4)
	 GROUP BY r.taxon_id`,
	`SELECT source, MIN(taxon_id), MAX(taxon_id), SUM(p_id), AVG(p_id), COUNT(p_id)
	 FROM source GROUP BY source`,
	// Purely self-joined FROM list: both sides read the same stored
	// partition (partition-wise join on the shared key) and must still be
	// byte-identical at every topology.
	`SELECT t.taxon_id, COUNT(*) FROM taxonomy t, taxonomy t2
	 WHERE t.nref_id = t2.nref_id GROUP BY t.taxon_id`,
}

// render canonicalizes a result for byte comparison.
func render(res *exec.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Cols, ","))
	sb.WriteByte('\n')
	for _, r := range res.Rows {
		sb.WriteString(r.Key())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestResultsByteIdenticalAcrossTopologies is the core determinism
// claim: every query's result is byte-identical at shard counts
// {1,2,4,8} × pool widths {1,4,16}, in both partitioning modes, and a
// fixed topology's simulated cost does not depend on the pool width.
func TestResultsByteIdenticalAcrossTopologies(t *testing.T) {
	coord := testCoord(t)
	base, err := New(coord, Spec{Shards: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(clusterQueries))
	for i, q := range clusterQueries {
		res, _, err := base.Run(q, 0)
		if err != nil {
			t.Fatalf("baseline query %d: %v", i, err)
		}
		want[i] = render(res)
	}

	for _, mode := range []Mode{ModeHash, ModeRange} {
		for _, n := range []int{2, 4, 8} {
			cl, err := New(coord, Spec{Shards: n, Mode: mode}, 1)
			if err != nil {
				t.Fatalf("%s/%d: %v", mode, n, err)
			}
			secs := make([]float64, len(clusterQueries))
			for _, pool := range []int{1, 4, 16} {
				cl.SetPool(pool)
				for i, q := range clusterQueries {
					res, m, err := cl.Run(q, 0)
					if err != nil {
						t.Fatalf("%s/%d/pool%d query %d: %v", mode, n, pool, i, err)
					}
					if got := render(res); got != want[i] {
						t.Errorf("%s/%d/pool%d query %d: result differs from 1-shard baseline\ngot:\n%s\nwant:\n%s",
							mode, n, pool, i, got, want[i])
					}
					if pool == 1 {
						secs[i] = m.Seconds
					} else if m.Seconds != secs[i] {
						t.Errorf("%s/%d query %d: seconds %v at pool %d != %v at pool 1 (simulated cost must not depend on fan-out)",
							mode, n, i, m.Seconds, pool, secs[i])
					}
				}
			}
		}
	}
}

// TestFallbackPaths pins the one remaining coordinator-serial fallback
// — plans that read a materialized view — and that self-joins, formerly
// a fallback, now run partition-parallel without one.
func TestFallbackPaths(t *testing.T) {
	// System C is the profile that plans over materialized views. The
	// configuration holds ONLY the view and its index, so the view is the
	// sole access structure and the optimizer must pick it for the
	// selective lookup.
	coord := engine.New(catalog.NREF(), 0.0001, engine.SystemC())
	if err := datagen.GenerateNREF(coord, datagen.NREFOptions{ScaleFactor: 0.0001, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	coord.CollectStats()
	cfg := conf.Configuration{Name: "view-only"}
	cfg.Views = append(cfg.Views, conf.ViewDef{
		Name:       "v_tax",
		SQL:        "SELECT nref_id, taxon_id, lineage FROM taxonomy",
		BaseTables: []string{"taxonomy"},
	})
	cfg.AddIndex(conf.IndexDef{Table: "v_tax", Columns: []string{"c0", "c1"}})
	if _, err := coord.ApplyConfig(cfg); err != nil {
		t.Fatal(err)
	}
	cl, err := New(coord, Spec{Shards: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}

	viewQ := `SELECT taxon_id, COUNT(*) FROM taxonomy WHERE nref_id = 'NF0000041' GROUP BY taxon_id`
	wantRes, wantM, err := coord.Run(viewQ, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, gotM, err := cl.Run(viewQ, 0)
	if err != nil {
		t.Fatal(err)
	}
	if render(gotRes) != render(wantRes) {
		t.Errorf("fallback result differs from engine for %q", viewQ)
	}
	if gotM.Seconds != wantM.Seconds {
		t.Errorf("fallback seconds %v != engine seconds %v for %q", gotM.Seconds, wantM.Seconds, viewQ)
	}
	if st := cl.Stats(); st.Fallbacks != 1 {
		t.Errorf("Fallbacks = %d, want 1", st.Fallbacks)
	}

	// Self-joins run partition-wise now (both ordinals read the same
	// stored partition on the shared key): no fallback, identical bytes.
	coordB := testCoord(t)
	clB, err := New(coordB, Spec{Shards: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	selfJoin := `SELECT t.taxon_id, COUNT(*) FROM taxonomy t, taxonomy t2
	 WHERE t.nref_id = t2.nref_id GROUP BY t.taxon_id`
	wantRes2, _, err := coordB.Run(selfJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	gotRes2, _, err := clB.Run(selfJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if render(gotRes2) != render(wantRes2) {
		t.Errorf("self-join result differs from engine for %q", selfJoin)
	}
	if st := clB.Stats(); st.Fallbacks != 0 {
		t.Errorf("self-join Fallbacks = %d, want 0 (partition-wise path)", st.Fallbacks)
	}
}

// TestTransitionPropagates checks that a configuration change reaches
// the partitions (base-table structures only) and results stay identical
// afterwards.
func TestTransitionPropagates(t *testing.T) {
	coord := testCoord(t)
	cl, err := New(coord, Spec{Shards: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := clusterQueries[1]
	before, _, err := cl.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}

	target := engine.PConfiguration(coord)
	if _, err := cl.Transition(target); err != nil {
		t.Fatal(err)
	}
	cl.mu.RLock()
	shards := cl.top.shards
	cl.mu.RUnlock()
	for i, sh := range shards {
		if got := len(sh.Current().Indexes); got != len(baseOnly(coord.Schema, target).Indexes) {
			t.Errorf("shard %d has %d indexes after transition", i, got)
		}
	}
	after, _, err := cl.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if render(before) != render(after) {
		t.Error("result changed across Transition (indexes must not affect results)")
	}
}

// TestReshardLive checks resharding swaps topologies without changing
// results, and rejects invalid counts.
func TestReshardLive(t *testing.T) {
	coord := testCoord(t)
	cl, err := New(coord, Spec{Shards: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := clusterQueries[0]
	before, _, err := cl.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Reshard(0); err == nil {
		t.Error("Reshard(0) succeeded, want error")
	}
	if err := cl.Reshard(8); err != nil {
		t.Fatal(err)
	}
	if got := cl.Shards(); got != 8 {
		t.Fatalf("Shards() = %d after Reshard(8)", got)
	}
	after, _, err := cl.Run(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if render(before) != render(after) {
		t.Error("result changed across Reshard")
	}
	if st := cl.Stats(); st.Reshards != 1 {
		t.Errorf("Reshards = %d, want 1", st.Reshards)
	}
}
