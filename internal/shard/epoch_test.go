package shard

import (
	"testing"

	"repro/internal/engine"
)

// TestReshardInvalidatesWhatIfCache is the pinned regression test for
// the satellite fix: a reshard (or any scale transition) must bump the
// coordinator's configEpoch so that cached H estimates never survive a
// topology change. Before the fix, a what-if session warmed before a
// reshard would keep serving relevance-cache hits afterwards.
func TestReshardInvalidatesWhatIfCache(t *testing.T) {
	coord := testCoord(t)
	cl, err := New(coord, Spec{Shards: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}

	q, err := coord.AnalyzeSQL(clusterQueries[1])
	if err != nil {
		t.Fatal(err)
	}
	w := coord.NewWhatIf()
	hypo := engine.PConfiguration(coord)
	cold, err := w.Estimate(q, hypo)
	if err != nil {
		t.Fatal(err)
	}

	// Warm: the second estimate must be a relevance-cache hit.
	engine.ResetWhatIfCounters()
	warm, err := w.Estimate(q, hypo)
	if err != nil {
		t.Fatal(err)
	}
	if calls, hits := engine.WhatIfCounters(); calls != 1 || hits != 1 {
		t.Fatalf("warm estimate: calls=%d hits=%d, want 1/1", calls, hits)
	}
	if warm.Seconds != cold.Seconds {
		t.Fatalf("warm estimate %v != cold %v", warm.Seconds, cold.Seconds)
	}

	// Reshard, then estimate again: the topology change must have
	// invalidated the session (a miss), while the value itself is
	// unchanged — the coordinator's data never moves.
	if err := cl.Reshard(4); err != nil {
		t.Fatal(err)
	}
	engine.ResetWhatIfCounters()
	after, err := w.Estimate(q, hypo)
	if err != nil {
		t.Fatal(err)
	}
	if calls, hits := engine.WhatIfCounters(); calls != 1 || hits != 0 {
		t.Fatalf("post-reshard estimate: calls=%d hits=%d, want a miss (1/0)", calls, hits)
	}
	if after.Seconds != cold.Seconds {
		t.Fatalf("post-reshard estimate %v != cold %v (coordinator data is unchanged)", after.Seconds, cold.Seconds)
	}

	// SetPool is topology-neutral: no invalidation.
	engine.ResetWhatIfCounters()
	cl.SetPool(8)
	if _, err := w.Estimate(q, hypo); err != nil {
		t.Fatal(err)
	}
	if calls, hits := engine.WhatIfCounters(); calls != 1 || hits != 1 {
		t.Fatalf("post-SetPool estimate: calls=%d hits=%d, want a hit (1/1)", calls, hits)
	}
}
