// Package shard partitions the engine's heap tables (and the B+-trees
// built over them) across N race-safe engine partitions and executes
// queries partition-parallel over the bounded core.Runner pool, merging
// partial results through a deterministic reduction so that query output
// is byte-identical at any shard count (the PR 1/PR 5 discipline:
// indexed fan-out, sequential merge order, total result ordering).
//
// Partitioning model: every base table is split row-wise by a partition
// key — hash (FNV-1a over the key value's canonical encoding) or key
// range (boundaries at the value quantiles of the coordinator's data).
// Per query, a placement planner (exchange.go) co-partitions one
// connected component of the join graph: ordinals whose partition
// column is their table's stored key read their partition natively
// (partition-wise join), the rest are repartitioned by a cross-shard
// row exchange on the join column, and every table outside the
// component is broadcast (reads the coordinator's full data). Equal
// join keys therefore land on the same shard, so the union of the
// per-shard results is exactly the unpartitioned result; aggregates
// merge through open group states (exec.RunPartial /
// exec.MergePartials).
//
// The package also houses the elastic resource autoscaler (autoscale.go):
// a recommender deriving shard-count and pool-width proposals from
// sliding-window metrics via boolean scaling rules, and an updater
// applying them through live resharding — with dry-run and min/max
// safety bounds.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/val"
)

// Mode selects the partitioning function.
type Mode string

const (
	// ModeHash assigns a row to FNV-1a(key) mod N.
	ModeHash Mode = "hash"
	// ModeRange assigns rows by key range, with boundaries placed at the
	// N-quantiles of the coordinator's key values at build time.
	ModeRange Mode = "range"
)

// Spec declares a cluster topology: how many shards and how rows are
// assigned to them. The zero value means one shard (unpartitioned).
type Spec struct {
	// Shards is the partition count; values below 1 normalize to 1.
	Shards int
	// Mode is the partitioning function; empty normalizes to ModeHash.
	Mode Mode
	// Keys optionally overrides the partition column per table (keyed by
	// lower-case table name). Tables not listed use their primary key's
	// first column, or column 0 for keyless tables.
	Keys map[string]string
}

// normalized returns the spec with defaults applied.
func (s Spec) normalized() Spec {
	if s.Shards < 1 {
		s.Shards = 1
	}
	if s.Mode == "" {
		s.Mode = ModeHash
	}
	return s
}

// validate rejects specs the cluster cannot build.
func (s Spec) validate(schema *catalog.Schema) error {
	if s.Mode != ModeHash && s.Mode != ModeRange {
		return fmt.Errorf("shard: unknown mode %q", s.Mode)
	}
	for name, col := range s.Keys {
		t := schema.Table(name)
		if t == nil {
			return fmt.Errorf("shard: partition key for unknown table %q", name)
		}
		if t.ColumnIndex(col) < 0 {
			return fmt.Errorf("shard: table %s has no partition column %q", name, col)
		}
	}
	return nil
}

// keyOffset resolves the partition-key column offset for a table.
func (s Spec) keyOffset(t *catalog.Table) int {
	if col, ok := s.Keys[strings.ToLower(t.Name)]; ok {
		if ci := t.ColumnIndex(col); ci >= 0 {
			return ci
		}
	}
	if pk := t.PrimaryKeyOffsets(); len(pk) > 0 && pk[0] >= 0 {
		return pk[0]
	}
	return 0
}

// partitioner assigns one table's rows to shards. Built once per table at
// cluster construction; immutable afterwards (read concurrently without
// locking).
type partitioner struct {
	mode Mode
	n    int
	col  int
	// bounds are the n-1 ascending range boundaries (ModeRange): a value v
	// lands on the first shard i with v < bounds[i], else shard n-1.
	bounds []val.Value
}

// newPartitioner derives a table's partitioner from the coordinator's
// rows (ModeRange samples every key to place quantile boundaries).
func newPartitioner(s Spec, t *catalog.Table, rows []val.Row) *partitioner {
	p := &partitioner{mode: s.Mode, n: s.Shards, col: s.keyOffset(t)}
	if s.Mode != ModeRange || s.Shards <= 1 {
		return p
	}
	keys := make([]val.Value, 0, len(rows))
	for _, r := range rows {
		if !r[p.col].IsNull() {
			keys = append(keys, r[p.col])
		}
	}
	if len(keys) == 0 {
		return p // empty table: every (future) row lands on shard 0
	}
	sort.Slice(keys, func(i, j int) bool { return val.Compare(keys[i], keys[j]) < 0 })
	p.bounds = make([]val.Value, 0, s.Shards-1)
	for i := 1; i < s.Shards; i++ {
		p.bounds = append(p.bounds, keys[i*len(keys)/s.Shards])
	}
	return p
}

// locate returns the shard index for a row. NULL partition keys land on
// shard 0 in every mode.
func (p *partitioner) locate(r val.Row) int {
	if p.n <= 1 {
		return 0
	}
	v := r[p.col]
	if v.IsNull() {
		return 0
	}
	if p.mode == ModeRange {
		i := sort.Search(len(p.bounds), func(i int) bool { return val.Compare(v, p.bounds[i]) < 0 })
		return i
	}
	return hashShard(v, p.n)
}

// hashShard is the one hash-partitioning function of the package: FNV-1a
// over the value's canonical row encoding, mod n, with NULL pinned to
// shard 0. The stored hash partitions and the per-query row exchange
// must agree on it — a native side and an exchanged side of a join
// co-locate equal keys only because both route through hashShard.
func hashShard(v val.Value, n int) int {
	if n <= 1 || v.IsNull() {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(val.Row{v}.Key()))
	return int(h.Sum64() % uint64(n))
}
