package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/val"
)

// This file is the cross-shard placement layer: given a query's join
// graph, decide per table ordinal whether a shard reads its stored
// partition (partition-wise join), a repartitioned exchange bucket
// (cross-shard row exchange), or the coordinator's full data
// (broadcast) — and build the exchange buckets.
//
// Correctness argument, shared by every placement mix: the planner
// co-partitions exactly one connected component of the join graph so
// that every result tuple's component rows carry pairwise co-located
// join keys (they are connected by a spanning set of aligned equi-join
// edges, and both stored hash partitions and exchange buckets route
// through hashShard). A result tuple's component rows therefore live on
// exactly one shard; every non-component row is broadcast, so the tuple
// is produced on that shard and no other. The union of the per-shard
// results — for any per-shard plan shape the optimizer picks — is the
// unpartitioned result, row for row.

// placeKind says how one query table ordinal is read on a shard.
type placeKind int

const (
	// placeBroadcast reads the coordinator's full table (the default for
	// ordinals outside the co-partitioned component).
	placeBroadcast placeKind = iota
	// placeNative reads the shard's stored partition, with its
	// partitioned indexes.
	placeNative
	// placeExchange reads a repartitioned bucket: the table's rows
	// rehashed on the join column, with no indexes.
	placeExchange
)

// placement is one ordinal's read strategy; col is the partition column
// for native and exchange placements.
type placement struct {
	kind placeKind
	col  int
}

// exKey identifies one repartitioning of one table.
type exKey struct {
	table string // lower-case table name
	col   int
}

// topology is one immutable generation of the cluster's partition
// state: the spec, the partition engines built for it, and the
// exchange-bucket cache keyed against exactly those shard counts.
// Queries snapshot a *topology under the cluster's mu and use it
// lock-free; Reshard publishes a fresh topology, so a query that began
// against the old generation never joins old partitions with
// new-generation buckets.
type topology struct {
	spec   Spec
	shards []*engine.Engine // nil for a 1-shard topology

	exMu sync.Mutex
	ex   map[exKey][]*plan.TableInfo // conflint:guardedby exMu
}

// planPlacements assigns a placement to every table ordinal of the
// query. It greedily grows aligned components over the join graph: an
// equi-join edge a.x = b.y is aligned when it can fix a's partition
// column to x and b's to y without contradicting an earlier edge.
// Edges that keep both sides on their stored partition keys are taken
// first, then half-native edges, then the rest (stable by join index),
// so the cheapest placements win ties deterministically. The component
// with the most coordinator rows is co-partitioned; everything else
// broadcasts.
//
// Unaligned edges inside the chosen component are fine: co-location
// only needs the aligned edges to span the component, and the
// executor still evaluates every join predicate (the extra edges act
// as filters).
//
// Native (stored-partition) reads require the ordinal's assigned
// column to be its table's partition key — and, in range mode, that
// the whole component is one table self-joined on that key, because
// range bounds are per-table quantiles and never co-locate across
// tables (nor with hash-routed exchange buckets).
func planPlacements(q *sql.Query, coord *plan.Physical, spec Spec) ([]placement, []exKey) {
	n := len(q.Tables)
	assigned := make([]int, n) // partition column per ordinal, -1 = unset
	parent := make([]int, n)
	nativeCol := make([]int, n)
	for i := range parent {
		parent[i] = i
		assigned[i] = -1
		nativeCol[i] = spec.keyOffset(q.Tables[i].Table)
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}

	type edge struct {
		a, b, ca, cb int
		rank         int // 0 native-native, 1 half-native, 2 neither
		idx          int
	}
	edges := make([]edge, 0, len(q.Joins))
	for idx, j := range q.Joins {
		if j.L.Tab == j.R.Tab {
			continue // intra-ordinal predicate, not a join edge
		}
		e := edge{a: j.L.Tab, b: j.R.Tab, ca: j.L.Col, cb: j.R.Col, idx: idx}
		switch {
		case e.ca == nativeCol[e.a] && e.cb == nativeCol[e.b]:
			e.rank = 0
		case e.ca == nativeCol[e.a] || e.cb == nativeCol[e.b]:
			e.rank = 1
		default:
			e.rank = 2
		}
		edges = append(edges, e)
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].rank != edges[j].rank {
			return edges[i].rank < edges[j].rank
		}
		return edges[i].idx < edges[j].idx
	})
	for _, e := range edges {
		if (assigned[e.a] != -1 && assigned[e.a] != e.ca) ||
			(assigned[e.b] != -1 && assigned[e.b] != e.cb) {
			continue // conflicts with an earlier (higher-priority) edge
		}
		if find(e.a) != find(e.b) {
			parent[find(e.a)] = find(e.b)
		}
		assigned[e.a], assigned[e.b] = e.ca, e.cb
	}

	// Weigh components by total coordinator rows; ties break to the
	// lowest member ordinal so the choice is deterministic.
	weight := make(map[int]int64, n)
	minOrd := make(map[int]int, n)
	for o := 0; o < n; o++ {
		r := find(o)
		if ti := coord.Table(q.Tables[o].Table.Name); ti != nil {
			weight[r] += ti.Heap.NumRows()
		}
		if cur, ok := minOrd[r]; !ok || o < cur {
			minOrd[r] = o
		}
	}
	bestRoot := find(0)
	for o := 1; o < n; o++ {
		r := find(o)
		if weight[r] > weight[bestRoot] ||
			(weight[r] == weight[bestRoot] && minOrd[r] < minOrd[bestRoot]) {
			bestRoot = r
		}
	}

	members := make([]int, 0, n)
	allNative, sameTable := true, true
	for o := 0; o < n; o++ {
		if find(o) != bestRoot {
			continue
		}
		if assigned[o] == -1 {
			assigned[o] = nativeCol[o] // singleton: partition on the stored key
		}
		members = append(members, o)
		if assigned[o] != nativeCol[o] {
			allNative = false
		}
		if q.Tables[o].Table.Name != q.Tables[members[0]].Table.Name {
			sameTable = false
		}
	}

	out := make([]placement, n)
	seen := make(map[exKey]bool, len(members))
	exchanged := make([]exKey, 0, len(members))
	for _, o := range members {
		native := assigned[o] == nativeCol[o]
		if spec.Mode == ModeRange {
			// Range bounds are per-table quantiles: stored partitions
			// co-locate across ordinals only when the whole component is
			// the same table on its own key.
			native = allNative && sameTable
		}
		if native {
			out[o] = placement{kind: placeNative, col: assigned[o]}
			continue
		}
		out[o] = placement{kind: placeExchange, col: assigned[o]}
		k := exKey{table: strings.ToLower(q.Tables[o].Table.Name), col: assigned[o]}
		if !seen[k] {
			seen[k] = true
			exchanged = append(exchanged, k)
		}
	}
	return out, exchanged
}

// noIndexes marks an ordinal as having data but no indexes; a non-nil
// empty override stops plan.IndexesAt from falling back to the
// coordinator's (full-data) index list.
var noIndexes = []*plan.IndexInfo{}

// shardPhysical assembles the physical description shard i plans
// against: the name maps stay the coordinator's full data (broadcast
// reads and IN-subquery set estimation are global), while per-ordinal
// overrides bind native placements to the partition engine's tables and
// indexes and exchange placements to the repartitioned buckets.
func (tp *topology) shardPhysical(coord *plan.Physical, q *sql.Query, pl []placement, i int) (*plan.Physical, error) {
	h := &plan.Physical{
		Schema:     coord.Schema,
		Tables:     coord.Tables,
		Indexes:    coord.Indexes,
		Mem:        coord.Mem,
		Model:      coord.Model,
		TabTables:  make([]*plan.TableInfo, len(q.Tables)),
		TabIndexes: make([][]*plan.IndexInfo, len(q.Tables)),
	}
	var shardPhys *plan.Physical
	for o, p := range pl {
		name := q.Tables[o].Table.Name
		switch p.kind {
		case placeNative:
			if shardPhys == nil {
				shardPhys = tp.shards[i].Physical()
			}
			info := shardPhys.Table(name)
			if info == nil {
				return nil, fmt.Errorf("shard: partition %d has no table %s", i, name)
			}
			h.TabTables[o] = info
			if ixs := shardPhys.IndexesOn(name); ixs != nil {
				h.TabIndexes[o] = ixs
			} else {
				h.TabIndexes[o] = noIndexes
			}
		case placeExchange:
			infos, err := tp.exchange(coord, name, p.col)
			if err != nil {
				return nil, err
			}
			h.TabTables[o] = infos[i]
			h.TabIndexes[o] = noIndexes
		}
	}
	return h, nil
}

// exchange returns the per-shard TableInfos of the named table
// repartitioned by hashShard on column col, building and caching the
// buckets on first use. The cache lives on the topology, so a reshard
// can never pair stale buckets with fresh partitions. Building is
// wall-clock work only; the simulated cost of an exchange is billed per
// query through billExchange.
func (tp *topology) exchange(coord *plan.Physical, name string, col int) ([]*plan.TableInfo, error) {
	key := exKey{table: strings.ToLower(name), col: col}
	tp.exMu.Lock()
	defer tp.exMu.Unlock()
	if infos, ok := tp.ex[key]; ok {
		return infos, nil
	}
	src := coord.Table(name)
	if src == nil {
		return nil, fmt.Errorf("shard: no coordinator table %s to exchange", name)
	}
	n := tp.spec.Shards
	heaps := make([]*storage.Heap, n)
	for i := range heaps {
		heaps[i] = storage.NewHeap(src.Table)
	}
	var insErr error
	src.Heap.Scan(nil, func(_ storage.RowID, r val.Row) bool {
		if _, err := heaps[hashShard(r[col], n)].Insert(nil, r); err != nil {
			insErr = err
			return false
		}
		return true
	})
	if insErr != nil {
		return nil, insErr
	}
	infos := make([]*plan.TableInfo, n)
	for i, h := range heaps {
		infos[i] = &plan.TableInfo{Table: src.Table, Heap: h, Stats: stats.Collect(h)}
	}
	if tp.ex == nil {
		tp.ex = make(map[exKey][]*plan.TableInfo)
	}
	tp.ex[key] = infos
	return infos, nil
}

// billExchange adds one shard's share of repartitioning a table to the
// meter: read 1/n of the source pages, hash and route 1/n of the rows.
// The share is a fixed function of the coordinator's table statistics
// and the shard count — never of cache state or pool width — so the
// sharded simulated cost stays byte-reproducible at any parallelism.
func billExchange(m *cost.Meter, src *plan.TableInfo, n int) {
	if src == nil || n < 1 {
		return
	}
	nn := int64(n)
	pages := src.Heap.Pages()
	rows := src.Stats.Rows
	m.SeqPages += (pages + nn - 1) / nn
	m.CPUOps += (rows + nn - 1) / nn * 2
	m.Rows += (rows + nn - 1) / nn
}
