package exec

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/val"
)

// runNode pushes the rows produced by n into out. Rows are flat layout
// rows; each operator populates the segments of the tables it covers.
func (e *executor) runNode(n plan.Node, out func(val.Row) error) error {
	switch n := n.(type) {
	case *plan.SeqScan:
		return e.runSeqScan(n, out)
	case *plan.IndexScan:
		return e.runIndexScan(n, out)
	case *plan.ViewScan:
		return e.runViewScan(n, out)
	case *plan.HashJoin:
		return e.runHashJoin(n, out)
	case *plan.IndexJoin:
		return e.runIndexJoin(n, out)
	case *plan.MergeJoin:
		return e.runMergeJoin(n, out)
	case *plan.HashAgg:
		return e.runHashAgg(n, out)
	case *plan.Project:
		return e.runProject(n, out)
	}
	return fmt.Errorf("exec: unknown plan node %T", n)
}

// tabsOf returns the table ordinals whose segments node n populates.
func tabsOf(n plan.Node) []int {
	switch n := n.(type) {
	case *plan.SeqScan:
		return []int{n.Tab}
	case *plan.IndexScan:
		return []int{n.Tab}
	case *plan.ViewScan:
		return append([]int(nil), n.Tabs...)
	case *plan.HashJoin:
		return append(tabsOf(n.Build), tabsOf(n.Probe)...)
	case *plan.IndexJoin:
		return append(tabsOf(n.Outer), n.Tab)
	case *plan.MergeJoin:
		return []int{n.L.Tab, n.R.Tab}
	case *plan.HashAgg:
		return tabsOf(n.Input)
	case *plan.Project:
		return tabsOf(n.Input)
	}
	return nil
}

// passes evaluates pushed-down filters and IN filters on a flat row.
func (e *executor) passes(r val.Row, filters []plan.Filter, ins []plan.InFilter) bool {
	for _, f := range filters {
		e.ctx.Meter.CPUOps++
		if !f.Eval(r) {
			return false
		}
	}
	for _, f := range ins {
		e.ctx.Meter.CPUOps++
		if !e.sets[f.SetID].contains(r[f.Offset]) {
			return false
		}
	}
	return true
}

func (e *executor) runSeqScan(n *plan.SeqScan, out func(val.Row) error) error {
	base := e.p.Layout.Base[n.Tab]
	width := e.p.Layout.Width
	var innerErr error
	n.Info.Heap.Scan(&e.ctx.Meter, func(_ storage.RowID, r val.Row) bool {
		if err := e.ctx.check(); err != nil {
			innerErr = err
			return false
		}
		flat := make(val.Row, width)
		copy(flat[base:], r)
		if !e.passes(flat, n.Filters, n.Ins) {
			return true
		}
		if err := out(flat); err != nil {
			innerErr = err
			return false
		}
		return true
	})
	return innerErr
}

// emitIndexMatch materializes a flat row for one index entry, either from
// the key columns (covering) or by fetching the heap row.
func (e *executor) emitIndexMatch(tab int, info *plan.TableInfo, ix *plan.IndexInfo,
	cur *storage.Cursor, covering bool, key val.Row, rid int64,
	filters []plan.Filter, ins []plan.InFilter, out func(val.Row) error) error {

	base := e.p.Layout.Base[tab]
	flat := make(val.Row, e.p.Layout.Width)
	if covering {
		for j, c := range ix.Cols {
			flat[base+c] = key[j]
		}
	} else {
		r, err := cur.Fetch(&e.ctx.Meter, storage.RowID(rid))
		if err != nil {
			return err
		}
		copy(flat[base:], r)
	}
	if !e.passes(flat, filters, ins) {
		return nil
	}
	return out(flat)
}

func (e *executor) runIndexScan(n *plan.IndexScan, out func(val.Row) error) error {
	if n.Index.Tree == nil {
		return fmt.Errorf("exec: plan uses hypothetical index %s", n.Index.Def.Name())
	}
	cur := n.Info.Heap.NewCursor()
	e.ctx.Meter.FixedRand += int64(n.Index.Height)

	var entries int64
	defer func() {
		if epl := n.Index.EntriesPerLeaf; epl > 0 {
			e.ctx.Meter.SeqPages += entries / epl
		}
	}()

	// With RidSort the matching rids are gathered first and the heap is
	// read in page order afterwards (list prefetch); otherwise each match
	// is fetched (or emitted from the key, if covering) as it streams out
	// of the index.
	ridSort := n.RidSort && !n.Covering
	ridList := make([]storage.RowID, 0, 256)
	base := e.p.Layout.Base[n.Tab]
	width := e.p.Layout.Width

	consume := func(it interface {
		Next() (val.Row, int64, bool)
	}) error {
		for {
			k, rid, ok := it.Next()
			if !ok {
				return nil
			}
			entries++
			e.ctx.Meter.Rows++
			if err := e.ctx.check(); err != nil {
				return err
			}
			if ridSort {
				ridList = append(ridList, storage.RowID(rid))
				continue
			}
			if err := e.emitIndexMatch(n.Tab, n.Info, n.Index, cur, n.Covering, k, rid, n.Filters, n.Ins, out); err != nil {
				return err
			}
		}
	}
	flushRidList := func() error {
		if !ridSort {
			return nil
		}
		e.ctx.Meter.CPUOps += int64(len(ridList))
		var innerErr error
		err := n.Info.Heap.FetchMany(&e.ctx.Meter, ridList, func(_ storage.RowID, r val.Row) bool {
			if err := e.ctx.check(); err != nil {
				innerErr = err
				return false
			}
			flat := make(val.Row, width)
			copy(flat[base:], r)
			if !e.passes(flat, n.Filters, n.Ins) {
				return true
			}
			if err := out(flat); err != nil {
				innerErr = err
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		return innerErr
	}

	if n.DriveInSet >= 0 {
		// One probe per IN-set value.
		for _, v := range e.sets[n.DriveInSet].vals {
			e.ctx.Meter.RandPages++
			if err := consume(n.Index.Tree.SeekPrefix(val.Row{v})); err != nil {
				return err
			}
		}
		return flushRidList()
	}

	prefix := make(val.Row, len(n.EqVals))
	copy(prefix, n.EqVals)
	switch {
	case n.Range != nil:
		lo, hi := prefix, prefix
		loIncl, hiIncl := true, true
		bound := append(prefix.Clone(), n.Range.Value)
		switch n.Range.Op {
		case ">":
			lo, loIncl = bound, false
		case ">=":
			lo = bound
		case "<":
			hi, hiIncl = bound, false
		case "<=":
			hi = bound
		}
		if len(prefix) == 0 {
			// Pure range: unbound side is nil.
			if n.Range.Op == ">" || n.Range.Op == ">=" {
				hi = nil
			} else {
				lo = nil
			}
		}
		e.ctx.Meter.FixedRand++
		if err := consume(n.Index.Tree.SeekRange(lo, hi, loIncl, hiIncl)); err != nil {
			return err
		}
		return flushRidList()
	case len(prefix) > 0:
		e.ctx.Meter.FixedRand++
		if err := consume(n.Index.Tree.SeekPrefix(prefix)); err != nil {
			return err
		}
		return flushRidList()
	default:
		// Full covering leaf scan.
		if err := consume(n.Index.Tree.Scan()); err != nil {
			return err
		}
		return flushRidList()
	}
}

func (e *executor) runViewScan(n *plan.ViewScan, out func(val.Row) error) error {
	width := e.p.Layout.Width
	emit := func(viewRow val.Row) error {
		flat := make(val.Row, width)
		for i, off := range n.ColOffsets {
			if off >= 0 {
				flat[off] = viewRow[i]
			}
		}
		if !e.passes(flat, n.Filters, n.Ins) {
			return nil
		}
		return out(flat)
	}

	if n.Index != nil {
		if n.Index.Tree == nil {
			return fmt.Errorf("exec: plan uses hypothetical view index %s", n.Index.Def.Name())
		}
		cur := n.View.Heap.NewCursor()
		e.ctx.Meter.FixedRand += int64(n.Index.Height) + 1
		it := n.Index.Tree.SeekPrefix(append(val.Row(nil), n.EqVals...))
		var entries int64
		for {
			_, rid, ok := it.Next()
			if !ok {
				break
			}
			entries++
			e.ctx.Meter.Rows++
			if err := e.ctx.check(); err != nil {
				return err
			}
			r, err := cur.Fetch(&e.ctx.Meter, storage.RowID(rid))
			if err != nil {
				return err
			}
			if err := emit(r); err != nil {
				return err
			}
		}
		if epl := n.Index.EntriesPerLeaf; epl > 0 {
			e.ctx.Meter.SeqPages += entries / epl
		}
		return nil
	}

	var innerErr error
	n.View.Heap.Scan(&e.ctx.Meter, func(_ storage.RowID, r val.Row) bool {
		if err := e.ctx.check(); err != nil {
			innerErr = err
			return false
		}
		if err := emit(r); err != nil {
			innerErr = err
			return false
		}
		return true
	})
	return innerErr
}

func (e *executor) runHashJoin(n *plan.HashJoin, out func(val.Row) error) error {
	buildTabs := tabsOf(n.Build)

	// Build phase.
	table := make(map[string][]val.Row)
	var buildRows int64
	err := e.runNode(n.Build, func(r val.Row) error {
		e.ctx.Meter.CPUOps++
		buildRows++
		k := keyOf(r, n.BuildKeys)
		table[k] = append(table[k], r)
		return nil
	})
	if err != nil {
		return err
	}

	// Probe phase.
	var probeRows int64
	err = e.runNode(n.Probe, func(r val.Row) error {
		e.ctx.Meter.CPUOps++
		probeRows++
		if err := e.ctx.check(); err != nil {
			return err
		}
		for _, b := range table[keyOf(r, n.ProbeKeys)] {
			merged := r.Clone()
			copySegments(merged, b, buildTabs, e.p.Layout)
			if len(n.BuildKeys) == 0 {
				e.ctx.Meter.CPUOps++ // cross-product work
			}
			if err := out(merged); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Spill accounting, mirroring the optimizer's rule with actual counts.
	buildBytes := buildRows * int64(n.BuildWidth)
	if float64(buildBytes)*scaleOf(e.ctx.Model) > float64(memOf(e)) {
		probeBytes := probeRows * int64(n.BuildWidth)
		pg := cost.PagesForBytes(buildBytes) + cost.PagesForBytes(probeBytes)
		e.ctx.Meter.WritePage += pg
		e.ctx.Meter.SeqPages += pg
	}
	return nil
}

// keyOf renders the join key of a row; empty key lists (cross joins) map
// every row to the same bucket.
func keyOf(r val.Row, offsets []int) string {
	if len(offsets) == 0 {
		return ""
	}
	return r.Project(offsets).Key()
}

// copySegments copies the table segments of src for the given ordinals
// into dst.
func copySegments(dst, src val.Row, tabs []int, l plan.Layout) {
	for _, t := range tabs {
		lo := l.Base[t]
		hi := l.Width
		if t+1 < len(l.Base) {
			hi = l.Base[t+1]
		}
		copy(dst[lo:hi], src[lo:hi])
	}
}

func (e *executor) runIndexJoin(n *plan.IndexJoin, out func(val.Row) error) error {
	if n.Index.Tree == nil {
		return fmt.Errorf("exec: plan uses hypothetical index %s", n.Index.Def.Name())
	}
	cur := n.Info.Heap.NewCursor()
	e.ctx.Meter.FixedRand += int64(n.Index.Height)
	base := e.p.Layout.Base[n.Tab]

	var entries int64
	err := e.runNode(n.Outer, func(outer val.Row) error {
		e.ctx.Meter.CPUOps += 2
		if err := e.ctx.check(); err != nil {
			return err
		}
		key := make(val.Row, len(n.Binds))
		for i, b := range n.Binds {
			if b.Const != nil {
				key[i] = *b.Const
			} else {
				key[i] = outer[b.OuterOffset]
			}
		}
		e.ctx.Meter.RandPages++
		it := n.Index.Tree.SeekPrefix(key)
		for {
			k, rid, ok := it.Next()
			if !ok {
				return nil
			}
			entries++
			e.ctx.Meter.Rows++
			if err := e.ctx.check(); err != nil {
				return err
			}
			merged := outer.Clone()
			if n.Covering {
				for j, c := range n.Index.Cols {
					merged[base+c] = k[j]
				}
			} else {
				r, err := cur.Fetch(&e.ctx.Meter, storage.RowID(rid))
				if err != nil {
					return err
				}
				copy(merged[base:], r)
			}
			ok2 := true
			for _, pe := range n.PostEq {
				e.ctx.Meter.CPUOps++
				if !val.Equal(merged[pe.A], merged[pe.B]) {
					ok2 = false
					break
				}
			}
			if !ok2 || !e.passes(merged, n.Filters, n.Ins) {
				continue
			}
			if err := out(merged); err != nil {
				return err
			}
		}
	})
	if epl := n.Index.EntriesPerLeaf; epl > 0 {
		e.ctx.Meter.SeqPages += entries / epl
	}
	return err
}

// aggState accumulates one group.
type aggState struct {
	groupVals val.Row
	counts    []int64
	sums      []float64
	mins      []val.Value
	maxs      []val.Value
	distinct  []map[string]bool
}

func (e *executor) runHashAgg(n *plan.HashAgg, out func(val.Row) error) error {
	groups := make(map[string]*aggState)
	var inRows int64
	err := e.runNode(n.Input, func(r val.Row) error {
		e.ctx.Meter.CPUOps++
		inRows++
		if err := e.ctx.check(); err != nil {
			return err
		}
		gv := r.Project(n.Groups)
		k := gv.Key()
		st := groups[k]
		if st == nil {
			st = &aggState{
				groupVals: gv,
				counts:    make([]int64, len(n.Aggs)),
				sums:      make([]float64, len(n.Aggs)),
				mins:      make([]val.Value, len(n.Aggs)),
				maxs:      make([]val.Value, len(n.Aggs)),
				distinct:  make([]map[string]bool, len(n.Aggs)),
			}
			groups[k] = st
		}
		for i, a := range n.Aggs {
			if a.Kind == sql.AggCountStar {
				st.counts[i]++
				continue
			}
			v := r[a.Offset]
			if v.IsNull() {
				continue
			}
			st.counts[i]++
			st.sums[i] += v.AsFloat()
			if st.counts[i] == 1 || val.Compare(v, st.mins[i]) < 0 {
				st.mins[i] = v
			}
			if st.counts[i] == 1 || val.Compare(v, st.maxs[i]) > 0 {
				st.maxs[i] = v
			}
			if a.Kind == sql.AggCountDistinct {
				if st.distinct[i] == nil {
					st.distinct[i] = make(map[string]bool)
				}
				st.distinct[i][val.Row{v}.Key()] = true
				e.ctx.Meter.CPUOps++
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Spill accounting.
	bytes := int64(len(groups)) * int64(n.GroupWidth)
	if n.GroupWidth > 0 && float64(bytes)*scaleOf(e.ctx.Model) > float64(memOf(e)) {
		pg := cost.PagesForBytes(bytes)
		e.ctx.Meter.WritePage += pg
		e.ctx.Meter.SeqPages += pg
	}

	for _, st := range groups {
		rowOut := make(val.Row, len(n.Groups)+len(n.Aggs))
		copy(rowOut, st.groupVals)
		for i, a := range n.Aggs {
			rowOut[len(n.Groups)+i] = finishAgg(a.Kind, st, i)
		}
		if err := out(rowOut); err != nil {
			return err
		}
	}
	return nil
}

// finishAgg produces the final value of aggregate i for a group.
func finishAgg(kind sql.AggKind, st *aggState, i int) val.Value {
	switch kind {
	case sql.AggCountStar, sql.AggCountCol:
		return val.Int(st.counts[i])
	case sql.AggCountDistinct:
		return val.Int(int64(len(st.distinct[i])))
	case sql.AggSum:
		return val.Float(st.sums[i])
	case sql.AggMin:
		if st.counts[i] == 0 {
			return val.Null()
		}
		return st.mins[i]
	case sql.AggMax:
		if st.counts[i] == 0 {
			return val.Null()
		}
		return st.maxs[i]
	case sql.AggAvg:
		if st.counts[i] == 0 {
			return val.Null()
		}
		return val.Float(st.sums[i] / float64(st.counts[i]))
	}
	return val.Null()
}

func (e *executor) runProject(n *plan.Project, out func(val.Row) error) error {
	return e.runNode(n.Input, func(r val.Row) error {
		return out(r.Project(n.Offsets))
	})
}

// keyStream iterates one merge-join side's index leaves, yielding entries
// whose join-key value passes the side's key-level predicates.
type keyStream struct {
	e    *executor
	side *plan.MergeSide
	it   *btree.Iter

	key val.Row
	rid int64
	ok  bool
}

func (e *executor) newKeyStream(side *plan.MergeSide) *keyStream {
	e.ctx.Meter.FixedRand += int64(side.Index.Height)
	return &keyStream{e: e, side: side, it: side.Index.Tree.Scan()}
}

// next advances to the next passing entry.
func (s *keyStream) next() error {
	for {
		k, rid, ok := s.it.Next()
		if !ok {
			s.ok = false
			return nil
		}
		s.e.ctx.Meter.Rows++
		if err := s.e.ctx.check(); err != nil {
			return err
		}
		v := k[0]
		if v.IsNull() {
			continue
		}
		pass := true
		for _, p := range s.side.KeyPreds {
			s.e.ctx.Meter.CPUOps++
			if !sql.CompareOp(p.Op, v, p.Value) {
				pass = false
				break
			}
		}
		if pass {
			for _, p := range s.side.KeyIns {
				s.e.ctx.Meter.CPUOps++
				if !s.e.sets[p.SetID].contains(v) {
					pass = false
					break
				}
			}
		}
		if !pass {
			continue
		}
		s.key, s.rid, s.ok = k, rid, true
		return nil
	}
}

// close bills the leaf pages consumed.
func (s *keyStream) close() {
	if epl := s.side.Index.EntriesPerLeaf; epl > 0 {
		s.e.ctx.Meter.SeqPages += s.it.Scanned() / epl
	}
}

// runMergeJoin merges the two ordered, key-filtered index streams,
// collects the surviving (left, right) pairs per equal key run, fetches
// each non-covered side's surviving rows rid-sorted, and emits the merged
// flat rows. Covering sides carry their key columns through the pair and
// never touch the heap.
func (e *executor) runMergeJoin(n *plan.MergeJoin, out func(val.Row) error) error {
	ls := e.newKeyStream(&n.L)
	rs := e.newKeyStream(&n.R)
	defer ls.close()
	defer rs.close()
	if err := ls.next(); err != nil {
		return err
	}
	if err := rs.next(); err != nil {
		return err
	}

	type entry struct {
		rid int64
		key val.Row // retained only for covering sides
	}
	type pairEnt struct {
		l, r entry
	}
	// Duplicate runs are usually short; starting capacity amortizes the
	// per-key growth across the whole merge.
	pairs := make([]pairEnt, 0, 64)
	lRun := make([]entry, 0, 16)
	rRun := make([]entry, 0, 16)
	keep := func(side *plan.MergeSide, key val.Row, rid int64) entry {
		if side.Covering {
			return entry{rid: rid, key: key.Clone()}
		}
		return entry{rid: rid}
	}
	for ls.ok && rs.ok {
		c := val.Compare(ls.key[0], rs.key[0])
		switch {
		case c < 0:
			if err := ls.next(); err != nil {
				return err
			}
		case c > 0:
			if err := rs.next(); err != nil {
				return err
			}
		default:
			v := ls.key[0]
			lRun = lRun[:0]
			for ls.ok && val.Equal(ls.key[0], v) {
				lRun = append(lRun, keep(&n.L, ls.key, ls.rid))
				if err := ls.next(); err != nil {
					return err
				}
			}
			rRun = rRun[:0]
			for rs.ok && val.Equal(rs.key[0], v) {
				rRun = append(rRun, keep(&n.R, rs.key, rs.rid))
				if err := rs.next(); err != nil {
					return err
				}
			}
			for _, l := range lRun {
				for _, r := range rRun {
					e.ctx.Meter.CPUOps++
					pairs = append(pairs, pairEnt{l, r})
				}
				if err := e.ctx.check(); err != nil {
					return err
				}
			}
		}
	}

	// Materialize each non-covered side's surviving rows, rid-sorted.
	fetchSide := func(side *plan.MergeSide, ridOf func(pairEnt) int64) (map[int64]val.Row, error) {
		if side.Covering {
			return nil, nil
		}
		uniq := make(map[int64]bool, len(pairs))
		for _, p := range pairs {
			uniq[ridOf(p)] = true
		}
		ids := make([]storage.RowID, 0, len(uniq))
		for id := range uniq {
			ids = append(ids, storage.RowID(id))
		}
		e.ctx.Meter.CPUOps += int64(len(ids))
		rows := make(map[int64]val.Row, len(ids))
		var innerErr error
		err := side.Info.Heap.FetchMany(&e.ctx.Meter, ids, func(id storage.RowID, r val.Row) bool {
			if err := e.ctx.check(); err != nil {
				innerErr = err
				return false
			}
			rows[int64(id)] = r
			return true
		})
		if err != nil {
			return nil, err
		}
		return rows, innerErr
	}
	lRows, err := fetchSide(&n.L, func(p pairEnt) int64 { return p.l.rid })
	if err != nil {
		return err
	}
	rRows, err := fetchSide(&n.R, func(p pairEnt) int64 { return p.r.rid })
	if err != nil {
		return err
	}

	fill := func(flat val.Row, side *plan.MergeSide, rows map[int64]val.Row, ent entry) {
		base := e.p.Layout.Base[side.Tab]
		if side.Covering {
			for j, c := range side.Index.Cols {
				flat[base+c] = ent.key[j]
			}
			return
		}
		copy(flat[base:], rows[ent.rid])
	}
	width := e.p.Layout.Width
	for _, p := range pairs {
		if err := e.ctx.check(); err != nil {
			return err
		}
		flat := make(val.Row, width)
		fill(flat, &n.L, lRows, p.l)
		fill(flat, &n.R, rRows, p.r)
		if !e.passes(flat, n.L.PostFilters, n.L.PostIns) ||
			!e.passes(flat, n.R.PostFilters, n.R.PostIns) {
			continue
		}
		if err := out(flat); err != nil {
			return err
		}
	}
	return nil
}
