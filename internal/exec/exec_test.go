package exec_test

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/optimizer"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/val"
)

// world is a tiny single-schema physical design for executor tests:
//
//	t(k BIGINT, g BIGINT mod 10, s VARCHAR)   2000 rows
//	u(k BIGINT mod 50, v BIGINT)              300 rows
type world struct {
	schema *catalog.Schema
	phys   *plan.Physical
}

func newWorld(t *testing.T, indexes ...conf.IndexDef) *world {
	t.Helper()
	schema := catalog.NewSchema("w")
	tt := catalog.MustTable("t", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Domain: "k", Indexable: true},
		{Name: "g", Type: catalog.TypeInt, Indexable: true},
		{Name: "s", Type: catalog.TypeString, Indexable: true, AvgWidth: 8},
	}, []string{"k"})
	uu := catalog.MustTable("u", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Domain: "k", Indexable: true},
		{Name: "v", Type: catalog.TypeInt, Indexable: true},
	}, nil)
	schema.MustAdd(tt)
	schema.MustAdd(uu)

	ht := storage.NewHeap(tt)
	for i := 0; i < 2000; i++ {
		if _, err := ht.Insert(nil, val.Row{
			val.Int(int64(i)), val.Int(int64(i % 10)), val.String(string(rune('a' + i%5))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	hu := storage.NewHeap(uu)
	for i := 0; i < 300; i++ {
		if _, err := hu.Insert(nil, val.Row{val.Int(int64(i % 50)), val.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	phys := &plan.Physical{
		Schema: schema,
		Tables: map[string]*plan.TableInfo{
			"t": {Table: tt, Heap: ht, Stats: stats.Collect(ht)},
			"u": {Table: uu, Heap: hu, Stats: stats.Collect(hu)},
		},
		Indexes: make(map[string][]*plan.IndexInfo),
		Mem:     1 << 40,
		Model:   cost.Desktop2005(),
	}
	for _, d := range indexes {
		key := strings.ToLower(d.Table)
		h := phys.Tables[key].Heap
		cols := make([]int, len(d.Columns))
		for i, c := range d.Columns {
			cols[i] = h.Table.ColumnIndex(c)
		}
		tree := btree.New(false)
		var ndv int64
		last := val.Row(nil)
		h.Scan(nil, func(id storage.RowID, r val.Row) bool {
			key := r.Project(cols)
			if err := tree.Insert(key, int64(id)); err != nil {
				t.Fatal(err)
			}
			return true
		})
		it := tree.Scan()
		for {
			k, _, ok := it.Next()
			if !ok {
				break
			}
			if last == nil || val.CompareRows(last, k) != 0 {
				ndv++
			}
			last = k.Clone()
		}
		ndvs := make([]int64, len(cols))
		for i := range ndvs {
			ndvs[i] = ndv // upper bound; fine for tests
		}
		phys.Indexes[key] = append(phys.Indexes[key], &plan.IndexInfo{
			Def: d, Cols: cols, Tree: tree, KeyNDV: ndvs,
			Height: tree.Height(), LeafPages: tree.LeafPages(),
			EntriesPerLeaf: tree.EntriesPerLeafPage(), Bytes: tree.Bytes(),
		})
	}
	return &world{schema: schema, phys: phys}
}

func (w *world) run(t *testing.T, text string, opts optimizer.Options, limit float64) (*exec.Result, *exec.Ctx, error) {
	t.Helper()
	stmt, err := sql.ParseSelect(text)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sql.Analyze(w.schema, stmt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := optimizer.Optimize(w.phys, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &exec.Ctx{Model: w.phys.Model, LimitSeconds: limit}
	res, err := exec.Run(p, ctx)
	return res, ctx, err
}

func TestAggregatesMatchHandComputation(t *testing.T) {
	w := newWorld(t)
	res, _, err := w.run(t, `SELECT g, COUNT(*), SUM(k), MIN(k), MAX(k), AVG(k), COUNT(DISTINCT s)
		FROM t GROUP BY g`, optimizer.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// Group g: k in {g, g+10, ..., g+1990}: 200 values.
	for _, r := range res.Rows {
		g := r[0].I
		if r[1].I != 200 {
			t.Errorf("g=%d count=%d", g, r[1].I)
		}
		wantSum := float64(200*g) + 10*float64(199*200/2)
		if r[2].F != wantSum {
			t.Errorf("g=%d sum=%v want %v", g, r[2].F, wantSum)
		}
		if r[3].I != g || r[4].I != g+1990 {
			t.Errorf("g=%d min/max = %v/%v", g, r[3], r[4])
		}
		if r[5].F != wantSum/200 {
			t.Errorf("g=%d avg=%v", g, r[5].F)
		}
		// i%5 is determined by i%10, so each group sees one letter.
		if r[6].I != 1 {
			t.Errorf("g=%d distinct=%d", g, r[6].I)
		}
	}
}

func TestResultsIdenticalAcrossPlanShapes(t *testing.T) {
	queries := []string{
		`SELECT g, COUNT(*) FROM t WHERE k < 100 GROUP BY g`,
		`SELECT u.v, COUNT(*) FROM t, u WHERE t.k = u.k GROUP BY u.v`,
		`SELECT g, COUNT(*) FROM t WHERE k IN (SELECT k FROM u GROUP BY k HAVING COUNT(*) > 5) GROUP BY g`,
	}
	bare := newWorld(t)
	indexed := newWorld(t,
		conf.IndexDef{Table: "t", Columns: []string{"k"}},
		conf.IndexDef{Table: "t", Columns: []string{"k", "g"}},
		conf.IndexDef{Table: "u", Columns: []string{"k"}})
	for _, q := range queries {
		r1, _, err := bare.run(t, q, optimizer.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		r2, _, err := indexed.run(t, q, optimizer.Options{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(r1.Rows) != len(r2.Rows) {
			t.Fatalf("%s: %d vs %d rows", q, len(r1.Rows), len(r2.Rows))
		}
		for i := range r1.Rows {
			if val.CompareRows(r1.Rows[i], r2.Rows[i]) != 0 {
				t.Fatalf("%s: row %d differs: %v vs %v", q, i, r1.Rows[i], r2.Rows[i])
			}
		}
	}
}

func TestTimeoutPropagates(t *testing.T) {
	w := newWorld(t)
	_, _, err := w.run(t, `SELECT g, COUNT(*) FROM t GROUP BY g`, optimizer.Options{}, 1e-9)
	if err != exec.ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestMeterAccountsScanPages(t *testing.T) {
	w := newWorld(t)
	_, ctx, err := w.run(t, `SELECT g, COUNT(*) FROM t GROUP BY g`, optimizer.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	heapPages := w.phys.Tables["t"].Heap.Pages()
	if ctx.Meter.SeqPages != heapPages {
		t.Errorf("scan billed %d pages, heap has %d", ctx.Meter.SeqPages, heapPages)
	}
	if ctx.Meter.Rows < 2000 {
		t.Errorf("rows billed %d", ctx.Meter.Rows)
	}
}

func TestSpillBilling(t *testing.T) {
	w := newWorld(t)
	w.phys.Mem = 1 // force every hash structure to spill
	_, ctx, err := w.run(t, `SELECT u.v, COUNT(*) FROM t, u WHERE t.k = u.k GROUP BY u.v`,
		optimizer.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Meter.WritePage == 0 {
		t.Error("a 1-byte memory budget must cause spills")
	}
}

func TestResultsSortedAndColumnsNamed(t *testing.T) {
	w := newWorld(t)
	res, _, err := w.run(t, `SELECT g, COUNT(*) FROM t GROUP BY g`, optimizer.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || res.Cols[0] != "g" || res.Cols[1] != "COUNT(*)" {
		t.Errorf("cols = %v", res.Cols)
	}
	if !sort.SliceIsSorted(res.Rows, func(i, j int) bool {
		return val.CompareRows(res.Rows[i], res.Rows[j]) < 0
	}) {
		t.Error("rows must arrive sorted")
	}
}

func TestProjectionQuery(t *testing.T) {
	w := newWorld(t, conf.IndexDef{Table: "t", Columns: []string{"k"}})
	res, _, err := w.run(t, `SELECT s, g FROM t WHERE k = 42`, optimizer.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "c" || res.Rows[0][1].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestRidSortBillsSequential verifies the list-prefetch billing contract:
// a selective lookup through a rid-sorting index scan pays sequential
// pages for its fetches, not one random page per row.
func TestRidSortBillsSequential(t *testing.T) {
	w := newWorld(t, conf.IndexDef{Table: "t", Columns: []string{"g"}})
	// g = 5 matches 200 rows; the plan must not bill 200 random pages.
	_, ctx, err := w.run(t, `SELECT g, s, COUNT(*) FROM t WHERE g = 5 GROUP BY g, s`,
		optimizer.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Meter.RandPages > 50 {
		t.Errorf("selective lookup billed %d random pages; rid-sort or scan should avoid that",
			ctx.Meter.RandPages)
	}
}

// TestInSetComputationEquivalence: the IN set computed through an
// index-only scan must equal the one computed by scan+aggregate.
func TestInSetComputationEquivalence(t *testing.T) {
	const q = `SELECT v, COUNT(*) FROM u
		WHERE k IN (SELECT g FROM t GROUP BY g HAVING COUNT(*) >= 200) GROUP BY v`
	bare := newWorld(t)
	indexed := newWorld(t, conf.IndexDef{Table: "t", Columns: []string{"g"}})
	r1, _, err := bare.run(t, q, optimizer.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := indexed.run(t, q, optimizer.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("IN-set paths disagree: %d vs %d rows", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		if val.CompareRows(r1.Rows[i], r2.Rows[i]) != 0 {
			t.Fatalf("row %d differs", i)
		}
	}
}

func TestOrderByExecution(t *testing.T) {
	w := newWorld(t)
	res, _, err := w.run(t, `SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g DESC`,
		optimizer.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].I < res.Rows[i][0].I {
			t.Fatalf("rows not descending at %d: %v", i, res.Rows)
		}
	}
}
