// Partition-parallel execution support: a plan can be executed against a
// data partition producing a mergeable Partial instead of a final Result,
// and Partials from every partition merge deterministically into exactly
// the Result the unpartitioned execution would produce.
//
// The contract that makes merged results byte-identical at any partition
// count:
//
//   - non-aggregate queries concatenate partition rows in partition-index
//     order and re-sort with Run's exact comparator (ORDER BY keys, then
//     the canonical row order) — a total order, so the multiset of rows
//     determines the bytes;
//   - aggregate queries merge per-group states: counts add exactly
//     (int64), MIN/MAX merge through val.Compare (order-insensitive),
//     COUNT(DISTINCT) unions key sets, and SUM/AVG add float partial sums
//     in partition-index order. Integer-column sums are exact at every
//     partition count (each partial sum is an exactly-representable
//     integer); float-column sums can differ across partition counts by
//     reassociation ULPs — the benchmark families aggregate only COUNT(*)
//     and COUNT(DISTINCT), which are exact.
//
// Partition executions bill their own meters; the merge bills its row and
// group work to the merge context. The caller (internal/shard) combines
// them into the sharded cost: set computation + max over partitions +
// merge.
package exec

import (
	"sort"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/val"
)

// Partial is the mergeable output of one partition's execution of a plan.
// It is produced by RunPartial and consumed by MergePartials; the zero
// value is not meaningful.
type Partial struct {
	agg    bool
	rows   []val.Row            // non-aggregate: operator output rows (unsorted)
	groups map[string]*aggState // aggregate: per-group partial states
}

// RunPartial executes the plan over this partition's data and returns a
// mergeable partial result. For aggregate plans (HashAgg root) the
// aggregation state is kept open — counts, partial sums, min/max and
// distinct-value sets per group — so partitions of a group combine
// exactly. For every other plan shape the partition's finished rows are
// returned for concatenation. Billing (including hash-table spill
// accounting over this partition's group count) mirrors Run.
func RunPartial(p *plan.Plan, ctx *Ctx) (*Partial, error) {
	e := &executor{ctx: ctx, p: p}
	if err := e.buildSets(); err != nil {
		return nil, err
	}
	root, ok := p.Root.(*plan.HashAgg)
	if !ok {
		var raw []val.Row
		if err := e.runNode(p.Root, func(r val.Row) error {
			raw = append(raw, r)
			return nil
		}); err != nil {
			return nil, err
		}
		return &Partial{rows: raw}, nil
	}

	groups, err := e.accumulateAgg(root)
	if err != nil {
		return nil, err
	}
	return &Partial{agg: true, groups: groups}, nil
}

// accumulateAgg runs the aggregate's input and accumulates group states
// without finishing them — the open-state half of runHashAgg, billed the
// same way.
func (e *executor) accumulateAgg(n *plan.HashAgg) (map[string]*aggState, error) {
	groups := make(map[string]*aggState)
	err := e.runNode(n.Input, func(r val.Row) error {
		e.ctx.Meter.CPUOps++
		if err := e.ctx.check(); err != nil {
			return err
		}
		gv := r.Project(n.Groups)
		k := gv.Key()
		st := groups[k]
		if st == nil {
			st = &aggState{
				groupVals: gv,
				counts:    make([]int64, len(n.Aggs)),
				sums:      make([]float64, len(n.Aggs)),
				mins:      make([]val.Value, len(n.Aggs)),
				maxs:      make([]val.Value, len(n.Aggs)),
				distinct:  make([]map[string]bool, len(n.Aggs)),
			}
			groups[k] = st
		}
		for i, a := range n.Aggs {
			if a.Kind == sql.AggCountStar {
				st.counts[i]++
				continue
			}
			v := r[a.Offset]
			if v.IsNull() {
				continue
			}
			st.counts[i]++
			st.sums[i] += v.AsFloat()
			if st.counts[i] == 1 || val.Compare(v, st.mins[i]) < 0 {
				st.mins[i] = v
			}
			if st.counts[i] == 1 || val.Compare(v, st.maxs[i]) > 0 {
				st.maxs[i] = v
			}
			if a.Kind == sql.AggCountDistinct {
				if st.distinct[i] == nil {
					st.distinct[i] = make(map[string]bool)
				}
				st.distinct[i][val.Row{v}.Key()] = true
				e.ctx.Meter.CPUOps++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Spill accounting over this partition's group count, as in runHashAgg.
	bytes := int64(len(groups)) * int64(n.GroupWidth)
	if n.GroupWidth > 0 && float64(bytes)*scaleOf(e.ctx.Model) > float64(memOf(e)) {
		pg := cost.PagesForBytes(bytes)
		e.ctx.Meter.WritePage += pg
		e.ctx.Meter.SeqPages += pg
	}
	return groups, nil
}

// cloneAggState deep-copies one group's partial state (distinct sets
// included) so folding can proceed without mutating the source partial:
// MergePartials treats its inputs as read-only.
func cloneAggState(src *aggState) *aggState {
	dst := &aggState{
		groupVals: src.groupVals,
		counts:    append([]int64(nil), src.counts...),
		sums:      append([]float64(nil), src.sums...),
		mins:      append([]val.Value(nil), src.mins...),
		maxs:      append([]val.Value(nil), src.maxs...),
		distinct:  make([]map[string]bool, len(src.distinct)),
	}
	for i, set := range src.distinct {
		if set == nil {
			continue
		}
		d := make(map[string]bool, len(set))
		for k := range set {
			d[k] = true
		}
		dst.distinct[i] = d
	}
	return dst
}

// mergeAggState folds src (one partition's state for a group) into dst in
// place; src is only read. Partitions are folded in partition-index
// order, which fixes the float-sum association; everything else is
// order-insensitive.
func mergeAggState(dst, src *aggState) {
	for i := range dst.counts {
		first := dst.counts[i] == 0
		dst.counts[i] += src.counts[i]
		dst.sums[i] += src.sums[i]
		if src.counts[i] > 0 {
			if first || val.Compare(src.mins[i], dst.mins[i]) < 0 {
				dst.mins[i] = src.mins[i]
			}
			if first || val.Compare(src.maxs[i], dst.maxs[i]) > 0 {
				dst.maxs[i] = src.maxs[i]
			}
		}
		if src.distinct[i] != nil {
			// Copy-on-adopt: never alias src's set into dst, where a later
			// partition's fold would mutate it through dst.
			if dst.distinct[i] == nil {
				dst.distinct[i] = make(map[string]bool, len(src.distinct[i]))
			}
			for k := range src.distinct[i] {
				dst.distinct[i][k] = true
			}
		}
	}
}

// MergePartials reduces the partitions' partial results — in
// partition-index order — into the final Result for the plan, billing the
// merge's row and group work to ctx. The plan must be the one the
// partials were produced from (any partition's plan, or the
// coordinator's: only the Query output mapping and root shape are
// consulted). Nil partials are rejected by construction: callers must
// pass one partial per partition. The partials themselves are read-only
// inputs: fold states are cloned before the first in-place merge (lazily
// — single-partition groups are adopted without copying), so the same
// partials can be merged again or inspected afterwards.
//
// conflint:pure — the merge is the topology-invariance keystone: it
// must observe the partials, not consume them, so shard counts can
// change between (and even during, for audit re-merges) executions.
// Billing to ctx through the fresh executor is the contract's sanctioned
// exception: a merge prices its own work like every operator.
func MergePartials(p *plan.Plan, parts []*Partial, ctx *Ctx) (*Result, error) {
	e := &executor{ctx: ctx, p: p}
	total := 0
	for _, part := range parts {
		total += len(part.rows) + len(part.groups)
	}
	raw := make([]val.Row, 0, total)
	if _, isAgg := p.Root.(*plan.HashAgg); isAgg {
		// Fold every partition's states group-by-group. A group's first
		// occurrence (lowest partition index) is the fold seed, and later
		// partitions fold in index order, so per-group results are
		// deterministic regardless of map iteration order.
		merged := make(map[string]*aggState)
		cloned := make(map[string]bool)
		keys := make([]string, 0, 64)
		for _, part := range parts {
			for k, st := range part.groups {
				e.ctx.Meter.CPUOps++
				cur := merged[k]
				if cur == nil {
					merged[k] = st
					keys = append(keys, k)
					continue
				}
				if !cloned[k] {
					cur = cloneAggState(cur)
					merged[k] = cur
					cloned[k] = true
				}
				mergeAggState(cur, st)
			}
			if err := e.ctx.check(); err != nil {
				return nil, err
			}
		}
		sort.Strings(keys) // deterministic finish order (cosmetic: the final sort below decides output order)
		agg := p.Root.(*plan.HashAgg)
		for _, k := range keys {
			st := merged[k]
			rowOut := make(val.Row, len(agg.Groups)+len(agg.Aggs))
			copy(rowOut, st.groupVals)
			for i, a := range agg.Aggs {
				rowOut[len(agg.Groups)+i] = finishAgg(a.Kind, st, i)
			}
			raw = append(raw, rowOut)
		}
	} else {
		for _, part := range parts {
			e.ctx.Meter.CPUOps += int64(len(part.rows))
			raw = append(raw, part.rows...)
			if err := e.ctx.check(); err != nil {
				return nil, err
			}
		}
	}

	res := e.assemble(raw)
	// Identical final ordering to Run: ORDER BY keys, then the canonical
	// row order as the deterministic tiebreak.
	specs := p.Query.OrderBy
	sort.Slice(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i], res.Rows[j]
		for _, o := range specs {
			c := val.Compare(a[o.OutIdx], b[o.OutIdx])
			if o.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return val.CompareRows(a, b) < 0
	})
	return res, nil
}
