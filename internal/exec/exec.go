// Package exec executes physical plans over the storage engine.
//
// Execution is real — rows are read, hashed, joined and aggregated — and
// every logical I/O and per-row operation is billed to a cost.Meter with
// the same accounting rules the optimizer uses for its estimates. The
// difference between an estimate E(q,C) and an actual measurement A(q,C)
// is therefore exactly the optimizer's cardinality estimation error, which
// is the phenomenon the paper's Section 5 studies.
//
// Execution is push-based: each operator drives rows into a callback.
// A simulated-time limit (the paper's 30-minute timeout) aborts execution
// with ErrTimeout.
package exec

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/val"
)

// ErrTimeout reports that the simulated-time limit was exceeded.
var ErrTimeout = errors.New("exec: query exceeded the simulated-time limit")

// Ctx carries the cost meter, cost model and time limit for one execution.
type Ctx struct {
	Meter cost.Meter
	Model cost.Model
	// LimitSeconds aborts execution when the simulated elapsed time
	// exceeds it; 0 disables the limit.
	LimitSeconds float64

	// Preset, when non-nil, supplies the IN-subquery sets instead of
	// computing them from the plan — the sharded execution path computes
	// each set once on the coordinator (over the full tables, so HAVING
	// COUNT(*) predicates see global counts) and injects the values into
	// every partition's execution. Must hold exactly one entry per
	// plan.InSets, in order; the set computation is not billed here (the
	// coordinator billed it once).
	Preset []InSetValues

	ticks int
}

// InSetValues is the materialized value list of one IN-subquery set, in
// the deterministic (ascending) probe order ComputeInSets produces.
type InSetValues struct {
	Vals []val.Value
}

// Seconds returns the simulated time consumed so far.
func (c *Ctx) Seconds() float64 { return c.Model.Seconds(&c.Meter) }

// check tests the time limit (amortized: the limit is evaluated every
// 1024 calls).
func (c *Ctx) check() error {
	c.ticks++
	if c.LimitSeconds <= 0 || c.ticks%1024 != 0 {
		return nil
	}
	if c.Seconds() > c.LimitSeconds {
		return ErrTimeout
	}
	return nil
}

// Result is the output of a query: column names and rows, sorted
// lexicographically for determinism.
type Result struct {
	Cols []string
	Rows []val.Row
}

// inSet is a computed IN-subquery set: the membership test plus the
// ordered values (for set-driven index probes).
type inSet struct {
	keys map[string]bool
	vals []val.Value
}

func (s *inSet) contains(v val.Value) bool {
	return s.keys[val.Row{v}.Key()]
}

type executor struct {
	ctx  *Ctx
	p    *plan.Plan
	sets []*inSet
}

// Run executes the plan and returns its result.
func Run(p *plan.Plan, ctx *Ctx) (*Result, error) {
	e := &executor{ctx: ctx, p: p}
	if err := e.buildSets(); err != nil {
		return nil, err
	}
	var raw []val.Row
	if err := e.runNode(p.Root, func(r val.Row) error {
		raw = append(raw, r)
		return nil
	}); err != nil {
		return nil, err
	}
	res := e.assemble(raw)
	// ORDER BY keys first (when present), then the canonical row order as
	// a deterministic tiebreak.
	specs := p.Query.OrderBy
	sort.Slice(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i], res.Rows[j]
		for _, o := range specs {
			c := val.Compare(a[o.OutIdx], b[o.OutIdx])
			if o.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return val.CompareRows(a, b) < 0
	})
	return res, nil
}

// assemble reorders operator output into the query's select-list order.
func (e *executor) assemble(raw []val.Row) *Result {
	q := e.p.Query
	res := &Result{}
	for _, o := range q.Out {
		res.Cols = append(res.Cols, o.Name)
	}
	switch e.p.Root.(type) {
	case *plan.HashAgg:
		// HashAgg emits [group values..., agg values...].
		ng := len(q.GroupBy)
		for _, r := range raw {
			out := make(val.Row, len(q.Out))
			for i, o := range q.Out {
				if o.Kind == sql.OutGroup {
					out[i] = r[o.Index]
				} else {
					out[i] = r[ng+o.Index]
				}
			}
			res.Rows = append(res.Rows, out)
		}
	default:
		res.Rows = raw
	}
	return res
}

// buildSets materializes the plan's IN-subquery sets: from ctx.Preset
// when injected (unbilled — the coordinator already paid), otherwise by
// computing each set with billing.
func (e *executor) buildSets() error {
	if e.ctx.Preset != nil {
		if len(e.ctx.Preset) != len(e.p.InSets) {
			return fmt.Errorf("exec: %d preset IN-sets for a plan with %d", len(e.ctx.Preset), len(e.p.InSets))
		}
		for i := range e.ctx.Preset {
			vals := e.ctx.Preset[i].Vals
			set := &inSet{keys: make(map[string]bool, len(vals)), vals: vals}
			for _, v := range vals {
				set.keys[val.Row{v}.Key()] = true
			}
			e.sets = append(e.sets, set)
		}
		return nil
	}
	for i := range e.p.InSets {
		set, err := e.computeInSet(&e.p.InSets[i])
		if err != nil {
			return err
		}
		e.sets = append(e.sets, set)
	}
	return nil
}

// ComputeInSets evaluates the plan's IN-subquery sets, billing the work
// to ctx, and returns the value lists for injection into other
// executions via Ctx.Preset. The sharded path calls this once on the
// coordinator so every partition tests membership against the same
// globally-computed sets.
func ComputeInSets(p *plan.Plan, ctx *Ctx) ([]InSetValues, error) {
	e := &executor{ctx: ctx, p: p}
	out := make([]InSetValues, len(p.InSets))
	for i := range p.InSets {
		set, err := e.computeInSet(&p.InSets[i])
		if err != nil {
			return nil, err
		}
		out[i] = InSetValues{Vals: set.vals}
	}
	return out, nil
}

// computeInSet evaluates one IN-subquery set.
func (e *executor) computeInSet(is *plan.InSetPlan) (*inSet, error) {
	set := &inSet{keys: make(map[string]bool)}
	add := func(v val.Value) {
		k := val.Row{v}.Key()
		if !set.keys[k] {
			set.keys[k] = true
			set.vals = append(set.vals, v)
		}
	}
	p := is.Pred

	if is.Index != nil {
		// Index-only scan: keys arrive sorted, so the HAVING COUNT(*)
		// test streams on group boundaries.
		e.ctx.Meter.FixedRand += int64(is.Index.Height)
		it := is.Index.Tree.Scan()
		var curKey val.Value
		var curCount int64
		haveCur := false
		flush := func() {
			if haveCur && (p.Having == nil || cmpHaving(curCount, p.Having)) {
				add(curKey)
			}
		}
		for {
			k, _, ok := it.Next()
			if !ok {
				break
			}
			e.ctx.Meter.Rows++
			if err := e.ctx.check(); err != nil {
				return nil, err
			}
			v := k[0]
			if v.IsNull() {
				continue
			}
			if haveCur && val.Equal(v, curKey) {
				curCount++
				continue
			}
			flush()
			curKey, curCount, haveCur = v, 1, true
		}
		flush()
		e.ctx.Meter.SeqPages += it.Scanned() / is.Index.EntriesPerLeaf
		return set, nil
	}

	// Sequential scan plus hash aggregation.
	counts := make(map[string]*struct {
		v val.Value
		n int64
	})
	var scanErr error
	is.Info.Heap.Scan(&e.ctx.Meter, func(_ storage.RowID, r val.Row) bool {
		if err := e.ctx.check(); err != nil {
			scanErr = err
			return false
		}
		v := r[p.SubCol]
		if v.IsNull() {
			return true
		}
		for _, ss := range p.SubSels {
			if !sql.CompareOp(ss.Op, r[ss.Col], ss.Value) {
				return true
			}
		}
		e.ctx.Meter.CPUOps++
		k := val.Row{v}.Key()
		if c := counts[k]; c != nil {
			c.n++
		} else {
			counts[k] = &struct {
				v val.Value
				n int64
			}{v, 1}
		}
		return true
	})
	if scanErr != nil {
		return nil, scanErr
	}
	// Spill accounting for the aggregation hash table.
	bytes := int64(len(counts)) * 24
	if float64(bytes)*scaleOf(e.ctx.Model) > float64(memOf(e)) {
		pg := cost.PagesForBytes(bytes)
		e.ctx.Meter.WritePage += pg
		e.ctx.Meter.SeqPages += pg
	}
	for _, c := range counts {
		if p.Having == nil || cmpHaving(c.n, p.Having) {
			add(c.v)
		}
	}
	// Keep probe order deterministic.
	sort.Slice(set.vals, func(i, j int) bool { return val.Compare(set.vals[i], set.vals[j]) < 0 })
	return set, nil
}

func cmpHaving(n int64, h *sql.Having) bool {
	switch h.Op {
	case "=":
		return n == h.Value
	case "<>":
		return n != h.Value
	case "<":
		return n < h.Value
	case "<=":
		return n <= h.Value
	case ">":
		return n > h.Value
	case ">=":
		return n >= h.Value
	}
	return false
}

func scaleOf(m cost.Model) float64 {
	if m.Scale == 0 {
		return 1
	}
	return m.Scale
}

// memOf returns the full-scale memory budget the plan was costed under;
// a plan with no recorded budget never spills.
func memOf(e *executor) int64 {
	if e.p.Mem > 0 {
		return e.p.Mem
	}
	return 1 << 62
}
