// Package val defines the value and row model shared by the storage engine,
// indexes, executor and statistics subsystems.
//
// A Value is a small tagged union over the three SQL types the benchmark
// schemas need (BIGINT, DOUBLE, VARCHAR) plus NULL. Values are comparable
// with a total order (NULL sorts first, then by kind, then by content),
// which is the order used by B+-tree index keys.
package val

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	K   Kind
	I   int64
	F   float64
	Str string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int returns an integer value.
func Int(i int64) Value { return Value{K: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{K: KindFloat, F: f} }

// String returns a string value.
func String(s string) Value { return Value{K: KindString, Str: s} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// AsFloat converts a numeric value to float64. Strings and NULL yield 0.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	return 0
}

// String renders the value in SQL-literal form.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	}
	return "?"
}

// Raw renders the value without SQL quoting, for CSV export.
func (v Value) Raw() string {
	if v.K == KindString {
		return v.Str
	}
	return v.String()
}

// Compare returns -1, 0 or +1 ordering a before, equal to, or after b.
// NULL sorts before everything; mixed numeric kinds compare numerically;
// otherwise values of different kinds order by kind.
func Compare(a, b Value) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == b.K:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	// Numeric cross-kind comparison.
	if (a.K == KindInt || a.K == KindFloat) && (b.K == KindInt || b.K == KindFloat) {
		if a.K == KindInt && b.K == KindInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			}
			return 0
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		}
		return 0
	}
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	// Same kind, non-numeric: strings.
	return strings.Compare(a.Str, b.Str)
}

// Equal reports whether a and b compare equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Width returns the approximate on-disk width of the value in bytes,
// used by the page and index size models.
func (v Value) Width() int {
	switch v.K {
	case KindInt:
		return 8
	case KindFloat:
		return 8
	case KindString:
		return 2 + len(v.Str)
	}
	return 1
}

// Row is a tuple of values.
type Row []Value

// Clone returns a copy of the row sharing no backing array with r.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Width returns the approximate on-disk width of the row in bytes.
func (r Row) Width() int {
	w := 4 // header
	for _, v := range r {
		w += v.Width()
	}
	return w
}

// Project returns the sub-row with the given column offsets.
func (r Row) Project(cols []int) Row {
	out := make(Row, len(cols))
	for i, c := range cols {
		out[i] = r[c]
	}
	return out
}

// CompareRows orders rows lexicographically.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Key renders a row as a canonical string, usable as a map key for
// hash joins and grouping. The encoding is unambiguous: each value is
// prefixed by its kind and terminated by a 0x00 byte (escaped in strings).
func (r Row) Key() string {
	var sb strings.Builder
	for _, v := range r {
		sb.WriteByte(byte('0' + v.K))
		switch v.K {
		case KindInt:
			sb.WriteString(strconv.FormatInt(v.I, 36))
		case KindFloat:
			sb.WriteString(strconv.FormatFloat(v.F, 'b', -1, 64))
		case KindString:
			sb.WriteString(strings.ReplaceAll(v.Str, "\x00", "\x00\x00"))
		}
		sb.WriteByte(0)
	}
	return sb.String()
}
