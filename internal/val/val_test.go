package val

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCompareScalars(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(7), Int(7), 0},
		{Float(1.5), Float(2.5), -1},
		{Int(2), Float(2.0), 0},
		{Int(2), Float(1.9), 1},
		{Float(2.1), Int(2), 1},
		{String("abc"), String("abd"), -1},
		{String("b"), String("b"), 0},
		{Null(), Int(0), -1},
		{Int(0), Null(), 1},
		{Null(), Null(), 0},
		{Int(1), String("1"), -1}, // kind order: numeric before string
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return Compare(String(a), String(b)) == -Compare(String(b), String(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestRowKeyInjective(t *testing.T) {
	// Rows with different contents must map to different keys, including
	// tricky cases around the separator byte and kind boundaries.
	rows := []Row{
		{Int(1), Int(2)},
		{Int(12)},
		{String("1"), Int(2)},
		{String("1\x002")},
		{String("1"), String("2")},
		{Null()},
		{Null(), Null()},
		{Int(0)},
		{Float(0)},
		{String("")},
		{},
	}
	seen := make(map[string]int)
	for i, r := range rows {
		k := r.Key()
		if j, dup := seen[k]; dup {
			t.Errorf("rows %d and %d share key %q", i, j, k)
		}
		seen[k] = i
	}
}

func TestRowKeyEqualForEqualRows(t *testing.T) {
	f := func(a int64, s string) bool {
		r1 := Row{Int(a), String(s)}
		r2 := Row{Int(a), String(s)}
		return r1.Key() == r2.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareRowsLexicographic(t *testing.T) {
	a := Row{Int(1), String("b")}
	b := Row{Int(1), String("c")}
	c := Row{Int(2)}
	if CompareRows(a, b) != -1 || CompareRows(b, a) != 1 {
		t.Errorf("lexicographic ordering broken on second column")
	}
	if CompareRows(a, c) != -1 {
		t.Errorf("first column should dominate")
	}
	if CompareRows(a, a[:1]) != 1 || CompareRows(a[:1], a) != -1 {
		t.Errorf("shorter prefix row should sort first")
	}
	if CompareRows(a, a) != 0 {
		t.Errorf("row must equal itself")
	}
}

func TestCompareRowsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var rows []Row
	for i := 0; i < 200; i++ {
		rows = append(rows, Row{Int(rng.Int63n(10)), Float(float64(rng.Intn(5))), String(string(rune('a' + rng.Intn(4))))})
	}
	sort.Slice(rows, func(i, j int) bool { return CompareRows(rows[i], rows[j]) < 0 })
	for i := 1; i < len(rows); i++ {
		if CompareRows(rows[i-1], rows[i]) > 0 {
			t.Fatalf("rows not sorted at %d: %v > %v", i, rows[i-1], rows[i])
		}
	}
}

func TestProjectAndClone(t *testing.T) {
	r := Row{Int(10), String("x"), Float(2.5)}
	p := r.Project([]int{2, 0})
	if len(p) != 2 || p[0].F != 2.5 || p[1].I != 10 {
		t.Errorf("Project = %v", p)
	}
	cl := r.Clone()
	cl[0] = Int(99)
	if r[0].I != 10 {
		t.Errorf("Clone must not share storage")
	}
}

func TestValueStringAndRaw(t *testing.T) {
	if got := String("it's").String(); got != "'it''s'" {
		t.Errorf("SQL quoting: got %s", got)
	}
	if got := String("plain").Raw(); got != "plain" {
		t.Errorf("Raw: got %s", got)
	}
	if got := Int(-3).String(); got != "-3" {
		t.Errorf("int: got %s", got)
	}
	if got := Null().String(); got != "NULL" {
		t.Errorf("null: got %s", got)
	}
}

func TestWidths(t *testing.T) {
	if Int(1).Width() != 8 || Float(1).Width() != 8 {
		t.Error("numeric width should be 8")
	}
	if String("abcd").Width() != 6 {
		t.Errorf("string width = %d, want 6", String("abcd").Width())
	}
	r := Row{Int(1), String("ab")}
	if r.Width() != 4+8+4 {
		t.Errorf("row width = %d", r.Width())
	}
}

func TestAsFloat(t *testing.T) {
	if Int(3).AsFloat() != 3.0 || Float(2.5).AsFloat() != 2.5 || String("x").AsFloat() != 0 {
		t.Error("AsFloat conversions wrong")
	}
}
