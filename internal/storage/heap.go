// Package storage implements heap tables: unordered collections of typed
// rows laid out in fixed-size logical pages.
//
// The heap is a real, executable store (scans and fetches return real
// rows), but it also participates in the benchmark's simulated clock: every
// access bills the logical pages it touches to a cost.Meter, so the
// difference between a sequential scan and an index-driven random fetch
// pattern is observable in simulated time exactly as it would be on disk.
package storage

import (
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/val"
)

// RowID identifies a row within a heap. RowIDs are dense and stable: the
// benchmark workloads are insert-only (paper §3.2.2 considers retrieval
// queries plus the §4.4 insertion experiment), so rows are never deleted.
type RowID int64

// PageOf returns the logical page number of a row given rows-per-page.
func (r RowID) PageOf(rowsPerPage int) int64 { return int64(r) / int64(rowsPerPage) }

// Heap stores the rows of one table.
type Heap struct {
	Table *catalog.Table

	rows        []val.Row
	rowsPerPage int
}

// NewHeap creates an empty heap for the table. The number of rows per
// logical page is derived from the table's modeled row width.
func NewHeap(t *catalog.Table) *Heap {
	rpp := cost.PageSize / t.RowWidth()
	if rpp < 1 {
		rpp = 1
	}
	return &Heap{Table: t, rowsPerPage: rpp}
}

// Insert appends a row and returns its RowID. The row must have one value
// per table column; Insert bills a page write to m when it opens a fresh
// page (the amortized cost of appending) and one row of CPU work.
func (h *Heap) Insert(m *cost.Meter, r val.Row) (RowID, error) {
	if len(r) != len(h.Table.Columns) {
		return 0, fmt.Errorf("heap %s: inserting %d values into %d columns",
			h.Table.Name, len(r), len(h.Table.Columns))
	}
	id := RowID(len(h.rows))
	h.rows = append(h.rows, r)
	if m != nil {
		m.Rows++
		if int(id)%h.rowsPerPage == 0 {
			m.WritePage++
		}
	}
	return id, nil
}

// NumRows returns the number of rows in the heap.
func (h *Heap) NumRows() int64 { return int64(len(h.rows)) }

// RowsPerPage returns the number of rows stored per logical page.
func (h *Heap) RowsPerPage() int { return h.rowsPerPage }

// Pages returns the number of logical pages occupied by the heap.
func (h *Heap) Pages() int64 {
	n := int64(len(h.rows))
	rpp := int64(h.rowsPerPage)
	return (n + rpp - 1) / rpp
}

// Bytes returns the modeled on-disk size of the heap.
func (h *Heap) Bytes() int64 { return h.Pages() * cost.PageSize }

// Scan iterates all rows in storage order, billing sequential page reads
// and per-row CPU to m as it goes. Iteration stops early if fn returns
// false; only the pages actually touched are billed.
func (h *Heap) Scan(m *cost.Meter, fn func(id RowID, r val.Row) bool) {
	for i, r := range h.rows {
		if m != nil {
			if i%h.rowsPerPage == 0 {
				m.SeqPages++
			}
			m.Rows++
		}
		if !fn(RowID(i), r) {
			return
		}
	}
}

// Cursor provides random access to heap rows with page-locality
// accounting: consecutive fetches that land on the same logical page bill
// only one random page read. This models the clustering effect that makes
// an index on a clustered column cheaper to drive fetches through.
type Cursor struct {
	h        *Heap
	lastPage int64
}

// NewCursor returns a cursor over the heap.
func (h *Heap) NewCursor() *Cursor { return &Cursor{h: h, lastPage: -1} }

// Fetch returns the row with the given id, billing a random page read to m
// unless the row shares a page with the previous fetch through this cursor.
func (c *Cursor) Fetch(m *cost.Meter, id RowID) (val.Row, error) {
	if id < 0 || int64(id) >= int64(len(c.h.rows)) {
		return nil, fmt.Errorf("heap %s: row %d out of range [0,%d)", c.h.Table.Name, id, len(c.h.rows))
	}
	if m != nil {
		page := id.PageOf(c.h.rowsPerPage)
		if page != c.lastPage {
			m.RandPages++
			c.lastPage = page
		}
		m.Rows++
	}
	return c.h.rows[id], nil
}

// Get returns the row with the given id without cost accounting.
// It is intended for index build and statistics collection paths that
// account for their work at a coarser granularity.
func (h *Heap) Get(id RowID) val.Row {
	return h.rows[id]
}

// FetchMany fetches the rows for the given ids in storage order, billing
// one sequential page read per distinct page touched (the rid-sort /
// list-prefetch access pattern: rids gathered from an index are sorted so
// the heap is read in page order). Iteration stops early if fn returns
// false. The ids slice is not modified.
func (h *Heap) FetchMany(m *cost.Meter, ids []RowID, fn func(RowID, val.Row) bool) error {
	sorted := append([]RowID(nil), ids...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	lastPage := int64(-1)
	for _, id := range sorted {
		if id < 0 || int64(id) >= int64(len(h.rows)) {
			return fmt.Errorf("heap %s: row %d out of range [0,%d)", h.Table.Name, id, len(h.rows))
		}
		if m != nil {
			if page := id.PageOf(h.rowsPerPage); page != lastPage {
				m.SeqPages++
				lastPage = page
			}
			m.Rows++
		}
		if !fn(id, h.rows[id]) {
			return nil
		}
	}
	return nil
}
