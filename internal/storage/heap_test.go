package storage

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/val"
)

func testTable() *catalog.Table {
	return catalog.MustTable("t",
		[]catalog.Column{
			{Name: "a", Type: catalog.TypeInt, Indexable: true},
			{Name: "b", Type: catalog.TypeString, Indexable: true, AvgWidth: 20},
		},
		[]string{"a"},
	)
}

func TestInsertAndScan(t *testing.T) {
	h := NewHeap(testTable())
	var m cost.Meter
	for i := int64(0); i < 1000; i++ {
		id, err := h.Insert(&m, val.Row{val.Int(i), val.String("x")})
		if err != nil {
			t.Fatal(err)
		}
		if id != RowID(i) {
			t.Fatalf("id = %d, want %d", id, i)
		}
	}
	if h.NumRows() != 1000 {
		t.Fatalf("NumRows = %d", h.NumRows())
	}
	var seen int64
	var sm cost.Meter
	h.Scan(&sm, func(id RowID, r val.Row) bool {
		if r[0].I != int64(id) {
			t.Fatalf("row %d has a=%d", id, r[0].I)
		}
		seen++
		return true
	})
	if seen != 1000 {
		t.Fatalf("scanned %d rows", seen)
	}
	if sm.SeqPages != h.Pages() {
		t.Errorf("scan billed %d pages, heap has %d", sm.SeqPages, h.Pages())
	}
	if sm.Rows != 1000 {
		t.Errorf("scan billed %d rows", sm.Rows)
	}
}

func TestInsertArityCheck(t *testing.T) {
	h := NewHeap(testTable())
	if _, err := h.Insert(nil, val.Row{val.Int(1)}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestScanEarlyStopBillsOnlyTouchedPages(t *testing.T) {
	h := NewHeap(testTable())
	for i := int64(0); i < 10_000; i++ {
		if _, err := h.Insert(nil, val.Row{val.Int(i), val.String("y")}); err != nil {
			t.Fatal(err)
		}
	}
	var m cost.Meter
	h.Scan(&m, func(id RowID, r val.Row) bool { return id < 5 })
	if m.SeqPages != 1 {
		t.Errorf("early stop billed %d pages, want 1", m.SeqPages)
	}
}

func TestCursorPageLocality(t *testing.T) {
	h := NewHeap(testTable())
	for i := int64(0); i < 1000; i++ {
		if _, err := h.Insert(nil, val.Row{val.Int(i), val.String("z")}); err != nil {
			t.Fatal(err)
		}
	}
	rpp := h.RowsPerPage()
	cur := h.NewCursor()
	var m cost.Meter
	// Two fetches on the same page: one random read.
	if _, err := cur.Fetch(&m, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Fetch(&m, 1); err != nil {
		t.Fatal(err)
	}
	if m.RandPages != 1 {
		t.Errorf("same-page fetches billed %d random pages, want 1", m.RandPages)
	}
	// A fetch on a different page: one more.
	if _, err := cur.Fetch(&m, RowID(2*rpp)); err != nil {
		t.Fatal(err)
	}
	if m.RandPages != 2 {
		t.Errorf("cross-page fetch billed %d random pages, want 2", m.RandPages)
	}
}

func TestFetchOutOfRange(t *testing.T) {
	h := NewHeap(testTable())
	cur := h.NewCursor()
	if _, err := cur.Fetch(nil, 0); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := cur.Fetch(nil, -1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestPagesAndBytes(t *testing.T) {
	h := NewHeap(testTable())
	if h.Pages() != 0 || h.Bytes() != 0 {
		t.Error("empty heap should occupy no pages")
	}
	for i := int64(0); i < 100; i++ {
		if _, err := h.Insert(nil, val.Row{val.Int(i), val.String("w")}); err != nil {
			t.Fatal(err)
		}
	}
	wantPages := (100 + int64(h.RowsPerPage()) - 1) / int64(h.RowsPerPage())
	if h.Pages() != wantPages {
		t.Errorf("Pages = %d, want %d", h.Pages(), wantPages)
	}
	if h.Bytes() != wantPages*cost.PageSize {
		t.Errorf("Bytes = %d", h.Bytes())
	}
}

func TestInsertPageWriteAccounting(t *testing.T) {
	h := NewHeap(testTable())
	var m cost.Meter
	n := int64(h.RowsPerPage())*3 + 1
	for i := int64(0); i < n; i++ {
		if _, err := h.Insert(&m, val.Row{val.Int(i), val.String("v")}); err != nil {
			t.Fatal(err)
		}
	}
	if m.WritePage != 4 {
		t.Errorf("inserting %d rows billed %d page writes, want 4", n, m.WritePage)
	}
}
