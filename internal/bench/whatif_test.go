package bench

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/recommender"
)

// whatifFamilies are the determinism harness's five family cells (see
// TestParallelDeterminism), reused to compare the memoized estimation
// fast path against the pre-cache path.
var whatifFamilies = []struct{ sys, family string }{
	{"A", "NREF2J"},
	{"A", "NREF3J"},
	{"C", "SkTH3J"},
	{"C", "SkTH3Js"},
	{"C", "UnTH3J"},
}

// TestWhatIfCacheMatchesUncached requires the memoized Estimate to
// return measures identical to the uncached path for every family, both
// on a cold session and on a warm one (where every call is a hit).
func TestWhatIfCacheMatchesUncached(t *testing.T) {
	cached := tinyLab()
	uncached := tinyLab()
	uncached.DisableWhatIfCache = true
	r := core.Runner{Parallelism: 1}
	for _, spec := range whatifFamilies {
		db := dbOfFamily(spec.family)
		for _, l := range []*Lab{cached, uncached} {
			if err := l.ApplyNamed(spec.sys, db, "P"); err != nil {
				t.Fatal(err)
			}
		}
		sqls := cached.Workload(spec.sys, spec.family).SQLs()
		ce := cached.Engine(spec.sys, db)
		ue := uncached.Engine(spec.sys, db)
		hypo := engine.OneColumnConfiguration(ce)

		want, err := core.WhatIfWorkload(ue, sqls, hypo)
		if err != nil {
			t.Fatalf("%s/%s: uncached what-if: %v", spec.sys, spec.family, err)
		}
		w := ce.NewWhatIf()
		cold, err := r.WhatIfSessionWorkload(w, sqls, hypo)
		if err != nil {
			t.Fatalf("%s/%s: cached what-if: %v", spec.sys, spec.family, err)
		}
		if !reflect.DeepEqual(want, cold) {
			t.Errorf("%s/%s: cold cached estimates differ from uncached", spec.sys, spec.family)
		}
		warm, err := r.WhatIfSessionWorkload(w, sqls, hypo)
		if err != nil {
			t.Fatalf("%s/%s: warm what-if: %v", spec.sys, spec.family, err)
		}
		if !reflect.DeepEqual(want, warm) {
			t.Errorf("%s/%s: warm cached estimates differ from uncached", spec.sys, spec.family)
		}
	}
}

// TestEstimateWithMatchesCombined checks the incremental base+delta
// entry point against Estimate on the materialized union, including the
// dedup rule: a delta that repeats base structures must cost the same
// as the base alone.
func TestEstimateWithMatchesCombined(t *testing.T) {
	l := tinyLab()
	db := dbOfFamily("NREF2J")
	if err := l.ApplyNamed("A", db, "P"); err != nil {
		t.Fatal(err)
	}
	e := l.Engine("A", db)
	base := engine.OneColumnConfiguration(e)
	if len(base.Indexes) == 0 {
		t.Fatal("1C configuration has no indexes")
	}
	delta := conf.Configuration{Indexes: []conf.IndexDef{{
		Table:   base.Indexes[0].Table,
		Columns: append([]string{}, base.Indexes[0].Columns...),
	}}}
	w := e.NewWhatIf()
	for _, sqlText := range l.Workload("A", "NREF2J").SQLs()[:6] {
		q, err := e.AnalyzeSQL(sqlText)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := w.Estimate(q, base)
		if err != nil {
			t.Fatal(err)
		}
		dup, err := w.EstimateWith(q, base, delta)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, dup) {
			t.Errorf("duplicate delta changed the estimate for %q", sqlText)
		}
		inc, err := w.EstimateWith(q, conf.Configuration{}, base)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, inc) {
			t.Errorf("delta-only incremental estimate differs from Estimate for %q", sqlText)
		}
	}
}

// TestWhatIfSessionInvalidatesOnTransition moves the engine to a new
// configuration under a live session and requires the session's next
// estimates to match a fresh session — the epoch check must flush every
// cache layer.
func TestWhatIfSessionInvalidatesOnTransition(t *testing.T) {
	l := tinyLab()
	db := dbOfFamily("NREF2J")
	if err := l.ApplyNamed("A", db, "P"); err != nil {
		t.Fatal(err)
	}
	e := l.Engine("A", db)
	sqls := l.Workload("A", "NREF2J").SQLs()[:6]
	hypo := engine.OneColumnConfiguration(e)
	r := core.Runner{Parallelism: 1}

	w := e.NewWhatIf()
	if _, err := r.WhatIfSessionWorkload(w, sqls, hypo); err != nil {
		t.Fatal(err)
	}
	if err := l.ApplyNamed("A", db, "1C"); err != nil {
		t.Fatal(err)
	}
	after, err := r.WhatIfSessionWorkload(w, sqls, hypo)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.WhatIfWorkload(e, sqls, hypo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, after) {
		t.Error("session estimates after Transition differ from a fresh session")
	}
}

// TestRecommendationParallelIdentity extends the determinism harness to
// the recommender: for each system's search strategy the recommended
// configuration must be byte-identical at every pool size.
func TestRecommendationParallelIdentity(t *testing.T) {
	l := tinyLab()
	for _, spec := range []struct{ sys, family string }{
		{"A", "NREF2J"},
		{"B", "NREF3J"},
		{"C", "SkTH3J"},
	} {
		db := dbOfFamily(spec.family)
		sqls := l.Workload(spec.sys, spec.family).SQLs()
		e := l.Engine(spec.sys, db)
		budget := l.Budget(spec.sys, db)
		if err := l.ApplyNamed(spec.sys, db, "P"); err != nil {
			t.Fatal(err)
		}
		base, baseErr := recommender.New(e, recConfigOf(spec.sys)).Parallel(1).Recommend(sqls, budget)
		for _, n := range []int{4, 16} {
			got, err := recommender.New(e, recConfigOf(spec.sys)).Parallel(n).Recommend(sqls, budget)
			if fmt.Sprint(err) != fmt.Sprint(baseErr) {
				t.Fatalf("%s/%s: parallel(%d) error %v, sequential %v", spec.sys, spec.family, n, err, baseErr)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%s/%s: parallel(%d) recommendation differs from sequential", spec.sys, spec.family, n)
			}
		}
	}
}

// TestRecommendationCacheOnOffIdentity requires the estimate cache to be
// invisible in recommender output: cache-on and cache-off labs must
// produce byte-identical recommendations.
func TestRecommendationCacheOnOffIdentity(t *testing.T) {
	cached := tinyLab()
	uncached := tinyLab()
	uncached.DisableWhatIfCache = true
	for _, spec := range []struct{ sys, family string }{
		{"A", "NREF2J"},
		{"B", "NREF3J"},
		{"C", "SkTH3J"},
	} {
		a, errA := cached.Recommendation(spec.sys, spec.family)
		b, errB := uncached.Recommendation(spec.sys, spec.family)
		if fmt.Sprint(errA) != fmt.Sprint(errB) {
			t.Fatalf("%s/%s: cached err %v, uncached err %v", spec.sys, spec.family, errA, errB)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s/%s: cached recommendation differs from uncached", spec.sys, spec.family)
		}
	}
}
