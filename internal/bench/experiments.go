package bench

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/engine"
)

// Experiment is one reproducible unit: a figure, a table, or an analysis
// paragraph of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(l *Lab) (string, error)
}

// Experiments returns the full registry, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: System A on NREF2J, configuration P (histogram)", fig1},
		{"fig2", "Figure 2: System A on NREF2J, recommended configuration (histogram)", fig2},
		{"fig3", "Figure 3: System A on NREF2J (CFC of P, 1C, R)", fig3},
		{"fig4", "Figure 4: System A on NREF3J (CFC; no recommendation produced)", fig4},
		{"fig5", "Figure 5: System B on NREF2J (CFC of P, 1C, R)", fig5},
		{"fig6", "Figure 6: System B on NREF3J (CFC of P, 1C, R)", fig6},
		{"fig7", "Figure 7: System C on SkTH3Js (CFC of P, 1C, R)", fig7},
		{"fig8", "Figure 8: System C on SkTH3J (CFC of P, 1C, R)", fig8},
		{"fig9", "Figure 9: System C on UnTH3J (CFC of P, 1C, R)", fig9},
		{"fig10", "Figure 10: estimate curves for NREF3J on System B (EP, ER, E1C, HR, H1C)", fig10},
		{"fig11", "Figure 11: improvement-ratio histograms for NREF3J on System B (AIR, EIR, HIR)", fig11},
		{"table1", "Table 1: sizes and build times of all configurations", table1},
		{"table2", "Table 2: index widths per recommended configuration (NREF)", table2},
		{"table3", "Table 3: index widths per recommended configuration (TPC-H)", table3},
		{"lowerbounds", "§4.3: workload total lower bounds for SkTH3J on System C", lowerBounds},
		{"insertions", "§4.4: insertion break-even between 1C and R on NREF2J", insertions},
		{"families", "§4.1.1: family sizes before and after restriction", families},
		{"goals", "Example 2: QoS goal satisfaction per configuration", goals},
		{"transitions", "§2.2: configuration transition costs AT and ET", transitions},
		{"ablation-whatif", "Ablation: System B with an idealized what-if estimator", ablationWhatIf},
		{"ablation-budget", "Ablation: recommendations under a 4x storage budget", ablationBudget},
		{"ablation-disk", "Ablation: CFCs as the random:sequential cost ratio shrinks", ablationDisk},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// curvesFigure renders a CFC comparison for one (system, family).
func curvesFigure(l *Lab, title, sys, family string, withR bool) (string, error) {
	labels := []string{"P", "1C"}
	configs := []string{"P", "1C"}
	if withR {
		labels = append(labels, "R")
		configs = append(configs, "R:"+family)
	}
	var curves []core.CFC
	for _, cn := range configs {
		c, err := l.CFC(sys, family, cn)
		if err != nil {
			return "", err
		}
		curves = append(curves, c)
	}
	out := core.RenderCurves(title, labels, curves, 1, Timeout)
	out += "\n" + core.SummaryTable(labels, curves)
	return out, nil
}

func fig1(l *Lab) (string, error) {
	ms, err := l.Run("A", "NREF2J", "P")
	if err != nil {
		return "", err
	}
	return core.NewHistogram(ms, 1, Timeout, 2).Render("A NREF P: query execution times, NREF2J"), nil
}

func fig2(l *Lab) (string, error) {
	ms, err := l.Run("A", "NREF2J", "R:NREF2J")
	if err != nil {
		return "", err
	}
	return core.NewHistogram(ms, 1, Timeout, 2).Render("A NREF2J R: query execution times, NREF2J"), nil
}

func fig3(l *Lab) (string, error) {
	return curvesFigure(l, "Behavior of System A on NREF2J", "A", "NREF2J", true)
}

func fig4(l *Lab) (string, error) {
	out, err := curvesFigure(l, "Behavior of System A on NREF3J", "A", "NREF3J", false)
	if err != nil {
		return "", err
	}
	_, recErr := l.Recommendation("A", "NREF3J")
	if recErr == nil {
		out += "\nUNEXPECTED: System A produced a recommendation for NREF3J " +
			"(the paper observed none)\n"
	} else {
		out += fmt.Sprintf("\nNo R curve: System A's recommender failed on this workload:\n  %v\n", recErr)
	}
	return out, nil
}

func fig5(l *Lab) (string, error) {
	return curvesFigure(l, "Behavior of System B on NREF2J", "B", "NREF2J", true)
}

func fig6(l *Lab) (string, error) {
	return curvesFigure(l, "Behavior of System B on NREF3J", "B", "NREF3J", true)
}

func fig7(l *Lab) (string, error) {
	return curvesFigure(l, "Behavior of System C on SkTH3Js", "C", "SkTH3Js", true)
}

func fig8(l *Lab) (string, error) {
	return curvesFigure(l, "Behavior of System C on SkTH3J", "C", "SkTH3J", true)
}

func fig9(l *Lab) (string, error) {
	return curvesFigure(l, "Behavior of System C on UnTH3J", "C", "UnTH3J", true)
}

// fig10 plots estimate curves: EP/ER/E1C are optimizer estimates taken in
// each configuration; HR/H1C are hypothetical estimates taken in P. The
// x axis is in estimation units (seconds of estimated cost here; the paper
// used the optimizer's arbitrary units).
func fig10(l *Lab) (string, error) {
	const sys, family = "B", "NREF3J"
	ep, err := l.Estimates(sys, family, "P")
	if err != nil {
		return "", err
	}
	er, err := l.Estimates(sys, family, "R:"+family)
	if err != nil {
		return "", err
	}
	e1c, err := l.Estimates(sys, family, "1C")
	if err != nil {
		return "", err
	}
	hr, err := l.Hypotheticals(sys, family, "R:"+family)
	if err != nil {
		return "", err
	}
	h1c, err := l.Hypotheticals(sys, family, "1C")
	if err != nil {
		return "", err
	}
	labels := []string{"EP", "ER", "E1C", "HR", "H1C"}
	var curves []core.CFC
	for _, ms := range [][]core.Measure{ep, er, e1c, hr, h1c} {
		curves = append(curves, core.NewCFC(ms, Timeout))
	}
	out := core.RenderCurves("Cumulative curves of optimizer estimates, NREF3J on System B",
		labels, curves, 0.1, 100000)
	out += "\n" + core.SummaryTable(labels, curves)
	return out, nil
}

// fig11 renders the three improvement-ratio histograms comparing R to 1C:
// actual (AIR), estimated-in-target (EIR) and hypothetical-in-P (HIR).
func fig11(l *Lab) (string, error) {
	const sys, family = "B", "NREF3J"
	aR, err := l.Run(sys, family, "R:"+family)
	if err != nil {
		return "", err
	}
	a1c, err := l.Run(sys, family, "1C")
	if err != nil {
		return "", err
	}
	eR, err := l.Estimates(sys, family, "R:"+family)
	if err != nil {
		return "", err
	}
	e1c, err := l.Estimates(sys, family, "1C")
	if err != nil {
		return "", err
	}
	hR, err := l.Hypotheticals(sys, family, "R:"+family)
	if err != nil {
		return "", err
	}
	h1c, err := l.Hypotheticals(sys, family, "1C")
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Improvement ratios R vs 1C, NREF3J on System B\n")
	sb.WriteString("(ratio 10^k: 1C is 10^k times faster than R; 1 = no improvement)\n\n")
	sb.WriteString(core.NewRatioHistogram(core.ImprovementRatio(aR, a1c)).Render("AIR (actual)"))
	sb.WriteString(core.NewRatioHistogram(core.ImprovementRatio(eR, e1c)).Render("EIR (estimates in target configs)"))
	sb.WriteString(core.NewRatioHistogram(core.ImprovementRatio(hR, h1c)).Render("HIR (hypothetical estimates in P)"))
	return sb.String(), nil
}

// table1 reproduces the size/build-time table for every configuration in
// the experiments.
func table1(l *Lab) (string, error) {
	rows := []struct{ sys, db, name, label string }{
		{"A", DBNref, "P", "A NREF P"},
		{"A", DBNref, "R:NREF2J", "A NREF2J R"},
		{"A", DBNref, "1C", "A NREF 1C"},
		{"B", DBNref, "P", "B NREF P"},
		{"B", DBNref, "R:NREF2J", "B NREF2J R"},
		{"B", DBNref, "R:NREF3J", "B NREF3J R"},
		{"B", DBNref, "1C", "B NREF 1C"},
		{"C", DBSkTH, "P", "C SkTH P"},
		{"C", DBSkTH, "R:SkTH3J", "C SkTH3J R"},
		{"C", DBSkTH, "R:SkTH3Js", "C SkTH3Js R"},
		{"C", DBSkTH, "1C", "C SkTH 1C"},
		{"C", DBUnTH, "P", "C UnTH P"},
		{"C", DBUnTH, "R:UnTH3J", "C UnTH3J R"},
		{"C", DBUnTH, "1C", "C UnTH 1C"},
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %10s %12s\n", "Configuration", "Size (GB)", "Time (min)")
	for _, r := range rows {
		rep, err := l.BuildReport(r.sys, r.db, r.name)
		if err != nil {
			fmt.Fprintf(&sb, "%-14s %10s %12s  (%v)\n", r.label, "-", "-", err)
			continue
		}
		fmt.Fprintf(&sb, "%-14s %10.1f %12.0f\n", r.label,
			float64(rep.Bytes)/(1<<30), rep.BuildSeconds/60)
	}
	return sb.String(), nil
}

// widthTable renders the per-table index-width counts of recommended
// configurations (paper Tables 2 and 3).
func widthTable(l *Lab, specs []struct{ sys, family string }) (string, error) {
	var sb strings.Builder
	for _, s := range specs {
		cfg, err := l.Recommendation(s.sys, s.family)
		if err != nil {
			fmt.Fprintf(&sb, "%s %s R: no recommendation (%v)\n\n", s.sys, s.family, err)
			continue
		}
		fmt.Fprintf(&sb, "%s %s R:\n", s.sys, s.family)
		counts := cfg.WidthCounts(4)
		fmt.Fprintf(&sb, "  %-28s %4s %4s %4s %4s\n", "Relation", "1c", "2c", "3c", "4c")
		totals := make([]int, 4)
		for _, t := range conf.SortedTables(counts) {
			row := counts[t]
			fmt.Fprintf(&sb, "  %-28s %4d %4d %4d %4d\n", t, row[0], row[1], row[2], row[3])
			for i := range totals {
				totals[i] += row[i]
			}
		}
		fmt.Fprintf(&sb, "  %-28s %4d %4d %4d %4d\n", "Totals", totals[0], totals[1], totals[2], totals[3])
		if len(cfg.Views) > 0 {
			fmt.Fprintf(&sb, "  materialized views: %d\n", len(cfg.Views))
			for _, v := range cfg.Views {
				fmt.Fprintf(&sb, "    %s over %s\n", v.Name, strings.Join(v.BaseTables, " ⋈ "))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

func table2(l *Lab) (string, error) {
	return widthTable(l, []struct{ sys, family string }{
		{"A", "NREF2J"}, {"B", "NREF2J"}, {"B", "NREF3J"},
	})
}

func table3(l *Lab) (string, error) {
	return widthTable(l, []struct{ sys, family string }{
		{"C", "SkTH3Js"}, {"C", "SkTH3J"}, {"C", "UnTH3J"},
	})
}

// lowerBounds reproduces the §4.3 totals: the SkTH3J workload's total
// execution time per configuration, with timeouts counted at the limit.
func lowerBounds(l *Lab) (string, error) {
	var sb strings.Builder
	sb.WriteString("SkTH3J on System C: workload total lower bounds (timeouts at 1800s)\n\n")
	for _, cn := range []string{"P", "1C", "R:SkTH3J"} {
		c, err := l.CFC("C", "SkTH3J", cn)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "  %-10s total >= %8.0fs  (timeouts %d/%d)\n",
			strings.TrimPrefix(cn, "R:SkTH3J"), c.TotalLowerBound(), c.Timeouts(), c.N())
	}
	c1, err := l.CFC("C", "SkTH3J", "1C")
	if err != nil {
		return "", err
	}
	cr, err := l.CFC("C", "SkTH3J", "R:SkTH3J")
	if err != nil {
		return "", err
	}
	if c1.TotalLowerBound() > 0 {
		fmt.Fprintf(&sb, "\n  1C outperforms R by %.1fx on this conservative measure\n",
			cr.TotalLowerBound()/c1.TotalLowerBound())
	}
	return sb.String(), nil
}

// insertions reproduces §4.4: how many rows must be inserted into
// Neighboring_seq before 1C's slower inserts erase its faster queries
// relative to R, for systems A and B on NREF2J.
func insertions(l *Lab) (string, error) {
	var sb strings.Builder
	sb.WriteString("Insertion break-even on NREF2J (paper §4.4: ~400,000 tuples)\n\n")
	for _, sys := range []string{"A", "B"} {
		cR, err := l.CFC(sys, "NREF2J", "R:NREF2J")
		if err != nil {
			return "", err
		}
		c1, err := l.CFC(sys, "NREF2J", "1C")
		if err != nil {
			return "", err
		}
		queryGain := cR.TotalLowerBound() - c1.TotalLowerBound()

		e := l.Engine(sys, DBNref)
		cfgR, err := l.Recommendation(sys, "NREF2J")
		if err != nil {
			return "", err
		}
		em := l.lockEngine(sys, DBNref)
		em.Lock()
		l.apply(sys, DBNref, "1C", conf.Configuration{})
		ins1C := e.InsertCostPerRow("neighboring_seq")
		l.apply(sys, DBNref, "R:NREF2J", cfgR)
		insR := e.InsertCostPerRow("neighboring_seq")
		em.Unlock()

		extra := ins1C - insR
		if extra <= 0 || queryGain <= 0 {
			fmt.Fprintf(&sb, "  System %s: no break-even (queryGain=%.0fs, insert delta=%.4fs/row)\n",
				sys, queryGain, extra)
			continue
		}
		breakEven := queryGain / extra
		fmt.Fprintf(&sb, "  System %s: query gain of 1C over R %.0fs; insert cost/row 1C=%.4fs R=%.4fs\n",
			sys, queryGain, ins1C, insR)
		fmt.Fprintf(&sb, "            break-even after %.0f inserted tuples (full-scale)\n", breakEven)
	}
	return sb.String(), nil
}

// families reports the §4.1.1 family-size funnel.
func families(l *Lab) (string, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %14s %12s %8s\n", "Family", "unrestricted", "restricted", "sample")
	for _, spec := range []struct{ sys, family string }{
		{"A", "NREF2J"}, {"A", "NREF3J"}, {"C", "SkTH3J"}, {"C", "SkTH3Js"}, {"C", "UnTH3J"},
	} {
		db := dbOfFamily(spec.family)
		e := l.Engine(spec.sys, db)
		opts := defaultFamilyOptions()
		full := generateFamily(spec.family, e, opts)
		sample := l.Workload(spec.sys, spec.family)
		fmt.Fprintf(&sb, "%-10s %14d %12d %8d\n",
			spec.family, full.UnrestrictedSize, len(full.Queries), len(sample.Queries))
	}
	return sb.String(), nil
}

// goals evaluates the paper's Example 2 QoS goal against System A's
// NREF2J configurations (the paper reads this off Figure 3).
func goals(l *Lab) (string, error) {
	goal := core.Example2Goal()
	var sb strings.Builder
	sb.WriteString("Example 2 goal: 10% < 10s, 50% < 60s, 90% < 1800s\n\n")
	for _, cn := range []string{"P", "1C", "R:NREF2J"} {
		c, err := l.CFC("A", "NREF2J", cn)
		if err != nil {
			return "", err
		}
		verdict := "NOT satisfied"
		if goal.Satisfied(c) {
			verdict = "satisfied"
		}
		fmt.Fprintf(&sb, "  %-10s %s  (CFC: 10s→%.0f%%, 60s→%.0f%%, 1800s→%.0f%%)\n",
			strings.TrimPrefix(cn, "R:NREF2J"), verdict,
			100*c.At(10.0001), 100*c.At(60.0001), 100*c.At(1800.0001))
	}
	return sb.String(), nil
}

// ablationWhatIf rebuilds System B with an idealized what-if estimator
// (no conservatism penalty, locality credit granted) and compares the
// resulting recommendation against the production one and 1C. This makes
// the paper's Section 5 diagnosis runnable: better observation closes
// much of the gap.
func ablationWhatIf(l *Lab) (string, error) {
	prof := engine.SystemB()
	prof.Name = "B-ideal"
	prof.Opts.HypoRowPenalty = 1
	prof.Opts.HypoIdeal = true
	e := engine.New(l.Engine("B", DBNref).Schema, l.Scale, prof)
	must(datagenNREFInto(e, l))
	e.CollectStats()
	if _, err := e.ApplyConfig(engine.PConfiguration(e)); err != nil {
		return "", err
	}
	fam := l.Workload("B", "NREF2J")
	w := e.NewWhatIf()
	budget := w.EstimateSize(engine.OneColumnConfiguration(e))
	rec, err := newRecommender(e, "B").Recommend(fam.SQLs(), budget)
	if err != nil {
		return "", err
	}
	if _, err := e.ApplyConfig(rec); err != nil {
		return "", err
	}
	msIdeal, err := l.runner().RunWorkload(e, fam.SQLs(), Timeout)
	if err != nil {
		return "", err
	}
	cIdeal := core.NewCFC(msIdeal, Timeout)
	cR, err := l.CFC("B", "NREF2J", "R:NREF2J")
	if err != nil {
		return "", err
	}
	c1, err := l.CFC("B", "NREF2J", "1C")
	if err != nil {
		return "", err
	}
	out := core.RenderCurves("NREF2J on System B: production vs idealized what-if estimator",
		[]string{"R", "R-ideal", "1C"}, []core.CFC{cR, cIdeal, c1}, 1, Timeout)
	out += "\n" + core.SummaryTable([]string{"R", "R-ideal", "1C"}, []core.CFC{cR, cIdeal, c1})
	return out, nil
}

// ablationBudget compares the recommendation under the standard (1C-sized)
// budget with one under a 4x budget (§3.2.3 reports "unlimited" budgets
// helped in some but not all cases).
func ablationBudget(l *Lab) (string, error) {
	e := l.Engine("B", DBNref)
	fam := l.Workload("B", "NREF2J")
	budget := l.Budget("B", DBNref)
	em := l.lockEngine("B", DBNref)
	em.Lock()
	l.apply("B", DBNref, "P", conf.Configuration{})
	recBig, err := newRecommender(e, "B").Recommend(fam.SQLs(), budget*4)
	if err != nil {
		em.Unlock()
		return "", err
	}
	recBig.Name = "B NREF2J R (4x budget)"
	l.apply("B", DBNref, "Rbig:NREF2J", recBig)
	ms, err := l.runner().RunWorkload(e, fam.SQLs(), Timeout)
	em.Unlock()
	if err != nil {
		return "", err
	}
	cBig := core.NewCFC(ms, Timeout)
	cR, err := l.CFC("B", "NREF2J", "R:NREF2J")
	if err != nil {
		return "", err
	}
	c1, err := l.CFC("B", "NREF2J", "1C")
	if err != nil {
		return "", err
	}
	out := core.RenderCurves("NREF2J on System B: storage budget ablation",
		[]string{"R", "R-4x", "1C"}, []core.CFC{cR, cBig, c1}, 1, Timeout)
	out += "\n" + core.SummaryTable([]string{"R", "R-4x", "1C"}, []core.CFC{cR, cBig, c1})
	return out, nil
}

// ablationDisk re-runs A NREF2J P vs 1C under progressively cheaper random
// I/O (2005 disk → 10x → 100x cheaper seeks, approaching SSDs): the
// index-vs-scan crossover moves and the 1C advantage narrows.
func ablationDisk(l *Lab) (string, error) {
	var sb strings.Builder
	sb.WriteString("A NREF2J: total lower bound (s) as random pages get cheaper\n\n")
	fmt.Fprintf(&sb, "  %-22s %12s %12s %8s\n", "random-page cost", "P total", "1C total", "P/1C")
	e := l.Engine("A", DBNref)
	fam := l.Workload("A", "NREF2J")
	// Mutating e.Model requires exclusive use of the engine: hold the
	// cell lock for the whole sweep (restore runs before the unlock).
	em := l.lockEngine("A", DBNref)
	em.Lock()
	defer em.Unlock()
	baseModel := e.Model
	defer func() { e.Model = baseModel }()
	for _, div := range []float64{1, 10, 100} {
		m := baseModel
		m.RandPageSec = baseModel.RandPageSec / div
		e.Model = m
		var totals []float64
		for _, cn := range []string{"P", "1C"} {
			l.apply("A", DBNref, cn, conf.Configuration{})
			ms, err := l.runner().RunWorkload(e, fam.SQLs(), Timeout)
			if err != nil {
				return "", err
			}
			totals = append(totals, core.NewCFC(ms, Timeout).TotalLowerBound())
		}
		fmt.Fprintf(&sb, "  %.2fms (2005/%0.f)%8s %12.0f %12.0f %8.1f\n",
			1000*m.RandPageSec, div, "", totals[0], totals[1],
			totals[0]/math.Max(totals[1], 1))
	}
	return sb.String(), nil
}

// transitions reports the framework's transition costs (§2.2): AT(Ci, Cj)
// measured by incremental builds and ET(Ci, Cj) estimated from statistics,
// for the configuration changes a DBA would actually perform.
func transitions(l *Lab) (string, error) {
	e := l.Engine("B", DBNref)
	recR, err := l.Recommendation("B", "NREF2J")
	if err != nil {
		return "", err
	}
	p := engine.PConfiguration(e)
	oneC := engine.OneColumnConfiguration(e)

	var sb strings.Builder
	sb.WriteString("Configuration transition costs on NREF (System B), simulated minutes\n\n")
	fmt.Fprintf(&sb, "  %-22s %10s %10s\n", "transition", "ET (est)", "AT (actual)")
	steps := []struct {
		name string
		to   conf.Configuration
	}{
		{"P -> R(NREF2J)", recR},
		{"R(NREF2J) -> 1C", oneC},
		{"1C -> P", p},
		{"P -> 1C", oneC},
	}
	em := l.lockEngine("B", DBNref)
	em.Lock()
	defer em.Unlock()
	l.apply("B", DBNref, "P", conf.Configuration{})
	for _, st := range steps {
		w := e.NewWhatIf()
		et, err := w.EstimateTransition(st.to)
		if err != nil {
			return "", err
		}
		rep, err := e.Transition(st.to)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&sb, "  %-22s %10.1f %10.1f\n", st.name, et/60, rep.BuildSeconds/60)
	}
	// Leave the engine in a named state for subsequent experiments.
	l.mu.Lock()
	l.current["B:"+DBNref] = "1C"
	l.mu.Unlock()
	sb.WriteString("\nIncremental AT is far below rebuilding from scratch when\nconfigurations overlap — the observe/react loop gets cheaper.\n")
	return sb.String(), nil
}
