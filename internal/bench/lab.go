// Package bench drives the paper's experiments: it assembles engines,
// databases, workloads, configurations and recommendations, caches
// intermediate results, and regenerates every table and figure of the
// evaluation (see DESIGN.md's per-experiment index).
package bench

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/recommender"
	"repro/internal/workload"
)

// Timeout is the per-query simulated timeout (30 minutes, §4.1).
const Timeout = core.DefaultTimeout

// Lab is the experimental environment. All state is memoized: engines are
// loaded once per (system, database), workloads sampled once per family,
// recommendations computed once, and workload runs cached per
// configuration.
//
// A Lab is safe for concurrent use. Each (system, database) cell has its
// own mutex so that the engine's configuration cannot change underneath a
// running experiment; independent cells proceed concurrently, and the
// queries within one workload run fan out over the lab's worker pool.
// Lock ordering: a cell lock is always acquired before l.mu, and l.mu is
// never held across engine work (data generation, config builds, query
// runs).
type Lab struct {
	// Scale is the data scale factor relative to the paper's databases.
	Scale float64
	// WorkloadSize is the per-family sample size (the paper uses 100).
	WorkloadSize int
	Seed         int64

	// Parallelism bounds the per-workload query fan-out: 0 means
	// GOMAXPROCS, 1 runs queries sequentially. Results are identical
	// either way (the simulated clock is per-query). Recommendation
	// searches fan out with the same bound.
	Parallelism int

	// DisableWhatIfCache turns off the what-if estimate cache on every
	// engine the lab loads (the -whatif-cache=off escape hatch). Set it
	// before the first workload runs.
	DisableWhatIfCache bool

	mu        sync.Mutex
	engMu     map[string]*sync.Mutex        // conflint:guardedby mu (per (system, database) cell)
	engines   map[string]*engine.Engine     // conflint:guardedby mu
	workloads map[string]workload.Family    // conflint:guardedby mu
	recs      map[string]recResult          // conflint:guardedby mu
	runs      map[string][]core.Measure     // conflint:guardedby mu
	builds    map[string]engine.BuildReport // conflint:guardedby mu
	current   map[string]string             // conflint:guardedby mu (engine key -> applied config name)
}

type recResult struct {
	cfg conf.Configuration
	err error
}

// NewLab creates a lab at the given scale (e.g. 0.001 for 1/1000-scale
// databases billed at full scale by the simulated clock).
func NewLab(scale float64, seed int64) *Lab {
	return &Lab{
		Scale:        scale,
		WorkloadSize: 100,
		Seed:         seed,
		engMu:        make(map[string]*sync.Mutex),
		engines:      make(map[string]*engine.Engine),
		workloads:    make(map[string]workload.Family),
		recs:         make(map[string]recResult),
		runs:         make(map[string][]core.Measure),
		builds:       make(map[string]engine.BuildReport),
		current:      make(map[string]string),
	}
}

// runner returns the worker pool used for workload fan-out.
func (l *Lab) runner() core.Runner { return core.Runner{Parallelism: l.Parallelism} }

// lockEngine returns the mutex serializing use of one (system, database)
// cell. Holding it guarantees the engine's configuration stays fixed for
// the duration of an experiment step.
func (l *Lab) lockEngine(sys, db string) *sync.Mutex {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := sys + ":" + db
	m, ok := l.engMu[key]
	if !ok {
		m = new(sync.Mutex)
		l.engMu[key] = m
	}
	return m
}

// Databases and systems.
const (
	DBNref = "NREF"
	DBSkTH = "SkTH"
	DBUnTH = "UnTH"
)

func profileOf(sys string) engine.Profile {
	switch sys {
	case "A":
		return engine.SystemA()
	case "B":
		return engine.SystemB()
	case "C":
		return engine.SystemC()
	}
	panic("bench: unknown system " + sys)
}

func recConfigOf(sys string) recommender.Config {
	switch sys {
	case "A":
		return recommender.SystemA()
	case "B":
		return recommender.SystemB()
	case "C":
		return recommender.SystemC()
	}
	panic("bench: unknown system " + sys)
}

// Engine returns the loaded engine for a (system, database) pair, with
// statistics collected and the P configuration applied initially.
func (l *Lab) Engine(sys, db string) *engine.Engine {
	em := l.lockEngine(sys, db)
	em.Lock()
	defer em.Unlock()
	return l.engine(sys, db)
}

// engine loads (or returns) the cell's engine. The caller must hold the
// cell lock; l.mu is taken only around map access so other cells can
// load their databases concurrently.
func (l *Lab) engine(sys, db string) *engine.Engine {
	key := sys + ":" + db
	l.mu.Lock()
	e, ok := l.engines[key]
	l.mu.Unlock()
	if ok {
		return e
	}
	switch db {
	case DBNref:
		e = engine.New(catalog.NREF(), l.Scale, profileOf(sys))
		must(datagen.GenerateNREF(e, datagen.NREFOptions{ScaleFactor: l.Scale, Seed: l.Seed}))
	case DBSkTH:
		e = engine.New(catalog.TPCH(), l.Scale, profileOf(sys))
		must(datagen.GenerateTPCH(e, datagen.TPCHOptions{ScaleFactor: l.Scale, Seed: l.Seed, Skew: true, ZipfS: 1}))
	case DBUnTH:
		e = engine.New(catalog.TPCH(), l.Scale, profileOf(sys))
		must(datagen.GenerateTPCH(e, datagen.TPCHOptions{ScaleFactor: l.Scale, Seed: l.Seed}))
	default:
		panic("bench: unknown database " + db)
	}
	e.DisableWhatIfCache = l.DisableWhatIfCache
	e.CollectStats()
	rep, err := e.ApplyConfig(engine.PConfiguration(e))
	must(err)
	l.mu.Lock()
	l.current[key] = "P"
	l.builds[key+":P"] = rep
	l.engines[key] = e
	l.mu.Unlock()
	return e
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

// DBOfFamily maps a family name to the database it runs on. Callers
// outside the lab (the autopilot daemon assembling a stream mixture)
// use it to check that all families of a mixture share one engine.
func DBOfFamily(family string) (string, error) {
	switch family {
	case "NREF2J", "NREF3J":
		return DBNref, nil
	case "SkTH3J", "SkTH3Js":
		return DBSkTH, nil
	case "UnTH3J":
		return DBUnTH, nil
	}
	return "", fmt.Errorf("bench: unknown family %q", family)
}

// dbOfFamily is DBOfFamily for internal callers with known-good names.
func dbOfFamily(family string) string {
	db, err := DBOfFamily(family)
	if err != nil {
		panic(err)
	}
	return db
}

// Workload returns the sampled 100-query workload for the family,
// stratified by optimizer estimates in the P configuration (the sampling
// that "preserves the distribution of elapsed times of the larger family",
// §4.1.1, using estimates as the stratifier).
func (l *Lab) Workload(sys, family string) workload.Family {
	db := dbOfFamily(family)
	key := db + ":" + family
	l.mu.Lock()
	f, ok := l.workloads[key]
	l.mu.Unlock()
	if ok {
		return f
	}

	em := l.lockEngine(sys, db)
	em.Lock()
	defer em.Unlock()
	l.mu.Lock()
	f, ok = l.workloads[key]
	l.mu.Unlock()
	if ok {
		return f
	}
	e := l.engine(sys, db)
	l.apply(sys, db, "P", conf.Configuration{})
	fam := generateFamily(family, e, defaultFamilyOptions())
	fam = fam.Sample(l.WorkloadSize, func(s string) float64 {
		m, err := e.Estimate(s)
		if err != nil {
			return 0
		}
		return m.Seconds
	}, l.Seed)
	l.mu.Lock()
	l.workloads[key] = fam
	l.mu.Unlock()
	return fam
}

// Budget returns the paper's storage budget: the estimated size difference
// between 1C and P (§3.2.3). The estimate derives only from base-table
// statistics, so it needs no cell lock.
func (l *Lab) Budget(sys, db string) int64 {
	e := l.Engine(sys, db)
	w := e.NewWhatIf()
	return w.EstimateSize(engine.OneColumnConfiguration(e))
}

// Recommendation returns (and caches) the system's recommended
// configuration for the family, or the recommender's error (System A on
// NREF3J capitulates; the paper reports no configuration for it).
func (l *Lab) Recommendation(sys, family string) (conf.Configuration, error) {
	key := sys + ":" + family
	l.mu.Lock()
	if r, ok := l.recs[key]; ok {
		l.mu.Unlock()
		return r.cfg, r.err
	}
	l.mu.Unlock()

	db := dbOfFamily(family)
	fam := l.Workload(sys, family)
	e := l.Engine(sys, db)
	budget := l.Budget(sys, db)

	em := l.lockEngine(sys, db)
	em.Lock()
	defer em.Unlock()
	l.mu.Lock()
	if r, ok := l.recs[key]; ok {
		l.mu.Unlock()
		return r.cfg, r.err
	}
	l.mu.Unlock()
	l.apply(sys, db, "P", conf.Configuration{})
	r := recommender.New(e, recConfigOf(sys)).Parallel(l.Parallelism)
	cfg, err := r.Recommend(fam.SQLs(), budget)
	if err == nil {
		cfg.Name = fmt.Sprintf("%s %s R", sys, family)
	}
	l.mu.Lock()
	l.recs[key] = recResult{cfg, err}
	l.mu.Unlock()
	return cfg, err
}

// DropRecommendation forgets a memoized Recommendation result so the
// same search can be re-run (whatifbench times best-of-N repetitions).
func (l *Lab) DropRecommendation(sys, family string) {
	l.mu.Lock()
	delete(l.recs, sys+":"+family)
	l.mu.Unlock()
}

// Config materializes one of the named configurations for an engine.
func (l *Lab) Config(sys, db, name string) (conf.Configuration, error) {
	e := l.Engine(sys, db)
	switch name {
	case "P":
		return engine.PConfiguration(e), nil
	case "1C":
		return engine.OneColumnConfiguration(e), nil
	}
	// "R:<family>"
	if fam, ok := strings.CutPrefix(name, "R:"); ok {
		return l.Recommendation(sys, fam)
	}
	return conf.Configuration{}, fmt.Errorf("bench: unknown configuration %q", name)
}

// apply switches the engine to the named configuration if needed,
// recording the build report the first time each configuration is built.
// The caller must hold the cell lock.
func (l *Lab) apply(sys, db, name string, cfg conf.Configuration) {
	key := sys + ":" + db
	e := l.engine(sys, db)
	bkey := key + ":" + name
	l.mu.Lock()
	cur := l.current[key]
	l.mu.Unlock()
	if cur == name {
		return
	}
	if name == "P" {
		cfg = engine.PConfiguration(e)
	} else if name == "1C" {
		cfg = engine.OneColumnConfiguration(e)
	}
	rep, err := e.ApplyConfig(cfg)
	must(err)
	l.mu.Lock()
	if _, ok := l.builds[bkey]; !ok {
		l.builds[bkey] = rep
	}
	l.current[key] = name
	l.mu.Unlock()
}

// Run executes the family workload under the named configuration,
// returning cached per-query measures A(q, C). Queries fan out over the
// lab's worker pool; the cell lock keeps the configuration fixed for the
// duration of the run.
func (l *Lab) Run(sys, family, configName string) ([]core.Measure, error) {
	db := dbOfFamily(family)
	key := strings.Join([]string{sys, family, configName}, ":")
	l.mu.Lock()
	ms, ok := l.runs[key]
	l.mu.Unlock()
	if ok {
		return ms, nil
	}

	cfg, err := l.Config(sys, db, configName)
	if err != nil {
		return nil, err
	}
	fam := l.Workload(sys, family)

	em := l.lockEngine(sys, db)
	em.Lock()
	defer em.Unlock()
	l.mu.Lock()
	ms, ok = l.runs[key]
	l.mu.Unlock()
	if ok {
		return ms, nil
	}
	l.apply(sys, db, configName, cfg)
	ms, err = l.runner().RunWorkload(l.engine(sys, db), fam.SQLs(), Timeout)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.runs[key] = ms
	l.mu.Unlock()
	return ms, nil
}

// Estimates returns the optimizer estimates E(q, C) for the family under
// the named configuration (the engine is switched to it first).
func (l *Lab) Estimates(sys, family, configName string) ([]core.Measure, error) {
	db := dbOfFamily(family)
	cfg, err := l.Config(sys, db, configName)
	if err != nil {
		return nil, err
	}
	fam := l.Workload(sys, family)
	em := l.lockEngine(sys, db)
	em.Lock()
	defer em.Unlock()
	l.apply(sys, db, configName, cfg)
	return l.runner().EstimateWorkload(l.engine(sys, db), fam.SQLs())
}

// Hypotheticals returns H(q, Ch, P): what-if estimates for the named
// configuration taken while the system sits in P.
func (l *Lab) Hypotheticals(sys, family, configName string) ([]core.Measure, error) {
	db := dbOfFamily(family)
	cfg, err := l.Config(sys, db, configName)
	if err != nil {
		return nil, err
	}
	fam := l.Workload(sys, family)
	em := l.lockEngine(sys, db)
	em.Lock()
	defer em.Unlock()
	l.apply(sys, db, "P", conf.Configuration{})
	return l.runner().WhatIfWorkload(l.engine(sys, db), fam.SQLs(), cfg)
}

// CFC builds the cumulative frequency curve for a cached or fresh run.
func (l *Lab) CFC(sys, family, configName string) (core.CFC, error) {
	ms, err := l.Run(sys, family, configName)
	if err != nil {
		return core.CFC{}, err
	}
	return core.NewCFC(ms, Timeout), nil
}

// BuildReport returns the recorded build report for a configuration,
// building it if necessary.
func (l *Lab) BuildReport(sys, db, name string) (engine.BuildReport, error) {
	cfg, err := l.Config(sys, db, name)
	if err != nil {
		return engine.BuildReport{}, err
	}
	em := l.lockEngine(sys, db)
	em.Lock()
	defer em.Unlock()
	bkey := sys + ":" + db + ":" + name
	l.mu.Lock()
	rep, ok := l.builds[bkey]
	l.mu.Unlock()
	if ok {
		return rep, nil
	}
	l.apply(sys, db, name, cfg)
	l.mu.Lock()
	rep = l.builds[bkey]
	l.mu.Unlock()
	return rep, nil
}

// defaultFamilyOptions returns the paper's enumeration restrictions.
func defaultFamilyOptions() workload.Options { return workload.DefaultOptions() }

// generateFamily enumerates the full (restricted) family for an engine.
func generateFamily(family string, e *engine.Engine, opts workload.Options) workload.Family {
	switch family {
	case "NREF2J":
		return workload.NREF2J(e.Schema, e, opts)
	case "NREF3J":
		return workload.NREF3J(e.Schema, e, opts)
	case "SkTH3J":
		return workload.SkTH3J(e.Schema, e, opts)
	case "SkTH3Js":
		return workload.SkTH3Js(e.Schema, e, opts)
	case "UnTH3J":
		return workload.UnTH3J(e.Schema, e, opts)
	}
	panic("bench: unknown family " + family)
}

// datagenNREFInto loads a fresh NREF instance with the lab's parameters.
func datagenNREFInto(e *engine.Engine, l *Lab) error {
	return datagen.GenerateNREF(e, datagen.NREFOptions{ScaleFactor: l.Scale, Seed: l.Seed})
}

// newRecommender builds the recommender profile for a system name.
func newRecommender(e *engine.Engine, sys string) *recommender.Recommender {
	return recommender.New(e, recConfigOf(sys))
}

// ApplyNamed switches an engine to a named configuration ("P", "1C",
// "R:<family>"); exposed for debugging and example tooling.
func (l *Lab) ApplyNamed(sys, db, name string) error {
	cfg, err := l.Config(sys, db, name)
	if err != nil {
		return err
	}
	em := l.lockEngine(sys, db)
	em.Lock()
	defer em.Unlock()
	l.apply(sys, db, name, cfg)
	return nil
}
