package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// artifactScale and artifactSeed are the parameters the checked-in
// artifacts were generated with (see EXPERIMENTS.md): cmd/autobench's
// defaults of -scale 0.0005 -seed 42 -size 100.
const (
	artifactScale = 0.0005
	artifactSeed  = 42
)

// TestGoldenArtifacts regenerates the checked-in artifacts and requires
// byte-identical output, so refactors cannot silently drift the paper's
// numbers. It runs with the lab's default parallelism — a full-scale
// determinism check for free. Under -race the full-scale regeneration
// would take many minutes, so it defers to the tiny-scale tests instead.
func TestGoldenArtifacts(t *testing.T) {
	if raceEnabled {
		t.Skip("full-scale golden regeneration is too slow under -race")
	}
	if testing.Short() {
		t.Skip("golden regeneration takes ~20s; skipped with -short")
	}
	l := NewLab(artifactScale, artifactSeed)
	for _, id := range []string{"fig1", "table1", "goals"} {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, ok := Find(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			out, err := exp.Run(l)
			if err != nil {
				t.Fatal(err)
			}
			// cmd/autobench writes "# <Title>\n\n<output>\n".
			got := "# " + exp.Title + "\n\n" + out + "\n"
			path := filepath.Join("..", "..", "artifacts", id+".txt")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from checked-in artifact:\n%s", id, diffLines(string(want), got))
			}
		})
	}
}

// diffLines renders a minimal line diff for the golden failure message.
func diffLines(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	var sb strings.Builder
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			fmt.Fprintf(&sb, "line %d:\n  want: %q\n  got:  %q\n", i+1, wl, gl)
		}
	}
	if sb.Len() == 0 {
		return "(no line-level diff; trailing bytes differ)"
	}
	return sb.String()
}
