package bench

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

// TestParallelDeterminism proves the tentpole property: the parallel
// runner produces byte-identical measures to the sequential baseline for
// every family, at every pool size, including the derived CFC curves and
// goal-satisfaction verdicts. The simulated clock is per-query, so
// scheduling order cannot leak into the results.
func TestParallelDeterminism(t *testing.T) {
	l := tinyLab()
	goal := core.Example2Goal()
	for _, spec := range []struct{ sys, family string }{
		{"A", "NREF2J"},
		{"A", "NREF3J"},
		{"C", "SkTH3J"},
		{"C", "SkTH3Js"},
		{"C", "UnTH3J"},
	} {
		db := dbOfFamily(spec.family)
		fam := l.Workload(spec.sys, spec.family)
		if err := l.ApplyNamed(spec.sys, db, "P"); err != nil {
			t.Fatal(err)
		}
		e := l.Engine(spec.sys, db)

		base, err := core.RunWorkload(e, fam.SQLs(), Timeout)
		if err != nil {
			t.Fatalf("%s/%s: sequential run: %v", spec.sys, spec.family, err)
		}
		baseEst, err := core.EstimateWorkload(e, fam.SQLs())
		if err != nil {
			t.Fatalf("%s/%s: sequential estimate: %v", spec.sys, spec.family, err)
		}
		hypo := engine.OneColumnConfiguration(e)
		baseHypo, err := core.WhatIfWorkload(e, fam.SQLs(), hypo)
		if err != nil {
			t.Fatalf("%s/%s: sequential what-if: %v", spec.sys, spec.family, err)
		}
		baseCFC := core.NewCFC(base, Timeout)

		for _, n := range []int{1, 4, 16} {
			r := core.Runner{Parallelism: n}
			got, err := r.RunWorkload(e, fam.SQLs(), Timeout)
			if err != nil {
				t.Fatalf("%s/%s: parallel(%d) run: %v", spec.sys, spec.family, n, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("%s/%s: parallel(%d) measures differ from sequential", spec.sys, spec.family, n)
			}
			gotEst, err := r.EstimateWorkload(e, fam.SQLs())
			if err != nil {
				t.Fatalf("%s/%s: parallel(%d) estimate: %v", spec.sys, spec.family, n, err)
			}
			if !reflect.DeepEqual(baseEst, gotEst) {
				t.Errorf("%s/%s: parallel(%d) estimates differ from sequential", spec.sys, spec.family, n)
			}
			gotHypo, err := r.WhatIfWorkload(e, fam.SQLs(), hypo)
			if err != nil {
				t.Fatalf("%s/%s: parallel(%d) what-if: %v", spec.sys, spec.family, n, err)
			}
			if !reflect.DeepEqual(baseHypo, gotHypo) {
				t.Errorf("%s/%s: parallel(%d) what-ifs differ from sequential", spec.sys, spec.family, n)
			}

			gotCFC := core.NewCFC(got, Timeout)
			if !reflect.DeepEqual(baseCFC, gotCFC) {
				t.Errorf("%s/%s: parallel(%d) CFC differs from sequential", spec.sys, spec.family, n)
			}
			if goal.Satisfied(baseCFC) != goal.Satisfied(gotCFC) {
				t.Errorf("%s/%s: parallel(%d) goal verdict differs", spec.sys, spec.family, n)
			}
		}
	}
}

// TestLabParallelismMatchesSequential runs the same Lab experiment cell
// with a sequential lab and a 16-way lab and requires identical cached
// measures — the end-to-end version of the runner-level test above.
func TestLabParallelismMatchesSequential(t *testing.T) {
	seq := tinyLab()
	seq.Parallelism = 1
	par := tinyLab()
	par.Parallelism = 16
	for _, cn := range []string{"P", "1C"} {
		a, err := seq.Run("A", "NREF2J", cn)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Run("A", "NREF2J", cn)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("config %s: parallel lab measures differ from sequential lab", cn)
		}
	}
}
