//go:build !race

package bench

// raceEnabled reports whether the race detector is compiled in; the
// golden tests regenerate full-scale artifacts and would take many
// minutes under the detector's ~10x slowdown, so they skip themselves.
const raceEnabled = false
