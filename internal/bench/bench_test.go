package bench

import (
	"strings"
	"testing"
)

// tinyLab builds a fast lab for smoke tests.
func tinyLab() *Lab {
	l := NewLab(0.0001, 42)
	l.WorkloadSize = 12
	return l
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 20 {
		t.Fatalf("experiments = %d", len(exps))
	}
	seen := make(map[string]bool)
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Find("fig3"); !ok {
		t.Error("Find(fig3) failed")
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find(nope) should fail")
	}
}

func TestLabCachesRuns(t *testing.T) {
	l := tinyLab()
	ms1, err := l.Run("A", "NREF2J", "P")
	if err != nil {
		t.Fatal(err)
	}
	ms2, err := l.Run("A", "NREF2J", "P")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms1) != len(ms2) {
		t.Fatal("cached run differs in length")
	}
	for i := range ms1 {
		if ms1[i].Seconds != ms2[i].Seconds {
			t.Fatal("cached run differs")
		}
	}
}

func TestFig3Smoke(t *testing.T) {
	l := tinyLab()
	exp, _ := Find("fig3")
	out, err := exp.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"P", "1C", "R", "median", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1Smoke(t *testing.T) {
	l := tinyLab()
	exp, _ := Find("table1")
	out, err := exp.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A NREF P", "C SkTH 1C", "Size (GB)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
	// 1C must be bigger than P in every block.
	if strings.Count(out, "\n") < 14 {
		t.Errorf("table1 too short:\n%s", out)
	}
}

func TestBudgetMatchesPaperRule(t *testing.T) {
	l := tinyLab()
	b := l.Budget("A", DBNref)
	if b <= 0 {
		t.Fatal("budget must be positive")
	}
	// The budget is the estimated 1C-minus-P size; the actual 1C build
	// should land within a small factor.
	rep, err := l.BuildReport("A", DBNref, "1C")
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(b) / float64(rep.IndexBytes)
	if ratio < 0.25 || ratio > 4 {
		t.Errorf("budget %d vs actual 1C extra %d (ratio %.2f)", b, rep.IndexBytes, ratio)
	}
}

func TestRecommendationCapitulationIsCached(t *testing.T) {
	l := tinyLab()
	// NREF3J at 12 queries may or may not exceed A's limit; whatever the
	// outcome, it must be stable across calls.
	_, err1 := l.Recommendation("A", "NREF3J")
	_, err2 := l.Recommendation("A", "NREF3J")
	if (err1 == nil) != (err2 == nil) {
		t.Errorf("recommendation outcome unstable: %v vs %v", err1, err2)
	}
}
