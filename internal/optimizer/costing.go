package optimizer

import (
	"math"

	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/val"
)

// cardenas estimates the number of distinct pages touched by m random row
// fetches into a relation of p pages (Cardenas' approximation).
func cardenas(m, p float64) float64 {
	if p <= 0 {
		return 0
	}
	return p * (1 - math.Exp(-m/p))
}

// selOf returns the estimated selectivity of one predicate on the table.
func (s *search) selOf(info *plan.TableInfo, p sql.SelPred) float64 {
	sel := info.Stats.Selectivity(p.Col.Col, p.Op, p.Value)
	if sel <= 0 {
		sel = 0.5 / math.Max(1, float64(info.Stats.Rows))
	}
	return sel
}

// rowWidthOf returns the modeled byte width of the needed columns of the
// tables in the mask (what a real engine would carry after projection).
func (s *search) rowWidthOf(mask uint32) int {
	w := 20
	for t := range s.q.Tables {
		if mask&(1<<uint(t)) != 0 {
			w += 24 * len(s.needed[t])
		}
	}
	return w
}

// indexMatchRows estimates the rows matched by binding the first k key
// columns of an index, applying the what-if penalty for hypothetical
// indexes.
func (s *search) indexMatchRows(info *plan.TableInfo, ix *plan.IndexInfo, k int, probes float64) float64 {
	rows := float64(info.Stats.Rows)
	if k <= 0 || rows == 0 {
		return rows * probes
	}
	ndv := float64(ix.KeyNDV[k-1])
	if ndv < 1 {
		ndv = 1
	}
	m := rows / ndv * probes
	if ix.Hypothetical && !s.opts.HypoIdeal {
		m *= s.opts.hypoPenalty()
	}
	if m > rows {
		m = rows
	}
	return m
}

// indexAccessMeter bills the index traversal, leaf scan and (unless the
// index covers the query) the heap fetches for an index access producing
// totalMatch rows over the given number of probes. scaledProbes says
// whether the probe count grows with data volume (probes driven by outer
// rows or IN-set values) or is a per-query constant (a lookup bound by
// literal predicates).
//
// For non-covering access the cheaper of two fetch strategies is chosen
// (the returned bool reports the choice): per-row random fetches, or
// rid-sort / list-prefetch — sort the matching rids and read the touched
// heap pages in storage order. Rid-sort is what makes single-column
// indexes effective at percent-level selectivities on 2005 disks, and is
// only available when allowRidSort is set (pipelined index joins fetch
// row by row).
func (s *search) indexAccessMeter(info *plan.TableInfo, ix *plan.IndexInfo, probes, totalMatch float64, covering, scaledProbes, allowRidSort bool) (cost.Meter, bool) {
	var m cost.Meter
	m.FixedRand = int64(ix.Height)
	if scaledProbes {
		m.RandPages = ceilI(probes)
	} else {
		m.FixedRand += ceilI(probes)
	}
	epl := float64(ix.EntriesPerLeaf)
	if epl < 1 {
		epl = 1
	}
	m.SeqPages = ceilI(totalMatch / epl)
	m.Rows = ceilI(totalMatch)
	if covering {
		return m, false
	}
	pages := float64(info.Heap.Pages())
	if pages == 0 {
		pages = float64(info.Stats.Pages)
	}
	fetch := cardenas(totalMatch, pages)
	touched := fetch
	if ix.Hypothetical && !s.opts.HypoIdeal {
		// Derived what-if statistics cannot credit page locality: assume
		// every fetched row costs its own page.
		fetch = totalMatch
		touched = math.Min(totalMatch, pages)
	}
	sortOps := totalMatch * math.Log2(math.Max(totalMatch, 2))
	randSec := fetch * s.phys.Model.RandPageSec
	ridSec := touched*s.phys.Model.SeqPageSec + sortOps*s.phys.Model.CPUOpSec
	if allowRidSort && ridSec < randSec {
		m.SeqPages += ceilI(touched)
		m.CPUOps += ceilI(sortOps)
		return m, true
	}
	m.RandPages += ceilI(fetch)
	return m, false
}

// covers reports whether the index key columns contain every column of
// the table the query needs.
func (s *search) covers(t int, ix *plan.IndexInfo) bool {
	if s.opts.NoIndexOnly {
		return false
	}
	keySet := make(map[int]bool, len(ix.Cols))
	for _, c := range ix.Cols {
		keySet[c] = true
	}
	for c := range s.needed[t] {
		if !keySet[c] {
			return false
		}
	}
	return true
}

// bestAccessPath returns the cheapest single-table access for table
// ordinal t: sequential scan, index scan on a constant prefix/range, a
// covering full-index scan, or an IN-set-driven index probe.
func (s *search) bestAccessPath(t int) (cand, error) {
	name := s.q.Tables[t].Table.Name
	info := s.phys.TableAt(t, name)
	if info == nil {
		return cand{}, errNoTable(name)
	}
	rows := float64(info.Stats.Rows)
	sels := s.sels[t]
	ins := s.ins[t]

	filterSel := 1.0
	for _, p := range sels {
		filterSel *= s.selOf(info, p)
	}
	inSelAll := 1.0
	for _, ii := range ins {
		inSelAll *= s.inSel[ii]
	}

	// Sequential scan baseline.
	seq := &plan.SeqScan{Tab: t, Info: info}
	for _, p := range sels {
		seq.Filters = append(seq.Filters, plan.Filter{Offset: s.layout.Base[t] + p.Col.Col, Op: p.Op, Value: p.Value})
	}
	for _, ii := range ins {
		seq.Ins = append(seq.Ins, plan.InFilter{Offset: s.layout.Offset(s.q.Ins[ii].Col), SetID: ii})
	}
	seq.Est = plan.Est{Rows: rows * filterSel * inSelAll}
	seq.Est.Meter.SeqPages = info.Heap.Pages()
	seq.Est.Meter.Rows = info.Stats.Rows
	seq.Est.Meter.CPUOps = info.Stats.Rows * int64(len(sels)+len(ins))
	seq.Est.Seconds = s.phys.Model.Seconds(&seq.Est.Meter)
	best := cand{node: seq, est: seq.Est}

	for _, ix := range sortedIndexes(s.phys.IndexesAt(t, name)) {
		if c, ok := s.indexScanCand(t, info, ix, sels, ins); ok && c.est.Seconds < best.est.Seconds {
			best = c
		}
		for _, c := range s.inDrivenCands(t, info, ix, sels, ins) {
			if c.est.Seconds < best.est.Seconds {
				best = c
			}
		}
	}
	return best, nil
}

type noTableError string

func errNoTable(name string) error { return noTableError(name) }
func (e noTableError) Error() string {
	return "optimizer: table " + string(e) + " has no physical storage"
}

// indexScanCand builds the candidate for scanning the table through an
// index bound by constant predicates.
func (s *search) indexScanCand(t int, info *plan.TableInfo, ix *plan.IndexInfo, sels []sql.SelPred, ins []int) (cand, bool) {
	rows := float64(info.Stats.Rows)
	consumed := make(map[int]bool)
	eqVals := make([]val.Value, 0, len(ix.Cols))
	k := 0
	for _, col := range ix.Cols {
		found := -1
		for i, p := range sels {
			if !consumed[i] && p.Col.Col == col && p.Op == "=" {
				found = i
				break
			}
		}
		if found < 0 {
			break
		}
		consumed[found] = true
		eqVals = append(eqVals, sels[found].Value)
		k++
	}
	var rng *plan.RangeBound
	rangeSel := 1.0
	if k < len(ix.Cols) {
		for i, p := range sels {
			if consumed[i] || p.Col.Col != ix.Cols[k] {
				continue
			}
			if p.Op == "<" || p.Op == "<=" || p.Op == ">" || p.Op == ">=" {
				consumed[i] = true
				rng = &plan.RangeBound{Op: p.Op, Value: p.Value}
				rangeSel = info.Stats.RangeSelectivity(p.Col.Col, p.Op, p.Value)
				break
			}
		}
	}
	covering := s.covers(t, ix)
	if k == 0 && rng == nil && !covering {
		return cand{}, false
	}
	// Hypothetical indexes cannot be executed; they may only appear in
	// what-if estimation calls, which never execute the plan, so the
	// candidate is still valid. Actual execution requires Tree != nil
	// (guaranteed because engines never run plans from what-if calls).
	match := s.indexMatchRows(info, ix, k, 1) * rangeSel
	if k == 0 && rng == nil {
		match = rows // full covering leaf scan
	}

	node := &plan.IndexScan{
		Tab: t, Info: info, Index: ix,
		EqVals: eqVals, Range: rng, DriveInSet: -1, Covering: covering,
	}
	// Residual predicate columns are always evaluable: they are "needed"
	// columns, and covering indexes contain every needed column by
	// definition of covers().
	resSel := 1.0
	for i, p := range sels {
		if consumed[i] {
			continue
		}
		node.Filters = append(node.Filters, plan.Filter{Offset: s.layout.Base[t] + p.Col.Col, Op: p.Op, Value: p.Value})
		resSel *= s.selOf(info, p)
	}
	inSelAll := 1.0
	for _, ii := range ins {
		node.Ins = append(node.Ins, plan.InFilter{Offset: s.layout.Offset(s.q.Ins[ii].Col), SetID: ii})
		inSelAll *= s.inSel[ii]
	}
	node.Est = plan.Est{Rows: match * resSel * inSelAll}
	node.Est.Meter, node.RidSort = s.indexAccessMeter(info, ix, 1, match, covering, false, true)
	node.Est.Meter.CPUOps += ceilI(match) * int64(len(node.Filters)+len(node.Ins))
	node.Est.Seconds = s.phys.Model.Seconds(&node.Est.Meter)
	return cand{node: node, est: node.Est}, true
}

func indexHasCol(ix *plan.IndexInfo, col int) bool {
	for _, c := range ix.Cols {
		if c == col {
			return true
		}
	}
	return false
}

// inDrivenCands builds candidates that drive the index with the values of
// an IN-subquery set: one index probe per set value.
func (s *search) inDrivenCands(t int, info *plan.TableInfo, ix *plan.IndexInfo, sels []sql.SelPred, ins []int) []cand {
	out := make([]cand, 0, len(ins))
	for _, ii := range ins {
		p := s.q.Ins[ii]
		if p.Col.Col != ix.Cols[0] {
			continue
		}
		setSize := s.insets[ii].Est.Rows
		match := s.indexMatchRows(info, ix, 1, setSize)
		covering := s.covers(t, ix)
		node := &plan.IndexScan{
			Tab: t, Info: info, Index: ix,
			DriveInSet: ii, Covering: covering,
		}
		resSel := 1.0
		for _, pp := range sels {
			node.Filters = append(node.Filters, plan.Filter{Offset: s.layout.Base[t] + pp.Col.Col, Op: pp.Op, Value: pp.Value})
			resSel *= s.selOf(info, pp)
		}
		inSelAll := 1.0
		for _, jj := range ins {
			if jj == ii {
				continue
			}
			node.Ins = append(node.Ins, plan.InFilter{Offset: s.layout.Offset(s.q.Ins[jj].Col), SetID: jj})
			inSelAll *= s.inSel[jj]
		}
		node.Est = plan.Est{Rows: match * resSel * inSelAll}
		node.Est.Meter, node.RidSort = s.indexAccessMeter(info, ix, setSize, match, covering, true, true)
		node.Est.Meter.CPUOps += ceilI(match) * int64(len(node.Filters)+len(node.Ins)+1)
		node.Est.Seconds = s.phys.Model.Seconds(&node.Est.Meter)
		out = append(out, cand{node: node, est: node.Est})
	}
	return out
}

// combine tries every split of mask into two disjoint covered subsets and
// keeps the cheapest join.
func (s *search) combine(best map[uint32]cand, mask uint32) {
	for s1 := (mask - 1) & mask; s1 > 0; s1 = (s1 - 1) & mask {
		s2 := mask ^ s1
		c1, ok1 := best[s1]
		c2, ok2 := best[s2]
		if !ok1 || !ok2 {
			continue
		}
		lcols, rcols := s.joinPredsBetween(s1, s2)
		if s1 > s2 { // each unordered split once for hash joins
			if c, ok := s.hashJoinCand(c1, c2, s1, s2, lcols, rcols); ok {
				s.consider(best, mask, c)
			}
			if popcount(s1) == 1 && popcount(s2) == 1 && len(lcols) == 1 {
				for _, c := range s.mergeJoinCands(trailingTable(s1), trailingTable(s2), lcols[0], rcols[0]) {
					s.consider(best, mask, c)
				}
			}
		}
		if popcount(s2) == 1 && len(lcols) > 0 {
			t2 := trailingTable(s2)
			for _, c := range s.indexJoinCands(c1, s1, t2, lcols, rcols) {
				s.consider(best, mask, c)
			}
		}
	}
}

func trailingTable(mask uint32) int {
	for t := 0; t < 32; t++ {
		if mask&(1<<uint(t)) != 0 {
			return t
		}
	}
	return -1
}

// joinKeyNDV estimates the distinct count of the join key columns using
// base-table column statistics (ignoring upstream filtering — a standard,
// and standardly imperfect, assumption).
func (s *search) joinKeyNDV(cols []sql.QCol) float64 {
	ndv := 1.0
	for i, c := range cols {
		info := s.phys.TableAt(c.Tab, s.q.Tables[c.Tab].Table.Name)
		n := 10.0
		if info != nil && info.Stats != nil {
			n = float64(info.Stats.Cols[c.Col].NDV)
		}
		if n < 1 {
			n = 1
		}
		if i == 0 {
			ndv = n
		} else {
			ndv *= math.Sqrt(n)
		}
	}
	return ndv
}

func (s *search) hashJoinCand(c1, c2 cand, m1, m2 uint32, lcols, rcols []sql.QCol) (cand, bool) {
	r1, r2 := c1.est.Rows, c2.est.Rows
	var rowsOut float64
	if len(lcols) == 0 {
		rowsOut = r1 * r2 // cross join
	} else {
		ndv := math.Max(s.joinKeyNDV(lcols), s.joinKeyNDV(rcols))
		maxSide := math.Max(math.Max(r1, r2), 1)
		if ndv > maxSide {
			ndv = maxSide
		}
		rowsOut = r1 * r2 / math.Max(ndv, 1)
	}

	// Build on the smaller side.
	build, probe := c1, c2
	bMask, pMask := m1, m2
	bKeys, pKeys := lcols, rcols
	if r2 < r1 {
		build, probe = c2, c1
		bMask, pMask = m2, m1
		bKeys, pKeys = rcols, lcols
	}
	_ = pMask
	buildOffsets := make([]int, len(bKeys))
	probeOffsets := make([]int, len(pKeys))
	for i := range bKeys {
		buildOffsets[i] = s.layout.Offset(bKeys[i])
		probeOffsets[i] = s.layout.Offset(pKeys[i])
	}
	width := s.rowWidthOf(bMask)

	est := plan.Est{Rows: rowsOut}
	est.Meter.Add(build.est.Meter)
	est.Meter.Add(probe.est.Meter)
	est.Meter.CPUOps += ceilI(build.est.Rows) + ceilI(probe.est.Rows)
	if len(bKeys) == 0 {
		est.Meter.CPUOps += ceilI(rowsOut) // nested cross product work
	}
	buildBytes := int64(build.est.Rows) * int64(width)
	if float64(buildBytes)*s.scale() > float64(s.phys.Mem) {
		// GRACE-style spill: both sides partitioned to disk and re-read.
		probeBytes := int64(probe.est.Rows) * int64(s.rowWidthOf(pMask))
		pg := pagesFor(buildBytes) + pagesFor(probeBytes)
		est.Meter.WritePage += pg
		est.Meter.SeqPages += pg
	}
	est.Seconds = s.phys.Model.Seconds(&est.Meter)

	node := &plan.HashJoin{
		Build: build.node, Probe: probe.node,
		BuildKeys: buildOffsets, ProbeKeys: probeOffsets,
		BuildWidth: width, Est: est,
	}
	return cand{node: node, est: est}, true
}

// indexJoinCands builds index-nested-loop candidates joining the outer
// subplan to inner table t2 through each usable index.
func (s *search) indexJoinCands(outer cand, outerMask uint32, t2 int, lcols, rcols []sql.QCol) []cand {
	info := s.phys.TableAt(t2, s.q.Tables[t2].Table.Name)
	if info == nil {
		return nil
	}
	ixs := sortedIndexes(s.phys.IndexesAt(t2, info.Table.Name))
	out := make([]cand, 0, len(ixs))
	sels := s.sels[t2]
	ins := s.ins[t2]
	for _, ix := range ixs {
		consumedSel := make(map[int]bool)
		consumedJoin := make(map[int]bool)
		binds := make([]plan.KeyBind, 0, len(ix.Cols))
		joinBinds := 0
		for _, col := range ix.Cols {
			bound := false
			for i, p := range sels {
				if !consumedSel[i] && p.Col.Col == col && p.Op == "=" {
					v := p.Value
					binds = append(binds, plan.KeyBind{Const: &v})
					consumedSel[i] = true
					bound = true
					break
				}
			}
			if !bound {
				for i := range lcols {
					if !consumedJoin[i] && rcols[i].Tab == t2 && rcols[i].Col == col {
						binds = append(binds, plan.KeyBind{OuterOffset: s.layout.Offset(lcols[i])})
						consumedJoin[i] = true
						joinBinds++
						bound = true
						break
					}
				}
			}
			if !bound {
				break
			}
		}
		if joinBinds == 0 {
			continue
		}
		k := len(binds)
		covering := s.covers(t2, ix)

		perProbe := s.indexMatchRows(info, ix, k, 1)
		probes := outer.est.Rows
		totalMatch := probes * perProbe

		node := &plan.IndexJoin{
			Outer: outer.node, Tab: t2, Info: info, Index: ix,
			Binds: binds, Covering: covering,
		}
		// Residual join predicates (columns are needed, hence present even
		// under a covering index).
		postSel := 1.0
		for i := range lcols {
			if consumedJoin[i] {
				continue
			}
			node.PostEq = append(node.PostEq, plan.EqPair{
				A: s.layout.Offset(lcols[i]), B: s.layout.Offset(rcols[i]),
			})
			nd := math.Max(s.joinKeyNDV(lcols[i:i+1]), s.joinKeyNDV(rcols[i:i+1]))
			postSel /= math.Max(nd, 1)
		}
		// Residual selections.
		resSel := 1.0
		for i, p := range sels {
			if consumedSel[i] {
				continue
			}
			node.Filters = append(node.Filters, plan.Filter{Offset: s.layout.Base[t2] + p.Col.Col, Op: p.Op, Value: p.Value})
			resSel *= s.selOf(info, p)
		}
		inSelAll := 1.0
		for _, ii := range ins {
			node.Ins = append(node.Ins, plan.InFilter{Offset: s.layout.Offset(s.q.Ins[ii].Col), SetID: ii})
			inSelAll *= s.inSel[ii]
		}

		est := plan.Est{Rows: totalMatch * postSel * resSel * inSelAll}
		est.Meter.Add(outer.est.Meter)
		am, _ := s.indexAccessMeter(info, ix, probes, totalMatch, covering, true, false)
		est.Meter.Add(am)
		est.Meter.CPUOps += ceilI(probes) * 2
		est.Meter.CPUOps += ceilI(totalMatch) * int64(len(node.Filters)+len(node.Ins)+len(node.PostEq))
		est.Seconds = s.phys.Model.Seconds(&est.Meter)
		node.Est = est
		out = append(out, cand{node: node, est: est})
	}
	return out
}
