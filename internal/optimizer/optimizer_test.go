package optimizer

import (
	"strings"
	"testing"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/conf"
	"repro/internal/cost"
	"repro/internal/plan"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/val"
)

// fixture builds a two-table physical design:
//
//	big(a BIGINT unique-ish, b BIGINT 100 distinct, c VARCHAR 26 distinct)  20k rows
//	small(x BIGINT joins big.b, y BIGINT)                                    500 rows
type fixture struct {
	schema *catalog.Schema
	phys   *plan.Physical
}

func buildIndex(h *storage.Heap, d conf.IndexDef) *plan.IndexInfo {
	cols := make([]int, len(d.Columns))
	for i, c := range d.Columns {
		cols[i] = h.Table.ColumnIndex(c)
	}
	tree := btree.New(false)
	h.Scan(nil, func(id storage.RowID, r val.Row) bool {
		if err := tree.Insert(r.Project(cols), int64(id)); err != nil {
			panic(err)
		}
		return true
	})
	// Measure exact prefix NDVs by an ordered walk.
	ndv := make([]int64, len(cols))
	var prev val.Row
	it := tree.Scan()
	for {
		k, _, ok := it.Next()
		if !ok {
			break
		}
		changed := prev == nil
		for i := range cols {
			if !changed && val.Compare(prev[i], k[i]) != 0 {
				changed = true
			}
			if changed {
				ndv[i]++
			}
		}
		prev = append(prev[:0], k...)
	}
	return &plan.IndexInfo{
		Def: d, Cols: cols, Tree: tree,
		KeyNDV:         ndv,
		Height:         tree.Height(),
		LeafPages:      tree.LeafPages(),
		EntriesPerLeaf: tree.EntriesPerLeafPage(),
		Bytes:          tree.Bytes(),
	}
}

func newFixture(t *testing.T, indexes ...conf.IndexDef) *fixture {
	t.Helper()
	schema := catalog.NewSchema("fx")
	big := catalog.MustTable("big", []catalog.Column{
		{Name: "a", Type: catalog.TypeInt, Indexable: true},
		{Name: "b", Type: catalog.TypeInt, Domain: "d", Indexable: true},
		{Name: "c", Type: catalog.TypeString, Indexable: true, AvgWidth: 6},
		// A wide payload makes the heap much larger than any index, so
		// covering plans have something to win (like NREF's sequence
		// column).
		{Name: "payload", Type: catalog.TypeString, AvgWidth: 220},
	}, []string{"a"})
	small := catalog.MustTable("small", []catalog.Column{
		{Name: "x", Type: catalog.TypeInt, Domain: "d", Indexable: true},
		{Name: "y", Type: catalog.TypeInt, Indexable: true},
	}, nil)
	schema.MustAdd(big)
	schema.MustAdd(small)

	hb := storage.NewHeap(big)
	for i := 0; i < 20000; i++ {
		_, err := hb.Insert(nil, val.Row{
			val.Int(int64(i)),
			val.Int(int64(i % 100)),
			val.String(string(rune('a' + i%26))),
			val.String("payload"),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Rare b values 100..119 (frequency 2): material for selective
	// HAVING COUNT(*) < k subqueries.
	for i := 0; i < 40; i++ {
		_, err := hb.Insert(nil, val.Row{
			val.Int(int64(20000 + i)),
			val.Int(int64(100 + i/2)),
			val.String("rare"),
			val.String("payload"),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	hs := storage.NewHeap(small)
	for i := 0; i < 500; i++ {
		_, err := hs.Insert(nil, val.Row{val.Int(int64(i % 100)), val.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Rare x values 100..109 (frequency 1).
	for i := 0; i < 10; i++ {
		_, err := hs.Insert(nil, val.Row{val.Int(int64(100 + i)), val.Int(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
	}

	phys := &plan.Physical{
		Schema: schema,
		Tables: map[string]*plan.TableInfo{
			"big":   {Table: big, Heap: hb, Stats: stats.Collect(hb)},
			"small": {Table: small, Heap: hs, Stats: stats.Collect(hs)},
		},
		Indexes: make(map[string][]*plan.IndexInfo),
		Mem:     256 << 20,
		Model:   cost.Desktop2005().WithScale(1000),
	}
	for _, d := range indexes {
		key := strings.ToLower(d.Table)
		h := phys.Tables[key].Heap
		phys.Indexes[key] = append(phys.Indexes[key], buildIndex(h, d))
	}
	return &fixture{schema: schema, phys: phys}
}

func (f *fixture) optimize(t *testing.T, text string, opts Options) *plan.Plan {
	t.Helper()
	stmt, err := sql.ParseSelect(text)
	if err != nil {
		t.Fatal(err)
	}
	q, err := sql.Analyze(f.schema, stmt)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(f.phys, q, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSelectiveEqUsesIndex(t *testing.T) {
	f := newFixture(t, conf.IndexDef{Table: "big", Columns: []string{"a"}})
	p := f.optimize(t, "SELECT a, c FROM big WHERE a = 7", Options{})
	if _, ok := p.Root.(*plan.Project); !ok {
		t.Fatalf("root = %T", p.Root)
	}
	scan, ok := p.Root.(*plan.Project).Input.(*plan.IndexScan)
	if !ok {
		t.Fatalf("expected IndexScan, got %s", p.Explain())
	}
	if len(scan.EqVals) != 1 || scan.EqVals[0].I != 7 {
		t.Errorf("eq prefix = %v", scan.EqVals)
	}
}

func TestUnselectiveEqPrefersScan(t *testing.T) {
	// b = 5 matches 1% of a 20k-row narrow table: with rid-sort available
	// the optimizer may pick either; what matters is it never picks a
	// per-row random-fetch plan costing more than the scan.
	f := newFixture(t, conf.IndexDef{Table: "big", Columns: []string{"b"}})
	p := f.optimize(t, "SELECT b, COUNT(*) FROM big WHERE b = 5 GROUP BY b", Options{})
	seqAlt := f.optimize(t, "SELECT b, COUNT(*) FROM big WHERE b = 5 GROUP BY b", Options{NoIndexOnly: true})
	if p.Est.Seconds > seqAlt.Est.Seconds*1.01 {
		t.Errorf("chosen plan (%.2fs) worse than alternative (%.2fs)", p.Est.Seconds, seqAlt.Est.Seconds)
	}
}

func TestCoveringIndexOnlyScan(t *testing.T) {
	f := newFixture(t, conf.IndexDef{Table: "big", Columns: []string{"b", "c"}})
	p := f.optimize(t, "SELECT b, COUNT(DISTINCT c) FROM big GROUP BY b", Options{})
	agg, ok := p.Root.(*plan.HashAgg)
	if !ok {
		t.Fatalf("root = %T", p.Root)
	}
	scan, ok := agg.Input.(*plan.IndexScan)
	if !ok || !scan.Covering {
		t.Fatalf("expected covering index scan:\n%s", p.Explain())
	}
}

func TestNoIndexOnlyOption(t *testing.T) {
	f := newFixture(t, conf.IndexDef{Table: "big", Columns: []string{"b", "c"}})
	p := f.optimize(t, "SELECT b, COUNT(DISTINCT c) FROM big GROUP BY b", Options{NoIndexOnly: true})
	if _, ok := p.Root.(*plan.HashAgg).Input.(*plan.SeqScan); !ok {
		t.Fatalf("NoIndexOnly should force a scan:\n%s", p.Explain())
	}
}

func TestIndexJoinForSelectiveOuter(t *testing.T) {
	f := newFixture(t, conf.IndexDef{Table: "big", Columns: []string{"b"}})
	// small filtered to one row, then joined into big.b: expect an index
	// join (or at least a plan far cheaper than scanning big).
	p := f.optimize(t, `SELECT s.y, COUNT(*) FROM small s, big g
		WHERE s.x = g.b AND s.y = 3 GROUP BY s.y`, Options{})
	foundIndexJoin := false
	var walk func(n plan.Node)
	walk = func(n plan.Node) {
		switch n := n.(type) {
		case *plan.IndexJoin:
			foundIndexJoin = true
		case *plan.HashJoin:
			walk(n.Build)
			walk(n.Probe)
		case *plan.HashAgg:
			walk(n.Input)
		case *plan.Project:
			walk(n.Input)
		}
	}
	walk(p.Root)
	if !foundIndexJoin {
		t.Logf("no index join chosen; plan:\n%s", p.Explain())
		// Acceptable only if cheaper than the scan-based plan.
		noIx := f.optimize(t, `SELECT s.y, COUNT(*) FROM small s, big g
			WHERE s.x = g.b AND s.y = 3 GROUP BY s.y`, Options{NoIndexOnly: true})
		if p.Est.Seconds > noIx.Est.Seconds {
			t.Error("chosen plan worse than scan plan")
		}
	}
}

// TestMergeJoinForCoOccurrence reproduces the NREF2J plan shape: both
// join columns restricted to infrequent values and indexed, group-by on a
// non-indexed column. The merge join applies the IN sets at the key level
// and fetches only the handful of surviving rows — far cheaper than
// scanning the wide heap.
func TestMergeJoinForCoOccurrence(t *testing.T) {
	f := newFixture(t,
		conf.IndexDef{Table: "big", Columns: []string{"b"}},
		conf.IndexDef{Table: "small", Columns: []string{"x"}})
	const q = `SELECT g.c, COUNT(*) FROM big g, small s
		WHERE g.b = s.x
		  AND g.b IN (SELECT b FROM big GROUP BY b HAVING COUNT(*) < 3)
		  AND s.x IN (SELECT x FROM small GROUP BY x HAVING COUNT(*) < 3)
		GROUP BY g.c`
	p := f.optimize(t, q, Options{})
	mj, ok := p.Root.(*plan.HashAgg).Input.(*plan.MergeJoin)
	if !ok {
		t.Fatalf("expected merge join:\n%s", p.Explain())
	}
	if len(mj.L.KeyIns)+len(mj.R.KeyIns) != 2 {
		t.Errorf("both IN filters should apply at the key level: %d/%d",
			len(mj.L.KeyIns), len(mj.R.KeyIns))
	}
	noIx := f.optimize(t, q, Options{NoIndexOnly: true})
	if p.Est.Seconds*3 > noIx.Est.Seconds {
		t.Errorf("merge join (%.1fs) should be far cheaper than scanning (%.1fs)",
			p.Est.Seconds, noIx.Est.Seconds)
	}
}

func TestHypotheticalPenaltyIncreasesEstimate(t *testing.T) {
	f := newFixture(t)
	// A hypothetical index on big.b.
	info := f.phys.Tables["big"]
	hypo := &plan.IndexInfo{
		Def:          conf.IndexDef{Table: "big", Columns: []string{"b"}},
		Cols:         []int{1},
		Hypothetical: true,
		KeyNDV:       []int64{100},
		Height:       2, LeafPages: 50, EntriesPerLeaf: 200,
		Bytes: 50 * 4096,
	}
	_ = info
	f.phys.Indexes["big"] = []*plan.IndexInfo{hypo}
	q := "SELECT a, c FROM big WHERE b = 5"
	plain := f.optimize(t, q, Options{HypoRowPenalty: 1})
	penal := f.optimize(t, q, Options{HypoRowPenalty: 10})
	ideal := f.optimize(t, q, Options{HypoRowPenalty: 10, HypoIdeal: true})
	if penal.Est.Seconds < plain.Est.Seconds {
		t.Errorf("penalty should not reduce the estimate: %v vs %v", penal.Est.Seconds, plain.Est.Seconds)
	}
	if ideal.Est.Seconds > plain.Est.Seconds*1.01 {
		t.Errorf("HypoIdeal should neutralize the penalty: %v vs %v", ideal.Est.Seconds, plain.Est.Seconds)
	}
}

func TestInSetPlanPrefersIndex(t *testing.T) {
	f := newFixture(t, conf.IndexDef{Table: "big", Columns: []string{"b"}})
	p := f.optimize(t, `SELECT y, COUNT(*) FROM small
		WHERE x IN (SELECT b FROM big GROUP BY b HAVING COUNT(*) < 300) GROUP BY y`, Options{})
	if len(p.InSets) != 1 {
		t.Fatalf("insets = %d", len(p.InSets))
	}
	if p.InSets[0].Index == nil {
		t.Errorf("IN-set should use the index on big.b:\n%s", p.Explain())
	}
	// Without the index: sequential aggregation.
	f2 := newFixture(t)
	p2 := f2.optimize(t, `SELECT y, COUNT(*) FROM small
		WHERE x IN (SELECT b FROM big GROUP BY b HAVING COUNT(*) < 300) GROUP BY y`, Options{})
	if p2.InSets[0].Index != nil {
		t.Error("no index available, yet the IN-set plan claims one")
	}
}

func TestEstimateWithinFactorOfActualCosts(t *testing.T) {
	// Cardinality sanity: estimated output rows for a grouped query are
	// positive and bounded by input size.
	f := newFixture(t)
	p := f.optimize(t, "SELECT b, COUNT(*) FROM big GROUP BY b", Options{})
	if p.Root.Estimate().Rows <= 0 || p.Root.Estimate().Rows > 20000 {
		t.Errorf("group estimate = %v", p.Root.Estimate().Rows)
	}
	if p.Est.Seconds <= 0 {
		t.Error("estimate must be positive")
	}
}

func TestRangePlan(t *testing.T) {
	f := newFixture(t, conf.IndexDef{Table: "big", Columns: []string{"a"}})
	p := f.optimize(t, "SELECT a, c FROM big WHERE a < 50", Options{})
	scan, ok := p.Root.(*plan.Project).Input.(*plan.IndexScan)
	if !ok || scan.Range == nil {
		t.Fatalf("expected range index scan:\n%s", p.Explain())
	}
	if scan.Range.Op != "<" || scan.Range.Value.I != 50 {
		t.Errorf("range = %+v", scan.Range)
	}
}

func TestCrossJoinFallback(t *testing.T) {
	f := newFixture(t)
	p := f.optimize(t, "SELECT y, COUNT(*) FROM small s, big g GROUP BY y", Options{})
	if p.Est.Rows <= 0 {
		t.Error("cross join must still plan")
	}
	hj, ok := p.Root.(*plan.HashAgg).Input.(*plan.HashJoin)
	if !ok || len(hj.BuildKeys) != 0 {
		t.Fatalf("expected keyless hash join:\n%s", p.Explain())
	}
}

func TestTailFraction(t *testing.T) {
	cases := []struct {
		op       string
		k, avg   float64
		min, max float64
	}{
		{"<", 4, 3.65, 0.3, 0.6},
		{"<", 1, 10, 0, 0},
		{">", 1, 10, 0.9, 1},
		{"=", 2, 2, 0.2, 0.5},
		{"<=", 100, 3, 1, 1},
	}
	for _, c := range cases {
		got := tailFraction(c.op, c.k, c.avg)
		if got < c.min || got > c.max {
			t.Errorf("tailFraction(%s, %v, %v) = %v, want [%v, %v]",
				c.op, c.k, c.avg, got, c.min, c.max)
		}
	}
}
