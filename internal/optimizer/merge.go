package optimizer

import (
	"math"

	"repro/internal/plan"
	"repro/internal/sql"
)

// mergeJoinCands builds merge-join candidates for a single equality join
// between two leaf tables, one per pair of indexes led by the join
// columns. The join runs entirely over the ordered index leaves;
// key-level predicates (constants and IN sets on the join column) are
// applied before any heap fetch, and non-covered sides fetch only the
// surviving rows, rid-sorted.
func (s *search) mergeJoinCands(t1, t2 int, lc, rc sql.QCol) []cand {
	info1 := s.phys.TableAt(t1, s.q.Tables[t1].Table.Name)
	info2 := s.phys.TableAt(t2, s.q.Tables[t2].Table.Name)
	if info1 == nil || info2 == nil {
		return nil
	}
	// joinPredsBetween may orient (lc, rc) either way; normalize to t1/t2.
	if lc.Tab != t1 {
		lc, rc = rc, lc
	}
	if lc.Tab != t1 || rc.Tab != t2 {
		return nil
	}

	ixs1 := sortedIndexes(s.phys.IndexesAt(t1, info1.Table.Name))
	out := make([]cand, 0, len(ixs1))
	for _, ix1 := range ixs1 {
		if ix1.Cols[0] != lc.Col {
			continue
		}
		for _, ix2 := range sortedIndexes(s.phys.IndexesAt(t2, info2.Table.Name)) {
			if ix2.Cols[0] != rc.Col {
				continue
			}
			if s.opts.HypoNoMergeJoin && !s.opts.HypoIdeal &&
				(ix1.Hypothetical || ix2.Hypothetical) {
				continue
			}
			if c, ok := s.mergeJoinCand(t1, t2, lc, rc, info1, info2, ix1, ix2); ok {
				out = append(out, c)
			}
		}
	}
	return out
}

// buildMergeSide splits the table's predicates into key-level (on the join
// column) and post (everything else), estimating the key-level
// selectivity.
func (s *search) buildMergeSide(t int, joinCol int, info *plan.TableInfo, ix *plan.IndexInfo) (plan.MergeSide, float64, float64) {
	side := plan.MergeSide{Tab: t, Info: info, Index: ix, Covering: s.covers(t, ix)}
	keySel, postSel := 1.0, 1.0
	for _, p := range s.sels[t] {
		if p.Col.Col == joinCol {
			side.KeyPreds = append(side.KeyPreds, plan.KeyPred{Op: p.Op, Value: p.Value})
			keySel *= s.selOf(info, p)
		} else {
			side.PostFilters = append(side.PostFilters, plan.Filter{
				Offset: s.layout.Base[t] + p.Col.Col, Op: p.Op, Value: p.Value,
			})
			postSel *= s.selOf(info, p)
		}
	}
	for _, ii := range s.ins[t] {
		p := s.q.Ins[ii]
		if p.Col.Col == joinCol {
			side.KeyIns = append(side.KeyIns, plan.KeyIn{SetID: ii})
			keySel *= s.inSel[ii]
		} else {
			side.PostIns = append(side.PostIns, plan.InFilter{
				Offset: s.layout.Offset(p.Col), SetID: ii,
			})
			postSel *= s.inSel[ii]
		}
	}
	return side, keySel, postSel
}

func (s *search) mergeJoinCand(t1, t2 int, lc, rc sql.QCol,
	info1, info2 *plan.TableInfo, ix1, ix2 *plan.IndexInfo) (cand, bool) {

	side1, keySel1, postSel1 := s.buildMergeSide(t1, lc.Col, info1, ix1)
	side2, keySel2, postSel2 := s.buildMergeSide(t2, rc.Col, info2, ix2)

	rows1 := float64(info1.Stats.Rows)
	rows2 := float64(info2.Stats.Rows)
	f1 := rows1 * keySel1
	f2 := rows2 * keySel2
	ndv := math.Max(s.joinKeyNDV([]sql.QCol{lc}), s.joinKeyNDV([]sql.QCol{rc}))
	pairs := f1 * f2 / math.Max(ndv, 1)
	// What-if conservatism: derived statistics cannot promise tight key
	// runs, so hypothetical merge joins are assumed to pair up more rows.
	if (ix1.Hypothetical || ix2.Hypothetical) && !s.opts.HypoIdeal {
		pairs *= s.opts.hypoPenalty()
		if pairs > f1*f2 {
			pairs = f1 * f2
		}
	}

	node := &plan.MergeJoin{L: side1, R: side2}
	est := plan.Est{Rows: pairs * postSel1 * postSel2}

	// Leaf scans of both indexes.
	est.Meter.FixedRand = int64(ix1.Height + ix2.Height)
	est.Meter.SeqPages = ix1.LeafPages + ix2.LeafPages
	est.Meter.Rows = info1.Stats.Rows + info2.Stats.Rows
	est.Meter.CPUOps = int64(rows1)*int64(1+len(side1.KeyPreds)+len(side1.KeyIns)) +
		int64(rows2)*int64(1+len(side2.KeyPreds)+len(side2.KeyIns))

	// Fetches of surviving rows, rid-sorted, per non-covered side.
	for i, side := range []*plan.MergeSide{&node.L, &node.R} {
		if side.Covering {
			continue
		}
		info := info1
		filtered := f1
		if i == 1 {
			info = info2
			filtered = f2
		}
		fetch := math.Min(pairs, filtered)
		pages := float64(info.Heap.Pages())
		touched := cardenas(fetch, pages)
		if (ix1.Hypothetical || ix2.Hypothetical) && !s.opts.HypoIdeal {
			touched = math.Min(fetch, pages)
		}
		est.Meter.SeqPages += ceilI(touched)
		est.Meter.CPUOps += ceilI(fetch * math.Log2(math.Max(fetch, 2)))
	}
	// Pair assembly and post-predicate work.
	est.Meter.CPUOps += ceilI(pairs) * int64(1+len(side1.PostFilters)+len(side1.PostIns)+
		len(side2.PostFilters)+len(side2.PostIns))
	est.Seconds = s.phys.Model.Seconds(&est.Meter)
	node.Est = est
	return cand{node: node, est: est}, true
}
