// Package optimizer implements the benchmark engine's cost-based query
// optimizer: access-path selection (sequential, index, index-only and
// materialized-view scans), join ordering via dynamic programming over
// table subsets, hash and index-nested-loop joins, and hash aggregation.
//
// The same optimizer serves three roles in the paper's framework:
//
//   - picking the plan the executor runs (actual cost A comes from running
//     that plan);
//   - producing the estimate E(q, C) for the current configuration;
//   - producing the hypothetical estimate H(q, Ch, Ca) when the Physical
//     description contains hypothetical indexes whose statistics were
//     derived rather than measured (the what-if path used by recommenders).
//
// Options carries the profile knobs that differentiate the simulated
// commercial systems (paper Systems A, B and C).
package optimizer

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/plan"
	"repro/internal/sql"
)

// Options controls optimizer behavior for a system profile.
type Options struct {
	// HypoRowPenalty (>= 1) multiplies the estimated matching row count of
	// lookups through hypothetical indexes. It models the conservatism of
	// derived what-if statistics that the paper's Figure 10 exposes
	// (curve H1C vs E1C). 0 means 1 (no penalty).
	HypoRowPenalty float64
	// HypoIdeal grants hypothetical indexes the same treatment as built
	// ones (no penalty, locality credit). Used by the what-if ablation:
	// "what if the recommender could observe?" (paper §6's missing
	// observation step).
	HypoIdeal bool
	// HypoNoMergeJoin hides index-to-index merge joins and index-only
	// IN-set computation from hypothetical estimation: the what-if
	// interface prices a proposed index only through lookup- and
	// covering-scan-style plans. This is the blind spot that makes a
	// recommender "miss the potential gains brought by single column
	// indexes" (the paper's closing recommendation).
	HypoNoMergeJoin bool
	// NoViews disables materialized-view matching (System A and B do not
	// recommend or use views in the NREF experiments).
	NoViews bool
	// NoIndexOnly disables covering (index-only) scans.
	NoIndexOnly bool
}

func (o Options) hypoPenalty() float64 {
	if o.HypoRowPenalty < 1 {
		return 1
	}
	return o.HypoRowPenalty
}

// Optimize picks the cheapest plan for the analyzed query under the given
// physical design.
func Optimize(phys *plan.Physical, q *sql.Query, opts Options) (*plan.Plan, error) {
	o := &search{phys: phys, q: q, opts: opts, layout: plan.NewLayout(q)}
	return o.run()
}

// cand is a candidate subplan covering a set of tables.
type cand struct {
	node plan.Node
	est  plan.Est
}

type search struct {
	phys   *plan.Physical
	q      *sql.Query
	opts   Options
	layout plan.Layout

	insets []plan.InSetPlan
	// inSel[i] is the estimated selectivity of IN predicate i on its
	// outer column.
	inSel []float64

	// per-table predicate partitions (by table ordinal)
	sels [][]sql.SelPred
	ins  [][]int // indexes into q.Ins

	// needed[t] is the set of column offsets of table t referenced
	// anywhere in the query (for covering-index checks).
	needed []map[int]bool
}

func (s *search) run() (*plan.Plan, error) {
	n := len(s.q.Tables)
	if n == 0 {
		return nil, fmt.Errorf("optimizer: query has no tables")
	}
	if n > 12 {
		return nil, fmt.Errorf("optimizer: too many tables (%d)", n)
	}
	s.partitionPredicates()
	s.computeNeeded()
	if err := s.planInSets(); err != nil {
		return nil, err
	}

	best := make(map[uint32]cand)

	// Single-table access paths.
	for t := 0; t < n; t++ {
		c, err := s.bestAccessPath(t)
		if err != nil {
			return nil, err
		}
		s.consider(best, 1<<uint(t), c)
	}

	// Materialized-view seeds (may cover multiple tables).
	if !s.opts.NoViews {
		for _, vc := range s.viewCandidates() {
			s.consider(best, vc.mask, vc.cand)
		}
	}

	// DP over subsets.
	full := uint32(1<<uint(n)) - 1
	for mask := uint32(1); mask <= full; mask++ {
		if _, ok := best[mask]; ok && popcount(mask) == 1 {
			continue
		}
		s.combine(best, mask)
	}
	root, ok := best[full]
	if !ok {
		return nil, fmt.Errorf("optimizer: no plan for %d tables", n)
	}

	top, topEst := s.finalize(root)
	total := topEst
	for _, is := range s.insets {
		total.Meter.Add(is.Est.Meter)
	}
	total.Seconds = s.phys.Model.Seconds(&total.Meter)
	return &plan.Plan{
		Query:  s.q,
		Layout: s.layout,
		Root:   top,
		InSets: s.insets,
		Mem:    s.phys.Mem,
		Est:    total,
	}, nil
}

// consider keeps the cheaper candidate for the mask.
func (s *search) consider(best map[uint32]cand, mask uint32, c cand) {
	if cur, ok := best[mask]; !ok || c.est.Seconds < cur.est.Seconds {
		best[mask] = c
	}
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// partitionPredicates splits selections and IN predicates by table.
func (s *search) partitionPredicates() {
	n := len(s.q.Tables)
	s.sels = make([][]sql.SelPred, n)
	for _, p := range s.q.Sels {
		s.sels[p.Col.Tab] = append(s.sels[p.Col.Tab], p)
	}
	s.ins = make([][]int, n)
	for i, p := range s.q.Ins {
		s.ins[p.Col.Tab] = append(s.ins[p.Col.Tab], i)
	}
}

// computeNeeded collects, per table, every column the query references.
func (s *search) computeNeeded() {
	n := len(s.q.Tables)
	s.needed = make([]map[int]bool, n)
	for i := range s.needed {
		s.needed[i] = make(map[int]bool)
	}
	add := func(c sql.QCol) { s.needed[c.Tab][c.Col] = true }
	for _, j := range s.q.Joins {
		add(j.L)
		add(j.R)
	}
	for _, p := range s.q.Sels {
		add(p.Col)
	}
	for _, p := range s.q.Ins {
		add(p.Col)
	}
	for _, g := range s.q.GroupBy {
		add(g)
	}
	for _, a := range s.q.Aggs {
		if a.Kind != sql.AggCountStar {
			add(a.Col)
		}
	}
	for _, o := range s.q.Out {
		if o.Kind == sql.OutCol {
			add(o.Col)
		}
	}
}

// planInSets chooses how each IN-subquery set is computed and estimates
// its size and cost.
func (s *search) planInSets() error {
	for _, p := range s.q.Ins {
		info := s.phys.Table(p.SubTable.Name)
		if info == nil {
			return fmt.Errorf("optimizer: no physical table %s", p.SubTable.Name)
		}
		is := plan.InSetPlan{Pred: p, Info: info}

		// Prefer an index whose first key column is the subquery column:
		// the set streams out of an index-only scan in sorted order.
		// Hypothetical indexes qualify too — what-if estimation must see
		// this benefit (plans from what-if calls are never executed).
		if !s.opts.NoIndexOnly && len(p.SubSels) == 0 {
			for _, ix := range sortedIndexes(s.phys.IndexesOn(p.SubTable.Name)) {
				if len(ix.Cols) >= 1 && ix.Cols[0] == p.SubCol {
					if ix.Hypothetical && s.opts.HypoNoMergeJoin && !s.opts.HypoIdeal {
						continue // lookup-only what-if (see Options)
					}
					is.Index = ix
					break
				}
			}
		}
		if is.Index != nil {
			// Walk all leaf entries of the index.
			entries := float64(info.Stats.Rows)
			is.Est.Meter.SeqPages = ceilI(entries / float64(is.Index.EntriesPerLeaf))
			is.Est.Meter.FixedRand = int64(is.Index.Height)
			is.Est.Meter.Rows = int64(entries)
		} else {
			is.Est.Meter.SeqPages = info.Heap.Pages()
			is.Est.Meter.Rows = info.Stats.Rows
			// Hash aggregation over the subquery column.
			is.Est.Meter.CPUOps = info.Stats.Rows
			g := info.Stats.Cols[p.SubCol].NDV
			bytes := g * 24
			if float64(bytes)*s.scale() > float64(s.phys.Mem) {
				pg := pagesFor(bytes)
				is.Est.Meter.WritePage += pg
				is.Est.Meter.SeqPages += pg
			}
		}
		setSize, rowFrac := s.estimateInSetSize(p, info)
		is.Est.Rows = setSize
		is.Est.Seconds = s.phys.Model.Seconds(&is.Est.Meter)
		s.insets = append(s.insets, is)

		// Selectivity of "col IN set" on the outer column. When the
		// predicate is self-referential (col IN (SELECT col FROM its own
		// table ...)), the row fraction follows directly from the HAVING
		// analysis: sets of infrequent values cover few rows. Otherwise
		// assume the outer column's values are uniformly likely to land
		// in the set.
		outerName := s.q.Tables[p.Col.Tab].Table.Name
		sel := 1.0
		if strings.EqualFold(outerName, p.SubTable.Name) && p.Col.Col == p.SubCol {
			sel = rowFrac
		} else if oInfo := s.phys.Table(outerName); oInfo != nil && oInfo.Stats != nil {
			if ndv := float64(oInfo.Stats.Cols[p.Col.Col].NDV); ndv > 0 {
				sel = setSize / ndv
			}
		}
		if sel > 1 {
			sel = 1
		}
		if sel <= 0 {
			sel = 1e-9
		}
		s.inSel = append(s.inSel, sel)
	}
	return nil
}

// estimateInSetSize estimates how many distinct subquery-column values
// satisfy the HAVING clause (setSize) and what fraction of the subquery
// table's rows carry those values (rowFrac). Each histogram bucket's
// values are modeled as having frequencies uniform around the bucket's
// average, so buckets of rare values (low count/distinct) contribute
// fully to predicates like COUNT(*) < 4 while heavy-hitter buckets
// contribute nothing — and the rows covered reflect that the qualifying
// values are, by construction, infrequent.
func (s *search) estimateInSetSize(p sql.InPred, info *plan.TableInfo) (setSize, rowFrac float64) {
	cs := info.Stats.Cols[p.SubCol]
	rows := float64(info.Stats.Rows)
	if p.Having == nil {
		return float64(cs.NDV), 1
	}
	var qualifying, qualRows float64
	for _, b := range cs.Hist {
		if b.Distinct <= 0 {
			continue
		}
		avg := float64(b.Count) / float64(b.Distinct)
		frac := tailFraction(p.Having.Op, float64(p.Having.Value), avg)
		q := float64(b.Distinct) * frac
		qualifying += q
		qualRows += q * condMeanFreq(p.Having.Op, float64(p.Having.Value), avg)
	}
	if len(cs.Hist) == 0 {
		qualifying = float64(cs.NDV) / 3
		qualRows = rows / 3
	}
	if qualifying < 1 {
		qualifying = 1
	}
	if qualifying > float64(cs.NDV) {
		qualifying = float64(cs.NDV)
	}
	if rows <= 0 {
		return qualifying, 0
	}
	rowFrac = qualRows / rows
	if rowFrac > 1 {
		rowFrac = 1
	}
	if rowFrac <= 0 {
		rowFrac = 0.5 / rows
	}
	return qualifying, rowFrac
}

// condMeanFreq is the expected frequency of a value given that its
// frequency (modeled uniform on [1, 2*avg-1]) satisfies "freq op k".
func condMeanFreq(op string, k, avg float64) float64 {
	span := 2*avg - 1
	if span < 1 {
		span = 1
	}
	switch op {
	case "<":
		return math.Min(avg, math.Max(1, k/2))
	case "<=":
		return math.Min(avg, math.Max(1, (k+1)/2))
	case ">":
		return math.Min(span, math.Max(avg, (k+1+span)/2))
	case ">=":
		return math.Min(span, math.Max(avg, (k+span)/2))
	case "=":
		return math.Max(1, k)
	}
	return avg
}

// tailFraction returns the fraction of counts c ~ Uniform[1, 2*avg-1]
// satisfying "c op k".
func tailFraction(op string, k, avg float64) float64 {
	span := 2*avg - 1
	if span < 1 {
		span = 1
	}
	clamp := func(f float64) float64 {
		if f < 0 {
			return 0
		}
		if f > 1 {
			return 1
		}
		return f
	}
	switch op {
	case "<":
		return clamp((k - 1) / span)
	case "<=":
		return clamp(k / span)
	case ">":
		return clamp((span - k) / span)
	case ">=":
		return clamp((span - k + 1) / span)
	case "=":
		if k >= 1 && k <= span {
			return 1 / span
		}
		return 0
	case "<>":
		if k >= 1 && k <= span {
			return 1 - 1/span
		}
		return 1
	}
	return 0.3
}

func cmpInt(a int64, op string, b int64) bool {
	switch op {
	case "=":
		return a == b
	case "<>":
		return a != b
	case "<":
		return a < b
	case "<=":
		return a <= b
	case ">":
		return a > b
	case ">=":
		return a >= b
	}
	return false
}

// finalize wraps the join tree with aggregation or projection.
func (s *search) finalize(root cand) (plan.Node, plan.Est) {
	q := s.q
	if len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
		// Plain projection.
		offsets := make([]int, len(q.Out))
		for i, o := range q.Out {
			offsets[i] = s.layout.Offset(o.Col)
		}
		est := root.est
		est.Seconds = s.phys.Model.Seconds(&est.Meter)
		n := &plan.Project{Input: root.node, Offsets: offsets, Est: est}
		return n, est
	}
	groups := make([]int, len(q.GroupBy))
	var groupNDV float64 = 1
	for i, g := range q.GroupBy {
		groups[i] = s.layout.Offset(g)
		info := s.phys.TableAt(g.Tab, q.Tables[g.Tab].Table.Name)
		nd := 10.0
		if info != nil && info.Stats != nil {
			nd = float64(info.Stats.Cols[g.Col].NDV)
		}
		if i == 0 {
			groupNDV = nd
		} else {
			groupNDV *= math.Sqrt(nd)
		}
	}
	aggs := make([]plan.AggSpec, len(q.Aggs))
	for i, a := range q.Aggs {
		spec := plan.AggSpec{Kind: a.Kind}
		if a.Kind != sql.AggCountStar {
			spec.Offset = s.layout.Offset(a.Col)
		}
		aggs[i] = spec
	}
	est := root.est
	inRows := root.est.Rows
	outRows := math.Min(inRows, groupNDV)
	if outRows < 1 {
		outRows = 1
	}
	est.Rows = outRows
	est.Meter.CPUOps += int64(inRows)
	// Aggregation hash table spill.
	bytes := int64(outRows) * int64(16+12*len(groups)+12*len(aggs))
	if float64(bytes)*s.scale() > float64(s.phys.Mem) {
		pg := pagesFor(bytes)
		est.Meter.WritePage += pg
		est.Meter.SeqPages += pg
	}
	est.Seconds = s.phys.Model.Seconds(&est.Meter)
	n := &plan.HashAgg{Input: root.node, Groups: groups, Aggs: aggs, Est: est}
	return n, est
}

func (s *search) scale() float64 {
	if s.phys.Model.Scale == 0 {
		return 1
	}
	return s.phys.Model.Scale
}

func ceilI(f float64) int64 {
	if f <= 0 {
		return 0
	}
	return int64(math.Ceil(f))
}

func pagesFor(bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return (bytes + 4095) / 4096
}

// joinPredsBetween returns the join predicates with one side in each mask.
func (s *search) joinPredsBetween(m1, m2 uint32) (left, right []sql.QCol) {
	for _, j := range s.q.Joins {
		lIn1 := m1&(1<<uint(j.L.Tab)) != 0
		rIn2 := m2&(1<<uint(j.R.Tab)) != 0
		lIn2 := m2&(1<<uint(j.L.Tab)) != 0
		rIn1 := m1&(1<<uint(j.R.Tab)) != 0
		switch {
		case lIn1 && rIn2:
			left = append(left, j.L)
			right = append(right, j.R)
		case lIn2 && rIn1:
			left = append(left, j.R)
			right = append(right, j.L)
		}
	}
	return left, right
}

// sortedIndexes returns the indexes of a relation in a deterministic order
// (so plans are stable across runs). The engine and the what-if assembler
// keep their per-relation lists name-sorted at construction
// (plan.SortIndexes), so the common case returns the input without the
// per-call copy the estimate hot path used to pay; an unsorted list
// (hand-built Physical descriptions in tests) still gets the copy-and-sort
// fallback.
func sortedIndexes(ixs []*plan.IndexInfo) []*plan.IndexInfo {
	for i := 1; i < len(ixs); i++ {
		if strings.Compare(ixs[i-1].Def.Name(), ixs[i].Def.Name()) > 0 {
			out := append([]*plan.IndexInfo(nil), ixs...)
			plan.SortIndexes(out)
			return out
		}
	}
	return ixs
}
