package optimizer

import (
	"strings"

	"repro/internal/plan"
	"repro/internal/sql"
)

// viewCand is a materialized-view access covering a subset of query tables.
type viewCand struct {
	mask uint32
	cand cand
}

// viewCandidates matches each materialized view against the query and
// returns ViewScan candidates. A view matches when:
//
//   - every base table of the view appears exactly once in the query (views
//     are skipped for self-joined table names, where the mapping would be
//     ambiguous);
//   - every join predicate of the view's defining query appears in the
//     query, and every query join predicate local to the covered tables is
//     implied by the view (otherwise the view would lose a constraint);
//   - every query-needed column of the covered tables is present in the
//     view's projection.
func (s *search) viewCandidates() []viewCand {
	out := make([]viewCand, 0, len(s.phys.Views))
	for _, v := range s.phys.Views {
		if c, ok := s.matchView(v); ok {
			out = append(out, c)
		}
	}
	return out
}

func (s *search) matchView(v *plan.ViewInfo) (viewCand, bool) {
	// Map view defining-query table ordinals to query table ordinals.
	tabMap := make([]int, len(v.Query.Tables))
	var mask uint32
	for vi, vt := range v.Query.Tables {
		found := -1
		for qi, qt := range s.q.Tables {
			if strings.EqualFold(qt.Table.Name, vt.Table.Name) {
				if found >= 0 {
					return viewCand{}, false // ambiguous (self-join)
				}
				found = qi
			}
		}
		if found < 0 {
			return viewCand{}, false
		}
		tabMap[vi] = found
		mask |= 1 << uint(found)
	}

	// Join-predicate containment, both directions.
	mapCol := func(c sql.QCol) sql.QCol { return sql.QCol{Tab: tabMap[c.Tab], Col: c.Col} }
	joinEq := func(a, b sql.JoinPred) bool {
		return (a.L == b.L && a.R == b.R) || (a.L == b.R && a.R == b.L)
	}
	for _, vj := range v.Query.Joins {
		mapped := sql.JoinPred{L: mapCol(vj.L), R: mapCol(vj.R)}
		ok := false
		for _, qj := range s.q.Joins {
			if joinEq(mapped, qj) {
				ok = true
				break
			}
		}
		if !ok {
			return viewCand{}, false
		}
	}
	for _, qj := range s.q.Joins {
		inL := mask&(1<<uint(qj.L.Tab)) != 0
		inR := mask&(1<<uint(qj.R.Tab)) != 0
		if !inL || !inR {
			continue
		}
		ok := false
		for _, vj := range v.Query.Joins {
			if joinEq(sql.JoinPred{L: mapCol(vj.L), R: mapCol(vj.R)}, qj) {
				ok = true
				break
			}
		}
		if !ok {
			return viewCand{}, false
		}
	}

	// Column coverage: every needed column of covered tables must be a
	// view output column.
	viewColOf := make(map[sql.QCol]int) // query col -> view column ordinal
	for i, src := range v.OutSrc {
		viewColOf[mapCol(src)] = i
	}
	for qi := range s.q.Tables {
		if mask&(1<<uint(qi)) == 0 {
			continue
		}
		for c := range s.needed[qi] {
			if _, ok := viewColOf[sql.QCol{Tab: qi, Col: c}]; !ok {
				return viewCand{}, false
			}
		}
	}

	// Build the ViewScan: map view columns to flat offsets.
	node := &plan.ViewScan{View: v}
	for qi := range s.q.Tables {
		if mask&(1<<uint(qi)) != 0 {
			node.Tabs = append(node.Tabs, qi)
		}
	}
	node.ColOffsets = make([]int, len(v.OutSrc))
	for i, src := range v.OutSrc {
		qc := mapCol(src)
		if s.needed[qc.Tab][qc.Col] {
			node.ColOffsets[i] = s.layout.Offset(qc)
		} else {
			node.ColOffsets[i] = -1
		}
	}

	// Predicates on covered tables.
	rows := float64(v.Stats.Rows)
	filterSel := 1.0
	type selBind struct {
		viewCol int
		pred    sql.SelPred
	}
	selBinds := make([]selBind, 0, len(s.q.Sels))
	for qi := range s.q.Tables {
		if mask&(1<<uint(qi)) == 0 {
			continue
		}
		for _, p := range s.sels[qi] {
			vc := viewColOf[sql.QCol{Tab: qi, Col: p.Col.Col}]
			selBinds = append(selBinds, selBind{viewCol: vc, pred: p})
			sel := v.Stats.Selectivity(vc, p.Op, p.Value)
			if sel <= 0 {
				sel = 0.5 / maxF(1, rows)
			}
			filterSel *= sel
			node.Filters = append(node.Filters, plan.Filter{
				Offset: s.layout.Offset(p.Col), Op: p.Op, Value: p.Value,
			})
		}
		for _, ii := range s.ins[qi] {
			node.Ins = append(node.Ins, plan.InFilter{
				Offset: s.layout.Offset(s.q.Ins[ii].Col), SetID: ii,
			})
			filterSel *= s.inSel[ii]
		}
	}

	// Candidate 1: sequential scan of the view.
	seqEst := plan.Est{Rows: rows * filterSel}
	seqEst.Meter.SeqPages = viewPages(v)
	seqEst.Meter.Rows = v.Stats.Rows
	seqEst.Meter.CPUOps = v.Stats.Rows * int64(len(node.Filters)+len(node.Ins))
	seqEst.Seconds = s.phys.Model.Seconds(&seqEst.Meter)
	node.Est = seqEst
	best := cand{node: node, est: seqEst}

	// Candidate 2: index scans over the view via constant-equality
	// prefixes.
	for _, ix := range sortedIndexes(s.phys.IndexesOn(v.Def.Name)) {
		clone := *node
		eqVals := make([]plan.Filter, 0, len(ix.Cols))
		k := 0
		consumed := make(map[int]bool)
		for _, col := range ix.Cols {
			found := -1
			for i, sb := range selBinds {
				if !consumed[i] && sb.viewCol == col && sb.pred.Op == "=" {
					found = i
					break
				}
			}
			if found < 0 {
				break
			}
			consumed[found] = true
			eqVals = append(eqVals, plan.Filter{Value: selBinds[found].pred.Value})
			k++
		}
		if k == 0 {
			continue
		}
		clone.Index = ix
		clone.EqVals = nil
		for _, f := range eqVals {
			clone.EqVals = append(clone.EqVals, f.Value)
		}
		ndv := float64(ix.KeyNDV[k-1])
		if ndv < 1 {
			ndv = 1
		}
		match := rows / ndv
		if ix.Hypothetical && !s.opts.HypoIdeal {
			match *= s.opts.hypoPenalty()
			if match > rows {
				match = rows
			}
		}
		resSel := 1.0
		for i, sb := range selBinds {
			if consumed[i] {
				continue
			}
			sel := v.Stats.Selectivity(sb.viewCol, sb.pred.Op, sb.pred.Value)
			if sel <= 0 {
				sel = 0.5 / maxF(1, rows)
			}
			resSel *= sel
		}
		inSelAll := 1.0
		for qi := range s.q.Tables {
			if mask&(1<<uint(qi)) == 0 {
				continue
			}
			for _, ii := range s.ins[qi] {
				inSelAll *= s.inSel[ii]
			}
		}
		est := plan.Est{Rows: match * resSel * inSelAll}
		est.Meter.FixedRand = int64(ix.Height) + 1
		epl := float64(ix.EntriesPerLeaf)
		if epl < 1 {
			epl = 1
		}
		est.Meter.SeqPages = ceilI(match / epl)
		fetch := cardenas(match, float64(viewPages(v)))
		if ix.Hypothetical && !s.opts.HypoIdeal {
			fetch = match
		}
		est.Meter.RandPages += ceilI(fetch)
		est.Meter.Rows = ceilI(match)
		est.Meter.CPUOps = ceilI(match) * int64(len(clone.Filters)+len(clone.Ins))
		est.Seconds = s.phys.Model.Seconds(&est.Meter)
		clone.Est = est
		if est.Seconds < best.est.Seconds {
			cl := clone
			best = cand{node: &cl, est: est}
		}
	}
	return viewCand{mask: mask, cand: best}, true
}

// viewPages returns the view's page count, from the heap when the view is
// materialized or from derived statistics when it is hypothetical.
func viewPages(v *plan.ViewInfo) int64 {
	if v.Heap != nil {
		return v.Heap.Pages()
	}
	return v.Stats.Pages
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
