package sql

import (
	"strconv"
	"strings"

	"repro/internal/val"
)

// Stmt is a parsed SQL statement: either *SelectStmt or *InsertStmt.
type Stmt interface{ isStmt() }

// SelectStmt is the AST of a SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Where   Expr // nil when absent; conjunctions are BinExpr{Op:"AND"}
	GroupBy []ColRef
	Having  *Having
	OrderBy []OrderItem
}

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Col  ColRef
	Desc bool
}

func (*SelectStmt) isStmt() {}

// InsertStmt is the AST of INSERT INTO t VALUES (...), (...), ...
type InsertStmt struct {
	Table string
	Rows  []([]val.Value)
}

func (*InsertStmt) isStmt() {}

// SelectItem is one output expression: a column or an aggregate.
type SelectItem struct {
	Col *ColRef // exactly one of Col / Agg is set
	Agg *AggExpr
}

// TableRef names a relation in the FROM clause, with an optional alias.
type TableRef struct {
	Table string
	Alias string // empty means the table name itself
}

// Name returns the name the query uses to refer to this relation.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// ColRef is a possibly-qualified column reference.
type ColRef struct {
	Qualifier string // alias or table name; empty if unqualified
	Name      string
}

func (c ColRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// AggExpr is an aggregate call. Only COUNT variants appear in the
// benchmark families, but SUM/MIN/MAX/AVG parse for shell use.
type AggExpr struct {
	Func     string  // upper-case: COUNT, SUM, MIN, MAX, AVG
	Distinct bool    // COUNT(DISTINCT col)
	Arg      *ColRef // nil means * (COUNT(*) only)
}

func (a AggExpr) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct {
		return a.Func + "(DISTINCT " + arg + ")"
	}
	return a.Func + "(" + arg + ")"
}

// Having is the HAVING clause of a (sub)query: an aggregate compared with
// an integer constant, e.g. HAVING COUNT(*) < 4.
type Having struct {
	Agg   AggExpr
	Op    string // = < <= > >= <>
	Value int64
}

// Expr is a boolean or scalar expression in WHERE.
type Expr interface{ isExpr() }

// BinExpr is a binary expression; Op is one of AND, =, <>, <, <=, >, >=.
type BinExpr struct {
	Op   string
	L, R Expr
}

// ColExpr is a column reference used as an expression.
type ColExpr struct{ Ref ColRef }

// LitExpr is a literal constant.
type LitExpr struct{ Val val.Value }

// InExpr is col IN (subquery).
type InExpr struct {
	Col ColRef
	Sub *SelectStmt
}

func (BinExpr) isExpr() {}
func (ColExpr) isExpr() {}
func (LitExpr) isExpr() {}
func (InExpr) isExpr()  {}

// String renders the statement back to SQL. The output is parseable by
// this package (used to round-trip generated family queries).
func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Col != nil {
			sb.WriteString(it.Col.String())
		} else {
			sb.WriteString(it.Agg.String())
		}
	}
	sb.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.Table)
		if t.Alias != "" {
			sb.WriteString(" " + t.Alias)
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		writeExpr(&sb, s.Where)
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.Agg.String() + " " + s.Having.Op + " " +
			strconv.FormatInt(s.Having.Value, 10))
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Col.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	return sb.String()
}

func writeExpr(sb *strings.Builder, e Expr) {
	switch e := e.(type) {
	case BinExpr:
		writeExpr(sb, e.L)
		sb.WriteString(" " + e.Op + " ")
		writeExpr(sb, e.R)
	case ColExpr:
		sb.WriteString(e.Ref.String())
	case LitExpr:
		sb.WriteString(e.Val.String())
	case InExpr:
		sb.WriteString(e.Col.String() + " IN (" + e.Sub.String() + ")")
	}
}
