package sql

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/val"
)

// Query is the semantically analyzed, normalized form of a SELECT: tables
// bound to the catalog, the WHERE conjunction split into join predicates,
// selection predicates and IN-subquery predicates, and the output list
// resolved. This is the representation the optimizer and the workload
// generator share.
type Query struct {
	Stmt   *SelectStmt
	Tables []QTable
	Joins  []JoinPred
	Sels   []SelPred
	Ins    []InPred

	GroupBy []QCol
	Aggs    []QAgg

	// Out maps each select item to its source: OutGroup refers to
	// GroupBy[Index], OutAgg refers to Aggs[Index].
	Out []OutItem

	// OrderBy gives the output ordering as select-list positions.
	OrderBy []OrderSpec
}

// OrderSpec orders the result by output column OutIdx.
type OrderSpec struct {
	OutIdx int
	Desc   bool
}

// SQL renders the analyzed query back to SQL text.
func (q *Query) SQL() string { return q.Stmt.String() }

// QTable is a FROM-clause relation bound to its catalog table.
type QTable struct {
	Ref   TableRef
	Table *catalog.Table
}

// QCol identifies a column as (table ordinal in Query.Tables, column
// offset in that table).
type QCol struct {
	Tab int
	Col int
}

// JoinPred is an equality join between two columns of different (or the
// same, self-joined) relations.
type JoinPred struct {
	L, R QCol
}

// SelPred is a comparison between a column and a constant.
type SelPred struct {
	Col   QCol
	Op    string // = <> < <= > >=
	Value val.Value
}

// InPred is col IN (SELECT subCol FROM subTable [GROUP BY subCol]
// [HAVING COUNT(*) op k]).
type InPred struct {
	Col      QCol
	SubTable *catalog.Table
	SubCol   int // column offset in SubTable
	// Having is nil for a plain IN (SELECT c FROM t) subquery.
	Having *Having
	// SubSels are selection predicates inside the subquery (column offset
	// in SubTable, op, value); the benchmark families don't generate
	// them, but the shell accepts them.
	SubSels []SubSel
}

// SubSel is a constant predicate local to an IN-subquery.
type SubSel struct {
	Col   int
	Op    string
	Value val.Value
}

// AggKind enumerates supported aggregates.
type AggKind uint8

// Supported aggregate kinds.
const (
	AggCountStar AggKind = iota
	AggCountCol
	AggCountDistinct
	AggSum
	AggMin
	AggMax
	AggAvg
)

// QAgg is a resolved aggregate.
type QAgg struct {
	Kind AggKind
	Col  QCol // meaningful unless Kind == AggCountStar
}

// OutKind says whether an output item is a grouping column or an aggregate.
type OutKind uint8

// Output item kinds.
const (
	OutGroup OutKind = iota
	OutAgg
	OutCol // plain projection column (no GROUP BY in the query)
)

// OutItem maps a select item to its resolved source.
type OutItem struct {
	Kind  OutKind
	Index int  // into GroupBy or Aggs
	Col   QCol // for OutCol
	Name  string
}

// Analyze binds a parsed SELECT against the schema and normalizes it.
func Analyze(schema *catalog.Schema, stmt *SelectStmt) (*Query, error) {
	q := &Query{Stmt: stmt}
	names := make(map[string]int)
	for _, tr := range stmt.From {
		t := schema.Table(tr.Table)
		if t == nil {
			return nil, fmt.Errorf("sql: unknown table %s", tr.Table)
		}
		name := tr.Name()
		if _, dup := names[name]; dup {
			return nil, fmt.Errorf("sql: duplicate table name/alias %s", name)
		}
		names[name] = len(q.Tables)
		q.Tables = append(q.Tables, QTable{Ref: tr, Table: t})
	}

	resolve := func(c ColRef) (QCol, error) {
		if c.Qualifier != "" {
			ti, ok := names[c.Qualifier]
			if !ok {
				return QCol{}, fmt.Errorf("sql: unknown table or alias %s", c.Qualifier)
			}
			ci := q.Tables[ti].Table.ColumnIndex(c.Name)
			if ci < 0 {
				return QCol{}, fmt.Errorf("sql: table %s has no column %s", c.Qualifier, c.Name)
			}
			return QCol{Tab: ti, Col: ci}, nil
		}
		found := QCol{Tab: -1}
		for ti, qt := range q.Tables {
			if ci := qt.Table.ColumnIndex(c.Name); ci >= 0 {
				if found.Tab >= 0 {
					return QCol{}, fmt.Errorf("sql: ambiguous column %s", c.Name)
				}
				found = QCol{Tab: ti, Col: ci}
			}
		}
		if found.Tab < 0 {
			return QCol{}, fmt.Errorf("sql: unknown column %s", c.Name)
		}
		return found, nil
	}

	// WHERE clause → normalized predicate lists.
	if stmt.Where != nil {
		if err := analyzeConjunct(schema, q, resolve, stmt.Where); err != nil {
			return nil, err
		}
	}

	// GROUP BY.
	groupIdx := make(map[QCol]int)
	for _, c := range stmt.GroupBy {
		qc, err := resolve(c)
		if err != nil {
			return nil, err
		}
		if _, dup := groupIdx[qc]; dup {
			continue
		}
		groupIdx[qc] = len(q.GroupBy)
		q.GroupBy = append(q.GroupBy, qc)
	}

	// Select list.
	hasAgg := false
	for _, it := range stmt.Items {
		if it.Agg != nil {
			hasAgg = true
		}
	}
	if hasAgg || len(q.GroupBy) > 0 {
		for _, it := range stmt.Items {
			switch {
			case it.Col != nil:
				qc, err := resolve(*it.Col)
				if err != nil {
					return nil, err
				}
				gi, ok := groupIdx[qc]
				if !ok {
					return nil, fmt.Errorf("sql: column %s must appear in GROUP BY", it.Col)
				}
				q.Out = append(q.Out, OutItem{Kind: OutGroup, Index: gi, Name: it.Col.String()})
			case it.Agg != nil:
				qa, err := resolveAgg(*it.Agg, resolve)
				if err != nil {
					return nil, err
				}
				q.Out = append(q.Out, OutItem{Kind: OutAgg, Index: len(q.Aggs), Name: it.Agg.String()})
				q.Aggs = append(q.Aggs, qa)
			}
		}
	} else {
		for _, it := range stmt.Items {
			qc, err := resolve(*it.Col)
			if err != nil {
				return nil, err
			}
			q.Out = append(q.Out, OutItem{Kind: OutCol, Col: qc, Name: it.Col.String()})
		}
	}

	if stmt.Having != nil {
		return nil, fmt.Errorf("sql: HAVING on the outer query is not supported (only inside IN subqueries)")
	}

	// ORDER BY resolves against the select list: each ordered column must
	// be one of the output items.
	for _, o := range stmt.OrderBy {
		idx := -1
		for i, it := range stmt.Items {
			if it.Col != nil && strings.EqualFold(it.Col.Name, o.Col.Name) &&
				(o.Col.Qualifier == "" || strings.EqualFold(it.Col.Qualifier, o.Col.Qualifier)) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("sql: ORDER BY column %s must appear in the select list", o.Col)
		}
		q.OrderBy = append(q.OrderBy, OrderSpec{OutIdx: idx, Desc: o.Desc})
	}
	return q, nil
}

func resolveAgg(a AggExpr, resolve func(ColRef) (QCol, error)) (QAgg, error) {
	if a.Arg == nil {
		if a.Func != "COUNT" {
			return QAgg{}, fmt.Errorf("sql: %s requires an argument", a.Func)
		}
		return QAgg{Kind: AggCountStar}, nil
	}
	qc, err := resolve(*a.Arg)
	if err != nil {
		return QAgg{}, err
	}
	switch {
	case a.Func == "COUNT" && a.Distinct:
		return QAgg{Kind: AggCountDistinct, Col: qc}, nil
	case a.Func == "COUNT":
		return QAgg{Kind: AggCountCol, Col: qc}, nil
	case a.Distinct:
		return QAgg{}, fmt.Errorf("sql: DISTINCT is only supported with COUNT")
	case a.Func == "SUM":
		return QAgg{Kind: AggSum, Col: qc}, nil
	case a.Func == "MIN":
		return QAgg{Kind: AggMin, Col: qc}, nil
	case a.Func == "MAX":
		return QAgg{Kind: AggMax, Col: qc}, nil
	case a.Func == "AVG":
		return QAgg{Kind: AggAvg, Col: qc}, nil
	}
	return QAgg{}, fmt.Errorf("sql: unsupported aggregate %s", a.Func)
}

// analyzeConjunct walks the AND tree classifying each leaf predicate.
func analyzeConjunct(schema *catalog.Schema, q *Query, resolve func(ColRef) (QCol, error), e Expr) error {
	switch e := e.(type) {
	case BinExpr:
		if e.Op == "AND" {
			if err := analyzeConjunct(schema, q, resolve, e.L); err != nil {
				return err
			}
			return analyzeConjunct(schema, q, resolve, e.R)
		}
		return analyzeComparison(q, resolve, e)
	case InExpr:
		return analyzeIn(schema, q, resolve, e)
	default:
		return fmt.Errorf("sql: unsupported WHERE expression %T", e)
	}
}

func analyzeComparison(q *Query, resolve func(ColRef) (QCol, error), e BinExpr) error {
	lCol, lIsCol := e.L.(ColExpr)
	rCol, rIsCol := e.R.(ColExpr)
	lLit, lIsLit := e.L.(LitExpr)
	rLit, rIsLit := e.R.(LitExpr)
	switch {
	case lIsCol && rIsCol:
		if e.Op != "=" {
			return fmt.Errorf("sql: only equality joins are supported, found %s", e.Op)
		}
		l, err := resolve(lCol.Ref)
		if err != nil {
			return err
		}
		r, err := resolve(rCol.Ref)
		if err != nil {
			return err
		}
		q.Joins = append(q.Joins, JoinPred{L: l, R: r})
		return nil
	case lIsCol && rIsLit:
		c, err := resolve(lCol.Ref)
		if err != nil {
			return err
		}
		q.Sels = append(q.Sels, SelPred{Col: c, Op: e.Op, Value: rLit.Val})
		return nil
	case lIsLit && rIsCol:
		c, err := resolve(rCol.Ref)
		if err != nil {
			return err
		}
		q.Sels = append(q.Sels, SelPred{Col: c, Op: flipOp(e.Op), Value: lLit.Val})
		return nil
	}
	return fmt.Errorf("sql: unsupported comparison operands")
}

func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

// analyzeIn validates the restricted subquery shape the benchmark uses:
// a single table, a single selected column, optionally grouped by that
// same column with a HAVING COUNT(*) comparison, plus optional constant
// predicates.
func analyzeIn(schema *catalog.Schema, q *Query, resolve func(ColRef) (QCol, error), e InExpr) error {
	outer, err := resolve(e.Col)
	if err != nil {
		return err
	}
	sub := e.Sub
	if len(sub.From) != 1 {
		return fmt.Errorf("sql: IN subquery must reference exactly one table")
	}
	st := schema.Table(sub.From[0].Table)
	if st == nil {
		return fmt.Errorf("sql: unknown table %s in subquery", sub.From[0].Table)
	}
	if len(sub.Items) != 1 || sub.Items[0].Col == nil {
		return fmt.Errorf("sql: IN subquery must select exactly one column")
	}
	scName := sub.Items[0].Col.Name
	sc := st.ColumnIndex(scName)
	if sc < 0 {
		return fmt.Errorf("sql: subquery table %s has no column %s", st.Name, scName)
	}
	ip := InPred{Col: outer, SubTable: st, SubCol: sc}
	if len(sub.GroupBy) > 0 {
		if len(sub.GroupBy) != 1 || st.ColumnIndex(sub.GroupBy[0].Name) != sc {
			return fmt.Errorf("sql: IN subquery must group by its selected column")
		}
	}
	if sub.Having != nil {
		if sub.Having.Agg.Func != "COUNT" || sub.Having.Agg.Arg != nil {
			return fmt.Errorf("sql: IN subquery HAVING must use COUNT(*)")
		}
		if len(sub.GroupBy) == 0 {
			return fmt.Errorf("sql: HAVING in subquery requires GROUP BY")
		}
		h := *sub.Having
		ip.Having = &h
	}
	if sub.Where != nil {
		if err := collectSubSels(st, sub.Where, &ip); err != nil {
			return err
		}
	}
	q.Ins = append(q.Ins, ip)
	return nil
}

func collectSubSels(st *catalog.Table, e Expr, ip *InPred) error {
	switch e := e.(type) {
	case BinExpr:
		if e.Op == "AND" {
			if err := collectSubSels(st, e.L, ip); err != nil {
				return err
			}
			return collectSubSels(st, e.R, ip)
		}
		c, cOK := e.L.(ColExpr)
		l, lOK := e.R.(LitExpr)
		if !cOK || !lOK {
			return fmt.Errorf("sql: IN subquery predicates must be column-vs-constant")
		}
		ci := st.ColumnIndex(c.Ref.Name)
		if ci < 0 {
			return fmt.Errorf("sql: subquery table %s has no column %s", st.Name, c.Ref.Name)
		}
		ip.SubSels = append(ip.SubSels, SubSel{Col: ci, Op: e.Op, Value: l.Val})
		return nil
	default:
		return fmt.Errorf("sql: unsupported expression in IN subquery WHERE")
	}
}

// CompareOp applies a comparison operator to two values.
func CompareOp(op string, a, b val.Value) bool {
	c := val.Compare(a, b)
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}
