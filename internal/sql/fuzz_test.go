package sql

import (
	"strings"
	"testing"
)

// fuzzSeeds are template-generated family queries in the shapes the
// workload generators emit (paper §3.2.2: conjunctive select-join-
// aggregate queries over NREF and TPC-H), plus the edge shapes the
// grammar supports.
var fuzzSeeds = []string{
	`SELECT t.lineage, COUNT(DISTINCT t2.nref_id)
	 FROM source s, taxonomy t, taxonomy t2
	 WHERE t.nref_id = s.nref_id AND t.lineage = t2.lineage
	   AND s.p_name = 'Simian Virus 40'
	 GROUP BY t.lineage`,
	`SELECT t.taxon_id, COUNT(*) FROM taxonomy t, organism o
	 WHERE t.nref_id = o.nref_id AND t.nref_id = 'NF0000041'
	 GROUP BY t.taxon_id`,
	`SELECT l_orderkey, SUM(l_extendedprice) FROM lineitem, orders
	 WHERE l_orderkey = o_orderkey AND o_orderdate < 19980801
	 GROUP BY l_orderkey HAVING COUNT(*) > 3`,
	`SELECT r.taxon_id, COUNT(*) FROM taxonomy r
	 WHERE r.nref_id IN (SELECT nref_id FROM organism GROUP BY nref_id HAVING COUNT(*) < 4)
	 GROUP BY r.taxon_id`,
	`SELECT source, MIN(taxon_id), MAX(taxon_id), SUM(p_id), AVG(p_id), COUNT(p_id)
	 FROM source GROUP BY source`,
	`SELECT p_name, length FROM protein WHERE length < 100 ORDER BY length DESC`,
	`INSERT INTO neighboring_seq VALUES (1, 'a', 2.5, NULL), (2, 'b', 3, 'x')`,
	`SELECT a FROM t WHERE a = 1e308 AND b <> -0.5 AND c >= 'x''y'`,
	`SELECT`, `SELECT *`, `SELECT a FROM`, `INSERT INTO`, ``, `(`, `"`,
}

// FuzzParse asserts the parser never panics: any input either parses or
// returns an error.
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err == nil && stmt == nil {
			t.Error("Parse returned nil statement and nil error")
		}
	})
}

// TestParseDepthLimit is the regression for the one panic the fuzzer can
// reach: unbounded IN(SELECT ...) nesting must return a parse error, not
// overflow the stack.
func TestParseDepthLimit(t *testing.T) {
	q := "SELECT a FROM t WHERE a IN ("
	q = strings.Repeat(q, 2000) + "SELECT a FROM t" + strings.Repeat(")", 2000)
	if _, err := Parse(q); err == nil {
		t.Fatal("deeply nested query should fail to parse")
	}
	// Nesting below the limit still parses.
	ok := `SELECT nref_id FROM taxonomy WHERE nref_id IN (SELECT nref_id FROM organism WHERE taxon_id IN (SELECT taxon_id FROM organism GROUP BY taxon_id HAVING COUNT(*) > 1) GROUP BY nref_id)`
	if _, err := Parse(ok); err != nil {
		t.Fatalf("legitimate nesting rejected: %v", err)
	}
}
