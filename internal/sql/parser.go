package sql

import (
	"strconv"
	"strings"

	"repro/internal/val"
)

// Parse parses a single SQL statement.
func Parse(src string) (Stmt, error) {
	l := &lexer{src: src}
	toks, err := l.lex()
	if err != nil {
		return nil, err
	}
	p := &parser{l: l, toks: toks}
	var stmt Stmt
	switch {
	case p.peekKeyword("SELECT"):
		stmt, err = p.parseSelect()
	case p.peekKeyword("INSERT"):
		stmt, err = p.parseInsert()
	default:
		return nil, p.errHere("expected SELECT or INSERT")
	}
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errHere("trailing input after statement")
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, &parseError{msg: "statement is not a SELECT"}
	}
	return sel, nil
}

type parseError struct{ msg string }

func (e *parseError) Error() string { return "sql: " + e.msg }

// maxParseDepth bounds SELECT nesting (IN subqueries recurse through
// parseSelect); without it a long chain of "IN (SELECT ..." overflows
// the goroutine stack instead of returning a parse error.
const maxParseDepth = 32

type parser struct {
	l     *lexer
	toks  []token
	pos   int
	depth int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tokEOF }

func (p *parser) errHere(format string, args ...interface{}) error {
	return p.l.errf(p.cur().pos, format, args...)
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errHere("expected %s", kw)
	}
	return nil
}

func (p *parser) peekSymbol(sym string) bool {
	t := p.cur()
	return t.kind == tokSymbol && t.text == sym
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peekSymbol(sym) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errHere("expected %q", sym)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", p.errHere("expected identifier, found %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// parseSelect parses: SELECT items FROM tables [WHERE expr]
// [GROUP BY cols] [HAVING agg op int].
func (p *parser) parseSelect() (*SelectStmt, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return nil, p.errHere("query nesting exceeds %d levels", maxParseDepth)
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{}
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, it)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		s.From = append(s.From, tr)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseConjunction()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseHaving()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: c}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.peekAgg() {
		a, err := p.parseAgg()
		if err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Agg: a}, nil
	}
	c, err := p.parseColRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: &c}, nil
}

func (p *parser) peekAgg() bool {
	t := p.cur()
	if t.kind != tokKeyword {
		return false
	}
	switch t.text {
	case "COUNT", "SUM", "MIN", "MAX", "AVG":
		return true
	}
	return false
}

func (p *parser) parseAgg() (*AggExpr, error) {
	fn := p.cur().text
	p.pos++
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	a := &AggExpr{Func: fn}
	if p.acceptSymbol("*") {
		if fn != "COUNT" {
			return nil, p.errHere("%s(*) is not valid", fn)
		}
	} else {
		if p.acceptKeyword("DISTINCT") {
			a.Distinct = true
		}
		c, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		a.Arg = &c
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return a, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	tr := TableRef{Table: name}
	p.acceptKeyword("AS")
	if p.cur().kind == tokIdent {
		tr.Alias = p.cur().text
		p.pos++
	}
	return tr, nil
}

func (p *parser) parseColRef() (ColRef, error) {
	first, err := p.expectIdent()
	if err != nil {
		return ColRef{}, err
	}
	if p.acceptSymbol(".") {
		second, err := p.expectIdent()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Qualifier: first, Name: second}, nil
	}
	return ColRef{Name: first}, nil
}

// parseConjunction parses pred (AND pred)*. OR is rejected explicitly: the
// benchmark families are conjunctive (paper §3.2.2 uses only equality and
// simple predicates joined by AND).
func (p *parser) parseConjunction() (Expr, error) {
	left, err := p.parsePredicate()
	if err != nil {
		return nil, err
	}
	for {
		if p.peekKeyword("OR") {
			return nil, p.errHere("OR is not supported in this SQL subset")
		}
		if !p.acceptKeyword("AND") {
			return left, nil
		}
		right, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		left = BinExpr{Op: "AND", L: left, R: right}
	}
}

// parsePredicate parses one of:
//
//	col cmp col | col cmp literal | literal cmp col | col IN (subselect)
func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("IN") {
		colE, ok := left.(ColExpr)
		if !ok {
			return nil, p.errHere("IN requires a column on the left")
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return InExpr{Col: colE.Ref, Sub: sub}, nil
	}
	t := p.cur()
	if t.kind != tokSymbol {
		return nil, p.errHere("expected comparison operator")
	}
	switch t.text {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, p.errHere("unsupported operator %q", t.text)
	}
	p.pos++
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return BinExpr{Op: t.text, L: left, R: right}, nil
}

func (p *parser) parseOperand() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		c, err := p.parseColRef()
		if err != nil {
			return nil, err
		}
		return ColExpr{Ref: c}, nil
	case tokNumber:
		v, err := parseNumber(t.text)
		if err != nil {
			return nil, p.errHere("malformed number")
		}
		p.pos++
		return LitExpr{Val: v}, nil
	case tokString:
		p.pos++
		return LitExpr{Val: val.String(t.text)}, nil
	case tokKeyword:
		if t.text == "NULL" {
			p.pos++
			return LitExpr{Val: val.Null()}, nil
		}
	}
	return nil, p.errHere("expected column, number or string")
}

func parseNumber(text string) (val.Value, error) {
	if !strings.ContainsAny(text, ".eE") {
		if i, err := strconv.ParseInt(text, 10, 64); err == nil {
			return val.Int(i), nil
		}
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return val.Value{}, err
	}
	return val.Float(f), nil
}

func (p *parser) parseHaving() (*Having, error) {
	if !p.peekAgg() {
		return nil, p.errHere("HAVING requires an aggregate")
	}
	a, err := p.parseAgg()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tokSymbol {
		return nil, p.errHere("expected comparison operator in HAVING")
	}
	switch t.text {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, p.errHere("unsupported operator %q in HAVING", t.text)
	}
	p.pos++
	num := p.cur()
	if num.kind != tokNumber {
		return nil, p.errHere("HAVING comparison requires an integer constant")
	}
	p.pos++
	v, err := strconv.ParseInt(num.text, 10, 64)
	if err != nil {
		return nil, p.errHere("bad integer %q", num.text)
	}
	return &Having{Agg: *a, Op: t.text, Value: v}, nil
}

// parseInsert parses INSERT INTO t VALUES (lit, ...), (lit, ...) ...
func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		row := make([]val.Value, 0, 8)
		for {
			t := p.cur()
			switch t.kind {
			case tokNumber:
				v, err := parseNumber(t.text)
				if err != nil {
					return nil, p.errHere("malformed number")
				}
				row = append(row, v)
			case tokString:
				row = append(row, val.String(t.text))
			case tokKeyword:
				if t.text != "NULL" {
					return nil, p.errHere("expected literal")
				}
				row = append(row, val.Null())
			default:
				return nil, p.errHere("expected literal")
			}
			p.pos++
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptSymbol(",") {
			return ins, nil
		}
	}
}
