// Package sql implements the SQL subset used by the benchmark's query
// families (paper §3.2.2): select-project-join queries with equality and
// inequality predicates, COUNT/COUNT(DISTINCT) aggregates, GROUP BY, and
// one level of nesting in the form of IN (SELECT c FROM t GROUP BY c
// HAVING COUNT(*) cmp k) sub-selects.
//
// The package provides a lexer, a recursive-descent parser producing an
// AST, and a semantic analyzer (Analyze) that binds the AST against a
// catalog.Schema and produces the normalized Query representation the
// optimizer consumes.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexical tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // keywords are upper-cased; symbols canonical
	pos  int    // byte offset in input
}

// keywords recognized by the lexer. Identifiers matching these
// (case-insensitively) are tokenized as keywords.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "COUNT": true, "DISTINCT": true, "AND": true, "IN": true,
	"AS": true, "OR": true, "NOT": true, "ORDER": true, "SUM": true,
	"MIN": true, "MAX": true, "AVG": true, "INSERT": true, "INTO": true,
	"VALUES": true, "NULL": true, "ASC": true, "DESC": true,
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...interface{}) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("sql:%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

// lex tokenizes the whole input.
func (l *lexer) lex() ([]token, error) {
	toks := make([]token, 0, len(l.src)/4+8)
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			toks = append(toks, token{kind: tokEOF, pos: l.pos})
			return toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			text := l.src[start:l.pos]
			up := strings.ToUpper(text)
			if keywords[up] {
				toks = append(toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				toks = append(toks, token{kind: tokIdent, text: text, pos: start})
			}
		case c >= '0' && c <= '9' || c == '-' && l.peekDigit():
			l.pos++
			for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' || l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
				((l.src[l.pos] == '+' || l.src[l.pos] == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
				l.pos++
			}
			toks = append(toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, text: s, pos: start})
		default:
			sym, err := l.lexSymbol()
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokSymbol, text: sym, pos: start})
		}
	}
}

func (l *lexer) peekDigit() bool {
	return l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

// lexString consumes a single-quoted SQL string with ” escaping and
// returns its unescaped contents.
func (l *lexer) lexString() (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return sb.String(), nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return "", l.errf(start, "unterminated string literal")
}

func (l *lexer) lexSymbol() (string, error) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<=", ">=", "<>", "!=":
		l.pos += 2
		if two == "!=" {
			two = "<>"
		}
		return two, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '.', '*', '=', '<', '>':
		l.pos++
		return string(c), nil
	}
	return "", l.errf(l.pos, "unexpected character %q", c)
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
