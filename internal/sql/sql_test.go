package sql

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/val"
)

// example1 is the paper's Example 1 query (Simian Virus 40).
const example1 = `
SELECT t.lineage, count(distinct t2.nref_id)
FROM source s, taxonomy t, taxonomy t2
WHERE t.nref_id = s.nref_id AND t.lineage = t2.lineage
  AND s.p_name = 'Simian Virus 40'
GROUP BY t.lineage`

// nref2j is an instance of the NREF2J family template.
const nref2j = `
SELECT r.taxon_id, r.nref_id, COUNT(*)
FROM taxonomy r, organism s
WHERE r.nref_id = s.nref_id
  AND r.nref_id IN (SELECT nref_id FROM taxonomy GROUP BY nref_id HAVING COUNT(*) < 4)
  AND s.nref_id IN (SELECT nref_id FROM organism GROUP BY nref_id HAVING COUNT(*) < 4)
GROUP BY r.taxon_id, r.nref_id`

func TestParseExample1(t *testing.T) {
	stmt, err := ParseSelect(example1)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 2 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if stmt.Items[1].Agg == nil || !stmt.Items[1].Agg.Distinct {
		t.Fatal("second item should be COUNT(DISTINCT ...)")
	}
	if len(stmt.From) != 3 {
		t.Fatalf("from = %d", len(stmt.From))
	}
	if stmt.From[2].Alias != "t2" {
		t.Fatalf("alias = %q", stmt.From[2].Alias)
	}
	if len(stmt.GroupBy) != 1 {
		t.Fatalf("group by = %d", len(stmt.GroupBy))
	}
}

func TestAnalyzeExample1(t *testing.T) {
	schema := catalog.NREF()
	stmt, err := ParseSelect(example1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(schema, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 3 || len(q.Joins) != 2 || len(q.Sels) != 1 {
		t.Fatalf("tables=%d joins=%d sels=%d", len(q.Tables), len(q.Joins), len(q.Sels))
	}
	if q.Sels[0].Value.Str != "Simian Virus 40" {
		t.Fatalf("selection constant = %v", q.Sels[0].Value)
	}
	if len(q.GroupBy) != 1 || len(q.Aggs) != 1 {
		t.Fatalf("groupby=%d aggs=%d", len(q.GroupBy), len(q.Aggs))
	}
	if q.Aggs[0].Kind != AggCountDistinct {
		t.Fatalf("agg kind = %v", q.Aggs[0].Kind)
	}
	// t2.nref_id is table 2, column 0.
	if q.Aggs[0].Col.Tab != 2 || q.Aggs[0].Col.Col != 0 {
		t.Fatalf("agg col = %+v", q.Aggs[0].Col)
	}
}

func TestAnalyzeInSubqueries(t *testing.T) {
	schema := catalog.NREF()
	stmt, err := ParseSelect(nref2j)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(schema, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Ins) != 2 {
		t.Fatalf("ins = %d", len(q.Ins))
	}
	in := q.Ins[0]
	if in.SubTable.Name != "taxonomy" || in.Having == nil || in.Having.Op != "<" || in.Having.Value != 4 {
		t.Fatalf("bad InPred: %+v", in)
	}
}

func TestRoundTrip(t *testing.T) {
	for _, src := range []string{example1, nref2j} {
		stmt, err := ParseSelect(src)
		if err != nil {
			t.Fatal(err)
		}
		text := stmt.String()
		stmt2, err := ParseSelect(text)
		if err != nil {
			t.Fatalf("reparse of %q: %v", text, err)
		}
		if stmt2.String() != text {
			t.Fatalf("round trip unstable:\n%s\n%s", text, stmt2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t WHERE a = 1 OR b = 2",
		"SELECT a FROM t WHERE a LIKE 'x'",
		"SELECT a FROM t GROUP",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t; DROP TABLE t",
		"UPDATE t SET a = 1",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	schema := catalog.NREF()
	cases := []struct {
		src, wantSub string
	}{
		{"SELECT x FROM nosuch", "unknown table"},
		{"SELECT nosuch FROM protein", "unknown column"},
		{"SELECT nref_id FROM protein p, source s", "ambiguous"},
		{"SELECT p.nref_id, COUNT(*) FROM protein p", "GROUP BY"},
		{"SELECT p.nref_id FROM protein p, protein p", "duplicate"},
		{"SELECT q.nref_id FROM protein p", "unknown table or alias"},
		{"SELECT p.length FROM protein p WHERE p.length < p.last_updated", "only equality joins"},
		{"SELECT nref_id FROM protein WHERE nref_id IN (SELECT nref_id, p_name FROM source)", "exactly one column"},
		{"SELECT nref_id FROM protein WHERE nref_id IN (SELECT s.nref_id FROM source s, taxonomy t)", "exactly one table"},
	}
	for _, c := range cases {
		stmt, err := ParseSelect(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		_, err = Analyze(schema, stmt)
		if err == nil {
			t.Errorf("Analyze(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Analyze(%q) error %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestFlippedComparison(t *testing.T) {
	schema := catalog.NREF()
	stmt, err := ParseSelect("SELECT length FROM protein WHERE 100 < length")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(schema, stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Sels) != 1 || q.Sels[0].Op != ">" || q.Sels[0].Value.I != 100 {
		t.Fatalf("flipped predicate: %+v", q.Sels[0])
	}
}

func TestParseInsert(t *testing.T) {
	st, err := Parse("INSERT INTO protein VALUES ('NF001', 'p', 1, 'MKV', 3), ('NF002', 'q', 2, 'ACD', 3)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if ins.Table != "protein" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 5 {
		t.Fatalf("insert: %+v", ins)
	}
	if ins.Rows[1][0].Str != "NF002" {
		t.Fatalf("row literal: %v", ins.Rows[1][0])
	}
}

func TestStringEscapes(t *testing.T) {
	stmt, err := ParseSelect("SELECT p_name FROM protein WHERE p_name = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(catalog.NREF(), stmt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Sels[0].Value.Str != "it's" {
		t.Fatalf("escape: %q", q.Sels[0].Value.Str)
	}
}

func TestNumbers(t *testing.T) {
	stmt, err := ParseSelect("SELECT score FROM neighboring_seq WHERE score >= 1.5 AND start_1 = -3")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Analyze(catalog.NREF(), stmt)
	if err != nil {
		t.Fatal(err)
	}
	if q.Sels[0].Value.K != val.KindFloat || q.Sels[0].Value.F != 1.5 {
		t.Fatalf("float literal: %v", q.Sels[0].Value)
	}
	if q.Sels[1].Value.K != val.KindInt || q.Sels[1].Value.I != -3 {
		t.Fatalf("negative int literal: %v", q.Sels[1].Value)
	}
}

func TestCompareOp(t *testing.T) {
	cases := []struct {
		op   string
		a, b val.Value
		want bool
	}{
		{"=", val.Int(1), val.Int(1), true},
		{"<>", val.Int(1), val.Int(1), false},
		{"<", val.Int(1), val.Int(2), true},
		{"<=", val.Int(2), val.Int(2), true},
		{">", val.String("b"), val.String("a"), true},
		{">=", val.Float(1.0), val.Int(1), true},
	}
	for _, c := range cases {
		if got := CompareOp(c.op, c.a, c.b); got != c.want {
			t.Errorf("CompareOp(%s, %v, %v) = %v", c.op, c.a, c.b, got)
		}
	}
}

func TestLexerComments(t *testing.T) {
	stmt, err := ParseSelect("SELECT length -- trailing comment\nFROM protein")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.Items) != 1 {
		t.Fatal("comment handling broke the parse")
	}
}

func TestOrderByParsing(t *testing.T) {
	stmt, err := ParseSelect("SELECT taxon_id, COUNT(*) FROM taxonomy GROUP BY taxon_id ORDER BY taxon_id DESC")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Fatalf("order by = %+v", stmt.OrderBy)
	}
	// Round trip.
	if _, err := ParseSelect(stmt.String()); err != nil {
		t.Fatalf("reparse: %v", err)
	}
	q, err := Analyze(catalog.NREF(), stmt)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0].OutIdx != 0 || !q.OrderBy[0].Desc {
		t.Fatalf("resolved order = %+v", q.OrderBy)
	}
}

func TestOrderByMustBeSelected(t *testing.T) {
	stmt, err := ParseSelect("SELECT taxon_id, COUNT(*) FROM taxonomy GROUP BY taxon_id, lineage ORDER BY lineage")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(catalog.NREF(), stmt); err == nil {
		t.Fatal("ORDER BY on a non-selected column must fail analysis")
	}
}
